// Benchmarks regenerating the paper's evaluation, one benchmark family
// per table/figure, plus ablations of the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// Sizes are kept moderate so a full run finishes in minutes; the
// oblivbench command sweeps the larger sizes of the paper's figures.
package oblivjoin

import (
	"fmt"
	"testing"

	"oblivjoin/internal/baseline"
	"oblivjoin/internal/bitonic"
	"oblivjoin/internal/compaction"
	"oblivjoin/internal/core"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
	"oblivjoin/internal/workload"
)

// ── Table 1: join algorithm comparison (PK-FK workload) ──────────────

func benchTable1(b *testing.B, n int, run func(sp *memory.Space, t1, t2 []table.Row)) {
	t1, t2 := workload.PKFK(n/2, n/2, 1)
	b.ReportMetric(float64(n), "n")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := memory.NewSpace(nil, nil)
		run(sp, t1, t2)
	}
}

func BenchmarkTable1_SortMergeInsecure(b *testing.B) {
	benchTable1(b, 4096, func(sp *memory.Space, t1, t2 []table.Row) {
		baseline.SortMergeJoin(sp, t1, t2)
	})
}

func BenchmarkTable1_NestedLoopOblivious(b *testing.B) {
	benchTable1(b, 512, func(sp *memory.Space, t1, t2 []table.Row) {
		baseline.NestedLoopJoin(sp, t1, t2)
	})
}

func BenchmarkTable1_OpaquePKFK(b *testing.B) {
	benchTable1(b, 4096, func(sp *memory.Space, t1, t2 []table.Row) {
		if _, err := baseline.OpaqueJoin(sp, t1, t2); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkTable1_ORAMSortMerge(b *testing.B) {
	benchTable1(b, 1024, func(sp *memory.Space, t1, t2 []table.Row) {
		baseline.ORAMJoin(sp, t1, t2, 7)
	})
}

func BenchmarkTable1_Ours(b *testing.B) {
	benchTable1(b, 4096, func(sp *memory.Space, t1, t2 []table.Row) {
		core.Join(&core.Config{Alloc: table.PlainAlloc(sp)}, t1, t2)
	})
}

// ── Table 3: per-component cost at m ≈ n1 = n2 ────────────────────────

func BenchmarkTable3_FullJoin(b *testing.B) {
	for _, n := range []int{4096, 16384, 65536} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t1, t2 := workload.MatchingPairs(n)
			b.ResetTimer()
			var st core.Stats
			for i := 0; i < b.N; i++ {
				st = core.Stats{}
				sp := memory.NewSpace(nil, nil)
				core.Join(&core.Config{Alloc: table.PlainAlloc(sp), Stats: &st}, t1, t2)
			}
			total := float64(st.Total())
			if total > 0 {
				b.ReportMetric(100*float64(st.TAugment)/total, "%augment")
				b.ReportMetric(100*float64(st.TDistSort)/total, "%distsort")
				b.ReportMetric(100*float64(st.TDistRoute)/total, "%route")
				b.ReportMetric(100*float64(st.TAlign)/total, "%align")
			}
		})
	}
}

// ── Figure 7: trace recording cost (the experiment's machinery) ──────

func BenchmarkFig7_TraceLogging(b *testing.B) {
	cls := workload.EqualOutputClasses()[0]
	t1, t2 := cls.Variants[0]()
	for i := 0; i < b.N; i++ {
		res, err := Join(FromRows(t1), FromRows(t2), &Options{TraceHash: true})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.TraceHash
	}
}

// ── Figure 8: runtime vs input size, all four curves ─────────────────

func benchFig8(b *testing.B, run func(t1, t2 []table.Row)) {
	for _, n := range []int{8192, 32768} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			t1, t2 := workload.MatchingPairs(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(t1, t2)
			}
		})
	}
}

func BenchmarkFig8_SortMergeInsecure(b *testing.B) {
	benchFig8(b, func(t1, t2 []table.Row) {
		baseline.SortMergeJoin(memory.NewSpace(nil, nil), t1, t2)
	})
}

func BenchmarkFig8_Prototype(b *testing.B) {
	benchFig8(b, func(t1, t2 []table.Row) {
		sp := memory.NewSpace(nil, nil)
		core.Join(&core.Config{Alloc: table.PlainAlloc(sp)}, t1, t2)
	})
}

func BenchmarkFig8_SGXSimulated(b *testing.B) {
	benchFig8(b, func(t1, t2 []table.Row) {
		sp := memory.NewSpace(nil, memory.DefaultSGX())
		core.Join(&core.Config{Alloc: table.PlainAlloc(sp)}, t1, t2)
	})
}

func BenchmarkFig8_SGXTransformed(b *testing.B) {
	// The §3.4 transformation costs a constant factor per access (the
	// paper measures ×1.11); the transformed cost model charges it.
	benchFig8(b, func(t1, t2 []table.Row) {
		sp := memory.NewSpace(nil, memory.DefaultSGXTransformed())
		core.Join(&core.Config{Alloc: table.PlainAlloc(sp)}, t1, t2)
	})
}

// ── Ablations (DESIGN.md §5) ─────────────────────────────────────────

// Deterministic routing distribute vs the probabilistic PRP variant.
func BenchmarkAblationDistribute(b *testing.B) {
	t1, t2 := workload.MatchingPairs(16384)
	for _, prob := range []bool{false, true} {
		name := "routing"
		if prob {
			name = "prp"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp := memory.NewSpace(nil, nil)
				core.Join(&core.Config{
					Alloc: table.PlainAlloc(sp), Probabilistic: prob, Seed: 3,
				}, t1, t2)
			}
		})
	}
}

// Bitonic sorter vs Batcher merge-exchange as the network.
func BenchmarkAblationSortNetwork(b *testing.B) {
	t1, t2 := workload.MatchingPairs(16384)
	for _, net := range []core.SortNet{core.Bitonic, core.MergeExchange} {
		name := "bitonic"
		if net == core.MergeExchange {
			name = "merge-exchange"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp := memory.NewSpace(nil, nil)
				core.Join(&core.Config{Alloc: table.PlainAlloc(sp), Net: net}, t1, t2)
			}
		})
	}
}

// Null filtering: bitonic sort vs Goodrich O(n log n) compaction.
func BenchmarkAblationCompaction(b *testing.B) {
	const n = 16384
	entries := make([]table.Entry, n)
	for i := range entries {
		entries[i] = table.Entry{J: uint64(i), Null: uint64(i & 1)}
	}
	load := func(sp *memory.Space) table.Store {
		st := table.PlainAlloc(sp)(n)
		for i, e := range entries {
			st.Set(i, e)
		}
		return st
	}
	b.Run("sort-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sp := memory.NewSpace(nil, nil)
			st := load(sp)
			b.StartTimer()
			bitonic.Sort[table.Entry](st, table.LessNullF, table.CondSwapEntry, nil)
		}
	})
	b.Run("goodrich-compaction", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sp := memory.NewSpace(nil, nil)
			st := load(sp)
			b.StartTimer()
			compaction.Compact(st, nil)
		}
	})
}

// Cost of the branchless (level-III) discipline vs plain branches for
// the comparator primitive.
func BenchmarkAblationBranchless(b *testing.B) {
	xs := make([]uint64, 4096)
	for i := range xs {
		xs[i] = uint64(i * 2654435761)
	}
	b.Run("branchless-select", func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			x := xs[i&4095]
			acc = obliv.Select(obliv.Less(x, acc), x, acc)
		}
		sink = acc
	})
	b.Run("branching", func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			x := xs[i&4095]
			if x < acc {
				acc = x
			}
		}
		sink = acc
	})
}

var sink uint64

// Sequential vs goroutine-parallel sorting phases at the join level
// (§6.2's parallelization note).
func BenchmarkAblationParallelJoin(b *testing.B) {
	t1, t2 := workload.MatchingPairs(65536)
	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp := memory.NewSpace(nil, nil)
				core.Join(&core.Config{Alloc: table.PlainAlloc(sp), Parallel: par}, t1, t2)
			}
		})
	}
}

// BenchmarkJoinParallel measures the round-scheduled parallel pipeline
// against the sequential schedule at n = 2^17 rows *with tracing
// enabled* (a live recorder on every access, sharded per lane and
// merged at round barriers). The canonical trace and all counters are
// identical across the variants — TestJoinParallelTraceEqualsSequential
// pins that — so this measures pure execution-model speedup. On a
// multi-core host the workers=GOMAXPROCS variant is the headline
// number; cmd/oblivbench -exp bench emits the same comparison as JSON.
func BenchmarkJoinParallel(b *testing.B) {
	const n = 1 << 17
	t1, t2 := workload.MatchingPairs(n)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"sequential", 1},
		{"workers=2", 2},
		{"workers=4", 4},
		{"workers=max", -1},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportMetric(float64(n), "n")
			for i := 0; i < b.N; i++ {
				var c trace.Counter
				sp := memory.NewSpace(&c, nil)
				core.Join(&core.Config{Alloc: table.PlainAlloc(sp), Workers: bc.workers}, t1, t2)
				if c.Total() == 0 {
					b.Fatal("tracing was not enabled")
				}
			}
		})
	}
}

// Plain vs AES-sealed entry storage. Kept small: sealing multiplies the
// per-access cost by ~50×, which is the ablation's finding.
func BenchmarkAblationEncryption(b *testing.B) {
	t1, t2 := workload.MatchingPairs(1024)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sp := memory.NewSpace(nil, nil)
			core.Join(&core.Config{Alloc: table.PlainAlloc(sp)}, t1, t2)
		}
	})
	b.Run("encrypted", func(b *testing.B) {
		cipher, _, err := crypto.NewRandom()
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			sp := memory.NewSpace(nil, nil)
			core.Join(&core.Config{Alloc: table.EncryptedAlloc(sp, cipher)}, t1, t2)
		}
	})
}
