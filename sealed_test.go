package oblivjoin

import (
	"fmt"
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
	"oblivjoin/internal/workload"
)

// TestSealedStoresTraceEqualAcrossGranularities is the PR's central
// invariant at the pipeline level: the full join over plain, per-entry
// sealed and block-sealed storage — at several block granularities,
// sequentially and across parallel lanes — produces identical outputs,
// identical canonical trace hashes and identical event counts. Sizes
// straddle the default block width (1, B−1, B, B+1) and include
// non-multiples of it. Run under -race this also exercises the block
// store's lock discipline and the cipher's atomic nonce reservation.
func TestSealedStoresTraceEqualAcrossGranularities(t *testing.T) {
	cipher, _, err := crypto.NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	b := table.DefaultSealedBlock
	for _, n := range []int{1, b - 1, b, b + 1, 3*b + 7, 100} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			t1, t2 := workload.MatchingPairs(n)
			type variant struct {
				name    string
				alloc   func(sp *memory.Space) table.Alloc
				workers int
			}
			variants := []variant{
				{"plain/seq", table.PlainAlloc, 1},
				{"plain/par", table.PlainAlloc, 4},
				{"sealed/seq", func(sp *memory.Space) table.Alloc { return table.EncryptedAlloc(sp, cipher) }, 1},
				{"sealed/par", func(sp *memory.Space) table.Alloc { return table.EncryptedAlloc(sp, cipher) }, 4},
				{"block16/seq", func(sp *memory.Space) table.Alloc { return table.BlockEncryptedAlloc(sp, cipher, 0) }, 1},
				{"block16/par", func(sp *memory.Space) table.Alloc { return table.BlockEncryptedAlloc(sp, cipher, 0) }, 4},
				{"block3/par", func(sp *memory.Space) table.Alloc { return table.BlockEncryptedAlloc(sp, cipher, 3) }, 4},
				{"block1/seq", func(sp *memory.Space) table.Alloc { return table.BlockEncryptedAlloc(sp, cipher, 1) }, 1},
			}
			var refHash string
			var refCount uint64
			var refPairs []table.Pair
			for i, v := range variants {
				h := trace.NewHasher()
				sp := memory.NewSpace(h, nil)
				pairs := core.Join(&core.Config{Alloc: v.alloc(sp), Workers: v.workers}, t1, t2)
				if i == 0 {
					refHash, refCount, refPairs = h.Hex(), h.Count(), pairs
					continue
				}
				if h.Count() != refCount {
					t.Errorf("%s: %d trace events, want %d", v.name, h.Count(), refCount)
				}
				if h.Hex() != refHash {
					t.Errorf("%s: canonical trace hash diverges from plain/seq", v.name)
				}
				if len(pairs) != len(refPairs) {
					t.Fatalf("%s: %d pairs, want %d", v.name, len(pairs), len(refPairs))
				}
				for k := range pairs {
					if pairs[k] != refPairs[k] {
						t.Fatalf("%s: pair %d = %+v, want %+v", v.name, k, pairs[k], refPairs[k])
					}
				}
			}
		})
	}
}

// TestJoinOptionsSealedBlock exercises the public Options plumbing:
// Encrypted defaults to the block store, SealedBlock(1) selects the
// per-entry store, and both agree with the plain run.
func TestJoinOptionsSealedBlock(t *testing.T) {
	left, right := NewTable(), NewTable()
	for i := 0; i < 40; i++ {
		left.MustAppend(uint64(i%10), fmt.Sprintf("l%d", i))
		right.MustAppend(uint64(i%10), fmt.Sprintf("r%d", i))
	}
	var hashes []string
	var rows int
	for _, opt := range []*Options{
		{TraceHash: true},
		{TraceHash: true, Encrypted: true},
		{TraceHash: true, Encrypted: true, SealedBlock: 1},
		{TraceHash: true, Encrypted: true, SealedBlock: 7, Workers: 3},
	} {
		res, err := Join(left, right, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.TraceHash == "" {
			t.Fatal("no trace hash")
		}
		hashes = append(hashes, res.TraceHash)
		if rows == 0 {
			rows = len(res.Pairs)
		} else if len(res.Pairs) != rows {
			t.Fatalf("output size diverges: %d vs %d", len(res.Pairs), rows)
		}
	}
	for i := 1; i < len(hashes); i++ {
		if hashes[i] != hashes[0] {
			t.Fatalf("variant %d trace hash diverges from plain", i)
		}
	}
}
