package oblivjoin

import (
	"fmt"
	"testing"
)

func TestJoinKeyed(t *testing.T) {
	left, right := buildTables(t)
	pairs, err := JoinKeyed(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 4 {
		t.Fatalf("m = %d, want 4", len(pairs))
	}
	for _, p := range pairs {
		if p.Key != 2 {
			t.Fatalf("pair %+v has wrong key", p)
		}
	}
}

func TestJoinKeyedRejectsBaselines(t *testing.T) {
	left, right := buildTables(t)
	if _, err := JoinKeyed(left, right, &Options{Algorithm: AlgorithmSortMerge}); err != ErrKeyedUnsupported {
		t.Fatalf("err = %v", err)
	}
}

func TestToTableRoundTrip(t *testing.T) {
	pairs := []KeyedPair{{Key: 1, Left: "a", Right: "b"}}
	tab, err := ToTable(pairs, "+")
	if err != nil {
		t.Fatal(err)
	}
	got := tab.Pairs()
	if len(got) != 1 || got[0].Key != 1 || got[0].Left != "a+b" {
		t.Fatalf("got %+v", got)
	}
	long := []KeyedPair{{Key: 1, Left: "aaaaaaaaaa", Right: "bbbbbbbbbb"}}
	if _, err := ToTable(long, "+"); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestGroupByPublicAPI(t *testing.T) {
	items := []GroupItem{
		{Key: 1, Value: 10}, {Key: 2, Value: 5}, {Key: 1, Value: 20},
	}
	got := GroupBy(items)
	want := []GroupResult{
		{Key: 1, Count: 2, Sum: 30, Min: 10, Max: 20},
		{Key: 2, Count: 1, Sum: 5, Min: 5, Max: 5},
	}
	if len(got) != len(want) {
		t.Fatalf("got %+v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if out := GroupBy(nil); len(out) != 0 {
		t.Fatal("GroupBy(nil) nonempty")
	}
}

func TestJoinGroupStatsPublicAPI(t *testing.T) {
	left, right := buildTables(t) // key 2: 2 left rows × 2 right rows
	stats := JoinGroupStats(left, right)
	if len(stats) != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	s := stats[0]
	if s.Key != 2 || s.LeftRows != 2 || s.RightRows != 2 || s.Pairs != 4 {
		t.Fatalf("stat = %+v", s)
	}
	// Total pair count must equal the join's m without running the join.
	if int(s.Pairs) != OutputSize(left, right) {
		t.Fatal("Pairs disagrees with OutputSize")
	}
}

func TestFilterPublicAPI(t *testing.T) {
	tab := NewTable()
	for i := uint64(0); i < 10; i++ {
		tab.MustAppend(i, fmt.Sprintf("row%d", i))
	}
	kept := Filter(tab, func(key uint64, _ [MaxDataLen]byte) uint64 {
		return CTBetween(key, 3, 6)
	})
	if kept.Len() != 4 {
		t.Fatalf("kept %d rows", kept.Len())
	}
	for _, p := range kept.Pairs() {
		if p.Key < 3 || p.Key > 6 {
			t.Fatalf("row %+v escaped the filter", p)
		}
	}
}

func TestCTHelpers(t *testing.T) {
	if CTLess(1, 2) != 1 || CTLess(2, 1) != 0 {
		t.Fatal("CTLess")
	}
	if CTEq(5, 5) != 1 || CTEq(5, 6) != 0 {
		t.Fatal("CTEq")
	}
	if CTAnd(1, 0) != 0 || CTOr(1, 0) != 1 || CTNot(0) != 1 {
		t.Fatal("CT logic")
	}
	if CTBetween(5, 5, 5) != 1 || CTBetween(4, 5, 6) != 0 || CTBetween(7, 5, 6) != 0 {
		t.Fatal("CTBetween")
	}
}

func TestDistinctUnionSemijoinPublicAPI(t *testing.T) {
	a := NewTable()
	a.MustAppend(1, "x")
	a.MustAppend(1, "x") // duplicate
	a.MustAppend(2, "y")

	d := Distinct(a)
	if d.Len() != 2 {
		t.Fatalf("Distinct len = %d", d.Len())
	}

	b := NewTable()
	b.MustAppend(2, "y") // duplicate across tables
	b.MustAppend(3, "z")
	u := Union(a, b)
	if u.Len() != 3 {
		t.Fatalf("Union len = %d: %+v", u.Len(), u.Pairs())
	}

	s := Semijoin(a, b)
	if s.Len() != 1 || s.Pairs()[0].Key != 2 {
		t.Fatalf("Semijoin = %+v", s.Pairs())
	}
}
