package oblivjoin

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"oblivjoin/internal/workload"
)

func buildTables(t *testing.T) (*Table, *Table) {
	t.Helper()
	left := NewTable()
	left.MustAppend(1, "alice")
	left.MustAppend(2, "bob")
	left.MustAppend(2, "beth")
	right := NewTable()
	right.MustAppend(2, "order-a")
	right.MustAppend(2, "order-b")
	right.MustAppend(3, "order-c")
	return left, right
}

func pairSet(ps []Pair) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Left + "|" + p.Right
	}
	sort.Strings(out)
	return out
}

func wantPairs() []string {
	return []string{"beth|order-a", "beth|order-b", "bob|order-a", "bob|order-b"}
}

func TestJoinDefault(t *testing.T) {
	left, right := buildTables(t)
	res, err := Join(left, right, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := pairSet(res.Pairs)
	want := wantPairs()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("pairs = %v, want %v", got, want)
	}
}

func TestAllAlgorithmsAgree(t *testing.T) {
	left, right := buildTables(t)
	want := strings.Join(wantPairs(), ",")
	for _, alg := range []Algorithm{
		AlgorithmOblivious, AlgorithmSortMerge, AlgorithmNestedLoop, AlgorithmORAM,
	} {
		res, err := Join(left, right, &Options{Algorithm: alg, Seed: 42})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := strings.Join(pairSet(res.Pairs), ","); got != want {
			t.Fatalf("%v: pairs = %v, want %v", alg, got, want)
		}
	}
}

func TestOpaqueRequiresPrimaryKey(t *testing.T) {
	left, right := buildTables(t) // left has key 2 twice
	if _, err := Join(left, right, &Options{Algorithm: AlgorithmOpaque}); err != ErrNotPrimaryKey {
		t.Fatalf("err = %v, want ErrNotPrimaryKey", err)
	}
	pk := NewTable()
	pk.MustAppend(1, "p1")
	pk.MustAppend(2, "p2")
	res, err := Join(pk, right, &Options{Algorithm: AlgorithmOpaque})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 2 {
		t.Fatalf("m = %d, want 2", len(res.Pairs))
	}
}

func TestOptionsVariants(t *testing.T) {
	left, right := buildTables(t)
	want := strings.Join(wantPairs(), ",")
	for _, opts := range []*Options{
		{Probabilistic: true, Seed: 7},
		{MergeExchange: true},
		{Encrypted: true},
		{Probabilistic: true, MergeExchange: true, Encrypted: true, Seed: 3},
	} {
		res, err := Join(left, right, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if got := strings.Join(pairSet(res.Pairs), ","); got != want {
			t.Fatalf("%+v: pairs wrong", opts)
		}
	}
}

func TestCollectStats(t *testing.T) {
	left, right := buildTables(t)
	res, err := Join(left, right, &Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st == nil {
		t.Fatal("Stats nil")
	}
	if st.N1 != 3 || st.N2 != 3 || st.M != 4 {
		t.Fatalf("sizes %+v", st)
	}
	if st.SortComparisons == 0 || st.RouteOps == 0 {
		t.Fatalf("instrumentation empty: %+v", st)
	}
	if len(st.Phases) == 0 {
		t.Fatal("phases empty")
	}
}

func TestTraceHashEqualWithinClass(t *testing.T) {
	for _, cl := range workload.EqualOutputClasses() {
		var first string
		for i, gen := range cl.Variants {
			r1, r2 := gen()
			res, err := Join(FromRows(r1), FromRows(r2), &Options{TraceHash: true})
			if err != nil {
				t.Fatal(err)
			}
			if res.TraceHash == "" {
				t.Fatal("TraceHash empty")
			}
			if i == 0 {
				first = res.TraceHash
			} else if res.TraceHash != first {
				t.Fatalf("class %q: variant %d hash differs", cl.Name, i)
			}
		}
	}
}

func TestSGXSimReportsTime(t *testing.T) {
	left, right := buildTables(t)
	res, err := Join(left, right, &Options{SGXSim: true, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.SimulatedTime <= 0 {
		t.Fatal("SimulatedTime not populated")
	}
	if res.Stats.Accesses == 0 {
		t.Fatal("Accesses not populated")
	}
}

func TestOutputSize(t *testing.T) {
	left, right := buildTables(t)
	if m := OutputSize(left, right); m != 4 {
		t.Fatalf("OutputSize = %d, want 4", m)
	}
}

func TestAppendTooLong(t *testing.T) {
	tb := NewTable()
	if err := tb.Append(1, strings.Repeat("x", MaxDataLen+1)); err == nil {
		t.Fatal("expected ErrDataTooLong")
	}
}

func TestAlgorithmString(t *testing.T) {
	names := map[Algorithm]string{
		AlgorithmOblivious: "oblivious", AlgorithmSortMerge: "sort-merge",
		AlgorithmNestedLoop: "nested-loop", AlgorithmOpaque: "opaque",
		AlgorithmORAM: "oram", Algorithm(99): "Algorithm(99)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", int(a), a.String())
		}
	}
}

func TestUnknownAlgorithmRejected(t *testing.T) {
	left, right := buildTables(t)
	if _, err := Join(left, right, &Options{Algorithm: Algorithm(99)}); err == nil {
		t.Fatal("expected error")
	}
}

func TestReadWriteCSV(t *testing.T) {
	in := "key,val\n1,alpha\n2,beta\n"
	tb, err := ReadCSV(strings.NewReader(in), 0, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	other := NewTable()
	other.MustAppend(2, "two")
	res, err := Join(tb, other, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "beta,two\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("notanumber,x\n"), 0, 1, false); err == nil {
		t.Fatal("expected key parse error")
	}
	if _, err := ReadCSV(strings.NewReader("1\n"), 0, 1, false); err == nil {
		t.Fatal("expected missing-column error")
	}
	long := strings.Repeat("z", MaxDataLen+1)
	if _, err := ReadCSV(strings.NewReader("1,"+long+"\n"), 0, 1, false); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestEmptyJoin(t *testing.T) {
	res, err := Join(NewTable(), NewTable(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
}
