package oblivjoin

import (
	"errors"

	"oblivjoin/internal/catalog"
)

// The engine's misuse errors are typed so callers can distinguish them
// programmatically (errors.As / errors.Is) instead of matching message
// strings.

// TableExistsError is returned by Engine.Register when the name is
// already taken; overwriting is the explicit Replace operation.
type TableExistsError = catalog.TableExistsError

// UnknownTableError is returned when a query, Drop or schema lookup
// references a table that is not registered.
type UnknownTableError = catalog.UnknownTableError

// InvalidNameError is returned for table names outside the accepted
// grammar (letters, digits and underscores; names fold to lower case).
type InvalidNameError = catalog.InvalidNameError

// ErrNoTables is returned when a query is prepared or executed before
// any table has been registered.
var ErrNoTables = catalog.ErrNoTables

// ErrNilTable is returned by Register and Replace for a nil *Table.
var ErrNilTable = errors.New("oblivjoin: nil table")
