package oblivjoin

import (
	"errors"

	"oblivjoin/internal/catalog"
	"oblivjoin/internal/query"
	"oblivjoin/internal/service"
	"oblivjoin/internal/table"
	"oblivjoin/internal/wal"
)

// The engine's misuse errors are typed so callers can distinguish them
// programmatically (errors.As / errors.Is) instead of matching message
// strings.

// TableExistsError is returned by Engine.Register when the name is
// already taken; overwriting is the explicit Replace operation.
type TableExistsError = catalog.TableExistsError

// UnknownTableError is returned when a query, Drop or schema lookup
// references a table that is not registered.
type UnknownTableError = catalog.UnknownTableError

// InvalidNameError is returned for table names outside the accepted
// grammar (letters, digits and underscores; names fold to lower case).
type InvalidNameError = catalog.InvalidNameError

// ErrNoTables is returned when a query is prepared or executed before
// any table has been registered.
var ErrNoTables = catalog.ErrNoTables

// ErrNilTable is returned by Register and Replace for a nil *Table.
var ErrNilTable = errors.New("oblivjoin: nil table")

// ErrCanceled is wrapped by errors returned from a query whose context
// was cancelled mid-run; such errors also match context.Canceled. A
// cancelled query aborts within one execution round and leaves the
// catalog, the plan cache and concurrent queries untouched.
var ErrCanceled = query.ErrCanceled

// ErrDeadline is wrapped by errors returned from a query whose
// deadline — caller-supplied or the engine's WithQueryTimeout default
// — expired mid-run; such errors also match context.DeadlineExceeded.
var ErrDeadline = query.ErrDeadline

// ErrOverloaded is wrapped by errors returned when a query arrives
// while the admission queue is full (WithMaxInFlight/WithQueueDepth):
// the engine is saturated and the caller should back off and retry.
var ErrOverloaded = service.ErrOverloaded

// ErrShuttingDown is wrapped by errors returned for queries arriving
// after Shutdown began.
var ErrShuttingDown = service.ErrShuttingDown

// ErrSealedAuth is wrapped by errors returned when a sealed store
// block fails authentication mid-query: the affected query fails with
// this typed error, the table is quarantined, and concurrent queries
// against healthy tables are unaffected.
var ErrSealedAuth = table.ErrSealedAuth

// ErrSpillIO is wrapped by errors returned when a sealed spill file
// read or write fails mid-query (disk error, out of space). Like
// ErrSealedAuth, it fails only the affected query.
var ErrSpillIO = table.ErrSpillIO

// ErrQuarantined is wrapped by errors returned for queries touching a
// quarantined table — one whose sealed backing failed authentication.
// Replace or Restore installs a fresh backing and lifts the mark.
var ErrQuarantined = catalog.ErrQuarantined

// QuarantinedError names the quarantined table and carries the
// authentication failure that fenced it.
type QuarantinedError = catalog.QuarantinedError

// ErrReadOnly is wrapped by errors returned for mutations while the
// durable store is in read-only degraded mode after persistent write
// failure; reads keep serving, and a successful Checkpoint restores
// write service.
var ErrReadOnly = wal.ErrReadOnly
