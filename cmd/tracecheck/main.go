// Command tracecheck runs the empirical obliviousness verification of
// §6.1: for each input class with fixed public parameters (n1, n2, m),
// it executes the join over every variant, hashes the full sequence of
// public-memory accesses, and reports whether all hashes agree.
//
// Usage:
//
//	tracecheck [-n sizes] [-variants k] [-alg oblivious|nested-loop|opaque]
//
// Beyond the built-in hand-constructed classes, -n generates random
// classes at larger sizes: power-law inputs filtered into equal-m
// buckets, k variants each.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"oblivjoin"
	"oblivjoin/internal/table"
	"oblivjoin/internal/workload"
)

func hashOf(alg oblivjoin.Algorithm, t1, t2 []table.Row) (string, int, error) {
	res, err := oblivjoin.Join(oblivjoin.FromRows(t1), oblivjoin.FromRows(t2),
		&oblivjoin.Options{Algorithm: alg, TraceHash: true})
	if err != nil {
		return "", 0, err
	}
	return res.TraceHash, len(res.Pairs), nil
}

func main() {
	sizesFlag := flag.String("n", "64,256", "comma-separated sizes for generated classes")
	variants := flag.Int("variants", 4, "variants per generated class")
	algFlag := flag.String("alg", "oblivious", "algorithm to verify: oblivious, nested-loop, opaque")
	flag.Parse()

	algs := map[string]oblivjoin.Algorithm{
		"oblivious":   oblivjoin.AlgorithmOblivious,
		"nested-loop": oblivjoin.AlgorithmNestedLoop,
		"opaque":      oblivjoin.AlgorithmOpaque,
	}
	alg, ok := algs[*algFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "tracecheck: unknown algorithm %q\n", *algFlag)
		os.Exit(2)
	}

	failures := 0

	// Built-in hand-constructed classes (exact m control).
	if alg == oblivjoin.AlgorithmOblivious || alg == oblivjoin.AlgorithmNestedLoop {
		for _, cl := range workload.EqualOutputClasses() {
			var first string
			ok := true
			for i, gen := range cl.Variants {
				t1, t2 := gen()
				h, _, err := hashOf(alg, t1, t2)
				if err != nil {
					fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
					os.Exit(1)
				}
				if i == 0 {
					first = h
				} else if h != first {
					ok = false
				}
			}
			report(cl.Name, len(cl.Variants), first, ok, &failures)
		}
	}

	// Generated classes: same (n1, n2), bucketed by m.
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: bad size %q\n", s)
			os.Exit(2)
		}
		if alg == oblivjoin.AlgorithmOpaque {
			// Opaque accepts only PK-FK inputs; vary which keys the FK
			// side hits while keeping n and m fixed.
			var first string
			ok := true
			for v := 0; v < *variants; v++ {
				t1, t2 := workload.PKFK(n/2, n/2, int64(1000+v))
				h, _, err := hashOf(alg, t1, t2)
				if err != nil {
					fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
					os.Exit(1)
				}
				if v == 0 {
					first = h
				} else if h != first {
					ok = false
				}
			}
			report(fmt.Sprintf("pkfk n=%d", n), *variants, first, ok, &failures)
			continue
		}
		// The oblivious join's trace is a function of (n1, n2, m): build
		// variants with identical all three. OneToOne with permuted keys
		// gives unlimited same-class variants.
		var first string
		okAll := true
		for v := 0; v < *variants; v++ {
			t1, t2 := workload.OneToOne(n)
			// Relabel keys per variant: different data, same structure
			// class parameters.
			for i := range t1 {
				t1[i].J += uint64(v * 1000000)
			}
			for i := range t2 {
				t2[i].J += uint64(v * 1000000)
			}
			h, _, err := hashOf(alg, t1, t2)
			if err != nil {
				fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
				os.Exit(1)
			}
			if v == 0 {
				first = h
			} else if h != first {
				okAll = false
			}
		}
		report(fmt.Sprintf("1x1 n=%d", n), *variants, first, okAll, &failures)
	}

	if failures > 0 {
		fmt.Printf("FAIL: %d class(es) with divergent traces\n", failures)
		os.Exit(1)
	}
	fmt.Println("PASS: all classes trace-equal")
}

func report(name string, k int, hash string, ok bool, failures *int) {
	status := "equal"
	if !ok {
		status = "DIVERGENT"
		*failures++
	}
	fmt.Printf("%-24s %d variants  hash %s…  %s\n", name, k, hash[:16], status)
}
