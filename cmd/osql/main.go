// Command osql runs oblivious SQL over CSV files.
//
// Each -t flag registers a table from a CSV file whose first column is
// an unsigned-integer key and second column a data payload (≤16 bytes).
// The remaining arguments form one SQL statement; prefixing it with
// EXPLAIN (or passing -explain) prints the oblivious plan instead of
// executing it.
//
// Usage:
//
//	osql -t users=users.csv -t orders=orders.csv \
//	     "SELECT key, left.data, right.data FROM users JOIN orders USING (key)"
//	osql -t users=users.csv "EXPLAIN SELECT key FROM users ORDER BY key"
//
// Flags -workers, -encrypted and -stats select parallel execution, an
// AES-sealed entry store, and a per-operator execution report on
// stderr (add -tracehash for the access-pattern digest;
// -sealed-block sets the sealed store's entries-per-block granularity,
// 1 for the per-entry store).
//
// Supported grammar: SELECT [DISTINCT] items FROM t {JOIN tN USING
// (key)} [WHERE pred] [GROUP BY key] [ORDER BY key] [LIMIT n]; see the
// library documentation for details.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oblivjoin"
)

type tableFlags map[string]string

func (t tableFlags) String() string { return fmt.Sprint(map[string]string(t)) }

func (t tableFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=path, got %q", v)
	}
	t[name] = path
	return nil
}

func main() {
	tables := tableFlags{}
	flag.Var(tables, "t", "register a table: name=path.csv (repeatable)")
	header := flag.Bool("header", false, "CSV files have a header row")
	explain := flag.Bool("explain", false, "print the oblivious plan instead of executing")
	workers := flag.Int("workers", 0, "parallel lanes for the oblivious operators (0 = sequential, < 0 = GOMAXPROCS)")
	encrypted := flag.Bool("encrypted", false, "keep intermediate entries AES-sealed in public memory")
	sealedBlock := flag.Int("sealed-block", 0, "entries per sealed ciphertext block (0 = default 16, 1 = per-entry; implies -encrypted)")
	stats := flag.Bool("stats", false, "print a per-operator execution report to stderr")
	traceHash := flag.Bool("tracehash", false, "also compute the SHA-256 access-pattern digest (implies -stats)")
	memBudget := flag.Int64("mem-budget", 0, "bound tracked run memory to this many bytes, spilling stores to sealed disk blocks (0 = unbounded)")
	spillDir := flag.String("spill-dir", "", "directory for sealed spill files (default: system temp)")
	materialized := flag.Bool("materialized", false, "use the stage-at-a-time executor instead of the streaming default")
	shards := flag.Int("shards", 0, "hash-partition each join across this many concurrent shard pipelines (<= 1 unsharded)")
	dataDir := flag.String("data-dir", "", "durable catalog directory (sealed WAL + snapshots): query persisted tables, including AS OF versions")
	replace := flag.Bool("replace", false, "-t overwrites an existing durable table instead of failing")
	costPlan := flag.Bool("cost-plan", false, "enable the cost-aware planner: greedy join ordering and predicate pushdown from public cardinalities")
	replanFactor := flag.Float64("replan-factor", 0, "replan when observed comparator cost diverges from the model by this factor (> 1 arms; implies -stats)")
	flag.Parse()

	if flag.NArg() == 0 || (len(tables) == 0 && *dataDir == "") {
		fmt.Fprintln(os.Stderr, "usage: osql [-data-dir dir] -t name=file.csv [-t ...] \"[EXPLAIN] SELECT ...\"")
		flag.PrintDefaults()
		os.Exit(2)
	}
	sql := strings.Join(flag.Args(), " ")
	// EXPLAIN <query> meta-command: strip the keyword, print the plan.
	if rest, ok := cutKeyword(sql, "explain"); ok {
		*explain = true
		sql = rest
	}

	var opts []oblivjoin.EngineOption
	if *workers != 0 {
		opts = append(opts, oblivjoin.WithWorkers(*workers))
	}
	if *encrypted {
		opts = append(opts, oblivjoin.WithEncryptedStore())
	}
	if *sealedBlock > 0 {
		opts = append(opts, oblivjoin.WithSealedBlock(*sealedBlock))
	}
	if *stats {
		opts = append(opts, oblivjoin.WithStats())
	}
	if *traceHash {
		opts = append(opts, oblivjoin.WithTraceHash())
	}
	if *memBudget > 0 {
		opts = append(opts, oblivjoin.WithMemBudget(*memBudget))
	}
	if *spillDir != "" {
		opts = append(opts, oblivjoin.WithSpillDir(*spillDir))
	}
	if *materialized {
		opts = append(opts, oblivjoin.WithMaterialized())
	}
	if *shards > 1 {
		opts = append(opts, oblivjoin.WithShards(*shards))
	}
	if *dataDir != "" {
		opts = append(opts, oblivjoin.WithDataDir(*dataDir))
	}
	if *costPlan {
		opts = append(opts, oblivjoin.WithCostPlan())
	}
	if *replanFactor > 1 {
		opts = append(opts, oblivjoin.WithReplanFactor(*replanFactor))
	}
	eng, err := oblivjoin.OpenEngine(opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "osql: %v\n", err)
		os.Exit(1)
	}
	// Durable catalogs flush on exit so registrations done this run
	// survive the next; a memory-only Shutdown is a no-op flush.
	defer eng.Shutdown(nil)
	for name, path := range tables {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "osql: %v\n", err)
			os.Exit(1)
		}
		t, err := oblivjoin.ReadCSV(f, 0, 1, *header)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "osql: %s: %v\n", path, err)
			os.Exit(1)
		}
		if *replace {
			err = eng.Replace(name, t)
		} else {
			err = eng.Register(name, t)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "osql: %v\n", err)
			os.Exit(1)
		}
	}

	if *explain {
		// EXPLAIN prints the plan and its modeled cost: exact comparator
		// counts, route ops and padded footprints from public
		// cardinalities, without executing anything.
		plan, err := eng.ExplainCost(sql)
		if err != nil {
			fmt.Fprintf(os.Stderr, "osql: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(plan)
		return
	}
	stmt, err := eng.Prepare(sql)
	if err != nil {
		fmt.Fprintf(os.Stderr, "osql: %v\n", err)
		os.Exit(1)
	}
	res, ps, err := stmt.ExecStats()
	if err != nil {
		fmt.Fprintf(os.Stderr, "osql: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(strings.Join(res.Columns, ","))
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, ","))
	}
	if ps != nil && (*stats || *traceHash || *replanFactor > 1) {
		fmt.Fprintln(os.Stderr, ps)
		if m := stmt.Model(); m != nil {
			fmt.Fprintf(os.Stderr, "comparators: modeled %d, observed %d\n",
				m.Comparators, ps.Comparators)
		}
	}
}

// cutKeyword strips a leading case-insensitive keyword followed by
// whitespace, reporting whether it was present.
func cutKeyword(s, kw string) (string, bool) {
	trimmed := strings.TrimLeft(s, " \t\r\n")
	if len(trimmed) <= len(kw) || !strings.EqualFold(trimmed[:len(kw)], kw) {
		return s, false
	}
	rest := trimmed[len(kw):]
	if rest[0] != ' ' && rest[0] != '\t' && rest[0] != '\r' && rest[0] != '\n' {
		return s, false
	}
	return strings.TrimLeft(rest, " \t\r\n"), true
}
