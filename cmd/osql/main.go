// Command osql runs oblivious SQL over CSV files.
//
// Each -t flag registers a table from a CSV file whose first column is
// an unsigned-integer key and second column a data payload (≤16 bytes).
// The remaining arguments form one SQL statement; with -explain, the
// oblivious plan is printed instead of executing.
//
// Usage:
//
//	osql -t users=users.csv -t orders=orders.csv \
//	     "SELECT key, left.data, right.data FROM users JOIN orders USING (key)"
//
// Supported grammar: SELECT [DISTINCT] items FROM t [JOIN t2 USING
// (key)] [WHERE pred] [GROUP BY key] [ORDER BY key] [LIMIT n]; see the
// library documentation for details.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oblivjoin"
)

type tableFlags map[string]string

func (t tableFlags) String() string { return fmt.Sprint(map[string]string(t)) }

func (t tableFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want name=path, got %q", v)
	}
	t[name] = path
	return nil
}

func main() {
	tables := tableFlags{}
	flag.Var(tables, "t", "register a table: name=path.csv (repeatable)")
	header := flag.Bool("header", false, "CSV files have a header row")
	explain := flag.Bool("explain", false, "print the oblivious plan instead of executing")
	flag.Parse()

	if flag.NArg() == 0 || len(tables) == 0 {
		fmt.Fprintln(os.Stderr, "usage: osql -t name=file.csv [-t ...] \"SELECT ...\"")
		flag.PrintDefaults()
		os.Exit(2)
	}
	sql := strings.Join(flag.Args(), " ")

	eng := oblivjoin.NewEngine()
	for name, path := range tables {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "osql: %v\n", err)
			os.Exit(1)
		}
		t, err := oblivjoin.ReadCSV(f, 0, 1, *header)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "osql: %s: %v\n", path, err)
			os.Exit(1)
		}
		if err := eng.Register(name, t); err != nil {
			fmt.Fprintf(os.Stderr, "osql: %v\n", err)
			os.Exit(1)
		}
	}

	if *explain {
		plan, err := eng.Explain(sql)
		if err != nil {
			fmt.Fprintf(os.Stderr, "osql: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(plan)
		return
	}
	res, err := eng.Query(sql)
	if err != nil {
		fmt.Fprintf(os.Stderr, "osql: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(strings.Join(res.Columns, ","))
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, ","))
	}
}
