// Command oservd serves the oblivious SQL engine over HTTP: a long-
// lived query service with a shared catalog and a prepared-plan cache,
// the traffic-facing deployment of the library.
//
// Usage:
//
//	oservd [flags]
//
//	-addr string        listen address (default ":8343")
//	-workers int        parallel lanes per oblivious operator (0 sequential, <0 GOMAXPROCS)
//	-encrypted          AES-seal every intermediate table entry
//	-sealed-block int   entries per sealed ciphertext block (0 default 16, 1 per-entry; implies -encrypted)
//	-sealed-catalog     AES-seal registered tables at rest
//	-merge-exchange     Batcher's merge-exchange network instead of bitonic
//	-shards int         hash-partition each join across this many
//	                    concurrent shard pipelines (<= 1 unsharded)
//	-stats              collect PlanStats for every query by default
//	-cache int          prepared-plan LRU capacity (default 64)
//	-max-inflight int   admission capacity in cost units of 4096 input
//	                    rows (0 = unbounded); excess queries queue
//	-queue int          admission wait-queue bound; a query arriving
//	                    with the queue full gets 503 (default 64)
//	-query-timeout dur  per-query deadline covering queue wait +
//	                    execution (e.g. 30s; 0 = none)
//	-csv name=path      register a CSV file as a table (repeatable; key in
//	                    column 0, data in column 1)
//	-header             CSV files start with a header row
//	-demo int           register demo tables t1, t2, t3 with this many rows
//	-data-dir path      durable catalog: sealed WAL + snapshots in this
//	                    directory, recovered on boot (empty = memory-only)
//	-snapshot-every n   commits between automatic snapshots (0 = 256)
//	-history n          retained catalog versions for AS OF (0 = 64)
//
// Endpoints (all JSON):
//
//	POST /query    {"sql": "...", "workers": 4, "stats": true,
//	                "trace_hash": true, "explain": false}
//	GET  /tables   registered schemas
//	POST /tables   {"name": "t", "rows": [{"key": 1, "data": "a"}],
//	                "replace": false}
//	GET  /healthz  liveness, catalog size, plan-cache counters
//	GET  /stats    admission occupancy, outcome counters, latency
//	               percentiles (p50/p95/p99), goroutine high-water mark
//
// A query cancelled by its client (closed connection) or by
// -query-timeout aborts within one execution round; overload returns
// 503 with Retry-After. SIGINT/SIGTERM drain gracefully: the listener
// closes, in-flight queries finish, and with -data-dir the WAL is
// fsynced and a final snapshot written before the process exits.
//
// Quickstart:
//
//	oservd -demo 1024 -max-inflight 8 -queue 32 -query-timeout 30s &
//	curl -s localhost:8343/healthz
//	curl -s localhost:8343/query -d '{"sql":
//	  "SELECT key, COUNT(*) FROM t1 JOIN t2 USING (key) GROUP BY key",
//	  "stats": true}'
//	curl -s localhost:8343/stats
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"oblivjoin"
)

// csvFlags collects repeated -csv name=path arguments.
type csvFlags []string

func (c *csvFlags) String() string { return strings.Join(*c, ",") }

func (c *csvFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*c = append(*c, v)
	return nil
}

func main() {
	var csvs csvFlags
	addr := flag.String("addr", ":8343", "listen address")
	workers := flag.Int("workers", 0, "parallel lanes per oblivious operator (0 sequential, <0 GOMAXPROCS)")
	encrypted := flag.Bool("encrypted", false, "AES-seal every intermediate table entry")
	sealedBlock := flag.Int("sealed-block", 0, "entries per sealed ciphertext block (0 = default 16, 1 = per-entry; implies -encrypted)")
	sealed := flag.Bool("sealed-catalog", false, "AES-seal registered tables at rest")
	mergeEx := flag.Bool("merge-exchange", false, "use Batcher's merge-exchange sorting network")
	stats := flag.Bool("stats", false, "collect PlanStats for every query by default")
	cache := flag.Int("cache", 0, "prepared-plan LRU capacity (0 = default)")
	maxInFlight := flag.Int("max-inflight", 0, "admission capacity in cost units of 4096 input rows (0 = unbounded)")
	queueDepth := flag.Int("queue", 0, "admission wait-queue bound (0 = default 64)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline covering queue wait + execution (0 = none)")
	memBudget := flag.Int64("mem-budget", 0, "bound tracked per-query memory to this many bytes, spilling stores to sealed disk blocks (0 = unbounded)")
	spillDir := flag.String("spill-dir", "", "directory for sealed spill files (default: system temp)")
	materialized := flag.Bool("materialized", false, "use the stage-at-a-time executor instead of the streaming default")
	shards := flag.Int("shards", 0, "hash-partition each join across this many concurrent shard pipelines (<= 1 unsharded)")
	header := flag.Bool("header", false, "CSV files start with a header row")
	demo := flag.Int("demo", 0, "register demo tables t1, t2, t3 with this many rows")
	dataDir := flag.String("data-dir", "", "durable catalog directory: sealed WAL + snapshots, recovered on boot (empty = memory-only)")
	snapshotEvery := flag.Int("snapshot-every", 0, "commits between automatic snapshots (0 = default 256, <0 disables)")
	history := flag.Int("history", 0, "retained catalog versions for AS OF reads (0 = default 64, <0 unlimited)")
	costPlan := flag.Bool("cost-plan", false, "enable the cost-aware planner: greedy join ordering and predicate pushdown from public cardinalities")
	replanFactor := flag.Float64("replan-factor", 0, "replan when observed comparator cost diverges from the model by this factor (> 1 arms; implies stats)")
	flag.Var(&csvs, "csv", "register a CSV file as a table: name=path (repeatable)")
	flag.Parse()

	var opts []oblivjoin.EngineOption
	if *workers != 0 {
		opts = append(opts, oblivjoin.WithWorkers(*workers))
	}
	if *encrypted {
		opts = append(opts, oblivjoin.WithEncryptedStore())
	}
	if *sealedBlock > 0 {
		opts = append(opts, oblivjoin.WithSealedBlock(*sealedBlock))
	}
	if *sealed {
		opts = append(opts, oblivjoin.WithSealedCatalog())
	}
	if *mergeEx {
		opts = append(opts, oblivjoin.WithMergeExchange())
	}
	if *stats {
		opts = append(opts, oblivjoin.WithStats())
	}
	if *cache > 0 {
		opts = append(opts, oblivjoin.WithPlanCache(*cache))
	}
	if *maxInFlight > 0 {
		opts = append(opts, oblivjoin.WithMaxInFlight(*maxInFlight))
	}
	if *queueDepth > 0 {
		opts = append(opts, oblivjoin.WithQueueDepth(*queueDepth))
	}
	if *memBudget > 0 {
		opts = append(opts, oblivjoin.WithMemBudget(*memBudget))
	}
	if *spillDir != "" {
		opts = append(opts, oblivjoin.WithSpillDir(*spillDir))
	}
	if *materialized {
		opts = append(opts, oblivjoin.WithMaterialized())
	}
	if *shards > 1 {
		opts = append(opts, oblivjoin.WithShards(*shards))
	}
	if *queryTimeout > 0 {
		opts = append(opts, oblivjoin.WithQueryTimeout(*queryTimeout))
	}
	if *dataDir != "" {
		opts = append(opts, oblivjoin.WithDataDir(*dataDir))
	}
	if *snapshotEvery != 0 {
		opts = append(opts, oblivjoin.WithSnapshotEvery(*snapshotEvery))
	}
	if *history != 0 {
		opts = append(opts, oblivjoin.WithHistory(*history))
	}
	if *costPlan {
		opts = append(opts, oblivjoin.WithCostPlan())
	}
	if *replanFactor > 1 {
		opts = append(opts, oblivjoin.WithReplanFactor(*replanFactor))
	}
	eng, err := oblivjoin.OpenEngine(opts...)
	if err != nil {
		log.Fatalf("oservd: %v", err)
	}
	if ri := eng.Recovery(); ri != nil {
		log.Printf("oservd: recovered catalog v%d (%d tables: snapshot v%d + %d wal records)",
			ri.Version, ri.Tables, ri.SnapshotVersion, ri.Replayed)
		if ri.Tail != nil {
			log.Printf("oservd: discarded torn wal tail (%d bytes): %v", ri.DiscardedBytes, ri.Tail)
		}
		if !ri.CleanShutdown && (ri.Version > 0 || ri.Replayed > 0) {
			log.Printf("oservd: previous shutdown was not clean; recovered from log")
		}
	}

	for _, spec := range csvs {
		name, path, _ := strings.Cut(spec, "=")
		if err := loadCSV(eng, name, path, *header); err != nil {
			log.Fatalf("oservd: -csv %s: %v", spec, err)
		}
	}
	if *demo > 0 {
		if err := loadDemo(eng, *demo); err != nil {
			log.Fatalf("oservd: -demo: %v", err)
		}
	}

	for _, ti := range eng.Tables() {
		log.Printf("oservd: table %s (%d rows)", ti.Name, ti.Rows)
	}
	// An explicit listener (rather than ListenAndServe) so the actual
	// bound address is logged — ":0" deployments, like the crash-
	// injection harness, read it from the log line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("oservd: listen: %v", err)
	}
	log.Printf("oservd: listening on %s", ln.Addr())

	// Health watcher: log every state transition (ok ⇄ degraded ⇄
	// read-only) so operators see degradation and recovery in the logs
	// without polling /healthz themselves.
	healthDone := make(chan struct{})
	go func() {
		last := eng.Health()
		if last.State != "ok" {
			log.Printf("oservd: health %s: %s", last.State, last.Cause)
		}
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		for {
			select {
			case <-healthDone:
				return
			case <-tick.C:
			}
			h := eng.Health()
			if h.State == last.State && len(h.Quarantined) == len(last.Quarantined) {
				continue
			}
			switch {
			case h.State == "ok":
				log.Printf("oservd: health recovered: ok")
			case len(h.Quarantined) > 0:
				log.Printf("oservd: health %s: %s (quarantined: %s)",
					h.State, h.Cause, strings.Join(h.Quarantined, ", "))
			default:
				log.Printf("oservd: health %s: %s", h.State, h.Cause)
			}
			last = h
		}
	}()
	srv := &http.Server{
		Handler:           eng.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful drain: on SIGINT/SIGTERM stop accepting connections,
	// let in-flight requests (and their queries) finish, then stop
	// query admission and wait for the engine to drain.
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Printf("oservd: draining (in-flight queries finish, new ones are refused)")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("oservd: http shutdown: %v", err)
		}
		if err := eng.Shutdown(ctx); err != nil {
			log.Printf("oservd: engine shutdown: %v", err)
		}
		st := eng.Stats()
		log.Printf("oservd: drained: %d completed, %d failed, %d rejected, %d cancelled (p95 %s)",
			st.Completed, st.Failed, st.Rejected, st.Canceled, time.Duration(st.P95NS))
	}()

	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	close(healthDone)
	<-done
}

func loadCSV(eng *oblivjoin.Engine, name, path string, header bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := oblivjoin.ReadCSV(f, 0, 1, header)
	if err != nil {
		return err
	}
	return registerFresh(eng, name, t)
}

// registerFresh registers t under name, but keeps a recovered table of
// the same name: with -data-dir, a reboot with the same -csv/-demo
// flags must not clobber the durable contents.
func registerFresh(eng *oblivjoin.Engine, name string, t *oblivjoin.Table) error {
	err := eng.Register(name, t)
	var exists *oblivjoin.TableExistsError
	if errors.As(err, &exists) {
		log.Printf("oservd: table %s already present (recovered); keeping stored contents", name)
		return nil
	}
	return err
}

// loadDemo registers three matched tables of n rows each: every key
// appears in all three with short tagged payloads, so joins, chains
// and the GROUP BY fast path all have work to do.
func loadDemo(eng *oblivjoin.Engine, n int) error {
	for ti, tag := range []string{"a", "b", "c"} {
		t := oblivjoin.NewTable()
		for i := 0; i < n; i++ {
			if err := t.Append(uint64(i%(n/2+1)), fmt.Sprintf("%s%d", tag, i)); err != nil {
				return err
			}
		}
		if err := registerFresh(eng, fmt.Sprintf("t%d", ti+1), t); err != nil {
			return err
		}
	}
	return nil
}
