// Command oservd serves the oblivious SQL engine over HTTP: a long-
// lived query service with a shared catalog and a prepared-plan cache,
// the traffic-facing deployment of the library.
//
// Usage:
//
//	oservd [flags]
//
//	-addr string      listen address (default ":8343")
//	-workers int      parallel lanes per oblivious operator (0 sequential, <0 GOMAXPROCS)
//	-encrypted        AES-seal every intermediate table entry
//	-sealed-block int entries per sealed ciphertext block (0 default 16, 1 per-entry; implies -encrypted)
//	-sealed-catalog   AES-seal registered tables at rest
//	-merge-exchange   Batcher's merge-exchange network instead of bitonic
//	-stats            collect PlanStats for every query by default
//	-cache int        prepared-plan LRU capacity (default 64)
//	-csv name=path    register a CSV file as a table (repeatable; key in
//	                  column 0, data in column 1)
//	-header           CSV files start with a header row
//	-demo int         register demo tables t1, t2, t3 with this many rows
//
// Endpoints (all JSON):
//
//	POST /query    {"sql": "...", "workers": 4, "stats": true,
//	                "trace_hash": true, "explain": false}
//	GET  /tables   registered schemas
//	POST /tables   {"name": "t", "rows": [{"key": 1, "data": "a"}],
//	                "replace": false}
//	GET  /healthz  liveness, catalog size, plan-cache counters
//
// Quickstart:
//
//	oservd -demo 1024 &
//	curl -s localhost:8343/healthz
//	curl -s localhost:8343/query -d '{"sql":
//	  "SELECT key, COUNT(*) FROM t1 JOIN t2 USING (key) GROUP BY key",
//	  "stats": true}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"oblivjoin"
)

// csvFlags collects repeated -csv name=path arguments.
type csvFlags []string

func (c *csvFlags) String() string { return strings.Join(*c, ",") }

func (c *csvFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*c = append(*c, v)
	return nil
}

func main() {
	var csvs csvFlags
	addr := flag.String("addr", ":8343", "listen address")
	workers := flag.Int("workers", 0, "parallel lanes per oblivious operator (0 sequential, <0 GOMAXPROCS)")
	encrypted := flag.Bool("encrypted", false, "AES-seal every intermediate table entry")
	sealedBlock := flag.Int("sealed-block", 0, "entries per sealed ciphertext block (0 = default 16, 1 = per-entry; implies -encrypted)")
	sealed := flag.Bool("sealed-catalog", false, "AES-seal registered tables at rest")
	mergeEx := flag.Bool("merge-exchange", false, "use Batcher's merge-exchange sorting network")
	stats := flag.Bool("stats", false, "collect PlanStats for every query by default")
	cache := flag.Int("cache", 0, "prepared-plan LRU capacity (0 = default)")
	header := flag.Bool("header", false, "CSV files start with a header row")
	demo := flag.Int("demo", 0, "register demo tables t1, t2, t3 with this many rows")
	flag.Var(&csvs, "csv", "register a CSV file as a table: name=path (repeatable)")
	flag.Parse()

	var opts []oblivjoin.EngineOption
	if *workers != 0 {
		opts = append(opts, oblivjoin.WithWorkers(*workers))
	}
	if *encrypted {
		opts = append(opts, oblivjoin.WithEncryptedStore())
	}
	if *sealedBlock > 0 {
		opts = append(opts, oblivjoin.WithSealedBlock(*sealedBlock))
	}
	if *sealed {
		opts = append(opts, oblivjoin.WithSealedCatalog())
	}
	if *mergeEx {
		opts = append(opts, oblivjoin.WithMergeExchange())
	}
	if *stats {
		opts = append(opts, oblivjoin.WithStats())
	}
	if *cache > 0 {
		opts = append(opts, oblivjoin.WithPlanCache(*cache))
	}
	eng := oblivjoin.NewEngine(opts...)

	for _, spec := range csvs {
		name, path, _ := strings.Cut(spec, "=")
		if err := loadCSV(eng, name, path, *header); err != nil {
			log.Fatalf("oservd: -csv %s: %v", spec, err)
		}
	}
	if *demo > 0 {
		if err := loadDemo(eng, *demo); err != nil {
			log.Fatalf("oservd: -demo: %v", err)
		}
	}

	for _, ti := range eng.Tables() {
		log.Printf("oservd: table %s (%d rows)", ti.Name, ti.Rows)
	}
	log.Printf("oservd: listening on %s", *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           eng.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	log.Fatal(srv.ListenAndServe())
}

func loadCSV(eng *oblivjoin.Engine, name, path string, header bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	t, err := oblivjoin.ReadCSV(f, 0, 1, header)
	if err != nil {
		return err
	}
	return eng.Register(name, t)
}

// loadDemo registers three matched tables of n rows each: every key
// appears in all three with short tagged payloads, so joins, chains
// and the GROUP BY fast path all have work to do.
func loadDemo(eng *oblivjoin.Engine, n int) error {
	for ti, tag := range []string{"a", "b", "c"} {
		t := oblivjoin.NewTable()
		for i := 0; i < n; i++ {
			if err := t.Append(uint64(i%(n/2+1)), fmt.Sprintf("%s%d", tag, i)); err != nil {
				return err
			}
		}
		if err := eng.Register(fmt.Sprintf("t%d", ti+1), t); err != nil {
			return err
		}
	}
	return nil
}
