// Command ojoin joins two CSV files obliviously from the shell.
//
// Each input file needs an unsigned-integer key column and a data column
// (at most 16 bytes per value). The output is two-column CSV on stdout:
// the matched data values.
//
// Usage:
//
//	ojoin [flags] left.csv right.csv
//
//	-alg oblivious|sort-merge|nested-loop|opaque|oram
//	      join algorithm (default oblivious)
//	-key int    0-based key column (default 0)
//	-data int   0-based data column (default 1)
//	-header     skip a header row
//	-stats      print phase statistics to stderr
//	-hash       print the access-pattern hash to stderr
//	-enc        keep entries AES-sealed in memory
//	-prob       use the probabilistic distribute
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"oblivjoin"
)

func main() {
	alg := flag.String("alg", "oblivious", "join algorithm: oblivious, sort-merge, nested-loop, opaque, oram")
	keyCol := flag.Int("key", 0, "0-based key column")
	dataCol := flag.Int("data", 1, "0-based data column")
	header := flag.Bool("header", false, "skip a header row in both inputs")
	stats := flag.Bool("stats", false, "print phase statistics to stderr")
	hash := flag.Bool("hash", false, "print the access-pattern hash to stderr")
	enc := flag.Bool("enc", false, "store entries AES-sealed in public memory")
	prob := flag.Bool("prob", false, "use the probabilistic (PRP) distribute")
	seed := flag.Int64("seed", 1, "seed for probabilistic variants")
	flag.Parse()

	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: ojoin [flags] left.csv right.csv")
		flag.PrintDefaults()
		os.Exit(2)
	}

	algorithms := map[string]oblivjoin.Algorithm{
		"oblivious":   oblivjoin.AlgorithmOblivious,
		"sort-merge":  oblivjoin.AlgorithmSortMerge,
		"nested-loop": oblivjoin.AlgorithmNestedLoop,
		"opaque":      oblivjoin.AlgorithmOpaque,
		"oram":        oblivjoin.AlgorithmORAM,
	}
	algorithm, ok := algorithms[*alg]
	if !ok {
		fmt.Fprintf(os.Stderr, "ojoin: unknown algorithm %q\n", *alg)
		os.Exit(2)
	}

	load := func(path string) *oblivjoin.Table {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ojoin: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		t, err := oblivjoin.ReadCSV(f, *keyCol, *dataCol, *header)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ojoin: %s: %v\n", path, err)
			os.Exit(1)
		}
		return t
	}
	left := load(flag.Arg(0))
	right := load(flag.Arg(1))

	opts := &oblivjoin.Options{
		Algorithm:     algorithm,
		Probabilistic: *prob,
		Seed:          *seed,
		Encrypted:     *enc,
		CollectStats:  *stats,
		TraceHash:     *hash,
	}
	start := time.Now()
	res, err := oblivjoin.Join(left, right, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ojoin: %v\n", err)
		os.Exit(1)
	}
	if err := oblivjoin.WriteCSV(os.Stdout, res); err != nil {
		fmt.Fprintf(os.Stderr, "ojoin: writing output: %v\n", err)
		os.Exit(1)
	}
	if *stats && res.Stats != nil {
		fmt.Fprintf(os.Stderr, "n1=%d n2=%d m=%d wall=%v\n",
			res.Stats.N1, res.Stats.N2, res.Stats.M, time.Since(start).Round(time.Microsecond))
		fmt.Fprintf(os.Stderr, "sort compare-exchanges=%d route ops=%d\n",
			res.Stats.SortComparisons, res.Stats.RouteOps)
		for phase, d := range res.Stats.Phases {
			fmt.Fprintf(os.Stderr, "  %-16s %v\n", phase, d.Round(time.Microsecond))
		}
	}
	if *hash {
		fmt.Fprintf(os.Stderr, "access-pattern hash: %s\n", res.TraceHash)
	}
}
