// Command oloadgen drives the in-process query service with a
// deterministic closed-loop load and emits a BENCH_service.json perf
// record: throughput, latency percentiles, rejection rate and the
// goroutine high-water mark per workload scenario.
//
// Usage:
//
//	oloadgen [flags]
//
//	-scenarios list  comma-separated scenario families: uniform,
//	                 powerlaw, pkfk, mixed, spill, shard (default all;
//	                 spill runs its rotation under a 256 KiB per-query
//	                 memory budget, forcing the sealed spill path;
//	                 shard hash-partitions every join across 4
//	                 concurrent shard pipelines and verifies composed
//	                 trace hashes against a sequential reference at the
//	                 same shard count)
//	-n int           rows per generated table (default 2048)
//	-clients int     closed-loop client goroutines (default 8)
//	-ops int         operations per scenario (default 96)
//	-workers int     oblivious parallelism per query (default 2)
//	-max-inflight int admission capacity in cost units (default 8)
//	-queue int       admission wait-queue bound (default 32)
//	-timeout dur     per-query deadline (default 30s)
//	-seed int        workload generator seed (default 1)
//	-encrypted       AES-seal intermediate stores
//	-short           CI preset: scenarios uniform,mixed with a small
//	                 op budget (overridable by explicit flags)
//	-best-of int     repeat the whole run N times and keep per-metric
//	                 minima — the noise floor a regression ratchet
//	                 should compare (default 1)
//	-notrace         skip the per-query trace-hash verification
//	-check           exit non-zero when any scenario leaks goroutines
//	                 after Shutdown or completes a query whose trace
//	                 hash diverges from the sequential reference
//	-json path       write records to this path (default
//	                 BENCH_service.json; empty to skip)
//
// Every client executes a fixed slice of a fixed query rotation, and
// the tables come from seeded generators, so the executed workload is
// identical run to run; timings are the host's. The -check gates are
// exactly what the CI load job enforces; recalibrating the committed
// BENCH_baseline/BENCH_service.json means re-running the CI command
// and committing the fresh record.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"oblivjoin/internal/exp"
)

func main() {
	scenarios := flag.String("scenarios", "", "comma-separated scenario families: uniform, powerlaw, pkfk, mixed, spill, shard (default all)")
	n := flag.Int("n", 2048, "rows per generated table")
	clients := flag.Int("clients", 8, "closed-loop client goroutines")
	ops := flag.Int("ops", 96, "operations per scenario")
	workers := flag.Int("workers", 2, "oblivious parallelism per query")
	maxInFlight := flag.Int("max-inflight", 8, "admission capacity in cost units (0 = unbounded)")
	queue := flag.Int("queue", 32, "admission wait-queue bound")
	timeout := flag.Duration("timeout", 30e9, "per-query deadline (0 = none)")
	seed := flag.Int64("seed", 1, "workload generator seed")
	encrypted := flag.Bool("encrypted", false, "AES-seal intermediate stores")
	short := flag.Bool("short", false, "CI preset: uniform,mixed with a small op budget")
	noTrace := flag.Bool("notrace", false, "skip trace-hash verification")
	check := flag.Bool("check", false, "exit non-zero on goroutine leaks or trace divergence")
	bestOf := flag.Int("best-of", 1, "repeat the whole run N times and keep per-metric minima (noise floor for the regression gate)")
	jsonPath := flag.String("json", "BENCH_service.json", "write records to this path (empty to skip)")
	flag.Parse()

	cfg := exp.LoadConfig{
		N:           *n,
		Clients:     *clients,
		Ops:         *ops,
		Workers:     *workers,
		MaxInFlight: *maxInFlight,
		Queue:       *queue,
		Timeout:     *timeout,
		Seed:        *seed,
		Encrypted:   *encrypted,
		CheckTraces: !*noTrace,
	}
	if *short {
		// The CI preset: two scenario classes, a budget of ~20s. The op
		// count is deliberately larger than the default — the latency
		// percentiles feed a ±25% regression gate, and tails computed
		// over too few samples are scheduler noise, not signal.
		// Explicit flags still win.
		cfg.Scenarios = []string{"uniform", "mixed"}
		setFlags := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { setFlags[f.Name] = true })
		if !setFlags["ops"] {
			cfg.Ops = 256
		}
		if !setFlags["n"] {
			cfg.N = 2048
		}
	}
	if *scenarios != "" {
		cfg.Scenarios = strings.Split(*scenarios, ",")
	}

	if *bestOf < 1 {
		*bestOf = 1
	}
	var runs [][]exp.LoadResult
	for i := 0; i < *bestOf; i++ {
		results, err := exp.RunLoad(os.Stdout, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "oloadgen: %v\n", err)
			os.Exit(1)
		}
		runs = append(runs, results)
	}
	results := exp.MergeBest(runs...)
	if *jsonPath != "" {
		if err := exp.WriteLoadJSON(*jsonPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "oloadgen: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("(load records written to %s)\n", *jsonPath)
	}
	if *check {
		bad := false
		for _, r := range results {
			if r.GoroutineLeak > 0 {
				fmt.Fprintf(os.Stderr, "oloadgen: scenario %s leaked %d goroutines after Shutdown\n",
					r.Scenario, r.GoroutineLeak)
				bad = true
			}
			if cfg.CheckTraces && !r.TraceHashesMatch {
				fmt.Fprintf(os.Stderr, "oloadgen: scenario %s: %d/%d completed queries diverged from the sequential trace reference\n",
					r.Scenario, r.TraceMismatches, r.TraceChecked)
				bad = true
			}
			if r.Failed > 0 {
				fmt.Fprintf(os.Stderr, "oloadgen: scenario %s: %d queries failed outside admission/cancellation\n",
					r.Scenario, r.Failed)
				bad = true
			}
		}
		if bad {
			os.Exit(1)
		}
		fmt.Println("check: no goroutine leaks, all trace hashes match the sequential reference")
	}
}
