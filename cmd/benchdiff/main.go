// Command benchdiff is the CI perf-regression gate: it compares fresh
// BENCH_*.json records against the committed baseline directory and
// exits non-zero when any wall-time or memory metric regresses beyond
// the threshold, or when a baseline benchmark vanished from the fresh
// run.
//
// Usage:
//
//	benchdiff -baseline BENCH_baseline [-threshold 1.25] BENCH_join.json BENCH_sql.json BENCH_sealed.json
//
// Each fresh file is matched to the baseline file of the same name.
// Records match by input size, worker count and sealed-block
// granularity (plus query text for SQL records and scenario × clients
// for the BENCH_service.json load records); every "*_ns" wall-time
// metric a baseline record carries is gated — including the load
// records' p50/p95/p99 latency percentiles — and so is every
// "*_bytes" memory metric (the deterministic peak/total allocation
// gauges), at the same threshold. New benchmarks with no baseline
// entry are reported but do not fail.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"oblivjoin/internal/benchdiff"
)

func main() {
	baseDir := flag.String("baseline", "BENCH_baseline", "directory holding the committed baseline records")
	threshold := flag.Float64("threshold", 1.25, "fail when fresh/baseline wall time exceeds this ratio")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -baseline DIR [-threshold R] fresh.json ...")
		os.Exit(2)
	}

	failed := false
	for _, freshPath := range flag.Args() {
		basePath := filepath.Join(*baseDir, filepath.Base(freshPath))
		base, err := benchdiff.Load(basePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: baseline %s: %v\n", basePath, err)
			os.Exit(2)
		}
		fresh, err := benchdiff.Load(freshPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: fresh %s: %v\n", freshPath, err)
			os.Exit(2)
		}
		rep := benchdiff.Compare(base, fresh, *threshold)
		fmt.Printf("%s vs %s: %d metrics compared, %d regression(s)\n",
			freshPath, basePath, rep.Compared, len(rep.Regressions))
		for _, r := range rep.Regressions {
			fmt.Printf("  REGRESSION %s\n", r)
		}
		for _, k := range rep.MissingInFresh {
			fmt.Printf("  MISSING    %s dropped from fresh run\n", k)
		}
		for _, k := range rep.MissingInBaseline {
			fmt.Printf("  note: %s has no baseline entry\n", k)
		}
		if rep.Failed() {
			failed = true
		}
	}
	if failed {
		fmt.Printf("benchdiff: FAIL (threshold %.2fx)\n", *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK (threshold %.2fx)\n", *threshold)
}
