// Command oblivbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	oblivbench -exp table1|table2|table3|fig7|fig8|circuit|bench|sql|planner|sealed|stream|shard|wal|fault|chaos|all [flags]
//
//	-n int          input size for table1/table3 (default 4096 / 65536)
//	-sizes list     comma-separated n values for fig8
//	-pgm path       also write Figure 7 as a PGM image
//	-bsizes list    comma-separated n values for the bench experiment
//	-ssizes list    comma-separated n values for the sql experiment
//	-pscales list   catalog scale factors for the planner experiment
//	-zsizes list    comma-separated n values for the sealed experiment
//	-tsizes list    comma-separated n values for the stream experiment
//	-workers int    parallel lanes for bench/sql/sealed/stream (0 = GOMAXPROCS)
//	-block int      entries per sealed block for sealed/stream (0 = default 16)
//	-short          stream/shard preset: small sizes for the CI gate
//	-shardn int     input size for the shard experiment (default 65536)
//	-shardset list  comma-separated shard counts for the shard experiment
//	-walrows int    rows per commit for the wal experiment (default 64)
//	-walcommits int fsynced commits in the wal experiment (default 192)
//	-faultn int     query input size for the fault experiment (default 8192)
//	-chaosrows int  table rows for the chaos experiment (default 256)
//	-chaosseed int  fault-injection seed for the chaos experiment
//	-json path      write bench results as JSON (default BENCH_join.json)
//	-shardjson path write shard results as JSON (default BENCH_shard.json)
//	-sqljson path   write sql results as JSON (default BENCH_sql.json)
//	-sealedjson path write sealed results as JSON (default BENCH_sealed.json)
//	-streamjson path write stream results as JSON (default BENCH_stream.json)
//	-waljson path   write wal results as JSON (default BENCH_wal.json)
//	-faultjson path write fault results as JSON (default BENCH_fault.json)
//
// bench (sequential vs parallel join wall times, tracing on, with a
// BENCH_join.json perf record), sql (the same comparison for the SQL
// plan pipeline plus the planner's written-versus-greedy comparator
// records, BENCH_sql.json; planner prints just the comparator table
// without touching the JSON), sealed (plain vs per-entry sealed
// vs block-sealed storage, BENCH_sealed.json) and stream (stage-at-a-
// time vs block-granular streaming peak memory, BENCH_stream.json) are
// opt-in: they run only with an explicit -exp name, never under
// -exp all.
//
// fault measures the fault-injection seam's fault-free overhead
// (direct OS IO vs a disarmed injector on the WAL-commit and spill
// paths, BENCH_fault.json); chaos drives a durable service through
// seeded storage-fault schedules and exits non-zero on any
// containment violation. Both are opt-in.
//
// Absolute timings depend on the host; the reproduction targets are the
// orderings and growth shapes (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"oblivjoin/internal/exp"
)

func main() {
	which := flag.String("exp", "all", "experiment: table1, table2, table3, fig7, fig8, circuit, bench, sql, planner, sealed, stream, shard, wal, fault, chaos, all")
	n := flag.Int("n", 0, "input size for table1/table3 (defaults: 4096, 65536)")
	sizes := flag.String("sizes", "25000,50000,100000,200000", "comma-separated input sizes for fig8")
	pgm := flag.String("pgm", "", "write Figure 7 as a PGM image to this path")
	nlCap := flag.Int("nlcap", 2048, "largest n for the quadratic nested-loop baseline")
	bsizes := flag.String("bsizes", "16384,65536,131072", "comma-separated input sizes for bench")
	ssizes := flag.String("ssizes", "4096,16384,65536", "comma-separated input sizes for sql")
	pscales := flag.String("pscales", "1,2", "comma-separated catalog scale factors for the planner experiment")
	zsizes := flag.String("zsizes", "4096,16384", "comma-separated input sizes for sealed")
	tsizes := flag.String("tsizes", "16384,65536", "comma-separated input sizes for stream")
	workers := flag.Int("workers", 0, "parallel lanes for bench/sql/sealed/stream (0 = GOMAXPROCS)")
	block := flag.Int("block", 0, "entries per sealed block for sealed/stream (0 = default)")
	short := flag.Bool("short", false, "stream/shard preset: small sizes for the CI gate (overridable by -tsizes/-shardn)")
	shardN := flag.Int("shardn", 65536, "input size for the shard experiment")
	shardSet := flag.String("shardset", "1,2,4,8", "comma-separated shard counts for the shard experiment")
	shardJSONPath := flag.String("shardjson", "BENCH_shard.json", "write shard results as JSON to this path (empty to skip)")
	walRows := flag.Int("walrows", 64, "rows per commit for the wal experiment")
	walCommits := flag.Int("walcommits", 192, "fsynced commits in the wal experiment")
	walJSONPath := flag.String("waljson", "BENCH_wal.json", "write wal results as JSON to this path (empty to skip)")
	faultN := flag.Int("faultn", 8192, "query input size for the fault experiment")
	faultJSONPath := flag.String("faultjson", "BENCH_fault.json", "write fault results as JSON to this path (empty to skip)")
	chaosRows := flag.Int("chaosrows", 256, "table rows for the chaos experiment")
	chaosSeed := flag.Uint64("chaosseed", 99, "fault-injection seed for the chaos experiment")
	jsonPath := flag.String("json", "BENCH_join.json", "write bench results as JSON to this path (empty to skip)")
	sqlJSONPath := flag.String("sqljson", "BENCH_sql.json", "write sql results as JSON to this path (empty to skip)")
	sealedJSONPath := flag.String("sealedjson", "BENCH_sealed.json", "write sealed results as JSON to this path (empty to skip)")
	streamJSONPath := flag.String("streamjson", "BENCH_stream.json", "write stream results as JSON to this path (empty to skip)")
	flag.Parse()

	parseSizes := func(s string) ([]int, error) {
		var ns []int
		for _, f := range strings.Split(s, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil {
				return nil, fmt.Errorf("bad size entry %q: %w", f, err)
			}
			ns = append(ns, v)
		}
		return ns, nil
	}

	// bench is opt-in only: it is a perf experiment that writes
	// BENCH_join.json to the working directory, not one of the paper's
	// figures, so a bare `oblivbench` (-exp all) does not run it.
	optIn := map[string]bool{"bench": true, "sql": true, "planner": true, "sealed": true, "stream": true, "shard": true, "wal": true, "fault": true, "chaos": true}
	run := func(name string, f func() error) {
		if *which != name && (*which != "all" || optIn[name]) {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "oblivbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		size := *n
		if size == 0 {
			size = 4096
		}
		return exp.Table1(os.Stdout, size, *nlCap)
	})
	run("table2", func() error { return exp.Table2(os.Stdout) })
	run("table3", func() error {
		size := *n
		if size == 0 {
			size = 65536
		}
		return exp.Table3(os.Stdout, size)
	})
	run("fig7", func() error {
		ascii, img := exp.Fig7()
		fmt.Println("Figure 7 — memory access pattern, n1=n2=4 → m=8")
		fmt.Print(ascii)
		if *pgm != "" {
			if err := os.WriteFile(*pgm, []byte(img), 0o644); err != nil {
				return err
			}
			fmt.Printf("(PGM image written to %s)\n", *pgm)
		}
		return nil
	})
	run("circuit", func() error {
		return exp.Circuit(os.Stdout, []int{4, 8, 16, 32}, 16)
	})
	run("fig8", func() error {
		ns, err := parseSizes(*sizes)
		if err != nil {
			return err
		}
		_, err = exp.Fig8(os.Stdout, ns)
		return err
	})
	run("bench", func() error {
		ns, err := parseSizes(*bsizes)
		if err != nil {
			return err
		}
		results, err := exp.BenchJoin(os.Stdout, ns, *workers)
		if err != nil {
			return err
		}
		if *jsonPath != "" {
			if err := exp.WriteBenchJSON(*jsonPath, results); err != nil {
				return err
			}
			fmt.Printf("(bench results written to %s)\n", *jsonPath)
		}
		return nil
	})
	run("sealed", func() error {
		ns, err := parseSizes(*zsizes)
		if err != nil {
			return err
		}
		results, err := exp.BenchSealed(os.Stdout, ns, *workers, *block)
		if err != nil {
			return err
		}
		if *sealedJSONPath != "" {
			if err := exp.WriteSealedBenchJSON(*sealedJSONPath, results); err != nil {
				return err
			}
			fmt.Printf("(sealed results written to %s)\n", *sealedJSONPath)
		}
		return nil
	})
	run("stream", func() error {
		sz := *tsizes
		if *short {
			set := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["tsizes"] {
				sz = "4096,16384"
			}
		}
		ns, err := parseSizes(sz)
		if err != nil {
			return err
		}
		results, err := exp.BenchStream(os.Stdout, ns, *workers, *block)
		if err != nil {
			return err
		}
		if *streamJSONPath != "" {
			if err := exp.WriteStreamBenchJSON(*streamJSONPath, results); err != nil {
				return err
			}
			fmt.Printf("(stream results written to %s)\n", *streamJSONPath)
		}
		return nil
	})
	run("shard", func() error {
		size := *shardN
		if *short {
			set := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["shardn"] {
				size = 8192
			}
		}
		ss, err := parseSizes(*shardSet)
		if err != nil {
			return err
		}
		results, err := exp.BenchShard(os.Stdout, size, *workers, ss)
		if err != nil {
			return err
		}
		if *shardJSONPath != "" {
			if err := exp.WriteShardBenchJSON(*shardJSONPath, results); err != nil {
				return err
			}
			fmt.Printf("(shard results written to %s)\n", *shardJSONPath)
		}
		return nil
	})
	run("wal", func() error {
		commits := *walCommits
		lens := []int{256, 1024}
		if *short {
			set := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["walcommits"] {
				commits = 64
			}
			lens = []int{64, 256}
		}
		results, err := exp.BenchWAL(os.Stdout, *walRows, commits, lens)
		if err != nil {
			return err
		}
		if *walJSONPath != "" {
			if err := exp.WriteWALBenchJSON(*walJSONPath, results); err != nil {
				return err
			}
			fmt.Printf("(wal results written to %s)\n", *walJSONPath)
		}
		return nil
	})
	run("fault", func() error {
		rows, commits, qn := *walRows, *walCommits, *faultN
		if *short {
			set := map[string]bool{}
			flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
			if !set["walcommits"] {
				commits = 64
			}
			if !set["faultn"] {
				qn = 4096
			}
		}
		results, err := exp.BenchFault(os.Stdout, rows, commits, qn)
		if err != nil {
			return err
		}
		if *faultJSONPath != "" {
			if err := exp.WriteFaultBenchJSON(*faultJSONPath, results); err != nil {
				return err
			}
			fmt.Printf("(fault results written to %s)\n", *faultJSONPath)
		}
		return nil
	})
	run("chaos", func() error {
		_, err := exp.RunChaos(os.Stdout, *chaosRows, *chaosSeed)
		return err
	})
	run("sql", func() error {
		ns, err := parseSizes(*ssizes)
		if err != nil {
			return err
		}
		results, err := exp.BenchSQL(os.Stdout, ns, *workers)
		if err != nil {
			return err
		}
		fmt.Println()
		scales, err := parseSizes(*pscales)
		if err != nil {
			return err
		}
		planner, err := exp.BenchPlanner(os.Stdout, scales)
		if err != nil {
			return err
		}
		if *sqlJSONPath != "" {
			if err := exp.WriteSQLBenchJSON(*sqlJSONPath, results, planner); err != nil {
				return err
			}
			fmt.Printf("(sql results written to %s)\n", *sqlJSONPath)
		}
		return nil
	})
	run("planner", func() error {
		scales, err := parseSizes(*pscales)
		if err != nil {
			return err
		}
		_, err = exp.BenchPlanner(os.Stdout, scales)
		return err
	})
}
