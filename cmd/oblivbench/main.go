// Command oblivbench regenerates the tables and figures of the paper's
// evaluation section.
//
// Usage:
//
//	oblivbench -exp table1|table2|table3|fig7|fig8|all [flags]
//
//	-n int        input size for table1/table3 (default 4096 / 65536)
//	-sizes list   comma-separated n values for fig8
//	-pgm path     also write Figure 7 as a PGM image
//
// Absolute timings depend on the host; the reproduction targets are the
// orderings and growth shapes (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"oblivjoin/internal/exp"
)

func main() {
	which := flag.String("exp", "all", "experiment: table1, table2, table3, fig7, fig8, circuit, all")
	n := flag.Int("n", 0, "input size for table1/table3 (defaults: 4096, 65536)")
	sizes := flag.String("sizes", "25000,50000,100000,200000", "comma-separated input sizes for fig8")
	pgm := flag.String("pgm", "", "write Figure 7 as a PGM image to this path")
	nlCap := flag.Int("nlcap", 2048, "largest n for the quadratic nested-loop baseline")
	flag.Parse()

	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "oblivbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		size := *n
		if size == 0 {
			size = 4096
		}
		return exp.Table1(os.Stdout, size, *nlCap)
	})
	run("table2", func() error { return exp.Table2(os.Stdout) })
	run("table3", func() error {
		size := *n
		if size == 0 {
			size = 65536
		}
		return exp.Table3(os.Stdout, size)
	})
	run("fig7", func() error {
		ascii, img := exp.Fig7()
		fmt.Println("Figure 7 — memory access pattern, n1=n2=4 → m=8")
		fmt.Print(ascii)
		if *pgm != "" {
			if err := os.WriteFile(*pgm, []byte(img), 0o644); err != nil {
				return err
			}
			fmt.Printf("(PGM image written to %s)\n", *pgm)
		}
		return nil
	})
	run("circuit", func() error {
		return exp.Circuit(os.Stdout, []int{4, 8, 16, 32}, 16)
	})
	run("fig8", func() error {
		var ns []int
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -sizes entry %q: %w", s, err)
			}
			ns = append(ns, v)
		}
		_, err := exp.Fig8(os.Stdout, ns)
		return err
	})
}
