// Example service demonstrates the concurrent serving layer: one
// engine shared by many goroutines, a statement prepared once and
// executed 8 ways in parallel, and the plan cache doing its job.
// Every concurrent run produces the same rows and the same canonical
// access-pattern hash as a sequential one.
package main

import (
	"fmt"
	"log"
	"sync"

	"oblivjoin"
)

func main() {
	eng := oblivjoin.NewEngine(
		oblivjoin.WithWorkers(4),
		oblivjoin.WithTraceHash(),
	)

	users := oblivjoin.NewTable()
	orders := oblivjoin.NewTable()
	for i := 0; i < 256; i++ {
		users.MustAppend(uint64(i%96), fmt.Sprintf("u%d", i))
		orders.MustAppend(uint64(i%96), fmt.Sprintf("o%d", i))
	}
	if err := eng.Register("users", users); err != nil {
		log.Fatal(err)
	}
	if err := eng.Register("orders", orders); err != nil {
		log.Fatal(err)
	}

	// Prepared once: parsed, planned and lowered a single time.
	stmt, err := eng.Prepare("SELECT key, COUNT(*) FROM users JOIN orders USING (key) GROUP BY key")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan:", stmt.Explain())

	// Executed 8 ways concurrently: each run gets an isolated execution
	// context, so results and trace hashes are identical everywhere.
	const goroutines = 8
	hashes := make([]string, goroutines)
	rows := make([]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, ps, err := stmt.ExecStats()
			if err != nil {
				log.Fatal(err)
			}
			rows[g] = len(res.Rows)
			hashes[g] = ps.TraceHash
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if hashes[g] != hashes[0] || rows[g] != rows[0] {
			log.Fatal("concurrent runs diverged")
		}
	}
	fmt.Printf("%d concurrent executions: %d groups each, all trace hashes %s…\n",
		goroutines, rows[0], hashes[0][:16])

	cs := eng.CacheStats()
	fmt.Printf("plan cache: %d miss, %d hits\n", cs.Misses, cs.Hits)
}
