// SQL: the oblivious query engine end to end — the cloud-database
// scenario of the paper's introduction.
//
// A tiny retail schema is registered and queried through the SQL front
// end. Every plan stage shown by EXPLAIN is data-oblivious: the server
// hosting these tables learns table sizes, the query text, and result
// sizes — never which rows matched, joined, or dominated a group.
//
// Run with:
//
//	go run ./examples/sql
package main

import (
	"fmt"
	"log"
	"strings"

	"oblivjoin"
)

func main() {
	customers := oblivjoin.NewTable()
	customers.MustAppend(1, "ada")
	customers.MustAppend(2, "bob")
	customers.MustAppend(3, "cat")
	customers.MustAppend(4, "dan")

	orders := oblivjoin.NewTable()
	orders.MustAppend(1, "laptop")
	orders.MustAppend(1, "dock")
	orders.MustAppend(2, "chair")
	orders.MustAppend(3, "desk")
	orders.MustAppend(3, "lamp")
	orders.MustAppend(3, "rug")
	orders.MustAppend(7, "ghost")

	amounts := oblivjoin.NewTable() // order value per customer id
	for _, a := range [][2]uint64{{1, 900}, {1, 120}, {2, 250}, {3, 80}, {3, 40}, {3, 60}} {
		amounts.MustAppend(a[0], fmt.Sprint(a[1]))
	}

	premium := oblivjoin.NewTable()
	premium.MustAppend(1, "y")
	premium.MustAppend(3, "y")

	regions := oblivjoin.NewTable()
	regions.MustAppend(1, "east")
	regions.MustAppend(2, "west")
	regions.MustAppend(3, "east")

	// WithWorkers parallelizes every oblivious operator; WithTraceHash
	// records the SHA-256 access-pattern digest of each query — the
	// result and the digest are identical at every worker count and
	// with WithEncryptedStore.
	eng := oblivjoin.NewEngine(oblivjoin.WithWorkers(4), oblivjoin.WithTraceHash())
	for name, t := range map[string]*oblivjoin.Table{
		"customers": customers, "orders": orders, "amounts": amounts,
		"premium": premium, "regions": regions,
	} {
		if err := eng.Register(name, t); err != nil {
			log.Fatal(err)
		}
	}

	queries := []string{
		"SELECT key, left.data, right.data FROM customers JOIN orders USING (key)",
		"SELECT data FROM customers WHERE key IN (SELECT key FROM premium)",
		"SELECT key, COUNT(*), SUM(data) FROM amounts GROUP BY key",
		"SELECT key, COUNT(*) FROM customers JOIN orders USING (key) GROUP BY key",
		"SELECT DISTINCT key, data FROM orders WHERE key BETWEEN 1 AND 3",
		// A 3-way join (§7): customers ⋈ orders ⋈ regions, composed by
		// re-keying the keyed intermediate result between the stages.
		"SELECT key, left.data, right.data FROM customers JOIN orders USING (key) JOIN regions USING (key)",
	}
	for _, q := range queries {
		plan, err := eng.Explain(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sql>  %s\nplan: %s\n", q, plan)
		fmt.Printf("      %s\n", strings.Join(res.Columns, " | "))
		for _, row := range res.Rows {
			fmt.Printf("      %s\n", strings.Join(row, " | "))
		}
		if st := eng.LastStats(); st != nil {
			fmt.Printf("      trace-hash %s… (%d events, %d comparators)\n",
				st.TraceHash[:16], st.TraceEvents, st.Comparators)
		}
		fmt.Println()
	}

	fmt.Println("note the fourth plan: COUNT over a join uses the §7 fast path —")
	fmt.Println("group dimensions from Augment-Tables, no join materialization;")
	fmt.Println("the last plan chains two oblivious joins through a rekey stage.")
}
