// Analytics: a skewed orders ⋈ customers join with instrumentation.
//
// This is the workload class the paper's evaluation emphasizes: group
// sizes drawn from a power law, so a few "hot" customers account for
// most of the output. A non-oblivious join's access pattern would trace
// out exactly which customers are hot; the oblivious join's does not.
//
// Run with:
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"oblivjoin"
	"oblivjoin/internal/workload"
)

func main() {
	// 2000 combined rows with power-law group sizes (exponent 2).
	t1Rows, t2Rows := workload.PowerLaw(2000, 2.0, 2024)
	customers := oblivjoin.FromRows(t1Rows)
	orders := oblivjoin.FromRows(t2Rows)

	// Group-size profile of the generated input.
	counts := map[uint64]int{}
	for _, r := range t1Rows {
		counts[r.J]++
	}
	for _, r := range t2Rows {
		counts[r.J]++
	}
	sizes := make([]int, 0, len(counts))
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	fmt.Printf("input: %d customers rows, %d orders rows, %d distinct keys\n",
		customers.Len(), orders.Len(), len(counts))
	fmt.Printf("hottest 5 groups: %v (skew is what a leaky join would reveal)\n", sizes[:5])

	start := time.Now()
	res, err := oblivjoin.Join(customers, orders, &oblivjoin.Options{CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noblivious join: m = %d pairs in %v\n", len(res.Pairs), time.Since(start).Round(time.Millisecond))

	st := res.Stats
	fmt.Printf("sorting-network compare-exchanges: %d\n", st.SortComparisons)
	fmt.Printf("routing-network hop steps:         %d\n", st.RouteOps)
	fmt.Println("phase breakdown:")
	phases := make([]string, 0, len(st.Phases))
	for k := range st.Phases {
		phases = append(phases, k)
	}
	sort.Strings(phases)
	var total time.Duration
	for _, k := range phases {
		total += st.Phases[k]
	}
	for _, k := range phases {
		d := st.Phases[k]
		fmt.Printf("  %-17s %8v  (%4.1f%%)\n", k, d.Round(time.Microsecond),
			100*float64(d)/float64(total))
	}

	// Cross-check against the insecure sort-merge join.
	ref, err := oblivjoin.Join(customers, orders, &oblivjoin.Options{Algorithm: oblivjoin.AlgorithmSortMerge})
	if err != nil {
		log.Fatal(err)
	}
	if len(ref.Pairs) != len(res.Pairs) {
		log.Fatalf("MISMATCH: oblivious m=%d, sort-merge m=%d", len(res.Pairs), len(ref.Pairs))
	}
	fmt.Printf("\ncross-check vs insecure sort-merge: both produce m = %d ✓\n", len(ref.Pairs))
}
