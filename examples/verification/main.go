// Verification: the paper's §6.1 obliviousness-verification toolchain.
//
// Three layers of evidence, mirroring the paper:
//
//  1. static — the Figure 6 type system accepts the join's memory
//     skeletons and rejects deliberately leaky variants;
//  2. dynamic, exact — full access logs of same-class inputs compared
//     event by event (small n);
//  3. dynamic, hashed — the streaming H ← h(H‖r‖t‖i) digest over large
//     runs.
//
// Run with:
//
//	go run ./examples/verification
package main

import (
	"fmt"
	"log"

	"oblivjoin"
	"oblivjoin/internal/core"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
	"oblivjoin/internal/typesys"
	"oblivjoin/internal/workload"
)

func main() {
	fmt.Println("── layer 1: type system (Figure 6) ──")
	programs := []struct {
		name string
		p    *typesys.Program
	}{
		{"compare-exchange skeleton", typesys.CompareExchange(0, 1)},
		{"fill-dimensions linear scan", typesys.LinearScan()},
		{"routing network, l=8", typesys.BuildRouteProgram(8)},
		{"bitonic network, n=8", typesys.BuildBitonicProgram(8)},
	}
	for _, pr := range programs {
		tr, err := typesys.Check(pr.p)
		if err != nil {
			log.Fatalf("%s unexpectedly rejected: %v", pr.name, err)
		}
		s := tr.String()
		if r := []rune(s); len(r) > 60 {
			s = string(r[:60]) + "…"
		}
		fmt.Printf("  %-28s well-typed, trace %s\n", pr.name, s)
	}
	for _, bad := range []struct {
		name string
		p    *typesys.Program
	}{
		{"leaky compare-exchange", typesys.LeakyCompareExchange(0, 1)},
		{"loop on secret bound", typesys.SecretLoop()},
		{"secret array index", typesys.SecretIndex()},
	} {
		if _, err := typesys.Check(bad.p); err == nil {
			log.Fatalf("%s unexpectedly accepted", bad.name)
		} else {
			fmt.Printf("  %-28s rejected: %v\n", bad.name, err)
		}
	}

	fmt.Println("\n── layer 2: exact log comparison (n1=n2=4, m=8) ──")
	cls := workload.EqualOutputClasses()[0]
	var logs []*trace.Log
	for _, gen := range cls.Variants {
		t1, t2 := gen()
		l := trace.NewLog()
		sp := memory.NewSpace(l, nil)
		core.Join(&core.Config{Alloc: table.PlainAlloc(sp)}, t1, t2)
		logs = append(logs, l)
	}
	for i := 1; i < len(logs); i++ {
		if !logs[0].Equal(logs[i]) {
			log.Fatalf("variant %d diverges at event %d", i, logs[0].FirstDivergence(logs[i]))
		}
	}
	fmt.Printf("  %d variants, %d events each — logs identical ✓\n", len(logs), logs[0].Len())
	fmt.Println("  access pattern (Figure 7 style):")
	fmt.Print(indent(logs[0].Render(72, 12), "  "))

	fmt.Println("\n── layer 3: hashed logs at scale ──")
	for _, n := range []int{200, 1000} {
		var first string
		const variants = 3
		for v := 0; v < variants; v++ {
			t1, t2 := workload.OneToOne(n)
			for i := range t1 {
				t1[i].J += uint64(v) << 32
			}
			for i := range t2 {
				t2[i].J += uint64(v) << 32
			}
			res, err := oblivjoin.Join(oblivjoin.FromRows(t1), oblivjoin.FromRows(t2),
				&oblivjoin.Options{TraceHash: true})
			if err != nil {
				log.Fatal(err)
			}
			if v == 0 {
				first = res.TraceHash
			} else if res.TraceHash != first {
				log.Fatalf("n=%d: hash mismatch at variant %d", n, v)
			}
		}
		fmt.Printf("  n=%-5d %d variants  hash %s… ✓\n", n, variants, first[:20])
	}
	fmt.Println("\nall three verification layers passed")
}

func indent(s, prefix string) string {
	out := ""
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out += prefix + s[start:i+1]
			start = i + 1
		}
	}
	if start < len(s) {
		out += prefix + s[start:]
	}
	return out
}
