// Quickstart: the smallest possible oblivious join.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"oblivjoin"
)

func main() {
	// A toy users table keyed by user id…
	users := oblivjoin.NewTable()
	users.MustAppend(1, "alice")
	users.MustAppend(2, "bob")
	users.MustAppend(3, "carol")

	// …and an orders table keyed by the purchasing user.
	orders := oblivjoin.NewTable()
	orders.MustAppend(2, "keyboard")
	orders.MustAppend(2, "mouse")
	orders.MustAppend(3, "monitor")
	orders.MustAppend(9, "stapler") // no matching user

	// Join them. The nil options select the paper's oblivious join: the
	// memory access pattern of this call depends only on the table sizes
	// and the output size, never on who bought what.
	res, err := oblivjoin.Join(users, orders, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d matching pairs:\n", len(res.Pairs))
	for _, p := range res.Pairs {
		fmt.Printf("  %-8s bought %s\n", p.Left, p.Right)
	}

	// The output size is public by design; everything else is not.
	fmt.Printf("output size m = %d (the only thing the server learns beyond n1, n2)\n",
		oblivjoin.OutputSize(users, orders))
}
