// Enclave: the SGX cost simulation behind Figure 8's enclave curves.
//
// The join is executed against the enclave cost model at several input
// sizes, twice each: once with a generous Enclave Page Cache and once
// with a deliberately tiny one, so the paging penalty the paper
// anticipates ("we anticipate a drop in performance for input sizes
// where the EPC size is insufficient") appears at laptop scale.
//
// Run with:
//
//	go run ./examples/enclave
package main

import (
	"fmt"
	"log"
	"time"

	"oblivjoin"
	"oblivjoin/internal/workload"
)

func run(n int, epc int64) (time.Duration, uint64, uint64) {
	t1, t2 := workload.MatchingPairs(n)
	res, err := oblivjoin.Join(oblivjoin.FromRows(t1), oblivjoin.FromRows(t2),
		&oblivjoin.Options{SGXSim: true, EPCBytes: epc, CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	return res.SimulatedTime, res.Stats.Accesses, res.Stats.Faults
}

func main() {
	fmt.Println("simulated enclave execution (join, m ≈ n1 = n2 = n/2)")
	fmt.Printf("%8s | %12s %12s %8s | %12s %12s %10s\n",
		"n", "roomy EPC", "accesses", "faults", "tiny EPC", "accesses", "faults")
	for _, n := range []int{2000, 8000, 32000} {
		bigT, bigA, bigF := run(n, 1<<30)         // 1 GiB: never pages
		smallT, smallA, smallF := run(n, 256<<10) // 256 KiB: pages heavily
		fmt.Printf("%8d | %12v %12d %8d | %12v %12d %10d\n",
			n, bigT.Round(time.Microsecond), bigA, bigF,
			smallT.Round(time.Microsecond), smallA, smallF)
		if smallF == 0 && n >= 8000 {
			log.Fatal("expected page faults with a 256 KiB EPC")
		}
	}
	fmt.Println()
	fmt.Println("the right-hand columns show the Figure 8 'bend': once the working")
	fmt.Println("set exceeds the EPC, every fresh page costs a simulated swap, and")
	fmt.Println("simulated time jumps even though the access COUNT is identical —")
	fmt.Println("the access PATTERN is oblivious either way, only its price changes.")
}
