// Multiway: a 3-way join composed from two binary oblivious joins —
// the composition the paper's §7 sketches as future work.
//
// The schema is users ⋈ orders ⋈ shipments, all keyed by user id. The
// intermediate result stays keyed because JoinKeyed carries the join
// value through (the plumbing that makes oblivious joins composable);
// ToTable re-packages it for the second join.
//
// Security note: composing two oblivious joins is itself oblivious —
// each stage's accesses depend only on its own (n1, n2, m) — but the
// intermediate size m1 becomes public, as the paper's model allows.
//
// Run with:
//
//	go run ./examples/multiway
package main

import (
	"fmt"
	"log"

	"oblivjoin"
)

func main() {
	// users(id, name)
	users := oblivjoin.NewTable()
	users.MustAppend(1, "ann")
	users.MustAppend(2, "ben")
	users.MustAppend(3, "cyd")

	// orders(user, item)
	orders := oblivjoin.NewTable()
	orders.MustAppend(1, "disk")
	orders.MustAppend(1, "ram")
	orders.MustAppend(2, "gpu")
	orders.MustAppend(4, "cpu") // no such user

	// shipments(user, city)
	shipments := oblivjoin.NewTable()
	shipments.MustAppend(1, "Kyiv")
	shipments.MustAppend(2, "Lima")
	shipments.MustAppend(2, "Oslo")

	// Stage 1: users ⋈ orders, keeping the key in the output.
	stage1, err := oblivjoin.JoinKeyed(users, orders, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1 (users ⋈ orders): m1 = %d\n", len(stage1))

	// Re-package the keyed intermediate result as a table whose payload
	// is "name+item", still keyed by user id.
	mid, err := oblivjoin.ToTable(stage1, "+")
	if err != nil {
		log.Fatal(err)
	}

	// Stage 2: (users ⋈ orders) ⋈ shipments.
	stage2, err := oblivjoin.Join(mid, shipments, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 2 (⋈ shipments):    m2 = %d\n\n", len(stage2.Pairs))
	fmt.Println("user+item        shipped to")
	for _, p := range stage2.Pairs {
		fmt.Printf("  %-14s %s\n", p.Left, p.Right)
	}

	// Expected: ann's two orders ship to Kyiv; ben's gpu ships to both
	// Lima and Oslo; cyd ordered nothing; user 4 has no account.
	if len(stage2.Pairs) != 2+2 {
		log.Fatalf("expected 4 rows, got %d", len(stage2.Pairs))
	}
	fmt.Println("\n3-way join via composition: correct ✓")
}
