// PSI: private set intersection as a degenerate oblivious join.
//
// Two parties' sets become two tables with the element as the join key;
// every group is 1×1 or smaller, so the join output is exactly the
// intersection. The example also demonstrates the §6.1 verification
// workflow: runs over different same-size sets produce bit-identical
// access-pattern hashes, so the storage server learns only the set sizes
// and the intersection size.
//
// Run with:
//
//	go run ./examples/psi
package main

import (
	"fmt"
	"log"

	"oblivjoin"
)

func joinHash(a, b []uint64) (pairs []oblivjoin.Pair, hash string) {
	ta := oblivjoin.NewTable()
	for _, x := range a {
		ta.MustAppend(x, fmt.Sprintf("A:%d", x))
	}
	tb := oblivjoin.NewTable()
	for _, x := range b {
		tb.MustAppend(x, fmt.Sprintf("B:%d", x))
	}
	res, err := oblivjoin.Join(ta, tb, &oblivjoin.Options{TraceHash: true})
	if err != nil {
		log.Fatal(err)
	}
	return res.Pairs, res.TraceHash
}

func main() {
	alice := []uint64{3, 7, 12, 19, 25, 31}
	bob := []uint64{5, 7, 19, 22, 31, 40}

	pairs, h1 := joinHash(alice, bob)
	fmt.Printf("intersection (%d elements):\n", len(pairs))
	for _, p := range pairs {
		fmt.Printf("  %s ∩ %s\n", p.Left, p.Right)
	}

	// Different sets, same sizes, same intersection cardinality: the
	// server-visible execution must be identical.
	carol := []uint64{100, 200, 300, 400, 500, 600}
	dave := []uint64{200, 400, 600, 700, 800, 900}
	pairs2, h2 := joinHash(carol, dave)

	fmt.Printf("\nrun 1 access-pattern hash: %s…\n", h1[:24])
	fmt.Printf("run 2 access-pattern hash: %s…  (|∩| = %d)\n", h2[:24], len(pairs2))
	if h1 == h2 {
		fmt.Println("hashes identical: the server cannot tell WHICH elements intersect ✓")
	} else {
		log.Fatal("hashes differ: obliviousness violated")
	}

	// A different intersection size is allowed (and expected) to change
	// the trace: the output length is public.
	erin := []uint64{1, 2, 3, 4, 5, 6}
	frank := []uint64{1, 2, 3, 4, 5, 6}
	pairs3, h3 := joinHash(erin, frank)
	fmt.Printf("\nfull-overlap run: |∩| = %d, hash %s… (differs: m is public by design)\n",
		len(pairs3), h3[:24])
}
