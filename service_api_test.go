package oblivjoin

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"
)

// These tests cover the serving-layer surface of the public API: typed
// misuse errors, catalog management, prepared statements and the plan
// cache.

func TestRegisterDuplicateTypedError(t *testing.T) {
	eng := NewEngine()
	tb := NewTable()
	tb.MustAppend(1, "a")
	if err := eng.Register("users", tb); err != nil {
		t.Fatal(err)
	}
	err := eng.Register("users", tb)
	var dup *TableExistsError
	if !errors.As(err, &dup) || dup.Name != "users" {
		t.Fatalf("duplicate Register = %v, want *TableExistsError{users}", err)
	}
	// Replace is the explicit overwrite.
	bigger := NewTable()
	bigger.MustAppend(1, "a")
	bigger.MustAppend(2, "b")
	if err := eng.Replace("users", bigger); err != nil {
		t.Fatal(err)
	}
	infos := eng.Tables()
	if len(infos) != 1 || infos[0].Rows != 2 {
		t.Fatalf("Tables after Replace = %+v", infos)
	}
}

func TestQueryBeforeRegisterTypedError(t *testing.T) {
	eng := NewEngine()
	if _, err := eng.Query("SELECT key FROM users"); !errors.Is(err, ErrNoTables) {
		t.Fatalf("Query on empty engine = %v, want ErrNoTables", err)
	}
	if _, err := eng.Prepare("SELECT key FROM users"); !errors.Is(err, ErrNoTables) {
		t.Fatalf("Prepare on empty engine = %v, want ErrNoTables", err)
	}
}

func TestRegisterNilAndInvalid(t *testing.T) {
	eng := NewEngine()
	if err := eng.Register("users", nil); !errors.Is(err, ErrNilTable) {
		t.Fatalf("Register(nil) = %v, want ErrNilTable", err)
	}
	var inv *InvalidNameError
	if err := eng.Register("bad name", NewTable()); !errors.As(err, &inv) {
		t.Fatalf("Register(bad name) = %v, want *InvalidNameError", err)
	}
	var unk *UnknownTableError
	if err := eng.Drop("ghost"); !errors.As(err, &unk) {
		t.Fatalf("Drop(ghost) = %v, want *UnknownTableError", err)
	}
}

func TestUnknownTableTypedFromQuery(t *testing.T) {
	eng := newEngineFixture(t)
	_, err := eng.Query("SELECT key FROM nope")
	var unk *UnknownTableError
	if !errors.As(err, &unk) || unk.Name != "nope" {
		t.Fatalf("Query(unknown) = %v, want *UnknownTableError{nope}", err)
	}
}

// TestPreparedConcurrentEquivalence is the acceptance criterion at the
// public API: a prepared statement executed from 8+ goroutines returns
// results and canonical trace hashes identical to a sequential run.
func TestPreparedConcurrentEquivalence(t *testing.T) {
	eng := multiwayFixture(t, WithTraceHash())
	st, err := eng.Prepare(
		"SELECT key, left.data, right.data FROM users JOIN orders USING (key) JOIN ships USING (key)")
	if err != nil {
		t.Fatal(err)
	}
	refRes, refPS, err := st.ExecStats()
	if err != nil {
		t.Fatal(err)
	}
	if refPS == nil || refPS.TraceHash == "" {
		t.Fatal("no reference trace hash")
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, ps, err := st.ExecStats()
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(res, refRes) {
				errs[g] = errors.New("result diverged from sequential run")
				return
			}
			if ps.TraceHash != refPS.TraceHash {
				errs[g] = errors.New("trace hash diverged from sequential run")
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

func TestEngineCacheStats(t *testing.T) {
	eng := newEngineFixture(t)
	const sql = "SELECT key FROM users"
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	cs := eng.CacheStats()
	if cs.Misses != 1 || cs.Hits != 1 || cs.Size != 1 {
		t.Fatalf("CacheStats = %+v, want 1 miss, 1 hit, size 1", cs)
	}
}

func TestStmtExplain(t *testing.T) {
	eng := newEngineFixture(t)
	st, err := eng.Prepare("SELECT key FROM users WHERE key = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Explain(); got != "scan(users) → filter[branch-free] → project" {
		t.Fatalf("Stmt.Explain = %q", got)
	}
	if st.SQL() != "SELECT key FROM users WHERE key = 1" {
		t.Fatalf("Stmt.SQL = %q", st.SQL())
	}
}

// TestQueryContextCancelTyped: the public context-aware surface — a
// cancelled QueryContext returns an error matching both ErrCanceled
// and context.Canceled, and the engine keeps serving afterwards.
func TestQueryContextCancelTyped(t *testing.T) {
	eng := newEngineFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.QueryContext(ctx, "SELECT key FROM users"); !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled QueryContext = %v, want ErrCanceled", err)
	}
	if _, err := eng.Query("SELECT key FROM users"); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
	st, err := eng.Prepare("SELECT key FROM users")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExecContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancelled ExecContext = %v, want ErrCanceled", err)
	}
}

// TestEngineQueryTimeoutTyped: WithQueryTimeout surfaces ErrDeadline.
func TestEngineQueryTimeoutTyped(t *testing.T) {
	eng := NewEngine(WithQueryTimeout(time.Nanosecond))
	tb := NewTable()
	for i := 0; i < 512; i++ {
		tb.MustAppend(uint64(i), "x")
	}
	if err := eng.Register("t", tb); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Query("SELECT key, left.data, right.data FROM t JOIN t USING (key)")
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}

// TestEngineShutdownAndStats: Shutdown drains, refuses new queries
// with ErrShuttingDown, and Stats reports the lifecycle counters.
func TestEngineShutdownAndStats(t *testing.T) {
	eng := newEngineFixture(t)
	if _, err := eng.Query("SELECT key FROM users"); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Completed != 1 || st.P50NS <= 0 {
		t.Fatalf("Stats = %+v", st)
	}
	if err := eng.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query("SELECT key FROM users"); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("query after Shutdown = %v, want ErrShuttingDown", err)
	}
	if !eng.Stats().ShuttingDown {
		t.Fatal("Stats().ShuttingDown = false after Shutdown")
	}
}

// TestEngineOverloadTyped: capacity 1 and queue 1 under a held slot
// surfaces ErrOverloaded through the public API.
func TestEngineOverloadTyped(t *testing.T) {
	eng := NewEngine(WithMaxInFlight(1), WithQueueDepth(1))
	tb := NewTable()
	for i := 0; i < 4096; i++ {
		tb.MustAppend(uint64(i), "x")
	}
	if err := eng.Register("big", tb); err != nil {
		t.Fatal(err)
	}
	// Saturate: one long query in flight, one queued, then overload.
	started := make(chan struct{}, 2)
	res := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			started <- struct{}{}
			_, err := eng.Query("SELECT key, left.data, right.data FROM big JOIN big USING (key)")
			res <- err
		}()
	}
	<-started
	<-started
	// Wait until one executes and one queues, then the next must bounce.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := eng.Stats()
		if s.InFlight == 1 && s.Queued == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("saturation never reached: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := eng.Query("SELECT key FROM big WHERE key = 1"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if err := <-res; err != nil {
		t.Fatal(err)
	}
	if s := eng.Stats(); s.Rejected != 1 || s.Completed != 2 {
		t.Fatalf("Stats = %+v", s)
	}
}
