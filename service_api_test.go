package oblivjoin

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

// These tests cover the serving-layer surface of the public API: typed
// misuse errors, catalog management, prepared statements and the plan
// cache.

func TestRegisterDuplicateTypedError(t *testing.T) {
	eng := NewEngine()
	tb := NewTable()
	tb.MustAppend(1, "a")
	if err := eng.Register("users", tb); err != nil {
		t.Fatal(err)
	}
	err := eng.Register("users", tb)
	var dup *TableExistsError
	if !errors.As(err, &dup) || dup.Name != "users" {
		t.Fatalf("duplicate Register = %v, want *TableExistsError{users}", err)
	}
	// Replace is the explicit overwrite.
	bigger := NewTable()
	bigger.MustAppend(1, "a")
	bigger.MustAppend(2, "b")
	if err := eng.Replace("users", bigger); err != nil {
		t.Fatal(err)
	}
	infos := eng.Tables()
	if len(infos) != 1 || infos[0].Rows != 2 {
		t.Fatalf("Tables after Replace = %+v", infos)
	}
}

func TestQueryBeforeRegisterTypedError(t *testing.T) {
	eng := NewEngine()
	if _, err := eng.Query("SELECT key FROM users"); !errors.Is(err, ErrNoTables) {
		t.Fatalf("Query on empty engine = %v, want ErrNoTables", err)
	}
	if _, err := eng.Prepare("SELECT key FROM users"); !errors.Is(err, ErrNoTables) {
		t.Fatalf("Prepare on empty engine = %v, want ErrNoTables", err)
	}
}

func TestRegisterNilAndInvalid(t *testing.T) {
	eng := NewEngine()
	if err := eng.Register("users", nil); !errors.Is(err, ErrNilTable) {
		t.Fatalf("Register(nil) = %v, want ErrNilTable", err)
	}
	var inv *InvalidNameError
	if err := eng.Register("bad name", NewTable()); !errors.As(err, &inv) {
		t.Fatalf("Register(bad name) = %v, want *InvalidNameError", err)
	}
	var unk *UnknownTableError
	if err := eng.Drop("ghost"); !errors.As(err, &unk) {
		t.Fatalf("Drop(ghost) = %v, want *UnknownTableError", err)
	}
}

func TestUnknownTableTypedFromQuery(t *testing.T) {
	eng := newEngineFixture(t)
	_, err := eng.Query("SELECT key FROM nope")
	var unk *UnknownTableError
	if !errors.As(err, &unk) || unk.Name != "nope" {
		t.Fatalf("Query(unknown) = %v, want *UnknownTableError{nope}", err)
	}
}

// TestPreparedConcurrentEquivalence is the acceptance criterion at the
// public API: a prepared statement executed from 8+ goroutines returns
// results and canonical trace hashes identical to a sequential run.
func TestPreparedConcurrentEquivalence(t *testing.T) {
	eng := multiwayFixture(t, WithTraceHash())
	st, err := eng.Prepare(
		"SELECT key, left.data, right.data FROM users JOIN orders USING (key) JOIN ships USING (key)")
	if err != nil {
		t.Fatal(err)
	}
	refRes, refPS, err := st.ExecStats()
	if err != nil {
		t.Fatal(err)
	}
	if refPS == nil || refPS.TraceHash == "" {
		t.Fatal("no reference trace hash")
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, ps, err := st.ExecStats()
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(res, refRes) {
				errs[g] = errors.New("result diverged from sequential run")
				return
			}
			if ps.TraceHash != refPS.TraceHash {
				errs[g] = errors.New("trace hash diverged from sequential run")
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

func TestEngineCacheStats(t *testing.T) {
	eng := newEngineFixture(t)
	const sql = "SELECT key FROM users"
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(sql); err != nil {
		t.Fatal(err)
	}
	cs := eng.CacheStats()
	if cs.Misses != 1 || cs.Hits != 1 || cs.Size != 1 {
		t.Fatalf("CacheStats = %+v, want 1 miss, 1 hit, size 1", cs)
	}
}

func TestStmtExplain(t *testing.T) {
	eng := newEngineFixture(t)
	st, err := eng.Prepare("SELECT key FROM users WHERE key = 1")
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Explain(); got != "scan(users) → filter[branch-free] → project" {
		t.Fatalf("Stmt.Explain = %q", got)
	}
	if st.SQL() != "SELECT key FROM users WHERE key = 1" {
		t.Fatalf("Stmt.SQL = %q", st.SQL())
	}
}
