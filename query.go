package oblivjoin

import (
	"oblivjoin/internal/aggregate"
	"oblivjoin/internal/core"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/ops"
	"oblivjoin/internal/table"
)

// This file exposes the oblivious query operators beyond the binary
// join: keyed join (for multi-way composition), grouping aggregation,
// selection, duplicate elimination, union and semijoin. Each operator's
// access pattern depends only on its input and output sizes.

// KeyedPair is one output row of JoinKeyed: the shared join key and the
// two data payloads.
type KeyedPair struct {
	Key   uint64
	Left  string
	Right string
}

// JoinKeyed is Join but keeps the join key in each output row, so the
// result can be fed directly into another join — the composition that
// makes multi-way joins (the paper's §7) practical.
func JoinKeyed(left, right *Table, opts *Options) ([]KeyedPair, error) {
	if opts == nil {
		opts = &Options{}
	}
	if opts.Algorithm != AlgorithmOblivious {
		return nil, ErrKeyedUnsupported
	}
	sp := memory.NewSpace(nil, nil)
	cfg := &core.Config{
		Alloc:         table.PlainAlloc(sp),
		Probabilistic: opts.Probabilistic,
		Seed:          opts.Seed,
	}
	if opts.MergeExchange {
		cfg.Net = core.MergeExchange
	}
	pairs := core.JoinKeyed(cfg, left.rows, right.rows)
	out := make([]KeyedPair, len(pairs))
	for i, p := range pairs {
		out[i] = KeyedPair{Key: p.J, Left: table.DataString(p.D1), Right: table.DataString(p.D2)}
	}
	return out, nil
}

// ToTable converts keyed join output back into a Table, carrying the
// concatenated payloads (separated by sep) under the original key. It
// returns ErrDataTooLong if a combined payload exceeds MaxDataLen.
func ToTable(pairs []KeyedPair, sep string) (*Table, error) {
	t := NewTable()
	for _, p := range pairs {
		if err := t.Append(p.Key, p.Left+sep+p.Right); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ErrKeyedUnsupported is returned by JoinKeyed for baseline algorithms;
// only the oblivious join carries keys through.
var ErrKeyedUnsupported = errInvalid("oblivjoin: JoinKeyed supports only AlgorithmOblivious")

type errInvalid string

func (e errInvalid) Error() string { return string(e) }

// GroupItem is one input record of GroupBy.
type GroupItem struct {
	Key   uint64
	Value uint64
}

// GroupResult is one aggregated group.
type GroupResult struct {
	Key   uint64
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
}

// GroupBy computes per-key COUNT, SUM, MIN and MAX obliviously. The
// result is sorted by key; its length (the number of groups) is public,
// everything else about the grouping structure is hidden.
func GroupBy(items []GroupItem) []GroupResult {
	in := make([]aggregate.Item, len(items))
	for i, it := range items {
		in[i] = aggregate.Item{K: it.Key, V: it.Value}
	}
	gs := aggregate.GroupBy(plainCfg(), in)
	out := make([]GroupResult, len(gs))
	for i, g := range gs {
		out[i] = GroupResult{Key: g.K, Count: g.Count, Sum: g.Sum, Min: g.Min, Max: g.Max}
	}
	return out
}

// JoinGroupStat describes one joinable group: how many rows each side
// contributes and the resulting pair count.
type JoinGroupStat struct {
	Key       uint64
	LeftRows  uint64
	RightRows uint64
	Pairs     uint64
}

// JoinGroupStats returns per-group statistics of left ⋈ right — COUNT-
// style aggregation over the join — in O(n log² n), without paying for
// the (possibly much larger) join output. This implements the paper's
// §7 observation that aggregations over joins need fewer sorting steps
// than the full join.
func JoinGroupStats(left, right *Table) []JoinGroupStat {
	sp := memory.NewSpace(nil, nil)
	cfg := &core.Config{Alloc: table.PlainAlloc(sp)}
	stats := aggregate.JoinGroupStats(cfg, left.rows, right.rows)
	out := make([]JoinGroupStat, len(stats))
	for i, s := range stats {
		out[i] = JoinGroupStat{Key: s.J, LeftRows: s.A1, RightRows: s.A2, Pairs: s.Pairs}
	}
	return out
}

// Predicate decides, in constant time, whether a row is kept (1) or
// dropped (0). Implementations must be branch-free on the row contents:
// build them from the CT helpers below rather than Go if statements, or
// the filter's timing will leak which rows passed.
type Predicate func(key uint64, data [MaxDataLen]byte) uint64

// CTLess returns 1 if a < b, constant time.
func CTLess(a, b uint64) uint64 { return obliv.Less(a, b) }

// CTEq returns 1 if a == b, constant time.
func CTEq(a, b uint64) uint64 { return obliv.Eq(a, b) }

// CTAnd combines two 0/1 conditions.
func CTAnd(a, b uint64) uint64 { return obliv.And(a, b) }

// CTOr combines two 0/1 conditions.
func CTOr(a, b uint64) uint64 { return obliv.Or(a, b) }

// CTNot negates a 0/1 condition.
func CTNot(a uint64) uint64 { return obliv.Not(a) }

// CTBetween returns 1 if lo ≤ x ≤ hi, constant time.
func CTBetween(x, lo, hi uint64) uint64 {
	return obliv.And(obliv.GreaterEq(x, lo), obliv.LessEq(x, hi))
}

// Filter returns a new table holding the rows satisfying pred, in input
// order. The server observes only the input size and the number of rows
// kept.
func Filter(t *Table, pred Predicate) *Table {
	kept := ops.Filter(plainCfg(), t.rows, func(r table.Row) uint64 { return pred(r.J, r.D) })
	return &Table{rows: kept}
}

// plainCfg builds the default throwaway configuration the stand-alone
// relational helpers run under: plain untraced storage, sequential
// execution. The SQL engine threads a real shared Config instead.
func plainCfg() *core.Config {
	return &core.Config{Alloc: table.PlainAlloc(memory.NewSpace(nil, nil))}
}

// Distinct returns the unique rows of t, sorted by (key, data).
func Distinct(t *Table) *Table {
	return &Table{rows: ops.Distinct(plainCfg(), t.rows)}
}

// Union returns the set union of two tables.
func Union(a, b *Table) *Table {
	return &Table{rows: ops.Union(plainCfg(), a.rows, b.rows)}
}

// Semijoin returns the rows of left whose key appears in right, without
// expanding matches (left ⋉ right).
func Semijoin(left, right *Table) *Table {
	return &Table{rows: ops.Semijoin(plainCfg(), left.rows, right.rows)}
}

// Pairs lists a table's rows as (key, data) for inspection.
func (t *Table) Pairs() []KeyedPair {
	out := make([]KeyedPair, len(t.rows))
	for i, r := range t.rows {
		out[i] = KeyedPair{Key: r.J, Left: table.DataString(r.D)}
	}
	return out
}
