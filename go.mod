module oblivjoin

go 1.24
