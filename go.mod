module oblivjoin

go 1.23
