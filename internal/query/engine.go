package query

import (
	"fmt"
	"strconv"
	"strings"

	"oblivjoin/internal/aggregate"
	"oblivjoin/internal/core"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/ops"
	"oblivjoin/internal/table"
)

// Engine executes parsed queries against registered tables using only
// oblivious operators. It is not safe for concurrent use.
type Engine struct {
	tables map[string][]table.Row
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{tables: map[string][]table.Row{}}
}

// Register makes rows queryable under name (lower-cased). Re-registering
// a name replaces the table.
func (e *Engine) Register(name string, rows []table.Row) error {
	name = strings.ToLower(name)
	if name == "" {
		return fmt.Errorf("query: empty table name")
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
			return fmt.Errorf("query: invalid table name %q", name)
		}
	}
	e.tables[name] = rows
	return nil
}

// Result is a query result: column names and stringified rows.
type Result struct {
	Columns []string
	Rows    [][]string
}

// Query parses and executes a SELECT statement.
func (e *Engine) Query(src string) (*Result, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	res, _, err := e.run(q)
	return res, err
}

// Explain parses the statement and returns the oblivious plan that
// Query would execute, without executing it on the data (the plan
// depends only on the query shape, never on table contents).
func (e *Engine) Explain(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	_, plan, err := e.run(q)
	return plan, err
}

// run executes the query and reports the plan actually taken.
func (e *Engine) run(q *Query) (*Result, string, error) {
	rows, ok := e.tables[q.From]
	if !ok {
		return nil, "", fmt.Errorf("query: unknown table %q", q.From)
	}
	plan := []string{fmt.Sprintf("scan(%s)", q.From)}
	sp := memory.NewSpace(nil, nil)

	// Split WHERE into top-level conjuncts; IN-subqueries become
	// semijoins, the rest compiles to one branch-free predicate.
	var semis []string
	var predConjuncts []Expr
	for _, c := range conjuncts(q.Where) {
		if in, ok := c.(In); ok {
			semis = append(semis, in.Table)
			continue
		}
		if containsIn(c) {
			return nil, "", fmt.Errorf("query: IN (SELECT …) must be a top-level AND conjunct")
		}
		predConjuncts = append(predConjuncts, c)
	}
	for _, t := range semis {
		sub, ok := e.tables[t]
		if !ok {
			return nil, "", fmt.Errorf("query: unknown table %q in IN subquery", t)
		}
		rows = ops.Semijoin(sp, rows, sub)
		plan = append(plan, fmt.Sprintf("semijoin(%s)", t))
	}
	if len(predConjuncts) > 0 {
		pred := compile(andAll(predConjuncts))
		rows = ops.Filter(sp, rows, pred)
		plan = append(plan, "filter[branch-free]")
	}

	// Joined queries.
	if q.Join != "" {
		right, ok := e.tables[q.Join]
		if !ok {
			return nil, "", fmt.Errorf("query: unknown table %q", q.Join)
		}
		cfg := &core.Config{Alloc: table.PlainAlloc(sp)}
		if q.GroupBy {
			// §7 fast path: COUNT and SUM over the join need only the
			// group dimensions and per-side sums — never materialize
			// the m-row join.
			needSum := false
			for _, it := range q.Select {
				if it.Agg == AggSum {
					needSum = true
				}
			}
			if needSum {
				var badRow string
				value := func(r table.Row) uint64 {
					v, err := strconv.ParseUint(table.DataString(r.D), 10, 64)
					if err != nil && badRow == "" {
						badRow = table.DataString(r.D)
					}
					return v
				}
				sums := aggregate.JoinGroupSums(cfg, rows, right, value)
				if badRow != "" {
					return nil, "", fmt.Errorf("query: SUM over a JOIN needs numeric data payloads; found %q", badRow)
				}
				plan = append(plan, fmt.Sprintf("join-group-sums(%s) [§7 fast path]", q.Join))
				res, err := projectJoinSums(q, sums)
				return res, strings.Join(append(plan, "project"), " → "), err
			}
			stats := aggregate.JoinGroupStats(cfg, rows, right)
			plan = append(plan, fmt.Sprintf("join-group-stats(%s) [§7 fast path]", q.Join))
			res, err := projectJoinStats(q, stats)
			return res, strings.Join(append(plan, "project"), " → "), err
		}
		pairs := core.JoinKeyed(cfg, rows, right)
		plan = append(plan, fmt.Sprintf("oblivious-join(%s)", q.Join))
		pairs, plan = finishJoined(q, pairs, plan)
		res, err := projectJoined(q, pairs)
		return res, strings.Join(append(plan, "project"), " → "), err
	}

	// Single-table queries.
	if q.GroupBy {
		items, err := toItems(q, rows)
		if err != nil {
			return nil, "", err
		}
		groups := aggregate.GroupBy(sp, items)
		plan = append(plan, "group-by[oblivious]")
		if q.Limit >= 0 {
			if q.Limit < len(groups) {
				groups = groups[:q.Limit]
			}
			plan = append(plan, fmt.Sprintf("limit(%d)", q.Limit))
		}
		res, err := projectGroups(q, groups)
		return res, strings.Join(append(plan, "project"), " → "), err
	}
	if q.Distinct {
		rows = ops.Distinct(sp, rows)
		plan = append(plan, "distinct[oblivious]")
	} else if q.OrderBy {
		rows = ops.SortByKey(sp, rows)
		plan = append(plan, "sort(key)")
	}
	if q.Limit >= 0 {
		if q.Limit < len(rows) {
			rows = rows[:q.Limit]
		}
		plan = append(plan, fmt.Sprintf("limit(%d)", q.Limit))
	}
	res, err := projectRows(q, rows)
	return res, strings.Join(append(plan, "project"), " → "), err
}

// conjuncts flattens the AND-tree of a predicate; nil yields none.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []Expr{e}
}

func containsIn(e Expr) bool {
	switch v := e.(type) {
	case In:
		return true
	case Not:
		return containsIn(v.E)
	case And:
		return containsIn(v.L) || containsIn(v.R)
	case Or:
		return containsIn(v.L) || containsIn(v.R)
	default:
		return false
	}
}

func andAll(es []Expr) Expr {
	e := es[0]
	for _, r := range es[1:] {
		e = And{L: e, R: r}
	}
	return e
}

// compile turns a predicate AST into a branch-free row predicate. Every
// comparison evaluates on every row regardless of short-circuitable
// structure, so the filter's work is a fixed function of the query, not
// of the data.
func compile(e Expr) ops.Predicate {
	f := compileExpr(e)
	return func(r table.Row) uint64 { return f(r.J) }
}

func compileExpr(e Expr) func(uint64) uint64 {
	switch v := e.(type) {
	case Cmp:
		lit := v.Lit
		switch v.Op {
		case "=":
			return func(k uint64) uint64 { return obliv.Eq(k, lit) }
		case "!=":
			return func(k uint64) uint64 { return obliv.Neq(k, lit) }
		case "<":
			return func(k uint64) uint64 { return obliv.Less(k, lit) }
		case "<=":
			return func(k uint64) uint64 { return obliv.LessEq(k, lit) }
		case ">":
			return func(k uint64) uint64 { return obliv.Greater(k, lit) }
		default: // ">="
			return func(k uint64) uint64 { return obliv.GreaterEq(k, lit) }
		}
	case Between:
		lo, hi := v.Lo, v.Hi
		return func(k uint64) uint64 {
			return obliv.And(obliv.GreaterEq(k, lo), obliv.LessEq(k, hi))
		}
	case Not:
		inner := compileExpr(v.E)
		return func(k uint64) uint64 { return obliv.Not(inner(k)) }
	case And:
		l, r := compileExpr(v.L), compileExpr(v.R)
		return func(k uint64) uint64 { return obliv.And(l(k), r(k)) }
	case Or:
		l, r := compileExpr(v.L), compileExpr(v.R)
		return func(k uint64) uint64 { return obliv.Or(l(k), r(k)) }
	default:
		panic(fmt.Sprintf("query: cannot compile %T", e))
	}
}

// toItems converts rows to aggregation items, parsing payloads as
// numbers when a value-consuming aggregate is present.
func toItems(q *Query, rows []table.Row) ([]aggregate.Item, error) {
	needValue := false
	for _, it := range q.Select {
		if it.Agg == AggSum || it.Agg == AggMin || it.Agg == AggMax {
			needValue = true
		}
	}
	items := make([]aggregate.Item, len(rows))
	for i, r := range rows {
		items[i] = aggregate.Item{K: r.J}
		if needValue {
			v, err := strconv.ParseUint(table.DataString(r.D), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("query: SUM/MIN/MAX need numeric data payloads: row %d holds %q",
					i, table.DataString(r.D))
			}
			items[i].V = v
		}
	}
	return items, nil
}

func finishJoined(q *Query, pairs []table.KeyedPair, plan []string) ([]table.KeyedPair, []string) {
	// Join output is already key-ordered (S1 is sorted by (j, d)), so
	// ORDER BY key is free; note it in the plan for transparency.
	if q.OrderBy {
		plan = append(plan, "sort(key) [already ordered]")
	}
	if q.Limit >= 0 {
		if q.Limit < len(pairs) {
			pairs = pairs[:q.Limit]
		}
		plan = append(plan, fmt.Sprintf("limit(%d)", q.Limit))
	}
	return pairs, plan
}

// ── projections ───────────────────────────────────────────────────────

func expandStar(q *Query) []SelectItem {
	var out []SelectItem
	for _, it := range q.Select {
		if it.Col != ColStar {
			out = append(out, it)
			continue
		}
		if q.Join != "" {
			out = append(out,
				SelectItem{Col: ColKey},
				SelectItem{Col: ColLeftData},
				SelectItem{Col: ColRightData})
		} else {
			out = append(out, SelectItem{Col: ColKey}, SelectItem{Col: ColData})
		}
	}
	return out
}

func colName(it SelectItem) string {
	switch it.Agg {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	switch it.Col {
	case ColKey:
		return "key"
	case ColLeftData:
		return "left.data"
	case ColRightData:
		return "right.data"
	default:
		return "data"
	}
}

func projectRows(q *Query, rows []table.Row) (*Result, error) {
	items := expandStar(q)
	res := &Result{}
	for _, it := range items {
		res.Columns = append(res.Columns, colName(it))
	}
	for _, r := range rows {
		var out []string
		for _, it := range items {
			switch it.Col {
			case ColKey:
				out = append(out, strconv.FormatUint(r.J, 10))
			case ColData:
				out = append(out, table.DataString(r.D))
			default:
				return nil, fmt.Errorf("query: column %s not available without JOIN", colName(it))
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func projectJoined(q *Query, pairs []table.KeyedPair) (*Result, error) {
	items := expandStar(q)
	res := &Result{}
	for _, it := range items {
		res.Columns = append(res.Columns, colName(it))
	}
	for _, p := range pairs {
		var out []string
		for _, it := range items {
			switch it.Col {
			case ColKey:
				out = append(out, strconv.FormatUint(p.J, 10))
			case ColLeftData:
				out = append(out, table.DataString(p.D1))
			case ColRightData:
				out = append(out, table.DataString(p.D2))
			case ColData:
				return nil, fmt.Errorf("query: ambiguous column data over a JOIN; use left.data or right.data")
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func projectGroups(q *Query, groups []aggregate.Group) (*Result, error) {
	items := expandStar(q)
	res := &Result{}
	for _, it := range items {
		res.Columns = append(res.Columns, colName(it))
	}
	for _, g := range groups {
		var out []string
		for _, it := range items {
			switch {
			case it.Agg == AggCount:
				out = append(out, strconv.FormatUint(g.Count, 10))
			case it.Agg == AggSum:
				out = append(out, strconv.FormatUint(g.Sum, 10))
			case it.Agg == AggMin:
				out = append(out, strconv.FormatUint(g.Min, 10))
			case it.Agg == AggMax:
				out = append(out, strconv.FormatUint(g.Max, 10))
			case it.Col == ColKey:
				out = append(out, strconv.FormatUint(g.K, 10))
			default:
				return nil, fmt.Errorf("query: column %s not available under GROUP BY", colName(it))
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func projectJoinSums(q *Query, sums []aggregate.JoinSum) (*Result, error) {
	items := expandStar(q)
	res := &Result{}
	for _, it := range items {
		switch {
		case it.Agg == AggSum && it.Col == ColLeftData:
			res.Columns = append(res.Columns, "sum(left.data)")
		case it.Agg == AggSum && it.Col == ColRightData:
			res.Columns = append(res.Columns, "sum(right.data)")
		default:
			res.Columns = append(res.Columns, colName(it))
		}
	}
	for _, s := range sums {
		var out []string
		for _, it := range items {
			switch {
			case it.Agg == AggCount:
				out = append(out, strconv.FormatUint(s.Pairs, 10))
			case it.Agg == AggSum && it.Col == ColLeftData:
				out = append(out, strconv.FormatUint(s.LeftTotal(), 10))
			case it.Agg == AggSum && it.Col == ColRightData:
				out = append(out, strconv.FormatUint(s.RightTotal(), 10))
			case it.Col == ColKey:
				out = append(out, strconv.FormatUint(s.J, 10))
			default:
				return nil, fmt.Errorf("query: column %s not available for GROUP BY over a JOIN", colName(it))
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func projectJoinStats(q *Query, stats []aggregate.JoinStat) (*Result, error) {
	items := expandStar(q)
	res := &Result{}
	for _, it := range items {
		res.Columns = append(res.Columns, colName(it))
	}
	for _, s := range stats {
		var out []string
		for _, it := range items {
			switch {
			case it.Agg == AggCount:
				out = append(out, strconv.FormatUint(s.Pairs, 10))
			case it.Col == ColKey:
				out = append(out, strconv.FormatUint(s.J, 10))
			default:
				return nil, fmt.Errorf("query: only key and COUNT(*) are available for GROUP BY over a JOIN")
			}
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}
