package query

import (
	"context"
	"fmt"
	"strings"
	"time"

	"oblivjoin/internal/catalog"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/fault"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/ops"
	"oblivjoin/internal/query/exec"
	"oblivjoin/internal/table"
)

// Options configures how an Engine executes its plans. The zero value
// is the sequential, plaintext, uninstrumented engine.
type Options struct {
	// Workers sets the parallelism of every oblivious operator (> 1
	// lanes, 1 or 0 sequential, < 0 GOMAXPROCS). Results and traces are
	// identical at every degree.
	Workers int
	// Encrypted stores every intermediate entry AES-sealed in public
	// memory under a per-engine random key.
	Encrypted bool
	// SealedBlock sets the sealed store's granularity when Encrypted
	// is on: entries per ciphertext block. 0 selects the default block
	// store (table.DefaultSealedBlock entries per block); 1 selects
	// the legacy per-entry store; larger values amortize one nonce and
	// MAC over more entries per crypto operation. Results and traces
	// are identical at every granularity.
	SealedBlock int
	// MergeExchange selects Batcher's odd-even merge-exchange network
	// instead of the bitonic default.
	MergeExchange bool
	// Probabilistic switches Oblivious-Distribute to the PRP-based
	// variant of §5.2, seeded by Seed.
	Probabilistic bool
	// Seed seeds the probabilistic distribute.
	Seed int64
	// CollectStats records a PlanStats report for each query,
	// retrievable via LastStats.
	CollectStats bool
	// TraceHash additionally chains every public-memory access into a
	// SHA-256 trace hash (the §6.1 construction), reported in
	// PlanStats.TraceHash. Implies stats collection.
	TraceHash bool
	// Materialized restores the stage-at-a-time executor, where every
	// operator hand-off is a whole relation. The zero value selects the
	// streaming executor: block-granular batches between stages, eager
	// release of drained intermediates, bounded peak memory. Results,
	// comparator counts and canonical trace hashes are identical either
	// way.
	Materialized bool
	// StreamBatch sets the streaming hand-off granularity in rows (0
	// selects the default); the driver rounds it up to a multiple of
	// the sealed block width.
	StreamBatch int
	// MemBudget, when > 0, bounds the tracked in-memory bytes of a run:
	// a store allocation that would push the live total past the budget
	// is diverted to a sealed spill file on disk (ciphertext-only, same
	// block format as the sealed store) and deleted when the store is
	// released or the run ends. 0 means unbounded.
	MemBudget int64
	// SpillDir is where budget-diverted stores keep their sealed files
	// ("" selects the system temp directory).
	SpillDir string
	// SpillFS is the filesystem seam spill files are created through
	// (nil selects the real OS). A fault-injection hook for chaos
	// testing; it does not shape plans, results or traces, so it is
	// excluded from the plan-cache fingerprint.
	SpillFS fault.FS
	// Shards, when > 1, hash-partitions every join barrier into that
	// many concurrently executed per-shard pipelines (internal/shard):
	// rows route obliviously into partitions padded to a public size,
	// each partition joins in its own worker group, and an oblivious
	// merge recombines the outputs. Results are identical at every
	// shard count; the composed trace hash is a deterministic function
	// of (sizes, Shards, store mode). ≤ 1 selects the unsharded path.
	Shards int
	// CostPlan enables the cost-aware planner (internal/query/cost.go):
	// JOIN ... USING chains are greedily ordered by modeled comparator
	// count, the WHERE filter is pushed below semijoins, and every
	// multi-join plan ends in a canonicalizing Restore stage so any
	// ordering choice produces identical output bytes. The ordering
	// decision reads only public cardinalities — never table contents.
	// Off by default: default plans and result bytes are exactly those
	// of previous releases.
	CostPlan bool
}

// PlanStats is the per-query execution report: one entry per physical
// operator plus whole-run instrumentation, the SQL-layer counterpart of
// core.Stats.
type PlanStats struct {
	// Operators lists the pipeline stages in execution order.
	Operators []OperatorStat
	// Comparators counts compare–exchanges across every sorting network
	// the query executed; a fixed function of table sizes.
	Comparators uint64
	// RouteOps counts compare–hop steps of the distribute routing loops.
	RouteOps uint64
	// TraceEvents counts public-memory accesses (reads + writes).
	TraceEvents uint64
	// TraceHash is the hex SHA-256 access-pattern digest when
	// Options.TraceHash is set.
	TraceHash string
	// PeakBytes is the high-water mark of the run's tracked memory:
	// stores charged at allocation, relation hand-offs charged at fixed
	// per-record weights, both discharged at their release points. A
	// deterministic function of the pipeline, the (public) sizes and
	// the executor mode — not a live heap sample — so it is
	// reproducible and CI-gateable.
	PeakBytes int64
	// TotalAllocBytes is the cumulative tracked bytes ever charged.
	TotalAllocBytes int64
	// SpillCount is the number of stores diverted to sealed spill files
	// under Options.MemBudget.
	SpillCount int64
	// SpillBytes is the total on-disk ciphertext written by those
	// diversions.
	SpillBytes int64
	// Total is the end-to-end execution wall time.
	Total time.Duration
	// CacheHit reports that the query executed from a cached prepared
	// plan. Set only by the service layer; always false for direct
	// Engine queries.
	CacheHit bool
}

// OperatorStat is one pipeline stage's report.
type OperatorStat struct {
	// Op is the stage label (matches the EXPLAIN stage).
	Op string
	// Wall is the stage's execution time.
	Wall time.Duration
	// Rows is the stage's (public) output cardinality.
	Rows int
}

// String renders the report as an aligned table.
func (s *PlanStats) String() string {
	var b strings.Builder
	for _, op := range s.Operators {
		fmt.Fprintf(&b, "%-40s %12s %8d rows\n", op.Op, op.Wall.Round(time.Microsecond), op.Rows)
	}
	fmt.Fprintf(&b, "%-40s %12s\n", "total", s.Total.Round(time.Microsecond))
	fmt.Fprintf(&b, "comparators=%d route-ops=%d trace-events=%d", s.Comparators, s.RouteOps, s.TraceEvents)
	fmt.Fprintf(&b, "\npeak-bytes=%d total-alloc-bytes=%d", s.PeakBytes, s.TotalAllocBytes)
	if s.SpillCount > 0 {
		fmt.Fprintf(&b, " spills=%d spill-bytes=%d", s.SpillCount, s.SpillBytes)
	}
	if s.TraceHash != "" {
		fmt.Fprintf(&b, "\ntrace-hash=%s", s.TraceHash)
	}
	return b.String()
}

// Engine executes parsed queries against registered tables using only
// oblivious operators. It is not safe for concurrent use.
type Engine struct {
	tables map[string][]table.Row
	opts   Options
	cipher *crypto.Cipher // lazily created when opts.Encrypted
	last   *PlanStats
}

// NewEngine returns an empty engine with default Options.
func NewEngine() *Engine {
	return NewEngineWith(Options{})
}

// NewEngineWith returns an empty engine executing with o.
func NewEngineWith(o Options) *Engine {
	return &Engine{tables: map[string][]table.Row{}, opts: o}
}

// Register makes rows queryable under name (normalized by
// catalog.Normalize, so the engine and the service accept the same
// name grammar). Re-registering a name replaces the table.
func (e *Engine) Register(name string, rows []table.Row) error {
	name, err := catalog.Normalize(name)
	if err != nil {
		return err
	}
	e.tables[name] = rows
	return nil
}

// Result is a query result: column names and stringified rows.
type Result = exec.Result

// Query parses, plans and executes a SELECT statement.
func (e *Engine) Query(src string) (*Result, error) {
	e.last = nil // a failed query, at any stage, leaves no report
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	pipeline, err := lower(plan)
	if err != nil {
		return nil, err
	}
	return e.execute(pipeline)
}

// Explain parses and plans the statement and renders the oblivious
// plan Query would execute, without executing anything on the data:
// the plan depends only on the query shape and the catalog, never on
// table contents.
func (e *Engine) Explain(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	plan, err := e.plan(q)
	if err != nil {
		return "", err
	}
	return RenderPlan(plan), nil
}

// PlanCost parses and plans the statement and returns the modeled cost
// report — exact comparator counts, route ops and padded store
// footprints per stage, computed from public cardinalities alone.
func (e *Engine) PlanCost(src string) (*PlanCostReport, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	plan, err := e.plan(q)
	if err != nil {
		return nil, err
	}
	return ComputePlanCost(plan, tablesCard(e.tables), e.opts), nil
}

// ExplainCost renders the plan together with its modeled cost table —
// the EXPLAIN form of the cost-aware planner. Like Explain, it
// executes nothing and reads no table contents.
func (e *Engine) ExplainCost(src string) (string, error) {
	q, err := Parse(src)
	if err != nil {
		return "", err
	}
	plan, err := e.plan(q)
	if err != nil {
		return "", err
	}
	rep := ComputePlanCost(plan, tablesCard(e.tables), e.opts)
	return RenderPlan(plan) + "\n\n" + RenderPlanCost(rep), nil
}

// LastStats returns the PlanStats of the most recent successful Query,
// or nil when stats collection is off (or no query ran yet).
func (e *Engine) LastStats() *PlanStats { return e.last }

// execute runs the physical pipeline through Run and reports the
// projected result, keeping the stats report for LastStats.
func (e *Engine) execute(pipeline []exec.Operator) (*Result, error) {
	if (e.opts.Encrypted || e.opts.MemBudget > 0) && e.cipher == nil {
		c, _, err := crypto.NewRandom()
		if err != nil {
			return nil, fmt.Errorf("query: encrypted store: %w", err)
		}
		e.cipher = c
	}
	res, ps, err := Run(context.Background(), e.opts, e.cipher, e.tables, pipeline)
	if err != nil {
		return nil, err
	}
	if ps != nil {
		e.last = ps
	}
	return res, nil
}

// conjuncts flattens the AND-tree of a predicate; nil yields none.
func conjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(And); ok {
		return append(conjuncts(a.L), conjuncts(a.R)...)
	}
	return []Expr{e}
}

func containsIn(e Expr) bool {
	switch v := e.(type) {
	case In:
		return true
	case Not:
		return containsIn(v.E)
	case And:
		return containsIn(v.L) || containsIn(v.R)
	case Or:
		return containsIn(v.L) || containsIn(v.R)
	default:
		return false
	}
}

func andAll(es []Expr) Expr {
	e := es[0]
	for _, r := range es[1:] {
		e = And{L: e, R: r}
	}
	return e
}

// compile turns a predicate AST into a branch-free row predicate. Every
// comparison evaluates on every row regardless of short-circuitable
// structure, so the filter's work is a fixed function of the query, not
// of the data.
func compile(e Expr) ops.Predicate {
	f := compileExpr(e)
	return func(r table.Row) uint64 { return f(r.J) }
}

func compileExpr(e Expr) func(uint64) uint64 {
	switch v := e.(type) {
	case Cmp:
		lit := v.Lit
		switch v.Op {
		case "=":
			return func(k uint64) uint64 { return obliv.Eq(k, lit) }
		case "!=":
			return func(k uint64) uint64 { return obliv.Neq(k, lit) }
		case "<":
			return func(k uint64) uint64 { return obliv.Less(k, lit) }
		case "<=":
			return func(k uint64) uint64 { return obliv.LessEq(k, lit) }
		case ">":
			return func(k uint64) uint64 { return obliv.Greater(k, lit) }
		default: // ">="
			return func(k uint64) uint64 { return obliv.GreaterEq(k, lit) }
		}
	case Between:
		lo, hi := v.Lo, v.Hi
		return func(k uint64) uint64 {
			return obliv.And(obliv.GreaterEq(k, lo), obliv.LessEq(k, hi))
		}
	case Not:
		inner := compileExpr(v.E)
		return func(k uint64) uint64 { return obliv.Not(inner(k)) }
	case And:
		l, r := compileExpr(v.L), compileExpr(v.R)
		return func(k uint64) uint64 { return obliv.And(l(k), r(k)) }
	case Or:
		l, r := compileExpr(v.L), compileExpr(v.R)
		return func(k uint64) uint64 { return obliv.Or(l(k), r(k)) }
	default:
		panic(fmt.Sprintf("query: cannot compile %T", e))
	}
}
