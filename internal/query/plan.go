package query

import (
	"fmt"
	"strings"

	"oblivjoin/internal/catalog"
	"oblivjoin/internal/query/exec"
)

// This file is the logical plan layer: a typed IR between the parsed
// AST and the physical operators of internal/query/exec. The planner
// builds a linear tree of nodes from a *Query, Explain renders it by
// walking the tree, and lowering maps each node onto one physical
// operator. The plan depends only on the query shape and the catalog —
// never on table contents — which is what makes Explain itself
// oblivious.

// PlanNode is one stage of a logical plan. Plans are linear: every
// node has exactly one input (nil for the Scan leaf).
type PlanNode interface {
	// Input returns the upstream node, nil for the leaf.
	Input() PlanNode
	// Describe returns the stage's label in EXPLAIN output.
	Describe() string
}

// ScanNode reads a registered table.
type ScanNode struct{ Table string }

// SemijoinNode keeps rows whose key appears in Table (IN-subquery).
type SemijoinNode struct {
	In    PlanNode
	Table string
}

// FilterNode keeps rows satisfying the branch-free predicate.
type FilterNode struct {
	In   PlanNode
	Pred Expr
}

// JoinNode is one oblivious equi-join against a registered table.
type JoinNode struct {
	In    PlanNode
	Table string
}

// RekeyNode re-packages keyed join output as a plain relation so the
// chain's next join can consume it (§7 composition).
type RekeyNode struct{ In PlanNode }

// JoinAggNode is the §7 fast path: COUNT/SUM aggregation over a join
// computed from group dimensions without materializing the join.
type JoinAggNode struct {
	In    PlanNode
	Table string
	Sum   bool
}

// GroupByNode aggregates a single-payload relation per key.
type GroupByNode struct {
	In        PlanNode
	NeedValue bool // a SUM/MIN/MAX item requires numeric payloads
}

// DistinctNode removes duplicate rows.
type DistinctNode struct{ In PlanNode }

// SortNode orders rows by key; Free marks join output that is already
// ordered.
type SortNode struct {
	In   PlanNode
	Free bool
}

// LimitNode truncates the relation to its first N records.
type LimitNode struct {
	In PlanNode
	N  int
}

// ProjectNode renders the final relation; Items are concrete (star
// already expanded).
type ProjectNode struct {
	In    PlanNode
	Items []SelectItem
}

// Input implements PlanNode.
func (ScanNode) Input() PlanNode       { return nil }
func (n SemijoinNode) Input() PlanNode { return n.In }
func (n FilterNode) Input() PlanNode   { return n.In }
func (n JoinNode) Input() PlanNode     { return n.In }
func (n RekeyNode) Input() PlanNode    { return n.In }
func (n JoinAggNode) Input() PlanNode  { return n.In }
func (n GroupByNode) Input() PlanNode  { return n.In }
func (n DistinctNode) Input() PlanNode { return n.In }
func (n SortNode) Input() PlanNode     { return n.In }
func (n LimitNode) Input() PlanNode    { return n.In }
func (n ProjectNode) Input() PlanNode  { return n.In }

// Describe implements PlanNode. The labels intentionally match the
// Name() of the physical operator each node lowers to, so EXPLAIN and
// PlanStats speak the same language.
func (n ScanNode) Describe() string     { return exec.Scan{Table: n.Table}.Name() }
func (n SemijoinNode) Describe() string { return exec.Semijoin{Table: n.Table}.Name() }
func (FilterNode) Describe() string     { return exec.Filter{}.Name() }
func (n JoinNode) Describe() string     { return exec.Join{Table: n.Table}.Name() }
func (RekeyNode) Describe() string      { return exec.Rekey{}.Name() }
func (n JoinAggNode) Describe() string {
	return exec.JoinAggregate{Table: n.Table, Sum: n.Sum}.Name()
}
func (GroupByNode) Describe() string  { return exec.GroupBy{}.Name() }
func (DistinctNode) Describe() string { return exec.Distinct{}.Name() }
func (n SortNode) Describe() string   { return exec.Sort{Free: n.Free}.Name() }
func (n LimitNode) Describe() string  { return exec.Limit{N: n.N}.Name() }
func (ProjectNode) Describe() string  { return exec.Project{}.Name() }

// PlanTables lists the distinct catalog tables a plan references, in
// first-reference order — the exact set an execution must snapshot.
func PlanTables(n PlanNode) []string {
	var names []string
	seen := map[string]bool{}
	add := func(t string) {
		if !seen[t] {
			seen[t] = true
			names = append(names, t)
		}
	}
	var walk func(PlanNode)
	walk = func(n PlanNode) {
		if n == nil {
			return
		}
		walk(n.Input())
		switch v := n.(type) {
		case ScanNode:
			add(v.Table)
		case SemijoinNode:
			add(v.Table)
		case JoinNode:
			add(v.Table)
		case JoinAggNode:
			add(v.Table)
		}
	}
	walk(n)
	return names
}

// RenderPlan walks the tree leaf-to-root and joins the stage labels —
// the EXPLAIN form.
func RenderPlan(n PlanNode) string {
	var stages []string
	var walk func(PlanNode)
	walk = func(n PlanNode) {
		if n == nil {
			return
		}
		walk(n.Input())
		stages = append(stages, n.Describe())
	}
	walk(n)
	return strings.Join(stages, " → ")
}

// plan builds the logical plan for q against the engine's catalog.
func (e *Engine) plan(q *Query) (PlanNode, error) {
	if q.AsOf >= 0 {
		// The single-user engine keeps no version history; time travel
		// is a service-layer feature over the MVCC catalog.
		return nil, fmt.Errorf("query: AS OF requires the versioned catalog of the service engine")
	}
	return BuildPlan(q, func(name string) bool { _, ok := e.tables[name]; return ok })
}

// BuildPlan builds the logical plan for q against a catalog known only
// through its table-existence predicate. Every referenced table is
// resolved here, so planning (and therefore Explain) reports unknown
// tables — as *catalog.UnknownTableError — without touching any data.
func BuildPlan(q *Query, has func(string) bool) (PlanNode, error) {
	if !has(q.From) {
		return nil, &catalog.UnknownTableError{Name: q.From}
	}
	var n PlanNode = ScanNode{Table: q.From}

	// Split WHERE into top-level conjuncts; IN-subqueries become
	// semijoins, the rest compiles to one branch-free predicate.
	var predConjuncts []Expr
	for _, c := range conjuncts(q.Where) {
		if in, ok := c.(In); ok {
			if !has(in.Table) {
				return nil, &catalog.UnknownTableError{Name: in.Table}
			}
			n = SemijoinNode{In: n, Table: in.Table}
			continue
		}
		if containsIn(c) {
			return nil, fmt.Errorf("query: IN (SELECT …) must be a top-level AND conjunct")
		}
		predConjuncts = append(predConjuncts, c)
	}
	if len(predConjuncts) > 0 {
		n = FilterNode{In: n, Pred: andAll(predConjuncts)}
	}

	for _, t := range q.Joins {
		if !has(t) {
			return nil, &catalog.UnknownTableError{Name: t}
		}
	}

	needValue := false
	for _, it := range q.Select {
		if it.Agg == AggSum || it.Agg == AggMin || it.Agg == AggMax {
			needValue = true
		}
	}

	switch {
	case q.Joined() && q.GroupBy:
		// All but the last join materialize and re-key; the last one
		// runs as the §7 aggregation fast path — COUNT and SUM need the
		// group dimensions, never the m-row expansion.
		for _, t := range q.Joins[:len(q.Joins)-1] {
			n = JoinNode{In: n, Table: t}
			n = RekeyNode{In: n}
		}
		n = JoinAggNode{In: n, Table: q.Joins[len(q.Joins)-1], Sum: needValue}
	case q.Joined():
		for i, t := range q.Joins {
			if i > 0 {
				n = RekeyNode{In: n}
			}
			n = JoinNode{In: n, Table: t}
		}
		if q.OrderBy {
			// Join output is already key-ordered (S1 is sorted by
			// (j, d)), so ORDER BY key is free; keep the stage in the
			// plan for transparency.
			n = SortNode{In: n, Free: true}
		}
	case q.GroupBy:
		n = GroupByNode{In: n, NeedValue: needValue}
	case q.Distinct:
		n = DistinctNode{In: n}
	case q.OrderBy:
		n = SortNode{In: n}
	}

	if q.Limit >= 0 {
		n = LimitNode{In: n, N: q.Limit}
	}
	return ProjectNode{In: n, Items: expandStar(q)}, nil
}

// LowerPlan maps a logical plan onto its physical operator pipeline.
// The operators are immutable values: one lowered pipeline may execute
// from any number of goroutines at once, each run threading its own
// exec.Context.
func LowerPlan(n PlanNode) ([]exec.Operator, error) { return lower(n) }

// lower maps the logical plan onto its physical operator pipeline,
// leaf first.
func lower(n PlanNode) ([]exec.Operator, error) {
	if n == nil {
		return nil, nil
	}
	ops, err := lower(n.Input())
	if err != nil {
		return nil, err
	}
	var op exec.Operator
	switch v := n.(type) {
	case ScanNode:
		op = exec.Scan{Table: v.Table}
	case SemijoinNode:
		op = exec.Semijoin{Table: v.Table}
	case FilterNode:
		op = exec.Filter{Pred: compile(v.Pred)}
	case JoinNode:
		op = exec.Join{Table: v.Table}
	case RekeyNode:
		op = exec.Rekey{}
	case JoinAggNode:
		op = exec.JoinAggregate{Table: v.Table, Sum: v.Sum}
	case GroupByNode:
		op = exec.GroupBy{NeedValue: v.NeedValue}
	case DistinctNode:
		op = exec.Distinct{}
	case SortNode:
		op = exec.Sort{Free: v.Free}
	case LimitNode:
		op = exec.Limit{N: v.N}
	case ProjectNode:
		op = exec.Project{Items: lowerItems(v.Items)}
	default:
		return nil, fmt.Errorf("query: cannot lower plan node %T", n)
	}
	return append(ops, op), nil
}

func lowerItems(items []SelectItem) []exec.ProjItem {
	out := make([]exec.ProjItem, len(items))
	for i, it := range items {
		out[i] = exec.ProjItem{Col: lowerCol(it.Col), Agg: lowerAgg(it.Agg)}
	}
	return out
}

func lowerCol(c ColKind) exec.Col {
	switch c {
	case ColKey:
		return exec.ColKey
	case ColLeftData:
		return exec.ColLeftData
	case ColRightData:
		return exec.ColRightData
	default:
		return exec.ColData
	}
}

func lowerAgg(a AggKind) exec.Agg {
	switch a {
	case AggCount:
		return exec.AggCount
	case AggSum:
		return exec.AggSum
	case AggMin:
		return exec.AggMin
	case AggMax:
		return exec.AggMax
	default:
		return exec.AggNone
	}
}

// expandStar replaces * with the concrete columns available for the
// query's shape.
func expandStar(q *Query) []SelectItem {
	var out []SelectItem
	for _, it := range q.Select {
		if it.Col != ColStar {
			out = append(out, it)
			continue
		}
		if q.Joined() {
			out = append(out,
				SelectItem{Col: ColKey},
				SelectItem{Col: ColLeftData},
				SelectItem{Col: ColRightData})
		} else {
			out = append(out, SelectItem{Col: ColKey}, SelectItem{Col: ColData})
		}
	}
	return out
}
