package query

import (
	"fmt"
	"sort"
	"strings"

	"oblivjoin/internal/catalog"
	"oblivjoin/internal/query/exec"
)

// This file is the logical plan layer: a typed IR between the parsed
// AST and the physical operators of internal/query/exec. The planner
// builds a linear tree of nodes from a *Query, Explain renders it by
// walking the tree, and lowering maps each node onto one physical
// operator. The plan depends only on the query shape and the catalog —
// never on table contents — which is what makes Explain itself
// oblivious.

// PlanNode is one stage of a logical plan. Plans are linear: every
// node has exactly one input (nil for the Scan leaf).
type PlanNode interface {
	// Input returns the upstream node, nil for the leaf.
	Input() PlanNode
	// Describe returns the stage's label in EXPLAIN output.
	Describe() string
}

// ScanNode reads a registered table. Cols, set by the cost-aware
// planner, annotates which columns downstream stages actually consume
// ("key" when every payload byte is dead). Rows are fixed-width, so
// the annotation changes no access pattern — it documents, in EXPLAIN
// and in the cost report, that the payload contributes nothing.
type ScanNode struct {
	Table string
	Cols  string
}

// SemijoinNode keeps rows whose key appears in Table (IN-subquery).
type SemijoinNode struct {
	In    PlanNode
	Table string
}

// FilterNode keeps rows satisfying the branch-free predicate.
type FilterNode struct {
	In   PlanNode
	Pred Expr
}

// JoinNode is one oblivious equi-join against a registered table.
type JoinNode struct {
	In    PlanNode
	Table string
}

// RekeyNode re-packages keyed join output as a plain relation so the
// chain's next join can consume it (§7 composition). First marks the
// chain's first rekey: it escape-encodes the raw left payload before
// accumulation (later rekeys receive an already-encoded accumulation),
// so a Restore stage can split the accumulated payload unambiguously
// even when payloads contain the separator byte.
type RekeyNode struct {
	In    PlanNode
	First bool
}

// RestoreNode finalizes a cost-planned multi-way join chain: it maps
// the executed join order's payload layout back onto the written order
// and canonically sorts the output, making reordered and written-order
// plans byte-identical (see exec.Restore). Perm maps written table
// slots onto execution slots; the identity permutation canonicalizes
// without rewriting.
type RestoreNode struct {
	In   PlanNode
	Perm []int
}

// JoinAggNode is the §7 fast path: COUNT/SUM aggregation over a join
// computed from group dimensions without materializing the join.
type JoinAggNode struct {
	In    PlanNode
	Table string
	Sum   bool
}

// GroupByNode aggregates a single-payload relation per key.
type GroupByNode struct {
	In        PlanNode
	NeedValue bool // a SUM/MIN/MAX item requires numeric payloads
}

// DistinctNode removes duplicate rows.
type DistinctNode struct{ In PlanNode }

// SortNode orders rows by key; Free marks join output that is already
// ordered.
type SortNode struct {
	In   PlanNode
	Free bool
}

// LimitNode truncates the relation to its first N records.
type LimitNode struct {
	In PlanNode
	N  int
}

// ProjectNode renders the final relation; Items are concrete (star
// already expanded).
type ProjectNode struct {
	In    PlanNode
	Items []SelectItem
}

// Input implements PlanNode.
func (ScanNode) Input() PlanNode       { return nil }
func (n SemijoinNode) Input() PlanNode { return n.In }
func (n FilterNode) Input() PlanNode   { return n.In }
func (n JoinNode) Input() PlanNode     { return n.In }
func (n RekeyNode) Input() PlanNode    { return n.In }
func (n RestoreNode) Input() PlanNode  { return n.In }
func (n JoinAggNode) Input() PlanNode  { return n.In }
func (n GroupByNode) Input() PlanNode  { return n.In }
func (n DistinctNode) Input() PlanNode { return n.In }
func (n SortNode) Input() PlanNode     { return n.In }
func (n LimitNode) Input() PlanNode    { return n.In }
func (n ProjectNode) Input() PlanNode  { return n.In }

// Describe implements PlanNode. The labels intentionally match the
// Name() of the physical operator each node lowers to, so EXPLAIN and
// PlanStats speak the same language.
func (n ScanNode) Describe() string {
	if n.Cols != "" {
		return fmt.Sprintf("scan(%s cols=%s)", n.Table, n.Cols)
	}
	return exec.Scan{Table: n.Table}.Name()
}
func (n SemijoinNode) Describe() string { return exec.Semijoin{Table: n.Table}.Name() }
func (FilterNode) Describe() string     { return exec.Filter{}.Name() }
func (n JoinNode) Describe() string     { return exec.Join{Table: n.Table}.Name() }
func (RekeyNode) Describe() string      { return exec.Rekey{}.Name() }
func (n RestoreNode) Describe() string  { return exec.Restore{Perm: n.Perm}.Name() }
func (n JoinAggNode) Describe() string {
	return exec.JoinAggregate{Table: n.Table, Sum: n.Sum}.Name()
}
func (GroupByNode) Describe() string  { return exec.GroupBy{}.Name() }
func (DistinctNode) Describe() string { return exec.Distinct{}.Name() }
func (n SortNode) Describe() string   { return exec.Sort{Free: n.Free}.Name() }
func (n LimitNode) Describe() string  { return exec.Limit{N: n.N}.Name() }
func (ProjectNode) Describe() string  { return exec.Project{}.Name() }

// PlanTables lists the distinct catalog tables a plan references, in
// first-reference order — the exact set an execution must snapshot.
func PlanTables(n PlanNode) []string {
	var names []string
	seen := map[string]bool{}
	add := func(t string) {
		if !seen[t] {
			seen[t] = true
			names = append(names, t)
		}
	}
	var walk func(PlanNode)
	walk = func(n PlanNode) {
		if n == nil {
			return
		}
		walk(n.Input())
		switch v := n.(type) {
		case ScanNode:
			add(v.Table)
		case SemijoinNode:
			add(v.Table)
		case JoinNode:
			add(v.Table)
		case JoinAggNode:
			add(v.Table)
		}
	}
	walk(n)
	return names
}

// JoinChain returns the plan's base scan table and the joined tables
// in execution order — the chain identity the service layer's
// adaptive-feedback channel keys observed join output sizes by.
func JoinChain(n PlanNode) (from string, joins []string) {
	var walk func(PlanNode)
	walk = func(n PlanNode) {
		if n == nil {
			return
		}
		walk(n.Input())
		switch v := n.(type) {
		case ScanNode:
			from = v.Table
		case JoinNode:
			joins = append(joins, v.Table)
		}
	}
	walk(n)
	return from, joins
}

// RenderPlan walks the tree leaf-to-root and joins the stage labels —
// the EXPLAIN form.
func RenderPlan(n PlanNode) string {
	var stages []string
	var walk func(PlanNode)
	walk = func(n PlanNode) {
		if n == nil {
			return
		}
		walk(n.Input())
		stages = append(stages, n.Describe())
	}
	walk(n)
	return strings.Join(stages, " → ")
}

// plan builds the logical plan for q against the engine's catalog.
func (e *Engine) plan(q *Query) (PlanNode, error) {
	if q.AsOf >= 0 {
		// The single-user engine keeps no version history; time travel
		// is a service-layer feature over the MVCC catalog.
		return nil, fmt.Errorf("query: AS OF requires the versioned catalog of the service engine")
	}
	has := func(name string) bool { _, ok := e.tables[name]; return ok }
	if e.opts.CostPlan {
		return BuildPlanCfg(q, has, PlanConfig{
			CostPlan: true,
			Card:     tablesCard(e.tables),
			Opts:     e.opts,
		})
	}
	return BuildPlan(q, has)
}

// PlanConfig configures the cost-aware planner. The zero value is the
// default planner: written join order, no pushdown, no Restore stage —
// plans and result bytes exactly as previous releases produced them.
type PlanConfig struct {
	// CostPlan enables cost-based join ordering and predicate pushdown.
	// Every ≥3-table plain join chain then ends in a Restore stage, so
	// any ordering choice yields the same canonical output bytes.
	CostPlan bool
	// NoReorder keeps the written join order while still planning in
	// cost mode (pushdown + Restore canonicalization). This is the
	// byte-identity baseline the planner tests and the benchmark
	// compare the greedy order against.
	NoReorder bool
	// Card supplies the public cardinalities the ordering decision
	// consumes. Nil plans as if every table were empty (deterministic,
	// but orders nothing usefully).
	Card Card
	// Opts selects the sorting network and store mode the cost model
	// prices with.
	Opts Options
}

func (pc PlanConfig) card() Card {
	if pc.Card == nil {
		return StaticCard{}
	}
	return pc.Card
}

// BuildPlan builds the logical plan for q against a catalog known only
// through its table-existence predicate, with the default planner.
func BuildPlan(q *Query, has func(string) bool) (PlanNode, error) {
	return BuildPlanCfg(q, has, PlanConfig{})
}

// BuildPlanCfg builds the logical plan for q against a catalog known
// only through its table-existence predicate. Every referenced table
// is resolved here, so planning (and therefore Explain) reports
// unknown tables — as *catalog.UnknownTableError — without touching
// any data.
//
// With pc.CostPlan set the planner additionally consults pc.Card —
// public row counts and (optionally) observed join output sizes, never
// table contents — to greedily order JOIN ... USING chains, push the
// filter below the semijoins, order semijoins by sub-table size, and
// annotate scans with the columns downstream stages consume. The plan
// remains a pure function of (query, catalog, cardinalities, options):
// two databases with equal public sizes always yield the identical
// plan.
func BuildPlanCfg(q *Query, has func(string) bool, pc PlanConfig) (PlanNode, error) {
	if !has(q.From) {
		return nil, &catalog.UnknownTableError{Name: q.From}
	}
	scan := ScanNode{Table: q.From}
	if pc.CostPlan && !scanNeedsData(q) {
		scan.Cols = "key"
	}
	var n PlanNode = scan

	// Split WHERE into top-level conjuncts; IN-subqueries become
	// semijoins, the rest compiles to one branch-free predicate.
	var semis []string
	var predConjuncts []Expr
	for _, c := range conjuncts(q.Where) {
		if in, ok := c.(In); ok {
			if !has(in.Table) {
				return nil, &catalog.UnknownTableError{Name: in.Table}
			}
			semis = append(semis, in.Table)
			continue
		}
		if containsIn(c) {
			return nil, fmt.Errorf("query: IN (SELECT …) must be a top-level AND conjunct")
		}
		predConjuncts = append(predConjuncts, c)
	}
	pred := len(predConjuncts) > 0
	if pc.CostPlan {
		// Pushdown: the filter (a comparator-free scan over key bits)
		// runs first, shrinking every semijoin's sort; semijoins then
		// run smallest sub-table first. Both rewrites are byte-safe:
		// filter and semijoin predicates read only public key structure,
		// and each semijoin re-sorts its survivors into (key, data)
		// order, so the surviving row sequence is order-independent.
		if pred {
			n = FilterNode{In: n, Pred: andAll(predConjuncts)}
			pred = false
		}
		semis = orderSemis(semis, pc.card())
	}
	for _, t := range semis {
		n = SemijoinNode{In: n, Table: t}
	}
	if pred {
		n = FilterNode{In: n, Pred: andAll(predConjuncts)}
	}

	for _, t := range q.Joins {
		if !has(t) {
			return nil, &catalog.UnknownTableError{Name: t}
		}
	}

	needValue := false
	for _, it := range q.Select {
		if it.Agg == AggSum || it.Agg == AggMin || it.Agg == AggMax {
			needValue = true
		}
	}

	switch {
	case q.Joined() && q.GroupBy:
		// All but the last join materialize and re-key; the last one
		// runs as the §7 aggregation fast path — COUNT and SUM need the
		// group dimensions, never the m-row expansion. The fast path
		// pins the written order even in cost mode: its SUM payloads
		// parse positionally, so reordering would change aggregate
		// inputs, not just layout.
		for i, t := range q.Joins[:len(q.Joins)-1] {
			n = JoinNode{In: n, Table: t}
			n = RekeyNode{In: n, First: i == 0}
		}
		n = JoinAggNode{In: n, Table: q.Joins[len(q.Joins)-1], Sum: needValue}
	case q.Joined():
		joins := q.Joins
		var perm []int
		if pc.CostPlan && len(q.Joins) >= 2 {
			var chosen []int
			if pc.NoReorder {
				chosen = make([]int, len(q.Joins))
				for i := range chosen {
					chosen[i] = i
				}
			} else {
				chosen = greedyJoins(q.From, q.Joins, pc.card(), newCostModel(pc.Opts))
			}
			joins = make([]string, len(chosen))
			for pos, idx := range chosen {
				joins[pos] = q.Joins[idx]
			}
			// Restore.Perm maps written table slots (From = slot 0,
			// q.Joins[i] = slot i+1) onto execution slots.
			perm = make([]int, len(q.Joins)+1)
			for pos, idx := range chosen {
				perm[idx+1] = pos + 1
			}
		}
		for i, t := range joins {
			if i > 0 {
				n = RekeyNode{In: n, First: i == 1}
			}
			n = JoinNode{In: n, Table: t}
		}
		if perm != nil {
			n = RestoreNode{In: n, Perm: perm}
		}
		if q.OrderBy {
			// Join output is already key-ordered (S1 is sorted by
			// (j, d)), so ORDER BY key is free; keep the stage in the
			// plan for transparency.
			n = SortNode{In: n, Free: true}
		}
	case q.GroupBy:
		n = GroupByNode{In: n, NeedValue: needValue}
	case q.Distinct:
		n = DistinctNode{In: n}
	case q.OrderBy:
		n = SortNode{In: n}
	}

	if q.Limit >= 0 {
		n = LimitNode{In: n, N: q.Limit}
	}
	return ProjectNode{In: n, Items: expandStar(q)}, nil
}

// scanNeedsData reports whether any downstream stage reads the scanned
// payload bytes. Joins materialize payloads, DISTINCT dedups whole
// rows, and value aggregates/plain payload columns read them directly;
// COUNT and key-only selections touch keys alone (filter predicates
// are always key-only).
func scanNeedsData(q *Query) bool {
	if q.Joined() || q.Distinct {
		return true
	}
	for _, it := range q.Select {
		switch {
		case it.Agg == AggSum || it.Agg == AggMin || it.Agg == AggMax:
			return true
		case it.Agg == AggNone && it.Col != ColKey:
			return true
		}
	}
	return false
}

// orderSemis orders semijoin sub-tables by ascending public row count
// (appearance order on ties). Each semijoin sorts n+s elements, so
// running cheap shrinking semijoins first can only reduce later sorts.
func orderSemis(semis []string, card Card) []string {
	if len(semis) < 2 {
		return semis
	}
	type st struct {
		t    string
		rows int
		idx  int
	}
	ordered := make([]st, len(semis))
	for i, t := range semis {
		rows, _ := card.Rows(t)
		ordered[i] = st{t: t, rows: rows, idx: i}
	}
	sort.Slice(ordered, func(a, b int) bool {
		if ordered[a].rows != ordered[b].rows {
			return ordered[a].rows < ordered[b].rows
		}
		return ordered[a].idx < ordered[b].idx
	})
	out := make([]string, len(semis))
	for i, s := range ordered {
		out[i] = s.t
	}
	return out
}

// greedyJoins picks the execution order of a JOIN ... USING chain: at
// each step it joins the accumulated left side with the remaining
// table whose modeled join is cheapest. The decision reads only public
// cardinalities (and optional public observed join sizes), so the
// order — like the rest of the plan — is content-independent. Ties
// break deterministically on (comparators, store bytes, written
// position). Returns the chosen q.Joins indices in execution order.
func greedyJoins(from string, joins []string, card Card, cm *costModel) []int {
	cur, _ := card.Rows(from)
	left := []string{from}
	remaining := make([]int, len(joins))
	for i := range remaining {
		remaining[i] = i
	}
	chosen := make([]int, 0, len(joins))
	for len(remaining) > 0 {
		best := -1
		var bestComp uint64
		var bestBytes int64
		bestM := 0
		for _, idx := range remaining {
			nr, _ := card.Rows(joins[idx])
			m, fed := card.JoinRows(left, joins[idx])
			if !fed {
				m = estJoinRows(cur, nr)
			}
			comp, _, bytes := cm.join(cur, nr, m)
			if best == -1 || comp < bestComp ||
				(comp == bestComp && (bytes < bestBytes || (bytes == bestBytes && idx < best))) {
				best, bestComp, bestBytes, bestM = idx, comp, bytes, m
			}
		}
		chosen = append(chosen, best)
		for i, idx := range remaining {
			if idx == best {
				remaining = append(remaining[:i], remaining[i+1:]...)
				break
			}
		}
		cur = bestM
		left = append(left, joins[best])
	}
	return chosen
}

// LowerPlan maps a logical plan onto its physical operator pipeline.
// The operators are immutable values: one lowered pipeline may execute
// from any number of goroutines at once, each run threading its own
// exec.Context.
func LowerPlan(n PlanNode) ([]exec.Operator, error) { return lower(n) }

// lower maps the logical plan onto its physical operator pipeline,
// leaf first.
func lower(n PlanNode) ([]exec.Operator, error) {
	if n == nil {
		return nil, nil
	}
	ops, err := lower(n.Input())
	if err != nil {
		return nil, err
	}
	var op exec.Operator
	switch v := n.(type) {
	case ScanNode:
		op = exec.Scan{Table: v.Table}
	case SemijoinNode:
		op = exec.Semijoin{Table: v.Table}
	case FilterNode:
		op = exec.Filter{Pred: compile(v.Pred)}
	case JoinNode:
		op = exec.Join{Table: v.Table}
	case RekeyNode:
		op = exec.Rekey{First: v.First}
	case RestoreNode:
		op = exec.Restore{Perm: v.Perm}
	case JoinAggNode:
		op = exec.JoinAggregate{Table: v.Table, Sum: v.Sum}
	case GroupByNode:
		op = exec.GroupBy{NeedValue: v.NeedValue}
	case DistinctNode:
		op = exec.Distinct{}
	case SortNode:
		op = exec.Sort{Free: v.Free}
	case LimitNode:
		op = exec.Limit{N: v.N}
	case ProjectNode:
		op = exec.Project{Items: lowerItems(v.Items)}
	default:
		return nil, fmt.Errorf("query: cannot lower plan node %T", n)
	}
	return append(ops, op), nil
}

func lowerItems(items []SelectItem) []exec.ProjItem {
	out := make([]exec.ProjItem, len(items))
	for i, it := range items {
		out[i] = exec.ProjItem{Col: lowerCol(it.Col), Agg: lowerAgg(it.Agg)}
	}
	return out
}

func lowerCol(c ColKind) exec.Col {
	switch c {
	case ColKey:
		return exec.ColKey
	case ColLeftData:
		return exec.ColLeftData
	case ColRightData:
		return exec.ColRightData
	default:
		return exec.ColData
	}
}

func lowerAgg(a AggKind) exec.Agg {
	switch a {
	case AggCount:
		return exec.AggCount
	case AggSum:
		return exec.AggSum
	case AggMin:
		return exec.AggMin
	case AggMax:
		return exec.AggMax
	default:
		return exec.AggNone
	}
}

// expandStar replaces * with the concrete columns available for the
// query's shape.
func expandStar(q *Query) []SelectItem {
	var out []SelectItem
	for _, it := range q.Select {
		if it.Col != ColStar {
			out = append(out, it)
			continue
		}
		if q.Joined() {
			out = append(out,
				SelectItem{Col: ColKey},
				SelectItem{Col: ColLeftData},
				SelectItem{Col: ColRightData})
		} else {
			out = append(out, SelectItem{Col: ColKey}, SelectItem{Col: ColData})
		}
	}
	return out
}
