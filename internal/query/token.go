// Package query implements a small SQL front end over the repository's
// oblivious operators, turning the library into the system the paper's
// introduction motivates: a cloud database that answers queries over a
// client's data without its access pattern revealing the data.
//
// Supported grammar (keywords case-insensitive):
//
//	SELECT [DISTINCT] select_list
//	FROM table
//	[JOIN table USING (key)]
//	[WHERE predicate]
//	[GROUP BY key]
//	[ORDER BY key]
//	[LIMIT n]
//
//	select_list := * | item {, item}
//	item        := key | data | left.data | right.data
//	             | COUNT(*) | SUM(data) | MIN(data) | MAX(data)
//	predicate   := disjunctions/conjunctions/NOT over
//	               key <op> N | key BETWEEN N AND M
//	             | key IN (SELECT key FROM table)
//
// Every operator in the executed plan is oblivious: filters compile to
// branch-free predicates evaluated on every row, joins run the paper's
// algorithm, IN-subqueries become oblivious semijoins, GROUP BY becomes
// the oblivious aggregation, and `SELECT key, COUNT(*) … JOIN … GROUP BY
// key` is planned as the §7 aggregation-over-join fast path that never
// materializes the join.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer output.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol // ( ) , . *
	tokOp     // = != < <= > >=
)

type token struct {
	kind tokKind
	text string // keywords and identifiers are lower-cased
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits a query into tokens. SQL strings are not needed (data
// payloads never appear as literals in the supported grammar).
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(src[i:j]), i})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: stray '!' at offset %d", i)
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}
