// Package query implements a small SQL front end over the repository's
// oblivious operators, turning the library into the system the paper's
// introduction motivates: a cloud database that answers queries over a
// client's data without its access pattern revealing the data.
//
// # Grammar
//
// Supported grammar (keywords case-insensitive):
//
//	SELECT [DISTINCT] select_list
//	FROM table
//	{JOIN table USING (key)}
//	[AS OF version]
//	[WHERE predicate]
//	[GROUP BY key]
//	[ORDER BY key]
//	[LIMIT n]
//
//	select_list := * | item {, item}
//	item        := key | data | left.data | right.data
//	             | COUNT(*) | SUM(data) | MIN(data) | MAX(data)
//	             | SUM(left.data) | SUM(right.data)
//	predicate   := disjunctions/conjunctions/NOT over
//	               key <op> N | key BETWEEN N AND M
//	             | key IN (SELECT key FROM table)
//
// JOIN clauses chain: `FROM a JOIN b USING (key) JOIN c USING (key)`
// composes left-to-right as the paper's §7 multi-way join, re-keying
// each keyed intermediate result (payloads concatenate with "+", and
// left.data addresses the accumulated left payload). With GROUP BY,
// the final join of a chain runs as the §7 aggregation fast path
// (COUNT(*), and for binary joins also SUM(left.data)/SUM(right.data))
// without ever materializing the join.
//
// # Architecture
//
// A statement passes through three layers:
//
//  1. Parse (token.go, parse.go, ast.go) produces the *Query AST.
//  2. The planner (plan.go) builds a logical plan — a linear tree of
//     typed PlanNodes — from the AST and the registered catalog.
//     Explain renders this tree; it depends only on the query shape
//     and table names, never on contents.
//  3. Lowering maps each node onto a physical operator of
//     internal/query/exec; the Engine runs the pipeline threading one
//     exec.Context whose single core.Config carries the store
//     allocator (plain or AES-sealed), the worker count, network
//     selection and instrumentation through every operator.
//
// Engine Options select parallel execution (Workers), sealed entry
// stores (Encrypted), the merge-exchange network, the probabilistic
// distribute, and per-query PlanStats reports with an optional SHA-256
// access-pattern hash (TraceHash). Results, plans and trace hashes are
// identical at every worker count and between plain and encrypted
// stores.
//
// Every operator in the executed plan is oblivious: filters compile to
// branch-free predicates evaluated on every row, joins run the paper's
// algorithm, IN-subqueries become oblivious semijoins, and GROUP BY
// becomes the oblivious aggregation.
//
// # Cost-aware planning
//
// Because every oblivious operator executes a fixed schedule
// determined by its public input/output sizes, the plan's cost is an
// exact closed form, not an estimate: ComputePlanCost prices each
// stage in compare–exchanges, routing hops and padded store bytes
// from the catalog cardinalities alone (cost.go), and RenderPlanCost
// prints the table EXPLAIN shows. Options.CostPlan turns on the
// cost-aware planner: BuildPlanCfg greedily orders JOIN chains by
// modeled comparator count, pushes predicates and semijoins toward
// the scans, and appends a restore stage so a reordered chain's rows
// are byte-identical to the written order's. Plans remain a pure
// function of the query text and public cardinalities — the Card
// interface is planning's only window onto the catalog — so
// reordering reveals nothing the sizes do not already reveal. The
// service layer feeds observed join sizes back through Card when
// PlanStats diverge from the model (adaptive replanning); see
// docs/PLANNING.md at the repository root for the full model.
package query

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies lexer output.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol // ( ) , . *
	tokOp     // = != < <= > >=
)

type token struct {
	kind tokKind
	text string // keywords and identifiers are lower-cased
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of query"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex splits a query into tokens. SQL strings are not needed (data
// payloads never appear as literals in the supported grammar).
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, strings.ToLower(src[i:j]), i})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j], i})
			i = j
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		case c == '=':
			toks = append(toks, token{tokOp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokOp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: stray '!' at offset %d", i)
			}
		case c == '<' || c == '>':
			op := string(c)
			if i+1 < len(src) && src[i+1] == '=' {
				op += "="
				i++
			}
			toks = append(toks, token{tokOp, op, i})
			i++
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}
