package query

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"oblivjoin/internal/table"
)

// This file cross-checks the oblivious engine against a deliberately
// naive in-memory reference executor: plain Go loops and maps, no
// oblivious machinery, evaluating the same Query AST. Row order is
// compared as a multiset (the engine's order is deterministic but
// stage-dependent); ORDER BY and GROUP BY orderings are asserted
// separately.

// refEval evaluates a predicate on a key, the plain-control-flow way.
func refEval(e Expr, k uint64) bool {
	switch v := e.(type) {
	case Cmp:
		switch v.Op {
		case "=":
			return k == v.Lit
		case "!=":
			return k != v.Lit
		case "<":
			return k < v.Lit
		case "<=":
			return k <= v.Lit
		case ">":
			return k > v.Lit
		default:
			return k >= v.Lit
		}
	case Between:
		return k >= v.Lo && k <= v.Hi
	case Not:
		return !refEval(v.E, k)
	case And:
		return refEval(v.L, k) && refEval(v.R, k)
	case Or:
		return refEval(v.L, k) || refEval(v.R, k)
	default:
		panic(fmt.Sprintf("refEval: %T", e))
	}
}

// refRow is a materialized reference row: key plus one payload per
// joined stage (len 1 without joins, 2 after one join, …). Payloads of
// a chain collapse left-to-right with the engine's rekey separator.
type refRow struct {
	k     uint64
	left  string // concatenated left payload
	right string // last joined payload ("" before any join)
}

// refEncode mirrors the rekey payload escape encoding independently of
// the engine: '\' → `\\`, '+' → `\+`.
func refEncode(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' || s[i] == '+' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// refQuery evaluates q naively. It returns the output rows as strings
// (matching the engine's stringification) without LIMIT applied —
// callers compare multisets.
func refQuery(tables map[string][]table.Row, q *Query) ([][]string, error) {
	base := tables[q.From]

	// WHERE: semijoins then predicate, mirroring the planner's split.
	var rows []refRow
	for _, r := range base {
		rows = append(rows, refRow{k: r.J, left: table.DataString(r.D)})
	}
	var preds []Expr
	for _, c := range conjuncts(q.Where) {
		if in, ok := c.(In); ok {
			member := map[uint64]bool{}
			for _, s := range tables[in.Table] {
				member[s.J] = true
			}
			var kept []refRow
			for _, r := range rows {
				if member[r.k] {
					kept = append(kept, r)
				}
			}
			rows = kept
			continue
		}
		preds = append(preds, c)
	}
	if len(preds) > 0 {
		pred := andAll(preds)
		var kept []refRow
		for _, r := range rows {
			if refEval(pred, r.k) {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	// Join chain: nested loops, collapsing payloads like exec.Rekey —
	// including its escape encoding: the first accumulation escapes the
	// raw left payload, every accumulation escapes the incoming right
	// payload, and later accumulations extend the already-encoded left.
	joined := false
	for ji, t := range q.Joins {
		var out []refRow
		for _, l := range rows {
			payload := l.left
			if joined {
				left := l.left
				if ji == 1 {
					left = refEncode(left)
				}
				payload = left + "+" + refEncode(l.right)
			}
			for _, r := range tables[t] {
				if l.k == r.J {
					out = append(out, refRow{k: l.k, left: payload, right: table.DataString(r.D)})
				}
			}
		}
		rows = out
		joined = true
	}

	items := expandStar(q)
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }

	if q.GroupBy {
		type agg struct {
			count, sum, sumL, sumR uint64
			min, max               uint64
			seen                   bool
		}
		groups := map[uint64]*agg{}
		var keys []uint64
		for _, r := range rows {
			g, ok := groups[r.k]
			if !ok {
				g = &agg{}
				groups[r.k] = g
				keys = append(keys, r.k)
			}
			g.count++
			if joined {
				lv, _ := strconv.ParseUint(r.left, 10, 64)
				rv, _ := strconv.ParseUint(r.right, 10, 64)
				g.sumL += lv
				g.sumR += rv
			} else {
				v, _ := strconv.ParseUint(r.left, 10, 64)
				g.sum += v
				if !g.seen || v < g.min {
					g.min = v
				}
				if !g.seen || v > g.max {
					g.max = v
				}
				g.seen = true
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		var out [][]string
		for _, k := range keys {
			g := groups[k]
			var row []string
			for _, it := range items {
				switch {
				case it.Agg == AggCount:
					row = append(row, u(g.count))
				case it.Agg == AggSum && it.Col == ColLeftData:
					row = append(row, u(g.sumL))
				case it.Agg == AggSum && it.Col == ColRightData:
					row = append(row, u(g.sumR))
				case it.Agg == AggSum:
					row = append(row, u(g.sum))
				case it.Agg == AggMin:
					row = append(row, u(g.min))
				case it.Agg == AggMax:
					row = append(row, u(g.max))
				default:
					row = append(row, u(k))
				}
			}
			out = append(out, row)
		}
		return out, nil
	}

	if q.Distinct {
		seen := map[string]bool{}
		var uniq []refRow
		for _, r := range rows {
			key := fmt.Sprintf("%d\x00%s", r.k, r.left)
			if !seen[key] {
				seen[key] = true
				uniq = append(uniq, r)
			}
		}
		rows = uniq
	}

	var out [][]string
	for _, r := range rows {
		var row []string
		for _, it := range items {
			switch it.Col {
			case ColKey:
				row = append(row, u(r.k))
			case ColData:
				row = append(row, r.left)
			case ColLeftData:
				row = append(row, r.left)
			case ColRightData:
				row = append(row, r.right)
			}
		}
		out = append(out, row)
	}
	return out, nil
}

func multiset(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "|")
	}
	sort.Strings(out)
	return out
}

// randPred builds a random predicate over small keys.
func randPred(rng *rand.Rand, depth int) Expr {
	if depth > 0 && rng.Intn(3) == 0 {
		switch rng.Intn(3) {
		case 0:
			return And{L: randPred(rng, depth-1), R: randPred(rng, depth-1)}
		case 1:
			return Or{L: randPred(rng, depth-1), R: randPred(rng, depth-1)}
		default:
			return Not{E: randPred(rng, depth-1)}
		}
	}
	if rng.Intn(4) == 0 {
		lo := uint64(rng.Intn(8))
		return Between{Lo: lo, Hi: lo + uint64(rng.Intn(5))}
	}
	opsList := []string{"=", "!=", "<", "<=", ">", ">="}
	return Cmp{Op: opsList[rng.Intn(len(opsList))], Lit: uint64(rng.Intn(10))}
}

func renderPred(e Expr) string {
	switch v := e.(type) {
	case Cmp:
		return fmt.Sprintf("key %s %d", v.Op, v.Lit)
	case Between:
		return fmt.Sprintf("key BETWEEN %d AND %d", v.Lo, v.Hi)
	case Not:
		return fmt.Sprintf("NOT (%s)", renderPred(v.E))
	case And:
		return fmt.Sprintf("(%s AND %s)", renderPred(v.L), renderPred(v.R))
	case Or:
		return fmt.Sprintf("(%s OR %s)", renderPred(v.L), renderPred(v.R))
	default:
		panic("renderPred")
	}
}

// randCatalog builds small random tables: a, b, c with short textual
// payloads (safe to rekey through a 3-way chain) and nums, nums2 with
// numeric payloads for aggregation.
func randCatalog(rng *rand.Rand) map[string][]table.Row {
	mk := func(prefix string, n, keyRange int) []table.Row {
		rows := make([]table.Row, n)
		for i := range rows {
			rows[i] = table.Row{
				J: uint64(rng.Intn(keyRange)),
				D: table.MustData(fmt.Sprintf("%s%d", prefix, i)),
			}
		}
		return rows
	}
	mkNum := func(n, keyRange, valRange int) []table.Row {
		rows := make([]table.Row, n)
		for i := range rows {
			rows[i] = table.Row{
				J: uint64(rng.Intn(keyRange)),
				D: table.MustData(fmt.Sprint(rng.Intn(valRange))),
			}
		}
		return rows
	}
	return map[string][]table.Row{
		"a":     mk("a", 4+rng.Intn(12), 8),
		"b":     mk("b", 4+rng.Intn(10), 8),
		"c":     mk("c", 3+rng.Intn(8), 8),
		"nums":  mkNum(4+rng.Intn(12), 6, 100),
		"nums2": mkNum(4+rng.Intn(10), 6, 100),
	}
}

// randQuery picks a random query shape over the catalog.
func randQuery(rng *rand.Rand) string {
	where := ""
	if rng.Intn(2) == 0 {
		where = " WHERE " + renderPred(randPred(rng, 2))
	}
	switch rng.Intn(10) {
	case 0:
		return "SELECT * FROM a" + where
	case 1:
		return "SELECT key, data FROM a" + where + " ORDER BY key"
	case 2:
		return "SELECT DISTINCT * FROM a" + where
	case 3:
		return "SELECT key, COUNT(*), SUM(data), MIN(data), MAX(data) FROM nums" + where + " GROUP BY key"
	case 4:
		return "SELECT key, left.data, right.data FROM a JOIN b USING (key)" + where
	case 5:
		return "SELECT key, left.data, right.data FROM a JOIN b USING (key) JOIN c USING (key)" + where
	case 6:
		return "SELECT key, COUNT(*) FROM a JOIN b USING (key) GROUP BY key"
	case 7:
		return "SELECT key, COUNT(*) FROM a JOIN b USING (key) JOIN c USING (key) GROUP BY key"
	case 8:
		return "SELECT key, SUM(left.data), SUM(right.data), COUNT(*) FROM nums JOIN nums2 USING (key) GROUP BY key"
	default:
		return "SELECT data FROM a WHERE key IN (SELECT key FROM b)" +
			map[bool]string{true: " AND " + renderPred(randPred(rng, 1)), false: ""}[rng.Intn(2) == 0]
	}
}

func TestRandomQueriesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		tables := randCatalog(rng)
		e := NewEngine()
		for name, rows := range tables {
			if err := e.Register(name, rows); err != nil {
				t.Fatal(err)
			}
		}
		src := randQuery(rng)
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, src, err)
		}
		got, err := e.Query(src)
		if err != nil {
			t.Fatalf("trial %d: Query(%q): %v", trial, src, err)
		}
		want, err := refQuery(tables, q)
		if err != nil {
			t.Fatalf("trial %d: reference(%q): %v", trial, src, err)
		}
		gm, wm := multiset(got.Rows), multiset(want)
		if fmt.Sprint(gm) != fmt.Sprint(wm) {
			t.Fatalf("trial %d: %q\nengine   : %v\nreference: %v", trial, src, gm, wm)
		}
		// Ordered shapes: verify the engine's key order on top of the
		// multiset equality.
		if q.OrderBy || q.GroupBy {
			prev := uint64(0)
			started := false
			for _, row := range got.Rows {
				k, err := strconv.ParseUint(row[0], 10, 64)
				if err != nil {
					continue // first column not the key in this shape
				}
				if started && k < prev {
					t.Fatalf("trial %d: %q: keys out of order: %v", trial, src, got.Rows)
				}
				prev, started = k, true
			}
		}
	}
}
