package query

import (
	"strings"
	"testing"

	"oblivjoin/internal/table"
)

// FuzzParse checks the parser never panics and either errors cleanly or
// produces an AST that the engine can plan against a fixed catalog.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT key, data FROM t WHERE key = 5",
		"SELECT key FROM t WHERE key BETWEEN 1 AND 9 ORDER BY key LIMIT 3",
		"SELECT key, COUNT(*) FROM t GROUP BY key",
		"SELECT key, left.data, right.data FROM t JOIN u USING (key)",
		"SELECT key FROM t WHERE key IN (SELECT key FROM u)",
		"SELECT DISTINCT data FROM t WHERE NOT key != 7",
		"SELECT key FROM t WHERE (key < 3 OR key > 8) AND key != 5",
		"select sum(data) from t group by key",
		"SELECT",
		"",
		"SELECT key FROM t WHERE key IN (SELECT key FROM u) OR key = 1",
		"🤔 SELECT key FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	eng := NewEngine()
	_ = eng.Register("t", []table.Row{{J: 1, D: table.MustData("1")}, {J: 2, D: table.MustData("2")}})
	_ = eng.Register("u", []table.Row{{J: 2, D: table.MustData("x")}})

	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 512 {
			return
		}
		q, err := Parse(src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "query:") {
				t.Fatalf("non-package error %v", err)
			}
			return
		}
		// A parsed query must plan and execute or fail cleanly (unknown
		// tables, non-numeric aggregation, IN placement) — never panic.
		// Unknown tables surface as typed catalog errors.
		plan, err := eng.plan(q)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "query:") && !strings.HasPrefix(err.Error(), "catalog:") {
				t.Fatalf("non-package plan error %v", err)
			}
			return
		}
		pipeline, err := lower(plan)
		if err != nil {
			t.Fatalf("lower: %v", err)
		}
		if _, err := eng.execute(pipeline); err != nil && !strings.HasPrefix(err.Error(), "query:") {
			t.Fatalf("non-package run error %v", err)
		}
	})
}
