package exec

import (
	"strings"
	"testing"

	"oblivjoin/internal/aggregate"
	"oblivjoin/internal/core"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
)

func testCtx(tables map[string][]table.Row) *Context {
	sp := memory.NewSpace(nil, nil)
	return &Context{
		Cfg:    &core.Config{Alloc: table.PlainAlloc(sp)},
		Tables: tables,
	}
}

func rowsOf(keys ...uint64) []table.Row {
	out := make([]table.Row, len(keys))
	for i, k := range keys {
		out[i] = table.Row{J: k, D: table.MustData("d")}
	}
	return out
}

func TestScanUnknownTable(t *testing.T) {
	ctx := testCtx(map[string][]table.Row{})
	if _, err := (Scan{Table: "ghost"}).Run(ctx, Relation{}); err == nil {
		t.Fatal("expected unknown-table error")
	}
}

func TestLimitTruncatesEveryKind(t *testing.T) {
	rels := []Relation{
		{Kind: KindRows, Rows: rowsOf(1, 2, 3)},
		{Kind: KindPairs, Pairs: make([]table.KeyedPair, 3)},
		{Kind: KindGroups, Groups: make([]aggregate.Group, 3)},
		{Kind: KindJoinStats, JoinStats: make([]aggregate.JoinStat, 3)},
		{Kind: KindJoinSums, JoinSums: make([]aggregate.JoinSum, 3)},
	}
	for _, rel := range rels {
		out, err := (Limit{N: 2}).Run(nil, rel)
		if err != nil {
			t.Fatal(err)
		}
		if out.Size() != 2 {
			t.Fatalf("kind %d: size = %d, want 2", rel.Kind, out.Size())
		}
		// Limit beyond the size is a no-op.
		same, err := (Limit{N: 9}).Run(nil, rel)
		if err != nil || same.Size() != 3 {
			t.Fatalf("kind %d: over-limit size = %d (%v)", rel.Kind, same.Size(), err)
		}
	}
}

func TestRekeyConcatenatesAndOverflows(t *testing.T) {
	in := Relation{Kind: KindPairs, Pairs: []table.KeyedPair{
		{J: 7, D1: table.MustData("ab"), D2: table.MustData("cd")},
	}}
	out, err := (Rekey{}).Run(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindRows || table.DataString(out.Rows[0].D) != "ab+cd" || out.Rows[0].J != 7 {
		t.Fatalf("rekeyed = %+v", out.Rows)
	}

	long := strings.Repeat("x", table.DataLen)
	in = Relation{Kind: KindPairs, Pairs: []table.KeyedPair{
		{J: 1, D1: table.MustData(long), D2: table.MustData("y")},
	}}
	if _, err := (Rekey{}).Run(nil, in); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want overflow error", err)
	}
}

func TestCheckNumericPayloadsListsValues(t *testing.T) {
	mk := func(vals ...string) []table.Row {
		out := make([]table.Row, len(vals))
		for i, v := range vals {
			out[i] = table.Row{J: uint64(i), D: table.MustData(v)}
		}
		return out
	}
	if err := checkNumericPayloads(mk("1", "22", "333")); err != nil {
		t.Fatalf("numeric payloads rejected: %v", err)
	}
	err := checkNumericPayloads(mk("1", "bad", "bad"), mk("worse", "3"))
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"bad"`) || !strings.Contains(msg, `"worse"`) {
		t.Fatalf("error %q does not list both distinct values", msg)
	}
	if strings.Count(msg, `"bad"`) != 1 {
		t.Fatalf("error %q repeats duplicate values", msg)
	}
	// More than five distinct offenders: the list is capped and counted.
	err = checkNumericPayloads(mk("a", "b", "c", "d", "e", "f", "g"))
	if err == nil || !strings.Contains(err.Error(), "7 distinct values") {
		t.Fatalf("err = %v, want truncation note", err)
	}
}

func TestProjectErrorsOnUnavailableColumns(t *testing.T) {
	// data over a join is ambiguous.
	in := Relation{Kind: KindPairs, Pairs: make([]table.KeyedPair, 1)}
	_, err := (Project{Items: []ProjItem{{Col: ColData}}}).Run(nil, in)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
	// left.data without a join.
	in = Relation{Kind: KindRows, Rows: rowsOf(1)}
	_, err = (Project{Items: []ProjItem{{Col: ColLeftData}}}).Run(nil, in)
	if err == nil || !strings.Contains(err.Error(), "without JOIN") {
		t.Fatalf("err = %v", err)
	}
}

func TestPipelineComposition(t *testing.T) {
	ctx := testCtx(map[string][]table.Row{
		"l": rowsOf(1, 2, 2),
		"r": rowsOf(2, 2, 3),
	})
	pipeline := []Operator{
		Scan{Table: "l"},
		Join{Table: "r"},
		Limit{N: 3},
		Project{Items: []ProjItem{{Col: ColKey}, {Col: ColLeftData}, {Col: ColRightData}}},
	}
	rel := Relation{}
	var err error
	for _, op := range pipeline {
		rel, err = op.Run(ctx, rel)
		if err != nil {
			t.Fatalf("%s: %v", op.Name(), err)
		}
	}
	if rel.Kind != KindResult || len(rel.Result.Rows) != 3 {
		t.Fatalf("result = %+v", rel.Result)
	}
	if got := strings.Join(rel.Result.Columns, ","); got != "key,left.data,right.data" {
		t.Fatalf("columns = %s", got)
	}
}
