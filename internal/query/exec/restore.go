package exec

import (
	"fmt"
	"strings"

	"oblivjoin/internal/table"
)

// This file is the byte-identity machinery of the cost-aware planner:
// the escape codec that makes accumulated rekey payloads unambiguously
// splittable, and the Restore operator that maps a reordered join
// chain's output back onto the written-order payload layout and
// canonically sorts it. A plan that reorders joins ends with a Restore
// stage; the written-order variant of the same plan ends with the
// identity Restore (canonical sort only), so the two produce identical
// bytes for every input — including inputs with duplicate rows, where
// the raw chain output orders differ structurally between join orders.

// rekeyEscape is the escape character of the accumulated-payload
// encoding: a raw payload's '\' becomes `\\` and its '+' becomes `\+`,
// so RekeySep occurrences in the accumulation always separate segments.
// Payloads free of both characters are encoded as themselves.
const rekeyEscape = '\\'

// encodeSegment escapes a raw payload for inclusion in an accumulated
// rekey payload. The common case (no separator or escape byte in the
// payload) returns s unchanged.
func encodeSegment(s string) string {
	if !strings.ContainsAny(s, RekeySep+string(rekeyEscape)) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for i := 0; i < len(s); i++ {
		if s[i] == rekeyEscape || s[i] == RekeySep[0] {
			b.WriteByte(rekeyEscape)
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// decodeSegment reverses encodeSegment.
func decodeSegment(s string) string {
	if !strings.ContainsRune(s, rekeyEscape) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == rekeyEscape && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// splitEncoded splits an accumulated payload at its unescaped
// separators. The returned segments are still encoded.
func splitEncoded(s string) []string {
	var segs []string
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case rekeyEscape:
			i++ // the escaped byte is payload, not a separator
		case RekeySep[0]:
			segs = append(segs, s[start:i])
			start = i + 1
		}
	}
	return append(segs, s[start:])
}

// rekeyJoin builds one accumulated payload from an already-encoded
// left accumulation and a raw right payload, reporting the shared
// width-overflow error when the result exceeds the public payload
// width.
func rekeyJoin(d1Encoded, d2Raw string) (table.Data, error) {
	joined := d1Encoded + RekeySep + encodeSegment(d2Raw)
	d, err := table.MakeData(joined)
	if err != nil {
		return d, fmt.Errorf(
			"query: intermediate join payload %q exceeds %d bytes; project fewer columns or shorten payloads",
			joined, table.DataLen)
	}
	return d, nil
}

// isIdentityPerm reports whether perm maps every slot to itself.
func isIdentityPerm(perm []int) bool {
	for i, p := range perm {
		if p != i {
			return false
		}
	}
	return true
}

// Restore finalizes a multi-way join chain planned by the cost-aware
// planner: it rewrites each output pair's payload segments into the
// written-order layout and sorts the relation into the canonical
// ⟨j, d1, d2⟩ order through the run's configured sorting network.
//
// Perm maps written table slots onto execution slots: the chain joins
// k+1 tables, execution-order slot vector = the k−1 accumulated
// segments of D1 followed by D2, and the restored pair takes segment
// Perm[w] for written slot w. An identity Perm (the written-order
// plan) skips the rewrite and only canonicalizes — which is what makes
// reordered and written plans byte-identical: both end in the same
// sort, and a sorted sequence is a pure function of the row multiset,
// which join order does not change.
//
// The canonical sort's comparator count C(m) is part of the planner's
// modeled cost, and its access pattern is a fixed function of the
// (public) output size m.
type Restore struct{ Perm []int }

// Name implements Operator.
func (r Restore) Name() string {
	if isIdentityPerm(r.Perm) {
		return "canonicalize(j,d1,d2)"
	}
	return fmt.Sprintf("restore%v → canonicalize(j,d1,d2)", r.Perm)
}

// Run implements Operator.
func (r Restore) Run(ctx *Context, in Relation) (Relation, error) {
	out := make([]table.KeyedPair, len(in.Pairs))
	if isIdentityPerm(r.Perm) {
		copy(out, in.Pairs)
	} else {
		k := len(r.Perm) // table slots in the chain
		written := make([]string, k)
		for i, p := range in.Pairs {
			if i%probeEvery == 0 {
				probe(ctx)
			}
			execSegs := splitEncoded(table.DataString(p.D1))
			if len(execSegs) != k-1 {
				return Relation{}, fmt.Errorf(
					"query: restore: pair %d carries %d payload segments, want %d: %q",
					i, len(execSegs), k-1, table.DataString(p.D1))
			}
			execSegs = append(execSegs, encodeSegment(table.DataString(p.D2)))
			for w, e := range r.Perm {
				written[w] = execSegs[e]
			}
			// The written-order pair: D1 re-accumulates all but the last
			// written table (still encoded), D2 is that last table's raw
			// payload.
			d1, err := table.MakeData(strings.Join(written[:k-1], RekeySep))
			if err != nil {
				return Relation{}, fmt.Errorf(
					"query: intermediate join payload %q exceeds %d bytes; project fewer columns or shorten payloads",
					strings.Join(written[:k-1], RekeySep), table.DataLen)
			}
			d2, err := table.MakeData(decodeSegment(written[k-1]))
			if err != nil {
				return Relation{}, fmt.Errorf("query: restore: %w", err)
			}
			out[i] = table.KeyedPair{J: p.J, D1: d1, D2: d2}
		}
	}
	ctx.Cfg.SortPairs(out, table.LessKeyedPair, ctx.Cfg.RelationalSortStats())
	return Relation{Kind: KindPairs, Pairs: out}, nil
}
