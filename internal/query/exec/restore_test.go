package exec

import (
	"reflect"
	"strings"
	"testing"
)

func TestSegmentCodecRoundTrip(t *testing.T) {
	for _, s := range []string{
		"", "a", "abc", "a+b", "+", "++", `\`, `\\`, `\+`, `a\+b+c\`,
	} {
		enc := encodeSegment(s)
		if strings.ContainsAny(stripEscapes(enc), RekeySep) {
			t.Errorf("encodeSegment(%q) = %q leaves an unescaped separator", s, enc)
		}
		if got := decodeSegment(enc); got != s {
			t.Errorf("decode(encode(%q)) = %q", s, got)
		}
	}
}

// stripEscapes removes escape pairs, leaving only unescaped bytes.
func stripEscapes(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == rekeyEscape && i+1 < len(s) {
			i++
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func TestSplitEncoded(t *testing.T) {
	segs := []string{"a+1", `b\2`, "", "+x"}
	var enc []string
	for _, s := range segs {
		enc = append(enc, encodeSegment(s))
	}
	joined := strings.Join(enc, RekeySep)
	got := splitEncoded(joined)
	if !reflect.DeepEqual(got, enc) {
		t.Fatalf("splitEncoded(%q) = %q, want %q", joined, got, enc)
	}
	for i, e := range got {
		if d := decodeSegment(e); d != segs[i] {
			t.Errorf("segment %d decodes to %q, want %q", i, d, segs[i])
		}
	}
}

func TestCleanPayloadEncodesAsItself(t *testing.T) {
	for _, s := range []string{"", "alice", "a b c", "123"} {
		if enc := encodeSegment(s); enc != s {
			t.Errorf("encodeSegment(%q) = %q, want unchanged", s, enc)
		}
	}
}

func TestRestoreName(t *testing.T) {
	if got := (Restore{Perm: []int{0, 1, 2}}).Name(); got != "canonicalize(j,d1,d2)" {
		t.Errorf("identity name = %q", got)
	}
	if got := (Restore{Perm: []int{0, 2, 1}}).Name(); !strings.Contains(got, "restore[0 2 1]") {
		t.Errorf("permuted name = %q", got)
	}
}
