// Package exec is the physical operator layer of the oblivious SQL
// engine: each operator wraps one of the repository's oblivious
// primitives (internal/core, internal/ops, internal/aggregate) behind a
// uniform Run interface, and a query executes as a straight-line
// pipeline of operators threading one shared execution context.
//
// The context carries a single *core.Config — store allocator (plain or
// sealed), worker count, sorting network, instrumentation — so every
// stage of a SQL query runs with the same parallelism, storage backend
// and trace sink as a bare core.Join would. Obliviousness composes
// stage-wise: each operator's access pattern depends only on its input
// and output sizes, all of which are public.
package exec

import (
	"fmt"
	"strconv"
	"strings"

	"oblivjoin/internal/aggregate"
	"oblivjoin/internal/catalog"
	"oblivjoin/internal/core"
	"oblivjoin/internal/ops"
	"oblivjoin/internal/shard"
	"oblivjoin/internal/table"
)

// Context threads the shared execution state through every operator of
// one query run.
type Context struct {
	// Cfg is the one shared configuration: allocator, workers, network,
	// probabilistic distribute, stats. Every operator allocates and
	// sorts through it.
	Cfg *core.Config
	// Tables resolves table names for Scan/Semijoin/Join operators.
	Tables map[string][]table.Row
	// Batch is the row granularity of the streaming executor's
	// hand-offs (0 selects DefaultBatch). The driver keeps it a
	// multiple of the sealed block width so batch boundaries align
	// with ciphertext blocks.
	Batch int
	// Shard, when non-nil, routes join barriers through the sharded
	// scheduler (Options.Shards > 1): hash-partitioned concurrent
	// per-shard pipelines with an oblivious merge. Every other
	// operator keeps running on Cfg unchanged.
	Shard *shard.Group
}

// Kind discriminates the shape a Relation currently has as it flows
// down the pipeline.
type Kind int

const (
	// KindNone is the empty pipeline source (input of Scan).
	KindNone Kind = iota
	// KindRows is a single-payload relation ([]table.Row).
	KindRows
	// KindPairs is keyed join output ([]table.KeyedPair).
	KindPairs
	// KindGroups is GROUP BY output.
	KindGroups
	// KindJoinStats is the §7 COUNT-over-join fast-path output.
	KindJoinStats
	// KindJoinSums is the §7 SUM-over-join fast-path output.
	KindJoinSums
	// KindResult is the projected, stringified final result.
	KindResult
)

// Relation is the value flowing between operators: exactly one of the
// slices (or Result) is meaningful, selected by Kind.
type Relation struct {
	Kind      Kind
	Rows      []table.Row
	Pairs     []table.KeyedPair
	Groups    []aggregate.Group
	JoinStats []aggregate.JoinStat
	JoinSums  []aggregate.JoinSum
	Result    *Result
}

// Size returns the (public) cardinality of the relation.
func (r Relation) Size() int {
	switch r.Kind {
	case KindRows:
		return len(r.Rows)
	case KindPairs:
		return len(r.Pairs)
	case KindGroups:
		return len(r.Groups)
	case KindJoinStats:
		return len(r.JoinStats)
	case KindJoinSums:
		return len(r.JoinSums)
	case KindResult:
		if r.Result == nil { // sink-delivered: never materialized
			return 0
		}
		return len(r.Result.Rows)
	}
	return 0
}

// Result is a finished query result: column names and stringified rows.
type Result struct {
	Columns []string
	Rows    [][]string
}

// Operator is one physical plan stage. Run consumes the upstream
// relation and produces the downstream one; Name is the stage's label
// in EXPLAIN output and PlanStats reports.
type Operator interface {
	Name() string
	Run(ctx *Context, in Relation) (Relation, error)
}

// probeEvery is the row stride between cancellation probes in the
// operators' own per-row materialization loops (Rekey, GroupBy). The
// oblivious primitives probe at their round barriers already; this
// covers the plain-Go loops over m rows, which can dominate when a
// join output is large. A fixed constant, so the probe cadence is a
// function of the (public) row count alone.
const probeEvery = 8192

// probe checks the run's context for cancellation; nil-safe so
// operators stay directly testable without an execution context.
func probe(ctx *Context) {
	if ctx != nil && ctx.Cfg != nil {
		ctx.Cfg.CheckCtx()
	}
}

func lookup(ctx *Context, name, role string) ([]table.Row, error) {
	rows, ok := ctx.Tables[name]
	if !ok {
		return nil, fmt.Errorf("query: execution%s: %w", role, &catalog.UnknownTableError{Name: name})
	}
	return rows, nil
}

// ── source and row-level operators ───────────────────────────────────

// Scan reads a registered table into the pipeline.
type Scan struct{ Table string }

// Name implements Operator.
func (s Scan) Name() string { return fmt.Sprintf("scan(%s)", s.Table) }

// Run implements Operator.
func (s Scan) Run(ctx *Context, _ Relation) (Relation, error) {
	rows, err := lookup(ctx, s.Table, "")
	if err != nil {
		return Relation{}, err
	}
	return Relation{Kind: KindRows, Rows: rows}, nil
}

// Semijoin keeps the rows whose key appears in Table (an IN-subquery).
type Semijoin struct{ Table string }

// Name implements Operator.
func (s Semijoin) Name() string { return fmt.Sprintf("semijoin(%s)", s.Table) }

// Run implements Operator.
func (s Semijoin) Run(ctx *Context, in Relation) (Relation, error) {
	sub, err := lookup(ctx, s.Table, " in IN subquery")
	if err != nil {
		return Relation{}, err
	}
	return Relation{Kind: KindRows, Rows: ops.Semijoin(ctx.Cfg, in.Rows, sub)}, nil
}

// Filter keeps the rows satisfying the branch-free predicate.
type Filter struct{ Pred ops.Predicate }

// Name implements Operator.
func (Filter) Name() string { return "filter[branch-free]" }

// Run implements Operator.
func (f Filter) Run(ctx *Context, in Relation) (Relation, error) {
	return Relation{Kind: KindRows, Rows: ops.Filter(ctx.Cfg, in.Rows, f.Pred)}, nil
}

// Distinct removes duplicate rows, sorting by (key, data).
type Distinct struct{}

// Name implements Operator.
func (Distinct) Name() string { return "distinct[oblivious]" }

// Run implements Operator.
func (Distinct) Run(ctx *Context, in Relation) (Relation, error) {
	return Relation{Kind: KindRows, Rows: ops.Distinct(ctx.Cfg, in.Rows)}, nil
}

// Sort orders rows by (key, data). Free marks inputs that are already
// key-ordered (join output), where the sort costs nothing.
type Sort struct{ Free bool }

// Name implements Operator.
func (s Sort) Name() string {
	if s.Free {
		return "sort(key) [already ordered]"
	}
	return "sort(key)"
}

// Run implements Operator.
func (s Sort) Run(ctx *Context, in Relation) (Relation, error) {
	if s.Free {
		return in, nil
	}
	return Relation{Kind: KindRows, Rows: ops.SortByKey(ctx.Cfg, in.Rows)}, nil
}

// Limit truncates the relation to its first N records. Truncation of an
// already-public-size output reveals nothing new.
type Limit struct{ N int }

// Name implements Operator.
func (l Limit) Name() string { return fmt.Sprintf("limit(%d)", l.N) }

// Run implements Operator.
func (l Limit) Run(ctx *Context, in Relation) (Relation, error) {
	probe(ctx)
	if l.N >= in.Size() {
		return in, nil
	}
	out := in
	switch in.Kind {
	case KindRows:
		out.Rows = in.Rows[:l.N]
	case KindPairs:
		out.Pairs = in.Pairs[:l.N]
	case KindGroups:
		out.Groups = in.Groups[:l.N]
	case KindJoinStats:
		out.JoinStats = in.JoinStats[:l.N]
	case KindJoinSums:
		out.JoinSums = in.JoinSums[:l.N]
	}
	return out, nil
}

// ── joins ────────────────────────────────────────────────────────────

// RekeySep separates the two payloads when a keyed join result is
// re-packaged as a plain relation for the next join of a chain.
const RekeySep = "+"

// Rekey converts keyed join output back into a row relation whose
// payload is the concatenation of both sides — the ToTable composition
// of §7 that makes oblivious joins chainable. A combined payload
// exceeding the fixed public width is an error (widths are public
// constants; growing them is a schema decision, not a runtime one).
//
// Payload segments are escape-encoded (see encodeSegment) so an
// accumulated payload splits unambiguously at its separators — the
// Restore stage of a reordered join chain depends on this. First marks
// the chain's first rekey, whose left side is a raw scan payload that
// still needs encoding; later rekeys receive an already-encoded
// accumulation on the left. Payloads free of '+' and '\' encode as
// themselves, so the common case concatenates exactly as before.
type Rekey struct{ First bool }

// Name implements Operator.
func (Rekey) Name() string { return "rekey" }

// Run implements Operator.
func (r Rekey) Run(ctx *Context, in Relation) (Relation, error) {
	rows := make([]table.Row, len(in.Pairs))
	for i, p := range in.Pairs {
		if i%probeEvery == 0 {
			probe(ctx)
		}
		d1 := table.DataString(p.D1)
		if r.First {
			d1 = encodeSegment(d1)
		}
		d, err := rekeyJoin(d1, table.DataString(p.D2))
		if err != nil {
			return Relation{}, err
		}
		rows[i] = table.Row{J: p.J, D: d}
	}
	return Relation{Kind: KindRows, Rows: rows}, nil
}

// Join computes the oblivious equi-join of the incoming rows with a
// registered table, keeping the join key in the output so the result
// stays composable (core.JoinKeyed).
type Join struct{ Table string }

// Name implements Operator.
func (j Join) Name() string { return fmt.Sprintf("oblivious-join(%s)", j.Table) }

// Run implements Operator.
func (j Join) Run(ctx *Context, in Relation) (Relation, error) {
	right, err := lookup(ctx, j.Table, "")
	if err != nil {
		return Relation{}, err
	}
	if ctx.Shard != nil {
		pairs, err := ctx.Shard.JoinKeyed(core.RowsFeed(in.Rows), core.RowsFeed(right))
		if err != nil {
			return Relation{}, err
		}
		return Relation{Kind: KindPairs, Pairs: pairs}, nil
	}
	pairs := core.JoinKeyed(ctx.Cfg, in.Rows, right)
	return Relation{Kind: KindPairs, Pairs: pairs}, nil
}

// JoinAggregate is the §7 fast path: COUNT and SUM aggregates over a
// join computed from group dimensions alone, never materializing the
// m-row join output.
type JoinAggregate struct {
	Table string
	Sum   bool // also compute per-side value sums
}

// Name implements Operator.
func (j JoinAggregate) Name() string {
	if j.Sum {
		return fmt.Sprintf("join-group-sums(%s) [§7 fast path]", j.Table)
	}
	return fmt.Sprintf("join-group-stats(%s) [§7 fast path]", j.Table)
}

// Run implements Operator.
func (j JoinAggregate) Run(ctx *Context, in Relation) (Relation, error) {
	right, err := lookup(ctx, j.Table, "")
	if err != nil {
		return Relation{}, err
	}
	if !j.Sum {
		stats := aggregate.JoinGroupStats(ctx.Cfg, in.Rows, right)
		return Relation{Kind: KindJoinStats, JoinStats: stats}, nil
	}
	// Validate payloads up front — BEFORE the oblivious pass runs — and
	// report every offending value, not just the first one a side
	// channel happened to catch.
	if err := checkNumericPayloads(in.Rows, right); err != nil {
		return Relation{}, err
	}
	value := func(r table.Row) uint64 {
		v, _ := strconv.ParseUint(table.DataString(r.D), 10, 64)
		return v
	}
	sums := aggregate.JoinGroupSums(ctx.Cfg, in.Rows, right, value)
	return Relation{Kind: KindJoinSums, JoinSums: sums}, nil
}

// checkNumericPayloads rejects SUM-over-JOIN inputs whose payloads do
// not parse as unsigned integers, listing the distinct offending
// values (capped for readability).
func checkNumericPayloads(sides ...[]table.Row) error {
	const maxListed = 5
	seen := map[string]bool{}
	var bad []string
	truncated := false
	for _, rows := range sides {
		for _, r := range rows {
			s := table.DataString(r.D)
			if _, err := strconv.ParseUint(s, 10, 64); err == nil || seen[s] {
				continue
			}
			seen[s] = true
			if len(bad) == maxListed {
				truncated = true
				continue
			}
			bad = append(bad, strconv.Quote(s))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	list := strings.Join(bad, ", ")
	if truncated {
		list += fmt.Sprintf(", … (%d distinct values)", len(seen))
	}
	return fmt.Errorf("query: SUM over a JOIN needs numeric data payloads; found %s", list)
}

// ── aggregation ──────────────────────────────────────────────────────

// GroupBy aggregates rows per key. NeedValue is set when the select
// list contains a value-consuming aggregate (SUM/MIN/MAX), requiring
// numeric payloads.
type GroupBy struct{ NeedValue bool }

// Name implements Operator.
func (GroupBy) Name() string { return "group-by[oblivious]" }

// Run implements Operator.
func (g GroupBy) Run(ctx *Context, in Relation) (Relation, error) {
	items := make([]aggregate.Item, len(in.Rows))
	for i, r := range in.Rows {
		if i%probeEvery == 0 {
			probe(ctx)
		}
		items[i] = aggregate.Item{K: r.J}
		if g.NeedValue {
			v, err := strconv.ParseUint(table.DataString(r.D), 10, 64)
			if err != nil {
				return Relation{}, fmt.Errorf("query: SUM/MIN/MAX need numeric data payloads: row %d holds %q",
					i, table.DataString(r.D))
			}
			items[i].V = v
		}
	}
	return Relation{Kind: KindGroups, Groups: aggregate.GroupBy(ctx.Cfg, items)}, nil
}
