package exec

import (
	"fmt"
	"strconv"

	"oblivjoin/internal/table"
)

// Col names a projectable column, mirrored from the front end's AST so
// this package stays independent of the parser.
type Col int

const (
	// ColKey is the join/group key.
	ColKey Col = iota
	// ColData is the single payload of a row relation.
	ColData
	// ColLeftData and ColRightData address the two sides of a join.
	ColLeftData
	// ColRightData is the right side's payload.
	ColRightData
)

// Agg names an aggregate over the data column.
type Agg int

const (
	// AggNone marks a plain column item.
	AggNone Agg = iota
	// AggCount is COUNT(*).
	AggCount
	// AggSum, AggMin and AggMax aggregate payload values.
	AggSum
	// AggMin is MIN(data).
	AggMin
	// AggMax is MAX(data).
	AggMax
)

// ProjItem is one output column: a column reference or an aggregate.
// Star expansion happens in the planner, so items are always concrete.
type ProjItem struct {
	Col Col
	Agg Agg
}

func colName(it ProjItem) string {
	switch it.Agg {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	}
	switch it.Col {
	case ColKey:
		return "key"
	case ColLeftData:
		return "left.data"
	case ColRightData:
		return "right.data"
	default:
		return "data"
	}
}

// Project renders the incoming relation as a stringified Result. It is
// always the final operator of a pipeline; everything it touches is
// already the (public) query output.
type Project struct{ Items []ProjItem }

// Name implements Operator.
func (Project) Name() string { return "project" }

// Run implements Operator.
func (p Project) Run(ctx *Context, in Relation) (Relation, error) {
	res := &Result{}
	for _, it := range p.Items {
		res.Columns = append(res.Columns, p.columnName(in, it))
	}
	emit, err := p.rowEmitter(in)
	if err != nil {
		return Relation{}, err
	}
	for i := 0; i < in.Size(); i++ {
		if i%probeEvery == 0 {
			probe(ctx)
		}
		row, err := emit(i)
		if err != nil {
			return Relation{}, err
		}
		res.Rows = append(res.Rows, row)
	}
	return Relation{Kind: KindResult, Result: res}, nil
}

// RunStream renders a row stream batch by batch. With a sink, batches
// are delivered as they render and the result is never materialized —
// the peak memory of the projection is one batch. Without a sink the
// rows accumulate into a Result as Run would build.
func (p Project) RunStream(ctx *Context, src RowSource, sink RowSink) (*Result, error) {
	defer src.Close()
	cols := make([]string, 0, len(p.Items))
	for _, it := range p.Items {
		cols = append(cols, p.columnName(Relation{Kind: KindRows}, it))
	}
	var res *Result
	if sink != nil {
		if err := sink.Columns(cols); err != nil {
			return nil, err
		}
	} else {
		res = &Result{Columns: cols}
	}
	for {
		probe(ctx)
		b, err := src.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return res, nil
		}
		rel := Relation{Kind: KindRows, Rows: b}
		emit, err := p.rowEmitter(rel)
		if err != nil {
			return nil, err
		}
		out := make([][]string, len(b))
		for i := range b {
			if out[i], err = emit(i); err != nil {
				return nil, err
			}
		}
		if sink != nil {
			if err := sink.Rows(out); err != nil {
				return nil, err
			}
		} else {
			res.Rows = append(res.Rows, out...)
		}
	}
}

// columnName resolves a header, specializing SUM headers over the join
// fast path so both sides stay distinguishable.
func (Project) columnName(in Relation, it ProjItem) string {
	if in.Kind == KindJoinSums && it.Agg == AggSum {
		if it.Col == ColRightData {
			return "sum(right.data)"
		}
		return "sum(left.data)"
	}
	return colName(it)
}

// rowEmitter returns a function producing output row i for the
// relation's shape, or an error when an item is unavailable there.
func (p Project) rowEmitter(in Relation) (func(i int) ([]string, error), error) {
	u := strconv.FormatUint
	cell := func(in Relation, i int, it ProjItem) (string, error) {
		switch in.Kind {
		case KindRows:
			r := in.Rows[i]
			switch it.Col {
			case ColKey:
				return u(r.J, 10), nil
			case ColData:
				return table.DataString(r.D), nil
			}
			return "", fmt.Errorf("query: column %s not available without JOIN", colName(it))
		case KindPairs:
			pr := in.Pairs[i]
			switch it.Col {
			case ColKey:
				return u(pr.J, 10), nil
			case ColLeftData:
				return table.DataString(pr.D1), nil
			case ColRightData:
				return table.DataString(pr.D2), nil
			}
			return "", fmt.Errorf("query: ambiguous column data over a JOIN; use left.data or right.data")
		case KindGroups:
			g := in.Groups[i]
			switch it.Agg {
			case AggCount:
				return u(g.Count, 10), nil
			case AggSum:
				return u(g.Sum, 10), nil
			case AggMin:
				return u(g.Min, 10), nil
			case AggMax:
				return u(g.Max, 10), nil
			}
			if it.Col == ColKey {
				return u(g.K, 10), nil
			}
			return "", fmt.Errorf("query: column %s not available under GROUP BY", colName(it))
		case KindJoinStats:
			s := in.JoinStats[i]
			switch {
			case it.Agg == AggCount:
				return u(s.Pairs, 10), nil
			case it.Col == ColKey && it.Agg == AggNone:
				return u(s.J, 10), nil
			}
			return "", fmt.Errorf("query: only key and COUNT(*) are available for GROUP BY over a JOIN")
		case KindJoinSums:
			s := in.JoinSums[i]
			switch {
			case it.Agg == AggCount:
				return u(s.Pairs, 10), nil
			case it.Agg == AggSum && it.Col == ColRightData:
				return u(s.RightTotal(), 10), nil
			case it.Agg == AggSum:
				return u(s.LeftTotal(), 10), nil
			case it.Col == ColKey && it.Agg == AggNone:
				return u(s.J, 10), nil
			}
			return "", fmt.Errorf("query: column %s not available for GROUP BY over a JOIN", colName(it))
		}
		return "", fmt.Errorf("query: cannot project relation kind %d", in.Kind)
	}
	return func(i int) ([]string, error) {
		out := make([]string, 0, len(p.Items))
		for _, it := range p.Items {
			c, err := cell(in, i, it)
			if err != nil {
				return nil, err
			}
			out = append(out, c)
		}
		return out, nil
	}, nil
}
