package exec

import (
	"oblivjoin/internal/core"
	"oblivjoin/internal/ops"
	"oblivjoin/internal/table"
)

// Batch is one block-granular hand-off between pipeline stages: a
// window of rows whose backing array the producer may reuse after the
// next call to Next. It is a type alias (not a defined type) so a
// RowSource satisfies core.RowFeed structurally and a join can consume
// an upstream stage's batches straight into TC.
type Batch = []table.Row

// DefaultBatch is the default hand-off granularity in rows: 64 sealed
// blocks of the default block width, so batch boundaries always align
// with ciphertext blocks and a sealed drain never splits a block RMW.
const DefaultBatch = 64 * table.DefaultSealedBlock

// RowSource is the pull side of the streaming contract. Len is the
// public total row count (known up front — every operator's output
// size is public by design). Next returns the next batch, nil at end
// of stream; the returned slice is only valid until the following
// call. Close releases whatever the source drains from (idempotent;
// Next at end of stream releases implicitly).
type RowSource interface {
	Len() int
	Next() (Batch, error)
	Close()
}

// Streamer is implemented by operators that can consume and produce
// batch streams. Barrier operators (filter, distinct, sort, semijoin)
// are eager: RunStream fills a store from the upstream batches,
// runs the oblivious body, and returns a lazy drain of the surviving
// prefix. Row-level operators (limit) are lazy end to end.
type Streamer interface {
	Operator
	RunStream(ctx *Context, src RowSource) (RowSource, error)
}

// RowSink consumes a streamed result incrementally: Columns once, then
// any number of Rows calls in output order. When a query runs against
// a sink the final result is never materialized, so the peak memory of
// a streaming run is bounded by the widest single stage.
type RowSink interface {
	Columns(cols []string) error
	Rows(rows [][]string) error
}

// batchRows resolves the configured hand-off granularity.
func (c *Context) batchRows() int {
	if c != nil && c.Batch > 0 {
		return c.Batch
	}
	return DefaultBatch
}

// NewStore allocates an n-entry store through the run's configured
// allocator — the shared allocation helper the store-backed operators
// and streaming fills go through instead of each repeating the
// cfg-plumbing boilerplate.
func (c *Context) NewStore(n int) table.Store {
	return c.Cfg.Alloc(n)
}

// fillFrom drains src into bld, tagging every row with tid, probing
// for cancellation at batch boundaries. It closes src in all cases.
func (c *Context) fillFrom(bld *table.Builder, src RowSource, tid uint64) error {
	defer src.Close()
	for {
		probe(c)
		b, err := src.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		bld.AppendRows(b, tid)
	}
}

// fillStore loads src into a fresh store of exactly src.Len() entries.
// The builder's deferred-trace write replay keeps the recorded event
// order identical to the materialized collect-then-load sequence.
func (c *Context) fillStore(src RowSource) (table.Store, error) {
	a := c.NewStore(src.Len())
	bld := table.NewBuilder(a)
	if err := c.fillFrom(bld, src, 0); err != nil {
		return nil, err
	}
	bld.Flush()
	return a, nil
}

// ── sources ──────────────────────────────────────────────────────────

// sliceSource streams an in-memory row slice as zero-copy subslices.
type sliceSource struct {
	ctx     *Context
	rows    []table.Row
	pos     int
	onClose func()
}

// NewSliceSource wraps rows as a RowSource. onClose (optional) runs
// once when the source is closed or fully drained — the driver uses it
// to discharge the slice's gauge weight the moment downstream is done
// with it.
func NewSliceSource(ctx *Context, rows []table.Row, onClose func()) RowSource {
	return &sliceSource{ctx: ctx, rows: rows, onClose: onClose}
}

func (s *sliceSource) Len() int { return len(s.rows) }

func (s *sliceSource) Next() (Batch, error) {
	probe(s.ctx)
	if s.pos >= len(s.rows) {
		s.Close()
		return nil, nil
	}
	hi := min(s.pos+s.ctx.batchRows(), len(s.rows))
	b := s.rows[s.pos:hi]
	s.pos = hi
	return b, nil
}

func (s *sliceSource) Close() {
	if s.onClose != nil {
		s.onClose()
		s.onClose = nil
	}
}

// storeSource drains the live prefix [0, k) of a store in batch-sized
// range reads, releasing the store into the run's gauge once drained.
// The range reads canonicalize to the same per-entry read events the
// materialized executor's collect loop emits.
type storeSource struct {
	ctx      *Context
	st       table.Store
	k        int
	pos      int
	buf      []table.Entry
	rows     []table.Row
	released bool
}

func newStoreSource(ctx *Context, st table.Store, k int) *storeSource {
	return &storeSource{ctx: ctx, st: st, k: k}
}

func (s *storeSource) Len() int { return s.k }

func (s *storeSource) Next() (Batch, error) {
	probe(s.ctx)
	if s.pos >= s.k {
		s.Close()
		return nil, nil
	}
	if s.buf == nil {
		bw := s.ctx.batchRows()
		s.buf = make([]table.Entry, bw)
		s.rows = make([]table.Row, bw)
	}
	n := min(len(s.buf), s.k-s.pos)
	loadStoreRange(s.st, s.pos, s.buf[:n])
	for i := range s.buf[:n] {
		s.rows[i] = table.Row{J: s.buf[i].J, D: s.buf[i].D}
	}
	s.pos += n
	return s.rows[:n], nil
}

func (s *storeSource) Close() {
	if s.released {
		return
	}
	s.released = true
	if s.ctx != nil && s.ctx.Cfg != nil {
		s.ctx.Cfg.ReleaseStore(s.st)
	}
}

// loadStoreRange reads [lo, lo+len(dst)) of st, batched when the store
// supports ranges; the element-loop fallback emits the same events.
func loadStoreRange(st table.Store, lo int, dst []table.Entry) {
	if rs, ok := st.(table.RangeStore); ok {
		rs.GetRange(lo, dst)
		return
	}
	for i := range dst {
		dst[i] = st.Get(lo + i)
	}
}

// rekeySource converts keyed join output into a row stream batch-wise
// — the streaming form of Rekey, so a join feeding a downstream stage
// never materializes the rekeyed whole-relation slice.
type rekeySource struct {
	ctx     *Context
	pairs   []table.KeyedPair
	first   bool
	pos     int
	rows    []table.Row
	onClose func()
}

// NewRekeySource wraps keyed join output as a row stream, applying the
// same segment encoding as Rekey (first marks the chain's first rekey,
// whose left side is a raw payload). onClose (optional) runs once on
// close or full drain, discharging the pairs.
func NewRekeySource(ctx *Context, pairs []table.KeyedPair, first bool, onClose func()) RowSource {
	return &rekeySource{ctx: ctx, pairs: pairs, first: first, onClose: onClose}
}

func (s *rekeySource) Len() int { return len(s.pairs) }

func (s *rekeySource) Next() (Batch, error) {
	probe(s.ctx)
	if s.pos >= len(s.pairs) {
		s.Close()
		return nil, nil
	}
	if s.rows == nil {
		s.rows = make([]table.Row, s.ctx.batchRows())
	}
	n := min(len(s.rows), len(s.pairs)-s.pos)
	for i, p := range s.pairs[s.pos : s.pos+n] {
		d1 := table.DataString(p.D1)
		if s.first {
			d1 = encodeSegment(d1)
		}
		d, err := rekeyJoin(d1, table.DataString(p.D2))
		if err != nil {
			return nil, err
		}
		s.rows[i] = table.Row{J: p.J, D: d}
	}
	s.pos += n
	return s.rows[:n], nil
}

func (s *rekeySource) Close() {
	if s.onClose != nil {
		s.onClose()
		s.onClose = nil
	}
}

// limitSource forwards the first total rows of src and then keeps
// draining the remainder without forwarding it. The dummy drain keeps
// the upstream read pattern — and hence the canonical trace —
// identical to a materialized run, where the full prefix is collected
// before the limit truncates it.
type limitSource struct {
	ctx   *Context
	src   RowSource
	total int
	sent  int
}

func (l *limitSource) Len() int { return l.total }

func (l *limitSource) Next() (Batch, error) {
	for {
		b, err := l.src.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return nil, nil
		}
		if l.sent >= l.total {
			continue // dummy drain past the limit
		}
		take := min(len(b), l.total-l.sent)
		l.sent += take
		return b[:take], nil
	}
}

func (l *limitSource) Close() { l.src.Close() }

// Materialize drains src into one contiguous slice — the bridge from a
// streamed prefix to operators that need the whole relation at once
// (GroupBy, the §7 join aggregates).
func Materialize(ctx *Context, src RowSource) ([]table.Row, error) {
	out := make([]table.Row, 0, src.Len())
	defer src.Close()
	for {
		b, err := src.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b...)
	}
}

// ── barrier operators' streaming forms ───────────────────────────────

// RunStream implements Streamer: fill, null-and-compact, drain prefix.
func (f Filter) RunStream(ctx *Context, src RowSource) (RowSource, error) {
	a, err := ctx.fillStore(src)
	if err != nil {
		return nil, err
	}
	k := ops.FilterStore(ctx.Cfg, a, f.Pred)
	return newStoreSource(ctx, a, int(k)), nil
}

// RunStream implements Streamer.
func (Distinct) RunStream(ctx *Context, src RowSource) (RowSource, error) {
	a, err := ctx.fillStore(src)
	if err != nil {
		return nil, err
	}
	k := ops.DistinctStore(ctx.Cfg, a)
	return newStoreSource(ctx, a, int(k)), nil
}

// RunStream implements Streamer.
func (s Sort) RunStream(ctx *Context, src RowSource) (RowSource, error) {
	if s.Free {
		return src, nil
	}
	a, err := ctx.fillStore(src)
	if err != nil {
		return nil, err
	}
	k := ops.SortByKeyStore(ctx.Cfg, a)
	return newStoreSource(ctx, a, int(k)), nil
}

// RunStream implements Streamer. The subquery table is appended before
// the upstream rows (right TID 1, then left TID 2), matching the
// materialized load order entry for entry.
func (s Semijoin) RunStream(ctx *Context, src RowSource) (RowSource, error) {
	sub, err := lookup(ctx, s.Table, " in IN subquery")
	if err != nil {
		src.Close()
		return nil, err
	}
	a := ctx.NewStore(len(sub) + src.Len())
	bld := table.NewBuilder(a)
	bld.AppendRows(sub, 1)
	if err := ctx.fillFrom(bld, src, 2); err != nil {
		return nil, err
	}
	bld.Flush()
	k := ops.SemijoinStore(ctx.Cfg, a)
	return newStoreSource(ctx, a, int(k)), nil
}

// RunFeed is Join's streaming form: both inputs arrive batch-wise and
// append straight into the join's combined store
// (core.JoinKeyedFeed2), so neither relation is ever staged as an
// extra slice — the left is the upstream stage's stream, the right is
// drained from the catalog in batch windows. The keyed output is
// materialized — a join is a barrier; its m output rows exist at once
// by construction. With sharding enabled the same two feeds drain into
// the sharded scheduler instead.
func (j Join) RunFeed(ctx *Context, src RowSource) (Relation, error) {
	right, err := lookup(ctx, j.Table, "")
	if err != nil {
		src.Close()
		return Relation{}, err
	}
	var pairs []table.KeyedPair
	if ctx.Shard != nil {
		pairs, err = ctx.Shard.JoinKeyed(src, NewSliceSource(ctx, right, nil))
	} else {
		pairs, err = core.JoinKeyedFeed2(ctx.Cfg, src, NewSliceSource(ctx, right, nil))
	}
	if err != nil {
		return Relation{}, err
	}
	return Relation{Kind: KindPairs, Pairs: pairs}, nil
}

// RunStream implements Streamer: forward the first N rows lazily, then
// dummy-drain the rest so the access pattern matches a materialized
// run (where the whole prefix is read before truncation).
func (l Limit) RunStream(ctx *Context, src RowSource) (RowSource, error) {
	return &limitSource{ctx: ctx, src: src, total: min(l.N, src.Len())}, nil
}

// ── accounting ───────────────────────────────────────────────────────

// RelationFootprint is the deterministic accounting weight, in bytes,
// of a materialized relation hand-off. Fixed per-record costs (not
// live heap measurements) so PeakBytes is reproducible across runs,
// platforms and GC schedules, and therefore CI-gateable.
func RelationFootprint(r Relation) int64 {
	switch r.Kind {
	case KindRows:
		return int64(len(r.Rows)) * int64(8+table.DataLen)
	case KindPairs:
		return int64(len(r.Pairs)) * int64(8+2*table.DataLen)
	case KindGroups:
		return int64(len(r.Groups)) * 40
	case KindJoinStats:
		return int64(len(r.JoinStats)) * 32
	case KindJoinSums:
		return int64(len(r.JoinSums)) * 48
	case KindResult:
		return ResultFootprint(r.Result)
	}
	return 0
}

// ResultFootprint is the accounting weight of a rendered result: one
// slice header per row plus a string header and payload per cell.
func ResultFootprint(res *Result) int64 {
	if res == nil {
		return 0
	}
	var t int64
	for _, row := range res.Rows {
		t += 24
		for _, c := range row {
			t += 16 + int64(len(c))
		}
	}
	return t
}
