package query

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"testing"

	"oblivjoin/internal/query/exec"
	"oblivjoin/internal/table"
)

// storeModes are the three storage backends the equality properties
// quantify over.
var storeModes = []struct {
	name string
	set  func(o *Options)
}{
	{"plain", func(o *Options) {}},
	{"sealed", func(o *Options) { o.Encrypted = true; o.SealedBlock = 1 }},
	{"block-sealed", func(o *Options) { o.Encrypted = true }},
}

// runModes pairs a streamed run with its materialized reference.
func queryBoth(t *testing.T, o Options, sql string, tables map[string][]table.Row) (streamed, materialized *Result, ss, ms *PlanStats) {
	t.Helper()
	run := func(o Options) (*Result, *PlanStats) {
		e := NewEngineWith(o)
		for name, rows := range tables {
			if err := e.Register(name, rows); err != nil {
				t.Fatal(err)
			}
		}
		res, err := e.Query(sql)
		if err != nil {
			t.Fatalf("Query(%q) [materialized=%t]: %v", sql, o.Materialized, err)
		}
		return res, e.LastStats()
	}
	o.TraceHash = true
	o.Materialized = false
	streamed, ss = run(o)
	o.Materialized = true
	materialized, ms = run(o)
	return
}

func checkEqual(t *testing.T, label string, streamed, materialized *Result, ss, ms *PlanStats) {
	t.Helper()
	if !reflect.DeepEqual(streamed, materialized) {
		t.Fatalf("%s: streamed result diverges:\n%v\nvs materialized\n%v", label, streamed, materialized)
	}
	if ss.TraceHash != ms.TraceHash {
		t.Fatalf("%s: streamed trace hash %s != materialized %s", label, ss.TraceHash, ms.TraceHash)
	}
	if ss.TraceEvents != ms.TraceEvents {
		t.Fatalf("%s: trace events %d != %d", label, ss.TraceEvents, ms.TraceEvents)
	}
	if ss.Comparators != ms.Comparators {
		t.Fatalf("%s: comparators %d != %d", label, ss.Comparators, ms.Comparators)
	}
}

// TestStreamedMatchesMaterializedCorpus: every corpus query, under
// every store mode, produces identical rows, comparator counts and
// bit-identical canonical trace hashes in streaming and materialized
// execution.
func TestStreamedMatchesMaterializedCorpus(t *testing.T) {
	for _, mode := range storeModes {
		for _, sql := range queryCorpus {
			var o Options
			mode.set(&o)
			s, m, ss, ms := queryBoth(t, o, sql, corpusCatalog("x"))
			checkEqual(t, fmt.Sprintf("%s/%q", mode.name, sql), s, m, ss, ms)
		}
	}
}

// TestStreamedMatchesMaterializedSizes sweeps the boundary input sizes
// around the batch width — 1, B−1, B, B+1 and a many-batch 4096 — and
// several batch widths, for every store mode, over a
// scan→filter→distinct→sort→limit chain (every streamable stage).
func TestStreamedMatchesMaterializedSizes(t *testing.T) {
	const sql = "SELECT DISTINCT key, data FROM t WHERE key > 5 ORDER BY key LIMIT 1000"
	batches := []int{16, 128}
	if testing.Short() {
		batches = []int{16}
	}
	for _, b := range batches {
		sizes := []int{1, b - 1, b, b + 1, 4096}
		for _, mode := range storeModes {
			for _, n := range sizes {
				if n < 1 {
					continue
				}
				rows := make([]table.Row, n)
				for i := range rows {
					rows[i] = table.Row{J: uint64(i % 97), D: table.MustData(fmt.Sprintf("d%d", i%13))}
				}
				o := Options{StreamBatch: b}
				mode.set(&o)
				s, m, ss, ms := queryBoth(t, o, sql, map[string][]table.Row{"t": rows})
				checkEqual(t, fmt.Sprintf("%s/b=%d/n=%d", mode.name, b, n), s, m, ss, ms)
				if ss.PeakBytes <= 0 || ms.PeakBytes <= 0 {
					t.Fatalf("%s/b=%d/n=%d: peak bytes not reported (%d, %d)",
						mode.name, b, n, ss.PeakBytes, ms.PeakBytes)
				}
				if ss.PeakBytes > ms.PeakBytes {
					t.Fatalf("%s/b=%d/n=%d: streamed peak %d exceeds materialized %d",
						mode.name, b, n, ss.PeakBytes, ms.PeakBytes)
				}
			}
		}
	}
}

// TestStreamedJoinMatchesMaterialized covers the feed-based join path
// (filter upstream of a join, rekey downstream) at batch-boundary
// sizes.
func TestStreamedJoinMatchesMaterialized(t *testing.T) {
	const sql = "SELECT key, left.data, right.data FROM l JOIN r USING (key) WHERE key < 60 ORDER BY key"
	for _, mode := range storeModes {
		for _, n := range []int{1, 15, 16, 17, 200} {
			l := make([]table.Row, n)
			r := make([]table.Row, (n+1)/2)
			for i := range l {
				l[i] = table.Row{J: uint64(i % 71), D: table.MustData(fmt.Sprintf("l%d", i))}
			}
			for i := range r {
				r[i] = table.Row{J: uint64(i % 71), D: table.MustData(fmt.Sprintf("r%d", i))}
			}
			var o Options
			mode.set(&o)
			o.StreamBatch = 16
			s, m, ss, ms := queryBoth(t, o, sql, map[string][]table.Row{"l": l, "r": r})
			checkEqual(t, fmt.Sprintf("join/%s/n=%d", mode.name, n), s, m, ss, ms)
		}
	}
}

// collectSink accumulates a streamed result for comparison.
type collectSink struct {
	cols []string
	rows [][]string
}

func (c *collectSink) Columns(cols []string) error {
	c.cols = append([]string(nil), cols...)
	return nil
}

func (c *collectSink) Rows(rows [][]string) error {
	for _, r := range rows {
		c.rows = append(c.rows, append([]string(nil), r...))
	}
	return nil
}

// TestRunStreamSinkDelivery: sink-mode execution delivers the same
// columns and rows Run materializes, with the same trace, and reports
// a peak no larger than the materialized run's.
func TestRunStreamSinkDelivery(t *testing.T) {
	rows := make([]table.Row, 1000)
	for i := range rows {
		rows[i] = table.Row{J: uint64(i % 31), D: table.MustData(fmt.Sprintf("v%d", i))}
	}
	tables := map[string][]table.Row{"t": rows}
	queries := []struct {
		sql string
		// strictPeak marks queries whose peak is the materialized
		// result itself, so sink delivery must strictly lower it.
		strictPeak bool
	}{
		{"SELECT key, data FROM t", true},
		{"SELECT key, data FROM t WHERE key >= 4 ORDER BY key", false},
	}
	for _, qc := range queries {
		pipeline := lowerSQL(t, qc.sql, tables)
		opts := Options{TraceHash: true}
		res, ps, err := Run(context.Background(), opts, nil, tables, pipeline)
		if err != nil {
			t.Fatal(err)
		}
		sink := &collectSink{}
		sps, err := RunStream(context.Background(), opts, nil, tables, pipeline, sink)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sink.cols, res.Columns) || !reflect.DeepEqual(sink.rows, res.Rows) {
			t.Fatalf("%q: sink delivery diverges from materialized result", qc.sql)
		}
		if sps.TraceHash != ps.TraceHash {
			t.Fatalf("%q: sink trace hash %s != run trace hash %s", qc.sql, sps.TraceHash, ps.TraceHash)
		}
		if sps.PeakBytes > ps.PeakBytes {
			t.Fatalf("%q: sink peak %d above result-materializing peak %d", qc.sql, sps.PeakBytes, ps.PeakBytes)
		}
		if qc.strictPeak && sps.PeakBytes >= ps.PeakBytes {
			t.Fatalf("%q: sink peak %d not below result-materializing peak %d", qc.sql, sps.PeakBytes, ps.PeakBytes)
		}
	}
}

// lowerSQL parses, plans and lowers sql against tables.
func lowerSQL(t *testing.T, sql string, tables map[string][]table.Row) []exec.Operator {
	t.Helper()
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineWith(Options{})
	for name, rows := range tables {
		if err := e.Register(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := e.plan(q)
	if err != nil {
		t.Fatal(err)
	}
	pipeline, err := lower(plan)
	if err != nil {
		t.Fatal(err)
	}
	return pipeline
}

// TestSpillUnderMemBudget: a join whose intermediates exceed a 1 MiB
// budget diverts stores to sealed spill files, produces the same rows
// and the same canonical trace as an unbudgeted run, and removes every
// spill file by the end of the run.
func TestSpillUnderMemBudget(t *testing.T) {
	// n is sized so the join's combined table alone (2n entries) plus
	// one m-entry intermediate crosses the 1 MiB budget in every store
	// mode; smaller joins stay in memory thanks to eager releases.
	const n = 4096
	l := make([]table.Row, n)
	r := make([]table.Row, n)
	for i := range l {
		l[i] = table.Row{J: uint64(i), D: table.MustData(fmt.Sprintf("L%d", i))}
		r[i] = table.Row{J: uint64(i), D: table.MustData(fmt.Sprintf("R%d", i))}
	}
	tables := map[string][]table.Row{"l": l, "r": r}
	const sql = "SELECT key, left.data, right.data FROM l JOIN r USING (key) ORDER BY key"

	dir := t.TempDir()
	for _, mode := range storeModes {
		if testing.Short() && mode.name != "plain" {
			continue
		}
		var base Options
		mode.set(&base)
		base.TraceHash = true

		run := func(o Options) (*Result, *PlanStats) {
			e := NewEngineWith(o)
			for name, rows := range tables {
				if err := e.Register(name, rows); err != nil {
					t.Fatal(err)
				}
			}
			res, err := e.Query(sql)
			if err != nil {
				t.Fatalf("%s: %v", mode.name, err)
			}
			return res, e.LastStats()
		}

		wantRes, wantPS := run(base)

		budgeted := base
		budgeted.MemBudget = 1 << 20
		budgeted.SpillDir = dir
		res, ps := run(budgeted)

		if ps.SpillCount == 0 || ps.SpillBytes == 0 {
			t.Fatalf("%s: budget run did not spill (count=%d bytes=%d)", mode.name, ps.SpillCount, ps.SpillBytes)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Fatalf("%s: spilled result diverges", mode.name)
		}
		if ps.TraceHash != wantPS.TraceHash {
			t.Fatalf("%s: spilled trace hash %s != unbudgeted %s", mode.name, ps.TraceHash, wantPS.TraceHash)
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) != 0 {
			t.Fatalf("%s: %d spill files survive the run", mode.name, len(ents))
		}
	}
}

// TestStreamBatchWidthAlignment: the resolved batch width is always a
// positive multiple of the sealed block width.
func TestStreamBatchWidthAlignment(t *testing.T) {
	cases := []struct {
		o    Options
		unit int
	}{
		{Options{}, table.DefaultSealedBlock},
		{Options{StreamBatch: 7}, table.DefaultSealedBlock},
		{Options{Encrypted: true, SealedBlock: 24, StreamBatch: 25}, 24},
		{Options{Encrypted: true, SealedBlock: 1, StreamBatch: 3}, 1},
	}
	for _, c := range cases {
		b := batchWidth(c.o)
		if b <= 0 || b%c.unit != 0 {
			t.Fatalf("batchWidth(%+v) = %d, not a positive multiple of %d", c.o, b, c.unit)
		}
		if c.o.StreamBatch > 0 && b < c.o.StreamBatch {
			t.Fatalf("batchWidth(%+v) = %d rounded down", c.o, b)
		}
	}
}

// TestStreamedCancellation: a pre-cancelled context aborts a streaming
// run with the typed sentinel, leaving no spill files behind.
func TestStreamedCancellation(t *testing.T) {
	rows := make([]table.Row, 4096)
	for i := range rows {
		rows[i] = table.Row{J: uint64(i), D: table.MustData("x")}
	}
	q, err := Parse("SELECT DISTINCT key, data FROM t ORDER BY key")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineWith(Options{})
	if err := e.Register("t", rows); err != nil {
		t.Fatal(err)
	}
	plan, err := e.plan(q)
	if err != nil {
		t.Fatal(err)
	}
	pipeline, err := lower(plan)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	o := Options{MemBudget: 1, SpillDir: dir}
	if _, _, err := Run(ctx, o, nil, map[string][]table.Row{"t": rows}, pipeline); err == nil {
		t.Fatal("cancelled run succeeded")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files survive a cancelled run", len(ents))
	}
}

// TestStreamerInterfaces pins which operators advertise the streaming
// contract.
func TestStreamerInterfaces(t *testing.T) {
	for _, op := range []exec.Operator{exec.Filter{}, exec.Distinct{}, exec.Sort{}, exec.Semijoin{}, exec.Limit{}} {
		if _, ok := op.(exec.Streamer); !ok {
			t.Fatalf("%T does not implement Streamer", op)
		}
	}
}
