package query

// This file is the planner's cost model. An oblivious engine has the
// rare luxury of an *exact*, content-independent cost model: every
// sorting network's compare–exchange count is a pure function of its
// input length, every routing loop's hop count is a pure function of
// the padded store size, and all of those lengths are public
// cardinalities. The model reproduces, operator by operator, the
// counts the instrumented executor reports in PlanStats — so modeled
// and observed comparators are equal whenever the model's output-size
// inputs are exact, and the difference between them is exactly the
// estimation error of the intermediate sizes (which the service layer
// feeds back via Card.JoinRows, see internal/service).
//
// Formula provenance (all mirrored from the executing code, and pinned
// by cost_test.go against instrumented runs):
//
//   join(n1, n2) → m        internal/core: Augment-Tables sorts n1+n2
//                           twice; each Oblivious-Expand sorts and
//                           routes a store of Lᵢ = max(nᵢ, m); the
//                           alignment sorts m. (Probabilistic
//                           distribute sorts nᵢ+m and routes nothing.)
//   semijoin(n, s)          internal/ops: one sort of n+s.
//   distinct/sort/group(n)  one sort of n.
//   join-agg(n, r)          internal/aggregate: Augment-Tables only —
//                           two sorts of n+r.
//   filter(n)               scans and compaction only: no comparators.
//   restore(m)              one canonical sort of m (internal/query/exec).
//
// Compaction route-ops are excluded: the executor runs its compactions
// uninstrumented (internal/ops passes nil stats), so the model matches
// what PlanStats actually reports.

import (
	"fmt"
	"math/bits"
	"strings"

	"oblivjoin/internal/bitonic"
	"oblivjoin/internal/shard"
	"oblivjoin/internal/table"
)

// Card supplies the public cardinalities the planner and the cost
// model consume. Rows reports a base table's (public) row count.
// JoinRows optionally reports the output size of joining the
// accumulated left side (identified by its table list, in execution
// order) with one more table — the adaptive-feedback channel: observed
// join output sizes are public by design (§3.2 of the paper reveals
// m), so feeding them back never consults data contents.
type Card interface {
	Rows(table string) (n int, ok bool)
	JoinRows(left []string, right string) (m int, ok bool)
}

// StaticCard is a fixed table-size map with no join-size feedback.
type StaticCard map[string]int

// Rows implements Card.
func (c StaticCard) Rows(t string) (int, bool) { n, ok := c[t]; return n, ok }

// JoinRows implements Card.
func (StaticCard) JoinRows([]string, string) (int, bool) { return 0, false }

// tablesCard adapts the single-user engine's table map to Card.
type tablesCard map[string][]table.Row

func (c tablesCard) Rows(t string) (int, bool) {
	rows, ok := c[t]
	return len(rows), ok
}

func (tablesCard) JoinRows([]string, string) (int, bool) { return 0, false }

// StageCost is one plan stage's modeled cost.
type StageCost struct {
	// Op is the stage label (matches EXPLAIN and PlanStats).
	Op string
	// Comparators is the modeled compare–exchange count of the stage's
	// sorting networks.
	Comparators uint64
	// RouteOps is the modeled compare–hop count of the stage's
	// distribute routing loops.
	RouteOps uint64
	// Rows is the stage's modeled output cardinality.
	Rows int
	// Bytes is the padded in-memory footprint of the stores the stage
	// allocates, in the run's store mode.
	Bytes int64
	// Estimated marks stages whose Rows (and the costs derived from
	// downstream sizes) rest on an estimate — a data-dependent-but-
	// public output size the model cannot know before execution
	// (filter/semijoin survivors, unfed join sizes, sharded skew).
	Estimated bool
}

// PlanCostReport is the modeled cost of a whole plan: per-stage rows
// plus totals. Comparators and RouteOps are exact (equal to the
// executed counts) whenever no stage is Estimated.
type PlanCostReport struct {
	Stages      []StageCost
	Comparators uint64
	RouteOps    uint64
	Bytes       int64
	// Rows is the modeled final output cardinality.
	Rows int
	// Estimated reports whether any stage rests on an estimated size.
	Estimated bool
}

// DistributeRouteOps returns the exact compare–hop count of the
// deterministic distribute's routing loop over a store of l entries —
// the same wave schedule core.routeDown executes, counted instead of
// run.
func DistributeRouteOps(l int) uint64 {
	if l <= 1 {
		return 0
	}
	var c uint64
	for j := 1 << (bits.Len(uint(l-1)) - 1); j >= 1; j >>= 1 {
		for hi := l - j - 1; hi >= 0; hi -= j {
			lo := hi - j + 1
			if lo < 0 {
				lo = 0
			}
			c += uint64(hi - lo + 1)
		}
	}
	return c
}

// costModel evaluates operator costs under one option set, memoizing
// the comparator counts of the configured network.
type costModel struct {
	opts Options
	memo map[int]uint64
}

func newCostModel(opts Options) *costModel {
	return &costModel{opts: opts, memo: map[int]uint64{}}
}

// sortC is the exact comparator count of one sort of n elements under
// the configured network.
func (cm *costModel) sortC(n int) uint64 {
	if c, ok := cm.memo[n]; ok {
		return c
	}
	var c uint64
	if cm.opts.MergeExchange {
		c = bitonic.MergeExchangeComparators(n)
	} else {
		c = bitonic.Comparators(n)
	}
	cm.memo[n] = c
	return c
}

// footprint is the padded store footprint of n entries in the run's
// store mode (mirrors run.go's modeFootprint).
func (cm *costModel) footprint(n int) int64 {
	return modeFootprint(cm.opts)(n)
}

// join models one oblivious equi-join of (n1, n2) inputs with output
// size m: comparators, route ops and allocated store bytes. When the
// run shards (Options.Shards > 1) the store bytes reflect the padded
// per-shard geometry (shard.CapFor); comparator counts keep the
// unsharded formula and the caller marks the stage Estimated — the
// sharded totals add routing and merge work and depend on the
// data-dependent (public) skew fallback, but they remain monotone in
// the same input sizes, which is all the ordering decision needs.
func (cm *costModel) join(n1, n2, m int) (comp, route uint64, bytes int64) {
	comp = 2 * cm.sortC(n1+n2) // Augment-Tables
	if cm.opts.Probabilistic {
		comp += cm.sortC(n1+m) + cm.sortC(n2+m) // PRP distributes
		bytes = cm.footprint(n1+n2) + cm.footprint(n1+m) + cm.footprint(n2+m)
	} else {
		l1, l2 := max(n1, m), max(n2, m)
		comp += cm.sortC(l1) + cm.sortC(l2)
		route = DistributeRouteOps(l1) + DistributeRouteOps(l2)
		bytes = cm.footprint(n1+n2) + cm.footprint(l1) + cm.footprint(l2)
	}
	comp += cm.sortC(m) // alignment
	if s := cm.opts.Shards; s > 1 {
		c1, c2 := shard.CapFor(n1, s), shard.CapFor(n2, s)
		bytes = int64(s) * (cm.footprint(c1+c2) + 2*cm.footprint(max(c1, c2)))
	}
	return comp, route, bytes
}

// estJoinRows is the default intermediate-size estimator when no
// feedback is available: min(n1, n2), the exact answer when the
// smaller side's keys each match at most one row of the larger (the
// foreign-key shape). Fan-out joins exceed it — which is precisely the
// divergence the adaptive replan hook detects and feeds back.
func estJoinRows(n1, n2 int) int { return min(n1, n2) }

// ComputePlanCost walks a linear plan and models every stage's
// comparator count, route ops, output cardinality and padded store
// footprint from public cardinalities alone. It never consults table
// contents, so calling it (like Explain) is itself oblivious.
func ComputePlanCost(plan PlanNode, card Card, opts Options) *PlanCostReport {
	var nodes []PlanNode
	for n := plan; n != nil; n = n.Input() {
		nodes = append(nodes, n)
	}
	// Leaf first.
	for i, j := 0, len(nodes)-1; i < j; i, j = i+1, j-1 {
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}

	cm := newCostModel(opts)
	rep := &PlanCostReport{}
	cur := 0          // modeled cardinality flowing into the next stage
	est := false      // cur rests on an estimate
	var left []string // accumulated join-chain tables, execution order

	for _, n := range nodes {
		sc := StageCost{Op: n.Describe()}
		switch v := n.(type) {
		case ScanNode:
			nrows, ok := card.Rows(v.Table)
			cur, est = nrows, !ok
			left = []string{v.Table}
		case SemijoinNode:
			ns, _ := card.Rows(v.Table)
			sc.Comparators = cm.sortC(cur + ns)
			sc.Bytes = cm.footprint(cur + ns)
			est = true // survivors are data-dependent (public after the run)
		case FilterNode:
			sc.Bytes = cm.footprint(cur)
			est = true
		case JoinNode:
			nr, _ := card.Rows(v.Table)
			m, fed := card.JoinRows(left, v.Table)
			if !fed {
				m = estJoinRows(cur, nr)
				est = true
			}
			sc.Comparators, sc.RouteOps, sc.Bytes = cm.join(cur, nr, m)
			if opts.Shards > 1 {
				est = true
			}
			cur = m
			left = append(left, v.Table)
		case RekeyNode:
			// Plain per-row repackaging: no sorts, no stores.
		case RestoreNode:
			sc.Comparators = cm.sortC(cur) // the canonical (j,d1,d2) sort
		case JoinAggNode:
			nr, _ := card.Rows(v.Table)
			sc.Comparators = 2 * cm.sortC(cur+nr) // Augment-Tables only
			sc.Bytes = cm.footprint(cur + nr)
			cur = min(cur, nr) // joinable groups ≤ smaller side's keys
			est = true
		case GroupByNode:
			sc.Comparators = cm.sortC(cur)
			sc.Bytes = cm.footprint(cur)
			est = true // group count is data-dependent (public after)
		case DistinctNode:
			sc.Comparators = cm.sortC(cur)
			sc.Bytes = cm.footprint(cur)
			est = true
		case SortNode:
			if !v.Free {
				sc.Comparators = cm.sortC(cur)
				sc.Bytes = cm.footprint(cur)
			}
		case LimitNode:
			cur = min(cur, v.N)
		case ProjectNode:
			// Stringification only.
		}
		sc.Rows = cur
		sc.Estimated = est
		rep.Stages = append(rep.Stages, sc)
		rep.Comparators += sc.Comparators
		rep.RouteOps += sc.RouteOps
		rep.Bytes += sc.Bytes
	}
	rep.Rows = cur
	rep.Estimated = est
	return rep
}

// RenderPlanCost renders a modeled cost report as an aligned table —
// the cost half of EXPLAIN. Estimated row counts are prefixed with '~'.
func RenderPlanCost(rep *PlanCostReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %14s %12s %10s %12s\n", "stage", "comparators", "route-ops", "rows", "store-bytes")
	for _, s := range rep.Stages {
		rows := fmt.Sprintf("%d", s.Rows)
		if s.Estimated {
			rows = "~" + rows
		}
		fmt.Fprintf(&b, "%-44s %14d %12d %10s %12d\n", s.Op, s.Comparators, s.RouteOps, rows, s.Bytes)
	}
	exact := "exact"
	if rep.Estimated {
		exact = "estimated"
	}
	fmt.Fprintf(&b, "%-44s %14d %12d %10d %12d (%s)", "total (modeled)",
		rep.Comparators, rep.RouteOps, rep.Rows, rep.Bytes, exact)
	return b.String()
}
