package query

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"oblivjoin/internal/table"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex("SELECT key, data FROM t WHERE key >= 10")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	want := []string{"select", "key", ",", "data", "from", "t", "where", "key", ">=", "10", ""}
	if !reflect.DeepEqual(texts, want) {
		t.Fatalf("tokens = %v", texts)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := lex("= != < <= > >= ( ) . *")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 11 { // 10 + EOF
		t.Fatalf("got %d tokens", len(toks))
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"key ! 5", "key # 5"} {
		if _, err := lex(src); err == nil {
			t.Fatalf("lex(%q) did not fail", src)
		}
	}
}

func TestParseFullQuery(t *testing.T) {
	q, err := Parse("SELECT key, left.data, right.data FROM a JOIN b USING (key) WHERE key BETWEEN 3 AND 9 ORDER BY key LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if q.From != "a" || len(q.Joins) != 1 || q.Joins[0] != "b" || !q.OrderBy || q.Limit != 5 {
		t.Fatalf("parsed %+v", q)
	}
	if _, ok := q.Where.(Between); !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if len(q.Select) != 3 || q.Select[1].Col != ColLeftData {
		t.Fatalf("select = %+v", q.Select)
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse("SELECT key, COUNT(*), SUM(data), MIN(data), MAX(data) FROM t GROUP BY key")
	if err != nil {
		t.Fatal(err)
	}
	aggs := []AggKind{AggNone, AggCount, AggSum, AggMin, AggMax}
	for i, want := range aggs {
		if q.Select[i].Agg != want {
			t.Fatalf("item %d agg = %v, want %v", i, q.Select[i].Agg, want)
		}
	}
}

func TestParsePredicates(t *testing.T) {
	q, err := Parse("SELECT * FROM t WHERE (key = 1 OR key = 2) AND NOT key > 10 AND key IN (SELECT key FROM u)")
	if err != nil {
		t.Fatal(err)
	}
	cs := conjuncts(q.Where)
	if len(cs) != 3 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	if _, ok := cs[0].(Or); !ok {
		t.Fatalf("first conjunct %T", cs[0])
	}
	if _, ok := cs[1].(Not); !ok {
		t.Fatalf("second conjunct %T", cs[1])
	}
	if in, ok := cs[2].(In); !ok || in.Table != "u" {
		t.Fatalf("third conjunct %#v", cs[2])
	}
}

func TestParseRejects(t *testing.T) {
	bad := map[string]string{
		"SELECT FROM t":                     "select item",
		"SELECT key":                        "FROM",
		"SELECT key FROM":                   "table name",
		"SELECT key FROM select":            "keyword",
		"SELECT data FROM t WHERE data = 3": "key",
		"SELECT SUM(data) FROM t":           "GROUP BY",
		"SELECT data FROM t GROUP BY key":   "must be key or aggregates",
		"SELECT left.data FROM t":           "require a JOIN",
		"SELECT key FROM a JOIN b USING (key) GROUP BY key ORDER BY key LIMIT 1": "",
		"SELECT SUM(data) FROM a JOIN b USING (key) GROUP BY key":                "SUM(left.data)",
		"SELECT DISTINCT left.data FROM a JOIN b USING (key)":                    "DISTINCT over a JOIN",
		"SELECT key FROM t EXTRA":                                                "after end",
		"SELECT key FROM t WHERE key BETWEEN 5":                                  "AND",
		"SELECT key FROM t LIMIT x":                                              "number",
	}
	for src, frag := range bad {
		_, err := Parse(src)
		if frag == "" {
			if err != nil {
				t.Errorf("Parse(%q) unexpectedly failed: %v", src, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("Parse(%q) did not fail", src)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("Parse(%q) error %q missing %q", src, err, frag)
		}
	}
}

// ── engine tests ──────────────────────────────────────────────────────

func engineFixture(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine()
	users := []table.Row{
		{J: 1, D: table.MustData("ann")},
		{J: 2, D: table.MustData("ben")},
		{J: 3, D: table.MustData("cyd")},
		{J: 4, D: table.MustData("dot")},
	}
	orders := []table.Row{
		{J: 2, D: table.MustData("gpu")},
		{J: 2, D: table.MustData("ram")},
		{J: 3, D: table.MustData("ssd")},
		{J: 9, D: table.MustData("fan")},
	}
	sales := []table.Row{
		{J: 1, D: table.MustData("10")},
		{J: 1, D: table.MustData("20")},
		{J: 2, D: table.MustData("5")},
	}
	vips := []table.Row{
		{J: 2, D: table.MustData("v")},
		{J: 4, D: table.MustData("v")},
	}
	for name, rows := range map[string][]table.Row{
		"users": users, "orders": orders, "sales": sales, "vips": vips,
	} {
		if err := e.Register(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func mustQuery(t *testing.T, e *Engine, src string) *Result {
	t.Helper()
	res, err := e.Query(src)
	if err != nil {
		t.Fatalf("Query(%q): %v", src, err)
	}
	return res
}

func flat(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = strings.Join(r, "|")
	}
	return out
}

func TestQuerySelectStar(t *testing.T) {
	e := engineFixture(t)
	res := mustQuery(t, e, "SELECT * FROM users ORDER BY key")
	if !reflect.DeepEqual(res.Columns, []string{"key", "data"}) {
		t.Fatalf("columns = %v", res.Columns)
	}
	if len(res.Rows) != 4 || res.Rows[0][1] != "ann" {
		t.Fatalf("rows = %v", flat(res))
	}
}

func TestQueryFilter(t *testing.T) {
	e := engineFixture(t)
	res := mustQuery(t, e, "SELECT data FROM users WHERE key BETWEEN 2 AND 3")
	if !reflect.DeepEqual(flat(res), []string{"ben", "cyd"}) {
		t.Fatalf("rows = %v", flat(res))
	}
	res = mustQuery(t, e, "SELECT key FROM users WHERE NOT (key = 1 OR key >= 3)")
	if !reflect.DeepEqual(flat(res), []string{"2"}) {
		t.Fatalf("rows = %v", flat(res))
	}
}

func TestQueryJoin(t *testing.T) {
	e := engineFixture(t)
	res := mustQuery(t, e, "SELECT key, left.data, right.data FROM users JOIN orders USING (key)")
	want := []string{"2|ben|gpu", "2|ben|ram", "3|cyd|ssd"}
	if !reflect.DeepEqual(flat(res), want) {
		t.Fatalf("rows = %v", flat(res))
	}
}

func TestQueryJoinWithWhereOnLeft(t *testing.T) {
	e := engineFixture(t)
	res := mustQuery(t, e, "SELECT key, right.data FROM users JOIN orders USING (key) WHERE key = 2")
	if !reflect.DeepEqual(flat(res), []string{"2|gpu", "2|ram"}) {
		t.Fatalf("rows = %v", flat(res))
	}
}

func TestQueryGroupBy(t *testing.T) {
	e := engineFixture(t)
	res := mustQuery(t, e, "SELECT key, COUNT(*), SUM(data), MIN(data), MAX(data) FROM sales GROUP BY key")
	want := []string{"1|2|30|10|20", "2|1|5|5|5"}
	if !reflect.DeepEqual(flat(res), want) {
		t.Fatalf("rows = %v", flat(res))
	}
}

func TestQueryGroupByNonNumericFails(t *testing.T) {
	e := engineFixture(t)
	if _, err := e.Query("SELECT key, SUM(data) FROM users GROUP BY key"); err == nil {
		t.Fatal("expected numeric-payload error")
	}
	// COUNT alone works on non-numeric payloads.
	res := mustQuery(t, e, "SELECT key, COUNT(*) FROM users GROUP BY key")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", flat(res))
	}
}

func TestQueryJoinGroupByFastPath(t *testing.T) {
	e := engineFixture(t)
	res := mustQuery(t, e, "SELECT key, COUNT(*) FROM users JOIN orders USING (key) GROUP BY key")
	want := []string{"2|2", "3|1"}
	if !reflect.DeepEqual(flat(res), want) {
		t.Fatalf("rows = %v", flat(res))
	}
	plan, err := e.Explain("SELECT key, COUNT(*) FROM users JOIN orders USING (key) GROUP BY key")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "§7 fast path") {
		t.Fatalf("plan %q does not use the fast path", plan)
	}
	if strings.Contains(plan, "oblivious-join(") {
		t.Fatalf("plan %q materializes the join needlessly", plan)
	}
}

func TestQueryJoinGroupBySumFastPath(t *testing.T) {
	e := NewEngine()
	// weights(key, numeric) joined with prices(key, numeric).
	if err := e.Register("weights", []table.Row{
		{J: 1, D: table.MustData("10")}, {J: 1, D: table.MustData("20")},
		{J: 2, D: table.MustData("5")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("prices", []table.Row{
		{J: 1, D: table.MustData("3")},
		{J: 2, D: table.MustData("7")}, {J: 2, D: table.MustData("8")},
	}); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, e,
		"SELECT key, COUNT(*), SUM(left.data), SUM(right.data) FROM weights JOIN prices USING (key) GROUP BY key")
	// Group 1: pairs 2*1=2, SUM(left)=1*30=30, SUM(right)=2*3=6.
	// Group 2: pairs 1*2=2, SUM(left)=2*5=10, SUM(right)=1*15=15.
	want := []string{"1|2|30|6", "2|2|10|15"}
	if !reflect.DeepEqual(flat(res), want) {
		t.Fatalf("rows = %v", flat(res))
	}
	plan, err := e.Explain("SELECT key, SUM(left.data) FROM weights JOIN prices USING (key) GROUP BY key")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "join-group-sums") {
		t.Fatalf("plan = %q", plan)
	}
	// Non-numeric payloads produce a clean error.
	if err := e.Register("names", []table.Row{{J: 1, D: table.MustData("bob")}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query("SELECT key, SUM(left.data) FROM names JOIN prices USING (key) GROUP BY key"); err == nil {
		t.Fatal("expected numeric-payload error")
	}
}

func TestQuerySemijoinViaIn(t *testing.T) {
	e := engineFixture(t)
	res := mustQuery(t, e, "SELECT data FROM users WHERE key IN (SELECT key FROM vips)")
	if !reflect.DeepEqual(flat(res), []string{"ben", "dot"}) {
		t.Fatalf("rows = %v", flat(res))
	}
	plan, err := e.Explain("SELECT data FROM users WHERE key IN (SELECT key FROM vips)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "semijoin(vips)") {
		t.Fatalf("plan = %q", plan)
	}
}

func TestQueryInMustBeConjunct(t *testing.T) {
	e := engineFixture(t)
	_, err := e.Query("SELECT key FROM users WHERE key = 1 OR key IN (SELECT key FROM vips)")
	if err == nil || !strings.Contains(err.Error(), "top-level AND conjunct") {
		t.Fatalf("err = %v", err)
	}
}

func TestQueryDistinctAndLimit(t *testing.T) {
	e := engineFixture(t)
	if err := e.Register("dups", []table.Row{
		{J: 1, D: table.MustData("x")}, {J: 1, D: table.MustData("x")},
		{J: 2, D: table.MustData("y")},
	}); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, e, "SELECT DISTINCT key, data FROM dups")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", flat(res))
	}
	res = mustQuery(t, e, "SELECT key FROM users ORDER BY key LIMIT 2")
	if !reflect.DeepEqual(flat(res), []string{"1", "2"}) {
		t.Fatalf("rows = %v", flat(res))
	}
}

func TestQueryErrors(t *testing.T) {
	e := engineFixture(t)
	for _, src := range []string{
		"SELECT key FROM ghosts",
		"SELECT key FROM users JOIN ghosts USING (key)",
		"SELECT key FROM users WHERE key IN (SELECT key FROM ghosts)",
	} {
		if _, err := e.Query(src); err == nil || !strings.Contains(err.Error(), "unknown table") {
			t.Errorf("Query(%q): err = %v", src, err)
		}
	}
}

func TestRegisterValidation(t *testing.T) {
	e := NewEngine()
	if err := e.Register("", nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := e.Register("bad-name", nil); err == nil {
		t.Fatal("hyphenated name accepted")
	}
	if err := e.Register("Ok_1", nil); err != nil {
		// Upper case is folded, not rejected.
		t.Fatalf("register: %v", err)
	}
	if _, ok := e.tables["ok_1"]; !ok {
		t.Fatal("name not folded to lower case")
	}
}

func TestExplainPlans(t *testing.T) {
	e := engineFixture(t)
	plan, err := e.Explain("SELECT key FROM users WHERE key < 3 AND key IN (SELECT key FROM vips) ORDER BY key LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	for _, stage := range []string{"scan(users)", "semijoin(vips)", "filter[branch-free]", "sort(key)", "limit(1)", "project"} {
		if !strings.Contains(plan, stage) {
			t.Fatalf("plan %q missing stage %q", plan, stage)
		}
	}
}

func TestCompileCoversAllOps(t *testing.T) {
	for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
		pred := compile(Cmp{Op: op, Lit: 5})
		for _, k := range []uint64{4, 5, 6} {
			got := pred(table.Row{J: k})
			var want uint64
			switch op {
			case "=":
				want = b2u(k == 5)
			case "!=":
				want = b2u(k != 5)
			case "<":
				want = b2u(k < 5)
			case "<=":
				want = b2u(k <= 5)
			case ">":
				want = b2u(k > 5)
			case ">=":
				want = b2u(k >= 5)
			}
			if got != want {
				t.Fatalf("op %s key %d: got %d want %d", op, k, got, want)
			}
		}
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestQueryLargeJoinAgainstReference(t *testing.T) {
	e := NewEngine()
	var a, b []table.Row
	for i := 0; i < 60; i++ {
		a = append(a, table.Row{J: uint64(i % 10), D: table.MustData(fmt.Sprintf("a%02d", i))})
	}
	for i := 0; i < 40; i++ {
		b = append(b, table.Row{J: uint64(i % 13), D: table.MustData(fmt.Sprintf("b%02d", i))})
	}
	if err := e.Register("a", a); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("b", b); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, e, "SELECT key, left.data, right.data FROM a JOIN b USING (key)")
	want := 0
	for _, ra := range a {
		for _, rb := range b {
			if ra.J == rb.J {
				want++
			}
		}
	}
	if len(res.Rows) != want {
		t.Fatalf("join rows = %d, want %d", len(res.Rows), want)
	}
	// Fast-path count agrees with materialized join size.
	res2 := mustQuery(t, e, "SELECT key, COUNT(*) FROM a JOIN b USING (key) GROUP BY key")
	total := 0
	for _, r := range res2.Rows {
		var c int
		fmt.Sscanf(r[1], "%d", &c)
		total += c
	}
	if total != want {
		t.Fatalf("fast-path total = %d, want %d", total, want)
	}
}
