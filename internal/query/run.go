package query

import (
	"context"
	"errors"
	"fmt"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/query/exec"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

// ErrInternal marks failures that are the engine's fault, never the
// query's — broken pipeline invariants, missing execution state.
// Callers (e.g. the HTTP layer) test with errors.Is to report them as
// server faults.
var ErrInternal = errors.New("internal engine error")

// ErrCanceled is the typed error of a query whose context was
// cancelled mid-run. The returned error wraps both this sentinel and
// context.Canceled, so errors.Is matches either.
var ErrCanceled = errors.New("query canceled")

// ErrDeadline is the typed error of a query whose context deadline
// expired mid-run (a per-query timeout or a caller-supplied deadline).
// The returned error wraps both this sentinel and
// context.DeadlineExceeded.
var ErrDeadline = errors.New("query deadline exceeded")

// ctxErr maps a context error onto the engine's typed sentinels,
// wrapping both so callers can match whichever vocabulary they speak.
func ctxErr(cause error) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("query: %w: %w", ErrDeadline, cause)
	}
	return fmt.Errorf("query: %w: %w", ErrCanceled, cause)
}

// Run executes a lowered physical pipeline against tables under opts
// and returns the projected result plus, when opts collects, the
// PlanStats report (nil otherwise).
//
// Each call assembles a private execution context — a fresh memory
// space, trace sink and core.Config — so the same pipeline and the
// same table snapshot can Run from any number of goroutines at once;
// only cipher is shared, and crypto.Cipher is safe for concurrent use.
// cipher must be non-nil when opts.Encrypted is set.
//
// Cancelling ctx (or letting its deadline expire) stops the run within
// one execution round of the innermost oblivious pass — the sorting
// networks, routing waves and blocked scans all probe the context at
// their round barriers — and returns an error wrapping ErrCanceled or
// ErrDeadline. An aborted run abandons only its private scratch
// stores: the table snapshot, the shared plan and the cipher are
// untouched, so concurrent runs of the same pipeline are unaffected
// and their trace hashes stay bit-identical. A nil ctx means
// context.Background().
func Run(ctx context.Context, opts Options, cipher *crypto.Cipher, tables map[string][]table.Row, pipeline []exec.Operator) (res *Result, ps *PlanStats, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cancellable := ctx.Done() != nil
	if cancellable {
		// Refuse cheaply before assembling anything.
		if cause := ctx.Err(); cause != nil {
			return nil, nil, ctxErr(cause)
		}
		// The oblivious operator stack has no error returns on its hot
		// paths; cancellation surfaces as a core.Abort panic from a
		// round barrier, recovered here — exactly once, on the
		// goroutine that called Run.
		defer func() {
			if r := recover(); r != nil {
				ab, ok := r.(core.Abort)
				if !ok {
					panic(r)
				}
				res, ps = nil, nil
				err = ctxErr(ab.Err)
			}
		}()
	}

	var (
		rec     trace.Recorder
		hasher  *trace.Hasher
		counter *trace.Counter
	)
	if opts.TraceHash {
		hasher = trace.NewHasher()
		rec = hasher
	} else if opts.CollectStats {
		counter = &trace.Counter{}
		rec = counter
	}
	sp := memory.NewSpace(rec, nil)

	var alloc table.Alloc
	switch {
	case opts.Encrypted && cipher == nil:
		return nil, nil, fmt.Errorf("query: encrypted execution without a cipher: %w", ErrInternal)
	case opts.Encrypted && opts.SealedBlock == 1:
		alloc = table.EncryptedAlloc(sp, cipher)
	case opts.Encrypted:
		alloc = table.BlockEncryptedAlloc(sp, cipher, opts.SealedBlock)
	default:
		alloc = table.PlainAlloc(sp)
	}

	collect := opts.CollectStats || opts.TraceHash
	var coreStats *core.Stats
	if collect {
		coreStats = &core.Stats{}
	}
	cfg := &core.Config{
		Alloc:         alloc,
		Workers:       opts.Workers,
		Probabilistic: opts.Probabilistic,
		Seed:          opts.Seed,
		Stats:         coreStats,
		Ctx:           ctx,
	}
	if opts.MergeExchange {
		cfg.Net = core.MergeExchange
	}
	ectx := &exec.Context{Cfg: cfg, Tables: tables}

	if collect {
		ps = &PlanStats{}
	}
	var rel exec.Relation
	for _, op := range pipeline {
		if cancellable {
			if cause := ctx.Err(); cause != nil {
				return nil, nil, ctxErr(cause)
			}
		}
		start := time.Now()
		rel, err = op.Run(ectx, rel)
		if err != nil {
			return nil, nil, err
		}
		if ps != nil {
			wall := time.Since(start)
			ps.Operators = append(ps.Operators, OperatorStat{Op: op.Name(), Wall: wall, Rows: rel.Size()})
			ps.Total += wall
		}
	}
	if rel.Kind != exec.KindResult {
		return nil, nil, fmt.Errorf("query: pipeline ended in relation kind %d: %w", rel.Kind, ErrInternal)
	}
	if ps != nil {
		ps.Comparators = coreStats.Comparators()
		ps.RouteOps = coreStats.RouteOps
		if hasher != nil {
			ps.TraceEvents = hasher.Count()
			ps.TraceHash = hasher.Hex()
		} else if counter != nil {
			ps.TraceEvents = counter.Total()
		}
	}
	return rel.Result, ps, nil
}
