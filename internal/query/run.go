package query

import (
	"context"
	"errors"
	"fmt"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/query/exec"
	"oblivjoin/internal/shard"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

// ErrInternal marks failures that are the engine's fault, never the
// query's — broken pipeline invariants, missing execution state.
// Callers (e.g. the HTTP layer) test with errors.Is to report them as
// server faults.
var ErrInternal = errors.New("internal engine error")

// ErrCanceled is the typed error of a query whose context was
// cancelled mid-run. The returned error wraps both this sentinel and
// context.Canceled, so errors.Is matches either.
var ErrCanceled = errors.New("query canceled")

// ErrDeadline is the typed error of a query whose context deadline
// expired mid-run (a per-query timeout or a caller-supplied deadline).
// The returned error wraps both this sentinel and
// context.DeadlineExceeded.
var ErrDeadline = errors.New("query deadline exceeded")

// ctxErr maps a context error onto the engine's typed sentinels,
// wrapping both so callers can match whichever vocabulary they speak.
func ctxErr(cause error) error {
	if errors.Is(cause, context.DeadlineExceeded) {
		return fmt.Errorf("query: %w: %w", ErrDeadline, cause)
	}
	return fmt.Errorf("query: %w: %w", ErrCanceled, cause)
}

// Run executes a lowered physical pipeline against tables under opts
// and returns the projected result plus, when opts collects, the
// PlanStats report (nil otherwise).
//
// By default the pipeline executes in streaming mode: row-shaped
// relations flow between operators as block-granular batches, barrier
// operators fill their stores straight from the upstream batches, and
// each intermediate store is released the moment it is drained — so
// peak memory is bounded by the widest adjacent pair of stages, not
// the sum of every intermediate. Options.Materialized restores the
// stage-at-a-time executor. Both modes produce identical results,
// identical comparator counts and bit-identical canonical trace
// hashes: the streaming fills defer their write events behind the
// upstream reads they interleave with (table.Builder), so the
// recorded access pattern is a function of the pipeline and the
// public sizes alone, never of the execution strategy.
//
// Each call assembles a private execution context — a fresh memory
// space, trace sink, allocation gauge and core.Config — so the same
// pipeline and the same table snapshot can Run from any number of
// goroutines at once; only cipher is shared, and crypto.Cipher is safe
// for concurrent use. cipher must be non-nil when opts.Encrypted is
// set.
//
// Cancelling ctx (or letting its deadline expire) stops the run within
// one execution round of the innermost oblivious pass — the sorting
// networks, routing waves, blocked scans and the batch drivers all
// probe the context — and returns an error wrapping ErrCanceled or
// ErrDeadline. An aborted run abandons only its private scratch
// stores (spill files included: the run's gauge deletes them on the
// way out). A nil ctx means context.Background().
func Run(ctx context.Context, opts Options, cipher *crypto.Cipher, tables map[string][]table.Row, pipeline []exec.Operator) (*Result, *PlanStats, error) {
	return run(ctx, opts, cipher, tables, pipeline, nil)
}

// RunStream executes pipeline in streaming mode and delivers the
// result incrementally to sink — Columns once, then the output rows in
// order, batch by batch — so the final result is never materialized
// and the run's peak memory is bounded by its widest stage. Everything
// else matches Run: same options, same concurrency contract, same
// cancellation behavior, same canonical trace.
func RunStream(ctx context.Context, opts Options, cipher *crypto.Cipher, tables map[string][]table.Row, pipeline []exec.Operator, sink exec.RowSink) (*PlanStats, error) {
	if sink == nil {
		return nil, fmt.Errorf("query: RunStream needs a sink: %w", ErrInternal)
	}
	opts.Materialized = false
	_, ps, err := run(ctx, opts, cipher, tables, pipeline, sink)
	return ps, err
}

// blockUnit resolves the sealed-block width of the run's store mode;
// plain runs keep the default width as their spill and batch unit.
func blockUnit(opts Options) int {
	if opts.Encrypted && opts.SealedBlock >= 1 {
		return opts.SealedBlock
	}
	return table.DefaultSealedBlock
}

// batchWidth resolves the streaming hand-off granularity: StreamBatch
// (default exec.DefaultBatch) rounded up to a multiple of the sealed
// block width, so a batch boundary never splits a ciphertext block.
func batchWidth(opts Options) int {
	b := opts.StreamBatch
	if b <= 0 {
		b = exec.DefaultBatch
	}
	u := blockUnit(opts)
	if r := b % u; r != 0 {
		b += u - r
	}
	return b
}

// allocStack assembles one execution context's allocator chain — store
// mode, gauge tracking, optional sealed spilling under budget — over a
// fresh memory space recording into rec. The run's own context and the
// sharded scheduler's per-unit contexts build through the same stack,
// which is what makes a per-shard trace bit-identical to a standalone
// run of the same sizes in the same mode. sc may be nil when budget
// is 0.
func allocStack(opts Options, cipher, sc *crypto.Cipher, rec trace.Recorder, budget int64) (table.Alloc, *table.Gauge) {
	sp := memory.NewSpace(rec, nil)
	var alloc table.Alloc
	switch {
	case opts.Encrypted && opts.SealedBlock == 1:
		alloc = table.EncryptedAlloc(sp, cipher)
	case opts.Encrypted:
		alloc = table.BlockEncryptedAlloc(sp, cipher, opts.SealedBlock)
	default:
		alloc = table.PlainAlloc(sp)
	}
	g := &table.Gauge{}
	alloc = table.TrackedAlloc(alloc, g)
	if budget > 0 {
		spiller := table.NewSpillerFS(sp, sc, opts.SpillFS, opts.SpillDir, blockUnit(opts), g)
		alloc = table.BudgetAlloc(alloc, spiller, g, budget, modeFootprint(opts))
	}
	return alloc, g
}

// unitFactory returns the sharded scheduler's Unit constructor: each
// unit mirrors the run's own execution context — same store mode, same
// network, same spill policy over a budget share — with private trace
// sink, memory space and gauge, so units execute concurrently with no
// shared mutable instrumentation and their digests fold back into the
// run at deterministic barriers.
func unitFactory(ctx context.Context, opts Options, cipher, sc *crypto.Cipher, net core.SortNet, collect bool) func() *shard.Unit {
	budget := opts.MemBudget
	if budget > 0 {
		// Units run concurrently: each gets an equal share of the run's
		// budget so the combined live total stays near the configured
		// bound.
		budget /= int64(opts.Shards)
		if budget < 1 {
			budget = 1
		}
	}
	return func() *shard.Unit {
		var (
			urec trace.Recorder
			uh   *trace.Hasher
			uc   *trace.Counter
		)
		if opts.TraceHash {
			uh = trace.NewHasher()
			urec = uh
		} else if opts.CollectStats {
			uc = &trace.Counter{}
			urec = uc
		}
		alloc, g := allocStack(opts, cipher, sc, urec, budget)
		var ust *core.Stats
		if collect {
			ust = &core.Stats{}
		}
		return &shard.Unit{
			Cfg: &core.Config{
				Alloc:         alloc,
				Net:           net,
				Probabilistic: opts.Probabilistic,
				Seed:          opts.Seed,
				Stats:         ust,
				Ctx:           ctx,
				Mem:           g,
				Shards:        1,
			},
			Hasher:  uh,
			Counter: uc,
			Gauge:   g,
		}
	}
}

// modeFootprint returns the in-memory footprint model of the run's
// store mode, used to predict whether an allocation fits the budget.
func modeFootprint(opts Options) func(n int) int64 {
	switch {
	case opts.Encrypted && opts.SealedBlock == 1:
		return table.EncryptedFootprint
	case opts.Encrypted:
		bw := blockUnit(opts)
		return func(n int) int64 { return table.BlockFootprint(n, bw) }
	default:
		return table.PlainFootprint
	}
}

// footprint is the gauge weight of an operator's materialized output.
// Scan outputs alias the catalog snapshot, which the run does not own.
func footprint(op exec.Operator, rel exec.Relation) int64 {
	if _, ok := op.(exec.Scan); ok {
		return 0
	}
	return exec.RelationFootprint(rel)
}

func run(ctx context.Context, opts Options, cipher *crypto.Cipher, tables map[string][]table.Row, pipeline []exec.Operator, sink exec.RowSink) (res *Result, ps *PlanStats, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cancellable := ctx.Done() != nil
	if cancellable {
		// Refuse cheaply before assembling anything.
		if cause := ctx.Err(); cause != nil {
			return nil, nil, ctxErr(cause)
		}
	}
	// The oblivious operator stack has no error returns on its hot
	// paths; two kinds of failure surface as panics, both recovered
	// here — exactly once, on the goroutine that called run:
	//
	//   - cancellation, a core.Abort panic from a round barrier, mapped
	//     to ErrCanceled/ErrDeadline;
	//   - storage faults, a *table.Fault panic from a sealed store or
	//     spill file (auth failure or disk IO error), mapped to an
	//     error wrapping table.ErrSealedAuth or table.ErrSpillIO.
	//
	// Either way the failure kills this query alone: the deferred
	// gauge.ReleaseAll (installed below, so it runs first) has already
	// reclaimed the run's scratch, and concurrent runs share nothing
	// mutable with this one.
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if ab, ok := r.(core.Abort); ok {
			res, ps = nil, nil
			err = ctxErr(ab.Err)
			return
		}
		if ferr, ok := table.AsFault(r); ok {
			res, ps = nil, nil
			err = fmt.Errorf("query: storage fault: %w", ferr)
			return
		}
		panic(r)
	}()

	var (
		rec     trace.Recorder
		hasher  *trace.Hasher
		counter *trace.Counter
	)
	if opts.TraceHash {
		hasher = trace.NewHasher()
		rec = hasher
	} else if opts.CollectStats {
		counter = &trace.Counter{}
		rec = counter
	}
	if opts.Encrypted && cipher == nil {
		return nil, nil, fmt.Errorf("query: encrypted execution without a cipher: %w", ErrInternal)
	}
	var sc *crypto.Cipher
	if opts.MemBudget > 0 {
		sc = cipher
		if sc == nil {
			// Plain-mode spill still seals its on-disk blocks: a fresh
			// per-run key, never persisted, is all the file needs.
			c, _, cerr := crypto.NewRandom()
			if cerr != nil {
				return nil, nil, fmt.Errorf("query: spill cipher: %w", cerr)
			}
			sc = c
		}
	}

	// Every store the run allocates is tracked in the gauge; ReleaseAll
	// frees whatever is still live on the way out — including spill
	// files abandoned by an error or a cancellation panic.
	alloc, gauge := allocStack(opts, cipher, sc, rec, opts.MemBudget)
	defer gauge.ReleaseAll()

	collect := opts.CollectStats || opts.TraceHash
	var coreStats *core.Stats
	if collect {
		coreStats = &core.Stats{}
	}
	cfg := &core.Config{
		Alloc:         alloc,
		Workers:       opts.Workers,
		Probabilistic: opts.Probabilistic,
		Seed:          opts.Seed,
		Stats:         coreStats,
		Ctx:           ctx,
		Mem:           gauge,
		Shards:        opts.Shards,
	}
	if opts.MergeExchange {
		cfg.Net = core.MergeExchange
	}
	ectx := &exec.Context{Cfg: cfg, Tables: tables, Batch: batchWidth(opts)}
	if opts.Shards > 1 {
		ectx.Shard = &shard.Group{
			Parent:  cfg,
			Shards:  opts.Shards,
			Hasher:  hasher,
			Counter: counter,
			Gauge:   gauge,
			New:     unitFactory(ctx, opts, cipher, sc, cfg.Net, collect),
		}
	}

	if collect {
		ps = &PlanStats{}
	}
	record := func(op exec.Operator, start time.Time, rows int) {
		if ps == nil {
			return
		}
		wall := time.Since(start)
		ps.Operators = append(ps.Operators, OperatorStat{Op: op.Name(), Wall: wall, Rows: rows})
		ps.Total += wall
	}

	var rel exec.Relation
	if opts.Materialized && sink == nil {
		// Stage-at-a-time executor: every hand-off is a whole relation,
		// charged to the gauge and never discharged mid-run — the
		// legacy peak is the sum of the intermediates.
		for _, op := range pipeline {
			if cancellable {
				if cause := ctx.Err(); cause != nil {
					return nil, nil, ctxErr(cause)
				}
			}
			start := time.Now()
			rel, err = op.Run(ectx, rel)
			if err != nil {
				return nil, nil, err
			}
			gauge.Charge(footprint(op, rel))
			record(op, start, rel.Size())
		}
	} else {
		d := &streamDriver{ectx: ectx, g: gauge, sink: sink}
		for _, op := range pipeline {
			if cancellable {
				if cause := ctx.Err(); cause != nil {
					return nil, nil, ctxErr(cause)
				}
			}
			start := time.Now()
			if err = d.step(op); err != nil {
				return nil, nil, err
			}
			record(op, start, d.outRows())
		}
		rel = d.rel
	}
	if rel.Kind != exec.KindResult {
		return nil, nil, fmt.Errorf("query: pipeline ended in relation kind %d: %w", rel.Kind, ErrInternal)
	}
	if ps != nil {
		ps.Comparators = coreStats.Comparators()
		ps.RouteOps = coreStats.RouteOps
		ps.PeakBytes = gauge.Peak()
		ps.TotalAllocBytes = gauge.Total()
		ps.SpillCount = gauge.Spills()
		ps.SpillBytes = gauge.SpillBytes()
		if hasher != nil {
			ps.TraceEvents = hasher.Count()
			ps.TraceHash = hasher.Hex()
		} else if counter != nil {
			ps.TraceEvents = counter.Total()
		}
	}
	return rel.Result, ps, nil
}

// streamDriver walks a pipeline in streaming mode: row-shaped data
// flows between operators as a RowSource of block-granular batches;
// everything else (keyed join output, aggregates, the result) is a
// materialized Relation charged to the run's gauge and discharged the
// moment the next stage has consumed it.
type streamDriver struct {
	ectx      *exec.Context
	g         *table.Gauge
	sink      exec.RowSink
	src       exec.RowSource
	rel       exec.Relation
	relCharge int64
}

// outRows is the current stage's (public) output cardinality.
func (d *streamDriver) outRows() int {
	if d.src != nil {
		return d.src.Len()
	}
	return d.rel.Size()
}

func (d *streamDriver) setSource(s exec.RowSource) {
	d.src, d.rel, d.relCharge = s, exec.Relation{}, 0
}

func (d *streamDriver) setRel(rel exec.Relation, charge int64) {
	d.g.Charge(charge)
	d.g.Discharge(d.relCharge)
	d.src, d.rel, d.relCharge = nil, rel, charge
}

func (d *streamDriver) step(op exec.Operator) error {
	switch o := op.(type) {
	case exec.Scan:
		rel, err := o.Run(d.ectx, exec.Relation{})
		if err != nil {
			return err
		}
		// Scan rows alias the catalog snapshot, which the run does not
		// own: stream them uncharged.
		d.setSource(exec.NewSliceSource(d.ectx, rel.Rows, nil))
		return nil
	case exec.Rekey:
		if d.rel.Kind == exec.KindPairs {
			// The pairs stay live while downstream drains; their charge
			// drops when the source closes.
			g, charge := d.g, d.relCharge
			pairs := d.rel.Pairs
			d.rel, d.relCharge = exec.Relation{}, 0
			d.setSource(exec.NewRekeySource(d.ectx, pairs, o.First, func() { g.Discharge(charge) }))
			return nil
		}
		return d.runLegacy(op)
	case exec.Join:
		if d.src == nil {
			return d.runLegacy(op)
		}
		src := d.src
		d.src = nil
		rel, err := o.RunFeed(d.ectx, src)
		if err != nil {
			return err
		}
		d.setRel(rel, exec.RelationFootprint(rel))
		return nil
	case exec.Project:
		if d.src == nil {
			return d.runLegacy(op)
		}
		src := d.src
		d.src = nil
		result, err := o.RunStream(d.ectx, src, d.sink)
		if err != nil {
			return err
		}
		d.setRel(exec.Relation{Kind: exec.KindResult, Result: result}, exec.ResultFootprint(result))
		return nil
	}
	if st, ok := op.(exec.Streamer); ok && d.src != nil {
		out, err := st.RunStream(d.ectx, d.src)
		d.src = nil
		if err != nil {
			return err
		}
		d.setSource(out)
		return nil
	}
	return d.runLegacy(op)
}

// runLegacy bridges to an operator's materialized Run: a live stream
// is drained into a slice first, and the input relation's charge drops
// once the operator has produced its output.
func (d *streamDriver) runLegacy(op exec.Operator) error {
	if d.src != nil {
		src := d.src
		d.src = nil
		rows, err := exec.Materialize(d.ectx, src)
		if err != nil {
			return err
		}
		rel := exec.Relation{Kind: exec.KindRows, Rows: rows}
		d.setRel(rel, exec.RelationFootprint(rel))
	}
	out, err := op.Run(d.ectx, d.rel)
	if err != nil {
		return err
	}
	d.setRel(out, footprint(op, out))
	return nil
}
