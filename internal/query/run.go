package query

import (
	"errors"
	"fmt"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/query/exec"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

// ErrInternal marks failures that are the engine's fault, never the
// query's — broken pipeline invariants, missing execution state.
// Callers (e.g. the HTTP layer) test with errors.Is to report them as
// server faults.
var ErrInternal = errors.New("internal engine error")

// Run executes a lowered physical pipeline against tables under opts
// and returns the projected result plus, when opts collects, the
// PlanStats report (nil otherwise).
//
// Each call assembles a private execution context — a fresh memory
// space, trace sink and core.Config — so the same pipeline and the
// same table snapshot can Run from any number of goroutines at once;
// only cipher is shared, and crypto.Cipher is safe for concurrent use.
// cipher must be non-nil when opts.Encrypted is set.
func Run(opts Options, cipher *crypto.Cipher, tables map[string][]table.Row, pipeline []exec.Operator) (*Result, *PlanStats, error) {
	var (
		rec     trace.Recorder
		hasher  *trace.Hasher
		counter *trace.Counter
	)
	if opts.TraceHash {
		hasher = trace.NewHasher()
		rec = hasher
	} else if opts.CollectStats {
		counter = &trace.Counter{}
		rec = counter
	}
	sp := memory.NewSpace(rec, nil)

	var alloc table.Alloc
	switch {
	case opts.Encrypted && cipher == nil:
		return nil, nil, fmt.Errorf("query: encrypted execution without a cipher: %w", ErrInternal)
	case opts.Encrypted && opts.SealedBlock == 1:
		alloc = table.EncryptedAlloc(sp, cipher)
	case opts.Encrypted:
		alloc = table.BlockEncryptedAlloc(sp, cipher, opts.SealedBlock)
	default:
		alloc = table.PlainAlloc(sp)
	}

	collect := opts.CollectStats || opts.TraceHash
	var coreStats *core.Stats
	if collect {
		coreStats = &core.Stats{}
	}
	cfg := &core.Config{
		Alloc:         alloc,
		Workers:       opts.Workers,
		Probabilistic: opts.Probabilistic,
		Seed:          opts.Seed,
		Stats:         coreStats,
	}
	if opts.MergeExchange {
		cfg.Net = core.MergeExchange
	}
	ctx := &exec.Context{Cfg: cfg, Tables: tables}

	var ps *PlanStats
	if collect {
		ps = &PlanStats{}
	}
	var rel exec.Relation
	var err error
	for _, op := range pipeline {
		start := time.Now()
		rel, err = op.Run(ctx, rel)
		if err != nil {
			return nil, nil, err
		}
		if ps != nil {
			wall := time.Since(start)
			ps.Operators = append(ps.Operators, OperatorStat{Op: op.Name(), Wall: wall, Rows: rel.Size()})
			ps.Total += wall
		}
	}
	if rel.Kind != exec.KindResult {
		return nil, nil, fmt.Errorf("query: pipeline ended in relation kind %d: %w", rel.Kind, ErrInternal)
	}
	if ps != nil {
		ps.Comparators = coreStats.Comparators()
		ps.RouteOps = coreStats.RouteOps
		if hasher != nil {
			ps.TraceEvents = hasher.Count()
			ps.TraceHash = hasher.Hex()
		} else if counter != nil {
			ps.TraceEvents = counter.Total()
		}
	}
	return rel.Result, ps, nil
}
