package query

// Query is the parsed form of a SELECT statement.
type Query struct {
	Distinct bool
	Select   []SelectItem
	From     string
	Joins    []string // chained JOIN table names, in order; empty when absent
	AsOf     int64    // AS OF catalog version; -1 when absent
	Where    Expr     // nil when absent
	GroupBy  bool     // GROUP BY key
	OrderBy  bool     // ORDER BY key
	Limit    int      // -1 when absent
}

// Joined reports whether the query contains at least one JOIN.
func (q *Query) Joined() bool { return len(q.Joins) > 0 }

// ColKind names a selectable column.
type ColKind int

const (
	// ColKey is the join/group key.
	ColKey ColKind = iota
	// ColData is the data payload (the FROM table's payload when no
	// join is present).
	ColData
	// ColLeftData and ColRightData address the two sides of a join.
	ColLeftData
	ColRightData
	// ColStar expands to all available columns.
	ColStar
)

// AggKind names an aggregate function.
type AggKind int

const (
	// AggNone marks a plain column item.
	AggNone AggKind = iota
	AggCount
	AggSum
	AggMin
	AggMax
)

// SelectItem is one element of the select list: a column or an
// aggregate over the data column.
type SelectItem struct {
	Col ColKind
	Agg AggKind
}

// Expr is a WHERE predicate over the key column.
type Expr interface{ isExpr() }

// Cmp compares the key against a literal: key <op> N.
type Cmp struct {
	Op  string // = != < <= > >=
	Lit uint64
}

// Between is key BETWEEN Lo AND Hi (inclusive).
type Between struct {
	Lo, Hi uint64
}

// In is key IN (SELECT key FROM Table) — planned as a semijoin.
type In struct {
	Table string
}

// Not negates a predicate.
type Not struct{ E Expr }

// And and Or combine predicates.
type And struct{ L, R Expr }

// Or is the disjunction of two predicates.
type Or struct{ L, R Expr }

func (Cmp) isExpr()     {}
func (Between) isExpr() {}
func (In) isExpr()      {}
func (Not) isExpr()     {}
func (And) isExpr()     {}
func (Or) isExpr()      {}
