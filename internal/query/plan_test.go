package query

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"oblivjoin/internal/table"
)

// queryCorpus covers every shape the grammar supports; the equivalence
// and obliviousness properties below quantify over it.
var queryCorpus = []string{
	"SELECT * FROM a",
	"SELECT key, data FROM a WHERE key BETWEEN 2 AND 5",
	"SELECT key FROM a WHERE NOT (key = 1 OR key >= 6) ORDER BY key",
	"SELECT DISTINCT * FROM a",
	"SELECT * FROM a ORDER BY key LIMIT 3",
	"SELECT data FROM a WHERE key IN (SELECT key FROM b) AND key < 7",
	"SELECT key, COUNT(*), SUM(data), MIN(data), MAX(data) FROM nums GROUP BY key",
	"SELECT key, COUNT(*) FROM nums GROUP BY key LIMIT 2",
	"SELECT key, left.data, right.data FROM a JOIN b USING (key)",
	"SELECT key, right.data FROM a JOIN b USING (key) WHERE key > 1 ORDER BY key",
	"SELECT * FROM a JOIN b USING (key) LIMIT 4",
	"SELECT key, left.data, right.data FROM a JOIN b USING (key) JOIN c USING (key)",
	"SELECT key, COUNT(*) FROM a JOIN b USING (key) GROUP BY key",
	"SELECT key, COUNT(*) FROM a JOIN b USING (key) JOIN c USING (key) GROUP BY key",
	"SELECT key, SUM(left.data), SUM(right.data), COUNT(*) FROM nums JOIN nums2 USING (key) GROUP BY key",
}

// corpusCatalog builds the five tables the corpus references. payload
// tags the textual payloads so two catalogs can share every size and
// key while differing in contents.
func corpusCatalog(payload string) map[string][]table.Row {
	mk := func(keys []uint64, prefix string) []table.Row {
		rows := make([]table.Row, len(keys))
		for i, k := range keys {
			rows[i] = table.Row{J: k, D: table.MustData(fmt.Sprintf("%s%s%d", prefix, payload, i))}
		}
		return rows
	}
	mkNum := func(keys []uint64, vals []uint64) []table.Row {
		rows := make([]table.Row, len(keys))
		for i, k := range keys {
			rows[i] = table.Row{J: k, D: table.MustData(fmt.Sprint(vals[i]))}
		}
		return rows
	}
	return map[string][]table.Row{
		"a":     mk([]uint64{1, 2, 2, 3, 5, 6, 7}, "a"),
		"b":     mk([]uint64{2, 2, 3, 5, 9}, "b"),
		"c":     mk([]uint64{2, 3, 3, 8}, "c"),
		"nums":  mkNum([]uint64{1, 1, 2, 2, 2, 4}, []uint64{10, 20, 5, 7, 9, 100}),
		"nums2": mkNum([]uint64{1, 2, 2, 4, 4}, []uint64{3, 4, 5, 6, 7}),
	}
}

func corpusEngine(t *testing.T, o Options, payload string) *Engine {
	t.Helper()
	e := NewEngineWith(o)
	for name, rows := range corpusCatalog(payload) {
		if err := e.Register(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// TestQueryEquivalenceAcrossConfigs is the SQL-layer determinism
// property: every corpus query produces identical rows, columns and
// trace hashes when run sequentially, with Workers=4, with an
// encrypted store, and with both at once.
func TestQueryEquivalenceAcrossConfigs(t *testing.T) {
	configs := []struct {
		name string
		o    Options
	}{
		{"seq-plain", Options{TraceHash: true}},
		{"workers4", Options{TraceHash: true, Workers: 4}},
		{"encrypted", Options{TraceHash: true, Encrypted: true}},
		{"workers4-encrypted", Options{TraceHash: true, Workers: 4, Encrypted: true}},
	}
	for _, src := range queryCorpus {
		var baseRes *Result
		var baseHash string
		for i, c := range configs {
			e := corpusEngine(t, c.o, "x")
			res, err := e.Query(src)
			if err != nil {
				t.Fatalf("%s: Query(%q): %v", c.name, src, err)
			}
			st := e.LastStats()
			if st == nil || st.TraceHash == "" {
				t.Fatalf("%s: Query(%q): no trace hash collected", c.name, src)
			}
			if i == 0 {
				baseRes, baseHash = res, st.TraceHash
				continue
			}
			if !reflect.DeepEqual(res, baseRes) {
				t.Fatalf("%s: Query(%q) rows diverge from sequential plaintext:\n%v\nvs\n%v",
					c.name, src, res.Rows, baseRes.Rows)
			}
			if st.TraceHash != baseHash {
				t.Fatalf("%s: Query(%q) trace hash diverges from sequential plaintext", c.name, src)
			}
		}
	}
}

// TestExplainAndTraceDependOnlyOnSizes is obliviousness at the SQL
// layer: two catalogs with identical table sizes and key structure but
// different payload contents must produce identical plans and identical
// trace hashes for every corpus query.
func TestExplainAndTraceDependOnlyOnSizes(t *testing.T) {
	// The two catalogs differ only in textual payload contents; numeric
	// tables keep identical values (value aggregates reveal their
	// outputs by design, not their access pattern).
	for _, src := range queryCorpus {
		e1 := corpusEngine(t, Options{TraceHash: true}, "x")
		e2 := corpusEngine(t, Options{TraceHash: true}, "YY")
		p1, err := e1.Explain(src)
		if err != nil {
			t.Fatalf("Explain(%q): %v", src, err)
		}
		p2, err := e2.Explain(src)
		if err != nil {
			t.Fatalf("Explain(%q): %v", src, err)
		}
		if p1 != p2 {
			t.Fatalf("Explain(%q) differs between same-size catalogs:\n%s\nvs\n%s", src, p1, p2)
		}
		if _, err := e1.Query(src); err != nil {
			t.Fatalf("Query(%q): %v", src, err)
		}
		if _, err := e2.Query(src); err != nil {
			t.Fatalf("Query(%q): %v", src, err)
		}
		h1, h2 := e1.LastStats().TraceHash, e2.LastStats().TraceHash
		if h1 != h2 {
			t.Fatalf("Query(%q): trace hash depends on table contents", src)
		}
		if n1, n2 := e1.LastStats().Comparators, e2.LastStats().Comparators; n1 != n2 {
			t.Fatalf("Query(%q): comparator count depends on table contents (%d vs %d)", src, n1, n2)
		}
	}
}

// TestMultiwayJoinEndToEnd pins the acceptance criterion's 3-way join
// semantics against hand-computed output.
func TestMultiwayJoinEndToEnd(t *testing.T) {
	e := NewEngine()
	reg := func(name string, rows ...table.Row) {
		if err := e.Register(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	r := func(k uint64, d string) table.Row { return table.Row{J: k, D: table.MustData(d)} }
	reg("u", r(1, "ann"), r(2, "ben"), r(3, "cyd"))
	reg("o", r(2, "gpu"), r(2, "ram"), r(3, "ssd"), r(9, "zzz"))
	reg("s", r(2, "kyiv"), r(3, "oslo"), r(3, "lima"))

	res, err := e.Query("SELECT key, left.data, right.data FROM u JOIN o USING (key) JOIN s USING (key) ORDER BY key")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		got[i] = strings.Join(row, "|")
	}
	want := []string{
		"2|ben+gpu|kyiv",
		"2|ben+ram|kyiv",
		"3|cyd+ssd|lima",
		"3|cyd+ssd|oslo",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("3-way join rows = %v, want %v", got, want)
	}

	plan, err := e.Explain("SELECT key, COUNT(*) FROM u JOIN o USING (key) JOIN s USING (key) GROUP BY key")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "rekey") || !strings.Contains(plan, "join-group-stats(s) [§7 fast path]") {
		t.Fatalf("multi-way aggregate plan = %q", plan)
	}
}

// TestRekeyOverflowError verifies the chain fails cleanly when a
// combined payload exceeds the fixed public width.
func TestRekeyOverflowError(t *testing.T) {
	e := NewEngine()
	long := strings.Repeat("x", 12)
	reg := func(name string, rows ...table.Row) {
		if err := e.Register(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	reg("a", table.Row{J: 1, D: table.MustData(long)})
	reg("b", table.Row{J: 1, D: table.MustData(long)})
	reg("c", table.Row{J: 1, D: table.MustData("y")})
	_, err := e.Query("SELECT * FROM a JOIN b USING (key) JOIN c USING (key)")
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("err = %v, want payload-overflow error", err)
	}
}

// TestSumOverJoinValidatesUpFront pins the bugfix: non-numeric payloads
// fail before the oblivious pass, and the error lists the offending
// values rather than only the first one.
func TestSumOverJoinValidatesUpFront(t *testing.T) {
	e := NewEngineWith(Options{CollectStats: true})
	reg := func(name string, rows ...table.Row) {
		if err := e.Register(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	r := func(k uint64, d string) table.Row { return table.Row{J: k, D: table.MustData(d)} }
	reg("l", r(1, "10"), r(1, "oops"), r(2, "30"))
	reg("r", r(1, "5"), r(2, "bad"), r(2, "worse"))
	_, err := e.Query("SELECT key, SUM(left.data) FROM l JOIN r USING (key) GROUP BY key")
	if err == nil {
		t.Fatal("expected validation error")
	}
	for _, want := range []string{`"oops"`, `"bad"`, `"worse"`} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list offending value %s", err, want)
		}
	}
	// The failure must precede execution: no stats report survives.
	if e.LastStats() != nil {
		t.Fatal("stats recorded for a failed query")
	}
}

// TestPlanStatsReport checks the per-operator report matches the plan
// and carries the instrumentation totals.
func TestPlanStatsReport(t *testing.T) {
	e := corpusEngine(t, Options{TraceHash: true}, "x")
	src := "SELECT key, left.data, right.data FROM a JOIN b USING (key) JOIN c USING (key)"
	if _, err := e.Query(src); err != nil {
		t.Fatal(err)
	}
	st := e.LastStats()
	if st == nil {
		t.Fatal("no stats")
	}
	var stages []string
	for _, op := range st.Operators {
		stages = append(stages, op.Op)
	}
	plan, err := e.Explain(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(stages, " → "); got != plan {
		t.Fatalf("stats stages %q != plan %q", got, plan)
	}
	if st.Comparators == 0 || st.TraceEvents == 0 || st.TraceHash == "" {
		t.Fatalf("instrumentation empty: %+v", st)
	}
	rendered := st.String()
	if !strings.Contains(rendered, "oblivious-join(b)") || !strings.Contains(rendered, "trace-hash=") {
		t.Fatalf("rendered stats missing fields:\n%s", rendered)
	}
}

// TestEngineSeedStability: probabilistic distribute composes with the
// plan pipeline and stays deterministic per seed.
func TestEngineSeedStability(t *testing.T) {
	run := func(seed int64) ([][]string, string) {
		e := corpusEngine(t, Options{TraceHash: true, Probabilistic: true, Seed: seed}, "x")
		res, err := e.Query("SELECT key, left.data, right.data FROM a JOIN b USING (key)")
		if err != nil {
			t.Fatal(err)
		}
		return res.Rows, e.LastStats().TraceHash
	}
	r1, h1 := run(42)
	r2, h2 := run(42)
	if !reflect.DeepEqual(r1, r2) || h1 != h2 {
		t.Fatal("probabilistic runs with equal seeds diverge")
	}
}

// TestGroupByLimitApplies: LIMIT now applies uniformly, including over
// the §7 fast path.
func TestGroupByLimitApplies(t *testing.T) {
	e := corpusEngine(t, Options{}, "x")
	res, err := e.Query("SELECT key, COUNT(*) FROM a JOIN b USING (key) GROUP BY key LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// TestWorkersRandomized stress-tests parallel equivalence over random
// catalogs and query shapes (beyond the fixed corpus).
func TestWorkersRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		tables := randCatalog(rng)
		src := randQuery(rng)
		var base *Result
		var baseHash string
		for i, o := range []Options{{TraceHash: true}, {TraceHash: true, Workers: 4}} {
			e := NewEngineWith(o)
			for name, rows := range tables {
				if err := e.Register(name, rows); err != nil {
					t.Fatal(err)
				}
			}
			res, err := e.Query(src)
			if err != nil {
				t.Fatalf("trial %d %q: %v", trial, src, err)
			}
			if i == 0 {
				base, baseHash = res, e.LastStats().TraceHash
				continue
			}
			if !reflect.DeepEqual(res, base) || e.LastStats().TraceHash != baseHash {
				t.Fatalf("trial %d %q: parallel run diverges", trial, src)
			}
		}
	}
}
