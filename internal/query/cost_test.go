package query

import (
	"strings"
	"testing"

	"oblivjoin/internal/table"
)

// feedCard is a test Card with explicit join-size feedback, keyed by
// the execution-order left table list.
type feedCard struct {
	tables map[string][]table.Row
	feed   map[string]int
}

func (c feedCard) Rows(t string) (int, bool) {
	rows, ok := c.tables[t]
	return len(rows), ok
}

func (c feedCard) JoinRows(left []string, right string) (int, bool) {
	m, ok := c.feed[strings.Join(left, ",")+"→"+right]
	return m, ok
}

// seqTable builds count rows with keys first..first+count-1.
func seqTable(first, count int, tag string) []table.Row {
	rows := make([]table.Row, count)
	for i := range rows {
		rows[i] = table.Row{J: uint64(first + i), D: table.MustData(tag)}
	}
	return rows
}

// TestJoinCostModelExact pins the cost model against the instrumented
// executor: with the true join output size fed in, modeled comparator
// and route-op counts must equal the observed counts exactly, across
// every sorting network and distribute variant.
func TestJoinCostModelExact(t *testing.T) {
	// t1 keys 0..19, t2 keys 5..16 → every t2 key matches once: m = 12.
	tables := map[string][]table.Row{
		"t1": seqTable(0, 20, "a"),
		"t2": seqTable(5, 12, "b"),
	}
	card := feedCard{tables: tables, feed: map[string]int{"t1→t2": 12}}
	sql := "SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key)"

	for name, opts := range map[string]Options{
		"bitonic":       {CollectStats: true},
		"mergeexchange": {CollectStats: true, MergeExchange: true},
		"probabilistic": {CollectStats: true, Probabilistic: true, Seed: 7},
		"materialized":  {CollectStats: true, Materialized: true},
	} {
		t.Run(name, func(t *testing.T) {
			e := NewEngineWith(opts)
			for tn, rows := range tables {
				if err := e.Register(tn, rows); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := e.Query(sql); err != nil {
				t.Fatal(err)
			}
			ps := e.LastStats()

			q, err := Parse(sql)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := BuildPlan(q, func(string) bool { return true })
			if err != nil {
				t.Fatal(err)
			}
			rep := ComputePlanCost(plan, card, opts)
			if rep.Estimated {
				t.Fatalf("report estimated with full feedback: %+v", rep)
			}
			if rep.Comparators != ps.Comparators {
				t.Errorf("modeled comparators = %d, observed = %d", rep.Comparators, ps.Comparators)
			}
			if rep.RouteOps != ps.RouteOps {
				t.Errorf("modeled route ops = %d, observed = %d", rep.RouteOps, ps.RouteOps)
			}
			if rep.Rows != 12 {
				t.Errorf("modeled rows = %d, want 12", rep.Rows)
			}
		})
	}
}

// TestSingleSortStagesExact pins the one-sort operators (GROUP BY,
// DISTINCT, ORDER BY, semijoin) against observed comparator counts —
// their comparator model is exact even where row counts are estimates.
func TestSingleSortStagesExact(t *testing.T) {
	tables := map[string][]table.Row{
		"t": seqTable(0, 33, "v"),
		"u": seqTable(10, 9, "w"),
	}
	for _, sql := range []string{
		"SELECT key, COUNT(*) FROM t GROUP BY key",
		"SELECT DISTINCT key, data FROM t",
		"SELECT key FROM t ORDER BY key",
		"SELECT key FROM t WHERE key IN (SELECT key FROM u)",
	} {
		e := NewEngineWith(Options{CollectStats: true})
		for tn, rows := range tables {
			if err := e.Register(tn, rows); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := e.Query(sql); err != nil {
			t.Fatalf("%q: %v", sql, err)
		}
		ps := e.LastStats()
		rep, err := e.PlanCost(sql)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Comparators != ps.Comparators {
			t.Errorf("%q: modeled comparators = %d, observed = %d", sql, rep.Comparators, ps.Comparators)
		}
	}
}

// TestDistributeRouteOpsSmall checks the closed-form route-op count on
// hand-verifiable sizes.
func TestDistributeRouteOpsSmall(t *testing.T) {
	if got := DistributeRouteOps(0); got != 0 {
		t.Errorf("l=0: %d", got)
	}
	if got := DistributeRouteOps(1); got != 0 {
		t.Errorf("l=1: %d", got)
	}
	// l=2: j=1 wave, hi=0 → one op.
	if got := DistributeRouteOps(2); got != 1 {
		t.Errorf("l=2: %d, want 1", got)
	}
	// Monotone in l.
	prev := uint64(0)
	for l := 1; l <= 64; l++ {
		c := DistributeRouteOps(l)
		if c < prev {
			t.Fatalf("route ops not monotone at l=%d: %d < %d", l, c, prev)
		}
		prev = c
	}
}

// TestRenderPlanCost smoke-tests the EXPLAIN cost table.
func TestRenderPlanCost(t *testing.T) {
	e := NewEngineWith(Options{CostPlan: true})
	if err := e.Register("t1", seqTable(0, 8, "a")); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("t2", seqTable(0, 4, "b")); err != nil {
		t.Fatal(err)
	}
	out, err := e.ExplainCost("SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"comparators", "route-ops", "store-bytes", "total (modeled)", "oblivious-join(t2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("ExplainCost output missing %q:\n%s", want, out)
		}
	}
}

// TestScanColumnAnnotation: key-only pipelines annotate the scan; any
// payload consumer suppresses the annotation.
func TestScanColumnAnnotation(t *testing.T) {
	e := NewEngineWith(Options{CostPlan: true})
	if err := e.Register("t", seqTable(0, 8, "a")); err != nil {
		t.Fatal(err)
	}
	plan, err := e.Explain("SELECT key, COUNT(*) FROM t GROUP BY key")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "scan(t cols=key)") {
		t.Errorf("key-only plan not annotated: %s", plan)
	}
	plan, err = e.Explain("SELECT key, data FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "cols=") {
		t.Errorf("payload-consuming plan annotated: %s", plan)
	}
}
