package query

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"oblivjoin/internal/table"
)

// shardQueries exercise the sharded join inside full pipelines: a bare
// join, a join feeding filter/sort (pre-join scan streams, post-join
// rekey streams), a two-join chain (rekey between joins) and a
// GROUP BY consumer.
var shardQueries = []string{
	"SELECT key, left.data, right.data FROM l JOIN r USING (key)",
	"SELECT key, right.data FROM l JOIN r USING (key) WHERE key > 3 ORDER BY key",
	"SELECT key, left.data, right.data FROM l JOIN r USING (key) JOIN w USING (key)",
	"SELECT key, COUNT(*) FROM l JOIN r USING (key) GROUP BY key",
}

// shardCatalog builds join inputs with duplicate keys: n left rows, n/2
// right rows (min 1), and a small third table for the join chain.
func shardCatalog(n int) map[string][]table.Row {
	mod := uint64(n/3 + 1)
	mk := func(count int, tag string) []table.Row {
		rows := make([]table.Row, count)
		for i := range rows {
			rows[i] = table.Row{J: uint64(i*2654435761) % mod, D: table.MustData(fmt.Sprintf("%s%d", tag, i))}
		}
		return rows
	}
	return map[string][]table.Row{
		"l": mk(n, "l"),
		"r": mk(max(n/2, 1), "r"),
		"w": mk(max(n/4, 1), "w"),
	}
}

func shardQuery(t *testing.T, o Options, sql string, tables map[string][]table.Row) (*Result, *PlanStats) {
	t.Helper()
	e := NewEngineWith(o)
	for name, rows := range tables {
		if err := e.Register(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	res, err := e.Query(sql)
	if err != nil {
		t.Fatalf("Query(%q) [shards=%d]: %v", sql, o.Shards, err)
	}
	return res, e.LastStats()
}

// TestShardedMatchesUnsharded is shard-count invariance end to end:
// for every store mode, shard count and boundary input size, a sharded
// query returns exactly the unsharded result, and its trace hash and
// comparator count are reproducible — identical across repeats and
// worker counts at the same shard count.
func TestShardedMatchesUnsharded(t *testing.T) {
	for _, mode := range storeModes {
		for _, s := range []int{2, 4, 7} {
			sizes := []int{1, s - 1, s*16 - 1, s*16 + 1}
			for _, n := range sizes {
				if n < 1 {
					continue
				}
				tables := shardCatalog(n)
				for _, sql := range shardQueries {
					label := fmt.Sprintf("%s/s=%d/n=%d/%q", mode.name, s, n, sql)

					var ref Options
					mode.set(&ref)
					ref.TraceHash = true
					ref.StreamBatch = 16
					base, _ := shardQuery(t, ref, sql, tables)

					o := ref
					o.Shards = s
					o.Workers = 4
					res, ps := shardQuery(t, o, sql, tables)
					if !reflect.DeepEqual(res, base) {
						t.Fatalf("%s: sharded result diverges from unsharded:\n%v\nvs\n%v", label, res.Rows, base.Rows)
					}

					// Reproducibility at this shard count: different
					// worker split, same composed hash and counts.
					o2 := o
					o2.Workers = 1
					res2, ps2 := shardQuery(t, o2, sql, tables)
					if !reflect.DeepEqual(res2, res) {
						t.Fatalf("%s: sharded result varies with workers", label)
					}
					if ps.TraceHash == "" || ps.TraceHash != ps2.TraceHash {
						t.Fatalf("%s: composed trace hash varies with workers (%s vs %s)", label, ps.TraceHash, ps2.TraceHash)
					}
					if ps.Comparators != ps2.Comparators {
						t.Fatalf("%s: comparators vary with workers (%d vs %d)", label, ps.Comparators, ps2.Comparators)
					}
					if ps.PeakBytes != ps2.PeakBytes {
						t.Fatalf("%s: peak bytes vary with workers (%d vs %d)", label, ps.PeakBytes, ps2.PeakBytes)
					}
				}
			}
		}
	}
}

// TestShardedLargeInput runs the full operator chain at a many-batch
// size in plain mode (the heavier modes are covered at boundary sizes
// above).
func TestShardedLargeInput(t *testing.T) {
	n := 4096
	if testing.Short() {
		n = 512
	}
	tables := shardCatalog(n)
	const sql = "SELECT key, right.data FROM l JOIN r USING (key) WHERE key > 3 ORDER BY key"
	base, _ := shardQuery(t, Options{TraceHash: true}, sql, tables)
	res, ps := shardQuery(t, Options{TraceHash: true, Shards: 4, Workers: 4}, sql, tables)
	if !reflect.DeepEqual(res, base) {
		t.Fatalf("sharded result diverges at n=%d", n)
	}
	if ps.TraceHash == "" {
		t.Fatal("no composed trace hash collected")
	}
}

// TestShardedTraceDependsOnlyOnSizes: same sizes and key structure,
// different payload contents — identical composed hashes.
func TestShardedTraceDependsOnlyOnSizes(t *testing.T) {
	mk := func(tag string) map[string][]table.Row {
		tables := map[string][]table.Row{}
		for name, rows := range shardCatalog(300) {
			out := make([]table.Row, len(rows))
			for i, r := range rows {
				out[i] = table.Row{J: r.J, D: table.MustData(fmt.Sprintf("%s%d", tag, i))}
			}
			tables[name] = out
		}
		return tables
	}
	o := Options{TraceHash: true, Shards: 4, Workers: 2}
	const sql = "SELECT key, right.data FROM l JOIN r USING (key) WHERE key > 3 ORDER BY key"
	_, ps1 := shardQuery(t, o, sql, mk("x"))
	_, ps2 := shardQuery(t, o, sql, mk("YY"))
	if ps1.TraceHash != ps2.TraceHash {
		t.Fatal("composed trace hash depends on table contents")
	}
}

// TestShardedSpillUnderBudget: the sharded path composes with the
// memory budget — per-unit budget shares force spilling, results stay
// exact, and no spill file outlives the run.
func TestShardedSpillUnderBudget(t *testing.T) {
	tables := shardCatalog(600)
	const sql = "SELECT key, left.data, right.data FROM l JOIN r USING (key)"
	base, _ := shardQuery(t, Options{}, sql, tables)
	dir := t.TempDir()
	o := Options{Shards: 4, Workers: 4, CollectStats: true, MemBudget: 16 << 10, SpillDir: dir}
	res, ps := shardQuery(t, o, sql, tables)
	if !reflect.DeepEqual(res, base) {
		t.Fatal("sharded result diverges under a memory budget")
	}
	if ps.SpillCount == 0 {
		t.Fatal("budget did not force any spills in the sharded run")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files survive the run", len(ents))
	}
}

// TestShardedCancellationMidShard cancels a sharded run while its
// shard units are executing: the run returns the typed sentinel, every
// shard goroutine is joined (no leak), and an identical follow-up
// query on the same tables succeeds — one aborted run poisons nothing.
func TestShardedCancellationMidShard(t *testing.T) {
	tables := shardCatalog(20000)
	q, err := Parse("SELECT key, left.data, right.data FROM l JOIN r USING (key)")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngineWith(Options{})
	for name, rows := range tables {
		if err := e.Register(name, rows); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := e.plan(q)
	if err != nil {
		t.Fatal(err)
	}
	pipeline, err := lower(plan)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Shards: 4, Workers: 4}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Long enough for the shard units to be mid-join at n=20000,
		// short enough to abort well before completion.
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	_, _, err = Run(ctx, o, nil, tables, pipeline)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("cancelled sharded run returned %v, want ErrCanceled", err)
	}

	// All unit goroutines must be joined before Run returns; allow the
	// runtime a moment to retire exiting goroutines (worker pools are
	// process-wide and excluded by measuring against `before`).
	deadline := time.Now().Add(3 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines leaked by cancelled sharded run: %d before, %d after", before, g)
	}

	if _, _, err := Run(context.Background(), o, nil, tables, pipeline); err != nil {
		t.Fatalf("follow-up sharded run after a cancellation failed: %v", err)
	}
}
