package query

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/table"
)

// plannerCatalog builds a 3-table chain where the written join order
// (t2 then t3) is expensive and greedy should pull the small t3 first.
// Payloads contain the rekey separator and rows repeat, so the catalog
// also exercises the escape codec and the duplicate-row canonical sort.
func plannerCatalog() map[string][]table.Row {
	dup := func(j uint64, d string) table.Row { return table.Row{J: j, D: table.MustData(d)} }
	t1 := []table.Row{
		dup(1, "a+1"), dup(1, "a+1"), dup(2, "b"), dup(3, `c\3`),
	}
	var t2 []table.Row
	for i := 0; i < 6; i++ {
		t2 = append(t2, dup(uint64(i%3+1), fmt.Sprintf("p+%d", i)))
	}
	t3 := []table.Row{dup(1, "x"), dup(2, "y+z"), dup(3, "w")}
	return map[string][]table.Row{"t1": t1, "t2": t2, "t3": t3}
}

const plannerChain = "SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key) JOIN t3 USING (key)"

func registerAll(t *testing.T, e *Engine, tables map[string][]table.Row) {
	t.Helper()
	for name, rows := range tables {
		if err := e.Register(name, rows); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGreedyReordersJoinChain: with t3 far smaller than t2, the greedy
// planner joins t3 first and the plan carries the restore permutation.
func TestGreedyReordersJoinChain(t *testing.T) {
	e := NewEngineWith(Options{CostPlan: true})
	if err := e.Register("t1", seqTable(0, 64, "a")); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("t2", seqTable(0, 512, "b")); err != nil {
		t.Fatal(err)
	}
	if err := e.Register("t3", seqTable(0, 8, "c")); err != nil {
		t.Fatal(err)
	}
	plan, err := e.Explain(plannerChain)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := "oblivious-join(t3) → rekey → oblivious-join(t2)"
	if !strings.Contains(plan, wantOrder) {
		t.Errorf("greedy plan did not pull t3 first: %s", plan)
	}
	if !strings.Contains(plan, "restore[0 2 1]") {
		t.Errorf("plan missing restore permutation: %s", plan)
	}

	// The default planner keeps the written order and adds no restore.
	e2 := NewEngine()
	if err := e2.Register("t1", seqTable(0, 64, "a")); err != nil {
		t.Fatal(err)
	}
	if err := e2.Register("t2", seqTable(0, 512, "b")); err != nil {
		t.Fatal(err)
	}
	if err := e2.Register("t3", seqTable(0, 8, "c")); err != nil {
		t.Fatal(err)
	}
	plan2, err := e2.Explain(plannerChain)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2, "oblivious-join(t2) → rekey → oblivious-join(t3)") ||
		strings.Contains(plan2, "restore") || strings.Contains(plan2, "canonicalize") {
		t.Errorf("default plan changed: %s", plan2)
	}
}

// runNoReorder executes the chain with the written-order cost plan
// (canonicalized baseline) — the byte-identity reference for greedy.
func runNoReorder(t *testing.T, o Options, tables map[string][]table.Row, sql string) *Result {
	t.Helper()
	e := NewEngineWith(o)
	registerAll(t, e, tables)
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := BuildPlanCfg(q, func(name string) bool { _, ok := e.tables[name]; return ok },
		PlanConfig{CostPlan: true, NoReorder: true, Card: tablesCard(e.tables), Opts: o})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(RenderPlan(plan), "oblivious-join(t2) → rekey → oblivious-join(t3) → canonicalize") {
		t.Fatalf("NoReorder plan not written-order+canonicalize: %s", RenderPlan(plan))
	}
	pipeline, err := lower(plan)
	if err != nil {
		t.Fatal(err)
	}
	var cipher *crypto.Cipher
	if o.Encrypted || o.MemBudget > 0 {
		if cipher, _, err = crypto.NewRandom(); err != nil {
			t.Fatal(err)
		}
	}
	res, _, err := Run(context.Background(), o, cipher, e.tables, pipeline)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGreedyByteIdentity: the greedy-ordered plan and the written-order
// canonicalized plan produce byte-identical results — with duplicate
// rows and separator bytes in payloads, across plain, sealed and
// sharded execution — and both hold exactly the default plan's row
// multiset.
func TestGreedyByteIdentity(t *testing.T) {
	tables := plannerCatalog()
	for name, o := range map[string]Options{
		"plain":   {},
		"sealed":  {Encrypted: true, SealedBlock: 4},
		"sharded": {Shards: 2, Workers: 2},
	} {
		t.Run(name, func(t *testing.T) {
			greedyOpts := o
			greedyOpts.CostPlan = true
			eg := NewEngineWith(greedyOpts)
			registerAll(t, eg, tables)
			greedy, err := eg.Query(plannerChain)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(mustExplain(t, eg, plannerChain), "oblivious-join(t3) → rekey → oblivious-join(t2)") {
				t.Fatalf("catalog did not trigger reorder: %s", mustExplain(t, eg, plannerChain))
			}

			written := runNoReorder(t, greedyOpts, tables, plannerChain)
			if !reflect.DeepEqual(greedy.Rows, written.Rows) {
				t.Errorf("greedy and written-order results differ:\ngreedy:  %v\nwritten: %v",
					greedy.Rows, written.Rows)
			}

			ed := NewEngineWith(o)
			registerAll(t, ed, tables)
			def, err := ed.Query(plannerChain)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := rowMultiset(greedy), rowMultiset(def); !reflect.DeepEqual(got, want) {
				t.Errorf("greedy result is not the default plan's multiset:\ngreedy:  %v\ndefault: %v", got, want)
			}
		})
	}
}

func mustExplain(t *testing.T, e *Engine, sql string) string {
	t.Helper()
	s, err := e.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rowMultiset(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = strings.Join(r, "|")
	}
	sort.Strings(out)
	return out
}

// TestPlanContentIndependence: two databases with identical public
// sizes (same key multisets, different payloads) must produce the
// identical plan and the identical access-pattern trace hash — the
// ordering decision may read cardinalities, never contents.
func TestPlanContentIndependence(t *testing.T) {
	build := func(tag string) map[string][]table.Row {
		mk := func(keys []uint64) []table.Row {
			rows := make([]table.Row, len(keys))
			for i, j := range keys {
				rows[i] = table.Row{J: j, D: table.MustData(fmt.Sprintf("%s%d", tag, i))}
			}
			return rows
		}
		return map[string][]table.Row{
			"t1": mk([]uint64{1, 1, 2, 3}),
			"t2": mk([]uint64{1, 2, 3, 1, 2, 3}),
			"t3": mk([]uint64{1, 2, 3}),
		}
	}
	o := Options{CostPlan: true, TraceHash: true}
	run := func(tag string) (string, *Result, *PlanStats) {
		e := NewEngineWith(o)
		registerAll(t, e, build(tag))
		plan := mustExplain(t, e, plannerChain)
		res, err := e.Query(plannerChain)
		if err != nil {
			t.Fatal(err)
		}
		return plan, res, e.LastStats()
	}
	planX, resX, psX := run("x")
	planY, resY, psY := run("y")
	if planX != planY {
		t.Errorf("plans diverged on contents:\n%s\n%s", planX, planY)
	}
	if psX.TraceHash != psY.TraceHash {
		t.Errorf("trace hashes diverged on contents: %x vs %x", psX.TraceHash, psY.TraceHash)
	}
	if reflect.DeepEqual(resX.Rows, resY.Rows) {
		t.Error("distinct contents produced identical results — fixture is degenerate")
	}
}

// TestCostPlanOtherShapes: cost mode must not disturb non-chain query
// shapes — results match the default planner's for filters, semijoin
// pushdown, group-by fast path and single joins.
func TestCostPlanOtherShapes(t *testing.T) {
	tables := plannerCatalog()
	tables["u"] = []table.Row{{J: 1, D: table.MustData("v")}, {J: 3, D: table.MustData("v")}}
	queries := []string{
		"SELECT key, data FROM t2 WHERE key > 1",
		"SELECT key FROM t2 WHERE key IN (SELECT key FROM u) AND key > 0",
		"SELECT key, COUNT(*) FROM t1 JOIN t2 USING (key) GROUP BY key",
		"SELECT key, left.data, right.data FROM t1 JOIN t3 USING (key)",
		"SELECT DISTINCT key FROM t2 ORDER BY key",
	}
	for _, sql := range queries {
		ec := NewEngineWith(Options{CostPlan: true})
		registerAll(t, ec, tables)
		cost, err := ec.Query(sql)
		if err != nil {
			t.Fatalf("%q (cost): %v", sql, err)
		}
		ed := NewEngine()
		registerAll(t, ed, tables)
		def, err := ed.Query(sql)
		if err != nil {
			t.Fatalf("%q (default): %v", sql, err)
		}
		if !reflect.DeepEqual(rowMultiset(cost), rowMultiset(def)) {
			t.Errorf("%q: cost-plan result differs from default:\ncost:    %v\ndefault: %v",
				sql, cost.Rows, def.Rows)
		}
	}
}
