package query

import (
	"fmt"
	"strconv"
)

// Parse turns a SELECT statement into a Query AST, validating the
// combinations the executor supports.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("query: unexpected %s after end of statement", p.peek())
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// at reports whether the current token matches kind (and text when text
// is non-empty).
func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token when it matches.
func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

// expect consumes a required token or fails with context.
func (p *parser) expect(kind tokKind, text, what string) error {
	if p.accept(kind, text) {
		return nil
	}
	return fmt.Errorf("query: expected %s, found %s", what, p.peek())
}

func (p *parser) keyword(kw string) bool { return p.accept(tokIdent, kw) }

func (p *parser) query() (*Query, error) {
	q := &Query{Limit: -1, AsOf: -1}
	if err := p.expect(tokIdent, "select", "SELECT"); err != nil {
		return nil, err
	}
	q.Distinct = p.keyword("distinct")

	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}

	if err := p.expect(tokIdent, "from", "FROM"); err != nil {
		return nil, err
	}
	name, err := p.tableName()
	if err != nil {
		return nil, err
	}
	q.From = name

	// Chained joins: JOIN t2 USING (key) JOIN t3 USING (key) … composes
	// left-to-right (the paper's §7 multi-way joins).
	for p.keyword("join") {
		jt, err := p.tableName()
		if err != nil {
			return nil, err
		}
		q.Joins = append(q.Joins, jt)
		if err := p.expect(tokIdent, "using", "USING"); err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, "(", "'('"); err != nil {
			return nil, err
		}
		if err := p.expect(tokIdent, "key", "key"); err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")", "')'"); err != nil {
			return nil, err
		}
	}

	// AS OF <version> pins every table the query reads (including IN
	// subqueries) to one retained catalog version — a time-travel read.
	if p.keyword("as") {
		if err := p.expect(tokIdent, "of", "OF"); err != nil {
			return nil, err
		}
		v, err := p.number()
		if err != nil {
			return nil, err
		}
		if v == 0 || v > 1<<62 {
			return nil, fmt.Errorf("query: AS OF version must be between 1 and the current catalog version")
		}
		q.AsOf = int64(v)
	}

	if p.keyword("where") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}

	if p.keyword("group") {
		if err := p.expect(tokIdent, "by", "BY"); err != nil {
			return nil, err
		}
		if err := p.expect(tokIdent, "key", "key (the only grouping column)"); err != nil {
			return nil, err
		}
		q.GroupBy = true
	}

	if p.keyword("order") {
		if err := p.expect(tokIdent, "by", "BY"); err != nil {
			return nil, err
		}
		if err := p.expect(tokIdent, "key", "key (the only ordering column)"); err != nil {
			return nil, err
		}
		q.OrderBy = true
	}

	if p.keyword("limit") {
		n, err := p.number()
		if err != nil {
			return nil, err
		}
		q.Limit = int(n)
	}
	return q, nil
}

func (p *parser) tableName() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("query: expected table name, found %s", t)
	}
	switch t.text {
	case "select", "from", "where", "join", "group", "order", "limit", "using", "key", "data":
		return "", fmt.Errorf("query: expected table name, found keyword %s", t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Col: ColStar}, nil
	}
	t := p.peek()
	if t.kind != tokIdent {
		return SelectItem{}, fmt.Errorf("query: expected select item, found %s", t)
	}
	switch t.text {
	case "key":
		p.next()
		return SelectItem{Col: ColKey}, nil
	case "data":
		p.next()
		return SelectItem{Col: ColData}, nil
	case "left", "right":
		p.next()
		if err := p.expect(tokSymbol, ".", "'.'"); err != nil {
			return SelectItem{}, err
		}
		if err := p.expect(tokIdent, "data", "data"); err != nil {
			return SelectItem{}, err
		}
		if t.text == "left" {
			return SelectItem{Col: ColLeftData}, nil
		}
		return SelectItem{Col: ColRightData}, nil
	case "count":
		p.next()
		if err := p.expect(tokSymbol, "(", "'('"); err != nil {
			return SelectItem{}, err
		}
		if err := p.expect(tokSymbol, "*", "'*'"); err != nil {
			return SelectItem{}, err
		}
		if err := p.expect(tokSymbol, ")", "')'"); err != nil {
			return SelectItem{}, err
		}
		return SelectItem{Col: ColData, Agg: AggCount}, nil
	case "sum", "min", "max":
		p.next()
		if err := p.expect(tokSymbol, "(", "'('"); err != nil {
			return SelectItem{}, err
		}
		col := ColData
		switch {
		case p.accept(tokIdent, "data"):
		case p.accept(tokIdent, "left"):
			if err := p.expect(tokSymbol, ".", "'.'"); err != nil {
				return SelectItem{}, err
			}
			if err := p.expect(tokIdent, "data", "data"); err != nil {
				return SelectItem{}, err
			}
			col = ColLeftData
		case p.accept(tokIdent, "right"):
			if err := p.expect(tokSymbol, ".", "'.'"); err != nil {
				return SelectItem{}, err
			}
			if err := p.expect(tokIdent, "data", "data"); err != nil {
				return SelectItem{}, err
			}
			col = ColRightData
		default:
			return SelectItem{}, fmt.Errorf("query: expected data, left.data or right.data, found %s", p.peek())
		}
		if err := p.expect(tokSymbol, ")", "')'"); err != nil {
			return SelectItem{}, err
		}
		agg := map[string]AggKind{"sum": AggSum, "min": AggMin, "max": AggMax}[t.text]
		return SelectItem{Col: col, Agg: agg}, nil
	default:
		return SelectItem{}, fmt.Errorf("query: unknown select item %s", t)
	}
}

func (p *parser) number() (uint64, error) {
	t := p.peek()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("query: expected number, found %s", t)
	}
	p.next()
	v, err := strconv.ParseUint(t.text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("query: bad number %s: %w", t, err)
	}
	return v, nil
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.keyword("not") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	if p.accept(tokSymbol, "(") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")", "')'"); err != nil {
			return nil, err
		}
		return e, nil
	}
	if err := p.expect(tokIdent, "key", "key (predicates range over the key column)"); err != nil {
		return nil, err
	}
	if p.keyword("between") {
		lo, err := p.number()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokIdent, "and", "AND"); err != nil {
			return nil, err
		}
		hi, err := p.number()
		if err != nil {
			return nil, err
		}
		return Between{Lo: lo, Hi: hi}, nil
	}
	if p.keyword("in") {
		if err := p.expect(tokSymbol, "(", "'('"); err != nil {
			return nil, err
		}
		if err := p.expect(tokIdent, "select", "SELECT"); err != nil {
			return nil, err
		}
		if err := p.expect(tokIdent, "key", "key"); err != nil {
			return nil, err
		}
		if err := p.expect(tokIdent, "from", "FROM"); err != nil {
			return nil, err
		}
		tbl, err := p.tableName()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokSymbol, ")", "')'"); err != nil {
			return nil, err
		}
		return In{Table: tbl}, nil
	}
	t := p.peek()
	if t.kind != tokOp {
		return nil, fmt.Errorf("query: expected comparison operator, found %s", t)
	}
	p.next()
	lit, err := p.number()
	if err != nil {
		return nil, err
	}
	return Cmp{Op: t.text, Lit: lit}, nil
}

// validate enforces the combinations the executor supports, with
// messages that say why.
func validate(q *Query) error {
	hasAgg := false
	for _, it := range q.Select {
		if it.Agg != AggNone {
			hasAgg = true
		}
	}
	if hasAgg && !q.GroupBy {
		return fmt.Errorf("query: aggregate select items require GROUP BY key")
	}
	if q.GroupBy {
		for _, it := range q.Select {
			if it.Agg == AggNone && it.Col != ColKey {
				return fmt.Errorf("query: with GROUP BY, select items must be key or aggregates")
			}
		}
	}
	if !q.Joined() {
		for _, it := range q.Select {
			if it.Col == ColLeftData || it.Col == ColRightData {
				return fmt.Errorf("query: left.data/right.data require a JOIN")
			}
		}
	}
	if q.Joined() && q.GroupBy {
		// Only the §7 fast paths are supported over joins: key,
		// COUNT(*), and SUM over either side's values.
		for _, it := range q.Select {
			ok := it.Col == ColKey && it.Agg == AggNone ||
				it.Agg == AggCount ||
				it.Agg == AggSum && (it.Col == ColLeftData || it.Col == ColRightData)
			if !ok {
				return fmt.Errorf("query: over a JOIN, GROUP BY supports only key, COUNT(*), SUM(left.data) and SUM(right.data)")
			}
			if it.Agg == AggSum && len(q.Joins) > 1 {
				// Intermediate payloads of a chain are concatenations,
				// never numeric; only the dimension-based aggregates
				// compose across re-keying.
				return fmt.Errorf("query: SUM over a multi-way JOIN is not supported (only key and COUNT(*) compose across chained joins)")
			}
		}
	}
	if q.Joined() && q.Distinct {
		return fmt.Errorf("query: DISTINCT over a JOIN is not supported")
	}
	if q.Limit == 0 && q.Limit != -1 {
		return fmt.Errorf("query: LIMIT 0 is not useful")
	}
	return nil
}
