package ops

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"oblivjoin/internal/core"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

func sp() *core.Config {
	return &core.Config{Alloc: table.PlainAlloc(memory.NewSpace(nil, nil))}
}

func rows(keys ...uint64) []table.Row {
	out := make([]table.Row, len(keys))
	for i, k := range keys {
		out[i] = table.Row{J: k, D: table.MustData(fmt.Sprintf("d%d.%d", k, i))}
	}
	return out
}

func keysOf(rs []table.Row) []uint64 {
	out := make([]uint64, len(rs))
	for i, r := range rs {
		out[i] = r.J
	}
	return out
}

func TestFilterKeepsMatching(t *testing.T) {
	in := rows(1, 5, 2, 8, 3, 9)
	got := Filter(sp(), in, func(r table.Row) uint64 { return obliv.Less(r.J, 5) })
	want := []uint64{1, 2, 3}
	if fmt.Sprint(keysOf(got)) != fmt.Sprint(want) {
		t.Fatalf("keys = %v, want %v", keysOf(got), want)
	}
	// Input order preserved, payloads intact.
	if table.DataString(got[0].D) != "d1.0" {
		t.Fatalf("payload = %q", table.DataString(got[0].D))
	}
}

func TestFilterAllAndNone(t *testing.T) {
	in := rows(1, 2, 3)
	if got := Filter(sp(), in, func(table.Row) uint64 { return 1 }); len(got) != 3 {
		t.Fatalf("keep-all returned %d", len(got))
	}
	if got := Filter(sp(), in, func(table.Row) uint64 { return 0 }); len(got) != 0 {
		t.Fatalf("keep-none returned %d", len(got))
	}
}

func TestFilterEmpty(t *testing.T) {
	if got := Filter(sp(), nil, func(table.Row) uint64 { return 1 }); len(got) != 0 {
		t.Fatal("empty filter nonempty")
	}
}

func TestFilterProperty(t *testing.T) {
	f := func(keys []uint8, threshold uint8) bool {
		if len(keys) > 100 {
			keys = keys[:100]
		}
		in := make([]table.Row, len(keys))
		for i, k := range keys {
			in[i] = table.Row{J: uint64(k), D: table.MustData(fmt.Sprintf("%d", i))}
		}
		got := Filter(sp(), in, func(r table.Row) uint64 {
			return obliv.Less(r.J, uint64(threshold))
		})
		var want []table.Row
		for _, r := range in {
			if r.J < uint64(threshold) {
				want = append(want, r)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterOblivious(t *testing.T) {
	run := func(keys []uint64, threshold uint64) string {
		h := trace.NewHasher()
		s := &core.Config{Alloc: table.PlainAlloc(memory.NewSpace(h, nil))}
		Filter(s, rows(keys...), func(r table.Row) uint64 {
			return obliv.Less(r.J, threshold)
		})
		return h.Hex()
	}
	// Same n, same k: traces equal regardless of WHICH rows pass.
	a := run([]uint64{1, 2, 9, 9}, 5) // first two pass
	b := run([]uint64{9, 9, 1, 2}, 5) // last two pass
	if a != b {
		t.Fatal("filter trace depends on which rows pass")
	}
}

func TestDistinct(t *testing.T) {
	in := []table.Row{
		{J: 2, D: table.MustData("x")},
		{J: 1, D: table.MustData("y")},
		{J: 2, D: table.MustData("x")},
		{J: 2, D: table.MustData("z")},
		{J: 1, D: table.MustData("y")},
	}
	got := Distinct(sp(), in)
	if len(got) != 3 {
		t.Fatalf("distinct = %v", got)
	}
	want := []table.Row{
		{J: 1, D: table.MustData("y")},
		{J: 2, D: table.MustData("x")},
		{J: 2, D: table.MustData("z")},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestDistinctProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		if len(keys) > 80 {
			keys = keys[:80]
		}
		in := make([]table.Row, len(keys))
		for i, k := range keys {
			in[i] = table.Row{J: uint64(k % 8)} // zero payloads, many dups
		}
		got := Distinct(sp(), in)
		uniq := map[uint64]bool{}
		for _, r := range in {
			uniq[r.J] = true
		}
		if len(got) != len(uniq) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].J >= got[i].J {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	a := rows(1, 2, 3)
	b := rows(3, 4)
	// rows() stamps distinct payloads, so "same key" rows from different
	// positions are distinct rows; build exact duplicates instead.
	b[0] = a[2]
	got := Union(sp(), a, b)
	if len(got) != 4 {
		t.Fatalf("union size = %d, want 4 (%v)", len(got), keysOf(got))
	}
}

func TestSemijoin(t *testing.T) {
	left := rows(1, 2, 2, 3, 4)
	right := rows(2, 4, 9)
	got := Semijoin(sp(), left, right)
	want := []uint64{2, 2, 4}
	if fmt.Sprint(keysOf(got)) != fmt.Sprint(want) {
		t.Fatalf("semijoin keys = %v, want %v", keysOf(got), want)
	}
	for _, r := range got {
		if r.J == 9 {
			t.Fatal("right-only row leaked into semijoin output")
		}
	}
}

func TestSemijoinEmptySides(t *testing.T) {
	if got := Semijoin(sp(), nil, rows(1)); len(got) != 0 {
		t.Fatal("nil left")
	}
	if got := Semijoin(sp(), rows(1), nil); len(got) != 0 {
		t.Fatal("nil right must eliminate everything")
	}
}

func TestSemijoinProperty(t *testing.T) {
	f := func(l, r []uint8) bool {
		if len(l) > 60 {
			l = l[:60]
		}
		if len(r) > 60 {
			r = r[:60]
		}
		left := make([]table.Row, len(l))
		for i, k := range l {
			left[i] = table.Row{J: uint64(k % 10), D: table.MustData(fmt.Sprintf("L%d", i))}
		}
		right := make([]table.Row, len(r))
		for i, k := range r {
			right[i] = table.Row{J: uint64(k % 10), D: table.MustData(fmt.Sprintf("R%d", i))}
		}
		got := Semijoin(sp(), left, right)
		inRight := map[uint64]bool{}
		for _, x := range right {
			inRight[x.J] = true
		}
		var want []table.Row
		for _, x := range left {
			if inRight[x.J] {
				want = append(want, x)
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].J != want[j].J {
				return want[i].J < want[j].J
			}
			return string(want[i].D[:]) < string(want[j].D[:])
		})
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSemijoinOblivious(t *testing.T) {
	run := func(l, r []uint64) string {
		h := trace.NewHasher()
		s := &core.Config{Alloc: table.PlainAlloc(memory.NewSpace(h, nil))}
		Semijoin(s, rows(l...), rows(r...))
		return h.Hex()
	}
	// n_left=4, n_right=2, k=2 in both runs.
	a := run([]uint64{1, 2, 3, 4}, []uint64{1, 2})
	b := run([]uint64{5, 6, 7, 8}, []uint64{7, 8})
	if a != b {
		t.Fatal("semijoin trace depends on which keys match")
	}
}

func TestSortByKey(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := make([]table.Row, 50)
	for i := range in {
		in[i] = table.Row{J: uint64(rng.Intn(10)), D: table.MustData(fmt.Sprintf("%02d", i))}
	}
	got := SortByKey(sp(), in)
	if len(got) != len(in) {
		t.Fatal("length changed")
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].J > got[i].J {
			t.Fatal("not sorted")
		}
		if got[i-1].J == got[i].J && string(got[i-1].D[:]) > string(got[i].D[:]) {
			t.Fatal("ties not broken by data")
		}
	}
	// Input untouched.
	if in[0].J != uint64(func() int { r := rand.New(rand.NewSource(4)); return r.Intn(10) }()) {
		t.Fatal("input mutated")
	}
}
