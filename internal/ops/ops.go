// Package ops provides the data-oblivious relational operators beyond
// the join: selection (filter), duplicate elimination, set union and
// semijoin. The paper observes (§1) that these "do not pose much of an
// algorithmic challenge in most cases since often one can directly apply
// sorting networks"; this package is that observation made concrete, so
// the repository forms a usable oblivious query-processing toolkit.
//
// Every operator takes the same *core.Config as the join pipeline:
// storage comes from cfg.Alloc (plain or encrypted), sorts run through
// the configured network at the configured parallelism, and the carry
// scans execute on the blocked scan engine — so an operator's recorded
// trace is identical at every parallelism degree and between plain and
// sealed storage.
//
// Every operator's access pattern depends only on its input length and
// its output length; the output length itself is public, exactly as for
// the join (§3.2, "Revealing Output Length").
package ops

import (
	"oblivjoin/internal/compaction"
	"oblivjoin/internal/core"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/table"
)

// Predicate decides, in constant time, whether a row is kept (1) or
// dropped (0). Implementations must be branch-free on row contents —
// use the primitives of internal/obliv. The predicate is evaluated
// exactly once per row, in input order, regardless of its results.
type Predicate func(table.Row) uint64

func load(cfg *core.Config, rows []table.Row) table.Store {
	a := cfg.Alloc(len(rows))
	for i, r := range rows {
		a.Set(i, table.Entry{J: r.J, D: r.D})
	}
	return a
}

func collect(a table.Store, k uint64) []table.Row {
	out := make([]table.Row, k)
	for i := range out {
		e := a.Get(i)
		out[i] = table.Row{J: e.J, D: e.D}
	}
	return out
}

// Filter returns the rows satisfying pred, in input order. The server
// observes the input size, a fixed scan-and-compact pattern, and the
// output size k — not which rows passed.
func Filter(cfg *core.Config, rows []table.Row, pred Predicate) []table.Row {
	a := load(cfg, rows)
	return collect(a, FilterStore(cfg, a, pred))
}

// FilterStore is Filter over an already-loaded store: it nulls the
// failing entries, compacts, and returns the (public) number of
// survivors occupying the store's prefix. The streaming executor loads
// the store batch-wise and drains the prefix batch-wise, so the
// whole-relation slices of the materialized path never exist.
func FilterStore(cfg *core.Config, a table.Store, pred Predicate) uint64 {
	var k uint64
	cfg.ScanStore(a, false, func(_ int, e *table.Entry) {
		keep := pred(table.Row{J: e.J, D: e.D})
		k += keep
		e.Null = obliv.Not(keep)
	})
	compaction.Compact(a, nil)
	return k
}

// Distinct returns the unique rows of the input, sorted by (key, data).
// Duplicates are detected by one branch-free scan over the sorted rows
// and removed by oblivious compaction.
func Distinct(cfg *core.Config, rows []table.Row) []table.Row {
	a := load(cfg, rows)
	return collect(a, DistinctStore(cfg, a))
}

// DistinctStore is Distinct over an already-loaded store; see
// FilterStore for the prefix contract.
func DistinctStore(cfg *core.Config, a table.Store) uint64 {
	cfg.SortStore(a, table.LessJD, cfg.RelationalSortStats())
	var prev table.Entry
	started := uint64(0)
	var k uint64
	cfg.ScanStore(a, false, func(_ int, e *table.Entry) {
		dup := obliv.And(started, obliv.And(
			obliv.Eq(e.J, prev.J), obliv.EqBytes(e.D[:], prev.D[:])))
		e.Null = dup
		k += obliv.Not(dup)
		prev = *e
		started = 1
	})
	compaction.Compact(a, nil)
	return k
}

// Union returns the set union of two tables (duplicates across and
// within inputs removed), sorted by (key, data).
func Union(cfg *core.Config, a, b []table.Row) []table.Row {
	both := make([]table.Row, 0, len(a)+len(b))
	both = append(both, a...)
	both = append(both, b...)
	return Distinct(cfg, both)
}

// Semijoin returns the rows of left whose key appears in right (left ⋉
// right), sorted by (key, data). It is the one-sided membership variant
// of the join: one sort of the tagged concatenation, one scan, one
// compaction — O(n log² n) with no expansion.
func Semijoin(cfg *core.Config, left, right []table.Row) []table.Row {
	n := len(left) + len(right)
	a := cfg.Alloc(n)
	// Right rows get TID 1 so they sort before left rows (TID 2) within
	// a key group; a forward scan then knows, at every left row, whether
	// the group contains a right row.
	for i, r := range right {
		a.Set(i, table.Entry{J: r.J, D: r.D, TID: 1})
	}
	for i, r := range left {
		a.Set(len(right)+i, table.Entry{J: r.J, D: r.D, TID: 2})
	}
	return collect(a, SemijoinStore(cfg, a))
}

// SemijoinStore is the sort-scan-compact body of Semijoin over a store
// already loaded with the tagged concatenation (right rows TID 1 first,
// then left rows TID 2); see FilterStore for the prefix contract.
func SemijoinStore(cfg *core.Config, a table.Store) uint64 {
	// Sort by ⟨j, tid, d⟩: right rows first within each group (so one
	// forward scan knows membership), left rows in data order (so the
	// output order is deterministic).
	lessJTIDD := func(x, y table.Entry) uint64 {
		ltJT := table.LessJTID(x, y)
		eqJT := obliv.And(obliv.Eq(x.J, y.J), obliv.Eq(x.TID, y.TID))
		return obliv.Or(ltJT, obliv.And(eqJT, obliv.LessBytes(x.D[:], y.D[:])))
	}
	cfg.SortStore(a, lessJTIDD, cfg.RelationalSortStats())

	var prevJ, hasRight, k uint64
	started := uint64(0)
	cfg.ScanStore(a, false, func(_ int, e *table.Entry) {
		same := obliv.And(started, obliv.Eq(e.J, prevJ))
		hasRight = obliv.And(same, hasRight)
		isRight := obliv.Eq(e.TID, 1)
		hasRight = obliv.Or(hasRight, isRight)
		keep := obliv.And(obliv.Not(isRight), hasRight)
		e.Null = obliv.Not(keep)
		k += keep
		prevJ = e.J
		started = 1
	})
	compaction.Compact(a, nil)
	return k
}

// SortByKey sorts rows by (key, data) obliviously, in place semantics
// (a new slice is returned; the input is untouched).
func SortByKey(cfg *core.Config, rows []table.Row) []table.Row {
	a := load(cfg, rows)
	return collect(a, SortByKeyStore(cfg, a))
}

// SortByKeyStore sorts an already-loaded store by (key, data) and
// returns its (public) length; the whole store is live output.
func SortByKeyStore(cfg *core.Config, a table.Store) uint64 {
	cfg.SortStore(a, table.LessJD, cfg.RelationalSortStats())
	return uint64(a.Len())
}
