package bitonic

import (
	"sort"
	"testing"
)

type comparator struct {
	i, j int
	dir  uint64
}

func scheduleComparators(n int, gen func(int, func([]Segment))) (all []comparator, rounds int) {
	gen(n, func(segs []Segment) {
		rounds++
		for _, s := range segs {
			for k := 0; k < s.Cnt; k++ {
				all = append(all, comparator{s.Lo + k, s.Lo + s.Hop + k, s.Dir})
			}
		}
	})
	return all, rounds
}

// TestBitonicScheduleComparatorCount pins the round schedule's
// comparator multiset size to the recursive network's analytic count.
func TestBitonicScheduleComparatorCount(t *testing.T) {
	for n := 0; n <= 130; n++ {
		all, _ := scheduleComparators(n, bitonicRounds)
		if got, want := uint64(len(all)), Comparators(n); got != want {
			t.Fatalf("n=%d: schedule has %d comparators, Comparators says %d", n, got, want)
		}
	}
}

// TestScheduleRoundsDisjoint verifies the defining round property: no
// two comparators of one round touch the same index, and every segment
// satisfies Hop ≥ Cnt (disjoint low/high sides, required for batched
// range access) with indices in bounds.
func TestScheduleRoundsDisjoint(t *testing.T) {
	gens := map[string]func(int, func([]Segment)){
		"bitonic":        bitonicRounds,
		"merge-exchange": mergeExchangeRounds,
	}
	for name, gen := range gens {
		for _, n := range []int{2, 3, 7, 8, 16, 33, 100, 127, 128, 129, 257} {
			gen(n, func(segs []Segment) {
				seen := make(map[int]bool)
				for _, s := range segs {
					if s.Hop < s.Cnt {
						t.Fatalf("%s n=%d: segment %+v has Hop < Cnt", name, n, s)
					}
					for k := 0; k < s.Cnt; k++ {
						for _, idx := range []int{s.Lo + k, s.Lo + s.Hop + k} {
							if idx < 0 || idx >= n {
								t.Fatalf("%s n=%d: index %d out of bounds in %+v", name, n, idx, s)
							}
							if seen[idx] {
								t.Fatalf("%s n=%d: index %d touched twice in one round", name, n, idx)
							}
							seen[idx] = true
						}
					}
				}
			})
		}
	}
}

// TestBitonicScheduleDepth checks the O(log² n) depth that motivates
// parallelization: for n a power of two, exactly log n (log n + 1)/2
// rounds.
func TestBitonicScheduleDepth(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64, 1024} {
		log := 0
		for 1<<log < n {
			log++
		}
		_, rounds := scheduleComparators(n, bitonicRounds)
		if want := log * (log + 1) / 2; rounds != want {
			t.Fatalf("n=%d: %d rounds, want %d", n, rounds, want)
		}
	}
}

// TestMergeExchangeScheduleMatchesSequential verifies the round
// decomposition of Algorithm M preserves the classic pass structure:
// same comparators, same cross-round order as the reference loop.
func TestMergeExchangeScheduleMatchesSequential(t *testing.T) {
	for _, n := range []int{2, 3, 7, 16, 25, 64, 100} {
		var want []comparator
		tt := 0
		for 1<<tt < n {
			tt++
		}
		for p := 1 << (tt - 1); p > 0; p >>= 1 {
			q := 1 << (tt - 1)
			r := 0
			d := p
			for {
				for i := 0; i < n-d; i++ {
					if i&p == r {
						want = append(want, comparator{i, i + d, 1})
					}
				}
				if q == p {
					break
				}
				d = q - p
				q >>= 1
				r = p
			}
		}
		got, _ := scheduleComparators(n, mergeExchangeRounds)
		if len(got) != len(want) {
			t.Fatalf("n=%d: %d comparators, want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: comparator %d = %+v, want %+v", n, i, got[i], want[i])
			}
		}
	}
}

// TestBitonicScheduleIsSortingNetwork applies the 0-1 principle on
// small lengths: a comparator network sorts all inputs iff it sorts all
// 2^n boolean inputs.
func TestBitonicScheduleIsSortingNetwork(t *testing.T) {
	for n := 1; n <= 12; n++ {
		all, _ := scheduleComparators(n, bitonicRounds)
		for mask := 0; mask < 1<<n; mask++ {
			v := make([]int, n)
			for i := range v {
				v[i] = (mask >> i) & 1
			}
			for _, c := range all {
				if (c.dir == 1 && v[c.i] > v[c.j]) || (c.dir == 0 && v[c.i] < v[c.j]) {
					v[c.i], v[c.j] = v[c.j], v[c.i]
				}
			}
			if !sort.IntsAreSorted(v) {
				t.Fatalf("n=%d: schedule fails on mask %b", n, mask)
			}
		}
	}
}
