package bitonic

// This file materializes the sorting networks as iterative round
// schedules. A Segment is a contiguous run of comparators sharing one
// hop distance and direction; a round is a vector of segments whose
// comparator pairs are mutually disjoint, so every comparator of a
// round may execute concurrently (and in any order) without changing
// the result. The schedule is a pure function of the input length n —
// the defining property of a sorting network — which is what makes the
// canonical round-ordered memory trace reproducible across sequential
// and parallel executions.

// Segment describes the comparator run (Lo+k, Lo+k+Hop) for
// k ∈ [0, Cnt), all ordering towards Dir (1 = ascending). The
// constructions in this file guarantee Hop ≥ Cnt, so the low sides
// [Lo, Lo+Cnt) and the high sides [Lo+Hop, Lo+Hop+Cnt) of a segment
// are disjoint index ranges — which is what lets the executor read and
// write each side as one batched range.
type Segment struct {
	Lo, Cnt, Hop int
	Dir          uint64
}

// span is a subrange of the input together with its sort direction.
type span struct {
	lo, n int
	dir   uint64
}

// bitonicRounds emits the bitonic sorting network for length n as a
// sequence of rounds, calling round once per round with the segments in
// canonical (ascending Lo) order. The slice is reused between calls.
//
// The recursion sort(lo,n,dir) = {sort(left), sort(right)} ; merge is
// scheduled breadth-first: the two half-sorts of every node at one
// depth of the recursion tree operate on disjoint ranges, so their
// merges run round-synchronously, deepest level first. Each merge
// itself emits one segment per round per active submerge. The
// comparator multiset is exactly that of the recursive network
// (Comparators(n) counts it), only the order is the round order.
func bitonicRounds(n int, round func([]Segment)) {
	if n <= 1 {
		return
	}
	// Build the sort-recursion tree level by level. levels[d] holds the
	// nodes at depth d in ascending lo order.
	levels := [][]span{{{lo: 0, n: n, dir: 1}}}
	for {
		last := levels[len(levels)-1]
		var next []span
		for _, t := range last {
			if t.n <= 1 {
				continue
			}
			m := t.n / 2
			next = append(next, span{t.lo, m, t.dir ^ 1}, span{t.lo + m, t.n - m, t.dir})
		}
		if len(next) == 0 {
			break
		}
		levels = append(levels, next)
	}
	// A node's merge runs after its children's sorts complete, so the
	// merges execute from the deepest level up. All merges of one level
	// cover disjoint ranges and advance round-by-round together.
	var segs []Segment
	active := make([]span, 0, n)
	next := make([]span, 0, n)
	for d := len(levels) - 1; d >= 0; d-- {
		active = active[:0]
		for _, t := range levels[d] {
			if t.n > 1 {
				active = append(active, t)
			}
		}
		for len(active) > 0 {
			segs = segs[:0]
			next = next[:0]
			for _, t := range active {
				m := greatestPowerOfTwoLessThan(t.n)
				segs = append(segs, Segment{Lo: t.lo, Cnt: t.n - m, Hop: m, Dir: t.dir})
				if m > 1 {
					next = append(next, span{t.lo, m, t.dir})
				}
				if t.n-m > 1 {
					next = append(next, span{t.lo + m, t.n - m, t.dir})
				}
			}
			round(segs)
			active, next = next, active
		}
	}
}

// mergeExchangeRounds emits Batcher's merge-exchange network (Knuth
// 5.2.2M) as rounds: each (p, q, r, d) pass of the algorithm is one
// round — its comparator pairs (i, i+d) with i&p == r are mutually
// disjoint — expressed as the maximal runs of consecutive i sharing
// that residue. The comparator multiset and the order across rounds
// match the classic sequential formulation exactly.
func mergeExchangeRounds(n int, round func([]Segment)) {
	if n <= 1 {
		return
	}
	t := 0
	for 1<<t < n {
		t++
	}
	var segs []Segment
	for p := 1 << (t - 1); p > 0; p >>= 1 {
		q := 1 << (t - 1)
		r := 0
		d := p
		for {
			segs = segs[:0]
			// {i : i&p == r, 0 ≤ i < n-d} is a union of runs of length ≤ p
			// starting at multiples of 2p offset by r.
			for base := r; base < n-d; base += 2 * p {
				cnt := p
				if base+cnt > n-d {
					cnt = n - d - base
				}
				segs = append(segs, Segment{Lo: base, Cnt: cnt, Hop: d, Dir: 1})
			}
			if len(segs) > 0 {
				round(segs)
			}
			if q == p {
				break
			}
			d = q - p
			q >>= 1
			r = p
		}
	}
}
