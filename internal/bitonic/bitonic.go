// Package bitonic implements data-oblivious sorting networks.
//
// The primary network is Batcher's bitonic sorter (§3.5 of the paper),
// generalized to arbitrary input lengths with the standard recursive
// construction: the comparator schedule depends only on the input length
// n, never on the data. Every compare–exchange reads both elements,
// conditionally swaps them without branching, and writes both back, so
// the public memory trace is a fixed function of n.
//
// Batcher's merge-exchange sort (Knuth 5.2.2M, the odd-even network) is
// provided as an alternative with fewer comparators; the repository's
// ablation benchmarks compare the two.
//
// Comparators are supplied by the caller as branch-free Less functions
// returning 0/1 words (see internal/obliv and internal/table); the
// conditional swap is likewise supplied so element types control their
// own constant-time swapping.
package bitonic

import (
	"oblivjoin/internal/memory"
	"oblivjoin/internal/obliv"
)

// Array is the storage a sorting network operates on: indexed element
// access with public indices. *memory.Array[T] implements it directly;
// encrypted stores (internal/table) implement it with transparent
// re-encryption on every write.
type Array[T any] interface {
	Len() int
	Get(i int) T
	Set(i int, v T)
}

// LessFunc reports, in constant time, whether x orders strictly before y:
// it must return 1 or 0 and must not branch on its arguments.
type LessFunc[T any] func(x, y T) uint64

// CondSwapFunc swaps x and y in constant time when c == 1 and must touch
// both regardless of c.
type CondSwapFunc[T any] func(c uint64, x, y *T)

// Stats accumulates comparator counts across sorts; pass nil to skip
// counting. The counts feed the comparison columns of Table 3. Counts
// are accumulated deterministically at round barriers (a round's
// comparator total is a function of the schedule, not of execution
// interleaving), so they are exact under parallel execution too.
type Stats struct {
	CompareExchanges uint64
}

// Sort sorts a ascending by less using the bitonic network, executing
// the round schedule sequentially. It performs O(n log² n)
// compare–exchanges with a schedule depending only on a.Len().
func Sort[T any](a Array[T], less LessFunc[T], swap CondSwapFunc[T], st *Stats) {
	SortParallel(a, less, swap, st, 1)
}

// compareExchangeOp builds the PairOp of a sorting network: order the
// pair towards dir, touching both elements regardless.
func compareExchangeOp[T any](less LessFunc[T], swap CondSwapFunc[T]) PairOp[T] {
	return func(_, _ int, dir uint64, x, y *T) {
		// Ascending (dir=1): out of order when y < x.
		// Descending (dir=0): out of order when x < y.
		c := obliv.Select(dir, less(*y, *x), less(*x, *y))
		swap(c, x, y)
	}
}

// SortSlice sorts a plain slice through a throwaway untraced space; a
// convenience for callers that need oblivious ordering semantics without
// trace plumbing.
func SortSlice[T any](data []T, less LessFunc[T], swap CondSwapFunc[T], st *Stats) {
	sp := memory.NewSpace(nil, nil)
	Sort(memory.FromSlice(sp, data, 1), less, swap, st)
}

func greatestPowerOfTwoLessThan(n int) int {
	k := 1
	for k < n {
		k <<= 1
	}
	return k >> 1
}

// MergeExchangeSort sorts a ascending using Batcher's merge-exchange
// network (Knuth, TAOCP 5.2.2, Algorithm M), executing its round
// schedule sequentially. It performs roughly half the
// compare–exchanges of the bitonic network and is likewise
// data-independent for a fixed length; its rounds are less regular
// than the bitonic network's, which is why the paper's implementation
// (and ours) defaults to bitonic.
func MergeExchangeSort[T any](a Array[T], less LessFunc[T], swap CondSwapFunc[T], st *Stats) {
	MergeExchangeSortParallel(a, less, swap, st, 1)
}

// MergeExchangeComparators returns the exact number of
// compare–exchanges Batcher's merge-exchange network performs on an
// input of length n, by enumerating the same round schedule the
// executor runs. Together with Comparators this gives the planner an
// exact, content-independent cost model for either network.
func MergeExchangeComparators(n int) uint64 {
	var c uint64
	mergeExchangeRounds(n, func(segs []Segment) {
		for _, s := range segs {
			c += uint64(s.Cnt)
		}
	})
	return c
}

// Comparators returns the exact number of compare–exchanges the bitonic
// network performs on an input of length n; useful for cross-checking
// Table 3's analytic counts without running a sort.
func Comparators(n int) uint64 {
	var c uint64
	var sort func(n int)
	var merge func(n int)
	merge = func(n int) {
		if n <= 1 {
			return
		}
		m := greatestPowerOfTwoLessThan(n)
		c += uint64(n - m)
		merge(m)
		merge(n - m)
	}
	sort = func(n int) {
		if n <= 1 {
			return
		}
		m := n / 2
		sort(m)
		sort(n - m)
		merge(n)
	}
	sort(n)
	return c
}
