package bitonic

import (
	"math/rand"
	"testing"

	"oblivjoin/internal/memory"
	"oblivjoin/internal/trace"
)

// equivalenceLengths covers the degenerate, odd, power-of-two and
// just-off-power-of-two cases of the schedule.
var equivalenceLengths = []int{0, 1, 2, 3, 7, 8, 100, 127, 128, 129, 1000, 4096, 5000}

func TestSortParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sp := memory.NewSpace(nil, nil)
	for _, n := range equivalenceLengths {
		for _, workers := range []int{2, 3, 8} {
			seq := make([]uint64, n)
			for i := range seq {
				seq[i] = uint64(rng.Intn(1000))
			}
			par := append([]uint64(nil), seq...)
			Sort(memory.FromSlice(sp, seq, 8), lessU64, swapU64, nil)
			SortParallel(memory.FromSlice(sp, par, 8), lessU64, swapU64, nil, workers)
			if !equal(seq, par) {
				t.Fatalf("n=%d workers=%d: parallel result differs from sequential", n, workers)
			}
		}
	}
}

func TestMergeExchangeParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	sp := memory.NewSpace(nil, nil)
	for _, n := range equivalenceLengths {
		seq := make([]uint64, n)
		for i := range seq {
			seq[i] = uint64(rng.Intn(1000))
		}
		par := append([]uint64(nil), seq...)
		MergeExchangeSort(memory.FromSlice(sp, seq, 8), lessU64, swapU64, nil)
		MergeExchangeSortParallel(memory.FromSlice(sp, par, 8), lessU64, swapU64, nil, 4)
		if !equal(seq, par) {
			t.Fatalf("n=%d: parallel merge-exchange differs from sequential", n)
		}
	}
}

// TestSortParallelComparatorCount checks that the parallel round
// schedule performs exactly Comparators(n) compare–exchanges, the same
// count the sequential network reports.
func TestSortParallelComparatorCount(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	for _, n := range equivalenceLengths {
		var seqSt, parSt Stats
		data := make([]uint64, n)
		Sort(memory.FromSlice(sp, data, 8), lessU64, swapU64, &seqSt)
		SortParallel(memory.FromSlice(sp, data, 8), lessU64, swapU64, &parSt, 4)
		if want := Comparators(n); seqSt.CompareExchanges != want || parSt.CompareExchanges != want {
			t.Fatalf("n=%d: sequential=%d parallel=%d, Comparators says %d",
				n, seqSt.CompareExchanges, parSt.CompareExchanges, want)
		}
	}
}

// TestSortParallelCanonicalTrace is the tentpole determinism property:
// the canonical trace of a parallel round-scheduled sort — lane shards
// merged at round barriers — is bit-identical to the sequential trace,
// for both the streaming hash and an exact event log.
func TestSortParallelCanonicalTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, n := range equivalenceLengths {
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = rng.Uint64()
		}
		run := func(workers int) (string, uint64) {
			h := trace.NewHasher()
			sp := memory.NewSpace(h, nil)
			data := append([]uint64(nil), vals...)
			SortParallel(memory.FromSlice(sp, data, 8), lessU64, swapU64, nil, workers)
			return h.Hex(), h.Count()
		}
		seqHash, seqCount := run(1)
		for _, workers := range []int{2, 4, 8} {
			parHash, parCount := run(workers)
			if parCount != seqCount {
				t.Fatalf("n=%d workers=%d: %d events, sequential has %d", n, workers, parCount, seqCount)
			}
			if parHash != seqHash {
				t.Fatalf("n=%d workers=%d: canonical trace hash differs from sequential", n, workers)
			}
		}
	}
}

func TestSortParallelExactLogMatchesSequential(t *testing.T) {
	const n = 257 // odd, straddles several chunk cuts of the late rounds
	run := func(workers int) *trace.Log {
		log := trace.NewLog()
		sp := memory.NewSpace(log, nil)
		data := make([]uint64, n)
		for i := range data {
			data[i] = uint64((i * 2654435761) % 1009)
		}
		SortParallel(memory.FromSlice(sp, data, 8), lessU64, swapU64, nil, workers)
		return log
	}
	seq := run(1)
	par := run(4)
	if !seq.Equal(par) {
		t.Fatalf("exact logs diverge at event %d of %d/%d",
			seq.FirstDivergence(par), seq.Len(), par.Len())
	}
}

func TestMergeExchangeParallelCanonicalTrace(t *testing.T) {
	for _, n := range []int{25, 128, 1000} {
		run := func(workers int) string {
			h := trace.NewHasher()
			sp := memory.NewSpace(h, nil)
			data := make([]uint64, n)
			for i := range data {
				data[i] = uint64(i * 7 % 31)
			}
			MergeExchangeSortParallel(memory.FromSlice(sp, data, 8), lessU64, swapU64, nil, workers)
			return h.Hex()
		}
		if run(1) != run(4) {
			t.Fatalf("n=%d: merge-exchange parallel trace differs from sequential", n)
		}
	}
}

func TestSortParallelStress(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	sp := memory.NewSpace(nil, nil)
	n := 64 * 1024
	data := make([]uint64, n)
	for i := range data {
		data[i] = rng.Uint64()
	}
	want := sortedCopy(data)
	SortParallel(memory.FromSlice(sp, data, 8), lessU64, swapU64, nil, 0)
	if !equal(data, want) {
		t.Fatal("parallel sort produced wrong order")
	}
}

func BenchmarkBitonicParallel64k(b *testing.B) {
	benchSort(b, 64*1024, func(a *memory.Array[uint64]) {
		SortParallel[uint64](a, lessU64, swapU64, nil, 0)
	})
}

func BenchmarkBitonicParallel256k(b *testing.B) {
	benchSort(b, 256*1024, func(a *memory.Array[uint64]) {
		SortParallel[uint64](a, lessU64, swapU64, nil, 0)
	})
}

func BenchmarkBitonicSequential256k(b *testing.B) {
	benchSort(b, 256*1024, func(a *memory.Array[uint64]) {
		Sort[uint64](a, lessU64, swapU64, nil)
	})
}
