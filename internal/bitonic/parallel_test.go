package bitonic

import (
	"math/rand"
	"testing"

	"oblivjoin/internal/memory"
)

func TestSortParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sp := memory.NewSpace(nil, nil)
	for _, n := range []int{0, 1, 100, 1000, 5000, 8192} {
		seq := make([]uint64, n)
		for i := range seq {
			seq[i] = uint64(rng.Intn(1000))
		}
		par := append([]uint64(nil), seq...)
		Sort(memory.FromSlice(sp, seq, 8), lessU64, swapU64, nil)
		SortParallel(memory.FromSlice(sp, par, 8), lessU64, swapU64)
		if !equal(seq, par) {
			t.Fatalf("n=%d: parallel result differs from sequential", n)
		}
	}
}

func TestSortParallelStress(t *testing.T) {
	// Large enough to actually fan out across goroutines (grain 1024).
	rng := rand.New(rand.NewSource(23))
	sp := memory.NewSpace(nil, nil)
	n := 64 * 1024
	data := make([]uint64, n)
	for i := range data {
		data[i] = rng.Uint64()
	}
	want := sortedCopy(data)
	SortParallel(memory.FromSlice(sp, data, 8), lessU64, swapU64)
	if !equal(data, want) {
		t.Fatal("parallel sort produced wrong order")
	}
}

func BenchmarkBitonicParallel64k(b *testing.B) {
	benchSort(b, 64*1024, func(a *memory.Array[uint64]) {
		SortParallel[uint64](a, lessU64, swapU64)
	})
}

func BenchmarkBitonicParallel256k(b *testing.B) {
	benchSort(b, 256*1024, func(a *memory.Array[uint64]) {
		SortParallel[uint64](a, lessU64, swapU64)
	})
}

func BenchmarkBitonicSequential256k(b *testing.B) {
	benchSort(b, 256*1024, func(a *memory.Array[uint64]) {
		Sort[uint64](a, lessU64, swapU64, nil)
	})
}
