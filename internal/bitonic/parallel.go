package bitonic

import (
	"runtime"
	"sync"
)

// SortParallel sorts a ascending using the bitonic network with the
// recursive halves executed on separate goroutines. The two recursive
// sorts (and the two recursive merges) operate on disjoint index ranges,
// so they are data-race-free by construction — the parallel and
// sequential networks perform exactly the same compare–exchanges, just
// interleaved differently in time.
//
// The paper points out that "almost all parts of our algorithm are
// amenable to parallelization since they heavily rely on sorting
// networks, whose depth is O(log² n)"; this function is that claim for
// the sorting phases.
//
// Concurrency caveat: the Array's trace recorder and cost model are not
// synchronized, so SortParallel must only be used with untraced spaces
// (nil recorder, nil cost model). The obliviousness property concerns
// the *set and order per location* of accesses, which is unchanged; a
// per-goroutine interleaved global trace is no longer a deterministic
// function of n, which is why the instrumented experiments use the
// sequential sorter.
func SortParallel[T any](a Array[T], less LessFunc[T], swap CondSwapFunc[T]) {
	s := sorter[T]{a: a, less: less, swap: swap}
	grain := a.Len() / (runtime.GOMAXPROCS(0) * 4)
	if grain < 1024 {
		grain = 1024
	}
	s.sortPar(0, a.Len(), 1, grain)
}

func (s *sorter[T]) sortPar(lo, n int, dir uint64, grain int) {
	if n <= 1 {
		return
	}
	if n <= grain {
		s.sort(lo, n, dir)
		return
	}
	m := n / 2
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.sortPar(lo, m, dir^1, grain)
	}()
	s.sortPar(lo+m, n-m, dir, grain)
	wg.Wait()
	s.mergePar(lo, n, dir, grain)
}

func (s *sorter[T]) mergePar(lo, n int, dir uint64, grain int) {
	if n <= 1 {
		return
	}
	if n <= grain {
		s.merge(lo, n, dir)
		return
	}
	m := greatestPowerOfTwoLessThan(n)
	for i := lo; i < lo+n-m; i++ {
		s.compareExchange(i, i+m, dir)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.mergePar(lo, m, dir, grain)
	}()
	s.mergePar(lo+m, n-m, dir, grain)
	wg.Wait()
}
