package bitonic

// SortParallel sorts a ascending using the bitonic network's round
// schedule executed across up to workers lanes of a persistent shared
// worker pool (workers ≤ 0 means GOMAXPROCS, 1 means sequential). Each
// round is a vector of disjoint comparator segments — a pure function
// of a.Len() — partitioned contiguously across the lanes, with a
// barrier between rounds, so the parallel network performs exactly the
// same compare–exchanges as the sequential one.
//
// The paper points out that "almost all parts of our algorithm are
// amenable to parallelization since they heavily rely on sorting
// networks, whose depth is O(log² n)"; this function is that claim for
// the sorting phases.
//
// Instrumentation is parallel-safe: comparator counts accumulate
// deterministically at round barriers, and when the store records a
// trace (and implements Sharder), each lane records into a private
// trace.Buffer that is replayed into the store's recorder in canonical
// lane order at every barrier — the recorded trace is bit-identical to
// a sequential run's. Stores that cannot be sharded (no Sharder
// implementation, or an enclave cost model attached) degrade to
// sequential execution over the same schedule, preserving the trace.
func SortParallel[T any](a Array[T], less LessFunc[T], swap CondSwapFunc[T], st *Stats, workers int) {
	SortParallelCheck(a, less, swap, st, workers, nil)
}

// SortParallelCheck is SortParallel with a cancellation probe invoked
// at round barriers (see RunRoundsCheck); check may be nil.
func SortParallelCheck[T any](a Array[T], less LessFunc[T], swap CondSwapFunc[T], st *Stats, workers int, check func()) {
	n := a.Len()
	if n <= 1 {
		return
	}
	c := RunRoundsCheck(a, compareExchangeOp(less, swap), workers, check, func(round func([]Segment)) {
		bitonicRounds(n, round)
	})
	if st != nil {
		st.CompareExchanges += c
	}
}

// MergeExchangeSortParallel is MergeExchangeSort executed across up to
// workers lanes, with the same determinism guarantees as SortParallel:
// identical comparator set, identical canonical trace. Its rounds are
// the (p, q, r, d) passes of Knuth's Algorithm M, which are fewer but
// less uniform than the bitonic rounds.
func MergeExchangeSortParallel[T any](a Array[T], less LessFunc[T], swap CondSwapFunc[T], st *Stats, workers int) {
	MergeExchangeSortParallelCheck(a, less, swap, st, workers, nil)
}

// MergeExchangeSortParallelCheck is MergeExchangeSortParallel with a
// cancellation probe invoked at round barriers; check may be nil.
func MergeExchangeSortParallelCheck[T any](a Array[T], less LessFunc[T], swap CondSwapFunc[T], st *Stats, workers int, check func()) {
	n := a.Len()
	if n <= 1 {
		return
	}
	c := RunRoundsCheck(a, compareExchangeOp(less, swap), workers, check, func(round func([]Segment)) {
		mergeExchangeRounds(n, round)
	})
	if st != nil {
		st.CompareExchanges += c
	}
}
