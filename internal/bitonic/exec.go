package bitonic

import (
	"runtime"
	"sync"

	"oblivjoin/internal/trace"
)

// RangeArray is an optional Array extension: batched contiguous reads
// and writes. Implementations must emit exactly the per-element events
// of the equivalent Get/Set loop, in ascending index order, with the
// whole range handled in one dynamic dispatch. *memory.Array[T],
// *table.Encrypted and the windowed views of internal/core implement
// it.
type RangeArray[T any] interface {
	Array[T]
	GetRange(lo int, dst []T)
	SetRange(lo int, src []T)
}

// Sharder is an optional Array extension that makes concurrent access
// safe and deterministically traceable. Shard returns an alias of the
// array (same identifier, same backing storage) whose accesses are
// recorded to rec instead of the parent's recorder; the result is
// asserted back to Array[T] by the executor (the untyped return keeps
// storage packages decoupled from this one). Shard returns nil when the
// array cannot be accessed concurrently — e.g. an enclave cost model is
// attached, whose paging simulation is order-dependent — in which case
// the executor degrades to sequential execution over the same schedule,
// preserving the canonical trace.
type Sharder interface {
	Traced() bool
	Recorder() trace.Recorder
	Shard(rec trace.Recorder) any
}

// PairOp is the branch-free operation applied to one comparator pair:
// element x at index i, element y at index j = i+hop, ordering towards
// dir. It must touch both elements regardless of their values.
type PairOp[T any] func(i, j int, dir uint64, x, y *T)

// chunkSize is the number of comparators one batched block processes:
// the unit of GetRange/SetRange batching and therefore of the canonical
// trace's run structure. It is a fixed constant — never derived from
// the worker count — so the recorded trace is identical for every
// degree of parallelism.
const chunkSize = 512

// spanChunk is the entry capacity of one coalesced span chunk (see
// runRound): adjacent dense segments are grouped until their combined
// footprint reaches this many entries. Like chunkSize it is a fixed
// constant, so the chunk cut — and with it the canonical trace — is a
// pure function of the round.
const spanChunk = 2 * chunkSize

// workerPool is the persistent process-wide pool that executes round
// partitions. Workers are started once, sized to GOMAXPROCS, and live
// for the life of the process; individual sorts only borrow them.
type workerPool struct {
	jobs chan func()
}

var (
	poolOnce sync.Once
	gPool    *workerPool
)

func sharedPool() *workerPool {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		p := &workerPool{jobs: make(chan func(), 4*n)}
		for i := 0; i < n; i++ {
			go func() {
				for f := range p.jobs {
					f()
				}
			}()
		}
		gPool = p
	})
	return gPool
}

// do runs every fn to completion before returning. fns[0] runs on the
// calling goroutine; the rest go to pool workers, falling back to
// inline execution when the pool is saturated so progress never waits
// on a busy worker.
//
// A panic in any fn (a sealed-block auth failure or spill IO fault on
// a parallel lane) is captured, every other fn still runs to the
// barrier, and the first panic value is then re-raised on the calling
// goroutine: no pool worker ever dies with an unrecovered panic taking
// the process down, and the store is never left with lanes still
// writing while the caller unwinds.
func (p *workerPool) do(fns []func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var (
		wg    sync.WaitGroup
		pmu   sync.Mutex
		pval  any
		pseen bool
	)
	guard := func(f func()) {
		defer func() {
			if r := recover(); r != nil {
				pmu.Lock()
				if !pseen {
					pval, pseen = r, true
				}
				pmu.Unlock()
			}
		}()
		f()
	}
	wg.Add(len(fns) - 1)
	for _, f := range fns[1:] {
		task := func() {
			defer wg.Done()
			guard(f)
		}
		select {
		case p.jobs <- task:
		default:
			task()
		}
	}
	guard(fns[0])
	wg.Wait()
	if pseen {
		panic(pval)
	}
}

// chunk is one canonically-cut unit of a round, in one of two forms.
//
// Pair form (span == nil): one block of a single segment's comparators
// (seg.Lo+off+k, seg.Lo+seg.Hop+off+k) for k ∈ [0, cnt), executed as
// two batched ranges (the low sides and the high sides).
//
// Span form (span != nil): a run of adjacent dense segments — each with
// Cnt == Hop, tiling the contiguous entry range [lo, lo+n) with no gap
// — executed as ONE batched range read, the compare–exchanges in local
// memory, and one batched range write. This is what keeps small-hop
// rounds batch-granular: without it a hop-h round decomposes into
// h-entry ranges, which defeats range batching (and block-sealed
// storage) exactly in the rounds that dominate the network.
type chunk struct {
	span     []Segment // span form: adjacent dense segments
	lo, n    int       // span form: covered entry range [lo, lo+n)
	seg      Segment   // pair form
	off, cnt int
}

// comparators returns the number of compare–exchanges the chunk holds.
func (c chunk) comparators() int {
	if c.span == nil {
		return c.cnt
	}
	return c.n / 2
}

// lane is one worker's execution context: a shard alias of the store, a
// private event buffer replayed at round barriers, and reusable value
// blocks for batched compare–exchange.
type lane[T any] struct {
	arr        Array[T]
	rng        RangeArray[T] // arr as RangeArray, or nil
	buf        *trace.Buffer // nil when the store is untraced
	bufX, bufY []T           // pair-form blocks (chunkSize each)
	bufS       []T           // span-form block (spanChunk)
}

// roundExec executes rounds of disjoint comparator segments over one
// store. With workers == 1 it runs each chunk directly against the
// store, in canonical order. With workers > 1 it partitions each
// round's chunk list into contiguous spans, one per lane, runs the
// spans on the shared pool, and replays the lanes' event buffers into
// the store's recorder in lane order at the round barrier — which
// reproduces exactly the sequential canonical trace.
type roundExec[T any] struct {
	op      PairOp[T]
	workers int
	check   func()    // cancellation probe; nil = never cancelled
	seq     lane[T]   // direct-access lane for sequential execution
	lanes   []lane[T] // shard lanes, parallel mode only
	rec     trace.Recorder
	chunks  []chunk
	count   uint64 // comparators executed
}

func newRoundExec[T any](a Array[T], op PairOp[T], workers int, check func()) *roundExec[T] {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	ex := &roundExec[T]{op: op, workers: workers, check: check}
	baseRng, _ := a.(RangeArray[T])
	ex.seq = lane[T]{arr: a, rng: baseRng}
	if workers > 1 {
		ex.lanes = makeLanes(a, baseRng != nil, workers)
		if ex.lanes == nil {
			ex.workers = 1
		} else if ex.lanes[0].buf != nil {
			ex.rec = a.(Sharder).Recorder()
		}
	}
	// The direct lane also serves single-chunk rounds in parallel mode,
	// so it always needs its value blocks.
	ex.seq.bufX = make([]T, chunkSize)
	ex.seq.bufY = make([]T, chunkSize)
	ex.seq.bufS = make([]T, spanChunk)
	return ex
}

// makeLanes builds one shard lane per worker, or returns nil when the
// store cannot support concurrent execution (no Sharder, shard refused,
// or shards missing the range capability the base store has — which
// would change the canonical trace's run structure).
func makeLanes[T any](a Array[T], wantRange bool, workers int) []lane[T] {
	sh, ok := a.(Sharder)
	if !ok {
		return nil
	}
	traced := sh.Traced()
	lanes := make([]lane[T], workers)
	for w := range lanes {
		var buf *trace.Buffer
		var rec trace.Recorder
		if traced {
			buf = &trace.Buffer{}
			rec = buf
		}
		res := sh.Shard(rec)
		if res == nil {
			return nil
		}
		arr, ok := res.(Array[T])
		if !ok {
			return nil
		}
		rng, hasRange := arr.(RangeArray[T])
		if wantRange && !hasRange {
			return nil
		}
		if !wantRange {
			rng = nil
		}
		lanes[w] = lane[T]{
			arr: arr, rng: rng, buf: buf,
			bufX: make([]T, chunkSize), bufY: make([]T, chunkSize),
			bufS: make([]T, spanChunk),
		}
	}
	return lanes
}

// runRound executes one round of disjoint segments. The cancellation
// probe runs on the scheduling goroutine only — at the round barrier
// in parallel mode, and between chunks in sequential mode — so an
// abort (the probe panics) never unwinds a pool worker and never
// interrupts a store access mid-flight.
func (ex *roundExec[T]) runRound(segs []Segment) {
	if ex.check != nil {
		ex.check()
	}
	// Cut segments into canonical chunks; the cut depends only on the
	// round, never on the worker count. Runs of adjacent dense
	// segments (Cnt == Hop, no coverage gap, footprint ≤ spanChunk
	// entries) coalesce into span chunks; everything else becomes
	// pair chunks of at most chunkSize comparators.
	ex.chunks = ex.chunks[:0]
	total := 0
	for i := 0; i < len(segs); {
		s := segs[i]
		total += s.Cnt
		if s.Cnt != s.Hop || 2*s.Cnt > spanChunk {
			for off := 0; off < s.Cnt; off += chunkSize {
				cnt := s.Cnt - off
				if cnt > chunkSize {
					cnt = chunkSize
				}
				ex.chunks = append(ex.chunks, chunk{seg: s, off: off, cnt: cnt})
			}
			i++
			continue
		}
		// Greedily extend the span while the next segment is dense,
		// exactly adjacent, and fits the fixed capacity.
		j, end := i+1, s.Lo+2*s.Cnt
		for j < len(segs) {
			t := segs[j]
			if t.Cnt != t.Hop || t.Lo != end || end+2*t.Cnt-s.Lo > spanChunk {
				break
			}
			total += t.Cnt
			end += 2 * t.Cnt
			j++
		}
		ex.chunks = append(ex.chunks, chunk{span: segs[i:j:j], lo: s.Lo, n: end - s.Lo})
		i = j
	}
	ex.count += uint64(total)
	if total == 0 {
		return
	}
	if ex.workers == 1 || len(ex.chunks) == 1 {
		for i, c := range ex.chunks {
			// Sequential rounds can be long (one round of a 64k sort is
			// tens of thousands of comparators); probing per chunk keeps
			// the cancellation latency at one chunk instead of one round.
			if ex.check != nil && i > 0 {
				ex.check()
			}
			ex.seq.runChunk(ex.op, c)
		}
		return
	}

	// Partition the chunk list into contiguous spans balanced by
	// comparator count, one span per lane, preserving canonical order.
	nw := ex.workers
	if nw > len(ex.chunks) {
		nw = len(ex.chunks)
	}
	target := (total + nw - 1) / nw
	fns := make([]func(), 0, nw)
	start, load, used := 0, 0, 0
	for i, c := range ex.chunks {
		load += c.comparators()
		// Cut when the span reached its target, keeping enough chunks
		// for the remaining lanes.
		if load >= target || len(ex.chunks)-i-1 == nw-used-1 {
			ln, lo, hi := &ex.lanes[used], start, i+1
			fns = append(fns, func() {
				for _, c := range ex.chunks[lo:hi] {
					ln.runChunk(ex.op, c)
				}
			})
			start, load = i+1, 0
			used++
			if used == nw {
				break
			}
		}
	}
	sharedPool().do(fns)
	// Round barrier: merge the lanes' event shards in canonical order.
	if ex.rec != nil {
		for i := range ex.lanes[:used] {
			ex.lanes[i].buf.ReplayTo(ex.rec)
		}
	}
}

// runChunk applies the op to every comparator of one chunk, batching
// the store accesses when the store supports ranges. The emitted event
// pattern — R-run(span), W-run(span) for span chunks; R-run(low side),
// R-run(high side), W-run(low side), W-run(high side) for pair chunks;
// or the interleaved per-pair pattern on stores without range support —
// is a function of the chunk alone.
func (l *lane[T]) runChunk(op PairOp[T], c chunk) {
	if c.span != nil {
		l.runSpan(op, c)
		return
	}
	loX := c.seg.Lo + c.off
	loY := loX + c.seg.Hop
	if l.rng != nil {
		x, y := l.bufX[:c.cnt], l.bufY[:c.cnt]
		l.rng.GetRange(loX, x)
		l.rng.GetRange(loY, y)
		for k := 0; k < c.cnt; k++ {
			op(loX+k, loY+k, c.seg.Dir, &x[k], &y[k])
		}
		l.rng.SetRange(loX, x)
		l.rng.SetRange(loY, y)
		return
	}
	for k := 0; k < c.cnt; k++ {
		i, j := loX+k, loY+k
		x, y := l.arr.Get(i), l.arr.Get(j)
		op(i, j, c.seg.Dir, &x, &y)
		l.arr.Set(i, x)
		l.arr.Set(j, y)
	}
}

// runSpan executes a span chunk: one contiguous read of the covered
// entry range, every segment's compare–exchanges in local memory, one
// contiguous write back.
func (l *lane[T]) runSpan(op PairOp[T], c chunk) {
	buf := l.bufS[:c.n]
	if l.rng != nil {
		l.rng.GetRange(c.lo, buf)
	} else {
		for k := range buf {
			buf[k] = l.arr.Get(c.lo + k)
		}
	}
	for _, s := range c.span {
		base := s.Lo - c.lo
		for k := 0; k < s.Cnt; k++ {
			op(s.Lo+k, s.Lo+s.Hop+k, s.Dir, &buf[base+k], &buf[base+s.Hop+k])
		}
	}
	if l.rng != nil {
		l.rng.SetRange(c.lo, buf)
	} else {
		for k := range buf {
			l.arr.Set(c.lo+k, buf[k])
		}
	}
}

// RunTasks runs every fn to completion on the shared persistent pool
// (fns[0] on the calling goroutine). It is the raw fork–join primitive
// behind RunRounds, exported for the blocked parallel scans of
// internal/core, which partition linear passes the same way rounds are
// partitioned.
func RunTasks(fns []func()) {
	if len(fns) == 0 {
		return
	}
	sharedPool().do(fns)
}

// RunRounds executes a round schedule over a with op, using up to
// workers lanes (≤ 0 means GOMAXPROCS), and returns the number of
// comparator applications. schedule must call its argument once per
// round with segments whose pairs are disjoint within the round;
// RunRounds barriers between rounds. It is the execution engine behind
// the sorting networks and the routing network of internal/core.
func RunRounds[T any](a Array[T], op PairOp[T], workers int, schedule func(round func([]Segment))) uint64 {
	return RunRoundsCheck(a, op, workers, nil, schedule)
}

// RunRoundsCheck is RunRounds with a cancellation probe: check (when
// non-nil) is invoked on the scheduling goroutine at every round
// barrier — and between chunks of sequential rounds — and may panic to
// abort the run. Because the probe never runs on a pool worker, an
// abort unwinds only the caller's stack: lanes always finish the round
// they started, no store access is torn, and the shared pool keeps its
// workers. This is how a cancelled query stops an in-flight oblivious
// sort within one round.
func RunRoundsCheck[T any](a Array[T], op PairOp[T], workers int, check func(), schedule func(round func([]Segment))) uint64 {
	ex := newRoundExec(a, op, workers, check)
	schedule(ex.runRound)
	return ex.count
}
