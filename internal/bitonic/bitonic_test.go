package bitonic

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"oblivjoin/internal/memory"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/trace"
)

func lessU64(x, y uint64) uint64 { return obliv.Less(x, y) }

func swapU64(c uint64, x, y *uint64) { obliv.CondSwap(c, x, y) }

func sortedCopy(in []uint64) []uint64 {
	out := append([]uint64(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSortSmallFixed(t *testing.T) {
	tests := [][]uint64{
		{},
		{1},
		{2, 1},
		{1, 2},
		{3, 1, 2},
		{5, 4, 3, 2, 1},
		{1, 1, 1, 1},
		{9, 0, 9, 0, 9},
		{7, 3, 7, 1, 7, 3, 0},
	}
	for _, in := range tests {
		data := append([]uint64(nil), in...)
		SortSlice(data, lessU64, swapU64, nil)
		if !equal(data, sortedCopy(in)) {
			t.Errorf("Sort(%v) = %v", in, data)
		}
	}
}

func TestSortAllLengthsUpTo64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 64; n++ {
		data := make([]uint64, n)
		for i := range data {
			data[i] = uint64(rng.Intn(16)) // duplicates likely
		}
		want := sortedCopy(data)
		SortSlice(data, lessU64, swapU64, nil)
		if !equal(data, want) {
			t.Fatalf("n=%d: got %v want %v", n, data, want)
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(in []uint64) bool {
		data := append([]uint64(nil), in...)
		SortSlice(data, lessU64, swapU64, nil)
		return equal(data, sortedCopy(in))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeExchangeSortAllLengthsUpTo64(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sp := memory.NewSpace(nil, nil)
	for n := 0; n <= 64; n++ {
		data := make([]uint64, n)
		for i := range data {
			data[i] = uint64(rng.Intn(8))
		}
		want := sortedCopy(data)
		MergeExchangeSort(memory.FromSlice(sp, data, 8), lessU64, swapU64, nil)
		if !equal(data, want) {
			t.Fatalf("n=%d: got %v want %v", n, data, want)
		}
	}
}

func TestMergeExchangeSortProperty(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	f := func(in []uint64) bool {
		data := append([]uint64(nil), in...)
		MergeExchangeSort(memory.FromSlice(sp, data, 8), lessU64, swapU64, nil)
		return equal(data, sortedCopy(in))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceObliviousness verifies that the access pattern of the bitonic
// sorter depends only on n: the defining property of a sorting network.
func TestTraceObliviousness(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 16, 33} {
		runHash := func(seed int64) string {
			h := trace.NewHasher()
			sp := memory.NewSpace(h, nil)
			a := memory.Alloc[uint64](sp, n, 8)
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < n; i++ {
				a.Set(i, uint64(rng.Int63()))
			}
			Sort(a, lessU64, swapU64, nil)
			return h.Hex()
		}
		first := runHash(1)
		for seed := int64(2); seed <= 5; seed++ {
			if got := runHash(seed); got != first {
				t.Fatalf("n=%d: trace differs between inputs", n)
			}
		}
	}
}

func TestMergeExchangeTraceObliviousness(t *testing.T) {
	n := 25
	runHash := func(seed int64) string {
		h := trace.NewHasher()
		sp := memory.NewSpace(h, nil)
		a := memory.Alloc[uint64](sp, n, 8)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			a.Set(i, uint64(rng.Int63()))
		}
		MergeExchangeSort(a, lessU64, swapU64, nil)
		return h.Hex()
	}
	if runHash(10) != runHash(77) {
		t.Fatal("merge-exchange trace differs between inputs")
	}
}

func TestStatsMatchComparators(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13, 16, 31, 64, 100} {
		var st Stats
		data := make([]uint64, n)
		SortSlice(data, lessU64, swapU64, &st)
		if want := Comparators(n); st.CompareExchanges != want {
			t.Fatalf("n=%d: counted %d compare-exchanges, Comparators says %d",
				n, st.CompareExchanges, want)
		}
	}
}

func TestComparatorsAsymptotic(t *testing.T) {
	// For n a power of two the bitonic network has n/4·log n·(log n+1)
	// comparators exactly.
	for _, n := range []int{2, 4, 8, 16, 64, 256, 1024} {
		log := 0
		for 1<<log < n {
			log++
		}
		want := uint64(n * log * (log + 1) / 4)
		if got := Comparators(n); got != want {
			t.Fatalf("Comparators(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestMergeExchangeComparatorsMatchCount(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 13, 16, 31, 64, 100, 1000} {
		var st Stats
		sp := memory.NewSpace(nil, nil)
		data := make([]uint64, n)
		MergeExchangeSort(memory.FromSlice(sp, data, 8), lessU64, swapU64, &st)
		if want := MergeExchangeComparators(n); st.CompareExchanges != want {
			t.Fatalf("n=%d: counted %d compare-exchanges, MergeExchangeComparators says %d",
				n, st.CompareExchanges, want)
		}
	}
}

func TestMergeExchangeFewerComparators(t *testing.T) {
	n := 1024
	var bit, me Stats
	d1 := make([]uint64, n)
	SortSlice(d1, lessU64, swapU64, &bit)
	sp := memory.NewSpace(nil, nil)
	d2 := make([]uint64, n)
	MergeExchangeSort(memory.FromSlice(sp, d2, 8), lessU64, swapU64, &me)
	if me.CompareExchanges >= bit.CompareExchanges {
		t.Fatalf("merge-exchange (%d) not cheaper than bitonic (%d)",
			me.CompareExchanges, bit.CompareExchanges)
	}
}

func TestSortStability_NotRequired_ButDeterministic(t *testing.T) {
	// The network is deterministic: equal inputs give equal outputs.
	in := []uint64{5, 3, 5, 1, 3}
	a := append([]uint64(nil), in...)
	b := append([]uint64(nil), in...)
	SortSlice(a, lessU64, swapU64, nil)
	SortSlice(b, lessU64, swapU64, nil)
	if !equal(a, b) {
		t.Fatal("network is not deterministic")
	}
}

func TestDescendingViaInvertedLess(t *testing.T) {
	data := []uint64{1, 9, 4, 4, 7}
	SortSlice(data, func(x, y uint64) uint64 { return obliv.Greater(x, y) }, swapU64, nil)
	for i := 1; i < len(data); i++ {
		if data[i-1] < data[i] {
			t.Fatalf("not descending: %v", data)
		}
	}
}

func benchSort(b *testing.B, n int, sortFn func(a *memory.Array[uint64])) {
	rng := rand.New(rand.NewSource(42))
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64()
	}
	sp := memory.NewSpace(nil, nil)
	work := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, vals)
		sortFn(memory.FromSlice(sp, work, 8))
	}
}

func BenchmarkBitonic1k(b *testing.B) {
	benchSort(b, 1024, func(a *memory.Array[uint64]) { Sort(a, lessU64, swapU64, nil) })
}

func BenchmarkBitonic64k(b *testing.B) {
	benchSort(b, 64*1024, func(a *memory.Array[uint64]) { Sort(a, lessU64, swapU64, nil) })
}

func BenchmarkMergeExchange64k(b *testing.B) {
	benchSort(b, 64*1024, func(a *memory.Array[uint64]) { MergeExchangeSort(a, lessU64, swapU64, nil) })
}
