package docscheck

import (
	"os"
	"path/filepath"
	"testing"
)

// repoRoot walks up from the test's working directory to go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// TestRepoDocsLinks is the CI markdown gate: every relative link in
// the repo's own docs resolves, including heading fragments.
func TestRepoDocsLinks(t *testing.T) {
	problems, err := Check(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// TestDocsCovered: the checker must actually see the documentation
// layer — if ARCHITECTURE.md or PLANNING.md moved without updating
// Docs, the gate would silently stop covering them.
func TestDocsCovered(t *testing.T) {
	files, err := Docs(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"README.md":                              false,
		filepath.Join("docs", "ARCHITECTURE.md"): false,
		filepath.Join("docs", "PLANNING.md"):     false,
	}
	for _, f := range files {
		if _, ok := want[f]; ok {
			want[f] = true
		}
	}
	for f, seen := range want {
		if !seen {
			t.Errorf("%s not covered by the docs link check", f)
		}
	}
}

func TestAnchor(t *testing.T) {
	cases := map[string]string{
		"Cost-aware planning":                      "cost-aware-planning",
		"Greedy join ordering, and why it is safe": "greedy-join-ordering-and-why-it-is-safe",
		"EXPLAIN":                              "explain",
		"Why a cost model can be *exact* here": "why-a-cost-model-can-be-exact-here",
		"SQL engine: plan IR and operators":    "sql-engine-plan-ir-and-operators",
	}
	for in, want := range cases {
		if got := Anchor(in); got != want {
			t.Errorf("Anchor(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestBrokenLinkDetected: the checker must flag a dangling relative
// link and a dangling fragment, not just pass whatever exists today.
func TestBrokenLinkDetected(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	readme := "# Top\n[gone](docs/NOPE.md)\n[frag](docs/REAL.md#missing-heading)\n[ok](docs/REAL.md#real)\n"
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte(readme), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "docs", "REAL.md"), []byte("# Real\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"CHANGES.md", "ROADMAP.md"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("# x\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	problems, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("got %d problems, want 2 (dangling file + dangling fragment): %v", len(problems), problems)
	}
}
