// Package docscheck validates the repository's own markdown
// documentation: every relative link must point at a file that exists
// and every fragment at a heading anchor that GitHub would generate.
// It deliberately skips network URLs (CI must stay hermetic) and the
// paper/reference material shipped with the repo (PAPER.md, PAPERS.md,
// SNIPPETS.md, ISSUE.md), whose links point outside it by design.
package docscheck

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// Docs lists the repo-relative markdown files the checker owns:
// the top-level docs plus everything under docs/.
func Docs(root string) ([]string, error) {
	files := []string{"README.md", "CHANGES.md", "ROADMAP.md"}
	extra, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		return nil, err
	}
	for _, f := range extra {
		rel, err := filepath.Rel(root, f)
		if err != nil {
			return nil, err
		}
		files = append(files, rel)
	}
	return files, nil
}

// linkRE matches inline markdown links and images: [text](target).
// Reference-style links are not used in this repo's docs.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)\)`)

var headingRE = regexp.MustCompile("(?m)^#{1,6}[ \t]+(.+)$")

// Check validates every relative link in the repo's own markdown docs
// under root and returns one message per broken link.
func Check(root string) ([]string, error) {
	files, err := Docs(root)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, rel := range files {
		path := filepath.Join(root, rel)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("docscheck: %s: %w", rel, err)
		}
		src := stripCodeBlocks(string(data))
		for _, m := range linkRE.FindAllStringSubmatch(src, -1) {
			if msg := checkLink(root, rel, m[1]); msg != "" {
				problems = append(problems, msg)
			}
		}
	}
	return problems, nil
}

// checkLink validates one link target found in file (repo-relative)
// and returns a problem description, or "" if the link is fine.
func checkLink(root, file, target string) string {
	if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
		return "" // network URLs are out of scope: CI stays offline
	}
	pathPart, frag, _ := strings.Cut(target, "#")
	dest := filepath.Join(root, filepath.Dir(file), pathPart)
	if pathPart == "" {
		dest = filepath.Join(root, file) // same-file fragment
	}
	if _, err := os.Stat(dest); err != nil {
		return fmt.Sprintf("%s: broken link %q: %s does not exist", file, target, pathPart)
	}
	if frag == "" {
		return ""
	}
	data, err := os.ReadFile(dest)
	if err != nil || !strings.HasSuffix(dest, ".md") {
		return fmt.Sprintf("%s: link %q has a fragment but %s is not a readable markdown file", file, target, pathPart)
	}
	for _, h := range headingRE.FindAllStringSubmatch(stripCodeBlocks(string(data)), -1) {
		if Anchor(h[1]) == frag {
			return ""
		}
	}
	return fmt.Sprintf("%s: link %q: no heading anchors to #%s", file, target, frag)
}

// Anchor converts a heading to the fragment identifier GitHub
// generates: lowercase, markdown/punctuation stripped, spaces and
// hyphens kept as hyphens. Duplicate-heading "-n" suffixes are not
// modeled; the repo's docs keep headings unique.
func Anchor(heading string) string {
	h := strings.ToLower(strings.TrimSpace(heading))
	var b strings.Builder
	for _, r := range h {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r == ' ', r == '-':
			b.WriteByte('-')
		case r > 127: // unicode letters survive; symbols/emoji do not
			if strings.ContainsRune("–—‘’“”§⌈⌉·×→⋈‖", r) {
				continue
			}
			b.WriteRune(r)
		}
	}
	return b.String()
}

// stripCodeBlocks blanks fenced code blocks and inline code spans so
// bracketed text inside them (shell snippets, Go slices) is not
// mistaken for links and shell comments are not mistaken for headings.
func stripCodeBlocks(src string) string {
	var b strings.Builder
	inFence := false
	for _, line := range strings.SplitAfter(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			b.WriteString("\n")
			continue
		}
		if inFence {
			b.WriteString("\n")
			continue
		}
		b.WriteString(stripInlineCode(line))
	}
	return b.String()
}

func stripInlineCode(line string) string {
	parts := strings.Split(line, "`")
	for i := 1; i < len(parts); i += 2 {
		parts[i] = ""
	}
	return strings.Join(parts, "")
}
