package exp

import (
	"fmt"
	"io"

	"oblivjoin/internal/circuit"
	"oblivjoin/internal/typesys"
)

// Circuit quantifies the paper's "very low circuit complexity" claim
// (§1, §2): the join's building blocks are lowered through the §3.4
// transformation to boolean circuits and their gate counts and depths
// reported. XOR gates are listed separately since they are free in
// typical SMC protocols; AND count is the cost that matters there.
func Circuit(w io.Writer, sizes []int, width int) error {
	fmt.Fprintf(w, "Circuit complexity of the oblivious building blocks (%d-bit words)\n", width)
	fmt.Fprintf(w, "%-26s %10s %10s %10s %8s\n", "component", "gates", "AND", "XOR", "depth")

	report := func(name string, p *typesys.Program, bindings map[string]uint64, arrays map[string]int) error {
		flat, err := typesys.Transform(p, bindings)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		comp, err := circuit.Compile(flat, arrays, width)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		st := comp.B.Stats()
		fmt.Fprintf(w, "%-26s %10d %10d %10d %8d\n", name, st.Gates, st.And, st.Xor, st.Depth)
		return nil
	}

	if err := report("compare-exchange", typesys.CompareExchange(0, 1), nil,
		map[string]int{"a": 2}); err != nil {
		return err
	}
	for _, n := range sizes {
		if err := report(fmt.Sprintf("bitonic sort, n=%d", n),
			typesys.BuildBitonicProgram(n), nil, map[string]int{"a": n}); err != nil {
			return err
		}
	}
	for _, n := range sizes {
		if err := report(fmt.Sprintf("routing network, l=%d", n),
			typesys.BuildRouteProgram(n), nil, map[string]int{"a": n}); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "(AND count is the SMC cost driver; XOR is free in GMW/free-XOR garbling.)")
	return nil
}
