package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
	"oblivjoin/internal/workload"
)

// JoinBenchResult is one row of the machine-readable join benchmark:
// the sequential and parallel wall times of the full pipeline at one
// input size, with tracing enabled, plus the determinism evidence
// (event counts must match; up to hashCheckCap the canonical hashes
// are compared too). Every record states its hash verdict explicitly:
// TraceDetHash is always serialized, and when the comparison was
// skipped TraceHashSkipped carries the reason — a record can never
// silently omit the hash evidence again. Future sessions diff these
// files to track the perf trajectory.
type JoinBenchResult struct {
	N            int     `json:"n"`
	M            int     `json:"m"`
	Workers      int     `json:"workers"`
	SequentialNS int64   `json:"sequential_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
	// PeakBytes and TotalAllocBytes are the run's deterministic
	// allocation-gauge readings (see table.Gauge): peak outstanding and
	// cumulative store bytes, a pure function of the input sizes — so
	// benchdiff gates them like the wall times.
	PeakBytes       int64  `json:"peak_bytes"`
	TotalAllocBytes int64  `json:"total_alloc_bytes"`
	TraceEvents     uint64 `json:"trace_events"`
	TraceDetEvents  bool   `json:"trace_event_counts_equal"`
	TraceDetHash    bool   `json:"trace_hashes_equal"`
	TraceSkipped    string `json:"trace_hash_skipped,omitempty"`
	GOMAXPROCS      int    `json:"gomaxprocs"`
}

// hashCheckCap bounds the sizes at which the bench experiments
// cross-check full canonical trace hashes. The streamed canonical hash
// (13 bytes of SHA-256 input per event, see internal/trace) made
// hashing cheap enough to cover every default bench size; above the
// cap the records carry an explicit skip reason instead of a silent
// omission.
const hashCheckCap = 1 << 17

// BenchJoin times the sequential versus round-scheduled parallel join
// at each input size, with a live trace recorder attached, and writes
// a human-readable table to w. workers ≤ 0 means GOMAXPROCS.
func BenchJoin(w io.Writer, ns []int, workers int) ([]JoinBenchResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(w, "Join benchmark — sequential vs parallel round schedule (workers=%d, tracing on)\n", workers)
	fmt.Fprintf(w, "%10s %10s %14s %14s %9s %s\n", "n", "m", "sequential", "parallel", "speedup", "trace")
	var out []JoinBenchResult
	for _, n := range ns {
		t1, t2 := workload.MatchingPairs(n)
		run := func(wk int) (time.Duration, uint64, string, int, *table.Gauge) {
			var rec trace.Recorder
			var hasher *trace.Hasher
			var counter trace.Counter
			if n <= hashCheckCap {
				hasher = trace.NewHasher()
				rec = hasher
			} else {
				rec = &counter
			}
			sp := memory.NewSpace(rec, nil)
			g := &table.Gauge{}
			defer g.ReleaseAll()
			cfg := &core.Config{Alloc: table.TrackedAlloc(table.PlainAlloc(sp), g), Workers: wk, Mem: g}
			start := time.Now()
			pairs := core.Join(cfg, t1, t2)
			el := time.Since(start)
			if hasher != nil {
				return el, hasher.Count(), hasher.Hex(), len(pairs), g
			}
			return el, counter.Total(), "", len(pairs), g
		}
		seqT, seqEv, seqH, m, seqG := run(1)
		parT, parEv, parH, _, _ := run(workers)
		r := JoinBenchResult{
			N: n, M: m, Workers: workers,
			SequentialNS: seqT.Nanoseconds(), ParallelNS: parT.Nanoseconds(),
			PeakBytes: seqG.Peak(), TotalAllocBytes: seqG.Total(),
			TraceEvents: seqEv, TraceDetEvents: seqEv == parEv,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		if parT > 0 {
			r.Speedup = float64(seqT) / float64(parT)
		}
		det := "events="
		if r.TraceDetEvents {
			det += "eq"
		} else {
			det += "DIVERGED"
		}
		if seqH != "" {
			r.TraceDetHash = seqH == parH
			if r.TraceDetHash {
				det += " hash=eq"
			} else {
				det += " hash=DIVERGED"
			}
		} else {
			r.TraceSkipped = fmt.Sprintf("n exceeds hash check cap %d", hashCheckCap)
			det += " hash=skipped"
		}
		if !r.TraceDetEvents || (seqH != "" && !r.TraceDetHash) {
			return nil, fmt.Errorf("exp: parallel trace diverged from sequential at n=%d", n)
		}
		fmt.Fprintf(w, "%10d %10d %14s %14s %8.2fx %s\n", n, m, seqT.Round(time.Microsecond),
			parT.Round(time.Microsecond), r.Speedup, det)
		out = append(out, r)
	}
	return out, nil
}

// WriteBenchJSON writes the benchmark rows as indented JSON to path.
func WriteBenchJSON(path string, results []JoinBenchResult) error {
	return writeJSON(path, results)
}

// WriteSQLBenchJSON writes the SQL benchmark rows followed by the
// planner comparator rows as one indented JSON array; benchdiff keys
// the two families apart by query text.
func WriteSQLBenchJSON(path string, results []SQLBenchResult, planner []PlannerBenchResult) error {
	rows := make([]any, 0, len(results)+len(planner))
	for _, r := range results {
		rows = append(rows, r)
	}
	for _, r := range planner {
		rows = append(rows, r)
	}
	return writeJSON(path, rows)
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
