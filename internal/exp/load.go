package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"oblivjoin/internal/query"
	"oblivjoin/internal/service"
	"oblivjoin/internal/table"
	"oblivjoin/internal/workload"
)

// This file is the closed-loop load generator behind cmd/oloadgen: C
// client goroutines issue queries back to back against an in-process
// admission-controlled Service until a fixed per-scenario operation
// budget is spent, then the service drains through Shutdown. The
// workload is deterministic — table contents come from the seeded
// internal/workload generators and client c executes exactly the
// operations {c, c+C, c+2C, …} of a fixed query rotation — so two runs
// on the same host execute the same queries in the same per-client
// order; only the interleaving (and therefore the latency sample) is
// the machine's.
//
// Beyond throughput and latency percentiles the run is a correctness
// harness for the serving layer under traffic: every completed
// query's canonical trace hash is compared against a sequential
// single-worker reference (the obliviousness/determinism story must
// survive concurrency, admission queuing and neighbors being
// rejected), and the goroutine count after Shutdown is compared
// against the pre-load baseline (the admission queue and the
// cancellation paths must not leak). CI runs the short mode and fails
// on either signal.

// LoadScenario is one family of tables plus a query rotation over
// them. Tables must be deterministic in (n, seed).
type LoadScenario struct {
	Name    string
	Tables  func(n int, seed int64) map[string][]table.Row
	Queries []string
	// MemBudget, when positive, caps every query's tracked memory at
	// this many bytes, diverting over-budget intermediates to sealed
	// spill files — the scenario then exercises the spill path under
	// concurrent traffic (and the trace check verifies spilling never
	// changes a canonical trace).
	MemBudget int64
	// Shards, when > 1, hash-partitions every join of the rotation
	// across this many concurrent shard pipelines. The trace reference
	// runs at the same shard count (the composed hash is a function of
	// it), so the scenario verifies the sharded scheduler's determinism
	// under concurrent traffic, not just in isolation.
	Shards int
}

// shortRows rewrites rows with compact tagged payloads (≤ 4 chars) so
// multi-join rekey chains stay inside the fixed table.DataLen width.
func shortRows(rows []table.Row, tag byte) []table.Row {
	out := make([]table.Row, len(rows))
	for i, r := range rows {
		out[i] = table.Row{J: r.J, D: table.MustData(fmt.Sprintf("%c%d", tag, i%1000))}
	}
	return out
}

// LoadScenarios returns the scenario families, covering the paper's
// evaluation input classes (§6): uniform keys, power-law group sizes,
// primary–foreign key references, a mixed SQL rotation with join
// chains and aggregates, a memory-budgeted rotation that forces
// every query through the sealed spill path, and a sharded rotation
// that hash-partitions every join across concurrent shard pipelines.
func LoadScenarios() []LoadScenario {
	return []LoadScenario{
		{
			Name: "uniform",
			Tables: func(n int, seed int64) map[string][]table.Row {
				t1, t2 := workload.Uniform(n, n, n, seed)
				return map[string][]table.Row{"t1": shortRows(t1, 'a'), "t2": shortRows(t2, 'b')}
			},
			Queries: []string{
				"SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key)",
				"SELECT key FROM t1 WHERE key < 128",
				"SELECT key, COUNT(*) FROM t1 JOIN t2 USING (key) GROUP BY key",
			},
		},
		{
			Name: "powerlaw",
			Tables: func(n int, seed int64) map[string][]table.Row {
				t1, t2 := workload.PowerLaw(2*n, 2.0, seed)
				return map[string][]table.Row{"t1": shortRows(t1, 'a'), "t2": shortRows(t2, 'b')}
			},
			Queries: []string{
				"SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key)",
				"SELECT DISTINCT key FROM t1",
				"SELECT key, COUNT(*) FROM t1 JOIN t2 USING (key) GROUP BY key",
			},
		},
		{
			Name: "pkfk",
			Tables: func(n int, seed int64) map[string][]table.Row {
				pk, fk := workload.PKFK(n/4+1, n, seed)
				return map[string][]table.Row{"pk": shortRows(pk, 'p'), "fk": shortRows(fk, 'f')}
			},
			Queries: []string{
				"SELECT key, left.data, right.data FROM pk JOIN fk USING (key)",
				"SELECT key, COUNT(*) FROM fk GROUP BY key",
				"SELECT key FROM fk WHERE key IN (SELECT key FROM pk)",
			},
		},
		{
			Name: "mixed",
			Tables: func(n int, seed int64) map[string][]table.Row {
				t1, t2 := workload.MatchingPairs(n)
				return map[string][]table.Row{
					"t1": shortRows(t1, 'a'),
					"t2": shortRows(t2, 'b'),
					"t3": shortRows(t1, 'c'),
				}
			},
			Queries: []string{
				"SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key)",
				"SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key) JOIN t3 USING (key)",
				"SELECT key, COUNT(*) FROM t1 JOIN t2 USING (key) GROUP BY key",
				"SELECT key FROM t1 WHERE key > 4 AND key <= 200 ORDER BY key LIMIT 64",
				"SELECT DISTINCT key FROM t2",
			},
		},
		{
			// spill runs a join-heavy rotation under a 256 KiB per-query
			// memory budget: at the default n=2048 every join's combined
			// table alone (2n entries) exceeds the budget, so each query
			// crosses the sealed spill path while neighbors do the same
			// concurrently. The trace check compares against an
			// unbudgeted sequential reference, so this scenario is also
			// the under-traffic proof that spilling never changes a
			// canonical trace.
			Name:      "spill",
			MemBudget: 256 << 10,
			Tables: func(n int, seed int64) map[string][]table.Row {
				t1, t2 := workload.MatchingPairs(n)
				return map[string][]table.Row{"t1": shortRows(t1, 'a'), "t2": shortRows(t2, 'b')}
			},
			Queries: []string{
				"SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key) ORDER BY key",
				"SELECT DISTINCT key, data FROM t1 ORDER BY key",
				"SELECT key, COUNT(*) FROM t1 JOIN t2 USING (key) GROUP BY key",
			},
		},
		{
			// shard runs a join-heavy rotation with every join
			// hash-partitioned across 4 concurrent shard pipelines, under
			// concurrent clients — shard goroutines from neighboring
			// queries interleave on the shared worker pool. The trace
			// reference runs sequentially at the same shard count, so a
			// completed query whose composed hash diverges exposes any
			// nondeterminism in the sharded scheduler under traffic.
			Name:   "shard",
			Shards: 4,
			Tables: func(n int, seed int64) map[string][]table.Row {
				t1, t2 := workload.Uniform(n, n, n/4+1, seed)
				return map[string][]table.Row{"t1": shortRows(t1, 'a'), "t2": shortRows(t2, 'b')}
			},
			Queries: []string{
				"SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key)",
				"SELECT key, right.data FROM t1 JOIN t2 USING (key) WHERE key > 8 ORDER BY key",
				"SELECT key, COUNT(*) FROM t1 JOIN t2 USING (key) GROUP BY key",
			},
		},
	}
}

// LoadConfig parameterizes one RunLoad invocation.
type LoadConfig struct {
	// Scenarios selects scenario families by name; empty means all.
	Scenarios []string
	// N is the per-table row count handed to the generators.
	N int
	// Clients is the closed-loop concurrency: each client issues its
	// share of Ops back to back.
	Clients int
	// Ops is the per-scenario operation budget.
	Ops int
	// Workers is the per-query oblivious parallelism.
	Workers int
	// MaxInFlight/Queue bound admission (see service.Config); 0 =
	// unbounded / default.
	MaxInFlight int
	Queue       int
	// Timeout is the per-query deadline (0 = none).
	Timeout time.Duration
	// Seed drives the table generators.
	Seed int64
	// Encrypted runs the service with AES-sealed intermediate stores.
	Encrypted bool
	// CheckTraces compares every completed query's canonical trace
	// hash against a sequential single-worker reference.
	CheckTraces bool
}

// LoadResult is one scenario's machine-readable record in
// BENCH_service.json. The *_ns metrics ride the benchdiff regression
// gate keyed on (scenario, clients, workers, n).
type LoadResult struct {
	Scenario    string `json:"scenario"`
	N           int    `json:"n"`
	Clients     int    `json:"clients"`
	Workers     int    `json:"workers"`
	Shards      int    `json:"shards,omitempty"`
	MaxInFlight int    `json:"max_inflight"`
	Queue       int    `json:"queue"`
	Ops         int    `json:"ops"`

	Completed int `json:"completed"`
	Rejected  int `json:"rejected"`
	Canceled  int `json:"canceled"`
	Failed    int `json:"failed"`

	WallNS        int64   `json:"wall_ns"`
	ThroughputQPS float64 `json:"throughput_qps"`
	P50NS         int64   `json:"p50_ns"`
	P95NS         int64   `json:"p95_ns"`
	P99NS         int64   `json:"p99_ns"`
	RejectionRate float64 `json:"rejection_rate"`

	// PeakBytes is the largest per-query allocation-gauge peak among
	// the completed queries — deterministic for a fixed rotation, so
	// benchdiff gates it like the latency percentiles.
	PeakBytes int64 `json:"peak_bytes"`
	// SpillQueries counts completed queries that diverted at least one
	// store to a spill file; positive for the spill scenario, zero
	// elsewhere.
	SpillQueries int `json:"spill_queries,omitempty"`

	GoroutineBase int `json:"goroutine_base"`
	GoroutineHWM  int `json:"goroutine_hwm"`
	// GoroutineLeak is goroutines alive after Shutdown minus the
	// pre-load baseline; any positive value is a leak. CI gates on 0.
	GoroutineLeak int `json:"goroutine_leak"`

	TraceChecked     int  `json:"trace_checked"`
	TraceMismatches  int  `json:"trace_mismatches"`
	TraceHashesMatch bool `json:"trace_hashes_match"`

	Encrypted  bool `json:"encrypted"`
	GOMAXPROCS int  `json:"gomaxprocs"`
}

// selected filters the scenario families by cfg.Scenarios.
func selected(cfg LoadConfig) ([]LoadScenario, error) {
	all := LoadScenarios()
	if len(cfg.Scenarios) == 0 {
		return all, nil
	}
	byName := map[string]LoadScenario{}
	for _, sc := range all {
		byName[sc.Name] = sc
	}
	var out []LoadScenario
	for _, name := range cfg.Scenarios {
		sc, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("exp: unknown load scenario %q", name)
		}
		out = append(out, sc)
	}
	return out, nil
}

// RunLoad drives every selected scenario through the closed loop and
// returns one record per scenario. It fails only on setup errors (bad
// scenario name, reference run failure) — query-level failures,
// mismatches and leaks are reported in the records, where callers
// (cmd/oloadgen -check, the exp tests) decide what gates.
func RunLoad(w io.Writer, cfg LoadConfig) ([]LoadResult, error) {
	scenarios, err := selected(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Ops <= 0 {
		cfg.Ops = cfg.Clients
	}
	fmt.Fprintf(w, "load — closed loop, %d clients × %d ops/scenario, n=%d, workers=%d, max-inflight=%d, queue=%d\n",
		cfg.Clients, cfg.Ops, cfg.N, cfg.Workers, cfg.MaxInFlight, cfg.Queue)
	fmt.Fprintf(w, "%-10s %9s %9s %8s %8s %8s %10s %10s %10s %7s %6s\n",
		"scenario", "completed", "rejected", "cancel", "failed", "qps", "p50", "p95", "p99", "leak", "trace")
	var out []LoadResult
	for _, sc := range scenarios {
		r, err := runScenario(cfg, sc)
		if err != nil {
			return nil, err
		}
		traceCol := "off"
		if cfg.CheckTraces {
			traceCol = "ok"
			if !r.TraceHashesMatch {
				traceCol = "FAIL"
			}
		}
		fmt.Fprintf(w, "%-10s %9d %9d %8d %8d %8.1f %10s %10s %10s %7d %6s\n",
			r.Scenario, r.Completed, r.Rejected, r.Canceled, r.Failed, r.ThroughputQPS,
			time.Duration(r.P50NS).Round(time.Microsecond),
			time.Duration(r.P95NS).Round(time.Microsecond),
			time.Duration(r.P99NS).Round(time.Microsecond),
			r.GoroutineLeak, traceCol)
		out = append(out, r)
	}
	return out, nil
}

// referenceHashes runs every query of the rotation once, sequentially
// and single-worker on a plain store, and records the canonical trace
// hash each completed load query must reproduce. A sharded scenario's
// reference runs at the same shard count — the composed hash is a
// deterministic function of it — so the comparison still pins the
// under-traffic run to an uncontended sequential execution.
func referenceHashes(tables map[string][]table.Row, queries []string, shards int) (map[string]string, error) {
	eng := query.NewEngineWith(query.Options{Workers: 1, TraceHash: true, CollectStats: true, Shards: shards})
	for name, rows := range tables {
		if err := eng.Register(name, rows); err != nil {
			return nil, err
		}
	}
	ref := map[string]string{}
	for _, sql := range queries {
		if _, err := eng.Query(sql); err != nil {
			return nil, fmt.Errorf("reference run of %q: %w", sql, err)
		}
		ref[sql] = eng.LastStats().TraceHash
	}
	return ref, nil
}

func runScenario(cfg LoadConfig, sc LoadScenario) (LoadResult, error) {
	tables := sc.Tables(cfg.N, cfg.Seed)
	r := LoadResult{
		Scenario: sc.Name, N: cfg.N, Clients: cfg.Clients, Workers: cfg.Workers, Shards: sc.Shards,
		MaxInFlight: cfg.MaxInFlight, Queue: cfg.Queue, Ops: cfg.Ops,
		Encrypted: cfg.Encrypted, GOMAXPROCS: runtime.GOMAXPROCS(0),
		TraceHashesMatch: true,
	}

	var ref map[string]string
	if cfg.CheckTraces {
		var err error
		if ref, err = referenceHashes(tables, sc.Queries, sc.Shards); err != nil {
			return r, fmt.Errorf("exp: load %s: %w", sc.Name, err)
		}
	}

	svc, err := service.New(service.Config{
		Defaults: query.Options{
			Workers:      cfg.Workers,
			Encrypted:    cfg.Encrypted,
			CollectStats: true,
			TraceHash:    cfg.CheckTraces,
			MemBudget:    sc.MemBudget,
			Shards:       sc.Shards,
		},
		MaxInFlight:  cfg.MaxInFlight,
		MaxQueue:     cfg.Queue,
		QueryTimeout: cfg.Timeout,
	})
	if err != nil {
		return r, err
	}
	for name, rows := range tables {
		if err := svc.Register(name, rows); err != nil {
			return r, err
		}
	}
	// Warm up: one sequential pass over the rotation primes the plan
	// cache and the shared worker pool, so the goroutine baseline below
	// reflects steady state, not lazy initialization.
	for _, sql := range sc.Queries {
		if _, _, err := svc.Query(context.Background(), sql); err != nil {
			return r, fmt.Errorf("exp: load %s warmup %q: %w", sc.Name, sql, err)
		}
	}
	runtime.Gosched()
	r.GoroutineBase = runtime.NumGoroutine()

	var (
		mu        sync.Mutex
		latencies []int64
		hwm       int
	)
	sample := func() {
		if g := runtime.NumGoroutine(); g > hwm {
			hwm = g
		}
	}
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := c; k < cfg.Ops; k += cfg.Clients {
				sql := sc.Queries[k%len(sc.Queries)]
				t0 := time.Now()
				_, ps, err := svc.Query(context.Background(), sql)
				d := time.Since(t0)
				mu.Lock()
				sample()
				switch {
				case err == nil:
					r.Completed++
					latencies = append(latencies, d.Nanoseconds())
					if ps != nil {
						if ps.PeakBytes > r.PeakBytes {
							r.PeakBytes = ps.PeakBytes
						}
						if ps.SpillCount > 0 {
							r.SpillQueries++
						}
					}
					if cfg.CheckTraces {
						r.TraceChecked++
						if ps == nil || ps.TraceHash != ref[sql] {
							r.TraceMismatches++
						}
					}
				case errors.Is(err, service.ErrOverloaded):
					r.Rejected++
				case errors.Is(err, query.ErrCanceled), errors.Is(err, query.ErrDeadline):
					r.Canceled++
				default:
					r.Failed++
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	r.WallNS = wall.Nanoseconds()
	if wall > 0 {
		r.ThroughputQPS = float64(r.Completed) / wall.Seconds()
	}
	if cfg.Ops > 0 {
		r.RejectionRate = float64(r.Rejected) / float64(cfg.Ops)
	}
	r.TraceHashesMatch = r.TraceMismatches == 0
	r.P50NS, r.P95NS, r.P99NS = service.LatencyPercentiles(latencies)
	st := svc.Stats()
	r.GoroutineHWM = st.GoroutineHWM
	if hwm > r.GoroutineHWM {
		r.GoroutineHWM = hwm
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := svc.Shutdown(sctx); err != nil {
		return r, fmt.Errorf("exp: load %s: %w", sc.Name, err)
	}
	r.GoroutineLeak = settleGoroutines(r.GoroutineBase)
	return r, nil
}

// WriteLoadJSON writes the load records as indented JSON to path.
func WriteLoadJSON(path string, results []LoadResult) error {
	return writeJSON(path, results)
}

// MergeBest folds repeated runs of the same configuration into one
// record per scenario by taking the per-metric minimum of the timing
// fields (wall, percentiles) and the maximum of the failure signals
// (goroutine leak/HWM). The workload is deterministic, so runs differ
// only in scheduler noise; the minimum estimates the noise floor,
// which is what a regression ratchet should compare — single-run tail
// percentiles carry enough jitter to trip a ±25% gate on identical
// code. Trace verification accumulates across every run (so
// trace_checked can exceed ops, and a mismatch in ANY run fails);
// the outcome counts (completed, rejected, …) come from the first
// run alone.
func MergeBest(runs ...[]LoadResult) []LoadResult {
	if len(runs) == 0 {
		return nil
	}
	out := append([]LoadResult(nil), runs[0]...)
	for _, run := range runs[1:] {
		byName := map[string]LoadResult{}
		for _, r := range run {
			byName[r.Scenario] = r
		}
		for i := range out {
			r, ok := byName[out[i].Scenario]
			if !ok {
				continue
			}
			minNS := func(dst *int64, v int64) {
				if v < *dst {
					*dst = v
				}
			}
			minNS(&out[i].WallNS, r.WallNS)
			minNS(&out[i].P50NS, r.P50NS)
			minNS(&out[i].P95NS, r.P95NS)
			minNS(&out[i].P99NS, r.P99NS)
			if r.ThroughputQPS > out[i].ThroughputQPS {
				out[i].ThroughputQPS = r.ThroughputQPS
			}
			if r.GoroutineLeak > out[i].GoroutineLeak {
				out[i].GoroutineLeak = r.GoroutineLeak
			}
			if r.GoroutineHWM > out[i].GoroutineHWM {
				out[i].GoroutineHWM = r.GoroutineHWM
			}
			// Deterministic gauges: equal across runs by construction;
			// the max is a cheap cross-run consistency fold.
			if r.PeakBytes > out[i].PeakBytes {
				out[i].PeakBytes = r.PeakBytes
			}
			if r.SpillQueries > out[i].SpillQueries {
				out[i].SpillQueries = r.SpillQueries
			}
			out[i].TraceChecked += r.TraceChecked
			out[i].TraceMismatches += r.TraceMismatches
			out[i].TraceHashesMatch = out[i].TraceHashesMatch && r.TraceHashesMatch
		}
	}
	return out
}

// settleGoroutines polls the goroutine count for up to two seconds and
// returns its excess over base — the leak a drained service must not
// have. The poll loop tolerates the runtime's asynchronous goroutine
// teardown (a goroutine that returned may be counted for a few more
// scheduler ticks).
func settleGoroutines(base int) int {
	deadline := time.Now().Add(2 * time.Second)
	for {
		g := runtime.NumGoroutine()
		if g <= base || time.Now().After(deadline) {
			return g - base
		}
		time.Sleep(10 * time.Millisecond)
	}
}
