package exp

import (
	"io"
	"testing"
)

// TestRunChaosShort executes a miniature chaos run end to end: the
// harness itself asserts the containment contract (typed errors only,
// bit-identical queries, recovery to ok health) and returns an error
// on any violation, so a nil error plus a non-trivial summary is the
// whole check.
func TestRunChaosShort(t *testing.T) {
	res, err := RunChaos(io.Discard, 32, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res.Injected == 0 || res.TypedErrors == 0 || res.Queries == 0 {
		t.Fatalf("chaos run exercised nothing: %+v", res)
	}
	// Determinism: the same seed injects the same faults.
	res2, err := RunChaos(io.Discard, 32, 42)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Injected != res.Injected {
		t.Fatalf("seeded runs diverged: %d vs %d faults", res.Injected, res2.Injected)
	}
}

// TestBenchFaultShort runs the seam-overhead pairs at toy sizes and
// sanity-checks the gated metrics are populated for all four rows.
func TestBenchFaultShort(t *testing.T) {
	results, err := BenchFault(io.Discard, 64, 4, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d records, want 4", len(results))
	}
	for _, r := range results {
		if r.WallNS <= 0 || r.IOBytes <= 0 {
			t.Errorf("%s: wall=%d io=%d", r.Scenario, r.WallNS, r.IOBytes)
		}
	}
}
