package exp

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/query"
	"oblivjoin/internal/query/exec"
	"oblivjoin/internal/table"
)

// StreamBenchResult is one row of the streaming-executor benchmark:
// the same scan→join→rekey→filter→project chain executed three ways —
// materialized (stage-at-a-time, every intermediate charged and never
// discharged), streamed (block-granular batches, eager releases, the
// default executor), and streamed into a RowSink (the result itself
// never materializes) — at one input size over one store backend.
//
// The memory columns are the deterministic allocation-gauge readings
// (table.Gauge), a pure function of the plan and the public sizes, so
// benchdiff gates them at the same threshold as the wall times. The
// trace columns are the equivalence evidence: all three executions
// must record bit-identical canonical traces.
type StreamBenchResult struct {
	N       int    `json:"n"`
	M       int    `json:"m"`
	Rows    int    `json:"rows"`
	Workers int    `json:"workers"`
	Mode    string `json:"mode"`
	Block   int    `json:"block,omitempty"`

	MaterializedNS int64 `json:"materialized_ns"`
	StreamedNS     int64 `json:"streamed_ns"`
	SinkNS         int64 `json:"streamed_sink_ns"`

	MaterializedPeakBytes int64 `json:"materialized_peak_bytes"`
	StreamedPeakBytes     int64 `json:"streamed_peak_bytes"`
	SinkPeakBytes         int64 `json:"streamed_sink_peak_bytes"`

	MaterializedTotalBytes int64 `json:"materialized_total_alloc_bytes"`
	StreamedTotalBytes     int64 `json:"streamed_total_alloc_bytes"`

	// PeakReduction is 1 − streamed_peak/materialized_peak: the
	// fraction of the stage-at-a-time peak the streaming executor
	// avoids on this chain.
	PeakReduction float64 `json:"peak_reduction"`
	// WallRatio is streamed_ns/materialized_ns (1.0 = parity; the
	// streaming executor must not trade memory for wall time).
	WallRatio float64 `json:"wall_ratio"`

	TraceEvents    uint64 `json:"trace_events"`
	TraceDetEvents bool   `json:"trace_event_counts_equal"`
	TraceDetHash   bool   `json:"trace_hashes_equal"`
	TraceSkipped   string `json:"trace_hash_skipped,omitempty"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
}

// countSink consumes a streamed result without retaining it: the
// realistic sink-mode client (a wire encoder), reduced to a row count
// and a cheap checksum over the cell bytes.
type countSink struct {
	rows int
	sum  uint64
}

func (s *countSink) Columns([]string) error { return nil }

func (s *countSink) Rows(rows [][]string) error {
	s.rows += len(rows)
	for _, r := range rows {
		for _, c := range r {
			for i := 0; i < len(c); i++ {
				s.sum = s.sum*131 + uint64(c[i])
			}
		}
	}
	return nil
}

// streamChain is the measured pipeline: a one-to-one join whose keyed
// output is rekeyed, filtered at ~15/16 selectivity (key%16 != 0,
// branch-free) and projected — the filter/project/rekey chain the
// streaming executor fuses between the join barrier and the output.
func streamChain() []exec.Operator {
	return []exec.Operator{
		exec.Scan{Table: "t1"},
		exec.Join{Table: "t2"},
		exec.Rekey{},
		exec.Filter{Pred: func(r table.Row) uint64 { return obliv.Not(obliv.Eq(r.J%16, 0)) }},
		exec.Project{Items: []exec.ProjItem{{Col: exec.ColKey}, {Col: exec.ColData}}},
	}
}

// streamTables builds the one-to-one matched catalog for streamChain:
// every key 0..n-1 appears once per side with a short tagged payload,
// so the join output is exactly n pairs and the rekeyed payloads stay
// inside the fixed width.
func streamTables(n int) map[string][]table.Row {
	t1 := make([]table.Row, n)
	t2 := make([]table.Row, n)
	for i := 0; i < n; i++ {
		t1[i] = table.Row{J: uint64(i), D: table.MustData(fmt.Sprintf("a%d", i%1000))}
		t2[i] = table.Row{J: uint64(i), D: table.MustData(fmt.Sprintf("b%d", i%1000))}
	}
	return map[string][]table.Row{"t1": t1, "t2": t2}
}

// streamMode is one store backend of the stream experiment.
type streamMode struct {
	name      string
	encrypted bool
	block     int
}

// BenchStream measures the peak tracked memory and wall time of the
// streaming executor against the stage-at-a-time baseline on the
// streamChain pipeline, per input size, over plain and block-sealed
// storage, cross-checking rows and canonical traces between every
// execution strategy (hashes up to hashCheckCap, event counts always).
// workers ≤ 0 means GOMAXPROCS; block ≤ 0 selects the default width.
func BenchStream(w io.Writer, ns []int, workers, block int) ([]StreamBenchResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if block <= 0 {
		block = table.DefaultSealedBlock
	}
	cipher, _, err := crypto.NewRandom()
	if err != nil {
		return nil, fmt.Errorf("exp: init cipher: %w", err)
	}
	modes := []streamMode{
		{name: "plain"},
		{name: "block-sealed", encrypted: true, block: block},
	}
	fmt.Fprintf(w, "Streaming benchmark — stage-at-a-time vs block-granular streaming, scan→join→rekey→filter→project (workers=%d, tracing on)\n", workers)
	fmt.Fprintf(w, "%8s %-12s %12s %12s %12s %14s %14s %10s %7s %s\n",
		"n", "mode", "mat", "streamed", "sink", "mat peak", "stream peak", "reduction", "wall", "trace")

	var out []StreamBenchResult
	for _, n := range ns {
		tables := streamTables(n)
		for _, mode := range modes {
			hash := n <= hashCheckCap
			opts := query.Options{
				Workers:      workers,
				CollectStats: true,
				TraceHash:    hash,
				Encrypted:    mode.encrypted,
				SealedBlock:  mode.block,
			}
			var c *crypto.Cipher
			if mode.encrypted {
				c = cipher
			}
			pipeline := streamChain()

			mo := opts
			mo.Materialized = true
			t0 := time.Now()
			matRes, matPS, err := query.Run(nil, mo, c, tables, pipeline)
			matT := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("exp: stream n=%d %s materialized: %w", n, mode.name, err)
			}

			t0 = time.Now()
			strRes, strPS, err := query.Run(nil, opts, c, tables, pipeline)
			strT := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("exp: stream n=%d %s streamed: %w", n, mode.name, err)
			}

			sink := &countSink{}
			t0 = time.Now()
			sinkPS, err := query.RunStream(nil, opts, c, tables, pipeline, sink)
			sinkT := time.Since(t0)
			if err != nil {
				return nil, fmt.Errorf("exp: stream n=%d %s sink: %w", n, mode.name, err)
			}

			if !reflect.DeepEqual(matRes, strRes) || sink.rows != len(matRes.Rows) {
				return nil, fmt.Errorf("exp: stream n=%d %s: executions disagree on the result", n, mode.name)
			}
			r := StreamBenchResult{
				N: n, M: n, Rows: len(matRes.Rows), Workers: workers,
				Mode: mode.name, Block: mode.block,
				MaterializedNS: matT.Nanoseconds(), StreamedNS: strT.Nanoseconds(), SinkNS: sinkT.Nanoseconds(),
				MaterializedPeakBytes: matPS.PeakBytes, StreamedPeakBytes: strPS.PeakBytes, SinkPeakBytes: sinkPS.PeakBytes,
				MaterializedTotalBytes: matPS.TotalAllocBytes, StreamedTotalBytes: strPS.TotalAllocBytes,
				TraceEvents: matPS.TraceEvents, GOMAXPROCS: runtime.GOMAXPROCS(0),
			}
			if matPS.PeakBytes > 0 {
				r.PeakReduction = 1 - float64(strPS.PeakBytes)/float64(matPS.PeakBytes)
			}
			if matT > 0 {
				r.WallRatio = float64(strT) / float64(matT)
			}
			r.TraceDetEvents = matPS.TraceEvents == strPS.TraceEvents && strPS.TraceEvents == sinkPS.TraceEvents
			det := "events=eq"
			if !r.TraceDetEvents {
				det = "events=DIVERGED"
			}
			if hash {
				r.TraceDetHash = matPS.TraceHash == strPS.TraceHash && strPS.TraceHash == sinkPS.TraceHash
				if r.TraceDetHash {
					det += " hash=eq"
				} else {
					det += " hash=DIVERGED"
				}
			} else {
				r.TraceSkipped = fmt.Sprintf("n exceeds hash check cap %d", hashCheckCap)
				det += " hash=skipped"
			}
			if !r.TraceDetEvents || (hash && !r.TraceDetHash) {
				return nil, fmt.Errorf("exp: stream n=%d %s: canonical traces diverged across executors", n, mode.name)
			}
			fmt.Fprintf(w, "%8d %-12s %12s %12s %12s %14d %14d %9.1f%% %6.2fx %s\n",
				n, mode.name,
				matT.Round(time.Microsecond), strT.Round(time.Microsecond), sinkT.Round(time.Microsecond),
				matPS.PeakBytes, strPS.PeakBytes, 100*r.PeakReduction, r.WallRatio, det)
			out = append(out, r)
		}
	}
	return out, nil
}

// WriteStreamBenchJSON writes the streaming benchmark rows as indented
// JSON to path.
func WriteStreamBenchJSON(path string, results []StreamBenchResult) error {
	return writeJSON(path, results)
}
