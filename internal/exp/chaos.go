package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"oblivjoin/internal/catalog"
	"oblivjoin/internal/fault"
	"oblivjoin/internal/query"
	"oblivjoin/internal/service"
	"oblivjoin/internal/table"
	"oblivjoin/internal/wal"
)

// This file is the chaos harness behind `oblivbench -exp chaos` and
// the fault-free overhead benchmark behind `-exp fault`.
//
// The chaos run drives a durable, admission-controlled Service with
// concurrent query and write load while a seeded fault injector fails
// the storage layer underneath it — EIO and ENOSPC on the WAL, failed
// snapshots, persistent write failure — and asserts the containment
// contract end to end: the service never crashes, every affected
// operation fails with a typed error, unaffected concurrent queries
// return bit-identical rows and trace hashes throughout, and after
// the faults clear a successful checkpoint restores ok health with
// state byte-identical across a recovery reopen.

const chaosQuerySQL = "SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key)"

// ChaosResult summarizes one chaos run for the harness caller.
type ChaosResult struct {
	Injected     uint64 // faults the injector landed
	TypedErrors  int    // operations that failed with typed errors
	Queries      int    // queries served bit-identically during faults
	HealthStates []string
}

// RunChaos executes the chaos scenario and returns an error on any
// containment violation. All randomness is seeded: two runs with the
// same seed inject the same faults.
func RunChaos(w io.Writer, rows int, seed uint64) (*ChaosResult, error) {
	fmt.Fprintf(w, "chaos — service under injected storage faults (rows=%d seed=%d)\n", rows, seed)

	mkRows := func(salt int) []table.Row { return walRows(rows, salt) }

	// Fault-free reference: the rows and trace hash every query during
	// the chaos phases must reproduce bit-identically.
	ref, err := service.New(service.Config{Defaults: query.Options{TraceHash: true, CollectStats: true}})
	if err != nil {
		return nil, err
	}
	for i, name := range []string{"t1", "t2"} {
		if err := ref.Register(name, mkRows(i)); err != nil {
			return nil, err
		}
	}
	refRes, refPS, err := ref.Query(context.Background(), chaosQuerySQL)
	if err != nil {
		return nil, err
	}
	_ = ref.Shutdown(context.Background())
	wantRows, wantHash := refRes.Rows, refPS.TraceHash

	dir, err := os.MkdirTemp("", "oblivchaos")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	in := fault.NewInjector(nil, seed)
	dataDir := filepath.Join(dir, "data")
	s, err := service.New(service.Config{
		Defaults:     query.Options{TraceHash: true, CollectStats: true},
		DataDir:      dataDir,
		FS:           in,
		RetryBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		return nil, err
	}
	for i, name := range []string{"t1", "t2"} {
		if err := s.Register(name, mkRows(i)); err != nil {
			return nil, err
		}
	}

	res := &ChaosResult{}
	var typedErrs, okQueries atomic.Int64
	note := func(phase string) {
		h := s.Health()
		res.HealthStates = append(res.HealthStates, string(h.State))
		fmt.Fprintf(w, "  %-28s health=%-9s injected=%d\n", phase, h.State, in.Injected())
	}
	checkQuery := func(phase string) error {
		qr, ps, err := s.Query(context.Background(), chaosQuerySQL)
		if err != nil {
			return fmt.Errorf("chaos: %s: query failed: %w", phase, err)
		}
		if !reflect.DeepEqual(qr.Rows, wantRows) || ps.TraceHash != wantHash {
			return fmt.Errorf("chaos: %s: query result or trace hash diverged", phase)
		}
		okQueries.Add(1)
		return nil
	}
	note("baseline")

	// Phase 1 — persistent WAL write failure under concurrent load:
	// writers must fail typed, readers must stay bit-identical, and the
	// breaker must land in read-only.
	in.Arm(fault.Rule{Op: fault.OpWrite, Path: "wal-", Err: fault.ENOSPC})
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				if err := s.Replace(fmt.Sprintf("scratch%d", c), mkRows(9)); err != nil {
					if errors.Is(err, wal.ErrReadOnly) || fault.IsInjectable(err) {
						errCh <- nil // typed, as required
					} else {
						errCh <- fmt.Errorf("chaos: writer got untyped error: %w", err)
					}
					typedErrs.Add(1)
				}
			}
		}(c)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				errCh <- checkQuery("wal-fault")
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return nil, err
		}
	}
	if h := s.Health(); h.State != wal.HealthReadOnly {
		return nil, fmt.Errorf("chaos: health after persistent WAL fault = %s, want read-only", h.State)
	}
	if err := s.Register("late", mkRows(7)); !errors.Is(err, wal.ErrReadOnly) {
		return nil, fmt.Errorf("chaos: write while read-only = %v, want ErrReadOnly", err)
	}
	note("persistent wal fault")

	// Phase 2 — faults clear; a successful checkpoint is the proof of
	// recovery and restores write service.
	in.Disarm()
	if err := s.Checkpoint(); err != nil {
		return nil, fmt.Errorf("chaos: checkpoint after faults cleared: %w", err)
	}
	if h := s.Health(); h.State != wal.HealthOK {
		return nil, fmt.Errorf("chaos: health after checkpoint = %s, want ok", h.State)
	}
	if err := s.Register("late", mkRows(7)); err != nil {
		return nil, fmt.Errorf("chaos: write after recovery: %w", err)
	}
	if err := checkQuery("recovered"); err != nil {
		return nil, err
	}
	note("recovered")

	// Phase 3 — snapshot failure degrades without failing commits.
	in.Arm(fault.Rule{Op: fault.OpOpen, Path: "snap-", Err: fault.EIO})
	if err := s.Checkpoint(); err == nil {
		return nil, errors.New("chaos: checkpoint under snapshot fault succeeded")
	}
	if h := s.Health(); h.State != wal.HealthDegraded {
		return nil, fmt.Errorf("chaos: health under snapshot fault = %s, want degraded", h.State)
	}
	if err := s.Replace("late", mkRows(8)); err != nil {
		return nil, fmt.Errorf("chaos: commit while degraded: %w", err)
	}
	if err := checkQuery("degraded"); err != nil {
		return nil, err
	}
	in.Disarm()
	if err := s.Checkpoint(); err != nil {
		return nil, fmt.Errorf("chaos: checkpoint after snapshot fault cleared: %w", err)
	}
	note("snapshot fault + recovery")

	// Phase 4 — spill-file faults: a memory-budgeted sibling service
	// (same injector) diverts intermediates to sealed spill files; a
	// flipped ciphertext bit fails its query with ErrSealedAuth and a
	// write error with ErrSpillIO — typed, process alive, and the main
	// service's queries untouched throughout.
	sp, err := service.New(service.Config{
		Defaults: query.Options{TraceHash: true, CollectStats: true, MemBudget: 1},
		FS:       in,
	})
	if err != nil {
		return nil, err
	}
	defer sp.Shutdown(context.Background())
	for i, name := range []string{"t1", "t2"} {
		if err := sp.Register(name, mkRows(i)); err != nil {
			return nil, err
		}
	}
	in.Arm(fault.Rule{Op: fault.OpRead, Path: "oblivspill", FlipBit: true})
	if _, _, err := sp.Query(context.Background(), chaosQuerySQL); !errors.Is(err, table.ErrSealedAuth) {
		return nil, fmt.Errorf("chaos: tampered spill read = %v, want ErrSealedAuth", err)
	}
	typedErrs.Add(1)
	in.Disarm()
	in.Arm(fault.Rule{Op: fault.OpRead, Path: "oblivspill", Err: fault.EIO})
	if _, _, err := sp.Query(context.Background(), chaosQuerySQL); !errors.Is(err, table.ErrSpillIO) {
		return nil, fmt.Errorf("chaos: failed spill read = %v, want ErrSpillIO", err)
	}
	typedErrs.Add(1)
	in.Disarm()
	// An unwritable spill target at allocation time is contained the
	// other way: the spiller falls back to resident memory and the
	// query completes with spill counters flat.
	in.Arm(fault.Rule{Op: fault.OpWrite, Path: "oblivspill", Err: fault.ENOSPC})
	qrFB, psFB, err := sp.Query(context.Background(), chaosQuerySQL)
	if err != nil {
		return nil, fmt.Errorf("chaos: spill-alloc fallback query failed: %w", err)
	}
	if psFB.SpillBytes != 0 {
		return nil, errors.New("chaos: spill-alloc fallback still spilled")
	}
	if !reflect.DeepEqual(qrFB.Rows, wantRows) || psFB.TraceHash != wantHash {
		return nil, errors.New("chaos: spill-alloc fallback query diverged")
	}
	in.Disarm()
	// Spill is trace-invariant: the recovered spilled query reproduces
	// the in-memory reference bit for bit.
	qr2, ps2, err := sp.Query(context.Background(), chaosQuerySQL)
	if err != nil {
		return nil, fmt.Errorf("chaos: spilled query after faults cleared: %w", err)
	}
	if !reflect.DeepEqual(qr2.Rows, wantRows) || ps2.TraceHash != wantHash {
		return nil, errors.New("chaos: spilled query diverged from in-memory reference")
	}
	if ps2.SpillBytes == 0 {
		return nil, errors.New("chaos: budgeted query did not spill — phase tested nothing")
	}
	if err := checkQuery("spill-fault neighbor"); err != nil {
		return nil, err
	}
	note("spill faults contained")

	// Phase 5 — quarantine: a fenced table fails typed; neighbors and
	// its own Replace-based restoration are unaffected.
	s.Catalog().Quarantine("t2", fault.EIO)
	if _, _, err := s.Query(context.Background(), chaosQuerySQL); !errors.Is(err, catalog.ErrQuarantined) {
		return nil, fmt.Errorf("chaos: query on quarantined table = %v, want ErrQuarantined", err)
	}
	if err := s.Replace("t2", mkRows(1)); err != nil {
		return nil, fmt.Errorf("chaos: replace of quarantined table: %w", err)
	}
	if err := checkQuery("post-quarantine"); err != nil {
		return nil, err
	}
	note("quarantine + restore")

	// Phase 6 — byte-identical recovery across a reopen: shut down,
	// reopen the same directory fault-free, re-run the reference query.
	if err := s.Shutdown(context.Background()); err != nil {
		return nil, fmt.Errorf("chaos: shutdown: %w", err)
	}
	s2, err := service.New(service.Config{
		Defaults: query.Options{TraceHash: true, CollectStats: true},
		DataDir:  dataDir,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: reopen after chaos: %w", err)
	}
	defer s2.Shutdown(context.Background())
	qr, ps, err := s2.Query(context.Background(), chaosQuerySQL)
	if err != nil {
		return nil, fmt.Errorf("chaos: post-recovery query: %w", err)
	}
	if !reflect.DeepEqual(qr.Rows, wantRows) || ps.TraceHash != wantHash {
		return nil, errors.New("chaos: post-recovery result or trace hash diverged")
	}
	res.TypedErrors = int(typedErrs.Load())
	res.Queries = int(okQueries.Load())
	res.Injected = in.Injected()
	if res.Injected == 0 {
		return nil, errors.New("chaos: no faults were injected — the run tested nothing")
	}
	fmt.Fprintf(w, "  contained: %d faults injected, %d typed errors, %d bit-identical queries\n",
		res.Injected, res.TypedErrors, res.Queries)
	return res, nil
}

// FaultBenchResult is one row of the seam-overhead benchmark: the same
// workload run with direct OS file IO versus through a (disarmed)
// fault injector. The pairs bound what the fault seam costs on the
// fault-free path; WallNS and IOBytes are the gated perf metrics,
// keyed by (scenario, n).
type FaultBenchResult struct {
	Scenario string `json:"scenario"`
	N        int    `json:"n"`

	WallNS  int64 `json:"wall_ns"`
	IOBytes int64 `json:"io_bytes"`
}

// BenchFault measures the fault seam's fault-free overhead on the two
// IO-heavy paths it intercepts: fsynced WAL commits and spill-backed
// queries. rows is the table size per commit, commits the commit
// count, queryN the input size of the spill-path query.
func BenchFault(w io.Writer, rows, commits, queryN int) ([]FaultBenchResult, error) {
	fmt.Fprintf(w, "fault seam — fault-free overhead (rows/commit=%d, commits=%d, query n=%d)\n", rows, commits, queryN)
	fmt.Fprintf(w, "%-14s %8s %12s %14s\n", "scenario", "n", "wall", "io bytes")
	var out []FaultBenchResult
	report := func(r FaultBenchResult) {
		fmt.Fprintf(w, "%-14s %8d %12s %14d\n",
			r.Scenario, r.N, time.Duration(r.WallNS).Round(time.Microsecond), r.IOBytes)
		out = append(out, r)
	}

	// Commit path: direct vs seamed. The injector is armed with
	// nothing, so the delta is pure interface indirection + rule-match
	// bookkeeping.
	commitBench := func(scenario string, fs fault.FS) error {
		dir, err := os.MkdirTemp("", "oblivfaultbench")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		db, _, err := wal.Open(dir, catalog.New(), wal.Options{SnapshotEvery: -1, FS: fs})
		if err != nil {
			return err
		}
		defer db.Abandon()
		if err := db.Register("t", walRows(rows, 0)); err != nil {
			return err
		}
		t0 := time.Now()
		for i := 1; i <= commits; i++ {
			if err := db.Replace("t", walRows(rows, i)); err != nil {
				return err
			}
		}
		wall := time.Since(t0)
		size, err := walFileSize(dir)
		if err != nil {
			return err
		}
		report(FaultBenchResult{Scenario: scenario, N: rows, WallNS: wall.Nanoseconds(), IOBytes: size})
		return nil
	}
	if err := commitBench("commit-direct", nil); err != nil {
		return nil, err
	}
	if err := commitBench("commit-seam", fault.NewInjector(nil, 1)); err != nil {
		return nil, err
	}

	// Spill path: a memory-budgeted query whose intermediates divert to
	// sealed spill files, direct vs seamed.
	queryBench := func(scenario string, fs fault.FS) error {
		s, err := service.New(service.Config{Defaults: query.Options{
			CollectStats: true,
			MemBudget:    1 << 16,
			SpillFS:      fs,
		}})
		if err != nil {
			return err
		}
		defer s.Shutdown(context.Background())
		for i, name := range []string{"t1", "t2"} {
			if err := s.Register(name, walRows(queryN, i)); err != nil {
				return err
			}
		}
		t0 := time.Now()
		_, ps, err := s.Query(context.Background(), chaosQuerySQL)
		if err != nil {
			return err
		}
		wall := time.Since(t0)
		if ps.SpillBytes == 0 {
			return errors.New("exp: fault: query did not spill — the seam was not exercised")
		}
		report(FaultBenchResult{Scenario: scenario, N: queryN, WallNS: wall.Nanoseconds(), IOBytes: ps.SpillBytes})
		return nil
	}
	if err := queryBench("query-direct", nil); err != nil {
		return nil, err
	}
	if err := queryBench("query-seam", fault.NewInjector(nil, 1)); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteFaultBenchJSON writes the fault benchmark rows as indented JSON
// to path.
func WriteFaultBenchJSON(path string, results []FaultBenchResult) error {
	return writeJSON(path, results)
}
