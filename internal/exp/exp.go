// Package exp is the experiment harness: each function regenerates one
// table or figure of the paper's evaluation (§6) and writes the same
// rows/series the paper reports. cmd/oblivbench is the CLI front end;
// EXPERIMENTS.md records a captured run against the paper's numbers.
package exp

import (
	"fmt"
	"io"
	"math"
	"time"

	"oblivjoin/internal/baseline"
	"oblivjoin/internal/core"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
	"oblivjoin/internal/typesys"
	"oblivjoin/internal/workload"
)

func log2(x float64) float64 { return math.Log2(x) }

// ourJoin runs the paper's join over sp and returns output plus stats.
func ourJoin(sp *memory.Space, t1, t2 []table.Row) ([]table.Pair, *core.Stats) {
	var st core.Stats
	cfg := &core.Config{Alloc: table.PlainAlloc(sp), Stats: &st}
	out := core.Join(cfg, t1, t2)
	return out, &st
}

// Table1 reruns the comparison of join approaches on a primary–foreign-
// key workload (the only class every contender accepts) of total size n,
// reporting measured wall time and physical public-memory accesses next
// to each algorithm's asymptotic complexity. The quadratic nested-loop
// baseline is skipped above nestedLoopCap to keep runs finite — which is
// itself the point of that row.
func Table1(w io.Writer, n int, nestedLoopCap int) error {
	t1, t2 := workload.PKFK(n/2, n-n/2, 1)

	type row struct {
		name, complexity, note string
		run                    func(sp *memory.Space) (int, error)
	}
	rows := []row{
		{"standard sort-merge join", "O(m' log m')", "not oblivious",
			func(sp *memory.Space) (int, error) {
				return len(baseline.SortMergeJoin(sp, t1, t2)), nil
			}},
		{"oblivious nested-loop", "O(n1·n2 log²(n1·n2))", "quadratic",
			func(sp *memory.Space) (int, error) {
				if n > nestedLoopCap {
					return -1, nil
				}
				return len(baseline.NestedLoopJoin(sp, t1, t2)), nil
			}},
		{"Opaque / ObliDB", "O(n log² n)", "PK-FK joins only",
			func(sp *memory.Space) (int, error) {
				out, err := baseline.OpaqueJoin(sp, t1, t2)
				return len(out), err
			}},
		{"ORAM sort-merge", "O(m' log m' · log² n)", "generic ORAM; large constants",
			func(sp *memory.Space) (int, error) {
				return len(baseline.ORAMJoin(sp, t1, t2, 7)), nil
			}},
		{"ours (oblivious join)", "O(n log² n + m log m)", "—",
			func(sp *memory.Space) (int, error) {
				out, _ := ourJoin(sp, t1, t2)
				return len(out), nil
			}},
	}

	fmt.Fprintf(w, "Table 1 — oblivious join approaches (PK-FK workload, n1=%d, n2=%d)\n", len(t1), len(t2))
	fmt.Fprintf(w, "%-28s %-24s %12s %16s   %s\n", "algorithm", "complexity", "time", "mem accesses", "notes")
	var wantM = -2
	for _, r := range rows {
		var c trace.Counter
		sp := memory.NewSpace(&c, nil)
		start := time.Now()
		m, err := r.run(sp)
		el := time.Since(start)
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		if m == -1 {
			fmt.Fprintf(w, "%-28s %-24s %12s %16s   %s\n", r.name, r.complexity,
				"(skipped)", "-", r.note+fmt.Sprintf(" (n > %d)", nestedLoopCap))
			continue
		}
		if wantM == -2 {
			wantM = m
		} else if m != wantM {
			return fmt.Errorf("%s returned %d pairs, others returned %d", r.name, m, wantM)
		}
		fmt.Fprintf(w, "%-28s %-24s %12s %16d   %s\n", r.name, r.complexity, el.Round(time.Microsecond), c.Total(), r.note)
	}
	fmt.Fprintf(w, "output size m = %d\n", wantM)
	return nil
}

// Table2 prints the obliviousness-level matrix of Table 2 and, for the
// rows this repository can machine-check, the verification status: the
// Figure 6 type system accepting the join's skeletons and rejecting the
// leaky variants, and the trace-equality experiment.
func Table2(w io.Writer) error {
	fmt.Fprintln(w, "Table 2 — degrees of obliviousness (paper's property matrix)")
	fmt.Fprintln(w, "property / setting            level I    level II   level III")
	fmt.Fprintln(w, "constant local memory         no         yes        yes")
	fmt.Fprintln(w, "circuit-like                  no         no         yes")
	fmt.Fprintln(w, "ext. memory / coprocessor     timing     timing     safe")
	fmt.Fprintln(w, "TEE (enclave)                 t,pd,pc,c,b t,pc,c,b  safe")
	fmt.Fprintln(w, "secure computation / FHE      n/a        n/a        safe")
	fmt.Fprintln(w)
	fmt.Fprintln(w, "machine-checked evidence for this implementation (level II, circuit-transformable):")

	// 1. Type system verdicts.
	checks := []struct {
		name   string
		prog   *typesys.Program
		accept bool
	}{
		{"compare-exchange skeleton", typesys.CompareExchange(0, 1), true},
		{"linear scan skeleton", typesys.LinearScan(), true},
		{"routing network (l=16)", typesys.BuildRouteProgram(16), true},
		{"bitonic network (n=16)", typesys.BuildBitonicProgram(16), true},
		{"leaky compare-exchange", typesys.LeakyCompareExchange(0, 1), false},
		{"secret loop bound", typesys.SecretLoop(), false},
		{"secret array index", typesys.SecretIndex(), false},
	}
	for _, c := range checks {
		_, err := typesys.Check(c.prog)
		verdict := "well-typed"
		if err != nil {
			verdict = "REJECTED (" + err.(*typesys.TypeError).Rule + ")"
		}
		status := "ok"
		if (err == nil) != c.accept {
			status = "UNEXPECTED"
		}
		fmt.Fprintf(w, "  typecheck %-28s → %-22s [%s]\n", c.name, verdict, status)
		if status != "ok" {
			return fmt.Errorf("type system verdict for %q unexpected", c.name)
		}
	}

	// 2. Trace equality across equal-size input classes.
	for _, cl := range workload.EqualOutputClasses() {
		var first string
		for i, gen := range cl.Variants {
			t1, t2 := gen()
			h := trace.NewHasher()
			sp := memory.NewSpace(h, nil)
			ourJoin(sp, t1, t2)
			if i == 0 {
				first = h.Hex()
			} else if h.Hex() != first {
				return fmt.Errorf("class %q: trace hash mismatch", cl.Name)
			}
		}
		fmt.Fprintf(w, "  trace-equal class %-22s → %d variants, hash %s… [ok]\n",
			cl.Name, len(cl.Variants), first[:12])
	}
	return nil
}

// Table3 reproduces the per-component cost breakdown: approximate
// analytic comparison counts for m ≈ n1 = n2, measured counts from the
// instrumented run, and each component's share of total runtime.
func Table3(w io.Writer, n int) error {
	t1, t2 := workload.MatchingPairs(n)
	sp := memory.NewSpace(nil, nil)
	start := time.Now()
	out, st := ourJoin(sp, t1, t2)
	total := time.Since(start)

	m := float64(len(out))
	nf := float64(n)
	n1 := float64(len(t1))

	analytic := []struct {
		name    string
		formula string
		value   float64
		meas    uint64
		dur     time.Duration
	}{
		{"initial sorts on TC", "n(log n)²/2", nf * log2(nf) * log2(nf) / 2,
			st.AugmentSort.CompareExchanges, st.TAugment},
		{"o.d. on T1,T2 (sort)", "n1(log n1)²/2", n1 * log2(n1) * log2(n1) / 2,
			st.DistributeSort.CompareExchanges, st.TDistSort},
		{"o.d. on T1,T2 (route)", "2m log m", 2 * m * log2(m),
			st.RouteOps, st.TDistRoute},
		{"align sort on S2", "m(log m)²/4", m * log2(m) * log2(m) / 4,
			st.AlignSort.CompareExchanges, st.TAlign},
	}

	fmt.Fprintf(w, "Table 3 — component cost breakdown (n=%d, n1=n2=%d, m=%d)\n", n, len(t1), len(out))
	fmt.Fprintf(w, "%-24s %-16s %14s %14s %9s\n", "subroutine", "analytic", "predicted", "measured", "runtime")
	sumDur := st.TAugment + st.TDistSort + st.TDistRoute + st.TAlign
	for _, a := range analytic {
		share := float64(a.dur) / float64(sumDur) * 100
		fmt.Fprintf(w, "%-24s %-16s %14.0f %14d %8.1f%%\n",
			a.name, a.formula, a.value, a.meas, share)
	}
	fmt.Fprintf(w, "total wall time %v (incl. linear scans and zip: %v)\n",
		sumDur.Round(time.Millisecond), total.Round(time.Millisecond))
	return nil
}

// Fig7 reproduces the memory-access visualization for joining two tables
// of size 4 into a table of size 8: the full event log rendered
// time×address. It returns the ASCII rendering and the PGM image.
func Fig7() (ascii, pgm string) {
	cls := workload.EqualOutputClasses()[0] // n1=n2=4, m=8
	t1, t2 := cls.Variants[0]()
	log := trace.NewLog()
	sp := memory.NewSpace(log, nil)
	ourJoin(sp, t1, t2)
	return log.Render(100, 28), log.RenderPGM(512, 256)
}

// Fig8Point is one measurement of the runtime-vs-input-size experiment.
type Fig8Point struct {
	N             int
	SortMerge     time.Duration // insecure baseline
	Prototype     time.Duration // our join, plain memory
	SGX           time.Duration // our join + enclave cost model
	SGXTransform  time.Duration // encrypted store + enclave cost model
	M             int
	EnclaveFaults uint64
}

// Fig8 sweeps input sizes with the paper's workload (m ≈ n1 = n2 = n/2)
// and measures the four curves of Figure 8. Hardware timings will not
// match the paper's i5-7300U/SGX numbers; the ordering and growth shape
// are the reproduction target:
//
//	sort-merge ≪ prototype < SGX < SGX-transformed,
//
// with the enclave curves bending once the working set exceeds the EPC.
// The "transformed" curve uses the AES-sealed store: like the paper's
// §3.4-transformed binary, it pays a constant-factor overhead for
// hardening every access, on top of the enclave costs.
func Fig8(w io.Writer, sizes []int) ([]Fig8Point, error) {
	var points []Fig8Point
	fmt.Fprintln(w, "Figure 8 — runtime vs input size (m ≈ n1 = n2 = n/2)")
	fmt.Fprintf(w, "%10s %10s %12s %12s %14s %8s\n", "n", "sort-merge", "prototype", "SGX(sim)", "SGX-transf(sim)", "m")
	for _, n := range sizes {
		t1, t2 := workload.MatchingPairs(n)
		var p Fig8Point
		p.N = n

		start := time.Now()
		out := baseline.SortMergeJoin(memory.NewSpace(nil, nil), t1, t2)
		p.SortMerge = time.Since(start)
		p.M = len(out)

		start = time.Now()
		ourJoin(memory.NewSpace(nil, nil), t1, t2)
		p.Prototype = time.Since(start)

		cost := memory.DefaultSGX()
		start = time.Now()
		ourJoin(memory.NewSpace(nil, cost), t1, t2)
		wall := time.Since(start)
		p.SGX = wall + cost.Elapsed
		p.EnclaveFaults = cost.Faults

		// Transformed variant: the §3.4 level-III rewrite replaces each
		// conditional with both branches' arithmetic — a constant factor
		// per instruction, which the paper measures at ≈11% over the
		// plain SGX binary (6.30 s vs 5.67 s at n = 10⁶). Our
		// implementation is already branch-free, so the transformed
		// curve is the SGX run scaled by that constant
		// (memory.DefaultSGXTransformed documents the model).
		p.SGXTransform = p.SGX * 111 / 100

		points = append(points, p)
		fmt.Fprintf(w, "%10d %10s %12s %12s %14s %8d\n", n,
			p.SortMerge.Round(time.Millisecond), p.Prototype.Round(time.Millisecond),
			p.SGX.Round(time.Millisecond), p.SGXTransform.Round(time.Millisecond), p.M)
	}
	return points, nil
}
