package exp

import (
	"io"
	"strings"
	"testing"
	"time"
)

// TestRunLoadShort drives a miniature closed loop over two scenario
// families and asserts the properties the CI load job gates: every
// operation accounted for, no goroutine leak after Shutdown, and every
// completed query reproducing the sequential reference trace hash.
func TestRunLoadShort(t *testing.T) {
	cfg := LoadConfig{
		Scenarios:   []string{"uniform", "mixed"},
		N:           256,
		Clients:     4,
		Ops:         12,
		Workers:     2,
		MaxInFlight: 4,
		Queue:       8,
		Timeout:     time.Minute,
		Seed:        7,
		CheckTraces: true,
	}
	results, err := RunLoad(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d records, want 2", len(results))
	}
	for _, r := range results {
		if got := r.Completed + r.Rejected + r.Canceled + r.Failed; got != cfg.Ops {
			t.Errorf("%s: %d outcomes for %d ops", r.Scenario, got, cfg.Ops)
		}
		if r.Failed > 0 {
			t.Errorf("%s: %d hard failures", r.Scenario, r.Failed)
		}
		if r.GoroutineLeak > 0 {
			t.Errorf("%s: leaked %d goroutines after Shutdown", r.Scenario, r.GoroutineLeak)
		}
		if !r.TraceHashesMatch || r.TraceChecked != r.Completed {
			t.Errorf("%s: trace verification: %d checked / %d completed, %d mismatches",
				r.Scenario, r.TraceChecked, r.Completed, r.TraceMismatches)
		}
		if r.Completed > 0 && (r.P50NS <= 0 || r.P95NS < r.P50NS || r.P99NS < r.P95NS) {
			t.Errorf("%s: implausible percentiles p50=%d p95=%d p99=%d", r.Scenario, r.P50NS, r.P95NS, r.P99NS)
		}
		if r.WallNS <= 0 || r.ThroughputQPS <= 0 {
			t.Errorf("%s: wall=%d qps=%f", r.Scenario, r.WallNS, r.ThroughputQPS)
		}
	}
}

// TestRunLoadRejectsUnderPressure squeezes admission (capacity 1, no
// queue slack beyond 1) so the closed loop must see ErrOverloaded
// rejections, and verifies completed queries still trace-match.
func TestRunLoadRejectsUnderPressure(t *testing.T) {
	cfg := LoadConfig{
		Scenarios:   []string{"uniform"},
		N:           512,
		Clients:     6,
		Ops:         18,
		Workers:     1,
		MaxInFlight: 1,
		Queue:       1,
		Timeout:     time.Minute,
		Seed:        3,
		CheckTraces: true,
	}
	results, err := RunLoad(io.Discard, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Rejected == 0 {
		t.Error("no rejections despite capacity 1, queue 1, 6 clients")
	}
	if r.Failed > 0 {
		t.Errorf("%d hard failures", r.Failed)
	}
	if !r.TraceHashesMatch {
		t.Errorf("%d trace mismatches among completed queries", r.TraceMismatches)
	}
	if r.RejectionRate <= 0 {
		t.Errorf("rejection rate %f", r.RejectionRate)
	}
	if r.GoroutineLeak > 0 {
		t.Errorf("leaked %d goroutines", r.GoroutineLeak)
	}
}

// TestMergeBest: per-metric minima for timings, maxima for failure
// signals, counts from the first run, scenarios matched by name.
func TestMergeBest(t *testing.T) {
	a := []LoadResult{{Scenario: "uniform", Completed: 10, WallNS: 100, P50NS: 10, P95NS: 50, P99NS: 90,
		ThroughputQPS: 1.0, TraceChecked: 10, TraceHashesMatch: true}}
	b := []LoadResult{{Scenario: "uniform", Completed: 10, WallNS: 80, P50NS: 12, P95NS: 40, P99NS: 95,
		ThroughputQPS: 1.2, GoroutineLeak: 2, TraceChecked: 10, TraceMismatches: 1}}
	m := MergeBest(a, b)
	if len(m) != 1 {
		t.Fatalf("merged %d records", len(m))
	}
	r := m[0]
	if r.WallNS != 80 || r.P50NS != 10 || r.P95NS != 40 || r.P99NS != 90 {
		t.Fatalf("timing minima wrong: %+v", r)
	}
	if r.ThroughputQPS != 1.2 || r.GoroutineLeak != 2 {
		t.Fatalf("maxima wrong: %+v", r)
	}
	if r.TraceChecked != 20 || r.TraceMismatches != 1 || r.TraceHashesMatch {
		t.Fatalf("trace accumulation wrong: %+v", r)
	}
	if r.Completed != 10 {
		t.Fatalf("counts must come from the first run: %+v", r)
	}
	if got := MergeBest(); got != nil {
		t.Fatalf("MergeBest() = %v", got)
	}
}

func TestRunLoadUnknownScenario(t *testing.T) {
	_, err := RunLoad(io.Discard, LoadConfig{Scenarios: []string{"nope"}, N: 16, Clients: 1, Ops: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown load scenario") {
		t.Fatalf("err = %v, want unknown scenario", err)
	}
}
