package exp

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"oblivjoin/internal/query"
	"oblivjoin/internal/table"
	"oblivjoin/internal/workload"
)

// SQLBenchResult is one row of the machine-readable SQL benchmark: the
// sequential and parallel wall times of one query shape at one input
// size, with tracing on, plus the determinism evidence (the parallel
// run's trace hash must equal the sequential one's). Future sessions
// diff these files to track the SQL path's perf trajectory.
type SQLBenchResult struct {
	N            int     `json:"n"`
	Query        string  `json:"query"`
	Rows         int     `json:"rows"`
	Workers      int     `json:"workers"`
	SequentialNS int64   `json:"sequential_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
	// PeakBytes and TotalAllocBytes come from the sequential run's
	// PlanStats: the deterministic allocation-gauge readings, gated by
	// benchdiff alongside the wall times.
	PeakBytes       int64  `json:"peak_bytes"`
	TotalAllocBytes int64  `json:"total_alloc_bytes"`
	TraceEvents     uint64 `json:"trace_events"`
	TraceDetEv      bool   `json:"trace_event_counts_equal"`
	TraceDetHash    bool   `json:"trace_hashes_equal"`
	TraceSkipped    string `json:"trace_hash_skipped,omitempty"`
	GOMAXPROCS      int    `json:"gomaxprocs"`
}

// sqlBenchQueries are the representative shapes the benchmark times:
// a materialized binary join, a 3-way chain, and the §7 aggregation
// fast path.
var sqlBenchQueries = []string{
	"SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key)",
	"SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key) JOIN t3 USING (key)",
	"SELECT key, COUNT(*) FROM t1 JOIN t2 USING (key) GROUP BY key",
}

// sqlCatalog builds three one-to-one matched tables of n rows each with
// short payloads (so the 3-way chain's rekeyed payloads stay within the
// fixed width).
func sqlCatalog(n int) map[string][]table.Row {
	t1, t2 := workload.MatchingPairs(n)
	short := func(rows []table.Row, tag byte) []table.Row {
		out := make([]table.Row, len(rows))
		for i, r := range rows {
			out[i] = table.Row{J: r.J, D: table.MustData(fmt.Sprintf("%c%d", tag, i%1000))}
		}
		return out
	}
	return map[string][]table.Row{
		"t1": short(t1, 'a'),
		"t2": short(t2, 'b'),
		"t3": short(t1, 'c'),
	}
}

// BenchSQL times each benchmark query sequentially versus with the
// given worker count, tracing on, and cross-checks result equality and
// trace-hash equality between the two runs. workers ≤ 0 means
// GOMAXPROCS.
func BenchSQL(w io.Writer, ns []int, workers int) ([]SQLBenchResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(w, "SQL benchmark — sequential vs parallel plan execution (workers=%d, tracing on)\n", workers)
	fmt.Fprintf(w, "%8s %-72s %8s %12s %12s %9s\n", "n", "query", "rows", "sequential", "parallel", "speedup")
	var out []SQLBenchResult
	for _, n := range ns {
		catalog := sqlCatalog(n)
		// Full canonical hashes are cross-checked up to hashCheckCap;
		// larger sizes compare event counts and say so explicitly in
		// the record.
		hash := n <= hashCheckCap
		for _, src := range sqlBenchQueries {
			run := func(wk int) (*query.Result, *query.PlanStats, time.Duration, error) {
				eng := query.NewEngineWith(query.Options{Workers: wk, TraceHash: hash, CollectStats: true})
				for name, rows := range catalog {
					if err := eng.Register(name, rows); err != nil {
						return nil, nil, 0, err
					}
				}
				start := time.Now()
				res, err := eng.Query(src)
				if err != nil {
					return nil, nil, 0, err
				}
				return res, eng.LastStats(), time.Since(start), nil
			}
			seqRes, seqStats, seqT, err := run(1)
			if err != nil {
				return nil, fmt.Errorf("exp: sql bench n=%d: %w", n, err)
			}
			parRes, parStats, parT, err := run(workers)
			if err != nil {
				return nil, fmt.Errorf("exp: sql bench n=%d: %w", n, err)
			}
			evEq := seqStats.TraceEvents == parStats.TraceEvents
			r := SQLBenchResult{
				N: n, Query: src, Rows: len(seqRes.Rows), Workers: workers,
				SequentialNS: seqT.Nanoseconds(), ParallelNS: parT.Nanoseconds(),
				PeakBytes: seqStats.PeakBytes, TotalAllocBytes: seqStats.TotalAllocBytes,
				TraceEvents: seqStats.TraceEvents, TraceDetEv: evEq,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			}
			if hash {
				r.TraceDetHash = seqStats.TraceHash == parStats.TraceHash
			} else {
				r.TraceSkipped = fmt.Sprintf("n exceeds hash check cap %d", hashCheckCap)
			}
			if !evEq || (hash && !r.TraceDetHash) || !reflect.DeepEqual(seqRes, parRes) {
				return nil, fmt.Errorf("exp: parallel SQL run diverged from sequential at n=%d (%s)", n, src)
			}
			if parT > 0 {
				r.Speedup = float64(seqT) / float64(parT)
			}
			fmt.Fprintf(w, "%8d %-72s %8d %12s %12s %8.2fx\n", n, src, r.Rows,
				seqT.Round(time.Microsecond), parT.Round(time.Microsecond), r.Speedup)
			out = append(out, r)
		}
	}
	return out, nil
}
