package exp

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1RunsAndAgrees(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, 64, 128); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"standard sort-merge join", "oblivious nested-loop", "Opaque",
		"ORAM sort-merge", "ours (oblivious join)", "output size m = 32",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestTable1SkipsQuadraticPastCap(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf, 300, 100); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(skipped)") {
		t.Fatal("nested loop not skipped past cap")
	}
}

func TestTable2AllVerified(t *testing.T) {
	var buf bytes.Buffer
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "UNEXPECTED") {
		t.Fatalf("verification failures:\n%s", out)
	}
	if strings.Count(out, "[ok]") < 7 {
		t.Fatalf("too few verified rows:\n%s", out)
	}
	if !strings.Contains(out, "REJECTED (T-Cond)") {
		t.Fatal("leaky program not shown as rejected")
	}
}

func TestTable3SharesAndCounts(t *testing.T) {
	var buf bytes.Buffer
	if err := Table3(&buf, 4096); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"initial sorts on TC", "o.d. on T1,T2 (route)", "align sort on S2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing row %q:\n%s", want, out)
		}
	}
}

func TestFig7Render(t *testing.T) {
	ascii, pgm := Fig7()
	if !strings.Contains(ascii, "events") {
		t.Fatalf("ascii render header missing:\n%s", ascii[:80])
	}
	if !strings.HasPrefix(pgm, "P2\n512 256\n255\n") {
		t.Fatal("pgm header wrong")
	}
	if !strings.Contains(ascii, "W") || !strings.Contains(ascii, "r") {
		t.Fatal("render contains no accesses")
	}
}

func TestCircuitReport(t *testing.T) {
	var buf bytes.Buffer
	if err := Circuit(&buf, []int{4, 8}, 16); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"compare-exchange", "bitonic sort, n=8", "routing network, l=8", "AND"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestFig8ShapeHolds(t *testing.T) {
	var buf bytes.Buffer
	points, err := Fig8(&buf, []int{1024, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.M != p.N/2 {
			t.Fatalf("workload regime broken: n=%d m=%d", p.N, p.M)
		}
		if p.SortMerge >= p.Prototype {
			t.Errorf("n=%d: insecure sort-merge (%v) not faster than prototype (%v)",
				p.N, p.SortMerge, p.Prototype)
		}
		if p.Prototype >= p.SGX {
			t.Errorf("n=%d: prototype (%v) not faster than SGX sim (%v)", p.N, p.Prototype, p.SGX)
		}
		if p.SGX >= p.SGXTransform {
			t.Errorf("n=%d: SGX (%v) not faster than transformed (%v)", p.N, p.SGX, p.SGXTransform)
		}
	}
	// Superlinear growth between the two sizes.
	if points[1].Prototype <= points[0].Prototype {
		t.Error("runtime did not grow with n")
	}
}
