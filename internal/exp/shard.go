package exp

import (
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"oblivjoin/internal/query"
)

// ShardBenchResult is one row of the sharded-execution benchmark: the
// scan→join→rekey→filter→project chain at one shard count, fixed input
// size and worker budget. Wall time and the allocation-gauge readings
// are the gated perf metrics (keyed on n, workers, shards by
// benchdiff); SpeedupVsS1 is derived reporting. Every sharded row's
// result is compared against the unsharded row's — shard-count
// invariance is checked on every benchmark run, not just in tests —
// and the composed trace hash is recorded from a separate
// instrumented run (timing runs count events only) and must reproduce
// across two executions.
type ShardBenchResult struct {
	N       int `json:"n"`
	M       int `json:"m"`
	Workers int `json:"workers"`
	Shards  int `json:"shards"`

	WallNS          int64 `json:"wall_ns"`
	PeakBytes       int64 `json:"peak_bytes"`
	TotalAllocBytes int64 `json:"total_alloc_bytes"`

	Comparators uint64  `json:"comparators"`
	SpeedupVsS1 float64 `json:"speedup_vs_s1"`

	ResultsEqual bool   `json:"results_equal_s1"`
	TraceHash    string `json:"trace_hash,omitempty"`
	TraceDetHash bool   `json:"trace_hashes_equal"`
	TraceSkipped string `json:"trace_hash_skipped,omitempty"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
}

// BenchShard measures the sharded executor at each shard count in
// shards (1 must come first — it is the baseline the speedups and the
// invariance checks compare against) on the streamChain pipeline over
// plain storage at one input size. workers ≤ 0 means GOMAXPROCS.
func BenchShard(w io.Writer, n, workers int, shards []int) ([]ShardBenchResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(shards) == 0 || shards[0] != 1 {
		shards = append([]int{1}, shards...)
	}
	tables := streamTables(n)
	pipeline := streamChain()
	fmt.Fprintf(w, "Shard benchmark — hash-partitioned parallel join, scan→join→rekey→filter→project (n=%d, workers=%d)\n", n, workers)
	fmt.Fprintf(w, "%7s %12s %14s %9s %12s %8s %s\n", "shards", "wall", "peak", "speedup", "comparators", "results", "trace")

	var out []ShardBenchResult
	var baseRes *query.Result
	var baseNS int64
	for _, s := range shards {
		opts := query.Options{Workers: workers, CollectStats: true, Shards: s}
		t0 := time.Now()
		res, ps, err := query.Run(nil, opts, nil, tables, pipeline)
		wall := time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("exp: shard s=%d: %w", s, err)
		}

		r := ShardBenchResult{
			N: n, M: n, Workers: workers, Shards: s,
			WallNS: wall.Nanoseconds(), PeakBytes: ps.PeakBytes, TotalAllocBytes: ps.TotalAllocBytes,
			Comparators: ps.Comparators, GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		if s == 1 {
			baseRes, baseNS = res, r.WallNS
			r.ResultsEqual = true
		} else {
			r.ResultsEqual = reflect.DeepEqual(res, baseRes)
			if !r.ResultsEqual {
				return nil, fmt.Errorf("exp: shard s=%d: result diverges from the unsharded run", s)
			}
		}
		if baseNS > 0 && r.WallNS > 0 {
			r.SpeedupVsS1 = float64(baseNS) / float64(r.WallNS)
		}

		// Composed-hash evidence from separate instrumented runs: the
		// hash must reproduce exactly; timing above stays unhashed.
		if n <= hashCheckCap {
			ho := opts
			ho.TraceHash = true
			_, hps1, err := query.Run(nil, ho, nil, tables, pipeline)
			if err != nil {
				return nil, fmt.Errorf("exp: shard s=%d hashed: %w", s, err)
			}
			_, hps2, err := query.Run(nil, ho, nil, tables, pipeline)
			if err != nil {
				return nil, fmt.Errorf("exp: shard s=%d hashed repeat: %w", s, err)
			}
			r.TraceHash = hps1.TraceHash
			r.TraceDetHash = hps1.TraceHash != "" && hps1.TraceHash == hps2.TraceHash
			if !r.TraceDetHash {
				return nil, fmt.Errorf("exp: shard s=%d: composed trace hash did not reproduce", s)
			}
		} else {
			r.TraceSkipped = fmt.Sprintf("n exceeds hash check cap %d", hashCheckCap)
		}

		det := "hash=eq"
		if r.TraceSkipped != "" {
			det = "hash=skipped"
		}
		fmt.Fprintf(w, "%7d %12s %14d %8.2fx %12d %8t %s\n",
			s, wall.Round(time.Microsecond), r.PeakBytes, r.SpeedupVsS1, r.Comparators, r.ResultsEqual, det)
		out = append(out, r)
	}
	return out, nil
}

// WriteShardBenchJSON writes the shard benchmark rows as indented JSON
// to path.
func WriteShardBenchJSON(path string, results []ShardBenchResult) error {
	return writeJSON(path, results)
}
