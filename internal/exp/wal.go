package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"oblivjoin/internal/catalog"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/table"
	"oblivjoin/internal/wal"
)

// WALBenchResult is one row of the durability benchmark. Scenarios:
//
//	commit    — Records fsynced Replace commits of N rows each; wall
//	            is the whole loop (the per-commit latency is derived
//	            reporting on stdout), wal_bytes the resulting log.
//	snapshot  — write one whole-catalog checkpoint of N total rows.
//	restore   — read that checkpoint back.
//	recover   — full DB open (key load, replay, reopen-for-append)
//	            over a WAL of N records; two lengths are recorded so
//	            the baseline pins how recovery scales with log length.
//
// WallNS and WALBytes are the gated perf metrics — exactly two per
// record, keyed by (scenario, n) through benchdiff's generic key.
type WALBenchResult struct {
	Scenario string `json:"scenario"`
	N        int    `json:"n"`
	Records  int    `json:"records,omitempty"`
	Tables   int    `json:"tables,omitempty"`

	WallNS   int64 `json:"wall_ns"`
	WALBytes int64 `json:"wal_bytes"`
}

// walRows builds n deterministic rows.
func walRows(n, salt int) []table.Row {
	rows := make([]table.Row, n)
	for i := range rows {
		d, _ := table.MakeData(fmt.Sprintf("w%d-%d", salt, i%100))
		rows[i] = table.Row{J: uint64(i), D: d}
	}
	return rows
}

// walFileSize returns the size of the single wal-*.log in dir.
func walFileSize(dir string) (int64, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return 0, err
	}
	if len(matches) != 1 {
		return 0, fmt.Errorf("exp: wal: %d log files in %s, want 1", len(matches), dir)
	}
	st, err := os.Stat(matches[0])
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// BenchWAL measures the durable-catalog path: fsynced commit latency,
// snapshot write and restore, and crash recovery at each WAL length in
// recoverLens. rows is the table size per commit; commits the number
// of Replace commits in the commit scenario.
func BenchWAL(w io.Writer, rows, commits int, recoverLens []int) ([]WALBenchResult, error) {
	root, err := os.MkdirTemp("", "oblivwalbench")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)

	fmt.Fprintf(w, "WAL benchmark — sealed log commit, snapshot, recovery (rows/commit=%d)\n", rows)
	fmt.Fprintf(w, "%-10s %8s %8s %12s %14s %s\n", "scenario", "n", "records", "wall", "wal bytes", "detail")
	var out []WALBenchResult
	report := func(r WALBenchResult, detail string) {
		fmt.Fprintf(w, "%-10s %8d %8d %12s %14d %s\n",
			r.Scenario, r.N, r.Records, time.Duration(r.WallNS).Round(time.Microsecond), r.WALBytes, detail)
		out = append(out, r)
	}

	// commit: every Replace is append+fsync+apply — the latency a
	// client pays for a durable acknowledgement.
	dir := filepath.Join(root, "commit")
	db, _, err := wal.Open(dir, catalog.New(), wal.Options{SnapshotEvery: -1})
	if err != nil {
		return nil, err
	}
	if err := db.Register("t", walRows(rows, 0)); err != nil {
		return nil, err
	}
	t0 := time.Now()
	for i := 1; i <= commits; i++ {
		if err := db.Replace("t", walRows(rows, i)); err != nil {
			return nil, err
		}
	}
	wall := time.Since(t0)
	size, err := walFileSize(dir)
	if err != nil {
		return nil, err
	}
	report(WALBenchResult{
		Scenario: "commit", N: rows, Records: commits,
		WallNS: wall.Nanoseconds(), WALBytes: size,
	}, fmt.Sprintf("%s/commit fsynced", (wall/time.Duration(commits)).Round(time.Microsecond)))

	// snapshot + restore: checkpoint the commit catalog (4 tables so
	// the snapshot walks more than one frame) and read it back.
	for i := 0; i < 3; i++ {
		if err := db.Register(fmt.Sprintf("t%d", i), walRows(rows, i)); err != nil {
			return nil, err
		}
	}
	snap, err := db.Catalog().Snapshot()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, rs := range snap {
		total += len(rs)
	}
	cipher, err := walBenchCipher(dir)
	if err != nil {
		return nil, err
	}
	snapPath := filepath.Join(root, "bench.snap")
	ver := db.Catalog().Version()
	t0 = time.Now()
	if err := wal.WriteSnapshot(snapPath, cipher, ver, snap); err != nil {
		return nil, err
	}
	wall = time.Since(t0)
	st, err := os.Stat(snapPath)
	if err != nil {
		return nil, err
	}
	report(WALBenchResult{
		Scenario: "snapshot", N: total, Tables: len(snap),
		WallNS: wall.Nanoseconds(), WALBytes: st.Size(),
	}, "atomic write+rename+fsync")

	t0 = time.Now()
	rv, tables, err := wal.ReadSnapshot(snapPath, cipher)
	wall = time.Since(t0)
	if err != nil {
		return nil, err
	}
	if rv != ver || len(tables) != len(snap) {
		return nil, fmt.Errorf("exp: wal: restore read v%d/%d tables, want v%d/%d", rv, len(tables), ver, len(snap))
	}
	report(WALBenchResult{
		Scenario: "restore", N: total, Tables: len(tables),
		WallNS: wall.Nanoseconds(), WALBytes: st.Size(),
	}, "decrypt+verify all tables")
	if err := db.Abandon(); err != nil {
		return nil, err
	}

	// recover: cold open over a WAL of L records — what a restart
	// after a crash pays before serving.
	for _, l := range recoverLens {
		dir := filepath.Join(root, fmt.Sprintf("recover-%d", l))
		db, _, err := wal.Open(dir, catalog.New(), wal.Options{SnapshotEvery: -1})
		if err != nil {
			return nil, err
		}
		if err := db.Register("t", walRows(rows, 0)); err != nil {
			return nil, err
		}
		for i := 1; i < l; i++ {
			if err := db.Replace("t", walRows(rows, i)); err != nil {
				return nil, err
			}
		}
		if err := db.Abandon(); err != nil {
			return nil, err
		}
		size, err := walFileSize(dir)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		db2, info, err := wal.Open(dir, catalog.New(), wal.Options{SnapshotEvery: -1})
		wall := time.Since(t0)
		if err != nil {
			return nil, err
		}
		if info.Replayed != l || info.Version != uint64(l) {
			return nil, fmt.Errorf("exp: wal: recovery replayed %d records to v%d, want %d", info.Replayed, info.Version, l)
		}
		if err := db2.Abandon(); err != nil {
			return nil, err
		}
		report(WALBenchResult{
			Scenario: "recover", N: l, Records: l,
			WallNS: wall.Nanoseconds(), WALBytes: size,
		}, fmt.Sprintf("replayed to v%d", info.Version))
	}
	return out, nil
}

// walBenchCipher opens the benchmark directory's persisted master key
// — snapshot timing must use the same cipher the DB seals with.
func walBenchCipher(dir string) (*crypto.Cipher, error) {
	key, err := os.ReadFile(filepath.Join(dir, "master.key"))
	if err != nil {
		return nil, err
	}
	return crypto.New(key)
}

// WriteWALBenchJSON writes the WAL benchmark rows as indented JSON to
// path.
func WriteWALBenchJSON(path string, results []WALBenchResult) error {
	return writeJSON(path, results)
}
