package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"oblivjoin/internal/query"
	"oblivjoin/internal/table"
)

// PlannerBenchResult is one row of the planner benchmark: the exact
// comparator count of a skewed join chain executed in written order
// versus greedy cost-based order, with the modeled count the greedy
// planner optimised. Comparator counts are data-independent functions
// of the (public) table sizes, so these records are bit-reproducible
// across hosts and benchdiff gates them like wall times. The two runs
// must produce the same result rows — the greedy plan's canonicalize
// stage restores the written-order payload layout — or the benchmark
// errors out.
type PlannerBenchResult struct {
	N     int    `json:"n"`
	Query string `json:"query"`
	Rows  int    `json:"rows"`
	// WrittenComparators counts compare–exchanges when joins execute
	// in the order the query wrote them; GreedyComparators when the
	// cost planner reorders them. Ratio = written / greedy.
	WrittenComparators int64   `json:"written_comparators"`
	GreedyComparators  int64   `json:"greedy_comparators"`
	Ratio              float64 `json:"comparator_ratio"`
	// ModeledComparators is the greedy plan's predicted count — an
	// underestimate on fan-out joins (the model assumes foreign-key
	// joins until replan feedback corrects it).
	ModeledComparators int64  `json:"modeled_comparators"`
	WrittenNS          int64  `json:"written_ns"`
	GreedyNS           int64  `json:"greedy_ns"`
	WrittenOrder       string `json:"written_order"`
	GreedyOrder        string `json:"greedy_order"`
}

// plannerQueries are skewed chains where written order is wasteful:
// the query lists the fan-out tables first and the tiny selective
// table last, so executing as written materialises the blow-up before
// shrinking it. The greedy planner joins the small tables first.
var plannerQueries = []string{
	"SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key) JOIN t4 USING (key)",
	"SELECT key, left.data, right.data FROM t1 JOIN t2 USING (key) JOIN t3 USING (key) JOIN t4 USING (key)",
}

// plannerCatalog builds the skewed star: t1 has 256·scale distinct
// keys, t2 and t3 fan each key out 8×, and t4 keeps only the first
// 16·scale keys. Payloads stay short (tag + one digit) so a 4-way
// chain's escaped concatenation fits the fixed data width.
func plannerCatalog(scale int) map[string][]table.Row {
	keys := 256 * scale
	mk := func(n, mod int, tag byte) []table.Row {
		rows := make([]table.Row, n)
		for i := range rows {
			rows[i] = table.Row{J: uint64(i % mod), D: table.MustData(fmt.Sprintf("%c%d", tag, i%10))}
		}
		return rows
	}
	return map[string][]table.Row{
		"t1": mk(keys, keys, 'a'),
		"t2": mk(8*keys, keys, 'b'),
		"t3": mk(8*keys, keys, 'c'),
		"t4": mk(16*scale, 16*scale, 'd'),
	}
}

// BenchPlanner runs each skewed chain in written order and under the
// cost planner, cross-checks that both orders produce the same rows,
// and reports the comparator saving. scales multiply the base catalog
// (256/2048/2048/16 rows).
func BenchPlanner(w io.Writer, scales []int) ([]PlannerBenchResult, error) {
	fmt.Fprintln(w, "Planner benchmark — written versus greedy join order (exact comparator counts)")
	fmt.Fprintf(w, "%8s %-24s %8s %14s %14s %7s\n", "n", "chain", "rows", "written", "greedy", "ratio")
	var out []PlannerBenchResult
	for _, scale := range scales {
		catalog := plannerCatalog(scale)
		for _, src := range plannerQueries {
			run := func(costPlan bool) (*query.Result, *query.PlanStats, *query.PlanCostReport, time.Duration, error) {
				eng := query.NewEngineWith(query.Options{CostPlan: costPlan, CollectStats: true})
				for name, rows := range catalog {
					if err := eng.Register(name, rows); err != nil {
						return nil, nil, nil, 0, err
					}
				}
				rep, err := eng.PlanCost(src)
				if err != nil {
					return nil, nil, nil, 0, err
				}
				start := time.Now()
				res, err := eng.Query(src)
				if err != nil {
					return nil, nil, nil, 0, err
				}
				return res, eng.LastStats(), rep, time.Since(start), nil
			}
			wrRes, wrStats, _, wrT, err := run(false)
			if err != nil {
				return nil, fmt.Errorf("exp: planner bench scale=%d written: %w", scale, err)
			}
			grRes, grStats, grRep, grT, err := run(true)
			if err != nil {
				return nil, fmt.Errorf("exp: planner bench scale=%d greedy: %w", scale, err)
			}
			// The orders differ but the rows must not: the greedy
			// plan's canonicalize stage restores the written payload
			// layout, so the sorted row sets are byte-identical.
			if canonRows(wrRes) != canonRows(grRes) {
				return nil, fmt.Errorf("exp: greedy plan changed the result of %q at scale %d", src, scale)
			}
			n := 8 * 256 * scale // the fan-out tables dominate
			r := PlannerBenchResult{
				N: n, Query: src, Rows: len(wrRes.Rows),
				WrittenComparators: int64(wrStats.Comparators),
				GreedyComparators:  int64(grStats.Comparators),
				ModeledComparators: int64(grRep.Comparators),
				WrittenNS:          wrT.Nanoseconds(),
				GreedyNS:           grT.Nanoseconds(),
				WrittenOrder:       joinOrder(src, false, catalog),
				GreedyOrder:        joinOrder(src, true, catalog),
			}
			if r.GreedyComparators > 0 {
				r.Ratio = float64(r.WrittenComparators) / float64(r.GreedyComparators)
			}
			chain := fmt.Sprintf("%d-way %s", strings.Count(src, "JOIN")+1, r.GreedyOrder)
			fmt.Fprintf(w, "%8d %-24s %8d %14d %14d %6.2fx\n", n, chain, r.Rows,
				r.WrittenComparators, r.GreedyComparators, r.Ratio)
			out = append(out, r)
		}
	}
	return out, nil
}

// canonRows renders a result's rows sorted into one comparable string.
func canonRows(res *query.Result) string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = strings.Join(r, ",")
	}
	sort.Strings(rows)
	return strings.Join(rows, "\n")
}

// joinOrder reads the join sequence out of the plan's cost report:
// the scanned base table followed by each oblivious-join stage's
// operand, e.g. "t1⋈t4⋈t2⋈t3".
func joinOrder(src string, costPlan bool, catalog map[string][]table.Row) string {
	eng := query.NewEngineWith(query.Options{CostPlan: costPlan})
	for name, rows := range catalog {
		if err := eng.Register(name, rows); err != nil {
			return ""
		}
	}
	rep, err := eng.PlanCost(src)
	if err != nil {
		return ""
	}
	var parts []string
	for _, st := range rep.Stages {
		if t, ok := strings.CutPrefix(st.Op, "scan("); ok {
			parts = append(parts, strings.TrimSuffix(strings.Fields(t)[0], ")"))
		}
		if t, ok := strings.CutPrefix(st.Op, "oblivious-join("); ok {
			parts = append(parts, strings.TrimSuffix(t, ")"))
		}
	}
	return strings.Join(parts, "⋈")
}
