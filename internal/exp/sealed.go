package exp

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"oblivjoin/internal/core"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
	"oblivjoin/internal/workload"
)

// SealedBenchResult is one row of the sealed-storage benchmark: the
// wall times and heap allocations of a bitonic sort and of the full
// join pipeline over plain, per-entry sealed and block-sealed storage
// at one input size, plus the determinism evidence that all three
// stores record the identical canonical trace. As with the join bench,
// every record carries an explicit hash verdict or an explicit skip
// reason.
type SealedBenchResult struct {
	N       int `json:"n"`
	M       int `json:"m"`
	Workers int `json:"workers"`
	Block   int `json:"block"`

	PlainSortNS  int64 `json:"plain_sort_ns"`
	SealedSortNS int64 `json:"sealed_sort_ns"`
	BlockSortNS  int64 `json:"block_sort_ns"`

	PlainJoinNS  int64 `json:"plain_join_ns"`
	SealedJoinNS int64 `json:"sealed_join_ns"`
	BlockJoinNS  int64 `json:"block_join_ns"`

	PlainJoinAllocs  uint64 `json:"plain_join_allocs"`
	SealedJoinAllocs uint64 `json:"sealed_join_allocs"`
	BlockJoinAllocs  uint64 `json:"block_join_allocs"`

	// Per-backend allocation-gauge readings of the join phase —
	// deterministic functions of (n, block), gated by benchdiff like
	// the wall times.
	PlainPeakBytes   int64 `json:"plain_peak_bytes"`
	SealedPeakBytes  int64 `json:"sealed_peak_bytes"`
	BlockPeakBytes   int64 `json:"block_peak_bytes"`
	PlainTotalBytes  int64 `json:"plain_total_alloc_bytes"`
	SealedTotalBytes int64 `json:"sealed_total_alloc_bytes"`
	BlockTotalBytes  int64 `json:"block_total_alloc_bytes"`

	// SealedOverBlock is the speedup of the block-sealed join over the
	// per-entry sealed join (sealed_join_ns / block_join_ns).
	SealedOverBlock float64 `json:"sealed_over_block"`

	TraceDetEvents bool   `json:"trace_event_counts_equal"`
	TraceDetHash   bool   `json:"trace_hashes_equal"`
	TraceSkipped   string `json:"trace_hash_skipped,omitempty"`
	GOMAXPROCS     int    `json:"gomaxprocs"`
}

// sealedAlloc is one storage backend of the sealed experiment.
type sealedAlloc struct {
	name  string
	alloc func(sp *memory.Space) table.Alloc
}

// BenchSealed times a 2n-entry bitonic sort and the full join pipeline
// over plain, per-entry sealed and block-sealed storage at each input
// size, verifying that the three backends record identical canonical
// traces (event counts always; hashes up to hashCheckCap). workers ≤ 0
// means GOMAXPROCS; block ≤ 0 selects table.DefaultSealedBlock.
func BenchSealed(w io.Writer, ns []int, workers, block int) ([]SealedBenchResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if block <= 0 {
		block = table.DefaultSealedBlock
	}
	cipher, _, err := crypto.NewRandom()
	if err != nil {
		return nil, fmt.Errorf("exp: init cipher: %w", err)
	}
	backends := []sealedAlloc{
		{"plain", table.PlainAlloc},
		{"sealed", func(sp *memory.Space) table.Alloc { return table.EncryptedAlloc(sp, cipher) }},
		{"block-sealed", func(sp *memory.Space) table.Alloc { return table.BlockEncryptedAlloc(sp, cipher, block) }},
	}
	fmt.Fprintf(w, "Sealed-storage benchmark — plain vs per-entry sealed vs block-sealed (B=%d, workers=%d, tracing on)\n",
		block, workers)
	fmt.Fprintf(w, "%8s %14s %14s %14s %14s %14s %14s %9s %s\n",
		"n", "plain sort", "sealed sort", "block sort", "plain join", "sealed join", "block join", "blk-gain", "trace")

	var out []SealedBenchResult
	for _, n := range ns {
		t1, t2 := workload.MatchingPairs(n)
		r := SealedBenchResult{N: n, Workers: workers, Block: block, GOMAXPROCS: runtime.GOMAXPROCS(0)}

		sorts := make([]time.Duration, len(backends))
		joins := make([]time.Duration, len(backends))
		allocs := make([]uint64, len(backends))
		peaks := make([]int64, len(backends))
		totals := make([]int64, len(backends))
		events := make([]uint64, len(backends))
		hashes := make([]string, len(backends))
		for i, be := range backends {
			// Sort: 2n entries (the size of the augmented working
			// table), untraced for pure store throughput.
			sp := memory.NewSpace(nil, nil)
			st := be.alloc(sp)(2 * n)
			src := make([]table.Entry, 2*n)
			for k := range src {
				src[k] = table.Entry{J: uint64((k * 2654435761) % n)}
			}
			st.(table.RangeStore).SetRange(0, src)
			cfg := &core.Config{Alloc: be.alloc(sp), Workers: workers}
			start := time.Now()
			cfg.SortStore(st, table.LessJTID, nil)
			sorts[i] = time.Since(start)

			// Join: traced, hashing up to the cap, with a heap
			// allocation count for the whole run.
			var rec trace.Recorder
			var hasher *trace.Hasher
			var counter trace.Counter
			if n <= hashCheckCap {
				hasher = trace.NewHasher()
				rec = hasher
			} else {
				rec = &counter
			}
			jsp := memory.NewSpace(rec, nil)
			g := &table.Gauge{}
			jcfg := &core.Config{Alloc: table.TrackedAlloc(be.alloc(jsp), g), Workers: workers, Mem: g}
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			start = time.Now()
			pairs := core.Join(jcfg, t1, t2)
			joins[i] = time.Since(start)
			runtime.ReadMemStats(&ms1)
			allocs[i] = ms1.Mallocs - ms0.Mallocs
			g.ReleaseAll()
			peaks[i], totals[i] = g.Peak(), g.Total()
			r.M = len(pairs)
			if hasher != nil {
				events[i] = hasher.Count()
				hashes[i] = hasher.Hex()
			} else {
				events[i] = counter.Total()
			}
		}
		r.PlainSortNS, r.SealedSortNS, r.BlockSortNS = sorts[0].Nanoseconds(), sorts[1].Nanoseconds(), sorts[2].Nanoseconds()
		r.PlainJoinNS, r.SealedJoinNS, r.BlockJoinNS = joins[0].Nanoseconds(), joins[1].Nanoseconds(), joins[2].Nanoseconds()
		r.PlainJoinAllocs, r.SealedJoinAllocs, r.BlockJoinAllocs = allocs[0], allocs[1], allocs[2]
		r.PlainPeakBytes, r.SealedPeakBytes, r.BlockPeakBytes = peaks[0], peaks[1], peaks[2]
		r.PlainTotalBytes, r.SealedTotalBytes, r.BlockTotalBytes = totals[0], totals[1], totals[2]
		if r.BlockJoinNS > 0 {
			r.SealedOverBlock = float64(r.SealedJoinNS) / float64(r.BlockJoinNS)
		}
		r.TraceDetEvents = events[0] == events[1] && events[1] == events[2]
		det := "events=eq"
		if !r.TraceDetEvents {
			det = "events=DIVERGED"
		}
		if hashes[0] != "" {
			r.TraceDetHash = hashes[0] == hashes[1] && hashes[1] == hashes[2]
			if r.TraceDetHash {
				det += " hash=eq"
			} else {
				det += " hash=DIVERGED"
			}
		} else {
			r.TraceSkipped = fmt.Sprintf("n exceeds hash check cap %d", hashCheckCap)
			det += " hash=skipped"
		}
		if !r.TraceDetEvents || (hashes[0] != "" && !r.TraceDetHash) {
			for i := 1; i < len(backends); i++ {
				if events[i] != events[0] || hashes[i] != hashes[0] {
					return nil, fmt.Errorf("exp: %s trace diverged from plain at n=%d", backends[i].name, n)
				}
			}
			return nil, fmt.Errorf("exp: sealed trace diverged from plain at n=%d", n)
		}
		fmt.Fprintf(w, "%8d %14s %14s %14s %14s %14s %14s %8.2fx %s\n", n,
			sorts[0].Round(time.Microsecond), sorts[1].Round(time.Microsecond), sorts[2].Round(time.Microsecond),
			joins[0].Round(time.Microsecond), joins[1].Round(time.Microsecond), joins[2].Round(time.Microsecond),
			r.SealedOverBlock, det)
		out = append(out, r)
	}
	return out, nil
}

// WriteSealedBenchJSON writes the sealed benchmark rows as indented
// JSON to path.
func WriteSealedBenchJSON(path string, results []SealedBenchResult) error {
	return writeJSON(path, results)
}
