package oram

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"oblivjoin/internal/memory"
	"oblivjoin/internal/trace"
)

func blockOf(s string, size int) []byte {
	b := make([]byte, size)
	copy(b, s)
	return b
}

func TestReadAfterWrite(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	o := New(sp, 8, 16, 1)
	o.Write(3, blockOf("hello", 16))
	if got := o.Read(3); !bytes.Equal(got, blockOf("hello", 16)) {
		t.Fatalf("Read = %q", got)
	}
}

func TestFreshBlocksAreZero(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	o := New(sp, 4, 8, 2)
	if got := o.Read(0); !bytes.Equal(got, make([]byte, 8)) {
		t.Fatalf("fresh block = %v", got)
	}
}

func TestOverwrite(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	o := New(sp, 4, 8, 3)
	o.Write(1, blockOf("aa", 8))
	o.Write(1, blockOf("bb", 8))
	if got := o.Read(1); !bytes.Equal(got, blockOf("bb", 8)) {
		t.Fatalf("Read = %q", got)
	}
}

func TestRandomOpsAgainstReference(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	const n = 32
	o := New(sp, n, 8, 4)
	ref := make(map[int][]byte)
	rng := rand.New(rand.NewSource(5))
	for op := 0; op < 2000; op++ {
		addr := rng.Intn(n)
		if rng.Intn(2) == 0 {
			data := blockOf(fmt.Sprintf("%d", op), 8)
			o.Write(addr, data)
			ref[addr] = data
		} else {
			want := ref[addr]
			if want == nil {
				want = make([]byte, 8)
			}
			if got := o.Read(addr); !bytes.Equal(got, want) {
				t.Fatalf("op %d: Read(%d) = %q, want %q", op, addr, got, want)
			}
		}
	}
}

func TestStashStaysBounded(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	const n = 256
	o := New(sp, n, 8, 6)
	rng := rand.New(rand.NewSource(7))
	max := 0
	for op := 0; op < 5000; op++ {
		o.Write(rng.Intn(n), make([]byte, 8))
		if s := o.StashSize(); s > max {
			max = s
		}
	}
	// With Z=4 the stash stays tiny with overwhelming probability; a
	// generous bound still catches eviction bugs (which grow linearly).
	if max > 64 {
		t.Fatalf("stash grew to %d blocks", max)
	}
}

func TestPhysicalAccessesPerOpConstant(t *testing.T) {
	var c1, c2 trace.Counter
	run := func(c *trace.Counter, addrs []int) {
		sp := memory.NewSpace(c, nil)
		o := New(sp, 16, 8, 8)
		before := c.Total()
		_ = before
		for _, a := range addrs {
			o.Read(a)
		}
	}
	run(&c1, []int{0, 0, 0, 0, 0})
	run(&c2, []int{1, 7, 3, 15, 2})
	if c1.Total() != c2.Total() {
		t.Fatalf("physical access count depends on address sequence: %d vs %d",
			c1.Total(), c2.Total())
	}
	if c1.Reads != c2.Reads || c1.Writes != c2.Writes {
		t.Fatal("read/write split depends on address sequence")
	}
}

func TestAccessCountTracksLogN(t *testing.T) {
	perOp := func(n int) uint64 {
		var c trace.Counter
		sp := memory.NewSpace(&c, nil)
		o := New(sp, n, 8, 9)
		setup := c.Total()
		for i := 0; i < 10; i++ {
			o.Read(i % n)
		}
		return (c.Total() - setup) / 10
	}
	small, large := perOp(16), perOp(1024)
	if large <= small {
		t.Fatalf("per-op cost did not grow with n: %d vs %d", small, large)
	}
	// 1024 blocks is 64× more than 16 but cost must grow only ~log.
	if large > small*4 {
		t.Fatalf("per-op cost grew superlogarithmically: %d vs %d", small, large)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	o := New(sp, 4, 8, 10)
	for _, f := range []func(){
		func() { o.Read(-1) },
		func() { o.Read(4) },
		func() { o.Write(0, make([]byte, 7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for n=0")
			}
		}()
		New(sp, 0, 8, 0)
	}()
}

func TestWriteCopiesInput(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	o := New(sp, 2, 4, 11)
	buf := []byte{1, 2, 3, 4}
	o.Write(0, buf)
	buf[0] = 99
	if got := o.Read(0); got[0] != 1 {
		t.Fatal("ORAM aliased caller's buffer")
	}
}

func TestSingleBlockORAM(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	o := New(sp, 1, 4, 12)
	o.Write(0, []byte{9, 9, 9, 9})
	if got := o.Read(0); got[0] != 9 {
		t.Fatalf("Read = %v", got)
	}
}

func BenchmarkAccess1k(b *testing.B) {
	sp := memory.NewSpace(nil, nil)
	o := New(sp, 1024, 64, 13)
	buf := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		o.Write(i%1024, buf)
	}
}
