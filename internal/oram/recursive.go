package oram

import (
	"encoding/binary"

	"oblivjoin/internal/memory"
)

// Recursive is a Path ORAM whose position map is itself stored in
// smaller ORAMs, recursively, until the innermost map fits in a
// constant number of client words (Stefanov et al., §3 "Recursion").
// This removes the O(n)-word client position map of the flat
// construction — the client state that makes flat Path ORAM level-I
// rather than level-II oblivious, which is the paper's §3.3/§4.2
// criticism of ORAM-based designs. The price is a multiplicative
// O(log n) factor: each logical access walks every recursion level.
type Recursive struct {
	data *ORAM
	// posMap holds the leaf assignment of each data block, packed
	// entriesPerBlock to a block, in the next recursion level; nil when
	// the map is small enough to keep directly.
	posMap *Recursive
	direct []uint32 // innermost map, ≤ cutoff entries
	n      int
}

// entriesPerBlock is how many 4-byte positions pack into one position-
// map block; a higher fan-out means fewer recursion levels.
const entriesPerBlock = 8

// posBlockSize is the byte size of one position-map block.
const posBlockSize = 4 * entriesPerBlock

// recursionCutoff is the map size below which recursion stops. The
// remaining map is O(1) words of client state.
const recursionCutoff = entriesPerBlock

// NewRecursive builds a recursive Path ORAM for n blocks of blockSize
// bytes. All tree levels allocate from sp, so the combined physical
// trace of an access covers every recursion level.
func NewRecursive(sp *memory.Space, n, blockSize int, seed int64) *Recursive {
	r := &Recursive{n: n, data: New(sp, n, blockSize, seed)}
	// The data ORAM's own in-client position map moves into the
	// recursive structure: export, then serve lookups from recursion.
	if n <= recursionCutoff {
		r.direct = make([]uint32, n)
		for i, p := range r.data.pos {
			r.direct[i] = uint32(p)
		}
		return r
	}
	mapBlocks := (n + entriesPerBlock - 1) / entriesPerBlock
	child := NewRecursive(sp, mapBlocks, posBlockSize, seed+1)
	// Seed the child with the data ORAM's initial random positions.
	buf := make([]byte, posBlockSize)
	for b := 0; b < mapBlocks; b++ {
		for k := 0; k < entriesPerBlock; k++ {
			idx := b*entriesPerBlock + k
			var v uint32
			if idx < n {
				v = uint32(r.data.pos[idx])
			}
			binary.LittleEndian.PutUint32(buf[4*k:], v)
		}
		child.Write(b, buf)
	}
	r.posMap = child
	return r
}

// Len returns the number of logical data blocks.
func (r *Recursive) Len() int { return r.n }

// BlockSize returns the data block payload size.
func (r *Recursive) BlockSize() int { return r.data.blockSize }

// Levels reports the recursion depth (1 = no recursion).
func (r *Recursive) Levels() int {
	if r.posMap == nil {
		return 1
	}
	return 1 + r.posMap.Levels()
}

// position reads addr's current leaf from the recursive map and
// simultaneously installs newPos for the next access.
func (r *Recursive) position(addr int, newPos uint32) uint32 {
	if r.direct != nil {
		old := r.direct[addr]
		r.direct[addr] = newPos
		return old
	}
	blk := addr / entriesPerBlock
	off := addr % entriesPerBlock
	buf := r.posMap.Read(blk)
	old := binary.LittleEndian.Uint32(buf[4*off:])
	binary.LittleEndian.PutUint32(buf[4*off:], newPos)
	r.posMap.Write(blk, buf)
	return old
}

// Read returns the contents of block addr.
func (r *Recursive) Read(addr int) []byte {
	return r.access(addr, nil)
}

// Write replaces block addr with data (copied).
func (r *Recursive) Write(addr int, data []byte) {
	if len(data) != r.data.blockSize {
		panic("oram: Recursive.Write block size mismatch")
	}
	r.access(addr, data)
}

// access mirrors ORAM.access but sources the position from the
// recursive map instead of the flat client map.
func (r *Recursive) access(addr int, write []byte) []byte {
	o := r.data
	newPos := uint32(o.rng.Intn(o.leaves))
	x := int(r.position(addr, newPos))
	// Keep the flat map coherent for the eviction pass, which consults
	// o.pos for every stash block. For stash blocks other than addr the
	// flat entry is already correct (their last remap updated it).
	o.pos[addr] = int(newPos)
	o.Accesses++

	for d := 0; d <= o.levels; d++ {
		base := o.bucketIndex(x, d) * Z
		for s := 0; s < Z; s++ {
			blk := o.tree.Get(base + s)
			if blk.Addr != emptyAddr {
				o.stash[blk.Addr] = blk.Data
			}
		}
	}
	data, ok := o.stash[int64(addr)]
	if !ok {
		data = make([]byte, o.blockSize)
	}
	if write != nil {
		data = append([]byte(nil), write...)
	}
	o.stash[int64(addr)] = data
	out := append([]byte(nil), data...)

	for d := o.levels; d >= 0; d-- {
		bucket := o.bucketIndex(x, d)
		placed := 0
		var chosen []int64
		for a, blockData := range o.stash {
			if placed == Z {
				break
			}
			if o.bucketIndex(o.pos[a], d) == bucket {
				o.tree.Set(bucket*Z+placed, slotted{Addr: a, Data: blockData})
				chosen = append(chosen, a)
				placed++
			}
		}
		for _, a := range chosen {
			delete(o.stash, a)
		}
		for s := placed; s < Z; s++ {
			o.tree.Set(bucket*Z+s, slotted{Addr: emptyAddr})
		}
	}
	return out
}

// StashSize returns the data-level stash occupancy.
func (r *Recursive) StashSize() int { return r.data.StashSize() }
