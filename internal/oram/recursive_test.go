package oram

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"oblivjoin/internal/memory"
	"oblivjoin/internal/trace"
)

func TestRecursiveReadAfterWrite(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	o := NewRecursive(sp, 64, 16, 1)
	o.Write(17, blockOf("deep", 16))
	if got := o.Read(17); !bytes.Equal(got, blockOf("deep", 16)) {
		t.Fatalf("Read = %q", got)
	}
}

func TestRecursiveLevels(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	if l := NewRecursive(sp, 4, 8, 2).Levels(); l != 1 {
		t.Fatalf("n=4 levels = %d, want 1 (fits cutoff)", l)
	}
	if l := NewRecursive(sp, 64, 8, 3).Levels(); l < 2 {
		t.Fatalf("n=64 levels = %d, want ≥ 2", l)
	}
	big := NewRecursive(sp, 4096, 8, 4)
	if big.Levels() < 3 {
		t.Fatalf("n=4096 levels = %d, want ≥ 3", big.Levels())
	}
}

func TestRecursiveRandomOpsAgainstReference(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	const n = 48
	o := NewRecursive(sp, n, 8, 5)
	ref := map[int][]byte{}
	rng := rand.New(rand.NewSource(6))
	for op := 0; op < 1500; op++ {
		addr := rng.Intn(n)
		if rng.Intn(2) == 0 {
			data := blockOf(fmt.Sprintf("%d", op), 8)
			o.Write(addr, data)
			ref[addr] = data
		} else {
			want := ref[addr]
			if want == nil {
				want = make([]byte, 8)
			}
			if got := o.Read(addr); !bytes.Equal(got, want) {
				t.Fatalf("op %d: Read(%d) = %q, want %q", op, addr, got, want)
			}
		}
	}
}

func TestRecursiveStashBounded(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	const n = 128
	o := NewRecursive(sp, n, 8, 7)
	rng := rand.New(rand.NewSource(8))
	max := 0
	for op := 0; op < 3000; op++ {
		o.Write(rng.Intn(n), make([]byte, 8))
		if s := o.StashSize(); s > max {
			max = s
		}
	}
	if max > 64 {
		t.Fatalf("stash grew to %d", max)
	}
}

func TestRecursiveCostsMoreThanFlat(t *testing.T) {
	perOp := func(mk func(sp *memory.Space) func(int) []byte) uint64 {
		var c trace.Counter
		sp := memory.NewSpace(&c, nil)
		read := mk(sp)
		setup := c.Total()
		for i := 0; i < 20; i++ {
			read(i % 64)
		}
		return (c.Total() - setup) / 20
	}
	flat := perOp(func(sp *memory.Space) func(int) []byte {
		o := New(sp, 64, 8, 9)
		return o.Read
	})
	rec := perOp(func(sp *memory.Space) func(int) []byte {
		o := NewRecursive(sp, 64, 8, 9)
		return o.Read
	})
	if rec <= flat {
		t.Fatalf("recursive per-op (%d) not costlier than flat (%d)", rec, flat)
	}
}

func TestRecursivePhysicalAccessesPerOpConstant(t *testing.T) {
	run := func(addrs []int) uint64 {
		var c trace.Counter
		sp := memory.NewSpace(&c, nil)
		o := NewRecursive(sp, 64, 8, 10)
		before := c.Total()
		for _, a := range addrs {
			o.Read(a)
		}
		return c.Total() - before
	}
	if run([]int{0, 0, 0, 0}) != run([]int{63, 1, 40, 22}) {
		t.Fatal("physical access count depends on address sequence")
	}
}

func TestRecursiveWriteSizeMismatchPanics(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	o := NewRecursive(sp, 16, 8, 11)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	o.Write(0, make([]byte, 7))
}

func BenchmarkRecursiveAccess1k(b *testing.B) {
	sp := memory.NewSpace(nil, nil)
	o := NewRecursive(sp, 1024, 64, 12)
	buf := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		o.Write(i%1024, buf)
	}
}
