// Package oram implements Path ORAM (Stefanov et al., CCS 2013), the
// generic oblivious-memory primitive the paper positions its algorithm
// against (§3.3).
//
// A Path ORAM stores N fixed-size blocks in a binary tree of buckets
// kept in public (traced) memory. Each logical access re-randomizes the
// accessed block's leaf assignment, reads one full root-to-leaf path
// into a client-side stash, and writes the path back greedily. The
// public trace of an access is one path read plus one path write —
// independent of which logical block was accessed — at the price of an
// O(log N) blowup per access plus a position map and stash in client
// memory (making ORAM-based programs level-I oblivious at best, which is
// exactly the paper's criticism).
//
// The repository uses this package for the ORAM-backed sort-merge join
// baseline of Table 1.
package oram

import (
	"fmt"
	"math/bits"
	"math/rand"

	"oblivjoin/internal/memory"
)

// Z is the bucket capacity used throughout (the standard Path ORAM
// parameter; Z = 4 gives negligible stash overflow probability).
const Z = 4

const emptyAddr = -1

// slotted is one block slot inside a bucket: a logical address tag and
// the payload. Addr == emptyAddr marks a dummy.
type slotted struct {
	Addr int64
	Data []byte
}

// ORAM is a Path ORAM over n fixed-size blocks. It is not safe for
// concurrent use.
type ORAM struct {
	n         int
	blockSize int
	levels    int // tree depth; leaves = 1 << levels
	leaves    int

	tree  *memory.Array[slotted] // public memory: buckets in heap order
	pos   []int                  // client memory: block → leaf
	stash map[int64][]byte       // client memory
	rng   *rand.Rand

	// Accesses counts logical accesses; the tree's traced space counts
	// physical ones.
	Accesses uint64
}

// New creates a Path ORAM for n blocks of blockSize bytes, with its tree
// allocated from sp and leaf randomness drawn from seed.
func New(sp *memory.Space, n, blockSize int, seed int64) *ORAM {
	if n <= 0 {
		panic("oram: n must be positive")
	}
	levels := bits.Len(uint(n - 1)) // leaves = 2^levels ≥ n
	if levels < 1 {
		levels = 1
	}
	leaves := 1 << levels
	buckets := 2*leaves - 1
	o := &ORAM{
		n:         n,
		blockSize: blockSize,
		levels:    levels,
		leaves:    leaves,
		tree:      memory.Alloc[slotted](sp, buckets*Z, blockSize+8),
		pos:       make([]int, n),
		stash:     make(map[int64][]byte),
		rng:       rand.New(rand.NewSource(seed)),
	}
	for i := 0; i < buckets*Z; i++ {
		o.tree.Set(i, slotted{Addr: emptyAddr})
	}
	for i := range o.pos {
		o.pos[i] = o.rng.Intn(leaves)
	}
	return o
}

// Len returns the number of logical blocks.
func (o *ORAM) Len() int { return o.n }

// BlockSize returns the fixed block payload size.
func (o *ORAM) BlockSize() int { return o.blockSize }

// StashSize returns the current number of blocks parked in the stash;
// exposed for the stash-growth experiments.
func (o *ORAM) StashSize() int { return len(o.stash) }

// bucketIndex returns the heap index of the depth-d ancestor bucket of
// leaf x (d = 0 is the root, d = levels is the leaf bucket).
func (o *ORAM) bucketIndex(x, d int) int {
	// Heap numbering: leaf node index is (leaves-1)+x; the depth-d
	// ancestor is found by walking up levels-d times.
	node := o.leaves - 1 + x
	for i := 0; i < o.levels-d; i++ {
		node = (node - 1) / 2
	}
	return node
}

// Read returns the current contents of block addr.
func (o *ORAM) Read(addr int) []byte {
	return o.access(addr, nil)
}

// Write replaces the contents of block addr with data (copied), which
// must be exactly BlockSize bytes.
func (o *ORAM) Write(addr int, data []byte) {
	if len(data) != o.blockSize {
		panic(fmt.Sprintf("oram: Write of %d bytes, block size %d", len(data), o.blockSize))
	}
	o.access(addr, data)
}

// access implements the Path ORAM access procedure: remap, read path
// into stash, serve the request, write path back greedily.
func (o *ORAM) access(addr int, write []byte) []byte {
	if addr < 0 || addr >= o.n {
		panic(fmt.Sprintf("oram: address %d out of range [0,%d)", addr, o.n))
	}
	o.Accesses++
	x := o.pos[addr]
	o.pos[addr] = o.rng.Intn(o.leaves)

	// Read the whole path into the stash.
	for d := 0; d <= o.levels; d++ {
		base := o.bucketIndex(x, d) * Z
		for s := 0; s < Z; s++ {
			blk := o.tree.Get(base + s)
			if blk.Addr != emptyAddr {
				o.stash[blk.Addr] = blk.Data
			}
		}
	}

	data, ok := o.stash[int64(addr)]
	if !ok {
		data = make([]byte, o.blockSize) // first touch: zero block
	}
	if write != nil {
		data = append([]byte(nil), write...)
	}
	o.stash[int64(addr)] = data
	out := append([]byte(nil), data...)

	// Write the path back bottom-up, greedily evicting stash blocks
	// whose (new) paths intersect the accessed path at this depth.
	for d := o.levels; d >= 0; d-- {
		bucket := o.bucketIndex(x, d)
		placed := 0
		var chosen []int64
		for a, blockData := range o.stash {
			if placed == Z {
				break
			}
			if o.bucketIndex(o.pos[a], d) == bucket {
				base := bucket*Z + placed
				o.tree.Set(base, slotted{Addr: a, Data: blockData})
				chosen = append(chosen, a)
				placed++
			}
		}
		for _, a := range chosen {
			delete(o.stash, a)
		}
		for s := placed; s < Z; s++ {
			o.tree.Set(bucket*Z+s, slotted{Addr: emptyAddr})
		}
	}
	return out
}
