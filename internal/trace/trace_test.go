package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatalf("Op.String wrong: %q %q", Read, Write)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Op: Write, Array: 3, Index: 42}
	if got := e.String(); got != "W a3[42]" {
		t.Fatalf("Event.String() = %q", got)
	}
}

func TestLogEqual(t *testing.T) {
	a, b := NewLog(), NewLog()
	events := []Event{
		{Read, 0, 1}, {Write, 0, 1}, {Read, 1, 0},
	}
	for _, e := range events {
		a.Record(e)
		b.Record(e)
	}
	if !a.Equal(b) {
		t.Fatal("identical logs not equal")
	}
	b.Record(Event{Read, 0, 2})
	if a.Equal(b) {
		t.Fatal("different-length logs reported equal")
	}
	a.Record(Event{Write, 0, 2})
	if a.Equal(b) {
		t.Fatal("diverging logs reported equal")
	}
	if got := a.FirstDivergence(b); got != 3 {
		t.Fatalf("FirstDivergence = %d, want 3", got)
	}
}

func TestFirstDivergencePrefix(t *testing.T) {
	a, b := NewLog(), NewLog()
	a.Record(Event{Read, 0, 0})
	if got := a.FirstDivergence(b); got != -1 {
		t.Fatalf("FirstDivergence on prefix = %d, want -1", got)
	}
}

func TestHasherMatchesOnEqualStreams(t *testing.T) {
	f := func(evs []uint16) bool {
		h1, h2 := NewHasher(), NewHasher()
		for _, v := range evs {
			e := Event{Op: Op(v & 1), Array: uint32(v >> 8), Index: uint64(v)}
			h1.Record(e)
			h2.Record(e)
		}
		return h1.Sum() == h2.Sum() && h1.Count() == h2.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHasherDistinguishes(t *testing.T) {
	h1, h2 := NewHasher(), NewHasher()
	h1.Record(Event{Read, 0, 5})
	h2.Record(Event{Write, 0, 5})
	if h1.Sum() == h2.Sum() {
		t.Fatal("hash collision between read and write")
	}
	h3, h4 := NewHasher(), NewHasher()
	h3.Record(Event{Read, 0, 5})
	h4.Record(Event{Read, 1, 5})
	if h3.Sum() == h4.Sum() {
		t.Fatal("hash collision between arrays")
	}
	h5, h6 := NewHasher(), NewHasher()
	h5.Record(Event{Read, 0, 5})
	h6.Record(Event{Read, 0, 6})
	if h5.Sum() == h6.Sum() {
		t.Fatal("hash collision between indices")
	}
}

func TestHasherOrderSensitive(t *testing.T) {
	h1, h2 := NewHasher(), NewHasher()
	a := Event{Read, 0, 1}
	b := Event{Read, 0, 2}
	h1.Record(a)
	h1.Record(b)
	h2.Record(b)
	h2.Record(a)
	if h1.Sum() == h2.Sum() {
		t.Fatal("hash insensitive to event order")
	}
}

// TestHasherBatchAndRunMatchRecord pins the core invariant of the
// canonical hash: RecordBatch and RecordRun must produce exactly the
// digest (and count) of the equivalent per-event Record sequence,
// including across the internal buffer's flush boundary.
func TestHasherBatchAndRunMatchRecord(t *testing.T) {
	const n = 1000 // larger than the internal buffer's 248-event capacity
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{Op: Op(i & 1), Array: uint32(i % 7), Index: uint64(i * 3)}
	}
	one, batch := NewHasher(), NewHasher()
	for _, e := range evs {
		one.Record(e)
	}
	batch.RecordBatch(evs)
	if one.Sum() != batch.Sum() || one.Count() != batch.Count() {
		t.Fatal("RecordBatch diverges from per-event Record")
	}

	run, loop := NewHasher(), NewHasher()
	run.RecordRun(Write, 3, 100, n)
	for k := 0; k < n; k++ {
		loop.Record(Event{Op: Write, Array: 3, Index: 100 + uint64(k)})
	}
	if run.Sum() != loop.Sum() || run.Count() != loop.Count() {
		t.Fatal("RecordRun diverges from per-event Record")
	}
}

// TestHasherSumIsResumable: Sum must report the running digest without
// finalizing the stream — recording may continue, and repeated Sums
// agree with a fresh hasher fed the same prefix.
func TestHasherSumIsResumable(t *testing.T) {
	a, b := NewHasher(), NewHasher()
	e1 := Event{Read, 0, 1}
	e2 := Event{Write, 1, 2}
	a.Record(e1)
	mid := a.Sum()
	if mid != a.Sum() {
		t.Fatal("repeated Sum changed the digest")
	}
	a.Record(e2)
	b.Record(e1)
	b.Record(e2)
	if a.Sum() != b.Sum() {
		t.Fatal("recording after Sum diverged from an uninterrupted stream")
	}
}

// TestRecordRunToFallback: recorders without RecordRun receive the
// equivalent per-event sequence.
func TestRecordRunToFallback(t *testing.T) {
	s := NewSummary() // implements only Record
	RecordRunTo(s, Write, 2, 5, 3)
	st := s.PerArray[2]
	if st == nil || st.Writes != 3 || st.Extent != 8 {
		t.Fatalf("fallback run mis-recorded: %+v", st)
	}
	var c Counter
	RecordRunTo(&c, Read, 0, 0, 4)
	if c.Reads != 4 {
		t.Fatalf("Counter.RecordRun: %+v", c)
	}
	l := NewLog()
	RecordRunTo(l, Read, 1, 10, 2)
	want := []Event{{Read, 1, 10}, {Read, 1, 11}}
	if len(l.Events) != 2 || l.Events[0] != want[0] || l.Events[1] != want[1] {
		t.Fatalf("Log.RecordRun: %+v", l.Events)
	}
	var b Buffer
	RecordRunTo(&b, Write, 1, 3, 2)
	if len(b.Events) != 2 || b.Events[1] != (Event{Write, 1, 4}) {
		t.Fatalf("Buffer.RecordRun: %+v", b.Events)
	}
}

// TestHasherAllocFree: the streamed hasher must not allocate per event
// (or per run) in steady state.
func TestHasherAllocFree(t *testing.T) {
	h := NewHasher()
	evs := make([]Event, 300)
	h.RecordBatch(evs) // warm-up, crosses a flush
	if avg := testing.AllocsPerRun(50, func() { h.Record(Event{Write, 1, 9}) }); avg != 0 {
		t.Errorf("Record: %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { h.RecordBatch(evs) }); avg != 0 {
		t.Errorf("RecordBatch: %.1f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { h.RecordRun(Read, 2, 0, 300) }); avg != 0 {
		t.Errorf("RecordRun: %.1f allocs/op, want 0", avg)
	}
}

func TestHasherZeroValueUsable(t *testing.T) {
	var h Hasher
	h.Record(Event{Read, 0, 0})
	ref := NewHasher()
	ref.Record(Event{Read, 0, 0})
	if h.Sum() != ref.Sum() {
		t.Fatal("zero-value Hasher diverges from NewHasher")
	}
}

func TestHasherHexLength(t *testing.T) {
	h := NewHasher()
	h.Record(Event{Write, 2, 9})
	if len(h.Hex()) != 64 {
		t.Fatalf("Hex length = %d, want 64", len(h.Hex()))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Record(Event{Read, 0, 0})
	c.Record(Event{Read, 0, 1})
	c.Record(Event{Write, 0, 0})
	if c.Reads != 2 || c.Writes != 1 || c.Total() != 3 {
		t.Fatalf("Counter = %+v", c)
	}
}

func TestSummary(t *testing.T) {
	s := NewSummary()
	s.Record(Event{Read, 0, 5})
	s.Record(Event{Write, 0, 9})
	s.Record(Event{Read, 1, 0})
	a0 := s.PerArray[0]
	if a0.Reads != 1 || a0.Writes != 1 || a0.Extent != 10 {
		t.Fatalf("array 0 stats = %+v", a0)
	}
	if s.PerArray[1].Extent != 1 {
		t.Fatalf("array 1 stats = %+v", s.PerArray[1])
	}
	if s.TotalExtent() != 11 {
		t.Fatalf("TotalExtent = %d", s.TotalExtent())
	}
}

// TestSummarySpaceUsageOfJoin is exercised from the core package via a
// Summary recorder; here we verify the recorder alone composes in a Tee.
func TestSummaryInTee(t *testing.T) {
	s := NewSummary()
	var c Counter
	tee := NewTee(s, &c)
	tee.Record(Event{Write, 3, 2})
	if c.Writes != 1 || s.PerArray[3].Writes != 1 {
		t.Fatal("tee did not reach summary")
	}
}

func TestTee(t *testing.T) {
	l := NewLog()
	var c Counter
	h := NewHasher()
	tee := NewTee(l, &c, h)
	tee.Record(Event{Write, 1, 7})
	if l.Len() != 1 || c.Writes != 1 || h.Count() != 1 {
		t.Fatal("Tee did not forward to all recorders")
	}
}

func TestNop(t *testing.T) {
	var n Nop
	n.Record(Event{Read, 0, 0}) // must not panic
}

func TestRenderEmpty(t *testing.T) {
	l := NewLog()
	if got := l.Render(10, 4); !strings.Contains(got, "empty") {
		t.Fatalf("Render empty = %q", got)
	}
}

func TestRenderShape(t *testing.T) {
	l := NewLog()
	for i := 0; i < 100; i++ {
		l.Record(Event{Op(i & 1), 0, uint64(i % 10)})
	}
	out := l.Render(40, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("Render produced %d lines, want 9", len(lines))
	}
	for _, ln := range lines[1:] {
		if len(ln) != 40 {
			t.Fatalf("row width %d, want 40", len(ln))
		}
	}
	if !strings.Contains(out, "W") || !strings.Contains(out, "r") {
		t.Fatal("Render missing read/write marks")
	}
}

func TestRenderMultipleArrays(t *testing.T) {
	l := NewLog()
	l.Record(Event{Read, 0, 0})
	l.Record(Event{Read, 1, 0})
	l.Record(Event{Write, 1, 3})
	out := l.Render(10, 6)
	// Array 0 spans 1 cell (max index 0), array 1 spans 4 (max index 3).
	if !strings.Contains(out, "5 cells") {
		t.Fatalf("expected combined 6-cell address space, got:\n%s", out)
	}
}

func TestRenderPGMHeader(t *testing.T) {
	l := NewLog()
	l.Record(Event{Read, 0, 0})
	l.Record(Event{Write, 0, 1})
	out := l.RenderPGM(16, 8)
	if !strings.HasPrefix(out, "P2\n16 8\n255\n") {
		t.Fatalf("bad PGM header: %q", out[:20])
	}
	if !strings.Contains(out, "0") {
		t.Fatal("PGM missing write (black) pixel")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3+8 {
		t.Fatalf("PGM has %d lines, want 11", len(lines))
	}
}

func BenchmarkHasherRecord(b *testing.B) {
	h := NewHasher()
	e := Event{Write, 1, 123456}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(e)
	}
}

func BenchmarkHasherRecordBatch(b *testing.B) {
	h := NewHasher()
	evs := make([]Event, 512)
	for i := range evs {
		evs[i] = Event{Op: Op(i & 1), Array: 1, Index: uint64(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.RecordBatch(evs)
	}
	b.ReportMetric(float64(b.N)*512/b.Elapsed().Seconds()/1e6, "Mevents/s")
}

func BenchmarkHasherRecordRun(b *testing.B) {
	h := NewHasher()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.RecordRun(Read, 1, 0, 512)
	}
	b.ReportMetric(float64(b.N)*512/b.Elapsed().Seconds()/1e6, "Mevents/s")
}
