package trace

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" {
		t.Fatalf("Op.String wrong: %q %q", Read, Write)
	}
}

func TestEventString(t *testing.T) {
	e := Event{Op: Write, Array: 3, Index: 42}
	if got := e.String(); got != "W a3[42]" {
		t.Fatalf("Event.String() = %q", got)
	}
}

func TestLogEqual(t *testing.T) {
	a, b := NewLog(), NewLog()
	events := []Event{
		{Read, 0, 1}, {Write, 0, 1}, {Read, 1, 0},
	}
	for _, e := range events {
		a.Record(e)
		b.Record(e)
	}
	if !a.Equal(b) {
		t.Fatal("identical logs not equal")
	}
	b.Record(Event{Read, 0, 2})
	if a.Equal(b) {
		t.Fatal("different-length logs reported equal")
	}
	a.Record(Event{Write, 0, 2})
	if a.Equal(b) {
		t.Fatal("diverging logs reported equal")
	}
	if got := a.FirstDivergence(b); got != 3 {
		t.Fatalf("FirstDivergence = %d, want 3", got)
	}
}

func TestFirstDivergencePrefix(t *testing.T) {
	a, b := NewLog(), NewLog()
	a.Record(Event{Read, 0, 0})
	if got := a.FirstDivergence(b); got != -1 {
		t.Fatalf("FirstDivergence on prefix = %d, want -1", got)
	}
}

func TestHasherMatchesOnEqualStreams(t *testing.T) {
	f := func(evs []uint16) bool {
		h1, h2 := NewHasher(), NewHasher()
		for _, v := range evs {
			e := Event{Op: Op(v & 1), Array: uint32(v >> 8), Index: uint64(v)}
			h1.Record(e)
			h2.Record(e)
		}
		return h1.Sum() == h2.Sum() && h1.Count() == h2.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHasherDistinguishes(t *testing.T) {
	h1, h2 := NewHasher(), NewHasher()
	h1.Record(Event{Read, 0, 5})
	h2.Record(Event{Write, 0, 5})
	if h1.Sum() == h2.Sum() {
		t.Fatal("hash collision between read and write")
	}
	h3, h4 := NewHasher(), NewHasher()
	h3.Record(Event{Read, 0, 5})
	h4.Record(Event{Read, 1, 5})
	if h3.Sum() == h4.Sum() {
		t.Fatal("hash collision between arrays")
	}
	h5, h6 := NewHasher(), NewHasher()
	h5.Record(Event{Read, 0, 5})
	h6.Record(Event{Read, 0, 6})
	if h5.Sum() == h6.Sum() {
		t.Fatal("hash collision between indices")
	}
}

func TestHasherOrderSensitive(t *testing.T) {
	h1, h2 := NewHasher(), NewHasher()
	a := Event{Read, 0, 1}
	b := Event{Read, 0, 2}
	h1.Record(a)
	h1.Record(b)
	h2.Record(b)
	h2.Record(a)
	if h1.Sum() == h2.Sum() {
		t.Fatal("hash insensitive to event order")
	}
}

func TestHasherHexLength(t *testing.T) {
	h := NewHasher()
	h.Record(Event{Write, 2, 9})
	if len(h.Hex()) != 64 {
		t.Fatalf("Hex length = %d, want 64", len(h.Hex()))
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Record(Event{Read, 0, 0})
	c.Record(Event{Read, 0, 1})
	c.Record(Event{Write, 0, 0})
	if c.Reads != 2 || c.Writes != 1 || c.Total() != 3 {
		t.Fatalf("Counter = %+v", c)
	}
}

func TestSummary(t *testing.T) {
	s := NewSummary()
	s.Record(Event{Read, 0, 5})
	s.Record(Event{Write, 0, 9})
	s.Record(Event{Read, 1, 0})
	a0 := s.PerArray[0]
	if a0.Reads != 1 || a0.Writes != 1 || a0.Extent != 10 {
		t.Fatalf("array 0 stats = %+v", a0)
	}
	if s.PerArray[1].Extent != 1 {
		t.Fatalf("array 1 stats = %+v", s.PerArray[1])
	}
	if s.TotalExtent() != 11 {
		t.Fatalf("TotalExtent = %d", s.TotalExtent())
	}
}

// TestSummarySpaceUsageOfJoin is exercised from the core package via a
// Summary recorder; here we verify the recorder alone composes in a Tee.
func TestSummaryInTee(t *testing.T) {
	s := NewSummary()
	var c Counter
	tee := NewTee(s, &c)
	tee.Record(Event{Write, 3, 2})
	if c.Writes != 1 || s.PerArray[3].Writes != 1 {
		t.Fatal("tee did not reach summary")
	}
}

func TestTee(t *testing.T) {
	l := NewLog()
	var c Counter
	h := NewHasher()
	tee := NewTee(l, &c, h)
	tee.Record(Event{Write, 1, 7})
	if l.Len() != 1 || c.Writes != 1 || h.Count() != 1 {
		t.Fatal("Tee did not forward to all recorders")
	}
}

func TestNop(t *testing.T) {
	var n Nop
	n.Record(Event{Read, 0, 0}) // must not panic
}

func TestRenderEmpty(t *testing.T) {
	l := NewLog()
	if got := l.Render(10, 4); !strings.Contains(got, "empty") {
		t.Fatalf("Render empty = %q", got)
	}
}

func TestRenderShape(t *testing.T) {
	l := NewLog()
	for i := 0; i < 100; i++ {
		l.Record(Event{Op(i & 1), 0, uint64(i % 10)})
	}
	out := l.Render(40, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("Render produced %d lines, want 9", len(lines))
	}
	for _, ln := range lines[1:] {
		if len(ln) != 40 {
			t.Fatalf("row width %d, want 40", len(ln))
		}
	}
	if !strings.Contains(out, "W") || !strings.Contains(out, "r") {
		t.Fatal("Render missing read/write marks")
	}
}

func TestRenderMultipleArrays(t *testing.T) {
	l := NewLog()
	l.Record(Event{Read, 0, 0})
	l.Record(Event{Read, 1, 0})
	l.Record(Event{Write, 1, 3})
	out := l.Render(10, 6)
	// Array 0 spans 1 cell (max index 0), array 1 spans 4 (max index 3).
	if !strings.Contains(out, "5 cells") {
		t.Fatalf("expected combined 6-cell address space, got:\n%s", out)
	}
}

func TestRenderPGMHeader(t *testing.T) {
	l := NewLog()
	l.Record(Event{Read, 0, 0})
	l.Record(Event{Write, 0, 1})
	out := l.RenderPGM(16, 8)
	if !strings.HasPrefix(out, "P2\n16 8\n255\n") {
		t.Fatalf("bad PGM header: %q", out[:20])
	}
	if !strings.Contains(out, "0") {
		t.Fatal("PGM missing write (black) pixel")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3+8 {
		t.Fatalf("PGM has %d lines, want 11", len(lines))
	}
}

func BenchmarkHasherRecord(b *testing.B) {
	h := NewHasher()
	e := Event{Write, 1, 123456}
	for i := 0; i < b.N; i++ {
		h.Record(e)
	}
}
