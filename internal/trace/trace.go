// Package trace records the public-memory access pattern of an execution.
//
// In the adversarial model of Krastnikov et al. (§3.1), the server observes
// every read and write to public memory but learns nothing about the cell
// contents. An algorithm is oblivious (level II) when the *sequence* of
// (operation, array, index) events is identical for all inputs of the same
// size producing outputs of the same size. This package provides:
//
//   - Event and Op: one observed access;
//   - Recorder: an interface implemented by a full in-memory Log (exact
//     comparison, small n), a streaming hash Hasher (compressing the
//     whole access sequence into one digest, large n), and a Counter;
//   - rendering of a Log as a time×address bitmap, reproducing Figure 7.
//
// # Canonical trace hash
//
// The canonical hash of an access sequence e_1 … e_N is defined as
//
//	H = SHA-256( enc(e_1) ‖ enc(e_2) ‖ … ‖ enc(e_N) )
//	enc(e) = BE32(array) ‖ byte(op) ‖ BE64(index)        (13 bytes)
//
// i.e. one SHA-256 stream over the fixed-width big-endian encodings of
// the events, in order. Because every encoding has the same width, the
// byte stream determines the event sequence uniquely, so (up to SHA-256
// collisions) two executions have equal digests iff they produced
// identical access sequences — the same guarantee as the paper's
// chained H ← h(H‖r‖t‖i) construction (§3.1), at 13 bytes of
// compression input per event instead of a full 64-byte compression
// per event. This streamed definition (v2) supersedes the per-event
// chained definition the repository used previously; digests are not
// comparable across the two. All verification in this repository
// compares digests between runs of the same build, never against
// stored constants, so the definition may evolve — but it must change
// everywhere at once, and it must be identical for sequential,
// parallel, plain, sealed and block-sealed executions. Hasher is the
// single implementation; nothing else may hash events.
package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"strings"
)

// Op distinguishes reads from writes, the `t` bit in the paper's hash.
type Op uint8

const (
	// Read is an observed load from public memory.
	Read Op = 0
	// Write is an observed store to public memory.
	Write Op = 1
)

// String returns "R" or "W".
func (o Op) String() string {
	if o == Read {
		return "R"
	}
	return "W"
}

// Event is a single observed access: operation o to index Index of the
// array identified by Array (the `r` tag in the paper's hash).
type Event struct {
	Op    Op
	Array uint32
	Index uint64
}

// String formats the event as e.g. "R a0[17]".
func (e Event) String() string {
	return fmt.Sprintf("%s a%d[%d]", e.Op, e.Array, e.Index)
}

// Recorder receives the access stream of an execution.
type Recorder interface {
	// Record observes one access.
	Record(e Event)
}

// BatchRecorder is an optional Recorder extension: RecordBatch folds a
// run of events with a single dynamic dispatch, amortizing the
// per-event interface-call overhead on hot paths (the batched range
// accesses of internal/memory and the round executor of
// internal/bitonic). Semantically it must equal calling Record on each
// event in order.
type BatchRecorder interface {
	RecordBatch(evs []Event)
}

// RecordAll folds evs into r in order, using RecordBatch when r
// implements it.
func RecordAll(r Recorder, evs []Event) {
	if br, ok := r.(BatchRecorder); ok {
		br.RecordBatch(evs)
		return
	}
	for _, e := range evs {
		r.Record(e)
	}
}

// RunRecorder is an optional Recorder extension for the most common
// event shape on hot paths: a contiguous run of n same-operation
// accesses to one array at ascending indices lo, lo+1, …, lo+n-1.
// RecordRun folds such a run with a single dynamic dispatch and no
// materialized event slice; it must be semantically identical to
// calling Record on each event in order. The batched range accesses of
// internal/memory emit through this interface.
type RunRecorder interface {
	RecordRun(op Op, array uint32, lo uint64, n int)
}

// RecordRunTo folds an ascending same-op run into r, using RecordRun
// when implemented and falling back to per-event Record.
func RecordRunTo(r Recorder, op Op, array uint32, lo uint64, n int) {
	if rr, ok := r.(RunRecorder); ok {
		rr.RecordRun(op, array, lo, n)
		return
	}
	for k := 0; k < n; k++ {
		r.Record(Event{Op: op, Array: array, Index: lo + uint64(k)})
	}
}

// Nop is a Recorder that discards all events; used on hot paths when no
// verification is requested.
type Nop struct{}

// Record implements Recorder by doing nothing.
func (Nop) Record(Event) {}

// RecordBatch implements BatchRecorder by doing nothing.
func (Nop) RecordBatch([]Event) {}

// RecordRun implements RunRecorder by doing nothing.
func (Nop) RecordRun(Op, uint32, uint64, int) {}

// Buffer is an append-only event shard used by parallel executors: each
// worker records into its own Buffer, and the shards are replayed into
// the real recorder in canonical order at a synchronization barrier
// (ReplayTo). Reset keeps the backing capacity so a buffer can be
// reused across rounds without reallocating.
type Buffer struct {
	Events []Event
}

// Record appends the event.
func (b *Buffer) Record(e Event) { b.Events = append(b.Events, e) }

// RecordBatch appends a run of events.
func (b *Buffer) RecordBatch(evs []Event) { b.Events = append(b.Events, evs...) }

// RecordRun appends an ascending same-op run.
func (b *Buffer) RecordRun(op Op, array uint32, lo uint64, n int) {
	for k := 0; k < n; k++ {
		b.Events = append(b.Events, Event{Op: op, Array: array, Index: lo + uint64(k)})
	}
}

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.Events) }

// Reset empties the buffer, keeping capacity.
func (b *Buffer) Reset() { b.Events = b.Events[:0] }

// ReplayTo drains the buffer into r, preserving order, and resets it.
func (b *Buffer) ReplayTo(r Recorder) {
	RecordAll(r, b.Events)
	b.Reset()
}

// Log stores the complete event sequence in memory for exact comparison
// and rendering. Only suitable for small executions.
type Log struct {
	Events []Event
}

// NewLog returns an empty Log.
func NewLog() *Log { return &Log{} }

// Record appends the event.
func (l *Log) Record(e Event) { l.Events = append(l.Events, e) }

// RecordBatch appends a run of events.
func (l *Log) RecordBatch(evs []Event) { l.Events = append(l.Events, evs...) }

// RecordRun appends an ascending same-op run.
func (l *Log) RecordRun(op Op, array uint32, lo uint64, n int) {
	for k := 0; k < n; k++ {
		l.Events = append(l.Events, Event{Op: op, Array: array, Index: lo + uint64(k)})
	}
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.Events) }

// Equal reports whether two logs contain identical event sequences.
func (l *Log) Equal(o *Log) bool {
	if len(l.Events) != len(o.Events) {
		return false
	}
	for i := range l.Events {
		if l.Events[i] != o.Events[i] {
			return false
		}
	}
	return true
}

// FirstDivergence returns the index of the first differing event between
// two logs, or -1 if one is a prefix of the other or they are equal.
// It is a debugging aid for obliviousness failures.
func (l *Log) FirstDivergence(o *Log) int {
	n := len(l.Events)
	if len(o.Events) < n {
		n = len(o.Events)
	}
	for i := 0; i < n; i++ {
		if l.Events[i] != o.Events[i] {
			return i
		}
	}
	return -1
}

// eventEncSize is the width of one canonical event encoding:
// BE32(array) ‖ byte(op) ‖ BE64(index).
const eventEncSize = 4 + 1 + 8

// Hasher computes the canonical trace hash (see the package comment):
// one incremental SHA-256 stream fed the fixed 13-byte encoding of each
// event. Encodings accumulate in an internal buffer and are flushed to
// the hash in ~3 KiB writes, so recording costs a 13-byte copy per
// event plus 13/64 of a SHA-256 compression amortized — no allocation,
// no per-event compression. Two executions are (with overwhelming
// probability) trace-equal iff their final digests match.
type Hasher struct {
	h    hash.Hash
	n    uint64
	fill int
	buf  [eventEncSize * 248]byte
}

// NewHasher returns an empty Hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

func (s *Hasher) flush() {
	if s.fill > 0 {
		if s.h == nil { // zero-value Hasher
			s.h = sha256.New()
		}
		s.h.Write(s.buf[:s.fill])
		s.fill = 0
	}
}

// put buffers the canonical encoding of one event — the single
// definition of enc(e); every Record variant funnels through it.
func (s *Hasher) put(op Op, array uint32, index uint64) {
	if s.fill == len(s.buf) {
		s.flush()
	}
	b := s.buf[s.fill : s.fill+eventEncSize]
	binary.BigEndian.PutUint32(b, array)
	b[4] = byte(op)
	binary.BigEndian.PutUint64(b[5:], index)
	s.fill += eventEncSize
}

// Record folds one event into the digest.
func (s *Hasher) Record(e Event) {
	s.put(e.Op, e.Array, e.Index)
	s.n++
}

// RecordRun folds an ascending same-op run into the digest: the
// encodings are synthesized straight into the internal buffer, without
// interface dispatch or a materialized event slice.
func (s *Hasher) RecordRun(op Op, array uint32, lo uint64, n int) {
	for k := 0; k < n; k++ {
		s.put(op, array, lo+uint64(k))
	}
	s.n += uint64(n)
}

// RecordBatch folds a run of events into the digest in order with one
// call: the encodings go straight into the internal buffer without
// per-event interface dispatch.
func (s *Hasher) RecordBatch(evs []Event) {
	for i := range evs {
		s.put(evs[i].Op, evs[i].Array, evs[i].Index)
	}
	s.n += uint64(len(evs))
}

// Sum returns the digest of the events recorded so far. The stream is
// not finalized: recording may continue after a Sum, and repeated Sums
// without intervening Records return the same digest.
func (s *Hasher) Sum() [sha256.Size]byte {
	s.flush()
	var out [sha256.Size]byte
	if s.h == nil {
		s.h = sha256.New()
	}
	s.h.Sum(out[:0])
	return out
}

// Hex returns the current digest as a hex string.
func (s *Hasher) Hex() string {
	sum := s.Sum()
	return fmt.Sprintf("%x", sum)
}

// Count returns the number of events folded so far. Two oblivious runs
// must agree on this as well as on the digest.
func (s *Hasher) Count() uint64 { return s.n }

// Absorb folds the finished digest of a sub-stream into this hash and
// adds the sub-stream's event count to the total. It is how the
// sharded executor composes a run's canonical hash: each shard records
// its own events into a private Hasher, and the parent absorbs the
// per-shard digests in shard order between its own event runs, so the
// composed digest is
//
//	H = SHA-256( … ‖ enc(e_i) ‖ … ‖ Sum(shard_0) ‖ … ‖ Sum(shard_S−1) ‖ … )
//
// — a deterministic function of the public sizes and the shard count.
// The 32-byte digest injection is unambiguous in practice because the
// absorption points are a fixed function of the (public) plan, never of
// the data; composed digests are only ever compared against other
// composed digests of the same shape.
func (s *Hasher) Absorb(sum [sha256.Size]byte, events uint64) {
	s.flush()
	if s.h == nil {
		s.h = sha256.New()
	}
	s.h.Write(sum[:])
	s.n += events
}

// Counter tallies reads and writes without storing them; it is used for
// the operation-count columns of Table 3.
type Counter struct {
	Reads  uint64
	Writes uint64
}

// Record increments the matching tally.
func (c *Counter) Record(e Event) {
	if e.Op == Read {
		c.Reads++
	} else {
		c.Writes++
	}
}

// RecordBatch tallies a run of events with one dynamic dispatch.
func (c *Counter) RecordBatch(evs []Event) {
	var w uint64
	for _, e := range evs {
		w += uint64(e.Op)
	}
	c.Writes += w
	c.Reads += uint64(len(evs)) - w
}

// RecordRun tallies an ascending same-op run in constant time.
func (c *Counter) RecordRun(op Op, _ uint32, _ uint64, n int) {
	if op == Read {
		c.Reads += uint64(n)
	} else {
		c.Writes += uint64(n)
	}
}

// Total returns reads + writes.
func (c *Counter) Total() uint64 { return c.Reads + c.Writes }

// Add accumulates another counter's tallies — the Counter analogue of
// Hasher.Absorb, used when sharded execution units count events into
// private counters folded into the run's counter at a barrier.
func (c *Counter) Add(o *Counter) {
	c.Reads += o.Reads
	c.Writes += o.Writes
}

// Summary aggregates an event stream per array: how many reads and
// writes each array received and its touched extent. It feeds the
// space-usage analysis of §6.2 (total public memory is the sum of array
// extents).
type Summary struct {
	PerArray map[uint32]*ArrayStats
}

// ArrayStats is the per-array aggregate.
type ArrayStats struct {
	Reads  uint64
	Writes uint64
	Extent uint64 // max touched index + 1
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{PerArray: map[uint32]*ArrayStats{}}
}

// Record implements Recorder.
func (s *Summary) Record(e Event) {
	st, ok := s.PerArray[e.Array]
	if !ok {
		st = &ArrayStats{}
		s.PerArray[e.Array] = st
	}
	if e.Op == Read {
		st.Reads++
	} else {
		st.Writes++
	}
	if e.Index+1 > st.Extent {
		st.Extent = e.Index + 1
	}
}

// TotalExtent sums the touched extents of all arrays — the total public
// memory footprint in entries.
func (s *Summary) TotalExtent() uint64 {
	var t uint64
	for _, st := range s.PerArray {
		t += st.Extent
	}
	return t
}

// Tee duplicates the event stream to several recorders.
type Tee struct {
	Recorders []Recorder
}

// NewTee returns a Recorder forwarding to all rs.
func NewTee(rs ...Recorder) *Tee { return &Tee{Recorders: rs} }

// Record forwards e to every underlying recorder.
func (t *Tee) Record(e Event) {
	for _, r := range t.Recorders {
		r.Record(e)
	}
}

// Render draws the log as a time×address ASCII bitmap in the style of the
// paper's Figure 7: the horizontal axis is (discretized) time, the
// vertical axis is the global memory index, '.' denotes no access in the
// bucket, 'r' a read, 'W' a write (writes shade darker and win ties).
// Array a's index i is drawn at offset base[a]+i, where bases stack the
// arrays in first-appearance order. width and height bound the bitmap.
func (l *Log) Render(width, height int) string {
	if len(l.Events) == 0 {
		return "(empty trace)\n"
	}
	if width <= 0 {
		width = 80
	}
	if height <= 0 {
		height = 24
	}
	// Assign each array a vertical base offset, stacked in order of first
	// appearance, and find the total address-space height.
	bases := map[uint32]uint64{}
	var next uint64
	extent := map[uint32]uint64{}
	for _, e := range l.Events {
		if e.Index+1 > extent[e.Array] {
			extent[e.Array] = e.Index + 1
		}
	}
	seen := map[uint32]bool{}
	for _, e := range l.Events {
		if !seen[e.Array] {
			seen[e.Array] = true
			bases[e.Array] = next
			next += extent[e.Array]
		}
	}
	total := next
	if total == 0 {
		total = 1
	}

	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(".", width))
	}
	for t, e := range l.Events {
		x := t * width / len(l.Events)
		addr := bases[e.Array] + e.Index
		y := int(addr * uint64(height) / total)
		if y >= height {
			y = height - 1
		}
		c := byte('r')
		if e.Op == Write {
			c = 'W'
		}
		// Writes dominate reads within a bucket.
		if grid[y][x] != 'W' {
			grid[y][x] = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "memory access pattern: %d events, %d cells (time →, address ↓)\n",
		len(l.Events), total)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPGM emits the log as a binary-less plain PGM (P2) grayscale image,
// suitable for saving to disk and viewing: background white, reads gray,
// writes black — matching the light/dark shading of Figure 7.
func (l *Log) RenderPGM(width, height int) string {
	if width <= 0 {
		width = 512
	}
	if height <= 0 {
		height = 256
	}
	const (
		bg    = 255
		read  = 170
		write = 0
	)
	img := make([][]int, height)
	for y := range img {
		img[y] = make([]int, width)
		for x := range img[y] {
			img[y][x] = bg
		}
	}
	if len(l.Events) > 0 {
		var total uint64
		bases := map[uint32]uint64{}
		extent := map[uint32]uint64{}
		for _, e := range l.Events {
			if e.Index+1 > extent[e.Array] {
				extent[e.Array] = e.Index + 1
			}
		}
		seen := map[uint32]bool{}
		for _, e := range l.Events {
			if !seen[e.Array] {
				seen[e.Array] = true
				bases[e.Array] = total
				total += extent[e.Array]
			}
		}
		if total == 0 {
			total = 1
		}
		for t, e := range l.Events {
			x := t * width / len(l.Events)
			addr := bases[e.Array] + e.Index
			y := int(addr * uint64(height) / total)
			if y >= height {
				y = height - 1
			}
			v := read
			if e.Op == Write {
				v = write
			}
			if v < img[y][x] {
				img[y][x] = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "P2\n%d %d\n255\n", width, height)
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			if x > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", img[y][x])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
