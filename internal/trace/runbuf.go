package trace

// RunBuffer is a Recorder that stores its event stream as a sequence of
// ascending same-op runs instead of individual events. The streaming
// executor uses it to defer a stage's store writes out of the hot path:
// while a barrier operator fills its store batch-by-batch from an
// upstream drain, the fill's write events land here (one run record per
// batched range write, 24 bytes), and ReplayTo emits them into the real
// recorder once the drain is finished — restoring the canonical
// "all upstream reads, then all downstream writes" order that the
// materialized executor produces naturally. Memory stays proportional
// to the number of batches, not the number of events.
type RunBuffer struct {
	runs []eventRun
}

type eventRun struct {
	op    Op
	array uint32
	lo    uint64
	n     int
}

// push extends the last run when e continues it, else appends a new one.
func (b *RunBuffer) push(op Op, array uint32, lo uint64, n int) {
	if n <= 0 {
		return
	}
	if k := len(b.runs); k > 0 {
		last := &b.runs[k-1]
		if last.op == op && last.array == array && last.lo+uint64(last.n) == lo {
			last.n += n
			return
		}
	}
	b.runs = append(b.runs, eventRun{op: op, array: array, lo: lo, n: n})
}

// Record appends one event.
func (b *RunBuffer) Record(e Event) { b.push(e.Op, e.Array, e.Index, 1) }

// RecordBatch appends a run of events.
func (b *RunBuffer) RecordBatch(evs []Event) {
	for _, e := range evs {
		b.push(e.Op, e.Array, e.Index, 1)
	}
}

// RecordRun appends an ascending same-op run in constant space.
func (b *RunBuffer) RecordRun(op Op, array uint32, lo uint64, n int) {
	b.push(op, array, lo, n)
}

// Len returns the number of buffered events (not runs).
func (b *RunBuffer) Len() int {
	var t int
	for _, r := range b.runs {
		t += r.n
	}
	return t
}

// Reset empties the buffer, keeping capacity.
func (b *RunBuffer) Reset() { b.runs = b.runs[:0] }

// ReplayTo drains the buffered runs into r in order and resets the
// buffer. Replaying through RecordRunTo keeps the canonical encoding
// identical to having recorded each event directly.
func (b *RunBuffer) ReplayTo(r Recorder) {
	for _, run := range b.runs {
		RecordRunTo(r, run.op, run.array, run.lo, run.n)
	}
	b.Reset()
}
