package memory

import (
	"testing"
	"time"

	"oblivjoin/internal/trace"
)

func TestArrayGetSetRecordsEvents(t *testing.T) {
	log := trace.NewLog()
	s := NewSpace(log, nil)
	a := Alloc[int](s, 4, 8)
	a.Set(2, 99)
	if got := a.Get(2); got != 99 {
		t.Fatalf("Get(2) = %d, want 99", got)
	}
	want := []trace.Event{
		{Op: trace.Write, Array: a.ID(), Index: 2},
		{Op: trace.Read, Array: a.ID(), Index: 2},
	}
	if log.Len() != 2 || log.Events[0] != want[0] || log.Events[1] != want[1] {
		t.Fatalf("events = %v, want %v", log.Events, want)
	}
}

func TestArrayIDsDistinct(t *testing.T) {
	s := NewSpace(nil, nil)
	a := Alloc[int](s, 1, 8)
	b := Alloc[int](s, 1, 8)
	if a.ID() == b.ID() {
		t.Fatal("arrays share an ID")
	}
}

func TestFromSliceSharesBacking(t *testing.T) {
	s := NewSpace(nil, nil)
	data := []int{1, 2, 3}
	a := FromSlice(s, data, 8)
	a.Set(0, 42)
	if data[0] != 42 {
		t.Fatal("FromSlice copied instead of wrapping")
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d, want 3", a.Len())
	}
}

func TestResize(t *testing.T) {
	s := NewSpace(nil, nil)
	a := Alloc[int](s, 2, 8)
	a.Set(0, 7)
	a.Resize(5)
	if a.Len() != 5 || a.Get(0) != 7 {
		t.Fatalf("Resize grow lost data: len=%d v=%d", a.Len(), a.Get(0))
	}
	a.Resize(1)
	if a.Len() != 1 {
		t.Fatalf("Resize shrink: len=%d", a.Len())
	}
}

func TestNilRecorderDefaultsToNop(t *testing.T) {
	s := NewSpace(nil, nil)
	a := Alloc[int](s, 1, 8)
	a.Set(0, 1) // must not panic
	if s.Recorder() == nil {
		t.Fatal("Recorder() is nil")
	}
}

func TestCostModelAccessCost(t *testing.T) {
	cm := &CostModel{AccessCost: 10 * time.Nanosecond}
	s := NewSpace(nil, cm)
	a := Alloc[int](s, 10, 8)
	for i := 0; i < 10; i++ {
		a.Set(i, i)
	}
	if cm.Accesses != 10 {
		t.Fatalf("Accesses = %d, want 10", cm.Accesses)
	}
	if cm.Elapsed != 100*time.Nanosecond {
		t.Fatalf("Elapsed = %v, want 100ns", cm.Elapsed)
	}
	if cm.Faults != 0 {
		t.Fatalf("Faults = %d with no EPC limit", cm.Faults)
	}
}

func TestCostModelFaultsWhenExceedingEPC(t *testing.T) {
	// EPC of 2 pages; touching 3 distinct pages repeatedly must fault.
	cm := &CostModel{
		PageSize: 64, EPCBytes: 128,
		AccessCost: time.Nanosecond, MissCost: time.Microsecond,
	}
	s := NewSpace(nil, cm)
	a := Alloc[byte](s, 3*64, 1)
	for pass := 0; pass < 4; pass++ {
		for page := 0; page < 3; page++ {
			a.Get(page * 64)
		}
	}
	if cm.Faults == 0 {
		t.Fatal("expected page faults when working set exceeds EPC")
	}
	if cm.Elapsed <= time.Duration(cm.Accesses)*cm.AccessCost {
		t.Fatal("fault penalty not charged")
	}
}

func TestCostModelNoFaultsWithinEPC(t *testing.T) {
	cm := &CostModel{
		PageSize: 64, EPCBytes: 1024,
		AccessCost: time.Nanosecond, MissCost: time.Microsecond,
	}
	s := NewSpace(nil, cm)
	a := Alloc[byte](s, 256, 1)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 256; i++ {
			a.Get(i)
		}
	}
	if cm.Faults != 0 {
		t.Fatalf("Faults = %d, want 0 (4 pages fit in 16-page EPC)", cm.Faults)
	}
}

func TestCostModelElementStraddlingPages(t *testing.T) {
	cm := &CostModel{PageSize: 64, EPCBytes: 64, AccessCost: 0, MissCost: time.Microsecond}
	s := NewSpace(nil, cm)
	// 48-byte elements: element 1 spans bytes 48..95, straddling pages 0 and 1.
	a := Alloc[[48]byte](s, 4, 48)
	a.Get(1)
	// Two pages touched with a 1-page EPC → at least one fault.
	if cm.Faults == 0 {
		t.Fatal("straddling access did not fault a 1-page EPC")
	}
}

func TestCostModelReset(t *testing.T) {
	cm := DefaultSGX()
	s := NewSpace(nil, cm)
	a := Alloc[int](s, 8, 8)
	a.Get(0)
	cm.Reset()
	if cm.Accesses != 0 || cm.Elapsed != 0 || cm.Faults != 0 {
		t.Fatalf("Reset left stats: %+v", cm)
	}
	a.Get(0)
	if cm.Accesses != 1 {
		t.Fatal("cost model unusable after Reset")
	}
}

func TestDefaultSGXParameters(t *testing.T) {
	cm := DefaultSGX()
	if cm.EPCBytes != 93<<20 {
		t.Fatalf("EPCBytes = %d, want 93 MiB", cm.EPCBytes)
	}
	if cm.PageSize != 4096 {
		t.Fatalf("PageSize = %d, want 4096", cm.PageSize)
	}
	if cm.AccessCost <= 0 || cm.MissCost <= cm.AccessCost {
		t.Fatal("implausible SGX cost parameters")
	}
}

func TestDefaultSGXTransformedScaling(t *testing.T) {
	base := DefaultSGX()
	tr := DefaultSGXTransformed()
	if tr.AccessCost != base.AccessCost*111/100 {
		t.Fatalf("AccessCost = %v, want 1.11× %v", tr.AccessCost, base.AccessCost)
	}
	if tr.MissCost <= base.MissCost {
		t.Fatalf("MissCost not scaled: %v", tr.MissCost)
	}
	if tr.EPCBytes != base.EPCBytes || tr.PageSize != base.PageSize {
		t.Fatal("transformation must not change EPC geometry")
	}
}

func TestTracesIdenticalForSameAccessSequence(t *testing.T) {
	run := func(vals []int) string {
		h := trace.NewHasher()
		s := NewSpace(h, nil)
		a := Alloc[int](s, len(vals), 8)
		for i, v := range vals {
			a.Set(i, v)
		}
		for i := range vals {
			a.Get(i)
		}
		return h.Hex()
	}
	if run([]int{1, 2, 3}) != run([]int{9, 8, 7}) {
		t.Fatal("trace depends on stored values")
	}
}

func BenchmarkArraySet(b *testing.B) {
	s := NewSpace(nil, nil)
	a := Alloc[uint64](s, 1024, 8)
	for i := 0; i < b.N; i++ {
		a.Set(i&1023, uint64(i))
	}
}

func BenchmarkArraySetWithCostModel(b *testing.B) {
	s := NewSpace(nil, DefaultSGX())
	a := Alloc[uint64](s, 1024, 8)
	for i := 0; i < b.N; i++ {
		a.Set(i&1023, uint64(i))
	}
}

func TestRangeAccessMatchesElementLoop(t *testing.T) {
	log := trace.NewLog()
	s := NewSpace(log, nil)
	a := Alloc[int](s, 8, 8)
	vals := []int{10, 11, 12}
	a.SetRange(2, vals)
	got := make([]int, 3)
	a.GetRange(2, got)
	for k, v := range vals {
		if got[k] != v {
			t.Fatalf("GetRange[%d] = %d, want %d", k, got[k], v)
		}
	}
	want := []trace.Event{
		{Op: trace.Write, Array: a.ID(), Index: 2},
		{Op: trace.Write, Array: a.ID(), Index: 3},
		{Op: trace.Write, Array: a.ID(), Index: 4},
		{Op: trace.Read, Array: a.ID(), Index: 2},
		{Op: trace.Read, Array: a.ID(), Index: 3},
		{Op: trace.Read, Array: a.ID(), Index: 4},
	}
	if log.Len() != len(want) {
		t.Fatalf("recorded %d events, want %d", log.Len(), len(want))
	}
	for i, w := range want {
		if log.Events[i] != w {
			t.Fatalf("event %d = %v, want %v", i, log.Events[i], w)
		}
	}
}

func TestRangeAccessChargesCostModel(t *testing.T) {
	cost := &CostModel{PageSize: 4096, EPCBytes: 1 << 20, AccessCost: time.Nanosecond}
	s := NewSpace(nil, cost)
	a := Alloc[int](s, 16, 8)
	a.SetRange(0, make([]int, 16))
	a.GetRange(0, make([]int, 16))
	if cost.Accesses != 32 {
		t.Fatalf("Accesses = %d, want 32", cost.Accesses)
	}
}

func TestShardAliasesDataAndRedirectsTrace(t *testing.T) {
	parent := trace.NewLog()
	s := NewSpace(parent, nil)
	a := Alloc[int](s, 4, 8)
	buf := &trace.Buffer{}
	res := a.Shard(buf)
	if res == nil {
		t.Fatal("Shard refused without a cost model")
	}
	sh := res.(*Array[int])
	if sh.ID() != a.ID() {
		t.Fatal("shard changed array identity")
	}
	sh.Set(1, 7)
	if a.Get(1) != 7 {
		t.Fatal("shard write not visible through parent")
	}
	// The shard's write went to the buffer, not the parent recorder;
	// the parent Get above recorded exactly one event.
	if parent.Len() != 1 || buf.Len() != 1 {
		t.Fatalf("parent=%d buffered=%d events, want 1/1", parent.Len(), buf.Len())
	}
	buf.ReplayTo(parent)
	if parent.Len() != 2 || buf.Len() != 0 {
		t.Fatal("replay did not drain the buffer into the parent")
	}
}

func TestShardRefusedUnderCostModel(t *testing.T) {
	s := NewSpace(nil, DefaultSGX())
	a := Alloc[int](s, 4, 8)
	if res := a.Shard(nil); res != nil {
		t.Fatal("Shard must refuse when a cost model is attached")
	}
}

func TestTraced(t *testing.T) {
	if a := Alloc[int](NewSpace(nil, nil), 1, 8); a.Traced() {
		t.Fatal("untraced space reports Traced")
	}
	if a := Alloc[int](NewSpace(trace.NewLog(), nil), 1, 8); !a.Traced() {
		t.Fatal("traced space reports untraced")
	}
}

func TestRangeAccessPanicsPastLenAfterResize(t *testing.T) {
	s := NewSpace(nil, nil)
	a := Alloc[int](s, 8, 8)
	a.Resize(4) // capacity stays 8; length is now 4
	defer func() {
		if recover() == nil {
			t.Fatal("GetRange past Len must panic like the Get loop would")
		}
	}()
	a.GetRange(2, make([]int, 4)) // [2,6) exceeds len 4 but fits cap 8
}
