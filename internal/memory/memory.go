// Package memory models the public memory of the adversarial setting.
//
// All tables manipulated by the join live in Arrays allocated from a
// Space. Every element read or write emits a trace.Event to the Space's
// recorder — these events are exactly the ?← accesses of §4.3 of the
// paper — and is charged to an optional enclave cost model that simulates
// SGX-style execution for the Figure 8 experiment: a fixed per-access
// overhead plus a page-fault penalty once the working set exceeds the
// Enclave Page Cache.
//
// Local (protected) memory corresponds to plain Go variables; the
// algorithm keeps only a constant number of those, on the order of one
// database entry, matching the paper's level-II requirement.
package memory

import (
	"fmt"
	"time"

	"oblivjoin/internal/trace"
)

// Space ties together a trace recorder and an optional cost model, and
// hands out array identifiers. The zero value is not usable; call
// NewSpace.
type Space struct {
	rec    trace.Recorder
	cost   *CostModel
	nop    bool // rec is trace.Nop: range accesses skip event emission
	nextID uint32
}

// NewSpace returns a Space recording to rec (trace.Nop{} if nil) and
// charging cost (may be nil for free memory).
func NewSpace(rec trace.Recorder, cost *CostModel) *Space {
	if rec == nil {
		rec = trace.Nop{}
	}
	_, nop := rec.(trace.Nop)
	return &Space{rec: rec, cost: cost, nop: nop}
}

// Recorder returns the space's trace recorder.
func (s *Space) Recorder() trace.Recorder { return s.rec }

// Cost returns the space's cost model, or nil.
func (s *Space) Cost() *CostModel { return s.cost }

// Array is a traced slice of T living in public memory. ElemSize is the
// public fixed width of one element in bytes, used by the cost model to
// map element indices to memory pages.
type Array[T any] struct {
	space    *Space
	id       uint32
	elemSize int
	data     []T
}

// Alloc allocates a traced array of n elements of elemSize public bytes
// each. Allocation itself is not an observable data access.
func Alloc[T any](s *Space, n, elemSize int) *Array[T] {
	if elemSize <= 0 {
		elemSize = 1
	}
	id := s.nextID
	s.nextID++
	return &Array[T]{space: s, id: id, elemSize: elemSize, data: make([]T, n)}
}

// FromSlice wraps an existing slice as a traced array. The slice is used
// directly, not copied.
func FromSlice[T any](s *Space, data []T, elemSize int) *Array[T] {
	a := Alloc[T](s, 0, elemSize)
	a.data = data
	return a
}

// Len returns the (public) number of elements.
func (a *Array[T]) Len() int { return len(a.data) }

// ID returns the array's identifier as it appears in the trace.
func (a *Array[T]) ID() uint32 { return a.id }

// Get reads element i, emitting a read event.
func (a *Array[T]) Get(i int) T {
	a.touch(trace.Read, i)
	return a.data[i]
}

// Set writes element i, emitting a write event. The write happens
// unconditionally: writing back an unchanged value is indistinguishable
// from writing a new one (probabilistic re-encryption at the storage
// layer, see internal/crypto).
func (a *Array[T]) Set(i int, v T) {
	a.touch(trace.Write, i)
	a.data[i] = v
}

// GetRange reads the contiguous run [lo, lo+len(dst)) into dst, emitting
// one read event per element in ascending index order. Batching the
// accesses amortizes the per-element interface-call overhead of Get on
// hot paths (sorting-network rounds, linear scans); when the space is
// untraced and cost-free the whole range collapses to a single copy.
func (a *Array[T]) GetRange(lo int, dst []T) {
	a.touchRange(trace.Read, lo, len(dst))
	copy(dst, a.data[lo:lo+len(dst)])
}

// SetRange writes src over the contiguous run [lo, lo+len(src)),
// emitting one write event per element in ascending index order. As
// with Set, every element is written unconditionally.
func (a *Array[T]) SetRange(lo int, src []T) {
	a.touchRange(trace.Write, lo, len(src))
	copy(a.data[lo:lo+len(src)], src)
}

func (a *Array[T]) touchRange(op trace.Op, lo, n int) {
	// An explicit length check: slice expressions only bound against
	// capacity, which after a truncating Resize would let an
	// out-of-range batch silently read stale elements where the
	// equivalent Get/Set loop panics.
	if lo < 0 || n < 0 || lo+n > len(a.data) {
		panic(fmt.Sprintf("memory: range [%d,%d) out of bounds (len %d)", lo, lo+n, len(a.data)))
	}
	if a.space.nop && a.space.cost == nil {
		return
	}
	if a.space.cost != nil {
		// Cost-modeled accesses charge per element anyway; keep the
		// simple per-element path.
		for i := lo; i < lo+n; i++ {
			a.touch(op, i)
		}
		return
	}
	// Emit the event run through the recorder's run interface: one
	// dynamic dispatch for the whole range and no materialized event
	// slice (a stack-side event buffer would escape through the
	// interface call and allocate per range). Recorders without
	// RecordRun get the equivalent per-event loop.
	trace.RecordRunTo(a.space.rec, op, a.id, uint64(lo), n)
}

// Traced reports whether accesses to this array have an observable
// side effect (a non-Nop recorder). Parallel executors consult it to
// decide whether sharded accesses need event buffering at all.
func (a *Array[T]) Traced() bool { return !a.space.nop }

// Recorder returns the recorder that this array's accesses feed; shard
// buffers are replayed into it at synchronization barriers.
func (a *Array[T]) Recorder() trace.Recorder { return a.space.rec }

// Shard returns an alias of the array — same identifier, same backing
// data — whose accesses are recorded to rec (trace.Nop{} if nil)
// instead of the parent space's recorder, and charged to no cost model.
// Parallel executors give each worker a shard recording to a private
// trace.Buffer and replay the buffers in canonical order at round
// barriers, which keeps the recorded trace a deterministic function of
// the input size under concurrency.
//
// Shard returns nil when the parent space has a cost model attached:
// the enclave simulation's paging state is order-dependent and cannot
// be sharded, so such arrays must be accessed sequentially.
//
// The untyped return (asserted to the caller's array interface) keeps
// this package free of dependencies on its consumers.
func (a *Array[T]) Shard(rec trace.Recorder) any {
	if a.space.cost != nil {
		return nil
	}
	if rec == nil {
		rec = trace.Nop{}
	}
	_, nop := rec.(trace.Nop)
	return &Array[T]{
		space:    &Space{rec: rec, nop: nop},
		id:       a.id,
		elemSize: a.elemSize,
		data:     a.data,
	}
}

// Resize grows or truncates the array to n elements. The reallocation is
// not an observable per-element access (it models fresh allocation whose
// size is public).
func (a *Array[T]) Resize(n int) {
	if n <= cap(a.data) {
		a.data = a.data[:n]
		return
	}
	nd := make([]T, n)
	copy(nd, a.data)
	a.data = nd
}

// Raw exposes the backing slice for test assertions and final output
// extraction. Production algorithm code must never use Raw on secret
// data; it bypasses the trace.
func (a *Array[T]) Raw() []T { return a.data }

func (a *Array[T]) touch(op trace.Op, i int) {
	a.space.rec.Record(trace.Event{Op: op, Array: a.id, Index: uint64(i)})
	if a.space.cost != nil {
		a.space.cost.charge(a.id, uint64(i)*uint64(a.elemSize), a.elemSize)
	}
}

// pageKey identifies one EPC-resident page of one array.
type pageKey struct {
	array uint32
	page  uint64
}

// CostModel simulates the timing behaviour of running inside a hardware
// enclave. Each public-memory access costs AccessCost; when the set of
// touched pages exceeds EPCBytes, further faults evict the oldest
// resident page (FIFO, approximating SGX's paging) and cost MissCost.
//
// It accumulates simulated time in Elapsed; the caller adds that to (or
// scales) measured wall time to produce the SGX curves of Figure 8.
type CostModel struct {
	PageSize   int           // bytes per page (default 4096)
	EPCBytes   int64         // enclave page cache capacity
	AccessCost time.Duration // charged on every access
	MissCost   time.Duration // charged on every page fault past warmup

	Elapsed  time.Duration // accumulated simulated time
	Accesses uint64        // total accesses charged
	Faults   uint64        // page faults beyond EPC capacity

	resident map[pageKey]int // page → position in fifo
	fifo     []pageKey
	head     int
}

// DefaultSGX returns a cost model matching the paper's description of the
// evaluation platform: ~93 MiB usable EPC, 4 KiB pages, a small constant
// overhead per enclave access and an expensive page swap.
func DefaultSGX() *CostModel {
	return &CostModel{
		PageSize:   4096,
		EPCBytes:   93 << 20,
		AccessCost: 90 * time.Nanosecond,
		MissCost:   8 * time.Microsecond,
	}
}

// DefaultSGXTransformed is DefaultSGX with the per-access cost raised by
// the constant factor of the §3.4 level-III transformation. The paper
// measures its transformed SGX binary at ≈11% over the plain SGX one
// (6.30 s vs 5.67 s at n = 10⁶, Figure 8); the transformation replaces
// each conditional with both branches' arithmetic, a per-instruction
// constant, so a scaled access cost is the faithful model.
func DefaultSGXTransformed() *CostModel {
	c := DefaultSGX()
	c.AccessCost = c.AccessCost * 111 / 100
	c.MissCost = c.MissCost * 111 / 100
	return c
}

func (c *CostModel) pages() int {
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	n := int(c.EPCBytes / int64(c.PageSize))
	if n < 1 {
		n = 1
	}
	return n
}

func (c *CostModel) charge(array uint32, byteOff uint64, elemSize int) {
	c.Accesses++
	c.Elapsed += c.AccessCost
	if c.EPCBytes <= 0 {
		return
	}
	if c.resident == nil {
		c.resident = make(map[pageKey]int)
	}
	// An element may straddle a page boundary; touch every page it spans.
	first := byteOff / uint64(c.PageSize)
	last := (byteOff + uint64(elemSize) - 1) / uint64(c.PageSize)
	for p := first; p <= last; p++ {
		c.touchPage(pageKey{array, p})
	}
}

func (c *CostModel) touchPage(k pageKey) {
	if _, ok := c.resident[k]; ok {
		return
	}
	capPages := c.pages()
	if len(c.resident) >= capPages {
		// Evict oldest (FIFO).
		for {
			victim := c.fifo[c.head]
			c.head++
			if pos, ok := c.resident[victim]; ok && pos < c.head {
				delete(c.resident, victim)
				break
			}
		}
		c.Faults++
		c.Elapsed += c.MissCost
	}
	c.fifo = append(c.fifo, k)
	c.resident[k] = len(c.fifo) - 1
}

// Reset clears accumulated statistics and residency, keeping parameters.
func (c *CostModel) Reset() {
	c.Elapsed = 0
	c.Accesses = 0
	c.Faults = 0
	c.resident = nil
	c.fifo = nil
	c.head = 0
}
