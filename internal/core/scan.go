package core

import (
	"oblivjoin/internal/bitonic"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

// This file is the execution engine for the pipeline's linear passes
// (Fill-Dimensions, the expansion prefix sum and fill-down, the
// alignment indexing). A pass is a carry scan: it visits every entry
// once, in index order, threading a constant-size protected state. The
// engine executes a pass block by block — read a block as one batched
// range, apply the carry function over the buffered block in logical
// order (identical code to the naive loop, so the semantics cannot
// drift), write the block back — so the observable access pattern is
// "R-run(block), W-run(block)" per block in canonical block order, a
// fixed function of n.
//
// Sequentially this keeps the protected working set at one block. In
// parallel, the read phase of every block runs first (partitioned
// across worker lanes), then the carry function over the whole buffered
// table, then the write phase — but each block's events are recorded to
// that block's own shard buffer and replayed in the canonical
// per-block interleaved order at the phase barrier, so the recorded
// trace is bit-identical to the sequential run's at every parallelism
// degree. (The paper's formulation interleaves the read and write per
// index; either pattern is input-independent, and the block form is
// what makes batching and parallel lanes possible.)

// scanBlock is the number of entries per block: the unit of batched
// range access, of the canonical trace's run structure, and of the
// sequential working set. A fixed constant — never derived from the
// worker count — so the trace is identical at every parallelism
// degree.
const scanBlock = 4096

// ScanStore applies fn to every entry of st exactly once, in ascending
// index order (descending when reverse), with one read and one write
// per index. fn may mutate the entry in place; the index passed is the
// entry's position in st. Exported so the relational operators'
// carry scans (filter flagging, duplicate marking, group aggregation)
// ride the same blocked, parallel, trace-canonical engine as the join
// pipeline's own passes.
func (c *Config) ScanStore(st table.Store, reverse bool, fn func(i int, e *table.Entry)) {
	n := st.Len()
	if n == 0 {
		return
	}
	nb := (n + scanBlock - 1) / scanBlock
	lanes := c.workerCount()
	if lanes > nb {
		lanes = nb
	}
	var sh bitonic.Sharder
	if lanes > 1 {
		sh, _ = st.(bitonic.Sharder)
	}
	if sh == nil {
		c.scanSequential(st, n, nb, reverse, fn)
		return
	}
	if !c.scanParallel(sh, st, n, nb, lanes, reverse, fn) {
		c.scanSequential(st, n, nb, reverse, fn)
	}
}

// blockBounds returns the canonical index range of block k.
func blockBounds(k, n int) (lo, hi int) {
	lo = k * scanBlock
	hi = lo + scanBlock
	if hi > n {
		hi = n
	}
	return lo, hi
}

// applyBlock runs fn over one buffered block in logical order. blk is
// the entries of [lo, hi); the carry state lives in fn's closure.
func applyBlock(blk []table.Entry, lo int, reverse bool, fn func(i int, e *table.Entry)) {
	if reverse {
		for k := len(blk) - 1; k >= 0; k-- {
			fn(lo+k, &blk[k])
		}
	} else {
		for k := range blk {
			fn(lo+k, &blk[k])
		}
	}
}

// scanSequential is the direct path: one block of protected memory,
// blocks visited in canonical order (ascending; descending when
// reverse), each read, transformed and written back before the next.
// The cancellation probe runs at block boundaries — between a block's
// write-back and the next block's read — so an abort never tears a
// block access.
func (c *Config) scanSequential(st table.Store, n, nb int, reverse bool, fn func(i int, e *table.Entry)) {
	check := c.checkFn()
	var buf [scanBlock]table.Entry
	for b := 0; b < nb; b++ {
		if check != nil && b > 0 {
			check()
		}
		k := b
		if reverse {
			k = nb - 1 - b
		}
		lo, hi := blockBounds(k, n)
		blk := buf[:hi-lo]
		loadRange(st, lo, blk)
		applyBlock(blk, lo, reverse, fn)
		storeRange(st, lo, blk)
	}
}

// scanParallel buffers the whole table, running the per-block reads
// and writes across worker lanes with the carry pass in between. Each
// block's events land in that block's own shard buffers, replayed in
// canonical order (read-run then write-run per block) at the end, so
// the recorded trace matches scanSequential exactly. Returns false
// when the store refuses to shard (the caller falls back to the
// sequential path).
func (c *Config) scanParallel(sh bitonic.Sharder, st table.Store, n, nb, lanes int, reverse bool, fn func(i int, e *table.Entry)) bool {
	traced := sh.Traced()
	all := make([]table.Entry, n)
	rbufs := make([]*trace.Buffer, nb)
	wbufs := make([]*trace.Buffer, nb)

	// mustShard wraps Shard for use past the up-front probe:
	// shardability of the in-tree stores is static, so a mid-scan
	// refusal is a programming error, not a recoverable condition
	// (recovering would leave a partial, non-canonical trace).
	mustShard := func(rec trace.Recorder) table.Store {
		res := sh.Shard(rec)
		if res == nil {
			panic("core: store refused to shard mid-scan")
		}
		return res.(table.Store)
	}

	// sweep runs one phase (read or write) of every block across the
	// lanes: lane w handles a contiguous span of blocks in order.
	sweep := func(bufs []*trace.Buffer, write bool) {
		fns := make([]func(), lanes)
		span := (nb + lanes - 1) / lanes
		for w := 0; w < lanes; w++ {
			b0 := w * span
			b1 := b0 + span
			if b1 > nb {
				b1 = nb
			}
			fns[w] = func() {
				// One untraced shard serves the whole lane; traced
				// blocks each get a shard aliased to their own buffer.
				var laneStore table.Store
				if !traced {
					laneStore = mustShard(nil)
				}
				for b := b0; b < b1; b++ {
					target := laneStore
					if traced {
						bufs[b] = &trace.Buffer{}
						target = mustShard(bufs[b])
					}
					lo, hi := blockBounds(b, n)
					if write {
						storeRange(target, lo, all[lo:hi])
					} else {
						loadRange(target, lo, all[lo:hi])
					}
				}
			}
		}
		bitonic.RunTasks(fns)
	}

	// Probe shardability once before doing any work, so a refusal
	// (cost model attached) falls back before any access happens.
	if probe := sh.Shard(nil); probe == nil {
		return false
	}
	// Cancellation probes run at the phase barriers (before the read
	// sweep, between the sweeps, before the write sweep) on the
	// coordinating goroutine — never inside a lane — so an abort
	// leaves no lane mid-access and no event shard half-replayed.
	check := c.checkFn()
	if check != nil {
		check()
	}
	sweep(rbufs, false)
	if check != nil {
		check()
	}
	if reverse {
		for i := n - 1; i >= 0; i-- {
			fn(i, &all[i])
		}
	} else {
		for i := 0; i < n; i++ {
			fn(i, &all[i])
		}
	}
	if check != nil {
		check()
	}
	sweep(wbufs, true)
	if traced {
		rec := sh.Recorder()
		for b := 0; b < nb; b++ {
			k := b
			if reverse {
				k = nb - 1 - b
			}
			rbufs[k].ReplayTo(rec)
			wbufs[k].ReplayTo(rec)
		}
	}
	return true
}

// loadRange reads [lo, lo+len(dst)) of st into dst, batched in blocks
// of at most scanBlock when the store supports ranges (bounding the
// encrypted store's ciphertext scratch); the element-loop fallback
// emits the same ascending per-index events.
func loadRange(st table.Store, lo int, dst []table.Entry) {
	rs, ranged := st.(table.RangeStore)
	for off := 0; off < len(dst); off += scanBlock {
		end := off + scanBlock
		if end > len(dst) {
			end = len(dst)
		}
		if ranged {
			rs.GetRange(lo+off, dst[off:end])
			continue
		}
		for k := off; k < end; k++ {
			dst[k] = st.Get(lo + k)
		}
	}
}

// storeRange writes src over [lo, lo+len(src)) of st, batched in
// blocks of at most scanBlock when the store supports ranges.
func storeRange(st table.Store, lo int, src []table.Entry) {
	rs, ranged := st.(table.RangeStore)
	for off := 0; off < len(src); off += scanBlock {
		end := off + scanBlock
		if end > len(src) {
			end = len(src)
		}
		if ranged {
			rs.SetRange(lo+off, src[off:end])
			continue
		}
		for k := off; k < end; k++ {
			st.Set(lo+k, src[k])
		}
	}
}
