package core

import (
	"math/bits"
	"math/rand"
	"time"

	"oblivjoin/internal/bitonic"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/table"
)

// ExtObliviousDistribute implements the extended Oblivious-Distribute of
// Algorithms 3 and 4: given a store x of n entries in which every
// non-null entry carries a distinct destination F ∈ {1…m} (1-based; null
// entries have F = 0 and are discarded), it returns a store of exactly m
// entries with each non-null entry at index F−1 and ∅ entries elsewhere.
//
// The deterministic variant (cfg.Probabilistic == false) sorts by
// ⟨≠∅↑, f↑⟩ and then routes entries towards their destinations in
// ⌈log₂ L⌉ passes of power-of-two hops, L = max(n, m). Each inner step
// reads two fixed locations and writes them back, swapping exactly when
// the lower entry can hop without overshooting (Theorem 1 proves the
// target slot is always ∅ then). The memory trace is a fixed function of
// n and m.
func ExtObliviousDistribute(cfg *Config, x table.Store, m int) table.Store {
	if cfg.Probabilistic {
		return prpDistribute(cfg, x, m)
	}
	st := cfg.stats()
	n := x.Len()
	l := n
	if m > l {
		l = m
	}

	t0 := time.Now()
	a := cfg.Alloc(l)
	buf := make([]table.Entry, l)
	loadRange(x, 0, buf[:n])
	for i := n; i < l; i++ {
		buf[i] = table.Entry{Null: 1}
	}
	storeRange(a, 0, buf)
	cfg.SortStore(a, table.LessNullF, &st.DistributeSort)
	st.TDistSort += time.Since(t0)

	t0 = time.Now()
	routeDown(cfg, a, l, st)
	st.TDistRoute += time.Since(t0)

	if l == m {
		return a
	}
	return view{s: a, off: 0, size: m}
}

// routeDown performs the O(L log L) hop loop of Algorithm 3 over the
// first l entries of a. Entries must be sorted with all non-null
// entries first in increasing F order.
//
// The classic formulation iterates i from l-j-1 down to 0 for each hop
// j; iteration i only depends on iterations ≥ i+j (the sole earlier
// writer of a position it reads), so any j consecutive iterations form
// a wave of disjoint pairs. Each wave is one round for the shared
// round executor (bitonic.RunRounds): waves run top-down with a
// barrier between them, wave members execute batched and in parallel.
// The dataflow — and hence Theorem 1's invariant — is exactly that of
// the sequential loop.
func routeDown(cfg *Config, a table.Store, l int, st *Stats) {
	if l <= 1 {
		return
	}
	op := func(_, j int, _ uint64, y, y2 *table.Entry) {
		// Hop when the (1-based) destination of y is at or past the
		// absolute position of the high side (1-based j+1). Null
		// entries have F = 0 and never hop.
		c := obliv.GreaterEq(y.F, uint64(j+1))
		table.CondSwapEntry(c, y, y2)
	}
	st.RouteOps += bitonic.RunRoundsCheck[table.Entry](a, op, cfg.workerCount(), cfg.checkFn(),
		func(round func([]bitonic.Segment)) {
			seg := make([]bitonic.Segment, 1)
			for j := 1 << (bits.Len(uint(l-1)) - 1); j >= 1; j >>= 1 {
				for hi := l - j - 1; hi >= 0; hi -= j {
					lo := hi - j + 1
					if lo < 0 {
						lo = 0
					}
					seg[0] = bitonic.Segment{Lo: lo, Cnt: hi - lo + 1, Hop: j, Dir: 1}
					round(seg)
				}
			}
		})
}

// prpDistribute is the probabilistic variant sketched in §5.2: place
// each entry at a pseudorandomly permuted image of its destination, then
// obliviously sort by the permutation's inverse. The adversary observes
// writes at a uniformly random set of distinct positions followed by the
// input-independent accesses of the sorting network, so the procedure is
// oblivious in distribution rather than deterministically.
//
// Null entries are assigned distinct synthetic destinations m, m+1, …
// past the real range, which requires the scratch array to have n+m
// slots — the price of the probabilistic variant, along with the PRP
// assumption itself (§5.2 discusses why the deterministic network is
// preferable in practice).
func prpDistribute(cfg *Config, x table.Store, m int) table.Store {
	st := cfg.stats()
	n := x.Len()
	l := n + m

	t0 := time.Now()
	perm := rand.New(rand.NewSource(cfg.Seed)).Perm(l) // π over [0, l)
	a := cfg.Alloc(l)
	var empty table.Entry
	empty.Null = 1
	for i := 0; i < l; i++ {
		a.Set(i, empty)
	}
	var nulls uint64 // running count of discarded entries
	for i := 0; i < n; i++ {
		e := x.Get(i)
		// Real entries target F−1 ∈ [0, m); null ones take the next
		// synthetic slot in [m, m+n).
		dest := obliv.Select(e.Null, uint64(m)+nulls, e.F-1)
		nulls += e.Null
		a.Set(perm[dest], e)
	}
	// Tag every slot with the inverse-permutation key and sort by it:
	// position p holds key π⁻¹(p), so after sorting each real entry sits
	// at its original destination. The II field is unused this early in
	// the pipeline, so it carries the key.
	inv := make([]int, l)
	for p, q := range perm {
		inv[q] = p
	}
	cfg.ScanStore(a, false, func(p int, e *table.Entry) {
		e.II = uint64(inv[p])
	})
	st.TDistRoute += time.Since(t0)

	t0 = time.Now()
	cfg.SortStore(a, lessII, &st.DistributeSort)
	st.TDistSort += time.Since(t0)

	return view{s: a, off: 0, size: m}
}

func lessII(x, y table.Entry) uint64 { return obliv.Less(x.II, y.II) }
