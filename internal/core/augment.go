package core

import (
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/table"
)

// AugmentTables implements Algorithm 2: it concatenates the two input
// tables (tagged with table IDs), sorts by ⟨j, tid⟩, computes the group
// dimensions α1 and α2 with one forward and one backward linear pass
// (Fill-Dimensions, Figure 2), re-sorts by ⟨tid, j, d⟩ and returns the
// combined store together with views of the two augmented tables and the
// output size m = Σ α1·α2 over groups.
//
// The returned m is public: the paper's algorithm deliberately reveals
// the output length rather than padding to the quadratic worst case
// (§3.2, "Revealing Output Length").
func AugmentTables(cfg *Config, rows1, rows2 []table.Row) (tc table.Store, t1, t2 table.Store, m int) {
	st := cfg.stats()
	n1, n2 := len(rows1), len(rows2)
	n := n1 + n2
	tc = cfg.Alloc(n)
	load := make([]table.Entry, n)
	for i, r := range rows1 {
		load[i] = table.Entry{J: r.J, D: r.D, TID: 1}
	}
	for i, r := range rows2 {
		load[n1+i] = table.Entry{J: r.J, D: r.D, TID: 2}
	}
	storeRange(tc, 0, load)

	cfg.SortStore(tc, table.LessJTID, &st.AugmentSort)
	m = fillDimensions(cfg, tc)
	cfg.SortStore(tc, table.LessTIDJD, &st.AugmentSort)

	t1 = view{s: tc, off: 0, size: n1}
	t2 = view{s: tc, off: n1, size: n2}
	return tc, t1, t2, m
}

// fillDimensions computes α1 and α2 for every entry of tc, which must be
// sorted by ⟨j, tid⟩, and returns the total output size m. Each
// direction is one carry scan — one read and one write per index,
// executed by the blocked scan engine (scan.go) so the store traffic
// batches and parallelizes; all data-dependent state lives in a
// constant number of local variables and is manipulated branch-free.
// RowFeed supplies one table's rows batch-wise: Len is the public total
// row count, Next returns the next batch (the slice may be reused
// between calls; nil at end of stream) and Close releases whatever the
// feed drains from. The streaming query executor's row sources satisfy
// it, which is how a join consumes an upstream stage's batches straight
// into TC without a whole-relation copy.
type RowFeed interface {
	Len() int
	Next() ([]table.Row, error)
	Close()
}

// RowsFeed adapts an in-memory row slice to the RowFeed contract: one
// batch holding every row, then end of stream. It is how the
// materialized call paths reuse the feed-shaped pipeline entry points
// (and emits no events of its own, matching a staged slice exactly).
func RowsFeed(rows []table.Row) RowFeed { return &sliceFeed{rows: rows} }

type sliceFeed struct {
	rows []table.Row
	done bool
}

func (f *sliceFeed) Len() int { return len(f.rows) }

func (f *sliceFeed) Next() ([]table.Row, error) {
	if f.done || len(f.rows) == 0 {
		return nil, nil
	}
	f.done = true
	return f.rows, nil
}

func (f *sliceFeed) Close() {}

// drainInto appends every batch of feed into bld tagged tid, closing
// the feed in all cases.
func drainInto(bld *table.Builder, feed RowFeed, tid uint64) error {
	defer feed.Close()
	for {
		b, err := feed.Next()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		bld.AppendRows(b, tid)
	}
}

// AugmentTablesFeed is AugmentTables with the left table supplied
// batch-wise; see AugmentTablesFeed2 for the trace-equivalence
// argument (a slice is just a one-batch feed).
func AugmentTablesFeed(cfg *Config, feed RowFeed, rows2 []table.Row) (tc table.Store, t1, t2 table.Store, m int, err error) {
	return AugmentTablesFeed2(cfg, feed, RowsFeed(rows2))
}

// AugmentTablesFeed2 is AugmentTables with both tables supplied
// batch-wise: batches append straight into TC through a table.Builder,
// so neither side's staging slice of the materialized variant ever
// exists — the join barrier consumes both pre-join scans incrementally
// in sealed-block batches. Trace equivalence: the builder emits the
// same ascending per-entry write events over [0, n1+n2), deferred
// behind any upstream drain reads, so the canonical trace matches a
// materialized run's bit for bit.
func AugmentTablesFeed2(cfg *Config, feed1, feed2 RowFeed) (tc table.Store, t1, t2 table.Store, m int, err error) {
	st := cfg.stats()
	n1, n2 := feed1.Len(), feed2.Len()
	n := n1 + n2
	tc = cfg.Alloc(n)
	bld := table.NewBuilder(tc)
	if err := drainInto(bld, feed1, 1); err != nil {
		feed2.Close()
		return nil, nil, nil, 0, err
	}
	if bld.Pos() != n1 {
		panic("core: row feed yielded a different count than its public length")
	}
	if err := drainInto(bld, feed2, 2); err != nil {
		return nil, nil, nil, 0, err
	}
	if bld.Pos() != n {
		panic("core: row feed yielded a different count than its public length")
	}
	bld.Flush()

	cfg.SortStore(tc, table.LessJTID, &st.AugmentSort)
	m = fillDimensions(cfg, tc)
	cfg.SortStore(tc, table.LessTIDJD, &st.AugmentSort)

	t1 = view{s: tc, off: 0, size: n1}
	t2 = view{s: tc, off: n1, size: n2}
	return tc, t1, t2, m, nil
}

func fillDimensions(cfg *Config, tc table.Store) int {
	// Forward pass: store incremental counts. Within a group (a run of
	// equal j), entries from T1 precede entries from T2; c1 counts T1
	// entries seen in the current group, c2 counts T2 entries. The last
	// entry of each group ends up holding the group's true (α1, α2).
	var jprev, c1, c2 uint64
	started := uint64(0) // becomes 1 after the first entry
	cfg.ScanStore(tc, false, func(_ int, e *table.Entry) {
		same := obliv.And(started, obliv.Eq(e.J, jprev))
		c1 = obliv.Select(same, c1, 0)
		c2 = obliv.Select(same, c2, 0)
		isT1 := obliv.Eq(e.TID, 1)
		c1 += isT1
		c2 += obliv.Not(isT1)
		e.A1 = c1
		e.A2 = c2
		jprev = e.J
		started = 1
	})

	// Backward pass: propagate each group's final counts (found in its
	// last entry, the first one seen scanning backwards) to the whole
	// group, accumulating m = Σ α1·α2 once per group.
	var a1, a2, mAcc uint64
	jprev, started = 0, 0
	cfg.ScanStore(tc, true, func(_ int, e *table.Entry) {
		same := obliv.And(started, obliv.Eq(e.J, jprev))
		a1 = obliv.Select(same, a1, e.A1)
		a2 = obliv.Select(same, a2, e.A2)
		mAcc += obliv.Select(same, 0, e.A1*e.A2)
		e.A1 = a1
		e.A2 = a2
		jprev = e.J
		started = 1
	})
	return int(mAcc)
}
