package core

import (
	"time"

	"oblivjoin/internal/obliv"
	"oblivjoin/internal/table"
)

// GFunc selects the duplication count g(x) for an entry during
// expansion: α2 when expanding T1, α1 when expanding T2.
type GFunc func(e *table.Entry) uint64

// GAlpha2 duplicates each T1 entry once per matching T2 entry.
func GAlpha2(e *table.Entry) uint64 { return e.A2 }

// GAlpha1 duplicates each T2 entry once per matching T1 entry.
func GAlpha1(e *table.Entry) uint64 { return e.A1 }

// ObliviousExpand implements Algorithm 4: it returns a store of exactly
// m entries in which each input entry x appears g(x) times contiguously,
// in input order; entries with g(x) = 0 vanish. m must equal Σ g(x) —
// the caller knows it from Augment-Tables.
//
// The three phases are (1) a linear prefix-sum pass assigning each entry
// its first destination F (1-based) and marking g = 0 entries ∅; (2) the
// extended oblivious distribute; (3) a linear fill-down pass overwriting
// each ∅ slot with the last preceding real entry. Each linear pass makes
// one read and one write per index, executed by the blocked scan engine
// (scan.go).
func ObliviousExpand(cfg *Config, x table.Store, g GFunc, m int) table.Store {
	st := cfg.stats()

	t0 := time.Now()
	s := uint64(1)
	cfg.ScanStore(x, false, func(_ int, e *table.Entry) {
		gv := obliv.Select(e.Null, 0, g(e))
		zero := obliv.Eq(gv, 0)
		e.F = obliv.Select(zero, 0, s)
		e.Null = zero
		s += gv
	})
	st.TExpandScan += time.Since(t0)
	if int(s-1) != m {
		// A mismatch means the caller's m is inconsistent with the group
		// dimensions — a programming error, not a data-dependent event
		// (both quantities are public).
		panic("core: expansion size mismatch")
	}

	a := ExtObliviousDistribute(cfg, x, m)

	t0 = time.Now()
	var px table.Entry
	px.Null = 1
	cfg.ScanStore(a, false, func(_ int, e *table.Entry) {
		table.CondCopyEntry(e.Null, e, &px)
		px = *e
	})
	st.TExpandScan += time.Since(t0)
	return a
}
