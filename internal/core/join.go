package core

import (
	"time"

	"oblivjoin/internal/table"
)

// Join computes the binary equi-join of two unsorted tables using the
// full oblivious pipeline of Algorithm 1. The result contains one
// (d1, d2) pair per matching pair of input rows, ordered by
// (j, d1, alignment); its length m is public.
func Join(cfg *Config, rows1, rows2 []table.Row) []table.Pair {
	if cfg.Alloc == nil {
		panic("core: Config.Alloc is required")
	}
	st := cfg.stats()
	st.N1, st.N2 = len(rows1), len(rows2)

	t0 := time.Now()
	_, t1, t2, m := AugmentTables(cfg, rows1, rows2)
	st.TAugment += time.Since(t0)
	st.M = m

	s1 := ObliviousExpand(cfg, t1, GAlpha2, m)
	s2 := ObliviousExpand(cfg, t2, GAlpha1, m)
	AlignTable(cfg, s2)

	t0 = time.Now()
	out := make([]table.Pair, m)
	zipStores(cfg, s1, s2, m, func(i int, e1, e2 *table.Entry) {
		out[i] = table.Pair{D1: e1.D, D2: e2.D}
	})
	st.TZip += time.Since(t0)
	return out
}

// zipStores reads s1 and s2 in lockstep blocks (batched when the
// stores support ranges) and hands each aligned entry pair to fn,
// probing for cancellation at block boundaries.
func zipStores(cfg *Config, s1, s2 table.Store, m int, fn func(i int, e1, e2 *table.Entry)) {
	const blk = 1024
	check := cfg.checkFn()
	var b1, b2 [blk]table.Entry
	for lo := 0; lo < m; lo += blk {
		if check != nil && lo > 0 {
			check()
		}
		cnt := m - lo
		if cnt > blk {
			cnt = blk
		}
		loadRange(s1, lo, b1[:cnt])
		loadRange(s2, lo, b2[:cnt])
		for k := 0; k < cnt; k++ {
			fn(lo+k, &b1[k], &b2[k])
		}
	}
}

// JoinKeyed is Join but retains the join value in each output row,
// making the result directly re-joinable (the composition §7 of the
// paper sketches for multi-way joins). The extra column changes nothing
// about the access pattern: S1 is read at the same indices either way.
func JoinKeyed(cfg *Config, rows1, rows2 []table.Row) []table.KeyedPair {
	if cfg.Alloc == nil {
		panic("core: Config.Alloc is required")
	}
	st := cfg.stats()
	st.N1, st.N2 = len(rows1), len(rows2)

	t0 := time.Now()
	_, t1, t2, m := AugmentTables(cfg, rows1, rows2)
	st.TAugment += time.Since(t0)
	st.M = m

	s1 := ObliviousExpand(cfg, t1, GAlpha2, m)
	s2 := ObliviousExpand(cfg, t2, GAlpha1, m)
	AlignTable(cfg, s2)

	t0 = time.Now()
	out := make([]table.KeyedPair, m)
	zipStores(cfg, s1, s2, m, func(i int, e1, e2 *table.Entry) {
		out[i] = table.KeyedPair{J: e1.J, D1: e1.D, D2: e2.D}
	})
	st.TZip += time.Since(t0)
	return out
}

// JoinKeyedFeed is JoinKeyed with the left table supplied batch-wise by
// a RowFeed; see JoinKeyedFeed2 (a slice is just a one-batch feed).
func JoinKeyedFeed(cfg *Config, feed RowFeed, rows2 []table.Row) ([]table.KeyedPair, error) {
	return JoinKeyedFeed2(cfg, feed, RowsFeed(rows2))
}

// JoinKeyedFeed2 is JoinKeyed with both tables supplied batch-wise:
// upstream batches append straight into TC (no staging slices), and
// the join's internal stores are released into the run's gauge the
// moment the pipeline is done with them — TC after the two expands, S1
// and S2 after the zip — so the streaming executor's peak is the phase
// maximum, not the sum. The access pattern, and hence the canonical
// trace, is identical to JoinKeyed over the same sizes.
func JoinKeyedFeed2(cfg *Config, feed1, feed2 RowFeed) ([]table.KeyedPair, error) {
	if cfg.Alloc == nil {
		panic("core: Config.Alloc is required")
	}
	st := cfg.stats()
	st.N1, st.N2 = feed1.Len(), feed2.Len()

	t0 := time.Now()
	tc, t1, t2, m, err := AugmentTablesFeed2(cfg, feed1, feed2)
	if err != nil {
		return nil, err
	}
	st.TAugment += time.Since(t0)
	st.M = m

	s1 := ObliviousExpand(cfg, t1, GAlpha2, m)
	s2 := ObliviousExpand(cfg, t2, GAlpha1, m)
	cfg.ReleaseStore(tc)
	AlignTable(cfg, s2)

	t0 = time.Now()
	out := make([]table.KeyedPair, m)
	zipStores(cfg, s1, s2, m, func(i int, e1, e2 *table.Entry) {
		out[i] = table.KeyedPair{J: e1.J, D1: e1.D, D2: e2.D}
	})
	cfg.ReleaseStore(s1)
	cfg.ReleaseStore(s2)
	st.TZip += time.Since(t0)
	return out, nil
}

// OutputSize runs only the Augment-Tables stage and reports the join's
// output cardinality m without materializing it. The paper's two-stage
// circuit decomposition (§3.4, constraint 3) needs exactly this value
// before the second, m-parameterized stage is laid out.
func OutputSize(cfg *Config, rows1, rows2 []table.Row) int {
	if cfg.Alloc == nil {
		panic("core: Config.Alloc is required")
	}
	_, _, _, m := AugmentTables(cfg, rows1, rows2)
	return m
}
