package core

import (
	"testing"

	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
)

// FuzzJoinAgainstReference decodes a byte string into two small tables
// and checks the oblivious join against the nested-loop reference. The
// encoding: first byte splits the stream; each subsequent byte is a
// join key (mod 8, so collisions are common).
func FuzzJoinAgainstReference(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 1, 2, 3})
	f.Add([]byte{0})
	f.Add([]byte{5, 7, 7, 7, 7, 7, 7, 7, 7})
	f.Add([]byte{2, 0, 1, 0, 1, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 48 {
			return
		}
		split := int(data[0]) % len(data)
		mk := func(bs []byte, tid int, off int) []table.Row {
			rows := make([]table.Row, len(bs))
			for i, b := range bs {
				var d table.Data
				d[0] = byte(tid)
				d[1] = byte(off + i)
				rows[i] = table.Row{J: uint64(b % 8), D: d}
			}
			return rows
		}
		rows1 := mk(data[1:1+split], 1, 0)
		rows2 := mk(data[1+split:], 2, 100)

		sp := memory.NewSpace(nil, nil)
		got := Join(&Config{Alloc: table.PlainAlloc(sp)}, rows1, rows2)
		want := referenceJoin(rows1, rows2)
		if !samePairs(got, want) {
			t.Fatalf("join mismatch: got %d pairs, want %d", len(got), len(want))
		}
	})
}
