package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

// referenceJoin is the trivially correct (and trivially non-oblivious)
// nested-loop join used as the ground truth.
func referenceJoin(rows1, rows2 []table.Row) []table.Pair {
	var out []table.Pair
	for _, r1 := range rows1 {
		for _, r2 := range rows2 {
			if r1.J == r2.J {
				out = append(out, table.Pair{D1: r1.D, D2: r2.D})
			}
		}
	}
	return out
}

func pairKey(p table.Pair) string {
	return string(p.D1[:]) + "\x00" + string(p.D2[:])
}

func sortedKeys(ps []table.Pair) []string {
	ks := make([]string, len(ps))
	for i, p := range ps {
		ks[i] = pairKey(p)
	}
	sort.Strings(ks)
	return ks
}

func samePairs(a, b []table.Pair) bool {
	ka, kb := sortedKeys(a), sortedKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func plainConfig() *Config {
	sp := memory.NewSpace(nil, nil)
	return &Config{Alloc: table.PlainAlloc(sp)}
}

func rowsFrom(pairs [][2]uint64) []table.Row {
	rows := make([]table.Row, len(pairs))
	for i, p := range pairs {
		rows[i] = table.Row{J: p[0], D: table.MustData(fmt.Sprintf("d%d_%d", p[0], p[1]))}
	}
	return rows
}

func checkJoin(t *testing.T, cfg *Config, rows1, rows2 []table.Row) {
	t.Helper()
	got := Join(cfg, rows1, rows2)
	want := referenceJoin(rows1, rows2)
	if !samePairs(got, want) {
		t.Fatalf("join mismatch: got %d pairs, want %d\ngot:  %v\nwant: %v",
			len(got), len(want), sortedKeys(got), sortedKeys(want))
	}
}

func TestJoinPaperExample(t *testing.T) {
	// The running example of Figures 1–5: T1 has groups x:{a1,a2},
	// y:{b1..b4}; T2 has x:{u1,u2,u3}, y:{v1,v2}, z:{w1}.
	t1 := []table.Row{
		{J: 'x', D: table.MustData("a1")}, {J: 'x', D: table.MustData("a2")},
		{J: 'y', D: table.MustData("b1")}, {J: 'y', D: table.MustData("b2")},
		{J: 'y', D: table.MustData("b3")}, {J: 'y', D: table.MustData("b4")},
	}
	t2 := []table.Row{
		{J: 'x', D: table.MustData("u1")}, {J: 'x', D: table.MustData("u2")},
		{J: 'x', D: table.MustData("u3")},
		{J: 'y', D: table.MustData("v1")}, {J: 'y', D: table.MustData("v2")},
		{J: 'z', D: table.MustData("w1")},
	}
	cfg := plainConfig()
	got := Join(cfg, t1, t2)
	if len(got) != 2*3+4*2 {
		t.Fatalf("m = %d, want 14", len(got))
	}
	checkJoin(t, plainConfig(), t1, t2)
}

func TestJoinOutputOrderIsLexicographic(t *testing.T) {
	// The aligned output must enumerate each group's Cartesian product
	// lexicographically: for each T1 entry (in (j,d) order), all T2
	// entries in (j,d) order.
	t1 := rowsFrom([][2]uint64{{5, 1}, {5, 2}})
	t2 := rowsFrom([][2]uint64{{5, 1}, {5, 2}, {5, 3}})
	got := Join(plainConfig(), t1, t2)
	want := []table.Pair{
		{D1: t1[0].D, D2: t2[0].D}, {D1: t1[0].D, D2: t2[1].D}, {D1: t1[0].D, D2: t2[2].D},
		{D1: t1[1].D, D2: t2[0].D}, {D1: t1[1].D, D2: t2[1].D}, {D1: t1[1].D, D2: t2[2].D},
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = (%s,%s), want (%s,%s)", i,
				table.DataString(got[i].D1), table.DataString(got[i].D2),
				table.DataString(want[i].D1), table.DataString(want[i].D2))
		}
	}
}

func TestJoinEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		t1, t2 [][2]uint64
	}{
		{"both empty", nil, nil},
		{"left empty", nil, [][2]uint64{{1, 1}}},
		{"right empty", [][2]uint64{{1, 1}}, nil},
		{"no overlap", [][2]uint64{{1, 1}, {2, 1}}, [][2]uint64{{3, 1}, {4, 1}}},
		{"single match", [][2]uint64{{1, 1}}, [][2]uint64{{1, 2}}},
		{"full cross 1xn", [][2]uint64{{7, 0}}, [][2]uint64{{7, 1}, {7, 2}, {7, 3}, {7, 4}}},
		{"full cross nx1", [][2]uint64{{7, 1}, {7, 2}, {7, 3}}, [][2]uint64{{7, 0}}},
		{"duplicate rows", [][2]uint64{{1, 1}, {1, 1}}, [][2]uint64{{1, 2}, {1, 2}}},
		{"partial overlap", [][2]uint64{{1, 1}, {2, 2}, {3, 3}}, [][2]uint64{{2, 4}, {3, 5}, {4, 6}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkJoin(t, plainConfig(), rowsFrom(tc.t1), rowsFrom(tc.t2))
		})
	}
}

// genWorkload mirrors the paper's §6 test generation: for a given n it
// produces input classes including n 1×1 groups, a single 1×n group, and
// power-law-distributed group sizes.
func genWorkload(kind string, n int, rng *rand.Rand) (t1, t2 []table.Row) {
	mk := func(j uint64, tid, i int) table.Row {
		return table.Row{J: j, D: table.MustData(fmt.Sprintf("%d:%d:%d", tid, j, i))}
	}
	switch kind {
	case "1x1":
		for i := 0; i < n/2; i++ {
			t1 = append(t1, mk(uint64(i), 1, 0))
			t2 = append(t2, mk(uint64(i), 2, 0))
		}
	case "1xn":
		t1 = append(t1, mk(0, 1, 0))
		for i := 0; i < n-1; i++ {
			t2 = append(t2, mk(0, 2, i))
		}
	case "powerlaw":
		j := uint64(0)
		remaining := n
		for remaining > 0 {
			// Group sizes ~ 1/k: many small groups, a few large ones.
			size := 1 + int(float64(remaining)*rng.Float64()*rng.Float64()*0.3)
			if size > remaining {
				size = remaining
			}
			k1 := rng.Intn(size + 1)
			for i := 0; i < k1; i++ {
				t1 = append(t1, mk(j, 1, i))
			}
			for i := 0; i < size-k1; i++ {
				t2 = append(t2, mk(j, 2, i))
			}
			remaining -= size
			j++
		}
	case "skewleft":
		for i := 0; i < n*3/4; i++ {
			t1 = append(t1, mk(uint64(i%5), 1, i))
		}
		for i := 0; i < n/4; i++ {
			t2 = append(t2, mk(uint64(i%7), 2, i))
		}
	}
	return t1, t2
}

// TestJoinCorrectnessSweep is the §6 correctness experiment: for each n,
// multiple generated inputs of size n across structural classes, all
// checked against the reference join.
func TestJoinCorrectnessSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{2, 4, 10, 30, 100}
	if testing.Short() {
		sizes = []int{2, 10, 30}
	}
	for _, n := range sizes {
		for _, kind := range []string{"1x1", "1xn", "powerlaw", "skewleft"} {
			for rep := 0; rep < 3; rep++ {
				t1, t2 := genWorkload(kind, n, rng)
				checkJoin(t, plainConfig(), t1, t2)
			}
		}
	}
}

func TestJoinProbabilisticDistribute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{4, 10, 40} {
		for _, kind := range []string{"1x1", "powerlaw"} {
			t1, t2 := genWorkload(kind, n, rng)
			sp := memory.NewSpace(nil, nil)
			cfg := &Config{Alloc: table.PlainAlloc(sp), Probabilistic: true, Seed: int64(n)}
			checkJoin(t, cfg, t1, t2)
		}
	}
}

func TestJoinMergeExchangeNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, kind := range []string{"1x1", "powerlaw", "1xn"} {
		t1, t2 := genWorkload(kind, 30, rng)
		sp := memory.NewSpace(nil, nil)
		cfg := &Config{Alloc: table.PlainAlloc(sp), Net: MergeExchange}
		checkJoin(t, cfg, t1, t2)
	}
}

func TestJoinParallelSorts(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, kind := range []string{"1x1", "powerlaw"} {
		t1, t2 := genWorkload(kind, 300, rng)
		sp := memory.NewSpace(nil, nil)
		cfg := &Config{Alloc: table.PlainAlloc(sp), Parallel: true}
		checkJoin(t, cfg, t1, t2)
	}
}

func TestJoinWorkersCorrectAtEveryDegree(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, workers := range []int{2, 3, 8, -1} {
		for _, kind := range []string{"1x1", "1xn", "powerlaw", "skewleft"} {
			t1, t2 := genWorkload(kind, 200, rng)
			sp := memory.NewSpace(nil, nil)
			cfg := &Config{Alloc: table.PlainAlloc(sp), Workers: workers}
			checkJoin(t, cfg, t1, t2)
		}
	}
}

// TestJoinParallelTraceEqualsSequential is the parallel half of the
// §6.1 obliviousness experiment: the canonical trace of a join — lane
// shards merged at round barriers — must be bit-identical to the
// sequential run's, at every parallelism degree, for both sorting
// networks, and the sharded instrumentation must report identical
// counts.
func TestJoinParallelTraceEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, net := range []SortNet{Bitonic, MergeExchange} {
		for _, kind := range []string{"1x1", "powerlaw"} {
			t1, t2 := genWorkload(kind, 400, rng)
			run := func(workers int) (string, uint64, Stats) {
				h := trace.NewHasher()
				sp := memory.NewSpace(h, nil)
				var st Stats
				cfg := &Config{Alloc: table.PlainAlloc(sp), Net: net, Workers: workers, Stats: &st}
				Join(cfg, t1, t2)
				return h.Hex(), h.Count(), st
			}
			seqHash, seqCount, seqSt := run(1)
			for _, workers := range []int{2, 4, 8} {
				parHash, parCount, parSt := run(workers)
				if parCount != seqCount {
					t.Fatalf("net=%v kind=%s workers=%d: %d events, sequential has %d",
						net, kind, workers, parCount, seqCount)
				}
				if parHash != seqHash {
					t.Fatalf("net=%v kind=%s workers=%d: canonical trace differs from sequential",
						net, kind, workers)
				}
				if parSt.AugmentSort != seqSt.AugmentSort ||
					parSt.DistributeSort != seqSt.DistributeSort ||
					parSt.AlignSort != seqSt.AlignSort ||
					parSt.RouteOps != seqSt.RouteOps {
					t.Fatalf("net=%v kind=%s workers=%d: sharded stats diverge: %+v vs %+v",
						net, kind, workers, parSt, seqSt)
				}
			}
		}
	}
}

// TestJoinParallelExactLogEqualsSequential compares full event logs of
// a parallel and a sequential join, pinning down the first divergence
// on failure.
func TestJoinParallelExactLogEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	t1, t2 := genWorkload("powerlaw", 120, rng)
	run := func(workers int) *trace.Log {
		log := trace.NewLog()
		sp := memory.NewSpace(log, nil)
		Join(&Config{Alloc: table.PlainAlloc(sp), Workers: workers}, t1, t2)
		return log
	}
	seq := run(1)
	par := run(4)
	if !seq.Equal(par) {
		t.Fatalf("exact logs diverge at event %d of %d/%d",
			seq.FirstDivergence(par), seq.Len(), par.Len())
	}
}

func TestJoinParallelOverEncryptedStore(t *testing.T) {
	c := newTestCipher(t)
	rng := rand.New(rand.NewSource(59))
	t1, t2 := genWorkload("powerlaw", 60, rng)
	sp := memory.NewSpace(nil, nil)
	cfg := &Config{Alloc: table.EncryptedAlloc(sp, c), Workers: 4}
	checkJoin(t, cfg, t1, t2)
}

// TestJoinParallelWithCostModelDegrades confirms that a cost-modeled
// space refuses to shard: the parallel run must still produce the
// sequential canonical trace and identical simulated-cost accounting.
func TestJoinParallelWithCostModelDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	t1, t2 := genWorkload("powerlaw", 80, rng)
	run := func(workers int) (string, uint64) {
		h := trace.NewHasher()
		cost := memory.DefaultSGX()
		sp := memory.NewSpace(h, cost)
		Join(&Config{Alloc: table.PlainAlloc(sp), Workers: workers}, t1, t2)
		return h.Hex(), cost.Accesses
	}
	seqHash, seqAcc := run(1)
	parHash, parAcc := run(4)
	if seqHash != parHash || seqAcc != parAcc {
		t.Fatal("cost-modeled parallel run diverged from sequential")
	}
}

func TestOutputSize(t *testing.T) {
	t1 := rowsFrom([][2]uint64{{1, 1}, {1, 2}, {2, 1}})
	t2 := rowsFrom([][2]uint64{{1, 3}, {2, 4}, {2, 5}, {3, 6}})
	if m := OutputSize(plainConfig(), t1, t2); m != 2*1+1*2 {
		t.Fatalf("OutputSize = %d, want 4", m)
	}
}

func TestStatsPopulated(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	var st Stats
	cfg := &Config{Alloc: table.PlainAlloc(sp), Stats: &st}
	t1, t2 := genWorkload("powerlaw", 40, rand.New(rand.NewSource(3)))
	out := Join(cfg, t1, t2)
	if st.N1 != len(t1) || st.N2 != len(t2) || st.M != len(out) {
		t.Fatalf("sizes not recorded: %+v", st)
	}
	if st.AugmentSort.CompareExchanges == 0 || st.DistributeSort.CompareExchanges == 0 {
		t.Fatal("sort comparator counts not recorded")
	}
	if st.M > 1 && st.AlignSort.CompareExchanges == 0 {
		t.Fatal("align comparator count not recorded")
	}
	if st.RouteOps == 0 {
		t.Fatal("route ops not recorded")
	}
	if st.Total() <= 0 {
		t.Fatal("durations not recorded")
	}
}

func TestJoinPanicsWithoutAlloc(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Join(&Config{}, nil, nil)
}

// traceHash runs the full join over the given inputs recording the trace
// hash of every public-memory access.
func traceHash(rows1, rows2 []table.Row) (string, int) {
	h := trace.NewHasher()
	sp := memory.NewSpace(h, nil)
	cfg := &Config{Alloc: table.PlainAlloc(sp)}
	out := Join(cfg, rows1, rows2)
	return h.Hex(), len(out)
}

// TestObliviousness is the §6.1 experiment: all inputs in the same
// (n1, n2, m) class must produce identical access-pattern hashes.
func TestObliviousness(t *testing.T) {
	classes := []struct {
		name string
		gen  func(variant int) (t1, t2 []table.Row)
	}{
		{
			// n1=n2=4, m=8: different group structures with equal output.
			"n4x4 m8", func(v int) ([]table.Row, []table.Row) {
				switch v {
				case 0: // four 1×2... no: 2 groups of 2×2 → m=8
					return rowsFrom([][2]uint64{{1, 0}, {1, 1}, {2, 0}, {2, 1}}),
						rowsFrom([][2]uint64{{1, 2}, {1, 3}, {2, 2}, {2, 3}})
				case 1: // one 4×2 group → m=8
					return rowsFrom([][2]uint64{{9, 0}, {9, 1}, {9, 2}, {9, 3}}),
						rowsFrom([][2]uint64{{9, 4}, {9, 5}, {7, 0}, {8, 0}})
				default: // one 2×4 group → m=8
					return rowsFrom([][2]uint64{{3, 0}, {3, 1}, {4, 0}, {5, 0}}),
						rowsFrom([][2]uint64{{3, 2}, {3, 3}, {3, 4}, {3, 5}})
				}
			},
		},
		{
			"n6x6 m0", func(v int) ([]table.Row, []table.Row) {
				base := uint64(100 * (v + 1))
				var a, b [][2]uint64
				for i := 0; i < 6; i++ {
					a = append(a, [2]uint64{base + uint64(i), 0})
					b = append(b, [2]uint64{base + 50 + uint64(i), 0})
				}
				return rowsFrom(a), rowsFrom(b)
			},
		},
		{
			"n5x3 m6", func(v int) ([]table.Row, []table.Row) {
				switch v {
				case 0: // 2×3 + 3 unmatched left
					return rowsFrom([][2]uint64{{1, 0}, {1, 1}, {2, 0}, {3, 0}, {4, 0}}),
						rowsFrom([][2]uint64{{1, 2}, {1, 3}, {1, 4}})
				case 1: // 3×2 + others
					return rowsFrom([][2]uint64{{5, 0}, {5, 1}, {5, 2}, {6, 0}, {7, 0}}),
						rowsFrom([][2]uint64{{5, 3}, {5, 4}, {8, 0}})
				default: // one 3×2 group (m=6) + unmatched strays
					return rowsFrom([][2]uint64{{1, 0}, {1, 1}, {1, 2}, {2, 0}, {3, 0}}),
						rowsFrom([][2]uint64{{1, 3}, {1, 4}, {4, 0}})
				}
			},
		},
	}
	for _, cl := range classes {
		t.Run(cl.name, func(t *testing.T) {
			var first string
			var firstM int
			for v := 0; v < 3; v++ {
				t1, t2 := cl.gen(v)
				h, m := traceHash(t1, t2)
				if v == 0 {
					first, firstM = h, m
					continue
				}
				if m != firstM {
					t.Fatalf("variant %d produced m=%d, class has m=%d — bad test class", v, m, firstM)
				}
				if h != first {
					t.Fatalf("variant %d trace hash differs: algorithm leaks input structure", v)
				}
			}
		})
	}
}

// TestObliviousnessExactLogs compares full event logs (not just hashes)
// for a small class, and pins down the first divergence on failure.
func TestObliviousnessExactLogs(t *testing.T) {
	run := func(t1, t2 []table.Row) *trace.Log {
		log := trace.NewLog()
		sp := memory.NewSpace(log, nil)
		Join(&Config{Alloc: table.PlainAlloc(sp)}, t1, t2)
		return log
	}
	// Class n1=n2=2, m=2: two 1×1 groups vs one 2×... no — 1×2 needs
	// n1=1. Use two 1×1 groups vs one group 2 left / 1 right (2×1=2).
	l1 := run(rowsFrom([][2]uint64{{1, 0}, {2, 0}}), rowsFrom([][2]uint64{{1, 1}, {2, 1}}))
	l2 := run(rowsFrom([][2]uint64{{5, 0}, {5, 1}}), rowsFrom([][2]uint64{{5, 2}, {6, 0}}))
	if !l1.Equal(l2) {
		t.Fatalf("exact logs diverge at event %d of %d/%d",
			l1.FirstDivergence(l2), l1.Len(), l2.Len())
	}
}

// TestTraceDependsOnlyOnSizes confirms the converse direction: different
// (n, m) classes are allowed to (and here do) differ.
func TestTraceDependsOnlyOnSizes(t *testing.T) {
	h1, _ := traceHash(rowsFrom([][2]uint64{{1, 0}}), rowsFrom([][2]uint64{{1, 1}}))
	h2, _ := traceHash(rowsFrom([][2]uint64{{1, 0}, {2, 0}}), rowsFrom([][2]uint64{{1, 1}}))
	if h1 == h2 {
		t.Fatal("different input sizes produced identical traces (suspicious)")
	}
}

// TestSpaceUsage pins the public-memory footprint of the join against
// the §6.2 accounting: our implementation allocates the combined table
// TC (n entries) plus one distribute array of max(nᵢ, m) per side. (The
// paper's prototype additionally overlaps TC with the expansions to
// reach max(n1,m)+max(n2,m); we keep TC live for clarity and document
// the n-entry difference here.)
func TestSpaceUsage(t *testing.T) {
	cases := []struct{ n1, n2 int }{{8, 8}, {20, 4}, {3, 17}}
	for _, tc := range cases {
		t1, t2 := genWorkload("powerlaw", tc.n1+tc.n2, rand.New(rand.NewSource(31)))
		s := trace.NewSummary()
		sp := memory.NewSpace(s, nil)
		out := Join(&Config{Alloc: table.PlainAlloc(sp)}, t1, t2)
		m := len(out)
		max := func(a, b int) int {
			if a > b {
				return a
			}
			return b
		}
		want := (len(t1) + len(t2)) + max(len(t1), m) + max(len(t2), m)
		if got := int(s.TotalExtent()); got != want {
			t.Fatalf("n1=%d n2=%d m=%d: footprint %d entries, want %d",
				len(t1), len(t2), m, got, want)
		}
	}
}

func TestJoinOverEncryptedStore(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	cfg := plainConfig()
	_ = sp
	// swap in encrypted allocator
	c := newTestCipher(t)
	sp2 := memory.NewSpace(nil, nil)
	cfg = &Config{Alloc: table.EncryptedAlloc(sp2, c)}
	t1, t2 := genWorkload("powerlaw", 20, rand.New(rand.NewSource(21)))
	checkJoin(t, cfg, t1, t2)
}
