package core

// This file is the cancellation half of Config: a run executing under a
// cancellable context probes it at every round barrier of the sorting
// and routing networks and at every scan-block boundary, and aborts by
// panicking with an Abort carrying the context's error. The probe runs
// only on the goroutine driving the round schedule — never on a pool
// worker — so an abort unwinds exactly one stack: worker lanes always
// complete the round they started, no store access is torn mid-flight,
// and the shared worker pool survives intact. The executing query's
// scratch stores are simply abandoned to the garbage collector; nothing
// the run touched outlives it, which is why a cancelled query cannot
// corrupt a catalog snapshot, a cached plan or a sealed store.
//
// Rounds and scan blocks are fixed functions of the (public) input
// sizes, so the probe cadence — and the cancellation latency of at most
// one round — leaks nothing about table contents.

// Abort is the panic value carrying a context cancellation out of the
// oblivious operator stack. The stack has no error returns on its hot
// paths (sorting networks, routing waves, carry scans are all
// infallible by construction), so cancellation travels as a panic and
// is recovered exactly once, at the query.Run boundary, where it
// becomes a typed error.
type Abort struct{ Err error }

// checkCancel panics with an Abort when the config's context has been
// cancelled. It is the probe installed at round barriers and block
// boundaries.
func (c *Config) checkCancel() {
	if err := c.Ctx.Err(); err != nil {
		panic(Abort{Err: err})
	}
}

// checkFn returns the cancellation probe to install into round
// executors and scans, or nil when the config carries no cancellable
// context — the nil keeps uncancellable runs (context.Background, no
// context at all) at literally zero probe overhead.
func (c *Config) checkFn() func() {
	if c.Ctx == nil || c.Ctx.Done() == nil {
		return nil
	}
	return c.checkCancel
}

// CheckCtx probes the config's context from operator code between
// oblivious passes (after a Done() == nil fast path) and panics with an
// Abort when it is cancelled. Exported for the physical operators of
// internal/query/exec, which run whole oblivious subroutines back to
// back and probe between them.
func (c *Config) CheckCtx() {
	if c.Ctx != nil && c.Ctx.Done() != nil {
		c.checkCancel()
	}
}
