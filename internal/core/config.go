// Package core implements the oblivious equi-join of Krastnikov,
// Kerschbaum and Stebila (VLDB 2020): Algorithms 1–5 of the paper.
//
// The pipeline is
//
//	Augment-Tables → Oblivious-Expand(T1, α2) → Oblivious-Expand(T2, α1)
//	              → Align-Table(S2) → zip
//
// running in O(n log² n + m log m) with a constant-size protected working
// set (a handful of local variables, on the order of one entry). All
// accesses to table storage flow through table.Store, whose
// implementations emit the trace events that the repository's
// obliviousness tests verify.
package core

import (
	"time"

	"oblivjoin/internal/bitonic"
	"oblivjoin/internal/table"
)

// SortNet selects which sorting network the join uses.
type SortNet int

const (
	// Bitonic is Batcher's bitonic sorter, the paper's default.
	Bitonic SortNet = iota
	// MergeExchange is Batcher's odd-even merge-exchange sort; fewer
	// comparators, less parallel structure. Used in ablations.
	MergeExchange
)

// Config parameterizes a join run. Alloc is required; the zero values of
// the remaining fields give the paper's default configuration
// (deterministic routing distribute, bitonic sorts, no instrumentation).
type Config struct {
	// Alloc provides entry storage (plain or encrypted public memory).
	Alloc table.Alloc
	// Net selects the sorting network.
	Net SortNet
	// Probabilistic switches Oblivious-Distribute to the PRP-based
	// variant of §5.2 instead of the deterministic routing network.
	Probabilistic bool
	// Seed seeds the pseudorandom permutation of the probabilistic
	// distribute. The deterministic variant ignores it. A zero seed is
	// valid (it is still a fixed permutation; callers wanting fresh
	// randomness should supply entropy).
	Seed int64
	// Stats, when non-nil, accumulates per-phase comparator counts and
	// wall times (the Table 3 instrumentation).
	Stats *Stats
	// Parallel runs the bitonic sorting phases across goroutines
	// (bitonic.SortParallel). The compare–exchange schedule — and hence
	// the per-location access pattern — is identical to the sequential
	// network; only the global interleaving changes. Use only with
	// untraced, cost-model-free spaces: recorders are not synchronized.
	// Ignored when Net is MergeExchange or when Stats is set (comparator
	// counters are likewise unsynchronized).
	Parallel bool
}

// Stats records the per-phase cost breakdown reported in Table 3 of the
// paper, plus input/output sizes.
type Stats struct {
	N1, N2 int // input table sizes
	M      int // output size (public by design; the algorithm leaks it)

	AugmentSort    bitonic.Stats // the two sorts on TC (Alg. 2 lines 3, 5)
	DistributeSort bitonic.Stats // sorts inside the two distributes
	AlignSort      bitonic.Stats // the sort on S2 (Alg. 5 line 8)
	RouteOps       uint64        // compare–hop steps of the routing loops

	TAugment    time.Duration // Augment-Tables wall time
	TDistSort   time.Duration // distribute: sorting portion
	TDistRoute  time.Duration // distribute: routing portion
	TExpandScan time.Duration // expand: prefix-sum and fill-down scans
	TAlign      time.Duration // Align-Table wall time
	TZip        time.Duration // output collection wall time
}

// Total returns the sum of all phase durations.
func (s *Stats) Total() time.Duration {
	return s.TAugment + s.TDistSort + s.TDistRoute + s.TExpandScan + s.TAlign + s.TZip
}

// sortStore runs the configured sorting network over st.
func (c *Config) sortStore(st table.Store, less bitonic.LessFunc[table.Entry], bs *bitonic.Stats) {
	switch {
	case c.Net == MergeExchange:
		bitonic.MergeExchangeSort[table.Entry](st, less, table.CondSwapEntry, bs)
	case c.Parallel && c.Stats == nil:
		bitonic.SortParallel[table.Entry](st, less, table.CondSwapEntry)
	default:
		bitonic.Sort[table.Entry](st, less, table.CondSwapEntry, bs)
	}
}

func (c *Config) stats() *Stats {
	if c.Stats != nil {
		return c.Stats
	}
	return &Stats{} // discarded scratch so call sites stay branch-light
}

// view is a windowed alias of a Store: the augmented TC is split into T1
// and T2 as two regions of the same array (§6.2's space accounting
// depends on this).
type view struct {
	s    table.Store
	off  int
	size int
}

func (v view) Len() int                 { return v.size }
func (v view) Get(i int) table.Entry    { return v.s.Get(v.off + i) }
func (v view) Set(i int, e table.Entry) { v.s.Set(v.off+i, e) }
