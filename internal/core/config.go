// Package core implements the oblivious equi-join of Krastnikov,
// Kerschbaum and Stebila (VLDB 2020): Algorithms 1–5 of the paper.
//
// The pipeline is
//
//	Augment-Tables → Oblivious-Expand(T1, α2) → Oblivious-Expand(T2, α1)
//	              → Align-Table(S2) → zip
//
// running in O(n log² n + m log m) with a constant-size protected working
// set (a handful of local variables, on the order of one entry). All
// accesses to table storage flow through table.Store, whose
// implementations emit the trace events that the repository's
// obliviousness tests verify.
package core

import (
	"context"
	"runtime"
	"time"

	"oblivjoin/internal/bitonic"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

// SortNet selects which sorting network the join uses.
type SortNet int

const (
	// Bitonic is Batcher's bitonic sorter, the paper's default.
	Bitonic SortNet = iota
	// MergeExchange is Batcher's odd-even merge-exchange sort; fewer
	// comparators, less parallel structure. Used in ablations.
	MergeExchange
)

// Config parameterizes a join run. Alloc is required; the zero values of
// the remaining fields give the paper's default configuration
// (deterministic routing distribute, bitonic sorts, no instrumentation).
type Config struct {
	// Alloc provides entry storage (plain or encrypted public memory).
	Alloc table.Alloc
	// Net selects the sorting network.
	Net SortNet
	// Probabilistic switches Oblivious-Distribute to the PRP-based
	// variant of §5.2 instead of the deterministic routing network.
	Probabilistic bool
	// Seed seeds the pseudorandom permutation of the probabilistic
	// distribute. The deterministic variant ignores it. A zero seed is
	// valid (it is still a fixed permutation; callers wanting fresh
	// randomness should supply entropy).
	Seed int64
	// Stats, when non-nil, accumulates per-phase comparator counts and
	// wall times (the Table 3 instrumentation). Counting is
	// parallel-safe: comparator and route-op totals are accumulated
	// deterministically at round barriers, so Stats composes with
	// Workers/Parallel and reports identical counts at every
	// parallelism degree.
	Stats *Stats
	// Workers sets the parallelism of the sorting networks, the routing
	// network and the linear scans: > 1 partitions each execution round
	// across that many lanes of a persistent worker pool, 1 (or 0 with
	// Parallel unset) runs sequentially, and < 0 uses GOMAXPROCS. Every
	// phase executes the same round schedule at every parallelism
	// degree, and traced runs merge per-lane event shards in canonical
	// order at round barriers, so the recorded trace, the comparator
	// counts and the result are all independent of Workers. Stores that
	// cannot be accessed concurrently (an enclave cost model attached)
	// degrade to sequential execution over the same schedule.
	Workers int
	// Parallel is shorthand for Workers = GOMAXPROCS when Workers is 0.
	// Unlike the pre-round-schedule implementation it composes with
	// Stats, tracing and MergeExchange; see Workers.
	Parallel bool
	// Ctx, when non-nil and cancellable, makes the run abortable: the
	// sorting networks, routing waves and blocked scans probe it at
	// round barriers and block boundaries and abort by panicking with
	// an Abort (see cancel.go) within one round of cancellation. A nil
	// context (or context.Background()) costs nothing. The probe
	// cadence is a fixed function of the public input sizes, so
	// cancellation support leaks nothing about table contents.
	Ctx context.Context
	// Mem, when non-nil, is the run's allocation gauge: every store
	// handed out by Alloc is tracked in it, the query driver charges
	// relation hand-off buffers to it, and the streaming stages release
	// what they have drained through ReleaseStore. The query layer uses
	// it to report PeakBytes/TotalAllocBytes and to divert allocations
	// to sealed spill files under a memory budget.
	Mem *table.Gauge
	// Shards is the hash-partition fan-out requested for join
	// execution. The core operators themselves never branch on it — a
	// single Config always drives one sequential-equivalent pipeline —
	// but the sharded scheduler (internal/shard) reads it off the
	// parent config, and per-shard configs carry 1. ≤ 1 means
	// unsharded.
	Shards int
}

// ReleaseStore marks st dead for the run's allocation gauge (freeing
// its spill file, if any); a no-op without a gauge. The feed-based join
// and the streaming stages call it the moment an intermediate store is
// fully drained.
func (c *Config) ReleaseStore(st table.Store) {
	if c.Mem == nil {
		return
	}
	// Unwrap windowed aliases: releasing a view means releasing the
	// store it windows (a view never outlives its phase).
	for {
		v, ok := st.(view)
		if !ok {
			break
		}
		st = v.s
	}
	c.Mem.Release(st)
}

// Stats records the per-phase cost breakdown reported in Table 3 of the
// paper, plus input/output sizes.
type Stats struct {
	N1, N2 int // input table sizes
	M      int // output size (public by design; the algorithm leaks it)

	AugmentSort    bitonic.Stats // the two sorts on TC (Alg. 2 lines 3, 5)
	DistributeSort bitonic.Stats // sorts inside the two distributes
	AlignSort      bitonic.Stats // the sort on S2 (Alg. 5 line 8)
	RelationalSort bitonic.Stats // sorts issued by the relational operators (ops, aggregate)
	RouteOps       uint64        // compare–hop steps of the routing loops

	TAugment    time.Duration // Augment-Tables wall time
	TDistSort   time.Duration // distribute: sorting portion
	TDistRoute  time.Duration // distribute: routing portion
	TExpandScan time.Duration // expand: prefix-sum and fill-down scans
	TAlign      time.Duration // Align-Table wall time
	TZip        time.Duration // output collection wall time
}

// Total returns the sum of all phase durations.
func (s *Stats) Total() time.Duration {
	return s.TAugment + s.TDistSort + s.TDistRoute + s.TExpandScan + s.TAlign + s.TZip
}

// RelationalSortStats returns the bucket the relational operators'
// sorts (internal/ops, internal/aggregate) accumulate into, or nil
// when the config carries no instrumentation.
func (c *Config) RelationalSortStats() *bitonic.Stats {
	if c.Stats == nil {
		return nil
	}
	return &c.Stats.RelationalSort
}

// Add accumulates o's comparator, route-op and phase-duration counters
// into s. Input/output sizes (N1, N2, M) are per-join figures, not
// additive, and are left alone. The sharded scheduler folds per-shard
// stats into the parent run's Stats through this, in shard order, at
// the post-barrier synchronization point — so totals stay
// deterministic at every concurrency degree.
func (s *Stats) Add(o *Stats) {
	s.AugmentSort.CompareExchanges += o.AugmentSort.CompareExchanges
	s.DistributeSort.CompareExchanges += o.DistributeSort.CompareExchanges
	s.AlignSort.CompareExchanges += o.AlignSort.CompareExchanges
	s.RelationalSort.CompareExchanges += o.RelationalSort.CompareExchanges
	s.RouteOps += o.RouteOps

	s.TAugment += o.TAugment
	s.TDistSort += o.TDistSort
	s.TDistRoute += o.TDistRoute
	s.TExpandScan += o.TExpandScan
	s.TAlign += o.TAlign
	s.TZip += o.TZip
}

// Comparators returns the total compare–exchange count across every
// sorting network the run executed, all phases included.
func (s *Stats) Comparators() uint64 {
	return s.AugmentSort.CompareExchanges +
		s.DistributeSort.CompareExchanges +
		s.AlignSort.CompareExchanges +
		s.RelationalSort.CompareExchanges
}

// WorkerCount resolves the configured parallelism to a concrete lane
// count (≥ 1) — exported for the sharded scheduler, which divides the
// parent's lanes among concurrent execution units.
func (c *Config) WorkerCount() int { return c.workerCount() }

// workerCount resolves the configured parallelism to a concrete lane
// count (≥ 1).
func (c *Config) workerCount() int {
	switch {
	case c.Workers < 0:
		return runtime.GOMAXPROCS(0)
	case c.Workers > 0:
		return c.Workers
	case c.Parallel:
		return runtime.GOMAXPROCS(0)
	default:
		return 1
	}
}

// SortStore runs the configured sorting network over st at the
// configured parallelism. Comparator counts land in bs (nil to skip) at
// every parallelism degree (the former sequential-only restriction is
// gone: round-barrier accumulation made counting deterministic). It is
// exported so the relational operators (internal/ops,
// internal/aggregate) sort through the same Config — one knob for
// network choice, parallelism and instrumentation across the whole
// query pipeline.
func (c *Config) SortStore(st table.Store, less bitonic.LessFunc[table.Entry], bs *bitonic.Stats) {
	w := c.workerCount()
	check := c.checkFn()
	if c.Net == MergeExchange {
		bitonic.MergeExchangeSortParallelCheck[table.Entry](st, less, table.CondSwapEntry, bs, w, check)
		return
	}
	bitonic.SortParallelCheck[table.Entry](st, less, table.CondSwapEntry, bs, w, check)
}

// pairArray adapts a plain KeyedPair slice to the sorting networks'
// Array interface. Pair relations travel between operators as plain
// slices (their per-element access pattern is already fixed by the
// networks' schedules), so no store allocation is involved.
type pairArray []table.KeyedPair

func (p pairArray) Len() int                     { return len(p) }
func (p pairArray) Get(i int) table.KeyedPair    { return p[i] }
func (p pairArray) Set(i int, v table.KeyedPair) { p[i] = v }

// SortPairs runs the configured sorting network over a KeyedPair slice
// in place, at the configured parallelism, with cancellation probes at
// the round barriers. Comparator counts land in bs (nil to skip). The
// canonicalize stage of a reordered join chain sorts through this, so
// its network choice, parallelism and instrumentation match the rest of
// the pipeline.
func (c *Config) SortPairs(pairs []table.KeyedPair, less bitonic.LessFunc[table.KeyedPair], bs *bitonic.Stats) {
	w := c.workerCount()
	check := c.checkFn()
	if c.Net == MergeExchange {
		bitonic.MergeExchangeSortParallelCheck[table.KeyedPair](pairArray(pairs), less, table.CondSwapKeyedPair, bs, w, check)
		return
	}
	bitonic.SortParallelCheck[table.KeyedPair](pairArray(pairs), less, table.CondSwapKeyedPair, bs, w, check)
}

func (c *Config) stats() *Stats {
	if c.Stats != nil {
		return c.Stats
	}
	return &Stats{} // discarded scratch so call sites stay branch-light
}

// view is a windowed alias of a Store: the augmented TC is split into T1
// and T2 as two regions of the same array (§6.2's space accounting
// depends on this). It forwards the optional range and sharding
// capabilities of its underlying store so windowed tables still ride
// the batched/parallel paths.
type view struct {
	s    table.Store
	off  int
	size int
}

func (v view) Len() int                 { return v.size }
func (v view) Get(i int) table.Entry    { return v.s.Get(v.off + i) }
func (v view) Set(i int, e table.Entry) { v.s.Set(v.off+i, e) }

// GetRange reads [lo, lo+len(dst)) of the window, batched when the
// underlying store supports it (loadRange's element-loop fallback
// emits the same events in the same order).
func (v view) GetRange(lo int, dst []table.Entry) {
	loadRange(v.s, v.off+lo, dst)
}

// SetRange writes src over [lo, lo+len(src)) of the window.
func (v view) SetRange(lo int, src []table.Entry) {
	storeRange(v.s, v.off+lo, src)
}

// Traced implements bitonic.Sharder by forwarding to the underlying
// store, conservatively assuming a trace when it cannot tell.
func (v view) Traced() bool {
	if sh, ok := v.s.(bitonic.Sharder); ok {
		return sh.Traced()
	}
	return true
}

// Recorder implements bitonic.Sharder.
func (v view) Recorder() trace.Recorder {
	if sh, ok := v.s.(bitonic.Sharder); ok {
		return sh.Recorder()
	}
	return trace.Nop{}
}

// Shard implements bitonic.Sharder: a shard of a view is a view of a
// shard. Returns nil when the underlying store cannot shard.
func (v view) Shard(rec trace.Recorder) any {
	sh, ok := v.s.(bitonic.Sharder)
	if !ok {
		return nil
	}
	res := sh.Shard(rec)
	if res == nil {
		return nil
	}
	st, ok := res.(table.Store)
	if !ok {
		return nil
	}
	return view{s: st, off: v.off, size: v.size}
}
