package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

func newTestCipher(t *testing.T) *crypto.Cipher {
	t.Helper()
	c, _, err := crypto.NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func storeOf(entries []table.Entry) table.Store {
	sp := memory.NewSpace(nil, nil)
	st := table.PlainAlloc(sp)(len(entries))
	for i, e := range entries {
		st.Set(i, e)
	}
	return st
}

func dump(st table.Store) []table.Entry {
	out := make([]table.Entry, st.Len())
	for i := range out {
		out[i] = st.Get(i)
	}
	return out
}

func TestFillDimensionsPaperExample(t *testing.T) {
	// Figure 2's table TC, sorted by ⟨j, tid⟩:
	// x: a1 a2 (t1), u1 u2 u3 (t2);  y: b1..b4 (t1), v1 v2 (t2);  z: w1 (t2).
	var entries []table.Entry
	add := func(j uint64, tid uint64, d string) {
		entries = append(entries, table.Entry{J: j, TID: tid, D: table.MustData(d)})
	}
	add('x', 1, "a1")
	add('x', 1, "a2")
	add('x', 2, "u1")
	add('x', 2, "u2")
	add('x', 2, "u3")
	add('y', 1, "b1")
	add('y', 1, "b2")
	add('y', 1, "b3")
	add('y', 1, "b4")
	add('y', 2, "v1")
	add('y', 2, "v2")
	add('z', 2, "w1")
	st := storeOf(entries)
	m := fillDimensions(plainConfig(), st)
	// m = 2·3 + 4·2 + 0·1 = 14.
	if m != 14 {
		t.Fatalf("m = %d, want 14", m)
	}
	want := []struct{ a1, a2 uint64 }{
		{2, 3}, {2, 3}, {2, 3}, {2, 3}, {2, 3},
		{4, 2}, {4, 2}, {4, 2}, {4, 2}, {4, 2}, {4, 2},
		{0, 1},
	}
	for i, w := range want {
		e := st.Get(i)
		if e.A1 != w.a1 || e.A2 != w.a2 {
			t.Errorf("entry %d (%s): α=(%d,%d), want (%d,%d)",
				i, table.DataString(e.D), e.A1, e.A2, w.a1, w.a2)
		}
	}
}

func TestFillDimensionsSingleGroupOneSide(t *testing.T) {
	st := storeOf([]table.Entry{
		{J: 5, TID: 1}, {J: 5, TID: 1}, {J: 5, TID: 1},
	})
	if m := fillDimensions(plainConfig(), st); m != 0 {
		t.Fatalf("m = %d, want 0 (no T2 entries)", m)
	}
	for _, e := range dump(st) {
		if e.A1 != 3 || e.A2 != 0 {
			t.Fatalf("α = (%d,%d), want (3,0)", e.A1, e.A2)
		}
	}
}

func TestFillDimensionsEmpty(t *testing.T) {
	if m := fillDimensions(plainConfig(), storeOf(nil)); m != 0 {
		t.Fatalf("m = %d on empty input", m)
	}
}

func TestAugmentTablesSplitsSorted(t *testing.T) {
	rows1 := rowsFrom([][2]uint64{{3, 1}, {1, 1}, {2, 1}})
	rows2 := rowsFrom([][2]uint64{{2, 2}, {2, 3}, {1, 2}, {9, 9}})
	cfg := plainConfig()
	_, t1, t2, m := AugmentTables(cfg, rows1, rows2)
	if m != 1*1+1*2 {
		t.Fatalf("m = %d, want 3", m)
	}
	if t1.Len() != 3 || t2.Len() != 4 {
		t.Fatalf("split sizes %d/%d", t1.Len(), t2.Len())
	}
	// Each side must be sorted by (j, d) and carry its own TID.
	for i := 0; i < t1.Len(); i++ {
		e := t1.Get(i)
		if e.TID != 1 {
			t.Fatalf("t1[%d].TID = %d", i, e.TID)
		}
		if i > 0 && t1.Get(i-1).J > e.J {
			t.Fatal("t1 not sorted by j")
		}
	}
	for i := 0; i < t2.Len(); i++ {
		if t2.Get(i).TID != 2 {
			t.Fatalf("t2[%d].TID = %d", i, t2.Get(i).TID)
		}
	}
	// Group 2 has α1=1 (one entry in T1), α2=2.
	for i := 0; i < t1.Len(); i++ {
		if e := t1.Get(i); e.J == 2 && (e.A1 != 1 || e.A2 != 2) {
			t.Fatalf("group 2 dims (%d,%d)", e.A1, e.A2)
		}
	}
}

func TestExtObliviousDistributeBasic(t *testing.T) {
	// The Figure 3 example: five elements to indices 4,1,3,8,6 of an
	// 8-slot array (1-based).
	dests := []uint64{4, 1, 3, 8, 6}
	entries := make([]table.Entry, len(dests))
	for i, f := range dests {
		entries[i] = table.Entry{J: uint64(i + 1), F: f}
	}
	st := storeOf(entries)
	out := ExtObliviousDistribute(plainConfig(), st, 8)
	if out.Len() != 8 {
		t.Fatalf("out len = %d", out.Len())
	}
	for i, f := range dests {
		got := out.Get(int(f - 1))
		if got.Null != 0 || got.J != uint64(i+1) {
			t.Fatalf("element %d not at slot %d: %+v", i+1, f, got)
		}
	}
	nulls := 0
	for i := 0; i < 8; i++ {
		if out.Get(i).Null == 1 {
			nulls++
		}
	}
	if nulls != 3 {
		t.Fatalf("nulls = %d, want 3", nulls)
	}
}

func TestExtObliviousDistributeWithNullsAndShrink(t *testing.T) {
	// n=5 input with two nulls, m=3 output.
	entries := []table.Entry{
		{J: 1, F: 2},
		{J: 2, Null: 1},
		{J: 3, F: 1},
		{J: 4, Null: 1},
		{J: 5, F: 3},
	}
	out := ExtObliviousDistribute(plainConfig(), storeOf(entries), 3)
	if out.Len() != 3 {
		t.Fatalf("out len = %d", out.Len())
	}
	wantJ := []uint64{3, 1, 5}
	for i, j := range wantJ {
		if e := out.Get(i); e.J != j || e.Null != 0 {
			t.Fatalf("slot %d: %+v, want J=%d", i, e, j)
		}
	}
}

func TestDistributeProperty(t *testing.T) {
	cfgDet := plainConfig()
	sp := memory.NewSpace(nil, nil)
	cfgPRP := &Config{Alloc: table.PlainAlloc(sp), Probabilistic: true, Seed: 99}
	f := func(present []bool, seed int64) bool {
		if len(present) == 0 || len(present) > 40 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := len(present)
		// Random injective destinations for present entries into [1, m].
		var nReal int
		for _, p := range present {
			if p {
				nReal++
			}
		}
		m := nReal + rng.Intn(10)
		perm := rng.Perm(m)
		entries := make([]table.Entry, n)
		k := 0
		for i, p := range present {
			if p {
				entries[i] = table.Entry{J: uint64(i + 1), F: uint64(perm[k] + 1)}
				k++
			} else {
				entries[i] = table.Entry{J: uint64(i + 1), Null: 1}
			}
		}
		for _, cfg := range []*Config{cfgDet, cfgPRP} {
			out := ExtObliviousDistribute(cfg, storeOf(entries), m)
			if out.Len() != m {
				return false
			}
			for _, e := range entries {
				if e.Null == 1 {
					continue
				}
				got := out.Get(int(e.F - 1))
				if got.J != e.J || got.Null != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDistributeTraceOblivious(t *testing.T) {
	// Same n and m, different destinations → identical traces
	// (deterministic variant).
	run := func(dests []uint64, m int) string {
		h := trace.NewHasher()
		sp := memory.NewSpace(h, nil)
		cfg := &Config{Alloc: table.PlainAlloc(sp)}
		entries := make([]table.Entry, len(dests))
		for i, f := range dests {
			entries[i] = table.Entry{J: uint64(i), F: f}
		}
		st := table.PlainAlloc(sp)(len(entries))
		for i, e := range entries {
			st.Set(i, e)
		}
		ExtObliviousDistribute(cfg, st, m)
		return h.Hex()
	}
	if run([]uint64{1, 2, 3}, 7) != run([]uint64{5, 6, 7}, 7) {
		t.Fatal("distribute trace depends on destinations")
	}
}

func TestObliviousExpandBasic(t *testing.T) {
	// Figure 4: counts 2,3,0,2,1 over five elements, m=8.
	counts := []uint64{2, 3, 0, 2, 1}
	entries := make([]table.Entry, len(counts))
	for i, c := range counts {
		entries[i] = table.Entry{J: uint64(i + 1), A2: c, D: table.MustData(fmt.Sprintf("x%d", i+1))}
	}
	st := storeOf(entries)
	out := ObliviousExpand(plainConfig(), st, GAlpha2, 8)
	wantJ := []uint64{1, 1, 2, 2, 2, 4, 4, 5}
	if out.Len() != len(wantJ) {
		t.Fatalf("out len = %d", out.Len())
	}
	for i, j := range wantJ {
		if e := out.Get(i); e.J != j {
			t.Fatalf("slot %d: J=%d, want %d", i, e.J, j)
		}
	}
}

func TestObliviousExpandAllZero(t *testing.T) {
	entries := []table.Entry{{J: 1, A1: 0}, {J: 2, A1: 0}}
	out := ObliviousExpand(plainConfig(), storeOf(entries), GAlpha1, 0)
	if out.Len() != 0 {
		t.Fatalf("out len = %d, want 0", out.Len())
	}
}

func TestObliviousExpandSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	entries := []table.Entry{{J: 1, A2: 2}}
	ObliviousExpand(plainConfig(), storeOf(entries), GAlpha2, 5)
}

func TestObliviousExpandProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		if len(counts) > 30 {
			counts = counts[:30]
		}
		entries := make([]table.Entry, len(counts))
		m := 0
		for i, c := range counts {
			g := uint64(c % 5)
			entries[i] = table.Entry{J: uint64(i + 1), A1: g}
			m += int(g)
		}
		out := ObliviousExpand(plainConfig(), storeOf(entries), GAlpha1, m)
		if out.Len() != m {
			return false
		}
		k := 0
		for i, c := range counts {
			for r := 0; r < int(c%5); r++ {
				if out.Get(k).J != uint64(i+1) {
					return false
				}
				k++
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestAlignTablePaperExample(t *testing.T) {
	// Group x with α1=2, α2=3: expanded S2 = u1,u1,u2,u2,u3,u3 must
	// align to u1,u2,u3,u1,u2,u3 (Figure 5).
	mk := func(d string) table.Entry {
		return table.Entry{J: 'x', A1: 2, A2: 3, D: table.MustData(d)}
	}
	s2 := storeOf([]table.Entry{
		mk("u1"), mk("u1"), mk("u2"), mk("u2"), mk("u3"), mk("u3"),
	})
	AlignTable(plainConfig(), s2)
	want := []string{"u1", "u2", "u3", "u1", "u2", "u3"}
	for i, w := range want {
		if got := table.DataString(s2.Get(i).D); got != w {
			t.Fatalf("slot %d = %s, want %s", i, got, w)
		}
	}
}

func TestAlignTableMultipleGroups(t *testing.T) {
	mk := func(j uint64, a1, a2 uint64, d string) table.Entry {
		return table.Entry{J: j, A1: a1, A2: a2, D: table.MustData(d)}
	}
	// Group 1: α1=1, α2=2 → no change (v1,v2). Group 2: α1=2, α2=1 →
	// w1,w1 stays.
	s2 := storeOf([]table.Entry{
		mk(1, 1, 2, "v1"), mk(1, 1, 2, "v2"),
		mk(2, 2, 1, "w1"), mk(2, 2, 1, "w1"),
	})
	AlignTable(plainConfig(), s2)
	want := []string{"v1", "v2", "w1", "w1"}
	for i, w := range want {
		if got := table.DataString(s2.Get(i).D); got != w {
			t.Fatalf("slot %d = %s, want %s", i, got, w)
		}
	}
}

func TestViewWindowing(t *testing.T) {
	st := storeOf([]table.Entry{{J: 1}, {J: 2}, {J: 3}, {J: 4}})
	v := view{s: st, off: 1, size: 2}
	if v.Len() != 2 || v.Get(0).J != 2 || v.Get(1).J != 3 {
		t.Fatal("view windowing broken")
	}
	v.Set(0, table.Entry{J: 99})
	if st.Get(1).J != 99 {
		t.Fatal("view write did not reach backing store")
	}
}
