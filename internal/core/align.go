package core

import (
	"time"

	"oblivjoin/internal/obliv"
	"oblivjoin/internal/table"
)

// AlignTable implements Algorithm 5: it reorders the expanded table S2
// in place so that row i of S2 matches row i of S1.
//
// After expansion, each group of S2 is a block of α1·α2 entries in which
// every T2 entry appears α1 times contiguously. S1's group block lists
// every T1 entry α2 times contiguously, so position r within an S1 block
// holds T1-entry ⌊r/α2⌋ and must pair with T2-entry (r mod α2). The
// c-th copy of T2-entry l (at block offset q = l·α1 + c) therefore moves
// to offset
//
//	ii = (q mod α1)·α2 + ⌊q/α1⌋.
//
// Note: Algorithm 5 in the paper prints this formula with α1 and α2
// interchanged (ii = ⌊q/α2⌋ + (q mod α2)·α1), which contradicts the
// paper's own worked example in Figures 1 and 5 (it would map the second
// copy of (x,u1) to index 2 rather than 3). The form implemented here is
// the one consistent with the figures and with the expansion layout;
// DESIGN.md records the discrepancy.
//
// The block offset q is maintained exactly like the counter in
// Fill-Dimensions: reset on a join-value change, branch-free. The final
// bitonic sort by ⟨j, ii⟩ realizes the permutation obliviously.
func AlignTable(cfg *Config, s2 table.Store) {
	st := cfg.stats()
	t0 := time.Now()
	var jprev, q uint64
	started := uint64(0)
	cfg.ScanStore(s2, false, func(_ int, e *table.Entry) {
		same := obliv.And(started, obliv.Eq(e.J, jprev))
		q = obliv.Select(same, q+1, 0)
		// Every entry of S2 originates from T2, so e.A1 ≥ 1; the divisor
		// is never zero. (Division operand timing is uniform in the
		// paper's machine model, §3.1.)
		e.II = (q%e.A1)*e.A2 + q/e.A1
		jprev = e.J
		started = 1
	})
	st.TAlign += time.Since(t0)

	t0 = time.Now()
	cfg.SortStore(s2, table.LessJII, &st.AlignSort)
	st.TAlign += time.Since(t0)
}
