// Package workload generates the input families used in the paper's
// evaluation (§6): n 1×1 groups, a single 1×n group, power-law group
// sizes, primary–foreign-key tables, and equal-output-size classes for
// the access-log experiments. All generators are deterministic given
// their seed, so experiments are reproducible run to run.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"oblivjoin/internal/table"
)

func mkRow(tid int, j uint64, i int) table.Row {
	var d table.Data
	// Stamp a compact unique payload: table id, join value, ordinal.
	s := fmt.Sprintf("%d|%x|%x", tid, j, i)
	copy(d[:], s)
	return table.Row{J: j, D: d}
}

// OneToOne produces n/2 groups of size 1×1: every key appears exactly
// once in each table, so m = n/2 (the paper's "n 1×1 groups" class and
// the m ≈ n1 = n2 regime of Figure 8).
func OneToOne(n int) (t1, t2 []table.Row) {
	k := n / 2
	t1 = make([]table.Row, k)
	t2 = make([]table.Row, n-k) // odd n: one extra unmatched row in t2
	for i := 0; i < k; i++ {
		t1[i] = mkRow(1, uint64(i), 0)
	}
	for i := 0; i < n-k; i++ {
		t2[i] = mkRow(2, uint64(i), 1)
	}
	return t1, t2
}

// SingleGroup produces one group of dimensions n1×n2: every row shares
// the same join value, so m = n1·n2 (the paper's "single 1×n group"
// class generalized).
func SingleGroup(n1, n2 int) (t1, t2 []table.Row) {
	t1 = make([]table.Row, n1)
	t2 = make([]table.Row, n2)
	for i := range t1 {
		t1[i] = mkRow(1, 0, i)
	}
	for i := range t2 {
		t2[i] = mkRow(2, 0, i)
	}
	return t1, t2
}

// PowerLaw draws group sizes from a discrete power-law distribution with
// exponent alpha (≈2 gives the classic heavy tail) until the combined
// input reaches n rows, splitting each group randomly between the two
// tables.
func PowerLaw(n int, alpha float64, seed int64) (t1, t2 []table.Row) {
	rng := rand.New(rand.NewSource(seed))
	j := uint64(0)
	remaining := n
	for remaining > 0 {
		// Inverse-transform sample: size = ⌊u^(-1/(alpha-1))⌋ ≥ 1.
		u := rng.Float64()
		if u == 0 {
			u = 1e-12
		}
		size := int(math.Pow(u, -1/(alpha-1)))
		if size < 1 {
			size = 1
		}
		if size > remaining {
			size = remaining
		}
		k1 := rng.Intn(size + 1)
		for i := 0; i < k1; i++ {
			t1 = append(t1, mkRow(1, j, i))
		}
		for i := 0; i < size-k1; i++ {
			t2 = append(t2, mkRow(2, j, i))
		}
		remaining -= size
		j++
	}
	return t1, t2
}

// PKFK produces a primary-key table of nPK distinct keys and a foreign-
// key table of nFK rows referencing them uniformly at random. This is
// the only input class the Opaque baseline accepts, so it drives the
// Table 1 comparison against that system.
func PKFK(nPK, nFK int, seed int64) (pk, fk []table.Row) {
	rng := rand.New(rand.NewSource(seed))
	pk = make([]table.Row, nPK)
	for i := range pk {
		pk[i] = mkRow(1, uint64(i), 0)
	}
	fk = make([]table.Row, nFK)
	for i := range fk {
		fk[i] = mkRow(2, uint64(rng.Intn(nPK)), i)
	}
	return pk, fk
}

// Uniform draws both tables' keys uniformly from a key space of the
// given size; expected output is n1·n2/keys.
func Uniform(n1, n2, keys int, seed int64) (t1, t2 []table.Row) {
	rng := rand.New(rand.NewSource(seed))
	t1 = make([]table.Row, n1)
	for i := range t1 {
		t1[i] = mkRow(1, uint64(rng.Intn(keys)), i)
	}
	t2 = make([]table.Row, n2)
	for i := range t2 {
		t2[i] = mkRow(2, uint64(rng.Intn(keys)), i)
	}
	return t1, t2
}

// MatchingPairs is the Figure 8 workload: m ≈ n1 = n2 = n/2, realized
// as n/2 one-to-one groups.
func MatchingPairs(n int) (t1, t2 []table.Row) { return OneToOne(n) }

// Class is a family of inputs with identical public parameters
// (n1, n2, m) but different secret structure — the unit of the §6.1
// obliviousness experiments.
type Class struct {
	Name     string
	N1, N2   int
	M        int
	Variants []func() (t1, t2 []table.Row)
}

// EqualOutputClasses returns hand-constructed classes at small sizes
// plus generated classes at the given larger sizes (each n producing a
// class of power-law variants filtered to a common output size).
func EqualOutputClasses() []Class {
	mk := func(pairs [][2]uint64, tid int) []table.Row {
		rows := make([]table.Row, len(pairs))
		for i, p := range pairs {
			rows[i] = mkRow(tid, p[0], int(p[1]))
		}
		return rows
	}
	return []Class{
		{
			Name: "n1=4 n2=4 m=8",
			N1:   4, N2: 4, M: 8,
			Variants: []func() ([]table.Row, []table.Row){
				func() ([]table.Row, []table.Row) { // two 2×2 groups
					return mk([][2]uint64{{1, 0}, {1, 1}, {2, 0}, {2, 1}}, 1),
						mk([][2]uint64{{1, 2}, {1, 3}, {2, 2}, {2, 3}}, 2)
				},
				func() ([]table.Row, []table.Row) { // one 4×2 group
					return mk([][2]uint64{{9, 0}, {9, 1}, {9, 2}, {9, 3}}, 1),
						mk([][2]uint64{{9, 4}, {9, 5}, {7, 0}, {8, 0}}, 2)
				},
				func() ([]table.Row, []table.Row) { // one 2×4 group
					return mk([][2]uint64{{3, 0}, {3, 1}, {4, 0}, {5, 0}}, 1),
						mk([][2]uint64{{3, 2}, {3, 3}, {3, 4}, {3, 5}}, 2)
				},
				func() ([]table.Row, []table.Row) { // 3×2 + 1×2 groups
					return mk([][2]uint64{{1, 0}, {1, 1}, {1, 2}, {2, 0}}, 1),
						mk([][2]uint64{{1, 3}, {1, 4}, {2, 1}, {2, 2}}, 2)
				},
			},
		},
		{
			Name: "n1=3 n2=3 m=0",
			N1:   3, N2: 3, M: 0,
			Variants: []func() ([]table.Row, []table.Row){
				func() ([]table.Row, []table.Row) {
					return mk([][2]uint64{{1, 0}, {2, 0}, {3, 0}}, 1),
						mk([][2]uint64{{4, 0}, {5, 0}, {6, 0}}, 2)
				},
				func() ([]table.Row, []table.Row) { // same keys repeated, still disjoint
					return mk([][2]uint64{{7, 0}, {7, 1}, {7, 2}}, 1),
						mk([][2]uint64{{8, 0}, {8, 1}, {8, 2}}, 2)
				},
			},
		},
		{
			Name: "n1=6 n2=2 m=6",
			N1:   6, N2: 2, M: 6,
			Variants: []func() ([]table.Row, []table.Row){
				func() ([]table.Row, []table.Row) { // 3×2 group + strays
					return mk([][2]uint64{{1, 0}, {1, 1}, {1, 2}, {2, 0}, {3, 0}, {4, 0}}, 1),
						mk([][2]uint64{{1, 3}, {1, 4}}, 2)
				},
				func() ([]table.Row, []table.Row) { // 6×1 group, one stray FK
					return mk([][2]uint64{{5, 0}, {5, 1}, {5, 2}, {5, 3}, {5, 4}, {5, 5}}, 1),
						mk([][2]uint64{{5, 6}, {9, 0}}, 2)
				},
			},
		},
	}
}

// CheckClass verifies that every variant of a class actually has the
// declared public parameters; returns an error naming the first
// mismatch. Experiments call this before trusting a class.
func CheckClass(c Class, outputSize func(t1, t2 []table.Row) int) error {
	for i, gen := range c.Variants {
		t1, t2 := gen()
		if len(t1) != c.N1 || len(t2) != c.N2 {
			return fmt.Errorf("class %q variant %d: sizes (%d,%d), declared (%d,%d)",
				c.Name, i, len(t1), len(t2), c.N1, c.N2)
		}
		if m := outputSize(t1, t2); m != c.M {
			return fmt.Errorf("class %q variant %d: m=%d, declared %d", c.Name, i, m, c.M)
		}
	}
	return nil
}
