package workload

import (
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
)

func outputSize(t1, t2 []table.Row) int {
	sp := memory.NewSpace(nil, nil)
	return core.OutputSize(&core.Config{Alloc: table.PlainAlloc(sp)}, t1, t2)
}

func TestOneToOne(t *testing.T) {
	t1, t2 := OneToOne(100)
	if len(t1) != 50 || len(t2) != 50 {
		t.Fatalf("sizes %d/%d", len(t1), len(t2))
	}
	if m := outputSize(t1, t2); m != 50 {
		t.Fatalf("m = %d, want 50", m)
	}
}

func TestOneToOneOdd(t *testing.T) {
	t1, t2 := OneToOne(7)
	if len(t1)+len(t2) != 7 {
		t.Fatalf("total = %d", len(t1)+len(t2))
	}
	if m := outputSize(t1, t2); m != 3 {
		t.Fatalf("m = %d, want 3", m)
	}
}

func TestSingleGroup(t *testing.T) {
	t1, t2 := SingleGroup(3, 5)
	if m := outputSize(t1, t2); m != 15 {
		t.Fatalf("m = %d, want 15", m)
	}
}

func TestPowerLawDeterministicAndSized(t *testing.T) {
	a1, a2 := PowerLaw(200, 2.0, 42)
	b1, b2 := PowerLaw(200, 2.0, 42)
	if len(a1) != len(b1) || len(a2) != len(b2) {
		t.Fatal("not deterministic")
	}
	if len(a1)+len(a2) != 200 {
		t.Fatalf("total = %d, want 200", len(a1)+len(a2))
	}
	c1, _ := PowerLaw(200, 2.0, 43)
	if len(c1) == len(a1) {
		// Different seeds will usually differ; equal lengths alone are
		// possible, so compare contents too before declaring sameness.
		same := true
		for i := range c1 {
			if c1[i] != a1[i] {
				same = false
				break
			}
		}
		if same && len(a1) > 0 {
			t.Fatal("different seeds produced identical tables")
		}
	}
}

func TestPowerLawHasSkew(t *testing.T) {
	t1, t2 := PowerLaw(2000, 2.0, 7)
	counts := map[uint64]int{}
	for _, r := range append(append([]table.Row{}, t1...), t2...) {
		counts[r.J]++
	}
	max, n1s := 0, 0
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c == 1 {
			n1s++
		}
	}
	if max < 10 {
		t.Fatalf("no heavy group (max=%d); not a power law", max)
	}
	if n1s < 10 {
		t.Fatalf("too few singleton groups (%d)", n1s)
	}
}

func TestPKFK(t *testing.T) {
	pk, fk := PKFK(10, 100, 1)
	seen := map[uint64]bool{}
	for _, r := range pk {
		if seen[r.J] {
			t.Fatal("duplicate primary key")
		}
		seen[r.J] = true
	}
	for _, r := range fk {
		if !seen[r.J] {
			t.Fatalf("foreign key %d has no primary", r.J)
		}
	}
	if m := outputSize(pk, fk); m != 100 {
		t.Fatalf("m = %d, want 100 (every FK matches exactly one PK)", m)
	}
}

func TestUniformExpectedOutput(t *testing.T) {
	t1, t2 := Uniform(300, 300, 30, 5)
	m := outputSize(t1, t2)
	// E[m] = 300·300/30 = 3000; allow wide slack.
	if m < 1500 || m > 6000 {
		t.Fatalf("m = %d, far from expectation 3000", m)
	}
}

func TestMatchingPairsRegime(t *testing.T) {
	t1, t2 := MatchingPairs(1000)
	m := outputSize(t1, t2)
	if m != len(t1) || len(t1) != len(t2) {
		t.Fatalf("regime broken: n1=%d n2=%d m=%d", len(t1), len(t2), m)
	}
}

func TestEqualOutputClassesAreConsistent(t *testing.T) {
	for _, c := range EqualOutputClasses() {
		if len(c.Variants) < 2 {
			t.Fatalf("class %q has %d variants; need ≥2 to test anything", c.Name, len(c.Variants))
		}
		if err := CheckClass(c, outputSize); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRowPayloadsUnique(t *testing.T) {
	t1, t2 := PowerLaw(500, 2.0, 11)
	seen := map[table.Data]bool{}
	for _, r := range append(append([]table.Row{}, t1...), t2...) {
		if seen[r.D] {
			t.Fatalf("duplicate payload %q", table.DataString(r.D))
		}
		seen[r.D] = true
	}
}
