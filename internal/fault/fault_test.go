package fault

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestPassthroughWhenDisarmed(t *testing.T) {
	in := NewInjector(nil, 1)
	dir := t.TempDir()
	f, err := in.CreateTemp(dir, "p-*")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := in.ReadFile(f.Name())
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if n := in.Injected(); n != 0 {
		t.Fatalf("Injected = %d with no rules armed", n)
	}
}

func TestScheduleAfterCount(t *testing.T) {
	in := NewInjector(nil, 1)
	// Fire EIO on the 2nd and 3rd matching syncs only.
	in.Arm(Rule{Op: OpSync, After: 1, Count: 2, Err: EIO})
	dir := t.TempDir()
	f, err := in.CreateTemp(dir, "s-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make([]bool, 5)
	for i := range got {
		got[i] = f.Sync() != nil
	}
	want := []bool{false, true, true, false, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sync %d failed=%v, want %v (schedule After=1 Count=2)", i, got[i], want[i])
		}
	}
	if st := in.Stats(); st.Errors[OpSync] != 2 {
		t.Fatalf("Errors[sync] = %d, want 2", st.Errors[OpSync])
	}
}

func TestShortWrite(t *testing.T) {
	in := NewInjector(nil, 1)
	in.Arm(Rule{Op: OpWrite, Err: ENOSPC, ShortBy: 3})
	dir := t.TempDir()
	f, err := in.CreateTemp(dir, "w-*")
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("0123456789"))
	f.Close()
	if n != 7 || !errors.Is(werr, ENOSPC) {
		t.Fatalf("short write = (%d, %v), want (7, ENOSPC)", n, werr)
	}
	// The truncated prefix really landed — the dangerous case a
	// consumer must detect and roll back.
	b, err := os.ReadFile(f.Name())
	if err != nil || string(b) != "0123456" {
		t.Fatalf("on-disk prefix = %q, %v", b, err)
	}
}

func TestBitFlipDeterministic(t *testing.T) {
	read := func(seed uint64) []byte {
		dir := t.TempDir()
		path := filepath.Join(dir, "blob")
		if err := os.WriteFile(path, []byte("abcdefgh"), 0o600); err != nil {
			t.Fatal(err)
		}
		in := NewInjector(nil, seed)
		in.Arm(Rule{Op: OpRead, FlipBit: true})
		b, err := in.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b, c := read(42), read(42), read(43)
	if string(a) != string(b) {
		t.Fatalf("same seed produced different tampers: %q vs %q", a, b)
	}
	if string(a) == "abcdefgh" {
		t.Fatal("tamper rule flipped no bit")
	}
	if string(a) == string(c) {
		t.Fatalf("different seeds produced identical tampers: %q", a)
	}
}

func TestPathFilter(t *testing.T) {
	in := NewInjector(nil, 1)
	in.Arm(Rule{Op: OpRemove, Path: "wal", Err: EIO})
	if err := in.Remove(filepath.Join(t.TempDir(), "spill.seal")); err == nil || errors.Is(err, EIO) {
		// Removing a nonexistent spill file fails with ENOENT, not EIO:
		// the rule must not match a non-"wal" path.
		if errors.Is(err, EIO) {
			t.Fatal("path filter did not exclude spill path")
		}
	}
	if err := in.Remove(filepath.Join(t.TempDir(), "wal.log")); !errors.Is(err, EIO) {
		t.Fatalf("Remove(wal.log) = %v, want EIO", err)
	}
}

func TestDisarmAndConcurrency(t *testing.T) {
	in := NewInjector(nil, 7)
	in.Arm(Rule{Op: OpTruncate, Err: EIO})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = in.Truncate("/nonexistent/x", 0)
				_ = in.Injected()
			}
		}()
	}
	wg.Wait()
	if st := in.Stats(); st.Errors[OpTruncate] != 800 {
		t.Fatalf("Errors[truncate] = %d, want 800", st.Errors[OpTruncate])
	}
	in.Disarm()
	if err := in.Truncate("/nonexistent/x", 0); errors.Is(err, EIO) {
		t.Fatal("rule still firing after Disarm")
	}
}

func TestIsInjectable(t *testing.T) {
	for _, err := range []error{EIO, ENOSPC} {
		if !IsInjectable(err) {
			t.Fatalf("IsInjectable(%v) = false", err)
		}
	}
	if IsInjectable(errors.New("other")) {
		t.Fatal("IsInjectable matched a foreign error")
	}
}
