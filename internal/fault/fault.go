// Package fault provides the storage fault-injection seam: a small
// filesystem interface (FS) that the WAL and spill layers perform all
// their file IO through, a passthrough OS implementation, and a
// deterministic, seeded Injector that wraps any FS and injects
// scheduled faults — EIO, ENOSPC, short writes, fsync failure, added
// latency, and ciphertext bit flips on reads.
//
// The seam exists so that chaos tests and the `oblivbench -exp chaos`
// harness can drive the full service under storage failure without
// touching the real disk layer, while production runs pay only an
// interface-call indirection (gated by BENCH_fault.json).
package fault

import (
	"errors"
	"io"
	"os"
	"strings"
	"sync"
	"syscall"
	"time"
)

// File is the subset of *os.File the storage layers use. Reads and
// writes are positional (the spill store) or appending (the WAL).
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem seam. A nil FS everywhere means "use OS".
type FS interface {
	// OpenFile mirrors os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp mirrors os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile mirrors os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// Rename mirrors os.Rename.
	Rename(oldpath, newpath string) error
	// Remove mirrors os.Remove.
	Remove(name string) error
	// Truncate mirrors os.Truncate.
	Truncate(name string, size int64) error
}

// OS is the passthrough FS over the real operating system.
var OS FS = osFS{}

// Or returns fs if non-nil, else OS. Callers thread optional FS fields
// through with fault.Or(opts.FS) instead of nil checks at every site.
func Or(fs FS) FS {
	if fs == nil {
		return OS
	}
	return fs
}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) ReadFile(name string) ([]byte, error)   { return os.ReadFile(name) }
func (osFS) Rename(oldpath, newpath string) error   { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error               { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Op classifies a filesystem operation for rule matching.
type Op string

const (
	OpOpen     Op = "open"  // OpenFile and CreateTemp
	OpRead     Op = "read"  // ReadAt and ReadFile
	OpWrite    Op = "write" // Write and WriteAt
	OpSync     Op = "sync"  // File.Sync
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpTruncate Op = "truncate"
)

// Injection errors. EIO/ENOSPC are the real syscall errnos so injected
// failures are indistinguishable from kernel-reported ones.
var (
	EIO    = syscall.EIO
	ENOSPC = syscall.ENOSPC
)

// Rule schedules one fault. A rule matches a call when the op class
// and path substring match; it fires on the matching calls numbered
// [After, After+Count) (zero Count = every matching call from After
// on). Exactly one of the effect fields applies:
//
//   - Err != nil, ShortBy == 0: the call fails with Err.
//   - Err != nil, ShortBy > 0 (writes): a short write — the first
//     len-ShortBy bytes land, then Err is returned.
//   - FlipBit (reads): one deterministic pseudo-random bit of the
//     returned data is flipped (ciphertext tamper).
//   - Delay > 0: added latency; may combine with any of the above and
//     is also usable alone.
type Rule struct {
	Op      Op            // "" matches every op class
	Path    string        // substring of the file path; "" matches all
	After   int           // skip this many matching calls first
	Count   int           // how many matching calls fire (0 = all)
	Err     error         // error to inject
	ShortBy int           // short-write: bytes withheld from the tail
	FlipBit bool          // read tamper: flip one bit of the result
	Delay   time.Duration // added latency

	hits int // matching calls seen (internal)
}

// Stats counts injected faults per op class since the last Reset.
type Stats struct {
	Errors  map[Op]uint64 // injected hard errors (incl. short writes)
	Tampers uint64        // bit flips applied to reads
	Delays  uint64        // latency injections
}

// Injector is a deterministic fault-injecting FS wrapping an inner FS.
// Rules are armed with Arm and removed with Disarm; the zero schedule
// passes everything through. All methods are safe for concurrent use;
// rule matching is serialized so "fire on the Nth call" is exact.
type Injector struct {
	inner FS

	mu     sync.Mutex
	rules  []*Rule
	rng    uint64 // splitmix64 state for bit-flip positions
	errs   map[Op]uint64
	tamper uint64
	delays uint64
}

// NewInjector returns an Injector over inner (nil = OS) whose
// tamper-bit choices derive deterministically from seed.
func NewInjector(inner FS, seed uint64) *Injector {
	return &Injector{inner: Or(inner), rng: seed, errs: make(map[Op]uint64)}
}

// Arm installs rules (appending to any already armed).
func (in *Injector) Arm(rules ...Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i := range rules {
		r := rules[i]
		in.rules = append(in.rules, &r)
	}
}

// Disarm removes all rules. In-flight calls finish with the schedule
// they matched; new calls pass through.
func (in *Injector) Disarm() {
	in.mu.Lock()
	in.rules = nil
	in.mu.Unlock()
}

// Stats returns a copy of the injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	s := Stats{Errors: make(map[Op]uint64, len(in.errs)), Tampers: in.tamper, Delays: in.delays}
	for k, v := range in.errs {
		s.Errors[k] = v
	}
	return s
}

// Injected reports the total number of injected faults of any kind.
func (in *Injector) Injected() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := in.tamper + in.delays
	for _, v := range in.errs {
		n += v
	}
	return n
}

// splitmix64 — deterministic, allocation-free position source for bit
// flips. Called under in.mu.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// decision is what the matcher hands the op implementations.
type decision struct {
	err     error
	shortBy int
	flip    bool
	flipPos uint64 // raw randomness for the bit position
	delay   time.Duration
}

// match finds the first armed rule that fires for (op, path) and
// consumes one hit from it. Counters are bumped here so harnesses can
// assert exactly how many faults landed.
func (in *Injector) match(op Op, path string) (decision, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		hit := r.hits
		r.hits++
		if hit < r.After {
			continue
		}
		if r.Count > 0 && hit >= r.After+r.Count {
			continue
		}
		d := decision{err: r.Err, shortBy: r.ShortBy, flip: r.FlipBit, delay: r.Delay}
		if d.flip {
			d.flipPos = in.next()
			in.tamper++
		}
		if d.err != nil {
			in.errs[op]++
		}
		if d.delay > 0 {
			in.delays++
		}
		return d, true
	}
	return decision{}, false
}

func (in *Injector) apply(op Op, path string) error {
	d, ok := in.match(op, path)
	if !ok {
		return nil
	}
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	return d.err
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err := in.apply(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: in}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if err := in.apply(OpOpen, dir+"/"+pattern); err != nil {
		return nil, err
	}
	f, err := in.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{f: f, in: in}, nil
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	d, ok := in.match(OpRead, name)
	if ok && d.delay > 0 {
		time.Sleep(d.delay)
	}
	if ok && d.err != nil {
		return nil, d.err
	}
	b, err := in.inner.ReadFile(name)
	if err != nil {
		return nil, err
	}
	if ok && d.flip && len(b) > 0 {
		pos := d.flipPos % uint64(len(b)*8)
		b[pos/8] ^= 1 << (pos % 8)
	}
	return b, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if err := in.apply(OpRename, oldpath); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if err := in.apply(OpRemove, name); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	if err := in.apply(OpTruncate, name); err != nil {
		return err
	}
	return in.inner.Truncate(name, size)
}

// faultFile applies the injector's schedule to per-file operations.
type faultFile struct {
	f  File
	in *Injector
}

func (ff *faultFile) Name() string { return ff.f.Name() }

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	d, ok := ff.in.match(OpRead, ff.f.Name())
	if ok && d.delay > 0 {
		time.Sleep(d.delay)
	}
	if ok && d.err != nil {
		return 0, d.err
	}
	n, err := ff.f.ReadAt(p, off)
	if ok && d.flip && n > 0 {
		pos := d.flipPos % uint64(n*8)
		p[pos/8] ^= 1 << (pos % 8)
	}
	return n, err
}

func (ff *faultFile) writeDecision(n int) (int, error, bool) {
	d, ok := ff.in.match(OpWrite, ff.f.Name())
	if !ok {
		return 0, nil, false
	}
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	if d.err == nil {
		return 0, nil, false
	}
	if d.shortBy > 0 {
		k := n - d.shortBy
		if k < 0 {
			k = 0
		}
		return k, d.err, true
	}
	return 0, d.err, true
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if k, err, fail := ff.writeDecision(len(p)); fail {
		n := 0
		if k > 0 {
			n, _ = ff.f.Write(p[:k])
		}
		return n, err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if k, err, fail := ff.writeDecision(len(p)); fail {
		n := 0
		if k > 0 {
			n, _ = ff.f.WriteAt(p[:k], off)
		}
		return n, err
	}
	return ff.f.WriteAt(p, off)
}

func (ff *faultFile) Sync() error {
	if err := ff.in.apply(OpSync, ff.f.Name()); err != nil {
		return err
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// IsInjectable reports whether err is one of the injectable error
// classes (EIO, ENOSPC, or a short write) — used by harness assertions
// that every surfaced error is typed, never a raw panic string.
func IsInjectable(err error) bool {
	return errors.Is(err, EIO) || errors.Is(err, ENOSPC) || errors.Is(err, io.ErrShortWrite)
}
