package compaction

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

func storeOf(entries []table.Entry) table.Store {
	sp := memory.NewSpace(nil, nil)
	st := table.PlainAlloc(sp)(len(entries))
	for i, e := range entries {
		st.Set(i, e)
	}
	return st
}

func fromMask(mask []bool) ([]table.Entry, []uint64) {
	entries := make([]table.Entry, len(mask))
	var want []uint64
	for i, real := range mask {
		if real {
			entries[i] = table.Entry{J: uint64(i + 1)}
			want = append(want, uint64(i+1))
		} else {
			entries[i] = table.Entry{Null: 1}
		}
	}
	return entries, want
}

func checkCompacted(t *testing.T, st table.Store, want []uint64) {
	t.Helper()
	for i, j := range want {
		e := st.Get(i)
		if e.Null != 0 || e.J != j {
			t.Fatalf("slot %d: %+v, want J=%d", i, e, j)
		}
	}
	for i := len(want); i < st.Len(); i++ {
		if st.Get(i).Null != 1 {
			t.Fatalf("tail slot %d not null: %+v", i, st.Get(i))
		}
	}
}

func TestCompactFixed(t *testing.T) {
	cases := [][]bool{
		{},
		{true},
		{false},
		{false, true},
		{true, false},
		{false, false, true, false, true},
		{true, true, true},
		{false, false, false},
		{true, false, true, false, true, false, true},
		{false, true, true, false, false, true, true, true},
	}
	for _, mask := range cases {
		entries, want := fromMask(mask)
		st := storeOf(entries)
		Compact(st, nil)
		checkCompacted(t, st, want)
	}
}

func TestCompactProperty(t *testing.T) {
	f := func(mask []bool) bool {
		if len(mask) > 200 {
			mask = mask[:200]
		}
		entries, want := fromMask(mask)
		st := storeOf(entries)
		Compact(st, nil)
		for i, j := range want {
			if e := st.Get(i); e.Null != 0 || e.J != j {
				return false
			}
		}
		for i := len(want); i < st.Len(); i++ {
			if st.Get(i).Null != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCompactAllLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for n := 0; n <= 65; n++ {
		mask := make([]bool, n)
		for i := range mask {
			mask[i] = rng.Intn(2) == 0
		}
		entries, want := fromMask(mask)
		st := storeOf(entries)
		Compact(st, nil)
		checkCompacted(t, st, want)
	}
}

func TestCompactPreservesPayload(t *testing.T) {
	entries := []table.Entry{
		{Null: 1},
		{J: 7, D: table.MustData("keep-me"), A1: 3, A2: 4, II: 9},
		{Null: 1},
	}
	st := storeOf(entries)
	Compact(st, nil)
	e := st.Get(0)
	if table.DataString(e.D) != "keep-me" || e.A1 != 3 || e.A2 != 4 || e.II != 9 {
		t.Fatalf("payload clobbered: %+v", e)
	}
}

func TestCompactTraceOblivious(t *testing.T) {
	run := func(mask []bool) string {
		h := trace.NewHasher()
		sp := memory.NewSpace(h, nil)
		st := table.PlainAlloc(sp)(len(mask))
		entries, _ := fromMask(mask)
		for i, e := range entries {
			st.Set(i, e)
		}
		Compact(st, nil)
		return h.Hex()
	}
	a := run([]bool{true, false, true, false, true, false, false, true})
	b := run([]bool{false, false, false, false, true, true, true, true})
	c := run([]bool{true, true, true, true, true, true, true, true})
	if a != b || b != c {
		t.Fatal("compaction trace depends on null pattern")
	}
}

func TestCompactStats(t *testing.T) {
	var st Stats
	entries, _ := fromMask(make([]bool, 16))
	Compact(storeOf(entries), &st)
	// Hops: sum over j=8,4,2,1 of (16-j) = 8+12+14+15 = 49.
	if st.RouteOps != 49 {
		t.Fatalf("RouteOps = %d, want 49", st.RouteOps)
	}
}

func BenchmarkCompact4k(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	mask := make([]bool, 4096)
	for i := range mask {
		mask[i] = rng.Intn(2) == 0
	}
	entries, _ := fromMask(mask)
	sp := memory.NewSpace(nil, nil)
	st := table.PlainAlloc(sp)(len(entries))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k, e := range entries {
			st.Set(k, e)
		}
		b.StartTimer()
		Compact(st, nil)
	}
}
