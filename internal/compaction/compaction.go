// Package compaction implements Goodrich's data-oblivious
// order-preserving tight compaction (§3.5 of the paper), the O(n log n)
// alternative to sort-based filtering: all non-null entries of an array
// are moved to the front, preserving their relative order, with a memory
// trace that depends only on the array length.
//
// The construction is the same power-of-two-hop routing network used by
// Oblivious-Distribute (internal/core), run in the compacting direction:
// each non-null entry's destination is its rank among non-null entries,
// computed in one branch-free linear pass, and entries then hop towards
// the front in ⌈log₂ n⌉ passes. The paper's distribute is exactly this
// network "used in the reverse direction (instead of compacting elements
// together it spreads them out)".
package compaction

import (
	"oblivjoin/internal/bitonic"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/table"
)

// Stats counts the compare–hop steps performed.
type Stats struct {
	RouteOps uint64
}

// Ops tells the generic compactor how to inspect and move elements of
// type T: whether an element is a ∅ slot, where its routing-distance
// scratch word lives, and how to conditionally swap two elements in
// constant time. All functions must be branch-free on element contents.
type Ops[T any] struct {
	// Null reports 1 when the element is a ∅ slot.
	Null func(*T) uint64
	// Dist reads the element's routing-distance scratch word.
	Dist func(*T) uint64
	// SetDist writes the scratch word.
	SetDist func(*T, uint64)
	// Swap conditionally swaps two elements.
	Swap bitonic.CondSwapFunc[T]
}

// Compact obliviously moves all non-null entries of a to the front,
// preserving order; the tail is left holding ∅ entries. The entries' F
// attribute is clobbered (it carries the remaining routing distance).
//
// The number of non-null entries is data-dependent and deliberately not
// returned: revealing it is the caller's decision. Callers that know the
// count publicly (as the join does with m) simply truncate.
func Compact(a table.Store, st *Stats) {
	CompactFunc[table.Entry](a, Ops[table.Entry]{
		Null:    func(e *table.Entry) uint64 { return e.Null },
		Dist:    func(e *table.Entry) uint64 { return e.F },
		SetDist: func(e *table.Entry, d uint64) { e.F = d },
		Swap:    table.CondSwapEntry,
	}, st)
}

// CompactFunc is the generic order-preserving tight compaction over any
// element type; see Compact for the contract.
func CompactFunc[T any](a bitonic.Array[T], ops Ops[T], st *Stats) {
	n := a.Len()

	// Distance pass: a non-null entry at index i with rank r (0-based
	// among non-nulls) must move up by exactly i−r positions — the
	// number of ∅ entries before it, which is non-decreasing in i.
	var rank uint64
	for i := 0; i < n; i++ {
		e := a.Get(i)
		real := obliv.Not(ops.Null(&e))
		ops.SetDist(&e, obliv.Select(real, uint64(i)-rank, 0))
		rank += real
		a.Set(i, e)
	}

	routeUp(a, ops, n, st)
}

// routeUp moves every entry up by its scratch distance, one binary digit
// at a time from least to most significant: in pass b (hop j = 2^b), an
// entry whose remaining distance has bit b set swaps with the slot j
// above it. Scanning forward, the vacated chain always stays ahead of
// the movers; the contiguity relation d(next) − d(prev) = gap − 1
// between successive non-null entries guarantees the target slot is ∅
// whenever a swap fires. This is the order-preserving tight compaction
// of Goodrich that the paper's Oblivious-Distribute runs "in the reverse
// direction".
func routeUp[T any](a bitonic.Array[T], ops Ops[T], n int, st *Stats) {
	for j := 1; j < n; j <<= 1 {
		for i := 0; i+j < n; i++ {
			y := a.Get(i)
			y2 := a.Get(i + j)
			bit := obliv.Neq(ops.Dist(&y2)&uint64(j), 0)
			c := obliv.And(obliv.Not(ops.Null(&y2)), bit)
			ops.SetDist(&y2, ops.Dist(&y2)-c*uint64(j))
			ops.Swap(c, &y, &y2)
			a.Set(i, y)
			a.Set(i+j, y2)
			if st != nil {
				st.RouteOps++
			}
		}
	}
}
