package table

import (
	"fmt"
	"testing"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/trace"
)

func newBenchCipher() (*crypto.Cipher, []byte, error) { return crypto.NewRandom() }

func entryAt(i int) Entry {
	return Entry{J: uint64(i * 7), TID: uint64(1 + i%2), A1: uint64(i), Null: uint64(i % 3 / 2)}
}

// blockSizes covers the boundary shapes the store must get right:
// one entry, just under/at/over one block, and several blocks with a
// ragged tail.
var blockSizes = []int{1, DefaultSealedBlock - 1, DefaultSealedBlock, DefaultSealedBlock + 1, 3*DefaultSealedBlock + 5}

func TestBlockEncryptedGetSetRoundTrip(t *testing.T) {
	for _, n := range blockSizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			s := memory.NewSpace(nil, nil)
			st := NewBlockEncrypted(s, newCipher(t), n, 0)
			if st.Len() != n || st.Block() != DefaultSealedBlock {
				t.Fatalf("Len=%d Block=%d", st.Len(), st.Block())
			}
			var zero Entry
			for i := 0; i < n; i++ {
				if got := st.Get(i); got != zero {
					t.Fatalf("slot %d not zero-initialized: %+v", i, got)
				}
			}
			for i := 0; i < n; i++ {
				st.Set(i, entryAt(i))
			}
			for i := 0; i < n; i++ {
				if got := st.Get(i); got != entryAt(i) {
					t.Fatalf("Get(%d) = %+v, want %+v", i, got, entryAt(i))
				}
			}
		})
	}
}

func TestBlockEncryptedRangeRoundTrip(t *testing.T) {
	c := newCipher(t)
	for _, n := range blockSizes {
		s := memory.NewSpace(nil, nil)
		st := NewBlockEncrypted(s, c, n, 0)
		// Every (lo, k) window: exercises aligned, head-partial,
		// tail-partial and single-block writes, including through the
		// end of the table (padding preservation).
		for lo := 0; lo < n; lo++ {
			for k := 0; lo+k <= n; k += max(1, n/7) {
				src := make([]Entry, k)
				for j := range src {
					src[j] = entryAt(lo + j)
				}
				st.SetRange(lo, src)
				dst := make([]Entry, k)
				st.GetRange(lo, dst)
				for j := range dst {
					if dst[j] != src[j] {
						t.Fatalf("n=%d lo=%d k=%d: entry %d = %+v, want %+v", n, lo, k, j, dst[j], src[j])
					}
				}
			}
		}
	}
}

// TestBlockEncryptedPartialWritePreservesNeighbours: a write covering
// part of a block must not disturb the block's other entries.
func TestBlockEncryptedPartialWritePreservesNeighbours(t *testing.T) {
	const n = 2*DefaultSealedBlock + 3
	s := memory.NewSpace(nil, nil)
	st := NewBlockEncrypted(s, newCipher(t), n, 0)
	for i := 0; i < n; i++ {
		st.Set(i, entryAt(i))
	}
	// Overwrite an interior window straddling a block boundary.
	lo, k := DefaultSealedBlock-3, 7
	src := make([]Entry, k)
	for j := range src {
		src[j] = Entry{J: 999, TID: uint64(j)}
	}
	st.SetRange(lo, src)
	for i := 0; i < n; i++ {
		want := entryAt(i)
		if i >= lo && i < lo+k {
			want = src[i-lo]
		}
		if got := st.Get(i); got != want {
			t.Fatalf("entry %d = %+v, want %+v", i, got, want)
		}
	}
}

// TestBlockEncryptedTraceMatchesPlain: the same access sequence against
// a plain array, a per-entry sealed store and block-sealed stores of
// several granularities must record bit-identical event logs — the
// invariant that makes sealed runs trace-equal to plain runs.
func TestBlockEncryptedTraceMatchesPlain(t *testing.T) {
	c := newCipher(t)
	script := func(st Store, n int) {
		rs := st.(RangeStore)
		for i := 0; i < n; i++ {
			st.Set(i, entryAt(i))
		}
		buf := make([]Entry, n)
		rs.GetRange(0, buf)
		if n > 2 {
			rs.SetRange(1, buf[:n-2])
			rs.GetRange(n/2, buf[:n-n/2])
		}
		st.Get(n - 1)
	}
	for _, n := range blockSizes {
		var logs []*trace.Log
		for _, mk := range []func(s *memory.Space) Store{
			func(s *memory.Space) Store { return memory.Alloc[Entry](s, n, EncodedSize) },
			func(s *memory.Space) Store { return NewEncrypted(s, c, n) },
			func(s *memory.Space) Store { return NewBlockEncrypted(s, c, n, 0) },
			func(s *memory.Space) Store { return NewBlockEncrypted(s, c, n, 5) },
			func(s *memory.Space) Store { return NewBlockEncrypted(s, c, n, 1) },
		} {
			log := trace.NewLog()
			script(mk(memory.NewSpace(log, nil)), n)
			logs = append(logs, log)
		}
		for i := 1; i < len(logs); i++ {
			if !logs[0].Equal(logs[i]) {
				t.Fatalf("n=%d: store %d diverges from plain at event %d", n, i, logs[0].FirstDivergence(logs[i]))
			}
		}
	}
}

func TestBlockEncryptedPanicsOnTamper(t *testing.T) {
	s := memory.NewSpace(nil, nil)
	st := NewBlockEncrypted(s, newCipher(t), 20, 0)
	st.Set(17, entryAt(17))
	st.st.ct[st.st.unit+10] ^= 0x01 // a byte of block 1
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tampered block ciphertext")
		}
	}()
	st.Get(17) // entry 17 lives in block 1
}

func TestBlockEncryptedShard(t *testing.T) {
	parent := trace.NewLog()
	s := memory.NewSpace(parent, nil)
	st := NewBlockEncrypted(s, newCipher(t), 40, 0)
	before := parent.Len()
	buf := &trace.Buffer{}
	res := st.Shard(buf)
	if res == nil {
		t.Fatal("Shard refused without a cost model")
	}
	sh := res.(*BlockEncrypted)
	want := entryAt(33)
	sh.Set(33, want)
	if got := st.Get(33); got != want {
		t.Fatal("shard write not visible through parent store")
	}
	if buf.Len() != 1 || parent.Len() != before+1 {
		t.Fatalf("buffered=%d parent-delta=%d, want 1/1", buf.Len(), parent.Len()-before)
	}
}

func TestBlockEncryptedRefusesShardUnderCostModel(t *testing.T) {
	s := memory.NewSpace(nil, memory.DefaultSGX())
	st := NewBlockEncrypted(s, newCipher(t), 8, 0)
	if st.Shard(nil) != nil {
		t.Fatal("Shard must refuse when a cost model is attached")
	}
}

func TestBlockEncryptedAlloc(t *testing.T) {
	s := memory.NewSpace(nil, nil)
	st := BlockEncryptedAlloc(s, newCipher(t), 8)(19)
	if st.Len() != 19 {
		t.Fatalf("Len = %d", st.Len())
	}
	if be := st.(*BlockEncrypted); be.Block() != 8 {
		t.Fatalf("Block = %d, want 8", be.Block())
	}
	st.Set(18, entryAt(18))
	if st.Get(18) != entryAt(18) {
		t.Fatal("alloc-produced store broken")
	}
}

// TestStoreRangeOpsAllocFree: the per-entry and block-sealed stores
// must not allocate per range call in steady state (untraced spaces;
// traced runs append to the recorder, whose growth is the recorder's).
func TestStoreRangeOpsAllocFree(t *testing.T) {
	c := newCipher(t)
	const n = 256
	buf := make([]Entry, 96)
	for _, tc := range []struct {
		name string
		st   RangeStore
	}{
		{"Encrypted", NewEncrypted(memory.NewSpace(nil, nil), c, n)},
		{"BlockEncrypted", NewBlockEncrypted(memory.NewSpace(nil, nil), c, n, 0)},
	} {
		tc.st.SetRange(3, buf) // warm the scratch pools
		tc.st.GetRange(3, buf)
		if avg := testing.AllocsPerRun(50, func() { tc.st.SetRange(3, buf) }); avg != 0 {
			t.Errorf("%s.SetRange: %.1f allocs/op, want 0", tc.name, avg)
		}
		if avg := testing.AllocsPerRun(50, func() { tc.st.GetRange(3, buf) }); avg != 0 {
			t.Errorf("%s.GetRange: %.1f allocs/op, want 0", tc.name, avg)
		}
		set := tc.st.Set
		get := tc.st.Get
		if avg := testing.AllocsPerRun(50, func() { set(7, buf[0]) }); avg != 0 {
			t.Errorf("%s.Set: %.1f allocs/op, want 0", tc.name, avg)
		}
		if avg := testing.AllocsPerRun(50, func() { _ = get(7) }); avg != 0 {
			t.Errorf("%s.Get: %.1f allocs/op, want 0", tc.name, avg)
		}
	}
}

// ── microbenchmarks: plain vs sealed vs block-sealed range ops ───────

func benchStores(b *testing.B) map[string]func() RangeStore {
	c, _, err := newBenchCipher()
	if err != nil {
		b.Fatal(err)
	}
	const n = 1 << 14
	return map[string]func() RangeStore{
		"plain": func() RangeStore {
			return memory.Alloc[Entry](memory.NewSpace(nil, nil), n, EncodedSize)
		},
		"sealed": func() RangeStore {
			return NewEncrypted(memory.NewSpace(nil, nil), c, n)
		},
		"block-sealed": func() RangeStore {
			return NewBlockEncrypted(memory.NewSpace(nil, nil), c, n, 0)
		},
	}
}

func BenchmarkStoreSetRange(b *testing.B) {
	for _, name := range []string{"plain", "sealed", "block-sealed"} {
		mk := benchStores(b)[name]
		b.Run(name, func(b *testing.B) {
			st := mk()
			src := make([]Entry, 512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.SetRange((i*512)%(st.Len()-512), src)
			}
		})
	}
}

func BenchmarkStoreGetRange(b *testing.B) {
	for _, name := range []string{"plain", "sealed", "block-sealed"} {
		mk := benchStores(b)[name]
		b.Run(name, func(b *testing.B) {
			st := mk()
			dst := make([]Entry, 512)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st.GetRange((i*512)%(st.Len()-512), dst)
			}
		})
	}
}
