// Package table defines the database entries the oblivious join operates
// on, together with their constant-time comparators, fixed-width binary
// encoding, and storage backends (plain traced memory and encrypted
// traced memory).
//
// An Entry carries the attributes of §5 of the paper: the join attribute
// j, the data attribute d, the table identifier tid, the group dimensions
// α1 and α2 computed by Augment-Tables, the distribute destination f, the
// alignment index ii, and the null (∅) flag. All entries have the same
// public size, so reading or writing any entry is indistinguishable from
// reading or writing any other.
package table

import (
	"encoding/binary"
	"fmt"

	"oblivjoin/internal/obliv"
)

// DataLen is the fixed width of the data attribute in bytes. Real
// deployments would store a record identifier or a fixed-width projection
// here; what matters for obliviousness is only that the width is a public
// constant.
const DataLen = 16

// Data is the fixed-width data attribute payload.
type Data = [DataLen]byte

// Entry is one database row, augmented with the working attributes of
// the join algorithm. The zero value is a non-null entry with zeroed
// attributes.
type Entry struct {
	J    uint64 // join attribute value
	D    Data   // data attribute value
	TID  uint64 // originating table: 1 or 2
	A1   uint64 // α1: matching entries in T1 for this join value
	A2   uint64 // α2: matching entries in T2 for this join value
	F    uint64 // destination index for Oblivious-Distribute (1-based)
	II   uint64 // alignment index for Align-Table
	Null uint64 // 1 when the entry is ∅ (a dummy/discarded slot)
}

// EncodedSize is the public fixed width of one encoded entry in bytes.
const EncodedSize = 7*8 + DataLen

// Encode writes the entry into dst, which must be EncodedSize bytes.
func (e *Entry) Encode(dst []byte) {
	if len(dst) != EncodedSize {
		panic(fmt.Sprintf("table: Encode dst %d bytes, want %d", len(dst), EncodedSize))
	}
	binary.LittleEndian.PutUint64(dst[0:], e.J)
	copy(dst[8:8+DataLen], e.D[:])
	o := 8 + DataLen
	binary.LittleEndian.PutUint64(dst[o:], e.TID)
	binary.LittleEndian.PutUint64(dst[o+8:], e.A1)
	binary.LittleEndian.PutUint64(dst[o+16:], e.A2)
	binary.LittleEndian.PutUint64(dst[o+24:], e.F)
	binary.LittleEndian.PutUint64(dst[o+32:], e.II)
	binary.LittleEndian.PutUint64(dst[o+40:], e.Null)
}

// DecodeEntry parses an entry previously written by Encode.
func DecodeEntry(src []byte) Entry {
	if len(src) != EncodedSize {
		panic(fmt.Sprintf("table: DecodeEntry src %d bytes, want %d", len(src), EncodedSize))
	}
	var e Entry
	e.J = binary.LittleEndian.Uint64(src[0:])
	copy(e.D[:], src[8:8+DataLen])
	o := 8 + DataLen
	e.TID = binary.LittleEndian.Uint64(src[o:])
	e.A1 = binary.LittleEndian.Uint64(src[o+8:])
	e.A2 = binary.LittleEndian.Uint64(src[o+16:])
	e.F = binary.LittleEndian.Uint64(src[o+24:])
	e.II = binary.LittleEndian.Uint64(src[o+32:])
	e.Null = binary.LittleEndian.Uint64(src[o+40:])
	return e
}

// MakeData builds a Data payload from a string, padding with zeros. It
// returns an error if s exceeds DataLen bytes.
func MakeData(s string) (Data, error) {
	var d Data
	if len(s) > DataLen {
		return d, fmt.Errorf("table: data %q exceeds %d bytes", s, DataLen)
	}
	copy(d[:], s)
	return d, nil
}

// MustData is MakeData that panics on overflow; for tests and literals.
func MustData(s string) Data {
	d, err := MakeData(s)
	if err != nil {
		panic(err)
	}
	return d
}

// DataString trims trailing zero padding from a payload.
func DataString(d Data) string {
	n := len(d)
	for n > 0 && d[n-1] == 0 {
		n--
	}
	return string(d[:n])
}

// CondSwapEntry swaps x and y in constant time when c == 1. Every field
// of both entries is touched regardless of c.
func CondSwapEntry(c uint64, x, y *Entry) {
	obliv.CondSwap(c, &x.J, &y.J)
	obliv.CondSwapBytes(c, x.D[:], y.D[:])
	obliv.CondSwap(c, &x.TID, &y.TID)
	obliv.CondSwap(c, &x.A1, &y.A1)
	obliv.CondSwap(c, &x.A2, &y.A2)
	obliv.CondSwap(c, &x.F, &y.F)
	obliv.CondSwap(c, &x.II, &y.II)
	obliv.CondSwap(c, &x.Null, &y.Null)
}

// CondCopyEntry copies src into dst when c == 1; dst is rewritten with
// its own value when c == 0.
func CondCopyEntry(c uint64, dst *Entry, src *Entry) {
	obliv.CondCopy(c, &dst.J, src.J)
	obliv.CondCopyBytes(c, dst.D[:], src.D[:])
	obliv.CondCopy(c, &dst.TID, src.TID)
	obliv.CondCopy(c, &dst.A1, src.A1)
	obliv.CondCopy(c, &dst.A2, src.A2)
	obliv.CondCopy(c, &dst.F, src.F)
	obliv.CondCopy(c, &dst.II, src.II)
	obliv.CondCopy(c, &dst.Null, src.Null)
}

// lexLess chains strict-less/equal pairs into a lexicographic strict-less,
// entirely branch-free: lt₁ ∨ (eq₁ ∧ lt₂) ∨ (eq₁ ∧ eq₂ ∧ lt₃) …
func lexLess(pairs ...[2]uint64) uint64 {
	var lt uint64
	eqSoFar := uint64(1)
	for _, p := range pairs {
		lt = obliv.Or(lt, obliv.And(eqSoFar, p[0]))
		eqSoFar = obliv.And(eqSoFar, p[1])
	}
	return lt
}

func eqData(a, b *Data) uint64 { return obliv.EqBytes(a[:], b[:]) }

func lessData(a, b *Data) uint64 { return obliv.LessBytes(a[:], b[:]) }

// LessJTID orders by ⟨j↑, tid↑⟩ — the first sort of Augment-Tables
// (Algorithm 2, line 3).
func LessJTID(x, y Entry) uint64 {
	return lexLess(
		[2]uint64{obliv.Less(x.J, y.J), obliv.Eq(x.J, y.J)},
		[2]uint64{obliv.Less(x.TID, y.TID), obliv.Eq(x.TID, y.TID)},
	)
}

// LessTIDJD orders by ⟨tid↑, j↑, d↑⟩ — the second sort of Augment-Tables
// (Algorithm 2, line 5), which separates the two tables again.
func LessTIDJD(x, y Entry) uint64 {
	return lexLess(
		[2]uint64{obliv.Less(x.TID, y.TID), obliv.Eq(x.TID, y.TID)},
		[2]uint64{obliv.Less(x.J, y.J), obliv.Eq(x.J, y.J)},
		[2]uint64{lessData(&x.D, &y.D), eqData(&x.D, &y.D)},
	)
}

// LessJD orders by ⟨j↑, d↑⟩ — the natural row order used by the
// relational operators (distinct, union, sorting output).
func LessJD(x, y Entry) uint64 {
	return lexLess(
		[2]uint64{obliv.Less(x.J, y.J), obliv.Eq(x.J, y.J)},
		[2]uint64{lessData(&x.D, &y.D), eqData(&x.D, &y.D)},
	)
}

// LessF orders by ⟨f↑⟩ — the sort inside Oblivious-Distribute
// (Algorithm 3, line 3).
func LessF(x, y Entry) uint64 {
	return obliv.Less(x.F, y.F)
}

// LessNullF orders by ⟨≠∅↑, f↑⟩ — the sort inside the extended
// distribute (Algorithm 4, line 26): non-null entries first, ordered by
// their destination index; ∅ entries last.
func LessNullF(x, y Entry) uint64 {
	return lexLess(
		[2]uint64{obliv.Less(x.Null, y.Null), obliv.Eq(x.Null, y.Null)},
		[2]uint64{obliv.Less(x.F, y.F), obliv.Eq(x.F, y.F)},
	)
}

// LessJII orders by ⟨j↑, ii↑⟩ — the alignment sort (Algorithm 5, line 8).
func LessJII(x, y Entry) uint64 {
	return lexLess(
		[2]uint64{obliv.Less(x.J, y.J), obliv.Eq(x.J, y.J)},
		[2]uint64{obliv.Less(x.II, y.II), obliv.Eq(x.II, y.II)},
	)
}

// Pair is one output row of the join: the data attributes of a matching
// pair of input entries.
type Pair struct {
	D1 Data
	D2 Data
}

// PairSize is the public width of an output pair.
const PairSize = 2 * DataLen

// KeyedPair is one output row of a keyed join: the shared join value
// and both data attributes. Keeping the key in the output is what makes
// multi-way joins composable (the intermediate result can be re-joined
// without re-deriving its key from the payload).
type KeyedPair struct {
	J  uint64
	D1 Data
	D2 Data
}

// LessKeyedPair orders keyed join output by ⟨j↑, d1↑, d2↑⟩ — the
// canonical row order of a multi-way join chain. Branch-free, so a
// sorting network over pairs stays data-oblivious.
func LessKeyedPair(x, y KeyedPair) uint64 {
	return lexLess(
		[2]uint64{obliv.Less(x.J, y.J), obliv.Eq(x.J, y.J)},
		[2]uint64{lessData(&x.D1, &y.D1), eqData(&x.D1, &y.D1)},
		[2]uint64{lessData(&x.D2, &y.D2), eqData(&x.D2, &y.D2)},
	)
}

// CondSwapKeyedPair swaps x and y in constant time when c == 1. Every
// field of both pairs is touched regardless of c.
func CondSwapKeyedPair(c uint64, x, y *KeyedPair) {
	obliv.CondSwap(c, &x.J, &y.J)
	obliv.CondSwapBytes(c, x.D1[:], y.D1[:])
	obliv.CondSwapBytes(c, x.D2[:], y.D2[:])
}

// Row is the external representation of an input row, used by loaders
// and the public API.
type Row struct {
	J uint64
	D Data
}

// Store is the storage abstraction the join algorithm reads and writes
// entries through. Implementations must make element size public and
// constant; *memory.Array[Entry] (plain) and *Encrypted (sealed) both
// qualify.
type Store interface {
	Len() int
	Get(i int) Entry
	Set(i int, e Entry)
}

// RangeStore is the optional batched extension of Store: GetRange and
// SetRange move a contiguous run of entries with one dynamic dispatch,
// emitting exactly the events of the equivalent element loop in
// ascending index order. The hot paths (sorting rounds, the linear
// scans of internal/core) type-assert to it and amortize their
// per-element overhead per block; plain loops remain the fallback.
// *memory.Array[Entry] and *Encrypted implement it.
type RangeStore interface {
	Store
	GetRange(lo int, dst []Entry)
	SetRange(lo int, src []Entry)
}
