package table

import (
	"fmt"

	"oblivjoin/internal/trace"
)

// sharded is the structural capability the traced stores share (it
// mirrors bitonic.Sharder without importing it): access to the store's
// recorder and trace-redirected aliases.
type sharded interface {
	Traced() bool
	Recorder() trace.Recorder
	Shard(rec trace.Recorder) any
}

// Builder fills a store front-to-back from row or entry batches — the
// batch-granular append API the streaming executor loads barrier
// operators through, so upstream batches land in the store without an
// intermediate whole-relation copy.
//
// Appends go through SetRange, emitting exactly the ascending per-entry
// write events of the equivalent element loop. When the store is traced,
// the builder writes through a trace shard recording into a compact
// RunBuffer and Flush replays the buffered writes into the real
// recorder: a streaming fill interleaves upstream drain reads with its
// own writes in time, but the recorded canonical order stays
// "all upstream reads, then all fill writes" — bit-identical to the
// materialized executor's collect-then-load order. Run-length buffering
// keeps the deferred trace proportional to the number of batches.
type Builder struct {
	st      Store
	w       Store // write target: trace-deferred shard, or st itself
	rec     trace.Recorder
	buf     trace.RunBuffer
	pos     int
	scratch []Entry
}

// NewBuilder returns a builder positioned at entry 0 of st.
func NewBuilder(st Store) *Builder {
	b := &Builder{st: st, w: st}
	if sh, ok := st.(sharded); ok && sh.Traced() {
		if shard, ok := sh.Shard(&b.buf).(Store); ok && shard != nil {
			b.w = shard
			b.rec = sh.Recorder()
		}
	}
	return b
}

// builderChunk bounds one physical range write (and the row-encoding
// scratch), in entries; larger appends split into ascending chunks,
// which emit the same per-entry event sequence.
const builderChunk = 4096

// AppendEntries writes src at the cursor and advances it.
func (b *Builder) AppendEntries(src []Entry) {
	if b.pos+len(src) > b.st.Len() {
		panic(fmt.Sprintf("table: Builder append overflows store: %d+%d > %d",
			b.pos, len(src), b.st.Len()))
	}
	for lo := 0; lo < len(src); lo += builderChunk {
		chunk := src[lo:min(lo+builderChunk, len(src))]
		if rs, ok := b.w.(RangeStore); ok {
			rs.SetRange(b.pos, chunk)
		} else {
			for i, e := range chunk {
				b.w.Set(b.pos+i, e)
			}
		}
		b.pos += len(chunk)
	}
}

// AppendRows encodes rows as entries tagged with tid and appends them.
func (b *Builder) AppendRows(rows []Row, tid uint64) {
	if len(b.scratch) == 0 {
		b.scratch = make([]Entry, min(builderChunk, max(len(rows), 1)))
	}
	for len(rows) > 0 {
		k := min(len(rows), len(b.scratch))
		for i, r := range rows[:k] {
			b.scratch[i] = Entry{J: r.J, D: r.D, TID: tid}
		}
		b.AppendEntries(b.scratch[:k])
		rows = rows[k:]
	}
}

// Pos returns the number of entries appended so far.
func (b *Builder) Pos() int { return b.pos }

// Flush replays the deferred write events into the store's recorder in
// canonical order. Call once after the final append, before anything
// reads the store; without a trace it is free.
func (b *Builder) Flush() {
	if b.rec != nil {
		b.buf.ReplayTo(b.rec)
	}
}
