package table

import (
	"sync"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
)

// Gauge tracks the engine-held bytes of one query run: every store
// allocated through the run's Alloc is registered with its heap
// footprint, relation hand-off buffers are charged by the driver, and
// the streaming executor discharges each item the moment it is done
// with it. Peak is therefore the run's peak outstanding engine
// allocation — a deterministic, GC-independent function of the plan and
// the (public) table sizes, which is what makes it safe to gate in CI
// and meaningful for admission control. The materialized executor never
// discharges mid-run (mirroring the legacy pipeline, which dropped
// intermediates only to the garbage collector), so its peak is the sum
// of all intermediates; the streaming executor's is the largest single
// stage.
//
// A Gauge is safe for concurrent use; the registry also carries cleanup
// hooks (spill-file deletion), so ReleaseAll at the end of a run frees
// whatever the run abandoned, including after a cancellation panic.
type Gauge struct {
	mu         sync.Mutex
	live       int64
	peak       int64
	total      int64
	spills     int64
	spillBytes int64
	tracked    map[Store]trackedStore
}

type trackedStore struct {
	bytes   int64
	cleanup func()
}

func (g *Gauge) charge(n int64) {
	g.live += n
	if g.live > g.peak {
		g.peak = g.live
	}
	if n > 0 {
		g.total += n
	}
}

// Charge adds n live bytes (driver-side buffers: relation slices,
// batch buffers, materialized results).
func (g *Gauge) Charge(n int64) {
	if g == nil || n == 0 {
		return
	}
	g.mu.Lock()
	g.charge(n)
	g.mu.Unlock()
}

// Discharge removes n live bytes previously charged.
func (g *Gauge) Discharge(n int64) {
	if g == nil || n == 0 {
		return
	}
	g.mu.Lock()
	g.live -= n
	g.mu.Unlock()
}

// Track registers a store with its heap footprint and an optional
// cleanup hook, charging the footprint as live.
func (g *Gauge) Track(st Store, bytes int64, cleanup func()) {
	if g == nil {
		if cleanup != nil {
			cleanup()
		}
		return
	}
	g.mu.Lock()
	if g.tracked == nil {
		g.tracked = map[Store]trackedStore{}
	}
	ts := trackedStore{bytes: bytes, cleanup: cleanup}
	if old, ok := g.tracked[st]; ok {
		// Re-registering merges: the footprints add and both cleanup
		// hooks run on release.
		ts.bytes += old.bytes
		if old.cleanup != nil && cleanup != nil {
			oldClean := old.cleanup
			ts.cleanup = func() { cleanup(); oldClean() }
		} else if cleanup == nil {
			ts.cleanup = old.cleanup
		}
	}
	g.tracked[st] = ts
	g.charge(bytes)
	g.mu.Unlock()
}

// Spilled records that one intermediate of bytes on-disk bytes went to
// the spill store instead of the heap.
func (g *Gauge) Spilled(bytes int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.spills++
	g.spillBytes += bytes
	g.mu.Unlock()
}

// Release discharges a tracked store and runs its cleanup hook.
// Unknown stores and repeated releases are no-ops, so streaming stages
// can release eagerly without coordinating with the run's teardown.
func (g *Gauge) Release(st Store) {
	if g == nil || st == nil {
		return
	}
	g.mu.Lock()
	ts, ok := g.tracked[st]
	if ok {
		delete(g.tracked, st)
		g.live -= ts.bytes
	}
	g.mu.Unlock()
	if ok && ts.cleanup != nil {
		ts.cleanup()
	}
}

// ReleaseAll discharges every still-tracked store and runs the cleanup
// hooks; the run-end backstop that guarantees spill files never outlive
// their query, however the run ended.
func (g *Gauge) ReleaseAll() {
	if g == nil {
		return
	}
	g.mu.Lock()
	var hooks []func()
	for st, ts := range g.tracked {
		delete(g.tracked, st)
		g.live -= ts.bytes
		if ts.cleanup != nil {
			hooks = append(hooks, ts.cleanup)
		}
	}
	g.mu.Unlock()
	for _, h := range hooks {
		h()
	}
}

// Absorb folds the readings of child gauges that ran concurrently on
// top of g's current live bytes: peak is the summed high-water marks of
// the children (the sharded executor assumes every concurrent unit hits
// its peak at once, a deterministic upper bound), total/spills/
// spillBytes accumulate. Children account their own stores in their own
// gauges, so the parent's live figure is untouched.
func (g *Gauge) Absorb(peak, total, spills, spillBytes int64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.live+peak > g.peak {
		g.peak = g.live + peak
	}
	g.total += total
	g.spills += spills
	g.spillBytes += spillBytes
	g.mu.Unlock()
}

// Live returns the current outstanding bytes.
func (g *Gauge) Live() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.live
}

// Peak returns the high-water mark of outstanding bytes.
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.peak
}

// Total returns the cumulative bytes charged over the run's lifetime.
func (g *Gauge) Total() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.total
}

// Spills returns how many intermediates were diverted to spill storage.
func (g *Gauge) Spills() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spills
}

// SpillBytes returns the cumulative on-disk bytes of spilled
// intermediates.
func (g *Gauge) SpillBytes() int64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.spillBytes
}

// ReleaseStore releases st from g; both may be nil. The free function
// the streaming stages call when a drained store is dead.
func ReleaseStore(g *Gauge, st Store) { g.Release(st) }

// ── heap footprints ──────────────────────────────────────────────────
//
// The per-kind footprint formulas below are the accounting weights the
// budget allocator predicts with and the gauge charges: the dominant
// backing allocation of each store kind, ignoring constant-size struct
// overhead. They only need to be deterministic and consistent between
// prediction and charge.

// PlainFootprint is the heap bytes of a plain store of n entries.
func PlainFootprint(n int) int64 { return int64(n) * EncodedSize }

// EncryptedFootprint is the heap bytes of a per-entry sealed store.
func EncryptedFootprint(n int) int64 { return int64(n) * SealedSize }

// BlockFootprint is the heap bytes of a block-sealed store with b
// entries per block (b ≤ 0 selects DefaultSealedBlock).
func BlockFootprint(n, b int) int64 {
	if b <= 0 {
		b = DefaultSealedBlock
	}
	nb := (n + b - 1) / b
	return int64(nb) * int64(crypto.SealedLen(b*EncodedSize))
}

// Footprint reports the heap footprint of an allocated store using the
// same formulas as the predictors above. Spill stores hold their blocks
// on disk, so their heap footprint is zero by this accounting.
func Footprint(st Store) int64 {
	switch s := st.(type) {
	case *memory.Array[Entry]:
		return PlainFootprint(s.Len())
	case *Encrypted:
		return EncryptedFootprint(s.Len())
	case *BlockEncrypted:
		return int64(len(s.st.ct))
	case *Spill:
		return 0
	default:
		return PlainFootprint(st.Len())
	}
}

// TrackedAlloc wraps base so every allocated store is registered in g
// with its heap footprint. The stores themselves are returned untouched
// (no wrapper type), so range, trace and sharding capabilities keep
// type-asserting exactly as before.
func TrackedAlloc(base Alloc, g *Gauge) Alloc {
	if g == nil {
		return base
	}
	return func(n int) Store {
		st := base(n)
		g.Track(st, Footprint(st), nil)
		return st
	}
}
