package table

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"oblivjoin/internal/memory"
	"oblivjoin/internal/trace"
)

func plainStore(s *memory.Space, n int) Store {
	return memory.Alloc[Entry](s, n, EncodedSize)
}

func TestSpillGetSetRoundTrip(t *testing.T) {
	c := newCipher(t)
	for _, n := range blockSizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			s := memory.NewSpace(nil, nil)
			st, err := NewSpill(s, c, t.TempDir(), n, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Remove()
			if st.Len() != n || st.Block() != DefaultSealedBlock {
				t.Fatalf("Len=%d Block=%d", st.Len(), st.Block())
			}
			var zero Entry
			for i := 0; i < n; i++ {
				if got := st.Get(i); got != zero {
					t.Fatalf("slot %d not zero-initialized: %+v", i, got)
				}
			}
			for i := 0; i < n; i++ {
				st.Set(i, entryAt(i))
			}
			for i := 0; i < n; i++ {
				if got := st.Get(i); got != entryAt(i) {
					t.Fatalf("Get(%d) = %+v, want %+v", i, got, entryAt(i))
				}
			}
		})
	}
}

func TestSpillRangeRoundTrip(t *testing.T) {
	c := newCipher(t)
	for _, n := range blockSizes {
		s := memory.NewSpace(nil, nil)
		st, err := NewSpill(s, c, t.TempDir(), n, 0)
		if err != nil {
			t.Fatal(err)
		}
		for lo := 0; lo < n; lo++ {
			for k := 0; lo+k <= n; k += max(1, n/7) {
				src := make([]Entry, k)
				for j := range src {
					src[j] = entryAt(lo*100 + j)
				}
				st.SetRange(lo, src)
				dst := make([]Entry, k)
				st.GetRange(lo, dst)
				for j := range dst {
					if dst[j] != src[j] {
						t.Fatalf("n=%d lo=%d k=%d slot %d mismatch", n, lo, k, j)
					}
				}
			}
		}
		st.Remove()
	}
}

// TestSpillFileCiphertextOnly is the at-rest guarantee of the spill
// path: a known plaintext pattern written through the store must never
// appear in the backing file's bytes.
func TestSpillFileCiphertextOnly(t *testing.T) {
	dir := t.TempDir()
	s := memory.NewSpace(nil, nil)
	st, err := NewSpill(s, newCipher(t), dir, 3*DefaultSealedBlock+5, 0)
	if err != nil {
		t.Fatal(err)
	}
	secret := MustData("TOPSECRETPAYLOAD")
	for i := 0; i < st.Len(); i++ {
		st.Set(i, Entry{J: 0x4141414141414141, D: secret})
	}
	raw, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) != st.DiskBytes() {
		t.Fatalf("file size %d, want %d", len(raw), st.DiskBytes())
	}
	if bytes.Contains(raw, secret[:]) {
		t.Fatal("spill file contains plaintext payload")
	}
	if bytes.Contains(raw, []byte("AAAAAAAA")) {
		t.Fatal("spill file contains plaintext key bytes")
	}
	st.Remove()
	if _, err := os.Stat(st.Path()); !os.IsNotExist(err) {
		t.Fatalf("spill file survives Remove: %v", err)
	}
}

// TestSpillTraceMatchesMemory: the spill store's event stream is the
// same array-read/write sequence every other store emits, so spilling
// never changes a canonical trace.
func TestSpillTraceMatchesMemory(t *testing.T) {
	const n = 2*DefaultSealedBlock + 3
	ops := func(st Store) {
		for i := 0; i < n; i++ {
			st.Set(i, entryAt(i))
		}
		for i := n - 1; i >= 0; i-- {
			st.Get(i)
		}
		if rs, ok := st.(RangeStore); ok {
			buf := make([]Entry, n-2)
			rs.GetRange(1, buf)
			rs.SetRange(1, buf)
		}
	}
	hash := func(mk func(s *memory.Space) Store) string {
		h := trace.NewHasher()
		s := memory.NewSpace(h, nil)
		ops(mk(s))
		return h.Hex()
	}
	plain := hash(func(s *memory.Space) Store { return plainStore(s, n) })
	c := newCipher(t)
	spill := hash(func(s *memory.Space) Store {
		st, err := NewSpill(s, c, t.TempDir(), n, 0)
		if err != nil {
			t.Fatal(err)
		}
		return st
	})
	if plain != spill {
		t.Fatalf("spill trace %s != plain trace %s", spill, plain)
	}
}

func TestGaugeAccounting(t *testing.T) {
	g := &Gauge{}
	g.Charge(100)
	g.Charge(50)
	if g.Live() != 150 || g.Peak() != 150 || g.Total() != 150 {
		t.Fatalf("live=%d peak=%d total=%d", g.Live(), g.Peak(), g.Total())
	}
	g.Discharge(120)
	g.Charge(40)
	if g.Live() != 70 || g.Peak() != 150 || g.Total() != 190 {
		t.Fatalf("after discharge: live=%d peak=%d total=%d", g.Live(), g.Peak(), g.Total())
	}
}

func TestGaugeTrackedAllocAndRelease(t *testing.T) {
	g := &Gauge{}
	s := memory.NewSpace(nil, nil)
	alloc := TrackedAlloc(PlainAlloc(s), g)
	st := alloc(10)
	if want := PlainFootprint(10); g.Live() != want {
		t.Fatalf("live=%d want %d", g.Live(), want)
	}
	cleaned := 0
	g.Track(st, 0, func() { cleaned++ }) // second Track must not double-charge
	g.Release(st)
	g.Release(st) // idempotent
	if g.Live() != 0 {
		t.Fatalf("live=%d after release", g.Live())
	}
	st2 := alloc(4)
	g.ReleaseAll()
	if g.Live() != 0 {
		t.Fatalf("live=%d after ReleaseAll", g.Live())
	}
	_ = st2
}

// TestSpillerBudgetAlloc: allocations under budget stay in memory,
// over-budget ones divert to spill files, and releasing a spill store
// deletes its file.
func TestSpillerBudgetAlloc(t *testing.T) {
	dir := t.TempDir()
	g := &Gauge{}
	s := memory.NewSpace(nil, nil)
	sp := NewSpiller(s, newCipher(t), dir, 0, g)
	budget := PlainFootprint(100)
	alloc := BudgetAlloc(TrackedAlloc(PlainAlloc(s), g), sp, g, budget, PlainFootprint)

	small := alloc(10) // fits
	if _, ok := small.(*Spill); ok {
		t.Fatal("under-budget allocation spilled")
	}
	big := alloc(200) // would exceed: diverts
	spl, ok := big.(*Spill)
	if !ok {
		t.Fatalf("over-budget allocation stayed in memory (live=%d)", g.Live())
	}
	if g.Spills() != 1 || g.SpillBytes() != spl.DiskBytes() {
		t.Fatalf("spills=%d spillBytes=%d want 1/%d", g.Spills(), g.SpillBytes(), spl.DiskBytes())
	}
	for i := 0; i < 200; i++ {
		spl.Set(i, entryAt(i))
	}
	if got := spl.Get(137); got != entryAt(137) {
		t.Fatalf("spilled store round-trip: %+v", got)
	}
	g.Release(big)
	if _, err := os.Stat(spl.Path()); !os.IsNotExist(err) {
		t.Fatalf("spill file survives release: %v", err)
	}
	g.ReleaseAll()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Fatalf("leftover spill file %s", filepath.Join(dir, e.Name()))
	}
}

// TestBuilderMatchesElementLoop: a builder fill produces the same
// store contents and the same canonical trace as the per-entry Set
// loop it replaces — including when the appends are interleaved, in
// time, with reads from another array (the streaming schedule).
func TestBuilderMatchesElementLoop(t *testing.T) {
	const n = 3*DefaultSealedBlock + 5
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{J: uint64(i % 7), D: MustData(fmt.Sprintf("r%d", i))}
	}

	run := func(fill func(s *memory.Space, dst Store, src Store)) (string, []Entry) {
		h := trace.NewHasher()
		s := memory.NewSpace(h, nil)
		src := plainStore(s, n) // array 0: the upstream being drained
		dst := plainStore(s, n) // array 1: the store being filled
		fill(s, dst, src)
		out := make([]Entry, n)
		for i := range out {
			out[i] = dst.Get(i)
		}
		return h.Hex(), out
	}

	// Reference: drain src fully, then the element loop of ops.load.
	wantHash, wantOut := run(func(s *memory.Space, dst, src Store) {
		for i := 0; i < n; i++ {
			src.Get(i)
		}
		for i, r := range rows {
			dst.Set(i, Entry{J: r.J, D: r.D, TID: 1})
		}
	})

	// Streaming: builder appends interleaved with the upstream reads;
	// the deferred-write replay must reorder the recorded events back
	// into the reference order.
	gotHash, gotOut := run(func(s *memory.Space, dst, src Store) {
		bld := NewBuilder(dst)
		const batch = 8
		for lo := 0; lo < n; lo += batch {
			hi := min(lo+batch, n)
			for i := lo; i < hi; i++ {
				src.Get(i)
			}
			bld.AppendRows(rows[lo:hi], 1)
		}
		bld.Flush()
	})

	if gotHash != wantHash {
		t.Fatalf("builder trace %s != element-loop trace %s", gotHash, wantHash)
	}
	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("entry %d: %+v != %+v", i, gotOut[i], wantOut[i])
		}
	}
}
