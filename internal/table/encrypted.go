package table

import (
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
)

// SealedSize is the public width of one encrypted entry: plaintext plus
// nonce and MAC overhead.
const SealedSize = EncodedSize + crypto.Overhead

// sealed is the fixed-width ciphertext of one entry.
type sealed [SealedSize]byte

// Encrypted is a Store whose entries live sealed in public memory.
// Every Get authenticates and decrypts; every Set re-encrypts under a
// fresh nonce, so overwriting an entry with its previous value is
// indistinguishable from a real update — the property that makes the
// sorting network's dummy write-backs safe (§3.5).
type Encrypted struct {
	arr    *memory.Array[sealed]
	cipher *crypto.Cipher
}

// NewEncrypted allocates an encrypted store of n null entries in s,
// sealed under c.
func NewEncrypted(s *memory.Space, c *crypto.Cipher, n int) *Encrypted {
	e := &Encrypted{arr: memory.Alloc[sealed](s, n, SealedSize), cipher: c}
	// Initialize every slot with a valid ciphertext of the zero entry so
	// that Get before first Set authenticates.
	var zero Entry
	var buf [EncodedSize]byte
	zero.Encode(buf[:])
	for i := 0; i < n; i++ {
		var ct sealed
		c.Seal(ct[:], buf[:])
		e.arr.Set(i, ct)
	}
	return e
}

// Len returns the number of entries.
func (e *Encrypted) Len() int { return e.arr.Len() }

// Get decrypts entry i. A failed authentication means the untrusted
// server tampered with memory; that is a fatal integrity violation, not
// a recoverable condition, so Get panics.
func (e *Encrypted) Get(i int) Entry {
	ct := e.arr.Get(i)
	var buf [EncodedSize]byte
	if err := e.cipher.Open(buf[:], ct[:]); err != nil {
		panic("table: entry authentication failed: " + err.Error())
	}
	return DecodeEntry(buf[:])
}

// Set seals v under a fresh nonce and stores it at i.
func (e *Encrypted) Set(i int, v Entry) {
	var buf [EncodedSize]byte
	v.Encode(buf[:])
	var ct sealed
	e.cipher.Seal(ct[:], buf[:])
	e.arr.Set(i, ct)
}

// Alloc abstracts allocation of entry stores so the join can run over
// plain or encrypted memory without caring which.
type Alloc func(n int) Store

// PlainAlloc returns an Alloc producing plain traced arrays in s.
func PlainAlloc(s *memory.Space) Alloc {
	return func(n int) Store {
		return memory.Alloc[Entry](s, n, EncodedSize)
	}
}

// EncryptedAlloc returns an Alloc producing sealed stores in s under c.
func EncryptedAlloc(s *memory.Space, c *crypto.Cipher) Alloc {
	return func(n int) Store {
		return NewEncrypted(s, c, n)
	}
}
