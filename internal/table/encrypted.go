package table

import (
	"sync"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/trace"
)

// SealedSize is the public width of one encrypted entry: plaintext plus
// nonce and MAC overhead.
const SealedSize = EncodedSize + crypto.Overhead

// sealed is the fixed-width ciphertext of one entry.
type sealed [SealedSize]byte

// Encrypted is a Store whose entries live sealed in public memory.
// Every Get authenticates and decrypts; every Set re-encrypts under a
// fresh nonce, so overwriting an entry with its previous value is
// indistinguishable from a real update — the property that makes the
// sorting network's dummy write-backs safe (§3.5).
type Encrypted struct {
	arr    *memory.Array[sealed]
	cipher *crypto.Cipher
}

// NewEncrypted allocates an encrypted store of n null entries in s,
// sealed under c.
func NewEncrypted(s *memory.Space, c *crypto.Cipher, n int) *Encrypted {
	e := &Encrypted{arr: memory.Alloc[sealed](s, n, SealedSize), cipher: c}
	// Initialize every slot with a valid ciphertext of the zero entry so
	// that Get before first Set authenticates. The initialization writes
	// bypass the trace: like the allocation itself they are a fixed
	// function of the (public) size n, and keeping them out of the event
	// stream makes an encrypted run's trace identical to a plain run's —
	// the sealed array aliases the plain array's indices one-to-one.
	var zero Entry
	var buf [EncodedSize]byte
	zero.Encode(buf[:])
	raw := e.arr.Raw()
	for i := range raw {
		c.Seal(raw[i][:], buf[:])
	}
	return e
}

// Len returns the number of entries.
func (e *Encrypted) Len() int { return e.arr.Len() }

// Get decrypts entry i. A failed authentication means the untrusted
// server tampered with memory; that is a fatal integrity violation, not
// a recoverable condition, so Get panics.
func (e *Encrypted) Get(i int) Entry {
	ct := e.arr.Get(i)
	var buf [EncodedSize]byte
	if err := e.cipher.Open(buf[:], ct[:]); err != nil {
		panic("table: entry authentication failed: " + err.Error())
	}
	return DecodeEntry(buf[:])
}

// Set seals v under a fresh nonce and stores it at i.
func (e *Encrypted) Set(i int, v Entry) {
	var buf [EncodedSize]byte
	v.Encode(buf[:])
	var ct sealed
	e.cipher.Seal(ct[:], buf[:])
	e.arr.Set(i, ct)
}

// sealedScratch pools ciphertext blocks for the batched range
// operations so hot sorting rounds do not allocate per call.
var sealedScratch = sync.Pool{
	New: func() any {
		s := make([]sealed, 0, 1024)
		return &s
	},
}

func getSealedScratch(n int) (*[]sealed, []sealed) {
	p := sealedScratch.Get().(*[]sealed)
	if cap(*p) < n {
		*p = make([]sealed, n)
	}
	return p, (*p)[:n]
}

// GetRange decrypts the run [lo, lo+len(dst)) into dst. The underlying
// sealed array is read as one batched range, so the trace events are
// the per-index reads in ascending order.
func (e *Encrypted) GetRange(lo int, dst []Entry) {
	p, cts := getSealedScratch(len(dst))
	defer sealedScratch.Put(p)
	e.arr.GetRange(lo, cts)
	var buf [EncodedSize]byte
	for k := range dst {
		if err := e.cipher.Open(buf[:], cts[k][:]); err != nil {
			panic("table: entry authentication failed: " + err.Error())
		}
		dst[k] = DecodeEntry(buf[:])
	}
}

// SetRange seals src under fresh nonces and writes the run
// [lo, lo+len(src)) as one batched range.
func (e *Encrypted) SetRange(lo int, src []Entry) {
	p, cts := getSealedScratch(len(src))
	defer sealedScratch.Put(p)
	var buf [EncodedSize]byte
	for k := range src {
		src[k].Encode(buf[:])
		e.cipher.Seal(cts[k][:], buf[:])
	}
	e.arr.SetRange(lo, cts)
}

// Traced reports whether accesses to the sealed storage are recorded.
func (e *Encrypted) Traced() bool { return e.arr.Traced() }

// Recorder returns the recorder the sealed storage feeds.
func (e *Encrypted) Recorder() trace.Recorder { return e.arr.Recorder() }

// Shard returns an alias of the store recording to rec, for parallel
// executors (see bitonic.Sharder); nil when the underlying memory
// cannot be sharded. The cipher is shared — Seal and Open are safe for
// concurrent use.
func (e *Encrypted) Shard(rec trace.Recorder) any {
	res := e.arr.Shard(rec)
	if res == nil {
		return nil
	}
	return &Encrypted{arr: res.(*memory.Array[sealed]), cipher: e.cipher}
}

// Alloc abstracts allocation of entry stores so the join can run over
// plain or encrypted memory without caring which.
type Alloc func(n int) Store

// PlainAlloc returns an Alloc producing plain traced arrays in s.
func PlainAlloc(s *memory.Space) Alloc {
	return func(n int) Store {
		return memory.Alloc[Entry](s, n, EncodedSize)
	}
}

// EncryptedAlloc returns an Alloc producing sealed stores in s under c.
func EncryptedAlloc(s *memory.Space, c *crypto.Cipher) Alloc {
	return func(n int) Store {
		return NewEncrypted(s, c, n)
	}
}
