package table

import (
	"sync"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/trace"
)

// SealedSize is the public width of one encrypted entry: plaintext plus
// nonce and MAC overhead.
const SealedSize = EncodedSize + crypto.Overhead

// Encrypted is a Store whose entries live sealed in public memory, one
// ciphertext record per entry. Every Get authenticates and decrypts;
// every Set re-encrypts under a fresh nonce, so overwriting an entry
// with its previous value is indistinguishable from a real update — the
// property that makes the sorting network's dummy write-backs safe
// (§3.5).
//
// The trace is emitted through a zero-width traced array that aliases
// the plain store's indices one-to-one, so an encrypted run's canonical
// trace is bit-identical to a plain run's. Range operations ride
// crypto.SealRange/OpenRange over the contiguous ciphertext region and
// pooled plaintext scratch: in steady state no call allocates.
type Encrypted struct {
	ev     *memory.Array[struct{}] // per-entry trace/cost emitter
	cipher *crypto.Cipher
	ct     []byte // len(e) contiguous SealedSize-byte records, shared across shards
}

// initChunk bounds the plaintext staging buffer used when initializing
// a sealed store, in entries.
const initChunk = 1024

// NewEncrypted allocates an encrypted store of n null entries in s,
// sealed under c. Every slot is initialized with a valid ciphertext of
// the zero entry so that Get before first Set authenticates. The
// initialization writes bypass the trace: like the allocation itself
// they are a fixed function of the (public) size n, and keeping them
// out of the event stream makes an encrypted run's trace identical to
// a plain run's.
func NewEncrypted(s *memory.Space, c *crypto.Cipher, n int) *Encrypted {
	e := &Encrypted{
		ev:     memory.Alloc[struct{}](s, n, SealedSize),
		cipher: c,
		ct:     make([]byte, n*SealedSize),
	}
	chunk := min(n, initChunk)
	p, zeros := getBuf(chunk * EncodedSize)
	defer putBuf(p)
	clear(zeros)
	for lo := 0; lo < n; lo += chunk {
		k := min(chunk, n-lo)
		c.SealRange(e.ct[lo*SealedSize:(lo+k)*SealedSize], zeros[:k*EncodedSize], EncodedSize)
	}
	return e
}

// Len returns the number of entries.
func (e *Encrypted) Len() int { return e.ev.Len() }

// rec returns entry i's ciphertext record.
func (e *Encrypted) rec(i int) []byte { return e.ct[i*SealedSize : (i+1)*SealedSize] }

// Get decrypts entry i. A failed authentication means the untrusted
// server tampered with memory; that is a fatal integrity violation for
// the run, so Get unwinds with a typed *Fault panic (ErrSealedAuth)
// recovered at the query runner's boundary.
func (e *Encrypted) Get(i int) Entry {
	e.ev.Get(i)
	var buf [EncodedSize]byte
	if err := e.cipher.Open(buf[:], e.rec(i)); err != nil {
		authFault("entry", err)
	}
	return DecodeEntry(buf[:])
}

// Set seals v under a fresh nonce and stores it at i.
func (e *Encrypted) Set(i int, v Entry) {
	e.ev.Set(i, struct{}{})
	var buf [EncodedSize]byte
	v.Encode(buf[:])
	e.cipher.Seal(e.rec(i), buf[:])
}

// bufPool pools plaintext staging buffers for the batched range
// operations of the sealed stores, so hot sorting rounds and scans do
// not allocate per call.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

func getBuf(n int) (*[]byte, []byte) {
	p := bufPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	return p, (*p)[:n]
}

func putBuf(p *[]byte) { bufPool.Put(p) }

// touches returns a zero-width slice for emitting an n-event trace run
// through a memory.Array[struct{}]; it performs no allocation (zero-size
// elements share the runtime's zero base).
func touches(n int) []struct{} { return make([]struct{}, n) }

// GetRange decrypts the run [lo, lo+len(dst)) into dst, emitting the
// per-index read events in ascending order; the ciphertexts are opened
// as one contiguous record range.
func (e *Encrypted) GetRange(lo int, dst []Entry) {
	e.ev.GetRange(lo, touches(len(dst)))
	if len(dst) == 0 {
		return
	}
	p, plain := getBuf(len(dst) * EncodedSize)
	defer putBuf(p)
	if err := e.cipher.OpenRange(plain, e.ct[lo*SealedSize:(lo+len(dst))*SealedSize], EncodedSize); err != nil {
		authFault("entry", err)
	}
	for k := range dst {
		dst[k] = DecodeEntry(plain[k*EncodedSize : (k+1)*EncodedSize])
	}
}

// SetRange seals src under fresh nonces and writes the run
// [lo, lo+len(src)) as one contiguous record range.
func (e *Encrypted) SetRange(lo int, src []Entry) {
	e.ev.SetRange(lo, touches(len(src)))
	if len(src) == 0 {
		return
	}
	p, plain := getBuf(len(src) * EncodedSize)
	defer putBuf(p)
	for k := range src {
		src[k].Encode(plain[k*EncodedSize : (k+1)*EncodedSize])
	}
	e.cipher.SealRange(e.ct[lo*SealedSize:(lo+len(src))*SealedSize], plain, EncodedSize)
}

// Traced reports whether accesses to the sealed storage are recorded.
func (e *Encrypted) Traced() bool { return e.ev.Traced() }

// Recorder returns the recorder the sealed storage feeds.
func (e *Encrypted) Recorder() trace.Recorder { return e.ev.Recorder() }

// Shard returns an alias of the store recording to rec, for parallel
// executors (see bitonic.Sharder); nil when the underlying memory
// cannot be sharded. The cipher and ciphertext region are shared —
// parallel lanes touch disjoint entries, hence disjoint byte ranges,
// and the cipher is safe for concurrent use.
func (e *Encrypted) Shard(rec trace.Recorder) any {
	res := e.ev.Shard(rec)
	if res == nil {
		return nil
	}
	return &Encrypted{ev: res.(*memory.Array[struct{}]), cipher: e.cipher, ct: e.ct}
}

// Alloc abstracts allocation of entry stores so the join can run over
// plain or encrypted memory without caring which.
type Alloc func(n int) Store

// PlainAlloc returns an Alloc producing plain traced arrays in s.
func PlainAlloc(s *memory.Space) Alloc {
	return func(n int) Store {
		return memory.Alloc[Entry](s, n, EncodedSize)
	}
}

// EncryptedAlloc returns an Alloc producing per-entry sealed stores in
// s under c.
func EncryptedAlloc(s *memory.Space, c *crypto.Cipher) Alloc {
	return func(n int) Store {
		return NewEncrypted(s, c, n)
	}
}
