package table

import (
	"sync"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/trace"
)

// DefaultSealedBlock is the default number of entries per sealed block
// of a BlockEncrypted store: large enough to amortize the per-record
// nonce and MAC across a batch, small enough that the read-modify-write
// a single Set performs stays cheap.
const DefaultSealedBlock = 16

// BlockEncrypted is a Store whose entries live sealed in public memory
// in blocks of B entries per ciphertext record: a k-entry range
// operation costs ⌈k/B⌉+1 crypto operations instead of k, which is
// what makes the sealed hot path batch-granular.
//
// The observable access pattern is unchanged: every logical entry
// access emits exactly the per-entry trace event of the plain store
// (same array identifier, same index, same order), so plain, per-entry
// sealed and block-sealed runs of the same computation produce
// bit-identical canonical traces. Physically the untrusted memory is
// read and written at block granularity; since block boundaries are a
// fixed public function of the entry index (block = index / B), the
// physical pattern is a deterministic function of the logical trace
// and leaks nothing beyond it.
//
// A Set (or a range write covering part of a block) re-seals the whole
// block: it opens the block, splices the new entries in, and seals it
// under a fresh nonce. Per-block mutexes make that read-modify-write
// atomic, so parallel lanes writing disjoint entry ranges that share a
// boundary block compose correctly; lanes lock blocks in ascending
// order, so there is no deadlock.
//
// The enclave cost model, like the trace, is charged at logical-entry
// granularity (SealedSize bytes per access, matching the per-entry
// store) by design: cost-modeled runs stay comparable across store
// granularities. It deliberately does not model the ~B× physical
// amplification of a point access against a block-sealed store.
type BlockEncrypted struct {
	ev *memory.Array[struct{}] // per-entry trace/cost emitter
	st *blockState
}

// blockState is the storage shared by a BlockEncrypted and its shards.
type blockState struct {
	cipher *crypto.Cipher
	b      int    // entries per block
	n      int    // logical entries
	pt     int    // plaintext bytes per block: b*EncodedSize
	unit   int    // sealed bytes per block: SealedLen(pt)
	ct     []byte // ⌈n/b⌉ contiguous sealed blocks
	locks  []sync.Mutex
}

// block returns block k's ciphertext record.
func (st *blockState) block(k int) []byte { return st.ct[k*st.unit : (k+1)*st.unit] }

// NewBlockEncrypted allocates a block-sealed store of n null entries in
// s, sealed under c, with b entries per block (b ≤ 0 selects
// DefaultSealedBlock). The final block is padded with zero entries to
// the full block width; the padding is sealed like everything else and
// never addressable through the Store interface. As with NewEncrypted,
// initialization bypasses the trace.
func NewBlockEncrypted(s *memory.Space, c *crypto.Cipher, n, b int) *BlockEncrypted {
	if b <= 0 {
		b = DefaultSealedBlock
	}
	nb := (n + b - 1) / b
	st := &blockState{
		cipher: c,
		b:      b,
		n:      n,
		pt:     b * EncodedSize,
		unit:   crypto.SealedLen(b * EncodedSize),
		ct:     make([]byte, nb*crypto.SealedLen(b*EncodedSize)),
		locks:  make([]sync.Mutex, nb),
	}
	chunk := min(nb, max(initChunk/b, 1))
	p, zeros := getBuf(chunk * st.pt)
	defer putBuf(p)
	clear(zeros)
	for k := 0; k < nb; k += chunk {
		m := min(chunk, nb-k)
		c.SealRange(st.ct[k*st.unit:(k+m)*st.unit], zeros[:m*st.pt], st.pt)
	}
	return &BlockEncrypted{
		ev: memory.Alloc[struct{}](s, n, SealedSize),
		st: st,
	}
}

// Len returns the number of logical entries.
func (e *BlockEncrypted) Len() int { return e.st.n }

// Block returns the store's entries-per-block granularity B.
func (e *BlockEncrypted) Block() int { return e.st.b }

// Get decrypts the block holding entry i and returns the entry. A
// failed authentication means the untrusted server tampered with
// memory; that is fatal for the run, so Get unwinds with a typed
// *Fault panic (ErrSealedAuth) that the query runner converts to an
// error at its boundary.
func (e *BlockEncrypted) Get(i int) Entry {
	e.ev.Get(i)
	st := e.st
	k := i / st.b
	p, plain := getBuf(st.pt)
	defer putBuf(p)
	st.locks[k].Lock()
	err := st.cipher.Open(plain, st.block(k))
	st.locks[k].Unlock()
	if err != nil {
		authFault("block", err)
	}
	off := (i - k*st.b) * EncodedSize
	return DecodeEntry(plain[off : off+EncodedSize])
}

// Set re-seals the block holding entry i with v spliced in, under a
// fresh nonce.
func (e *BlockEncrypted) Set(i int, v Entry) {
	e.ev.Set(i, struct{}{})
	st := e.st
	k := i / st.b
	p, plain := getBuf(st.pt)
	defer putBuf(p)
	st.locks[k].Lock()
	err := st.cipher.Open(plain, st.block(k))
	if err == nil {
		v.Encode(plain[(i-k*st.b)*EncodedSize : (i-k*st.b+1)*EncodedSize])
		st.cipher.Seal(st.block(k), plain)
	}
	st.locks[k].Unlock()
	if err != nil {
		authFault("block", err)
	}
}

// lockSpan locks blocks [k0, k1] in ascending order.
func (st *blockState) lockSpan(k0, k1 int) {
	for k := k0; k <= k1; k++ {
		st.locks[k].Lock()
	}
}

func (st *blockState) unlockSpan(k0, k1 int) {
	for k := k0; k <= k1; k++ {
		st.locks[k].Unlock()
	}
}

// GetRange decrypts the run [lo, lo+len(dst)) into dst, emitting the
// per-index read events in ascending order; the spanned blocks are
// opened as one contiguous record range.
func (e *BlockEncrypted) GetRange(lo int, dst []Entry) {
	e.ev.GetRange(lo, touches(len(dst)))
	if len(dst) == 0 {
		return
	}
	st := e.st
	k0, k1 := lo/st.b, (lo+len(dst)-1)/st.b
	p, plain := getBuf((k1 - k0 + 1) * st.pt)
	defer putBuf(p)
	st.lockSpan(k0, k1)
	err := st.cipher.OpenRange(plain, st.ct[k0*st.unit:(k1+1)*st.unit], st.pt)
	st.unlockSpan(k0, k1)
	if err != nil {
		authFault("block", err)
	}
	base := (lo - k0*st.b) * EncodedSize
	for j := range dst {
		dst[j] = DecodeEntry(plain[base+j*EncodedSize : base+(j+1)*EncodedSize])
	}
}

// SetRange re-seals the blocks spanned by [lo, lo+len(src)) with src
// spliced in, each block under a fresh nonce. Fully covered blocks are
// sealed directly; a partially covered boundary block is first opened
// so its uncovered entries survive. The uncovered tail of the table's
// final block is padding, which is always the zero entry, so covering
// through the end of the table needs no read-back.
func (e *BlockEncrypted) SetRange(lo int, src []Entry) {
	e.ev.SetRange(lo, touches(len(src)))
	if len(src) == 0 {
		return
	}
	st := e.st
	hi := lo + len(src)
	k0, k1 := lo/st.b, (hi-1)/st.b
	p, plain := getBuf((k1 - k0 + 1) * st.pt)
	defer putBuf(p)
	st.lockSpan(k0, k1)
	err := st.fillBoundaries(plain, lo, hi, k0, k1)
	if err == nil {
		base := (lo - k0*st.b) * EncodedSize
		for j := range src {
			src[j].Encode(plain[base+j*EncodedSize : base+(j+1)*EncodedSize])
		}
		st.cipher.SealRange(st.ct[k0*st.unit:(k1+1)*st.unit], plain, st.pt)
	}
	st.unlockSpan(k0, k1)
	if err != nil {
		authFault("block", err)
	}
}

// fillBoundaries prepares the plaintext staging buffer for a write of
// [lo, hi) spanning blocks [k0, k1]: partially covered boundary blocks
// are opened into place, and the padding tail of the table's final
// block is zeroed. Interior blocks are fully covered and need no
// read-back. Callers hold the span's locks.
func (st *blockState) fillBoundaries(plain []byte, lo, hi, k0, k1 int) error {
	headPartial := lo%st.b != 0
	if headPartial {
		if err := st.cipher.Open(plain[:st.pt], st.block(k0)); err != nil {
			return err
		}
	}
	if hi%st.b == 0 || (k1 == k0 && headPartial) {
		return nil
	}
	tail := plain[(k1-k0)*st.pt : (k1-k0+1)*st.pt]
	if hi < st.n {
		return st.cipher.Open(tail, st.block(k1))
	}
	// hi == n: everything past it in block k1 is padding — zero entries
	// by construction — so stage zeros instead of reading back.
	clear(tail[(hi-k1*st.b)*EncodedSize:])
	return nil
}

// Traced reports whether accesses to the sealed storage are recorded.
func (e *BlockEncrypted) Traced() bool { return e.ev.Traced() }

// Recorder returns the recorder the sealed storage feeds.
func (e *BlockEncrypted) Recorder() trace.Recorder { return e.ev.Recorder() }

// Shard returns an alias of the store recording to rec, for parallel
// executors; nil when the underlying memory cannot be sharded. The
// block state — cipher, ciphertexts and per-block locks — is shared.
func (e *BlockEncrypted) Shard(rec trace.Recorder) any {
	res := e.ev.Shard(rec)
	if res == nil {
		return nil
	}
	return &BlockEncrypted{ev: res.(*memory.Array[struct{}]), st: e.st}
}

// BlockEncryptedAlloc returns an Alloc producing block-sealed stores in
// s under c with b entries per block (b ≤ 0 selects
// DefaultSealedBlock).
func BlockEncryptedAlloc(s *memory.Space, c *crypto.Cipher, b int) Alloc {
	return func(n int) Store {
		return NewBlockEncrypted(s, c, n, b)
	}
}
