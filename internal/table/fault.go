package table

import (
	"errors"
	"fmt"
)

// Typed storage-fault sentinels. Auth failures and spill IO errors on
// the oblivious hot path cannot be returned through the Store
// interface (its methods have no error results — by design, so the
// data-oblivious inner loops stay branch-free), so they unwind as a
// *Fault panic instead of a raw string. The query runner recovers the
// *Fault at its boundary and returns the wrapped error, which
// errors.Is-matches one of these sentinels: a tampered block or a
// failed spill disk kills one query, not the process.
var (
	// ErrSealedAuth: a sealed block or entry failed authentication —
	// the untrusted memory or spill file was tampered with.
	ErrSealedAuth = errors.New("table: sealed data authentication failed")

	// ErrSpillIO: reading or writing a spill file failed (EIO, ENOSPC,
	// short write, ...).
	ErrSpillIO = errors.New("table: spill file I/O failed")
)

// Fault is the panic payload carrying a typed storage fault across the
// error-free Store interface. Only the query runner's boundary recover
// (and the worker pool's panic barrier) should see it.
type Fault struct {
	Err error
}

func (f *Fault) Error() string { return f.Err.Error() }
func (f *Fault) Unwrap() error { return f.Err }

// authFault unwinds a sealed-data authentication failure. Both the
// sentinel and the cause stay errors.Is-matchable.
func authFault(what string, err error) {
	panic(&Fault{Err: fmt.Errorf("%w: %s: %w", ErrSealedAuth, what, err)})
}

// ioFault unwinds a spill-file IO failure, keeping the underlying
// errno (EIO, ENOSPC, ...) matchable through the wrap.
func ioFault(op string, err error) {
	panic(&Fault{Err: fmt.Errorf("%w: %s: %w", ErrSpillIO, op, err)})
}

// AsFault returns the typed error carried by a recovered panic value,
// or (nil, false) when r is not a storage fault. Recover boundaries
// use it to translate the panic back into an error result.
func AsFault(r any) (error, bool) {
	if f, ok := r.(*Fault); ok {
		return f.Err, true
	}
	return nil, false
}
