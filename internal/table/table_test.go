package table

import (
	"testing"
	"testing/quick"

	"oblivjoin/internal/obliv"
)

func entryFixture() Entry {
	return Entry{
		J: 42, D: MustData("payload"), TID: 2,
		A1: 3, A2: 5, F: 17, II: 9, Null: 1,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := entryFixture()
	var buf [EncodedSize]byte
	e.Encode(buf[:])
	got := DecodeEntry(buf[:])
	if got != e {
		t.Fatalf("round trip: got %+v, want %+v", got, e)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(j, tid, a1, a2, fdest, ii uint64, null bool, d Data) bool {
		e := Entry{J: j, D: d, TID: tid, A1: a1, A2: a2, F: fdest, II: ii, Null: obliv.Bool(null)}
		var buf [EncodedSize]byte
		e.Encode(buf[:])
		return DecodeEntry(buf[:]) == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodePanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := entryFixture()
	e.Encode(make([]byte, EncodedSize-1))
}

func TestMakeData(t *testing.T) {
	d, err := MakeData("abc")
	if err != nil {
		t.Fatal(err)
	}
	if DataString(d) != "abc" {
		t.Fatalf("DataString = %q", DataString(d))
	}
	if _, err := MakeData("this string is definitely longer than sixteen bytes"); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestMustDataPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustData("a very long string exceeding the payload")
}

func TestCondSwapEntry(t *testing.T) {
	a := entryFixture()
	b := Entry{J: 1, D: MustData("other"), TID: 1}
	a0, b0 := a, b
	CondSwapEntry(0, &a, &b)
	if a != a0 || b != b0 {
		t.Fatal("CondSwapEntry(0) mutated entries")
	}
	CondSwapEntry(1, &a, &b)
	if a != b0 || b != a0 {
		t.Fatal("CondSwapEntry(1) did not swap")
	}
}

func TestCondCopyEntry(t *testing.T) {
	dst := entryFixture()
	src := Entry{J: 7, D: MustData("src"), TID: 1, Null: 0}
	orig := dst
	CondCopyEntry(0, &dst, &src)
	if dst != orig {
		t.Fatal("CondCopyEntry(0) mutated dst")
	}
	CondCopyEntry(1, &dst, &src)
	if dst != src {
		t.Fatal("CondCopyEntry(1) did not copy")
	}
}

func TestLessJTID(t *testing.T) {
	tests := []struct {
		x, y Entry
		want uint64
	}{
		{Entry{J: 1, TID: 2}, Entry{J: 2, TID: 1}, 1},
		{Entry{J: 2, TID: 1}, Entry{J: 1, TID: 2}, 0},
		{Entry{J: 1, TID: 1}, Entry{J: 1, TID: 2}, 1},
		{Entry{J: 1, TID: 2}, Entry{J: 1, TID: 1}, 0},
		{Entry{J: 1, TID: 1}, Entry{J: 1, TID: 1}, 0},
	}
	for i, tt := range tests {
		if got := LessJTID(tt.x, tt.y); got != tt.want {
			t.Errorf("case %d: LessJTID = %d, want %d", i, got, tt.want)
		}
	}
}

func TestLessJTIDMatchesReference(t *testing.T) {
	f := func(j1, t1, j2, t2 uint8) bool {
		x := Entry{J: uint64(j1), TID: uint64(t1)}
		y := Entry{J: uint64(j2), TID: uint64(t2)}
		want := obliv.Bool(x.J < y.J || (x.J == y.J && x.TID < y.TID))
		return LessJTID(x, y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLessTIDJDMatchesReference(t *testing.T) {
	f := func(t1, j1, t2, j2 uint8, d1, d2 [2]byte) bool {
		x := Entry{TID: uint64(t1), J: uint64(j1)}
		y := Entry{TID: uint64(t2), J: uint64(j2)}
		copy(x.D[:], d1[:])
		copy(y.D[:], d2[:])
		want := obliv.Bool(
			x.TID < y.TID ||
				(x.TID == y.TID && x.J < y.J) ||
				(x.TID == y.TID && x.J == y.J && string(x.D[:]) < string(y.D[:])))
		return LessTIDJD(x, y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLessNullF(t *testing.T) {
	nonNull := Entry{F: 100, Null: 0}
	null := Entry{F: 1, Null: 1}
	if LessNullF(nonNull, null) != 1 {
		t.Fatal("non-null entry must order before null")
	}
	if LessNullF(null, nonNull) != 0 {
		t.Fatal("null entry must order after non-null")
	}
	a, b := Entry{F: 1}, Entry{F: 2}
	if LessNullF(a, b) != 1 || LessNullF(b, a) != 0 {
		t.Fatal("non-null entries must order by F")
	}
}

func TestLessFAndJII(t *testing.T) {
	if LessF(Entry{F: 1}, Entry{F: 2}) != 1 || LessF(Entry{F: 2}, Entry{F: 2}) != 0 {
		t.Fatal("LessF wrong")
	}
	f := func(jx, ix, jy, iy uint8) bool {
		x := Entry{J: uint64(jx), II: uint64(ix)}
		y := Entry{J: uint64(jy), II: uint64(iy)}
		want := obliv.Bool(x.J < y.J || (x.J == y.J && x.II < y.II))
		return LessJII(x, y) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComparatorsAreStrict(t *testing.T) {
	// A strict weak order must be irreflexive under every comparator.
	e := entryFixture()
	for name, less := range map[string]func(x, y Entry) uint64{
		"LessJTID": LessJTID, "LessTIDJD": LessTIDJD,
		"LessF": LessF, "LessNullF": LessNullF, "LessJII": LessJII,
	} {
		if less(e, e) != 0 {
			t.Errorf("%s(e, e) != 0", name)
		}
	}
}

func TestDataStringStopsAtPadding(t *testing.T) {
	var d Data
	copy(d[:], "ab\x00cd")
	// Trailing zeros trimmed, interior zeros preserved.
	if got := DataString(d); got != "ab\x00cd" {
		t.Fatalf("DataString = %q", got)
	}
}
