package table

import (
	"errors"
	"testing"

	"oblivjoin/internal/fault"
	"oblivjoin/internal/memory"
)

// catchFault runs fn and returns the typed fault error it panicked
// with, or nil when it returned normally. A panic of any other kind
// fails the test — the spill path must never leak raw panics.
func catchFault(t *testing.T, fn func()) (ferr error) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		var ok bool
		if ferr, ok = AsFault(r); !ok {
			t.Fatalf("non-typed panic from spill path: %v", r)
		}
	}()
	fn()
	return nil
}

func TestSpillWriteFaultTyped(t *testing.T) {
	for _, tc := range []struct {
		name string
		rule fault.Rule
	}{
		{"enospc", fault.Rule{Op: fault.OpWrite, Err: fault.ENOSPC}},
		{"eio", fault.Rule{Op: fault.OpWrite, Err: fault.EIO}},
		{"short", fault.Rule{Op: fault.OpWrite, Err: fault.ENOSPC, ShortBy: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := fault.NewInjector(nil, 11)
			s := memory.NewSpace(nil, nil)
			st, err := NewSpillFS(s, newCipher(t), in, t.TempDir(), 2*DefaultSealedBlock, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Remove()
			in.Arm(tc.rule)
			ferr := catchFault(t, func() { st.Set(0, entryAt(0)) })
			if !errors.Is(ferr, ErrSpillIO) {
				t.Fatalf("fault = %v, want ErrSpillIO", ferr)
			}
			if !fault.IsInjectable(ferr) {
				t.Fatalf("fault %v does not carry the injected errno", ferr)
			}
			in.Disarm()
			if tc.rule.ShortBy > 0 {
				// A short write tore the block — a prefix of the new
				// ciphertext over the old — so damage to sealed bytes is
				// detected typed on the next access. Read-modify-write
				// can't heal a torn block (the read-back faults first);
				// a full-block overwrite, which stages no read-back,
				// can.
				ferr := catchFault(t, func() { st.Get(0) })
				if !errors.Is(ferr, ErrSealedAuth) {
					t.Fatalf("torn block = %v, want ErrSealedAuth", ferr)
				}
				ents := make([]Entry, DefaultSealedBlock)
				for i := range ents {
					ents[i] = entryAt(i)
				}
				st.SetRange(0, ents)
			} else {
				// Nothing reached the disk: once the schedule clears,
				// the store serves again as-is.
				st.Set(0, entryAt(0))
			}
			if got := st.Get(0); got != entryAt(0) {
				t.Fatalf("post-fault round trip: %+v", got)
			}
		})
	}
}

func TestSpillReadFaultTyped(t *testing.T) {
	in := fault.NewInjector(nil, 11)
	s := memory.NewSpace(nil, nil)
	st, err := NewSpillFS(s, newCipher(t), in, t.TempDir(), 2*DefaultSealedBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Remove()
	st.Set(0, entryAt(0))
	in.Arm(fault.Rule{Op: fault.OpRead, Err: fault.EIO})
	ferr := catchFault(t, func() { st.Get(0) })
	if !errors.Is(ferr, ErrSpillIO) || !errors.Is(ferr, fault.EIO) {
		t.Fatalf("fault = %v, want ErrSpillIO wrapping EIO", ferr)
	}
}

// TestSpillTamperAuthTyped: a flipped ciphertext bit on the read path
// surfaces as a typed ErrSealedAuth fault, not a raw panic — the
// integrity half of the containment story.
func TestSpillTamperAuthTyped(t *testing.T) {
	in := fault.NewInjector(nil, 11)
	s := memory.NewSpace(nil, nil)
	st, err := NewSpillFS(s, newCipher(t), in, t.TempDir(), 2*DefaultSealedBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Remove()
	st.Set(0, entryAt(0))
	in.Arm(fault.Rule{Op: fault.OpRead, FlipBit: true})
	ferr := catchFault(t, func() { st.Get(0) })
	if !errors.Is(ferr, ErrSealedAuth) {
		t.Fatalf("fault = %v, want ErrSealedAuth", ferr)
	}
}

// TestSpillerAllocFaultReturnsError: Alloc's file creation is an
// ordinary error path (no store exists yet to panic from), so an
// injected open failure must come back as an error, not a panic.
func TestSpillerAllocFaultReturnsError(t *testing.T) {
	in := fault.NewInjector(nil, 11)
	in.Arm(fault.Rule{Op: fault.OpOpen, Err: fault.ENOSPC})
	s := memory.NewSpace(nil, nil)
	sp := NewSpillerFS(s, newCipher(t), in, t.TempDir(), 0, &Gauge{})
	if _, err := sp.Alloc(8); !errors.Is(err, fault.ENOSPC) {
		t.Fatalf("Alloc under ENOSPC = %v, want ENOSPC", err)
	}
}
