package table

import (
	"bytes"
	"testing"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/trace"
)

func newCipher(t *testing.T) *crypto.Cipher {
	t.Helper()
	c, _, err := crypto.NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestEncryptedRoundTrip(t *testing.T) {
	s := memory.NewSpace(nil, nil)
	enc := NewEncrypted(s, newCipher(t), 4)
	e := entryFixture()
	enc.Set(2, e)
	if got := enc.Get(2); got != e {
		t.Fatalf("Get = %+v, want %+v", got, e)
	}
}

func TestEncryptedZeroInitialized(t *testing.T) {
	s := memory.NewSpace(nil, nil)
	enc := NewEncrypted(s, newCipher(t), 3)
	var zero Entry
	for i := 0; i < 3; i++ {
		if got := enc.Get(i); got != zero {
			t.Fatalf("slot %d = %+v, want zero entry", i, got)
		}
	}
}

func TestEncryptedCiphertextChangesOnRewrite(t *testing.T) {
	s := memory.NewSpace(nil, nil)
	enc := NewEncrypted(s, newCipher(t), 1)
	e := entryFixture()
	enc.Set(0, e)
	ct1 := append([]byte(nil), enc.rec(0)...)
	enc.Set(0, e) // same logical value
	if bytes.Equal(ct1, enc.rec(0)) {
		t.Fatal("rewriting identical entry produced identical ciphertext")
	}
	if enc.Get(0) != e {
		t.Fatal("plaintext lost across rewrite")
	}
}

func TestEncryptedPanicsOnTamper(t *testing.T) {
	s := memory.NewSpace(nil, nil)
	enc := NewEncrypted(s, newCipher(t), 1)
	enc.ct[5] ^= 0xff
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on tampered ciphertext")
		}
	}()
	enc.Get(0)
}

func TestEncryptedEmitsTraceEvents(t *testing.T) {
	log := trace.NewLog()
	s := memory.NewSpace(log, nil)
	enc := NewEncrypted(s, newCipher(t), 2)
	before := log.Len()
	enc.Set(1, Entry{J: 5})
	enc.Get(1)
	if log.Len() != before+2 {
		t.Fatalf("expected 2 events, got %d", log.Len()-before)
	}
}

func TestAllocators(t *testing.T) {
	s := memory.NewSpace(nil, nil)
	plain := PlainAlloc(s)(5)
	if plain.Len() != 5 {
		t.Fatalf("plain Len = %d", plain.Len())
	}
	plain.Set(0, Entry{J: 1})
	if plain.Get(0).J != 1 {
		t.Fatal("plain store broken")
	}

	encA := EncryptedAlloc(s, newCipher(t))(3)
	if encA.Len() != 3 {
		t.Fatalf("encrypted Len = %d", encA.Len())
	}
	encA.Set(1, Entry{J: 2})
	if encA.Get(1).J != 2 {
		t.Fatal("encrypted store broken")
	}
}

func TestSealedSizeConstant(t *testing.T) {
	if SealedSize != EncodedSize+crypto.Overhead {
		t.Fatalf("SealedSize = %d", SealedSize)
	}
}

func TestEncryptedRangeRoundTrip(t *testing.T) {
	s := memory.NewSpace(nil, nil)
	enc := NewEncrypted(s, newCipher(t), 8)
	src := make([]Entry, 5)
	for i := range src {
		src[i] = Entry{J: uint64(i + 1), TID: 2}
	}
	enc.SetRange(2, src)
	dst := make([]Entry, 5)
	enc.GetRange(2, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, dst[i], src[i])
		}
		if got := enc.Get(2 + i); got != src[i] {
			t.Fatalf("Get(%d) = %+v, want %+v", 2+i, got, src[i])
		}
	}
}

func TestEncryptedRangeEventsMatchElementLoop(t *testing.T) {
	c := newCipher(t)
	run := func(ranged bool) *trace.Log {
		log := trace.NewLog()
		s := memory.NewSpace(log, nil)
		enc := NewEncrypted(s, c, 6)
		src := make([]Entry, 4)
		if ranged {
			enc.SetRange(1, src)
			enc.GetRange(1, make([]Entry, 4))
		} else {
			for i := range src {
				enc.Set(1+i, src[i])
			}
			for i := 0; i < 4; i++ {
				enc.Get(1 + i)
			}
		}
		return log
	}
	a, b := run(true), run(false)
	if !a.Equal(b) {
		t.Fatalf("range events diverge from element loop at %d", a.FirstDivergence(b))
	}
}

func TestEncryptedShard(t *testing.T) {
	parent := trace.NewLog()
	s := memory.NewSpace(parent, nil)
	enc := NewEncrypted(s, newCipher(t), 4)
	before := parent.Len()
	buf := &trace.Buffer{}
	res := enc.Shard(buf)
	if res == nil {
		t.Fatal("Shard refused without a cost model")
	}
	sh := res.(*Encrypted)
	want := entryFixture()
	sh.Set(3, want)
	if got := enc.Get(3); got != want {
		t.Fatal("shard write not visible through parent store")
	}
	if buf.Len() != 1 || parent.Len() != before+1 {
		t.Fatalf("buffered=%d parent-delta=%d, want 1/1", buf.Len(), parent.Len()-before)
	}
}
