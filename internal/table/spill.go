package table

import (
	"sync"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/fault"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/trace"
)

// Spill is a Store whose sealed blocks live in a temporary file instead
// of the heap: the on-disk unit is exactly a BlockEncrypted ciphertext
// block (SealRange over b entries), so nothing but ciphertext and MACs
// ever touches disk, and an intermediate larger than the run's memory
// budget costs O(batch) heap. The logical trace is identical to every
// other store — one per-entry event per access, block boundaries a
// fixed public function of the index — so spilled and resident runs of
// the same plan produce bit-identical canonical traces.
//
// I/O uses ReadAt/WriteAt under the same ascending per-block mutexes as
// BlockEncrypted, so parallel lanes over disjoint entry ranges compose.
// A file error is fatal for the run, like an authentication failure,
// and unwinds as a typed *Fault panic (ErrSpillIO) that the query
// runner converts to an error; the file is removed by the cleanup hook
// registered with the run's Gauge (or by Remove).
type Spill struct {
	ev *memory.Array[struct{}] // per-entry trace/cost emitter
	st *spillState
}

// spillState is the storage shared by a Spill and its shards.
type spillState struct {
	cipher *crypto.Cipher
	fs     fault.FS
	f      fault.File
	path   string
	b      int // entries per block
	n      int // logical entries
	nb     int // blocks
	pt     int // plaintext bytes per block
	unit   int // sealed bytes per block
	locks  []sync.Mutex
	once   sync.Once // guards file close+remove
}

// readBlocks reads sealed blocks [k0, k1] into ct. The caller faults
// on the returned error only after releasing the span's locks —
// unwinding with a block mutex held would strand every later access
// to that block behind a lock nobody can release.
func (st *spillState) readBlocks(ct []byte, k0, k1 int) error {
	_, err := st.f.ReadAt(ct[:(k1-k0+1)*st.unit], int64(k0)*int64(st.unit))
	return err
}

// writeBlocks writes sealed blocks [k0, k1] from ct; same unlock-
// before-fault contract as readBlocks.
func (st *spillState) writeBlocks(ct []byte, k0, k1 int) error {
	_, err := st.f.WriteAt(ct[:(k1-k0+1)*st.unit], int64(k0)*int64(st.unit))
	return err
}

// NewSpill allocates a spill store of n null entries in s, sealed under
// c with b entries per block (b ≤ 0 selects DefaultSealedBlock), backed
// by a fresh temporary file in dir ("" selects the system temp
// directory). As with the resident sealed stores, every block is
// initialized to a valid ciphertext of zero entries and initialization
// bypasses the trace.
func NewSpill(s *memory.Space, c *crypto.Cipher, dir string, n, b int) (*Spill, error) {
	return NewSpillFS(s, c, nil, dir, n, b)
}

// NewSpillFS is NewSpill over an explicit filesystem seam (nil selects
// the real OS) — the fault-injection entry point.
func NewSpillFS(s *memory.Space, c *crypto.Cipher, fsys fault.FS, dir string, n, b int) (*Spill, error) {
	if b <= 0 {
		b = DefaultSealedBlock
	}
	fsys = fault.Or(fsys)
	f, err := fsys.CreateTemp(dir, "oblivspill-*.seal")
	if err != nil {
		return nil, err
	}
	nb := (n + b - 1) / b
	st := &spillState{
		cipher: c,
		fs:     fsys,
		f:      f,
		path:   f.Name(),
		b:      b,
		n:      n,
		nb:     nb,
		pt:     b * EncodedSize,
		unit:   crypto.SealedLen(b * EncodedSize),
		locks:  make([]sync.Mutex, nb),
	}
	chunk := min(nb, max(initChunk/b, 1))
	p, zeros := getBuf(chunk * st.pt)
	defer putBuf(p)
	clear(zeros)
	cp, ct := getBuf(chunk * st.unit)
	defer putBuf(cp)
	for k := 0; k < nb; k += chunk {
		m := min(chunk, nb-k)
		c.SealRange(ct[:m*st.unit], zeros[:m*st.pt], st.pt)
		if _, err := f.WriteAt(ct[:m*st.unit], int64(k)*int64(st.unit)); err != nil {
			st.Remove()
			return nil, err
		}
	}
	return &Spill{ev: memory.Alloc[struct{}](s, n, SealedSize), st: st}, nil
}

// Len returns the number of logical entries.
func (e *Spill) Len() int { return e.st.n }

// Block returns the store's entries-per-block granularity B.
func (e *Spill) Block() int { return e.st.b }

// Path returns the backing file's path; for tests and diagnostics.
func (e *Spill) Path() string { return e.st.path }

// DiskBytes returns the sealed size of the backing file.
func (e *Spill) DiskBytes() int64 { return int64(e.st.nb) * int64(e.st.unit) }

// Remove closes and deletes the backing file. Idempotent; the gauge's
// release hook calls it when a streaming stage (or the run's teardown)
// is done with the store.
func (e *Spill) Remove() { e.st.Remove() }

func (st *spillState) Remove() {
	st.once.Do(func() {
		st.f.Close()
		st.fs.Remove(st.path)
	})
}

// Get reads, authenticates and decrypts the block holding entry i.
func (e *Spill) Get(i int) Entry {
	e.ev.Get(i)
	st := e.st
	k := i / st.b
	p, plain := getBuf(st.pt)
	defer putBuf(p)
	cp, ct := getBuf(st.unit)
	defer putBuf(cp)
	st.locks[k].Lock()
	var err error
	ioErr := st.readBlocks(ct, k, k)
	if ioErr == nil {
		err = st.cipher.Open(plain, ct[:st.unit])
	}
	st.locks[k].Unlock()
	if ioErr != nil {
		ioFault("read", ioErr)
	}
	if err != nil {
		authFault("block", err)
	}
	off := (i - k*st.b) * EncodedSize
	return DecodeEntry(plain[off : off+EncodedSize])
}

// Set re-seals the block holding entry i with v spliced in, under a
// fresh nonce.
func (e *Spill) Set(i int, v Entry) {
	e.ev.Set(i, struct{}{})
	st := e.st
	k := i / st.b
	p, plain := getBuf(st.pt)
	defer putBuf(p)
	cp, ct := getBuf(st.unit)
	defer putBuf(cp)
	st.locks[k].Lock()
	var err error
	ioOp := "read"
	ioErr := st.readBlocks(ct, k, k)
	if ioErr == nil {
		err = st.cipher.Open(plain, ct[:st.unit])
		if err == nil {
			v.Encode(plain[(i-k*st.b)*EncodedSize : (i-k*st.b+1)*EncodedSize])
			st.cipher.Seal(ct[:st.unit], plain)
			ioOp = "write"
			ioErr = st.writeBlocks(ct, k, k)
		}
	}
	st.locks[k].Unlock()
	if ioErr != nil {
		ioFault(ioOp, ioErr)
	}
	if err != nil {
		authFault("block", err)
	}
}

func (st *spillState) lockSpan(k0, k1 int) {
	for k := k0; k <= k1; k++ {
		st.locks[k].Lock()
	}
}

func (st *spillState) unlockSpan(k0, k1 int) {
	for k := k0; k <= k1; k++ {
		st.locks[k].Unlock()
	}
}

// GetRange decrypts the run [lo, lo+len(dst)) into dst, emitting the
// per-index read events in ascending order; the spanned blocks are read
// and opened as one contiguous record range.
func (e *Spill) GetRange(lo int, dst []Entry) {
	e.ev.GetRange(lo, touches(len(dst)))
	if len(dst) == 0 {
		return
	}
	st := e.st
	k0, k1 := lo/st.b, (lo+len(dst)-1)/st.b
	p, plain := getBuf((k1 - k0 + 1) * st.pt)
	defer putBuf(p)
	cp, ct := getBuf((k1 - k0 + 1) * st.unit)
	defer putBuf(cp)
	st.lockSpan(k0, k1)
	var err error
	ioErr := st.readBlocks(ct, k0, k1)
	if ioErr == nil {
		err = st.cipher.OpenRange(plain, ct[:(k1-k0+1)*st.unit], st.pt)
	}
	st.unlockSpan(k0, k1)
	if ioErr != nil {
		ioFault("read", ioErr)
	}
	if err != nil {
		authFault("block", err)
	}
	base := (lo - k0*st.b) * EncodedSize
	for j := range dst {
		dst[j] = DecodeEntry(plain[base+j*EncodedSize : base+(j+1)*EncodedSize])
	}
}

// SetRange re-seals the blocks spanned by [lo, lo+len(src)) with src
// spliced in, each under a fresh nonce; boundary handling matches
// BlockEncrypted (partial boundary blocks are read back, the final
// block's padding tail is known-zero).
func (e *Spill) SetRange(lo int, src []Entry) {
	e.ev.SetRange(lo, touches(len(src)))
	if len(src) == 0 {
		return
	}
	st := e.st
	hi := lo + len(src)
	k0, k1 := lo/st.b, (hi-1)/st.b
	p, plain := getBuf((k1 - k0 + 1) * st.pt)
	defer putBuf(p)
	cp, ct := getBuf((k1 - k0 + 1) * st.unit)
	defer putBuf(cp)
	st.lockSpan(k0, k1)
	ioOp := "read"
	ioErr, err := st.fillBoundaries(plain, ct, lo, hi, k0, k1)
	if ioErr == nil && err == nil {
		base := (lo - k0*st.b) * EncodedSize
		for j := range src {
			src[j].Encode(plain[base+j*EncodedSize : base+(j+1)*EncodedSize])
		}
		st.cipher.SealRange(ct[:(k1-k0+1)*st.unit], plain, st.pt)
		ioOp = "write"
		ioErr = st.writeBlocks(ct, k0, k1)
	}
	st.unlockSpan(k0, k1)
	if ioErr != nil {
		ioFault(ioOp, ioErr)
	}
	if err != nil {
		authFault("block", err)
	}
}

// fillBoundaries prepares the plaintext staging buffer for a write of
// [lo, hi) spanning blocks [k0, k1], reading partially covered boundary
// blocks back from disk. Callers hold the span's locks; ct is scratch
// of at least one unit. IO and authentication failures come back as
// separate errors so the caller can fault with the right sentinel
// after unlocking.
func (st *spillState) fillBoundaries(plain, ct []byte, lo, hi, k0, k1 int) (ioErr, authErr error) {
	headPartial := lo%st.b != 0
	if headPartial {
		if ioErr = st.readBlocks(ct, k0, k0); ioErr != nil {
			return
		}
		if authErr = st.cipher.Open(plain[:st.pt], ct[:st.unit]); authErr != nil {
			return
		}
	}
	if hi%st.b == 0 || (k1 == k0 && headPartial) {
		return
	}
	tail := plain[(k1-k0)*st.pt : (k1-k0+1)*st.pt]
	if hi < st.n {
		if ioErr = st.readBlocks(ct, k1, k1); ioErr != nil {
			return
		}
		authErr = st.cipher.Open(tail, ct[:st.unit])
		return
	}
	// hi == n: everything past it in block k1 is padding — zero entries
	// by construction — so stage zeros instead of reading back.
	clear(tail[(hi-k1*st.b)*EncodedSize:])
	return
}

// Traced reports whether accesses to the spilled storage are recorded.
func (e *Spill) Traced() bool { return e.ev.Traced() }

// Recorder returns the recorder the spilled storage feeds.
func (e *Spill) Recorder() trace.Recorder { return e.ev.Recorder() }

// Shard returns an alias of the store recording to rec, for parallel
// executors; nil when the underlying memory cannot be sharded. The
// spill state — cipher, file and per-block locks — is shared.
func (e *Spill) Shard(rec trace.Recorder) any {
	res := e.ev.Shard(rec)
	if res == nil {
		return nil
	}
	return &Spill{ev: res.(*memory.Array[struct{}]), st: e.st}
}

// Spiller allocates spill stores for one run: one directory, one
// cipher, one block width, one gauge. The gauge's cleanup hooks delete
// each backing file when the store is released (or at run teardown).
type Spiller struct {
	space  *memory.Space
	cipher *crypto.Cipher
	fs     fault.FS
	dir    string
	block  int
	gauge  *Gauge
}

// NewSpiller returns a Spiller sealing blocks of b entries under c into
// dir ("" selects the system temp directory).
func NewSpiller(s *memory.Space, c *crypto.Cipher, dir string, b int, g *Gauge) *Spiller {
	return NewSpillerFS(s, c, nil, dir, b, g)
}

// NewSpillerFS is NewSpiller over an explicit filesystem seam (nil
// selects the real OS) — the fault-injection entry point.
func NewSpillerFS(s *memory.Space, c *crypto.Cipher, fsys fault.FS, dir string, b int, g *Gauge) *Spiller {
	if b <= 0 {
		b = DefaultSealedBlock
	}
	return &Spiller{space: s, cipher: c, fs: fault.Or(fsys), dir: dir, block: b, gauge: g}
}

// Alloc allocates an n-entry spill store, registering its cleanup with
// the spiller's gauge. Spill stores keep only scratch on the heap, so
// the tracked heap footprint is zero; the on-disk bytes are recorded as
// spill statistics.
func (sp *Spiller) Alloc(n int) (Store, error) {
	st, err := NewSpillFS(sp.space, sp.cipher, sp.fs, sp.dir, n, sp.block)
	if err != nil {
		return nil, err
	}
	sp.gauge.Track(st, 0, st.Remove)
	sp.gauge.Spilled(st.DiskBytes())
	return st, nil
}

// BudgetAlloc returns an Alloc that predicts each store's heap
// footprint with predict and diverts the allocation to sp when it
// would push the gauge's live bytes over budget — the automatic
// spill-selection policy of the memory-budgeted engine. A spill
// allocation failure (e.g. an unwritable spill directory) falls back
// to the in-memory store: the budget is a resource target, not a
// correctness property, and the failure is visible in the gauge's
// spill counters staying flat.
func BudgetAlloc(base Alloc, sp *Spiller, g *Gauge, budget int64, predict func(n int) int64) Alloc {
	return func(n int) Store {
		if g.Live()+predict(n) > budget {
			if st, err := sp.Alloc(n); err == nil {
				return st
			}
		}
		return base(n)
	}
}
