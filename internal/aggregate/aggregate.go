// Package aggregate implements oblivious grouping aggregation, the
// extension the paper's §7 singles out: "Grouping aggregations over
// joins could be computed using fewer sorting steps than a full join
// would require".
//
// Two operators are provided:
//
//   - GroupBy: oblivious GROUP BY over (key, value) items — sort by key,
//     two branch-free linear scans in the style of Fill-Dimensions, and
//     an oblivious compaction of the per-group boundary entries. The
//     access pattern depends only on the input length and the number of
//     groups (the operator's public output size).
//
//   - JoinGroupStats: per-group statistics of a join T1 ⋈ T2 — the
//     group dimensions α1, α2 and the pair count α1·α2 — computed from
//     Augment-Tables alone, in O(n log² n), without materializing the
//     m-row join. This is exactly the §7 observation: COUNT-style
//     aggregations over a join need the dimensions, not the expansion.
//
// Like internal/ops, every operator takes the pipeline's *core.Config:
// entry storage comes from cfg.Alloc (plain or sealed), sorts run
// through the configured network at the configured parallelism, and
// the carry scans execute on the blocked scan engine, so recorded
// traces are canonical at every parallelism degree.
package aggregate

import (
	"encoding/binary"
	"math"

	"oblivjoin/internal/compaction"
	"oblivjoin/internal/core"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/table"
)

// Item is one input record of GroupBy.
type Item struct {
	K uint64 // group key
	V uint64 // value
}

// Group is one output record of GroupBy: the key and its aggregates.
type Group struct {
	K     uint64
	Count uint64
	Sum   uint64
	Min   uint64
	Max   uint64
}

// GroupBy works on plain table entries so it can live in any entry
// store (plain or encrypted) handed out by cfg.Alloc. An item and its
// running aggregates are packed into the entry's working attributes:
//
//	J ← key   A1 ← value   TID ← count   A2 ← sum   II ← min
//	D[0:8] ← max   F ← compaction scratch   Null ← boundary flag
//
// The packing is pure relabeling — every field is moved by the same
// constant-time entry operations (CondSwapEntry touches all of them) —
// so it changes nothing about obliviousness.
func itemEntry(it Item) table.Entry {
	return table.Entry{J: it.K, A1: it.V}
}

func entryGroup(e table.Entry) Group {
	return Group{K: e.J, Count: e.TID, Sum: e.A2, Min: e.II,
		Max: binary.LittleEndian.Uint64(e.D[:8])}
}

func lessK(x, y table.Entry) uint64 { return obliv.Less(x.J, y.J) }

// GroupBy computes per-key COUNT, SUM, MIN and MAX over items,
// obliviously. The result is sorted by key. The number of groups —
// the output length — is public, like the join's m; everything else
// about the grouping structure is hidden.
func GroupBy(cfg *core.Config, items []Item) []Group {
	n := len(items)
	if n == 0 {
		return nil
	}
	a := cfg.Alloc(n)
	for i, it := range items {
		a.Set(i, itemEntry(it))
	}

	cfg.SortStore(a, lessK, cfg.RelationalSortStats())

	// Forward scan: running aggregates, reset at group boundaries. After
	// this pass the LAST entry of each group holds the group's totals.
	var prevK, cnt, sum, mn, mx uint64
	started := uint64(0)
	cfg.ScanStore(a, false, func(_ int, e *table.Entry) {
		same := obliv.And(started, obliv.Eq(e.J, prevK))
		v := e.A1
		cnt = obliv.Select(same, cnt, 0) + 1
		sum = obliv.Select(same, sum, 0) + v
		mn = obliv.Select(obliv.And(same, obliv.Less(mn, v)), mn, v)
		mx = obliv.Select(obliv.And(same, obliv.Greater(mx, v)), mx, v)
		e.TID, e.A2, e.II = cnt, sum, mn
		binary.LittleEndian.PutUint64(e.D[:8], mx)
		prevK = e.J
		started = 1
	})

	// Backward scan: keep only each group's boundary entry.
	prevK, started = 0, 0
	var groups uint64
	cfg.ScanStore(a, true, func(_ int, e *table.Entry) {
		same := obliv.And(started, obliv.Eq(e.J, prevK))
		e.Null = same // non-boundary entries vanish
		groups += obliv.Not(same)
		prevK = e.J
		started = 1
	})

	// Oblivious compaction brings the boundary entries (in key order) to
	// the front; the group count is the public output size.
	compaction.Compact(a, nil)

	out := make([]Group, groups)
	for i := range out {
		out[i] = entryGroup(a.Get(i))
	}
	return out
}

// JoinStat is one output record of JoinGroupStats: a join value present
// in both tables and its group dimensions.
type JoinStat struct {
	J     uint64
	A1    uint64 // matching rows in T1
	A2    uint64 // matching rows in T2
	Pairs uint64 // α1·α2 — this group's contribution to the join output
}

// JoinGroupStats computes per-group join statistics without expanding
// the join: Augment-Tables provides (α1, α2) on every entry; one
// backward scan marks each group's boundary within the T1 region; an
// oblivious compaction collects the boundaries of groups with α2 > 0.
// Total cost O(n log² n) — independent of the (possibly quadratic) join
// output size m, which a full join would have to pay.
//
// The number of joinable groups is the output length and therefore
// public; the total Σ α1·α2 equals the m that Join would reveal anyway.
func JoinGroupStats(cfg *core.Config, rows1, rows2 []table.Row) []JoinStat {
	_, t1, _, _ := core.AugmentTables(cfg, rows1, rows2)
	n1 := t1.Len()
	if n1 == 0 {
		return nil
	}

	// Mark boundaries (last entry of each j-run in the T1 region, which
	// Augment-Tables leaves sorted by (j, d)) of groups with α2 > 0.
	var prevJ uint64
	started := uint64(0)
	var groups uint64
	cfg.ScanStore(t1, true, func(_ int, e *table.Entry) {
		same := obliv.And(started, obliv.Eq(e.J, prevJ))
		joinable := obliv.Greater(e.A2, 0)
		keep := obliv.And(obliv.Not(same), joinable)
		e.Null = obliv.Not(keep)
		groups += keep
		prevJ = e.J
		started = 1
	})

	compaction.Compact(t1, nil)

	out := make([]JoinStat, groups)
	for i := range out {
		e := t1.Get(i)
		out[i] = JoinStat{J: e.J, A1: e.A1, A2: e.A2, Pairs: e.A1 * e.A2}
	}
	return out
}

// SumPairs adds up the Pairs column — the join's output size m.
func SumPairs(stats []JoinStat) uint64 {
	var m uint64
	for _, s := range stats {
		m += s.Pairs
	}
	return m
}

// JoinSum extends JoinStat with per-side value sums, enabling SUM
// aggregates over the join without materializing it: in the join
// output, every T1 row of a group appears α2 times and every T2 row α1
// times, so
//
//	SUM(left value over join)  = Σ_groups α2 · SumLeft
//	SUM(right value over join) = Σ_groups α1 · SumRight.
type JoinSum struct {
	JoinStat
	SumLeft  uint64 // Σ values of the group's T1 rows
	SumRight uint64 // Σ values of the group's T2 rows
}

// LeftTotal is this group's contribution to SUM(left value) over the
// join.
func (s JoinSum) LeftTotal() uint64 { return s.A2 * s.SumLeft }

// RightTotal is this group's contribution to SUM(right value) over the
// join.
func (s JoinSum) RightTotal() uint64 { return s.A1 * s.SumRight }

// ValueFunc extracts the numeric value of a row for join aggregation.
// It must be branch-free if the values themselves are secret (the
// default — payload decoding below is constant-shape).
type ValueFunc func(r table.Row) uint64

// JoinGroupSums computes JoinGroupStats plus per-side value sums, still
// in O(n log² n): the sums ride along the same two Fill-Dimensions-style
// scans, stored in the entries' F and II working attributes.
//
// Implementation note: the value scans run over the combined table
// before augmentation splits it, using one forward pass to accumulate
// per-side running sums and one backward pass to propagate the group
// totals — the exact pattern of Algorithm 2, applied to values instead
// of counts.
func JoinGroupSums(cfg *core.Config, rows1, rows2 []table.Row, value ValueFunc) []JoinSum {
	// Precompute values per input row and smuggle them through the
	// pipeline by re-encoding each payload: the augmented tables return
	// rows in (j, d) order, so we must be able to recover each row's
	// value after sorting. Encode the value into the payload itself.
	v1 := make([]uint64, len(rows1))
	for i, r := range rows1 {
		v1[i] = value(r)
	}
	v2 := make([]uint64, len(rows2))
	for i, r := range rows2 {
		v2[i] = value(r)
	}
	enc := func(rows []table.Row, vals []uint64) []table.Row {
		out := make([]table.Row, len(rows))
		for i, r := range rows {
			out[i] = r
			// The low 8 bytes of the payload carry the value; the rest
			// keeps enough of the original payload for uniqueness.
			for b := 0; b < 8; b++ {
				out[i].D[table.DataLen-8+b] = byte(vals[i] >> (8 * b))
			}
		}
		return out
	}
	dec := func(e table.Entry) uint64 {
		var v uint64
		for b := 0; b < 8; b++ {
			v |= uint64(e.D[table.DataLen-8+b]) << (8 * b)
		}
		return v
	}

	_, t1, t2, _ := core.AugmentTables(cfg, enc(rows1, v1), enc(rows2, v2))

	// Per-side group sums via forward+backward scans, accumulated into
	// the F working attribute of every entry.
	sideSums := func(t table.Store) {
		var prevJ, run uint64
		started := uint64(0)
		cfg.ScanStore(t, false, func(_ int, e *table.Entry) {
			same := obliv.And(started, obliv.Eq(e.J, prevJ))
			run = obliv.Select(same, run, 0) + dec(*e)
			e.F = run
			prevJ = e.J
			started = 1
		})
		var total uint64
		prevJ, started = 0, 0
		cfg.ScanStore(t, true, func(_ int, e *table.Entry) {
			same := obliv.And(started, obliv.Eq(e.J, prevJ))
			total = obliv.Select(same, total, e.F)
			e.F = total
			prevJ = e.J
			started = 1
		})
	}
	sideSums(t1)
	sideSums(t2)

	// Boundary extraction on the T1 side (for SumLeft) needs SumRight
	// too: fetch it by a joint scan over the combined store. We instead
	// extract per-side boundaries separately and merge by key — both
	// lists are sorted by j, and their lengths are the public group
	// counts of each side, so the merge below is plain public code over
	// already-revealed outputs.
	extract := func(t table.Store, needOtherSide bool) []JoinSum {
		var prevJ uint64
		started := uint64(0)
		var groups uint64
		cfg.ScanStore(t, true, func(_ int, e *table.Entry) {
			same := obliv.And(started, obliv.Eq(e.J, prevJ))
			joinable := obliv.Greater(obliv.Select(obliv.Bool(needOtherSide), e.A1, e.A2), 0)
			keep := obliv.And(obliv.Not(same), joinable)
			e.Null = obliv.Not(keep)
			groups += keep
			prevJ = e.J
			started = 1
		})
		compaction.Compact(t, nil)
		out := make([]JoinSum, groups)
		for i := range out {
			e := t.Get(i)
			out[i] = JoinSum{JoinStat: JoinStat{J: e.J, A1: e.A1, A2: e.A2, Pairs: e.A1 * e.A2}}
			// F was clobbered by compaction; recover the side sum from
			// the II attribute where sideSums left... F is gone — see
			// below: sums were re-stashed in II before compaction.
			out[i].SumLeft = e.II
		}
		return out
	}
	// Compaction clobbers F (its routing scratch), so move the sums to
	// II first.
	stash := func(t table.Store) {
		cfg.ScanStore(t, false, func(_ int, e *table.Entry) {
			e.II = e.F
		})
	}
	stash(t1)
	stash(t2)

	left := extract(t1, false) // keeps groups with α2 > 0, SumLeft in II
	right := extract(t2, true) // keeps groups with α1 > 0, SumRight in II

	// Merge (public post-processing of already-public outputs).
	byKey := make(map[uint64]uint64, len(right))
	for _, r := range right {
		byKey[r.J] = r.SumLeft // field carries this side's sum
	}
	for i := range left {
		left[i].SumRight = byKey[left[i].J]
	}
	return left
}

// MaxValue is the largest representable aggregate value; exported for
// callers that want an identity element for MIN.
const MaxValue = math.MaxUint64
