package aggregate

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"oblivjoin/internal/core"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
	"oblivjoin/internal/workload"
)

func referenceGroupBy(items []Item) []Group {
	agg := map[uint64]*Group{}
	for _, it := range items {
		g, ok := agg[it.K]
		if !ok {
			g = &Group{K: it.K, Min: it.V, Max: it.V}
			agg[it.K] = g
		}
		g.Count++
		g.Sum += it.V
		if it.V < g.Min {
			g.Min = it.V
		}
		if it.V > g.Max {
			g.Max = it.V
		}
	}
	out := make([]Group, 0, len(agg))
	for _, g := range agg {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

func TestGroupByFixed(t *testing.T) {
	items := []Item{
		{K: 2, V: 10}, {K: 1, V: 5}, {K: 2, V: 3}, {K: 1, V: 5}, {K: 3, V: 0},
	}
	got := GroupBy(plainCfg(), items)
	want := []Group{
		{K: 1, Count: 2, Sum: 10, Min: 5, Max: 5},
		{K: 2, Count: 2, Sum: 13, Min: 3, Max: 10},
		{K: 3, Count: 1, Sum: 0, Min: 0, Max: 0},
	}
	if len(got) != len(want) {
		t.Fatalf("groups = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("group %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestGroupByEmpty(t *testing.T) {
	if got := GroupBy(plainCfg(), nil); got != nil {
		t.Fatalf("GroupBy(nil) = %v", got)
	}
}

func TestGroupBySingleKey(t *testing.T) {
	got := GroupBy(plainCfg(), []Item{{K: 9, V: 1}, {K: 9, V: 2}, {K: 9, V: 3}})
	if len(got) != 1 || got[0] != (Group{K: 9, Count: 3, Sum: 6, Min: 1, Max: 3}) {
		t.Fatalf("got %+v", got)
	}
}

func TestGroupByProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 120 {
			raw = raw[:120]
		}
		items := make([]Item, len(raw))
		for i, r := range raw {
			items[i] = Item{K: uint64(r % 16), V: uint64(r >> 4)}
		}
		got := GroupBy(plainCfg(), items)
		want := referenceGroupBy(items)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupByObliviousWithinClass(t *testing.T) {
	// Same n, same number of groups → identical traces.
	run := func(items []Item) string {
		h := trace.NewHasher()
		sp := memory.NewSpace(h, nil)
		GroupBy(&core.Config{Alloc: table.PlainAlloc(sp)}, items)
		return h.Hex()
	}
	a := run([]Item{{1, 1}, {1, 2}, {2, 3}, {2, 4}}) // 2 groups of 2
	b := run([]Item{{7, 9}, {8, 8}, {8, 7}, {8, 6}}) // groups of 1 and 3
	if a != b {
		t.Fatal("GroupBy trace depends on grouping structure")
	}
}

func TestGroupByMinMaxExtremes(t *testing.T) {
	got := GroupBy(plainCfg(), []Item{{K: 1, V: MaxValue}, {K: 1, V: 0}})
	if got[0].Min != 0 || got[0].Max != MaxValue {
		t.Fatalf("extremes wrong: %+v", got[0])
	}
}

func plainCfg() *core.Config {
	sp := memory.NewSpace(nil, nil)
	return &core.Config{Alloc: table.PlainAlloc(sp)}
}

func rowsOf(keys []uint64, tid int) []table.Row {
	rows := make([]table.Row, len(keys))
	for i, k := range keys {
		rows[i] = table.Row{J: k, D: table.MustData(fmt.Sprintf("%d:%d:%d", tid, k, i))}
	}
	return rows
}

func TestJoinGroupStatsFixed(t *testing.T) {
	t1 := rowsOf([]uint64{1, 1, 2, 3}, 1) // groups: 1→2 rows, 2→1, 3→1
	t2 := rowsOf([]uint64{1, 2, 2, 9}, 2) // groups: 1→1, 2→2, 9→1
	stats := JoinGroupStats(plainCfg(), t1, t2)
	want := []JoinStat{
		{J: 1, A1: 2, A2: 1, Pairs: 2},
		{J: 2, A1: 1, A2: 2, Pairs: 2},
	}
	if len(stats) != len(want) {
		t.Fatalf("stats = %+v", stats)
	}
	for i := range want {
		if stats[i] != want[i] {
			t.Fatalf("stat %d = %+v, want %+v", i, stats[i], want[i])
		}
	}
	if SumPairs(stats) != 4 {
		t.Fatalf("SumPairs = %d", SumPairs(stats))
	}
}

func TestJoinGroupStatsMatchesJoinSize(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		t1, t2 := workload.Uniform(40+rng.Intn(40), 40+rng.Intn(40), 10, int64(trial))
		stats := JoinGroupStats(plainCfg(), t1, t2)
		m := core.OutputSize(plainCfg(), t1, t2)
		if int(SumPairs(stats)) != m {
			t.Fatalf("trial %d: Σ pairs = %d, join m = %d", trial, SumPairs(stats), m)
		}
		for i := 1; i < len(stats); i++ {
			if stats[i-1].J >= stats[i].J {
				t.Fatal("stats not sorted by key")
			}
		}
	}
}

func TestJoinGroupStatsEmptySides(t *testing.T) {
	if got := JoinGroupStats(plainCfg(), nil, rowsOf([]uint64{1}, 2)); len(got) != 0 {
		t.Fatalf("got %+v", got)
	}
	if got := JoinGroupStats(plainCfg(), rowsOf([]uint64{1}, 1), nil); len(got) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestJoinGroupStatsCheaperThanJoin(t *testing.T) {
	// One fat group: m = 50·50 = 2500 but stats touch only O(n log² n).
	t1 := rowsOf(make([]uint64, 50), 1)
	t2 := rowsOf(make([]uint64, 50), 2)
	var cStats, cJoin trace.Counter

	sp1 := memory.NewSpace(&cStats, nil)
	JoinGroupStats(&core.Config{Alloc: table.PlainAlloc(sp1)}, t1, t2)

	sp2 := memory.NewSpace(&cJoin, nil)
	core.Join(&core.Config{Alloc: table.PlainAlloc(sp2)}, t1, t2)

	if cStats.Total() >= cJoin.Total() {
		t.Fatalf("stats (%d accesses) not cheaper than full join (%d)",
			cStats.Total(), cJoin.Total())
	}
}

func TestJoinGroupStatsOblivious(t *testing.T) {
	run := func(t1, t2 []table.Row) string {
		h := trace.NewHasher()
		sp := memory.NewSpace(h, nil)
		JoinGroupStats(&core.Config{Alloc: table.PlainAlloc(sp)}, t1, t2)
		return h.Hex()
	}
	// n1=4, n2=4, 2 joinable groups in both.
	a := run(rowsOf([]uint64{1, 1, 2, 3}, 1), rowsOf([]uint64{1, 2, 2, 9}, 2))
	b := run(rowsOf([]uint64{5, 6, 6, 6}, 1), rowsOf([]uint64{5, 5, 5, 6}, 2))
	if a != b {
		t.Fatal("JoinGroupStats trace depends on structure")
	}
}

func BenchmarkGroupBy4k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	items := make([]Item, 4096)
	for i := range items {
		items[i] = Item{K: uint64(rng.Intn(100)), V: uint64(rng.Intn(1000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupBy(plainCfg(), items)
	}
}
