package aggregate

import (
	"fmt"
	"math/rand"
	"testing"

	"oblivjoin/internal/core"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

// rowWithValue builds a row whose payload front carries a tag and whose
// value the ValueFunc below extracts from a side table.
func valueRows(vals []uint64, key []uint64, tid int) ([]table.Row, map[string]uint64) {
	rows := make([]table.Row, len(vals))
	lookup := map[string]uint64{}
	for i := range vals {
		tag := fmt.Sprintf("%d.%d", tid, i)
		var d table.Data
		copy(d[:], tag)
		rows[i] = table.Row{J: key[i], D: d}
		lookup[tag] = vals[i]
	}
	return rows, lookup
}

func TestJoinGroupSumsFixed(t *testing.T) {
	// Group 1: T1 values {10, 20} (α1=2), T2 values {3} (α2=1).
	// Group 2: T1 {5} (α1=1), T2 {7, 8} (α2=2).
	r1, look1 := valueRows([]uint64{10, 20, 5}, []uint64{1, 1, 2}, 1)
	r2, look2 := valueRows([]uint64{3, 7, 8}, []uint64{1, 2, 2}, 2)
	value := func(r table.Row) uint64 {
		if v, ok := look1[table.DataString(r.D)[:3]]; ok {
			return v
		}
		return look2[table.DataString(r.D)[:3]]
	}
	sums := JoinGroupSums(plainCfg(), r1, r2, value)
	if len(sums) != 2 {
		t.Fatalf("sums = %+v", sums)
	}
	g1, g2 := sums[0], sums[1]
	if g1.J != 1 || g1.SumLeft != 30 || g1.SumRight != 3 || g1.Pairs != 2 {
		t.Fatalf("group 1 = %+v", g1)
	}
	if g2.J != 2 || g2.SumLeft != 5 || g2.SumRight != 15 || g2.Pairs != 2 {
		t.Fatalf("group 2 = %+v", g2)
	}
	// SUM(left value over join) = α2·SumLeft per group: 1·30 + 2·5 = 40.
	if g1.LeftTotal()+g2.LeftTotal() != 40 {
		t.Fatalf("left total = %d", g1.LeftTotal()+g2.LeftTotal())
	}
	// SUM(right value over join) = α1·SumRight: 2·3 + 1·15 = 21.
	if g1.RightTotal()+g2.RightTotal() != 21 {
		t.Fatalf("right total = %d", g1.RightTotal()+g2.RightTotal())
	}
}

// TestJoinGroupSumsAgainstMaterializedJoin cross-checks the no-expansion
// totals against actually materializing the join.
func TestJoinGroupSumsAgainstMaterializedJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 8; trial++ {
		n1, n2 := 10+rng.Intn(30), 10+rng.Intn(30)
		keys1 := make([]uint64, n1)
		vals1 := make([]uint64, n1)
		for i := range keys1 {
			keys1[i] = uint64(rng.Intn(6))
			vals1[i] = uint64(rng.Intn(50))
		}
		keys2 := make([]uint64, n2)
		vals2 := make([]uint64, n2)
		for i := range keys2 {
			keys2[i] = uint64(rng.Intn(6))
			vals2[i] = uint64(rng.Intn(50))
		}
		r1, look1 := valueRows(vals1, keys1, 1)
		r2, look2 := valueRows(vals2, keys2, 2)
		value := func(r table.Row) uint64 {
			s := table.DataString(r.D)
			if v, ok := look1[s]; ok {
				return v
			}
			return look2[s]
		}

		sums := JoinGroupSums(plainCfg(), r1, r2, value)
		var gotLeft, gotRight uint64
		for _, s := range sums {
			gotLeft += s.LeftTotal()
			gotRight += s.RightTotal()
		}

		var wantLeft, wantRight uint64
		for i := range r1 {
			for j := range r2 {
				if keys1[i] == keys2[j] {
					wantLeft += vals1[i]
					wantRight += vals2[j]
				}
			}
		}
		if gotLeft != wantLeft || gotRight != wantRight {
			t.Fatalf("trial %d: totals (%d,%d), want (%d,%d)",
				trial, gotLeft, gotRight, wantLeft, wantRight)
		}
	}
}

func TestJoinGroupSumsOblivious(t *testing.T) {
	run := func(k1, k2 []uint64) string {
		v1 := make([]uint64, len(k1))
		v2 := make([]uint64, len(k2))
		r1, _ := valueRows(v1, k1, 1)
		r2, _ := valueRows(v2, k2, 2)
		h := trace.NewHasher()
		sp := memory.NewSpace(h, nil)
		JoinGroupSums(&core.Config{Alloc: table.PlainAlloc(sp)},
			r1, r2, func(table.Row) uint64 { return 0 })
		return h.Hex()
	}
	// Same sizes, same per-side joinable group counts.
	a := run([]uint64{1, 1, 2, 3}, []uint64{1, 2, 2, 9})
	b := run([]uint64{5, 6, 6, 6}, []uint64{5, 5, 5, 6}) // 2 joinable groups both sides
	if a != b {
		t.Fatal("JoinGroupSums trace depends on structure")
	}
}

func TestJoinGroupSumsEmpty(t *testing.T) {
	if got := JoinGroupSums(plainCfg(), nil, nil, func(table.Row) uint64 { return 0 }); len(got) != 0 {
		t.Fatalf("got %+v", got)
	}
}
