package wal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// This file is the crash-injection harness: it builds cmd/oservd,
// drives it over HTTP with a write load, SIGKILLs it mid-load, then
// restarts it on the same data directory and checks the durability
// contract from the outside:
//
//   - every table whose last write was acknowledged before the kill
//     comes back byte-identical (same rows, same trace hash for a
//     deterministic query over it);
//   - a table under write load at the kill comes back at SOME
//     acknowledged version, at least as new as the last acknowledged
//     write (fsync-before-ack means an acknowledged write survives).
//
// The same harness runs in CI's durability job; `go test` skips it in
// -short mode since it builds a binary and forks processes.

var addrRe = regexp.MustCompile(`listening on (\S+)`)

// startServer launches an oservd binary on an ephemeral port with the
// given data dir and returns the process and its base URL.
func startServer(t *testing.T, bin, dataDir string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dataDir, "-snapshot-every", "8"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			if m := addrRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("oservd did not report a listening address within 10s")
		return nil, ""
	}
}

func postJSON(base, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%s %s: %s (%s)", path, resp.Status, e.Error, b[:min(len(b), 80)])
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

type wireRow struct {
	Key  uint64 `json:"key"`
	Data string `json:"data"`
}

type wireQueryResp struct {
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Stats   *struct {
		TraceHash string `json:"trace_hash"`
	} `json:"stats"`
}

// readTable runs a deterministic full scan over name and returns the
// rows plus the access-pattern digest of executing it.
func readTable(base, name string) (rows [][]string, traceHash string, err error) {
	var resp wireQueryResp
	req := map[string]any{
		"sql":        fmt.Sprintf("SELECT key, data FROM %s ORDER BY key", name),
		"stats":      true,
		"trace_hash": true,
	}
	if err := postJSON(base, "/query", req, &resp); err != nil {
		return nil, "", err
	}
	if resp.Stats == nil || resp.Stats.TraceHash == "" {
		return nil, "", fmt.Errorf("query over %s returned no trace hash", name)
	}
	return resp.Rows, resp.Stats.TraceHash, nil
}

func tableRows(n int, tag string, gen int) []wireRow {
	rows := make([]wireRow, n)
	for i := range rows {
		rows[i] = wireRow{Key: uint64(i), Data: fmt.Sprintf("%s%d-%d", tag, gen, i%10)}
	}
	return rows
}

// TestCrashRecoveryEndToEnd is the kill -9 harness.
func TestCrashRecoveryEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and forks processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "oservd")
	build := exec.Command("go", "build", "-o", bin, "oblivjoin/cmd/oservd")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build oservd (no toolchain?): %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	cmd, base := startServer(t, bin, dataDir)

	// Seed quiescent tables and record their acknowledged contents and
	// trace hashes — the byte-identity references.
	type ref struct {
		rows [][]string
		hash string
	}
	refs := map[string]ref{}
	for i, name := range []string{"alpha", "beta", "gamma"} {
		req := map[string]any{"name": name, "rows": tableRows(48+16*i, name[:1], 0)}
		if err := postJSON(base, "/tables", req, nil); err != nil {
			t.Fatal(err)
		}
		rows, hash, err := readTable(base, name)
		if err != nil {
			t.Fatal(err)
		}
		refs[name] = ref{rows: rows, hash: hash}
	}

	// Hammer one "hot" table with versioned replaces; every 2xx reply
	// is an acknowledged (fsynced) generation.
	var mu sync.Mutex
	lastAcked := 0
	if err := postJSON(base, "/tables", map[string]any{"name": "hot", "rows": tableRows(32, "h", 0)}, nil); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for gen := 1; ; gen++ {
			select {
			case <-stop:
				return
			default:
			}
			req := map[string]any{"name": "hot", "rows": tableRows(32, "h", gen), "replace": true}
			if err := postJSON(base, "/tables", req, nil); err != nil {
				return // the kill landed; whatever was acked stands
			}
			mu.Lock()
			lastAcked = gen
			mu.Unlock()
		}
	}()

	// Let some generations land, then kill -9 mid-load.
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		acked := lastAcked
		mu.Unlock()
		if acked >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write load made no progress within 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	close(stop)
	wg.Wait()
	mu.Lock()
	acked := lastAcked
	mu.Unlock()

	// Restart on the same directory: quiescent tables byte-identical,
	// hot table at an acknowledged-or-newer generation.
	_, base2 := startServer(t, bin, dataDir)
	for name, want := range refs {
		rows, hash, err := readTable(base2, name)
		if err != nil {
			t.Fatalf("recovered %s: %v", name, err)
		}
		if !equalRows(rows, want.rows) {
			t.Fatalf("recovered %s rows differ:\n got %v\nwant %v", name, rows, want.rows)
		}
		if hash != want.hash {
			t.Fatalf("recovered %s trace hash = %s, want %s", name, hash, want.hash)
		}
	}
	rows, _, err := readTable(base2, "hot")
	if err != nil {
		t.Fatalf("recovered hot: %v", err)
	}
	gen := hotGeneration(t, rows)
	if gen < acked {
		t.Fatalf("hot table recovered at generation %d, but generation %d was acknowledged before the kill", gen, acked)
	}
	if len(rows) != 32 {
		t.Fatalf("hot table recovered with %d rows, want 32 (a whole generation)", len(rows))
	}
}

// TestCrashRecoveryRepeated kills and restarts the same directory
// several times in a row: recovery must be idempotent, not one-shot.
func TestCrashRecoveryRepeated(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and forks processes; skipped in -short")
	}
	bin := filepath.Join(t.TempDir(), "oservd")
	build := exec.Command("go", "build", "-o", bin, "oblivjoin/cmd/oservd")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Skipf("cannot build oservd (no toolchain?): %v\n%s", err, out)
	}
	dataDir := t.TempDir()

	var wantRows [][]string
	var wantHash string
	for round := 0; round < 3; round++ {
		cmd, base := startServer(t, bin, dataDir)
		if round == 0 {
			if err := postJSON(base, "/tables", map[string]any{"name": "t", "rows": tableRows(64, "r", 0)}, nil); err != nil {
				t.Fatal(err)
			}
			rows, hash, err := readTable(base, "t")
			if err != nil {
				t.Fatal(err)
			}
			wantRows, wantHash = rows, hash
		} else {
			rows, hash, err := readTable(base, "t")
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if !equalRows(rows, wantRows) || hash != wantHash {
				t.Fatalf("round %d: recovered state diverged", round)
			}
		}
		cmd.Process.Signal(syscall.SIGKILL)
		cmd.Wait()
	}
}

// hotGeneration extracts the generation stamp from the hot table's
// payloads ("h<gen>-<i>") and checks all rows agree — replace is
// atomic, so a recovered table is one whole generation, never a blend.
func hotGeneration(t *testing.T, rows [][]string) int {
	t.Helper()
	gen := -1
	for _, r := range rows {
		if len(r) != 2 {
			t.Fatalf("hot row = %v, want [key data]", r)
		}
		var g, i int
		if _, err := fmt.Sscanf(r[1], "h%d-%d", &g, &i); err != nil {
			t.Fatalf("hot payload %q: %v", r[1], err)
		}
		if gen == -1 {
			gen = g
		} else if g != gen {
			t.Fatalf("hot table blends generations %d and %d — replace was not atomic", gen, g)
		}
	}
	return gen
}

func equalRows(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if strings.Join(a[i], "\x00") != strings.Join(b[i], "\x00") {
			return false
		}
	}
	return true
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
