package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"oblivjoin/internal/catalog"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/table"
)

func openDB(t *testing.T, dir string, opts Options) (*DB, *RecoveryInfo) {
	t.Helper()
	db, info, err := Open(dir, catalog.New(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, info
}

// snapshotOf reads every table through the bound catalog.
func snapshotOf(t *testing.T, db *DB) map[string][]table.Row {
	t.Helper()
	snap, err := db.Catalog().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestOpenCloseReopen: the basic durability contract — what was
// committed before a clean Close is byte-identical after reopening the
// same directory, and the clean marker is recognized exactly once.
func TestOpenCloseReopen(t *testing.T) {
	dir := t.TempDir()
	db, info := openDB(t, dir, Options{})
	if info.Version != 0 || info.Tables != 0 || info.CleanShutdown {
		t.Fatalf("fresh open info = %+v", info)
	}
	if err := db.Register("users", mkRows(t, 40, 'u')); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("orders", mkRows(t, 17, 'o')); err != nil {
		t.Fatal(err)
	}
	if err := db.Replace("orders", mkRows(t, 5, 'p')); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, db)
	ver := db.Catalog().Version()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Closed DBs refuse mutations but tolerate a second Close.
	if err := db.Register("x", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("register after close: %v, want ErrClosed", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, info2 := openDB(t, dir, Options{})
	defer db2.Close()
	if !info2.CleanShutdown {
		t.Fatalf("reopen info = %+v, want CleanShutdown", info2)
	}
	if info2.Version != ver || info2.Tables != 2 {
		t.Fatalf("reopen info = %+v, want version %d, 2 tables", info2, ver)
	}
	if got := snapshotOf(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables differ:\n got %v\nwant %v", got, want)
	}
	if db2.Catalog().Version() != ver {
		t.Fatalf("recovered version = %d, want %d", db2.Catalog().Version(), ver)
	}
}

// TestCrashRecovery: Abandon skips the final snapshot, sync and clean
// marker — every acknowledged commit must still be there, recovered
// from the WAL alone, and the unclean shutdown must be reported.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDB(t, dir, Options{})
	if err := db.Register("t", mkRows(t, 100, 'a')); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := db.Replace("t", mkRows(t, 100+i, 'b')); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Register("gone", mkRows(t, 3, 'g')); err != nil {
		t.Fatal(err)
	}
	if err := db.Drop("gone"); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, db)
	ver := db.Catalog().Version()
	if err := db.Abandon(); err != nil {
		t.Fatal(err)
	}

	db2, info := openDB(t, dir, Options{})
	defer db2.Close()
	if info.CleanShutdown {
		t.Fatal("crash reported as clean shutdown")
	}
	if info.Tail != nil {
		t.Fatalf("synced log recovered with tail %v", info.Tail)
	}
	if info.Version != ver || info.Replayed != int(ver) {
		t.Fatalf("info = %+v, want version %d with %d replayed", info, ver, ver)
	}
	if got := snapshotOf(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables differ:\n got %v\nwant %v", got, want)
	}
	if db2.Catalog().Has("gone") {
		t.Fatal("dropped table resurrected by replay")
	}
}

// TestSnapshotRotation: with SnapshotEvery=4 a stream of commits
// rotates the WAL onto fresh snapshots, obsolete files are removed,
// and recovery from the latest snapshot + short tail is exact.
func TestSnapshotRotation(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDB(t, dir, Options{SnapshotEvery: 4})
	if err := db.Register("t", mkRows(t, 8, 'a')); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 13; i++ { // 14 commits total: 3 rotations + live tail
		if err := db.Replace("t", mkRows(t, 8+i, 'b')); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshotOf(t, db)
	ver := db.Catalog().Version()
	if err := db.Abandon(); err != nil {
		t.Fatal(err)
	}

	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("obsolete snapshots not cleaned: %v", snaps)
	}
	if snaps[0] != 12 {
		t.Fatalf("latest snapshot at v%d, want v12", snaps[0])
	}

	db2, info := openDB(t, dir, Options{SnapshotEvery: 4})
	defer db2.Close()
	if info.SnapshotVersion != 12 || info.Replayed != int(ver)-12 {
		t.Fatalf("info = %+v, want snapshot v12 + %d replayed", info, int(ver)-12)
	}
	if got := snapshotOf(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables differ:\n got %v\nwant %v", got, want)
	}
}

// TestTornTailDiscarded: bytes beyond the last fsync — a torn final
// append — are discarded on open, reported in RecoveryInfo, and the
// log remains appendable.
func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDB(t, dir, Options{})
	if err := db.Register("t", mkRows(t, 30, 'a')); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, db)
	if err := db.Abandon(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName(0))
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		t.Fatal(err)
	}
	// A torn append: a plausible frame header promising more bytes than
	// the file holds.
	if _, err := f.Write([]byte{0x80, 0x01, 0, 0, 1, 2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	db2, info := openDB(t, dir, Options{})
	if info.Tail == nil || !errors.Is(info.Tail, ErrTruncated) {
		t.Fatalf("info.Tail = %v, want ErrTruncated", info.Tail)
	}
	if info.DiscardedBytes != 10 {
		t.Fatalf("DiscardedBytes = %d, want 10", info.DiscardedBytes)
	}
	if got := snapshotOf(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables differ:\n got %v\nwant %v", got, want)
	}
	// The truncated log must accept and persist new commits.
	if err := db2.Register("t2", mkRows(t, 2, 'z')); err != nil {
		t.Fatal(err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, info3 := openDB(t, dir, Options{})
	defer db3.Close()
	if info3.Tail != nil || !db3.Catalog().Has("t2") {
		t.Fatalf("post-truncation commits lost: info=%+v", info3)
	}
}

// TestCorruptTailIsTyped: damage to once-acknowledged bytes is not
// silently dropped — Open fails with a positioned *TailError — unless
// the caller opts into DiscardCorruptTail.
func TestCorruptTailIsTyped(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDB(t, dir, Options{})
	if err := db.Register("keep", mkRows(t, 10, 'k')); err != nil {
		t.Fatal(err)
	}
	if err := db.Register("lost", mkRows(t, 10, 'l')); err != nil {
		t.Fatal(err)
	}
	if err := db.Abandon(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName(0))
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xff // inside the last record's sealed rows
	if err := os.WriteFile(walPath, data, 0o600); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir, catalog.New(), Options{})
	var te *TailError
	if !errors.As(err, &te) || !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want *TailError wrapping ErrChecksum", err)
	}
	if te.Index != 1 {
		t.Fatalf("damage at record %d, want 1", te.Index)
	}

	// Opt-in discard: the damaged suffix is dropped, the prefix stands.
	db2, info := openDB(t, dir, Options{DiscardCorruptTail: true})
	defer db2.Close()
	if info.Tail == nil || !errors.Is(info.Tail, ErrChecksum) {
		t.Fatalf("info.Tail = %v, want ErrChecksum", info.Tail)
	}
	if info.DiscardedBytes <= 0 {
		t.Fatalf("DiscardedBytes = %d, want > 0", info.DiscardedBytes)
	}
	if !db2.Catalog().Has("keep") || db2.Catalog().Has("lost") {
		t.Fatalf("discard kept the wrong records: %v", snapshotOf(t, db2))
	}
}

// TestBranchAndRestoreDurability: Branch and RestoreTable materialize
// history into the log, so recovery reproduces them with no history of
// its own.
func TestBranchAndRestoreDurability(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDB(t, dir, Options{})
	v1Rows := mkRows(t, 12, 'a')
	if err := db.Register("t", v1Rows); err != nil { // v1
		t.Fatal(err)
	}
	if err := db.Replace("t", mkRows(t, 30, 'b')); err != nil { // v2
		t.Fatal(err)
	}
	if err := db.Branch("t_old", "t", 1); err != nil { // v3: t as of v1
		t.Fatal(err)
	}
	if err := db.RestoreTable("t", 1); err != nil { // v4: rewind t
		t.Fatal(err)
	}
	// Branching onto a taken name or from a missing table is refused
	// without consuming a version.
	if err := db.Branch("t_old", "t", 0); err == nil {
		t.Fatal("branch onto existing name succeeded")
	}
	if err := db.Branch("x", "absent", 0); err == nil {
		t.Fatal("branch from missing table succeeded")
	}
	if v := db.Catalog().Version(); v != 4 {
		t.Fatalf("version = %d, want 4 (failed branches must not commit)", v)
	}
	if err := db.Abandon(); err != nil {
		t.Fatal(err)
	}

	db2, info := openDB(t, dir, Options{})
	defer db2.Close()
	if info.Replayed != 4 {
		t.Fatalf("replayed %d records, want 4", info.Replayed)
	}
	got := snapshotOf(t, db2)
	if !reflect.DeepEqual(got["t_old"], v1Rows) || !reflect.DeepEqual(got["t"], v1Rows) {
		t.Fatalf("branch/restore not recovered: %v", got)
	}
}

// TestWrongKeyRefused: replacing the master key makes every sealed
// byte unreadable — recovery reports authentication failure instead of
// returning plaintext-less garbage.
func TestWrongKeyRefused(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDB(t, dir, Options{})
	if err := db.Register("t", mkRows(t, 64, 'a')); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	other := make([]byte, 32)
	other[0] = 1
	if err := os.WriteFile(filepath.Join(dir, keyFile), other, 0o600); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, catalog.New(), Options{})
	if !errors.Is(err, crypto.ErrAuth) {
		t.Fatalf("err = %v, want crypto.ErrAuth", err)
	}
}

// TestCheckpoint: an explicit checkpoint snapshots at the current
// version and restarts the WAL; recovery needs zero replayed records.
func TestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, _ := openDB(t, dir, Options{})
	if err := db.Register("t", mkRows(t, 25, 'a')); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Idempotent at the same version.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(t, db)
	if err := db.Abandon(); err != nil {
		t.Fatal(err)
	}
	db2, info := openDB(t, dir, Options{})
	defer db2.Close()
	if info.SnapshotVersion != 1 || info.Replayed != 0 {
		t.Fatalf("info = %+v, want snapshot v1 + 0 replayed", info)
	}
	if got := snapshotOf(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered tables differ:\n got %v\nwant %v", got, want)
	}
}
