package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/fault"
	"oblivjoin/internal/table"
)

// A snapshot is a whole-catalog checkpoint at one version: the same
// sealed frame format as the WAL (one OpRegister record per table, all
// carrying the snapshot version), written to a temp file, fsynced, and
// atomically renamed into place. A snapshot file under its final name
// is therefore always complete — recovery never has to reason about a
// half-written snapshot, only about which WAL tail applies over it.

// WriteSnapshot atomically writes every table at version to path.
// Tables are written in sorted name order so snapshots of equal states
// are written deterministically.
func WriteSnapshot(path string, cipher *crypto.Cipher, version uint64, tables map[string][]table.Row) error {
	return WriteSnapshotFS(nil, path, cipher, version, tables)
}

// WriteSnapshotFS is WriteSnapshot over an explicit filesystem seam
// (nil selects the real OS) — the fault-injection entry point.
func WriteSnapshotFS(fsys fault.FS, path string, cipher *crypto.Cipher, version uint64, tables map[string][]table.Row) error {
	fsys = fault.Or(fsys)
	names := make([]string, 0, len(tables))
	for name := range tables {
		names = append(names, name)
	}
	sort.Strings(names)

	tmp := path + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return err
	}
	defer fsys.Remove(tmp) // no-op after the rename succeeds
	if err := writeHeader(f, snapMagic, version); err != nil {
		f.Close()
		return err
	}
	var buf []byte
	for _, name := range names {
		buf, err = encodeFrame(buf[:0], cipher, Record{
			Op: OpRegister, Version: version, Name: name, Rows: tables[name],
		})
		if err != nil {
			f.Close()
			return err
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// ReadSnapshot loads the snapshot at path, returning its version and
// tables. Snapshots are atomically renamed into place, so any damage —
// including truncation — is real corruption and surfaces as a typed
// *TailError, never as silent partial data.
func ReadSnapshot(path string, cipher *crypto.Cipher) (uint64, map[string][]table.Row, error) {
	return ReadSnapshotFS(nil, path, cipher)
}

// ReadSnapshotFS is ReadSnapshot over an explicit filesystem seam (nil
// selects the real OS) — the recovery-read fault-injection entry
// point.
func ReadSnapshotFS(fsys fault.FS, path string, cipher *crypto.Cipher) (uint64, map[string][]table.Row, error) {
	data, err := fault.Or(fsys).ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	version, err := parseHeader(path, snapMagic, data)
	if err != nil {
		return 0, nil, err
	}
	tables := map[string][]table.Row{}
	off := headerLen
	n := 0
	for off < len(data) {
		rec, next, derr := decodeFrame(cipher, data, off)
		if derr != nil {
			return 0, nil, &TailError{Path: path, Offset: int64(off), Index: n, Cause: derr}
		}
		if rec.Op != OpRegister || rec.Version != version {
			return 0, nil, &TailError{Path: path, Offset: int64(off), Index: n,
				Cause: fmt.Errorf("%w: snapshot record op=%v version=%d, want register at %d",
					ErrFormat, rec.Op, rec.Version, version)}
		}
		if _, dup := tables[rec.Name]; dup {
			return 0, nil, &TailError{Path: path, Offset: int64(off), Index: n,
				Cause: fmt.Errorf("%w: duplicate table %q", ErrFormat, rec.Name)}
		}
		if rec.Rows == nil {
			rec.Rows = []table.Row{}
		}
		tables[rec.Name] = rec.Rows
		n++
		off = next
	}
	return version, tables, nil
}

// syncDir fsyncs a directory so a just-renamed or just-created entry
// is durable. Filesystems that reject directory fsync are tolerated.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}
