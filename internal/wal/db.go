package wal

import (
	"crypto/rand"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"oblivjoin/internal/catalog"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/fault"
	"oblivjoin/internal/table"
)

// DB binds a catalog to a data directory: every mutation is appended
// to the sealed WAL and fsynced before it is applied in memory
// (log-then-apply), so any acknowledged mutation survives a crash.
// Every SnapshotEvery commits — and on Close — the whole catalog is
// checkpointed to a snapshot file and the WAL restarts empty.
//
// Layout of a data directory:
//
//	master.key          32-byte sealing key (0600; created on first open)
//	snap-<v>.snap       catalog checkpoint at version v (atomic rename)
//	wal-<v>.log         mutations applying over snapshot v
//	clean               marker: last close was clean at the recorded version
//
// All mutations must go through the DB; mutating the bound catalog
// directly would diverge memory from disk.
type DB struct {
	dir     string
	cipher  *crypto.Cipher
	cat     *catalog.Catalog
	every   int
	fs      fault.FS
	retries int
	backoff time.Duration

	mu     sync.Mutex
	log    *Log
	since  int // commits since the last snapshot
	closed bool

	// Degradation state. A transient append/sync failure is retried
	// with backoff; exhausting the retries trips the read-only breaker
	// (mutations refused with ErrReadOnly, reads unaffected). A failed
	// automatic snapshot degrades the store — the commit it rode on is
	// already durable in the log, so it is acknowledged, and the
	// checkpoint debt is carried until a Checkpoint succeeds.
	readOnly  bool
	roCause   error
	snapErr   error  // last failed automatic snapshot (nil = none pending)
	retried   uint64 // transient append/sync retries performed
	snapFails uint64 // automatic snapshot failures
}

// ErrClosed is returned for mutations after Close.
var ErrClosed = errors.New("wal: durable store closed")

// ErrReadOnly is returned for mutations while the store is circuit-
// broken into read-only degraded mode after a persistent write
// failure. Reads keep serving from memory; a successful Checkpoint
// (after the underlying fault clears) re-enters normal operation.
var ErrReadOnly = errors.New("wal: store is read-only (degraded)")

// DefaultSnapshotEvery is the commit count between automatic
// snapshots when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 256

// DefaultRetryAppend is the bounded retry count for transient WAL
// append/sync failures when Options.RetryAppend is zero.
const DefaultRetryAppend = 3

// DefaultRetryBackoff is the initial retry backoff when
// Options.RetryBackoff is zero; it doubles per attempt.
const DefaultRetryBackoff = time.Millisecond

// Options configures Open.
type Options struct {
	// SnapshotEvery is the number of committed mutations between
	// automatic snapshots. 0 means DefaultSnapshotEvery; negative
	// disables automatic snapshots (Close and Checkpoint still write
	// them).
	SnapshotEvery int
	// DiscardCorruptTail makes recovery truncate a WAL tail that fails
	// its checksum or authentication — damage to once-acknowledged
	// bytes — instead of returning the typed error. Torn tails
	// (ErrTruncated) are always discarded; this extends that to
	// corruption, losing the damaged suffix.
	DiscardCorruptTail bool
	// FS is the filesystem seam all WAL, snapshot and recovery IO goes
	// through (nil selects the real OS) — the fault-injection hook.
	FS fault.FS
	// RetryAppend bounds the retries of a transiently failing WAL
	// append/sync before the read-only breaker trips. 0 means
	// DefaultRetryAppend; negative disables retries.
	RetryAppend int
	// RetryBackoff is the initial backoff between those retries,
	// doubling per attempt. 0 means DefaultRetryBackoff.
	RetryBackoff time.Duration
}

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	SnapshotVersion uint64     // version of the snapshot loaded (0 = none)
	Replayed        int        // WAL records replayed over it
	Version         uint64     // catalog version after recovery
	Tables          int        // tables after recovery
	CleanShutdown   bool       // previous process closed cleanly at Version
	Tail            *TailError // non-nil: a damaged tail was discarded
	DiscardedBytes  int64      // bytes dropped with that tail
}

const keyFile = "master.key"
const cleanFile = "clean"

func snapName(v uint64) string { return fmt.Sprintf("snap-%016x.snap", v) }
func walName(v uint64) string  { return fmt.Sprintf("wal-%016x.log", v) }

// loadOrCreateKey returns the directory's 32-byte sealing key,
// generating and persisting one on first open.
func loadOrCreateKey(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err == nil {
		if len(b) != 32 {
			return nil, fmt.Errorf("wal: master key %s: %d bytes, want 32", path, len(b))
		}
		return b, nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return loadOrCreateKey(path) // lost a creation race; use the winner's key
		}
		return nil, err
	}
	if _, err := f.Write(key); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return nil, err
	}
	return key, nil
}

// listSnapshots returns the versions of parseable snapshot files in
// dir, ascending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
		v, perr := strconv.ParseUint(hex, 16, 64)
		if perr != nil {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Open recovers the durable catalog state in dir into cat (which must
// be freshly constructed and empty) and returns a DB bound to it. It
// loads the newest snapshot, replays the WAL tail over it, truncates a
// torn final record, and fails with a typed *TailError on checksum or
// authentication damage (unless Options.DiscardCorruptTail).
func Open(dir string, cat *catalog.Catalog, opts Options) (*DB, *RecoveryInfo, error) {
	fsys := fault.Or(opts.FS)
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, nil, err
	}
	key, err := loadOrCreateKey(filepath.Join(dir, keyFile))
	if err != nil {
		return nil, nil, err
	}
	cipher, err := crypto.New(key)
	if err != nil {
		return nil, nil, err
	}

	info := &RecoveryInfo{}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, nil, err
	}
	var base uint64
	if len(snaps) > 0 {
		base = snaps[len(snaps)-1]
		path := filepath.Join(dir, snapName(base))
		ver, tables, err := ReadSnapshotFS(fsys, path, cipher)
		if err != nil {
			return nil, nil, err
		}
		if ver != base {
			return nil, nil, &TailError{Path: path, Offset: 0, Index: 0,
				Cause: fmt.Errorf("%w: header version %d but filename says %d", ErrFormat, ver, base)}
		}
		if err := cat.Load(tables, base); err != nil {
			return nil, nil, err
		}
		info.SnapshotVersion = base
	}

	walPath := filepath.Join(dir, walName(base))
	var log *Log
	if _, serr := os.Stat(walPath); serr == nil {
		replayIdx := 0
		apply := func(rec Record) error {
			want := cat.Version() + 1
			if rec.Version != want {
				return fmt.Errorf("%w: record version %d, want %d", ErrFormat, rec.Version, want)
			}
			var aerr error
			switch rec.Op {
			case OpRegister:
				aerr = cat.Register(rec.Name, rec.Rows)
			case OpReplace:
				aerr = cat.Replace(rec.Name, rec.Rows)
			case OpDrop:
				aerr = cat.Drop(rec.Name)
			default:
				aerr = fmt.Errorf("%w: op %d", ErrFormat, rec.Op)
			}
			if aerr != nil {
				return fmt.Errorf("%w: replaying %v %q: %v", ErrFormat, rec.Op, rec.Name, aerr)
			}
			replayIdx++
			return nil
		}
		walBase, n, goodSize, tail, rerr := ReplayFileFS(fsys, walPath, cipher, apply)
		if rerr != nil {
			// A record decrypted and checksummed fine but cannot apply:
			// the log disagrees with the snapshot. Surface it typed.
			return nil, nil, &TailError{Path: walPath, Offset: goodSize, Index: n, Cause: rerr}
		}
		if tail == nil && walBase != base {
			return nil, nil, &TailError{Path: walPath, Offset: 0, Index: 0,
				Cause: fmt.Errorf("%w: log base %d but snapshot is %d", ErrFormat, walBase, base)}
		}
		info.Replayed = n
		if tail != nil {
			discard := errors.Is(tail, ErrTruncated) || opts.DiscardCorruptTail
			if !discard {
				return nil, nil, tail
			}
			st, _ := os.Stat(walPath)
			if st != nil {
				info.DiscardedBytes = st.Size() - goodSize
			}
			info.Tail = tail
			if goodSize < headerLen {
				// The header itself was torn: rewrite the log whole.
				log, err = CreateFS(fsys, walPath, cipher, base)
			} else {
				if err = fsys.Truncate(walPath, goodSize); err == nil {
					log, err = openAppend(fsys, walPath, cipher, base, goodSize, n)
				}
			}
			if err != nil {
				return nil, nil, err
			}
			if err := log.Sync(); err != nil {
				log.Close()
				return nil, nil, err
			}
		} else {
			log, err = openAppend(fsys, walPath, cipher, base, goodSize, n)
			if err != nil {
				return nil, nil, err
			}
		}
	} else {
		log, err = CreateFS(fsys, walPath, cipher, base)
		if err != nil {
			return nil, nil, err
		}
		if err := syncDir(dir); err != nil {
			log.Close()
			return nil, nil, err
		}
	}

	// Clean-shutdown marker: meaningful only for the shutdown that
	// wrote it, so consume it either way.
	if b, err := os.ReadFile(filepath.Join(dir, cleanFile)); err == nil {
		if v, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 16, 64); perr == nil {
			info.CleanShutdown = v == cat.Version() && info.Tail == nil
		}
		os.Remove(filepath.Join(dir, cleanFile))
	}

	info.Version = cat.Version()
	info.Tables = cat.Len()

	db := &DB{
		dir: dir, cipher: cipher, cat: cat, every: opts.SnapshotEvery,
		fs: fsys, retries: opts.RetryAppend, backoff: opts.RetryBackoff,
		log: log, since: log.Records(),
	}
	if db.every == 0 {
		db.every = DefaultSnapshotEvery
	}
	if db.retries == 0 {
		db.retries = DefaultRetryAppend
	} else if db.retries < 0 {
		db.retries = 0
	}
	if db.backoff <= 0 {
		db.backoff = DefaultRetryBackoff
	}
	db.cleanupObsolete(base)
	return db, info, nil
}

// cleanupObsolete best-effort removes snapshots and logs older than
// the live base, plus stale temp files.
func (db *DB) cleanupObsolete(base uint64) {
	ents, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(db.dir, name))
			continue
		}
		var v uint64
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			v, err = strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			v, err = strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
		default:
			continue
		}
		if err == nil && v < base {
			os.Remove(filepath.Join(db.dir, name))
		}
	}
}

// Catalog returns the bound catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Dir returns the data directory.
func (db *DB) Dir() string { return db.dir }

// commit appends rec (with the next catalog version), fsyncs, applies
// apply, and snapshots when the automatic threshold is reached.
// Callers hold db.mu and have validated that apply will succeed.
//
// Failure handling: a failed append or sync is rolled back (the log
// truncated to its pre-commit length, so no partial or unsynced frame
// survives) and retried up to db.retries times with doubling backoff.
// Exhausting the retries — or failing to roll back — trips the
// read-only breaker: this and every subsequent mutation fail with an
// error wrapping ErrReadOnly until a Checkpoint succeeds. A failed
// automatic snapshot does NOT fail the commit (the mutation is already
// durable and applied); it degrades the store and the checkpoint debt
// is carried forward.
func (db *DB) commit(rec Record, apply func() error) error {
	if db.readOnly {
		return fmt.Errorf("%w: %w", ErrReadOnly, db.roCause)
	}
	rec.Version = db.cat.Version() + 1
	preSize, preN := db.log.Size(), db.log.Records()
	backoff := db.backoff
	for attempt := 0; ; attempt++ {
		err := db.appendSync(rec)
		if err == nil {
			break
		}
		if rerr := db.log.RollbackTo(preSize, preN); rerr != nil {
			db.readOnly = true
			db.roCause = fmt.Errorf("%w (rollback also failed: %v)", err, rerr)
			return fmt.Errorf("%w: %w", ErrReadOnly, db.roCause)
		}
		if attempt >= db.retries {
			db.readOnly = true
			db.roCause = err
			return fmt.Errorf("%w: %w", ErrReadOnly, err)
		}
		db.retried++
		time.Sleep(backoff)
		backoff *= 2
	}
	if err := apply(); err != nil {
		// The log now holds a record memory refused. Validation under
		// db.mu makes this unreachable unless the catalog was mutated
		// behind the DB's back.
		return fmt.Errorf("wal: logged mutation failed to apply (catalog mutated directly?): %w", err)
	}
	db.since++
	if db.every > 0 && db.since >= db.every {
		if serr := db.snapshotLocked(); serr != nil {
			// The commit is durable and applied; the missed checkpoint
			// degrades the store instead of failing an acknowledged
			// mutation. Recovery replays the longer WAL.
			db.snapErr = serr
			db.snapFails++
		} else {
			db.snapErr = nil
		}
	}
	return nil
}

// appendSync is one append+fsync attempt.
func (db *DB) appendSync(rec Record) error {
	if err := db.log.Append(rec); err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	if err := db.log.Sync(); err != nil {
		return fmt.Errorf("wal sync: %w", err)
	}
	return nil
}

// Register durably registers rows under name.
func (db *DB) Register(name string, rows []table.Row) error {
	name, err := catalog.Normalize(name)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.cat.Has(name) {
		return &catalog.TableExistsError{Name: name}
	}
	return db.commit(Record{Op: OpRegister, Name: name, Rows: rows},
		func() error { return db.cat.Register(name, rows) })
}

// Replace durably replaces (or creates) the table name.
func (db *DB) Replace(name string, rows []table.Row) error {
	name, err := catalog.Normalize(name)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.commit(Record{Op: OpReplace, Name: name, Rows: rows},
		func() error { return db.cat.Replace(name, rows) })
}

// Drop durably removes the table name.
func (db *DB) Drop(name string) error {
	name, err := catalog.Normalize(name)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if !db.cat.Has(name) {
		return &catalog.UnknownTableError{Name: name}
	}
	return db.commit(Record{Op: OpDrop, Name: name},
		func() error { return db.cat.Drop(name) })
}

// Branch durably creates dst as a branch of src at version asOf (0 =
// current). The log materializes the branched rows (replay needs no
// history); the in-memory catalog aliases the immutable backing.
func (db *DB) Branch(dst, src string, asOf uint64) error {
	dst, err := catalog.Normalize(dst)
	if err != nil {
		return err
	}
	src, err = catalog.Normalize(src)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	rows, err := db.cat.RowsAt(src, asOf)
	if err != nil {
		return err
	}
	if db.cat.Has(dst) {
		return &catalog.TableExistsError{Name: dst}
	}
	return db.commit(Record{Op: OpRegister, Name: dst, Rows: rows},
		func() error { return db.cat.Branch(dst, src, asOf) })
}

// RestoreTable durably rewinds name to its contents at version asOf.
func (db *DB) RestoreTable(name string, asOf uint64) error {
	name, err := catalog.Normalize(name)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	rows, err := db.cat.RowsAt(name, asOf)
	if err != nil {
		return err
	}
	return db.commit(Record{Op: OpReplace, Name: name, Rows: rows},
		func() error { return db.cat.RestoreTable(name, asOf) })
}

// snapshotLocked checkpoints the catalog: atomic snapshot at the
// current version, fresh WAL based on it, obsolete files removed.
func (db *DB) snapshotLocked() error {
	ver := db.cat.Version()
	if !db.readOnly && db.snapErr == nil && ver == db.log.Base() && db.log.Records() == 0 {
		return nil // nothing since the last checkpoint
	}
	// While read-only or carrying checkpoint debt the shortcut is
	// skipped: a checkpoint must actually write — snapshot, fresh WAL,
	// dir fsync — to prove the directory is healthy again.
	tables, err := db.cat.Snapshot()
	if err != nil {
		return err
	}
	if err := WriteSnapshotFS(db.fs, filepath.Join(db.dir, snapName(ver)), db.cipher, ver, tables); err != nil {
		return err
	}
	newLog, err := CreateFS(db.fs, filepath.Join(db.dir, walName(ver)), db.cipher, ver)
	if err != nil {
		return err
	}
	if err := syncDir(db.dir); err != nil {
		newLog.Close()
		return err
	}
	old := db.log
	db.log = newLog
	db.since = 0
	old.Close()
	db.cleanupObsolete(ver)
	return nil
}

// Checkpoint forces a snapshot now. A successful checkpoint is also
// the recovery path out of degradation: it clears pending snapshot
// debt and re-opens a read-only store for writes — the snapshot, the
// fresh WAL and the directory fsync all succeeding is the proof that
// the underlying fault has cleared.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.snapshotLocked(); err != nil {
		db.snapErr = err
		db.snapFails++
		return err
	}
	db.snapErr = nil
	db.readOnly = false
	db.roCause = nil
	return nil
}

// CloseError reports a dirty shutdown with each failed step kept
// distinct, so operators can tell a failed final snapshot from a
// failed WAL sync from a failed file close when the clean marker is
// absent. errors.Is matches any of the wrapped causes.
type CloseError struct {
	SnapshotErr error // the final snapshot failed (WAL still holds the tail)
	SyncErr     error // the final WAL fsync failed (recent commits may be lost)
	CloseErr    error // closing the log file failed
	MarkerErr   error // writing or fsyncing the clean marker failed
}

func (e *CloseError) Error() string {
	parts := make([]string, 0, 4)
	if e.SnapshotErr != nil {
		parts = append(parts, fmt.Sprintf("final snapshot: %v", e.SnapshotErr))
	}
	if e.SyncErr != nil {
		parts = append(parts, fmt.Sprintf("wal sync: %v", e.SyncErr))
	}
	if e.CloseErr != nil {
		parts = append(parts, fmt.Sprintf("log close: %v", e.CloseErr))
	}
	if e.MarkerErr != nil {
		parts = append(parts, fmt.Sprintf("clean marker: %v", e.MarkerErr))
	}
	return "wal: dirty shutdown: " + strings.Join(parts, "; ")
}

// Unwrap exposes every non-nil cause to errors.Is/As.
func (e *CloseError) Unwrap() []error {
	var errs []error
	for _, err := range []error{e.SnapshotErr, e.SyncErr, e.CloseErr, e.MarkerErr} {
		if err != nil {
			errs = append(errs, err)
		}
	}
	return errs
}

func (e *CloseError) any() bool {
	return e.SnapshotErr != nil || e.SyncErr != nil || e.CloseErr != nil || e.MarkerErr != nil
}

// Close flushes everything — final snapshot if anything changed since
// the last one, WAL fsync, clean-shutdown marker — and closes the DB.
// Idempotent. A failure returns a *CloseError reporting each failed
// step distinctly; the WAL sync and file close are still attempted
// after a failed snapshot (the log tail is then the durable truth),
// and the clean marker is only written when everything else succeeded.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	ce := &CloseError{}
	ce.SnapshotErr = db.snapshotLocked()
	ce.SyncErr = db.log.Sync()
	ce.CloseErr = db.log.Close()
	if !ce.any() {
		marker := []byte(strconv.FormatUint(db.cat.Version(), 16) + "\n")
		if err := os.WriteFile(filepath.Join(db.dir, cleanFile), marker, 0o600); err != nil {
			ce.MarkerErr = err
		} else if err := syncDir(db.dir); err != nil {
			ce.MarkerErr = err
		}
	}
	if ce.any() {
		return ce
	}
	return nil
}

// HealthState classifies the durable store's degradation level.
type HealthState string

const (
	// HealthOK: normal operation.
	HealthOK HealthState = "ok"
	// HealthDegraded: commits succeed but checkpoint debt is pending —
	// an automatic snapshot failed and recovery would replay a longer
	// WAL than the snapshot cadence intends.
	HealthDegraded HealthState = "degraded"
	// HealthReadOnly: the read-only breaker is tripped — mutations are
	// refused with ErrReadOnly until a Checkpoint succeeds.
	HealthReadOnly HealthState = "read-only"
)

// Health reports the store's degradation state machine: ok → degraded
// (failed automatic snapshot, commits still durable) → read-only
// (persistent append/sync failure, mutations refused), with the cause
// and the fault counters. A successful Checkpoint transitions back to
// ok.
type Health struct {
	State            HealthState
	Cause            string // "" when ok
	Retries          uint64 // transient append/sync retries performed
	SnapshotFailures uint64 // automatic snapshot failures
}

// Health returns the store's current health.
func (db *DB) Health() Health {
	db.mu.Lock()
	defer db.mu.Unlock()
	h := Health{State: HealthOK, Retries: db.retried, SnapshotFailures: db.snapFails}
	switch {
	case db.readOnly:
		h.State = HealthReadOnly
		h.Cause = db.roCause.Error()
	case db.snapErr != nil:
		h.State = HealthDegraded
		h.Cause = db.snapErr.Error()
	}
	return h
}

// Abandon closes the underlying file without the final snapshot, sync
// or clean marker — the programmatic equivalent of a crash, for tests
// and benchmarks that measure recovery.
func (db *DB) Abandon() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	return db.log.Close()
}
