package wal

import (
	"crypto/rand"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"oblivjoin/internal/catalog"
	"oblivjoin/internal/crypto"
	"oblivjoin/internal/table"
)

// DB binds a catalog to a data directory: every mutation is appended
// to the sealed WAL and fsynced before it is applied in memory
// (log-then-apply), so any acknowledged mutation survives a crash.
// Every SnapshotEvery commits — and on Close — the whole catalog is
// checkpointed to a snapshot file and the WAL restarts empty.
//
// Layout of a data directory:
//
//	master.key          32-byte sealing key (0600; created on first open)
//	snap-<v>.snap       catalog checkpoint at version v (atomic rename)
//	wal-<v>.log         mutations applying over snapshot v
//	clean               marker: last close was clean at the recorded version
//
// All mutations must go through the DB; mutating the bound catalog
// directly would diverge memory from disk.
type DB struct {
	dir    string
	cipher *crypto.Cipher
	cat    *catalog.Catalog
	every  int

	mu     sync.Mutex
	log    *Log
	since  int // commits since the last snapshot
	closed bool
}

// ErrClosed is returned for mutations after Close.
var ErrClosed = errors.New("wal: durable store closed")

// DefaultSnapshotEvery is the commit count between automatic
// snapshots when Options.SnapshotEvery is zero.
const DefaultSnapshotEvery = 256

// Options configures Open.
type Options struct {
	// SnapshotEvery is the number of committed mutations between
	// automatic snapshots. 0 means DefaultSnapshotEvery; negative
	// disables automatic snapshots (Close and Checkpoint still write
	// them).
	SnapshotEvery int
	// DiscardCorruptTail makes recovery truncate a WAL tail that fails
	// its checksum or authentication — damage to once-acknowledged
	// bytes — instead of returning the typed error. Torn tails
	// (ErrTruncated) are always discarded; this extends that to
	// corruption, losing the damaged suffix.
	DiscardCorruptTail bool
}

// RecoveryInfo reports what Open found and did.
type RecoveryInfo struct {
	SnapshotVersion uint64     // version of the snapshot loaded (0 = none)
	Replayed        int        // WAL records replayed over it
	Version         uint64     // catalog version after recovery
	Tables          int        // tables after recovery
	CleanShutdown   bool       // previous process closed cleanly at Version
	Tail            *TailError // non-nil: a damaged tail was discarded
	DiscardedBytes  int64      // bytes dropped with that tail
}

const keyFile = "master.key"
const cleanFile = "clean"

func snapName(v uint64) string { return fmt.Sprintf("snap-%016x.snap", v) }
func walName(v uint64) string  { return fmt.Sprintf("wal-%016x.log", v) }

// loadOrCreateKey returns the directory's 32-byte sealing key,
// generating and persisting one on first open.
func loadOrCreateKey(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err == nil {
		if len(b) != 32 {
			return nil, fmt.Errorf("wal: master key %s: %d bytes, want 32", path, len(b))
		}
		return b, nil
	}
	if !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o600)
	if err != nil {
		if errors.Is(err, os.ErrExist) {
			return loadOrCreateKey(path) // lost a creation race; use the winner's key
		}
		return nil, err
	}
	if _, err := f.Write(key); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return nil, err
	}
	return key, nil
}

// listSnapshots returns the versions of parseable snapshot files in
// dir, ascending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap")
		v, perr := strconv.ParseUint(hex, 16, 64)
		if perr != nil {
			continue
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Open recovers the durable catalog state in dir into cat (which must
// be freshly constructed and empty) and returns a DB bound to it. It
// loads the newest snapshot, replays the WAL tail over it, truncates a
// torn final record, and fails with a typed *TailError on checksum or
// authentication damage (unless Options.DiscardCorruptTail).
func Open(dir string, cat *catalog.Catalog, opts Options) (*DB, *RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, nil, err
	}
	key, err := loadOrCreateKey(filepath.Join(dir, keyFile))
	if err != nil {
		return nil, nil, err
	}
	cipher, err := crypto.New(key)
	if err != nil {
		return nil, nil, err
	}

	info := &RecoveryInfo{}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return nil, nil, err
	}
	var base uint64
	if len(snaps) > 0 {
		base = snaps[len(snaps)-1]
		path := filepath.Join(dir, snapName(base))
		ver, tables, err := ReadSnapshot(path, cipher)
		if err != nil {
			return nil, nil, err
		}
		if ver != base {
			return nil, nil, &TailError{Path: path, Offset: 0, Index: 0,
				Cause: fmt.Errorf("%w: header version %d but filename says %d", ErrFormat, ver, base)}
		}
		if err := cat.Load(tables, base); err != nil {
			return nil, nil, err
		}
		info.SnapshotVersion = base
	}

	walPath := filepath.Join(dir, walName(base))
	var log *Log
	if _, serr := os.Stat(walPath); serr == nil {
		replayIdx := 0
		apply := func(rec Record) error {
			want := cat.Version() + 1
			if rec.Version != want {
				return fmt.Errorf("%w: record version %d, want %d", ErrFormat, rec.Version, want)
			}
			var aerr error
			switch rec.Op {
			case OpRegister:
				aerr = cat.Register(rec.Name, rec.Rows)
			case OpReplace:
				aerr = cat.Replace(rec.Name, rec.Rows)
			case OpDrop:
				aerr = cat.Drop(rec.Name)
			default:
				aerr = fmt.Errorf("%w: op %d", ErrFormat, rec.Op)
			}
			if aerr != nil {
				return fmt.Errorf("%w: replaying %v %q: %v", ErrFormat, rec.Op, rec.Name, aerr)
			}
			replayIdx++
			return nil
		}
		walBase, n, goodSize, tail, rerr := ReplayFile(walPath, cipher, apply)
		if rerr != nil {
			// A record decrypted and checksummed fine but cannot apply:
			// the log disagrees with the snapshot. Surface it typed.
			return nil, nil, &TailError{Path: walPath, Offset: goodSize, Index: n, Cause: rerr}
		}
		if tail == nil && walBase != base {
			return nil, nil, &TailError{Path: walPath, Offset: 0, Index: 0,
				Cause: fmt.Errorf("%w: log base %d but snapshot is %d", ErrFormat, walBase, base)}
		}
		info.Replayed = n
		if tail != nil {
			discard := errors.Is(tail, ErrTruncated) || opts.DiscardCorruptTail
			if !discard {
				return nil, nil, tail
			}
			st, _ := os.Stat(walPath)
			if st != nil {
				info.DiscardedBytes = st.Size() - goodSize
			}
			info.Tail = tail
			if goodSize < headerLen {
				// The header itself was torn: rewrite the log whole.
				log, err = Create(walPath, cipher, base)
			} else {
				if err = os.Truncate(walPath, goodSize); err == nil {
					log, err = openAppend(walPath, cipher, base, goodSize, n)
				}
			}
			if err != nil {
				return nil, nil, err
			}
			if err := log.Sync(); err != nil {
				log.Close()
				return nil, nil, err
			}
		} else {
			log, err = openAppend(walPath, cipher, base, goodSize, n)
			if err != nil {
				return nil, nil, err
			}
		}
	} else {
		log, err = Create(walPath, cipher, base)
		if err != nil {
			return nil, nil, err
		}
		if err := syncDir(dir); err != nil {
			log.Close()
			return nil, nil, err
		}
	}

	// Clean-shutdown marker: meaningful only for the shutdown that
	// wrote it, so consume it either way.
	if b, err := os.ReadFile(filepath.Join(dir, cleanFile)); err == nil {
		if v, perr := strconv.ParseUint(strings.TrimSpace(string(b)), 16, 64); perr == nil {
			info.CleanShutdown = v == cat.Version() && info.Tail == nil
		}
		os.Remove(filepath.Join(dir, cleanFile))
	}

	info.Version = cat.Version()
	info.Tables = cat.Len()

	db := &DB{dir: dir, cipher: cipher, cat: cat, every: opts.SnapshotEvery, log: log, since: log.Records()}
	if db.every == 0 {
		db.every = DefaultSnapshotEvery
	}
	db.cleanupObsolete(base)
	return db, info, nil
}

// cleanupObsolete best-effort removes snapshots and logs older than
// the live base, plus stale temp files.
func (db *DB) cleanupObsolete(base uint64) {
	ents, err := os.ReadDir(db.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(db.dir, name))
			continue
		}
		var v uint64
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			v, err = strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			v, err = strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
		default:
			continue
		}
		if err == nil && v < base {
			os.Remove(filepath.Join(db.dir, name))
		}
	}
}

// Catalog returns the bound catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Dir returns the data directory.
func (db *DB) Dir() string { return db.dir }

// commit appends rec (with the next catalog version), fsyncs, applies
// apply, and snapshots when the automatic threshold is reached.
// Callers hold db.mu and have validated that apply will succeed.
func (db *DB) commit(rec Record, apply func() error) error {
	rec.Version = db.cat.Version() + 1
	if err := db.log.Append(rec); err != nil {
		return fmt.Errorf("wal append: %w", err)
	}
	if err := db.log.Sync(); err != nil {
		return fmt.Errorf("wal sync: %w", err)
	}
	if err := apply(); err != nil {
		// The log now holds a record memory refused. Validation under
		// db.mu makes this unreachable unless the catalog was mutated
		// behind the DB's back.
		return fmt.Errorf("wal: logged mutation failed to apply (catalog mutated directly?): %w", err)
	}
	db.since++
	if db.every > 0 && db.since >= db.every {
		return db.snapshotLocked()
	}
	return nil
}

// Register durably registers rows under name.
func (db *DB) Register(name string, rows []table.Row) error {
	name, err := catalog.Normalize(name)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.cat.Has(name) {
		return &catalog.TableExistsError{Name: name}
	}
	return db.commit(Record{Op: OpRegister, Name: name, Rows: rows},
		func() error { return db.cat.Register(name, rows) })
}

// Replace durably replaces (or creates) the table name.
func (db *DB) Replace(name string, rows []table.Row) error {
	name, err := catalog.Normalize(name)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.commit(Record{Op: OpReplace, Name: name, Rows: rows},
		func() error { return db.cat.Replace(name, rows) })
}

// Drop durably removes the table name.
func (db *DB) Drop(name string) error {
	name, err := catalog.Normalize(name)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if !db.cat.Has(name) {
		return &catalog.UnknownTableError{Name: name}
	}
	return db.commit(Record{Op: OpDrop, Name: name},
		func() error { return db.cat.Drop(name) })
}

// Branch durably creates dst as a branch of src at version asOf (0 =
// current). The log materializes the branched rows (replay needs no
// history); the in-memory catalog aliases the immutable backing.
func (db *DB) Branch(dst, src string, asOf uint64) error {
	dst, err := catalog.Normalize(dst)
	if err != nil {
		return err
	}
	src, err = catalog.Normalize(src)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	rows, err := db.cat.RowsAt(src, asOf)
	if err != nil {
		return err
	}
	if db.cat.Has(dst) {
		return &catalog.TableExistsError{Name: dst}
	}
	return db.commit(Record{Op: OpRegister, Name: dst, Rows: rows},
		func() error { return db.cat.Branch(dst, src, asOf) })
}

// RestoreTable durably rewinds name to its contents at version asOf.
func (db *DB) RestoreTable(name string, asOf uint64) error {
	name, err := catalog.Normalize(name)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	rows, err := db.cat.RowsAt(name, asOf)
	if err != nil {
		return err
	}
	return db.commit(Record{Op: OpReplace, Name: name, Rows: rows},
		func() error { return db.cat.RestoreTable(name, asOf) })
}

// snapshotLocked checkpoints the catalog: atomic snapshot at the
// current version, fresh WAL based on it, obsolete files removed.
func (db *DB) snapshotLocked() error {
	ver := db.cat.Version()
	if ver == db.log.Base() && db.log.Records() == 0 {
		return nil // nothing since the last checkpoint
	}
	tables, err := db.cat.Snapshot()
	if err != nil {
		return err
	}
	if err := WriteSnapshot(filepath.Join(db.dir, snapName(ver)), db.cipher, ver, tables); err != nil {
		return err
	}
	newLog, err := Create(filepath.Join(db.dir, walName(ver)), db.cipher, ver)
	if err != nil {
		return err
	}
	if err := syncDir(db.dir); err != nil {
		newLog.Close()
		return err
	}
	old := db.log
	db.log = newLog
	db.since = 0
	old.Close()
	db.cleanupObsolete(ver)
	return nil
}

// Checkpoint forces a snapshot now.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.snapshotLocked()
}

// Close flushes everything — final snapshot if anything changed since
// the last one, WAL fsync, clean-shutdown marker — and closes the DB.
// Idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	var firstErr error
	if err := db.snapshotLocked(); err != nil {
		firstErr = err
	}
	if err := db.log.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := db.log.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if firstErr == nil {
		marker := []byte(strconv.FormatUint(db.cat.Version(), 16) + "\n")
		if err := os.WriteFile(filepath.Join(db.dir, cleanFile), marker, 0o600); err != nil {
			firstErr = err
		} else if err := syncDir(db.dir); err != nil {
			firstErr = err
		}
	}
	return firstErr
}

// Abandon closes the underlying file without the final snapshot, sync
// or clean marker — the programmatic equivalent of a crash, for tests
// and benchmarks that measure recovery.
func (db *DB) Abandon() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	return db.log.Close()
}
