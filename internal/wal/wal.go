// Package wal gives the catalog sealed-at-rest durability: a
// write-ahead log of catalog mutations, periodic whole-catalog
// snapshots, and crash recovery that replays the WAL tail over the
// latest snapshot.
//
// Everything secret on disk is ciphertext under the repository's
// crypto layer. A log record's metadata (operation, post-operation
// version, table name, row count) is sealed as one Seal blob; the rows
// themselves are sealed in the same 16-entries-per-ciphertext blocks
// the engine's BlockEncrypted stores use (SealRange), so the on-disk
// unit of a durable table equals the in-memory sealed unit. Only
// framing — lengths, a CRC32, file magic and version counters — is
// plaintext, and those are public metadata in this model (row counts
// and versions are not secret; contents and keys are).
//
// The failure model follows the usual WAL discipline: records are
// length-prefixed and CRC-summed, appends are single writes fsynced on
// commit, and recovery distinguishes a torn tail (the file ends
// mid-record: the crash happened during the final append, which was
// never acknowledged — discard it and continue) from mid-file or
// checksum damage (bytes that were once acknowledged are wrong: stop
// with a typed *TailError rather than guess).
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/fault"
	"oblivjoin/internal/table"
)

// Op identifies a logged catalog mutation. Branch and Restore are
// logged as Register/Replace of materialized rows, so replay needs no
// history.
type Op byte

const (
	OpRegister Op = 1
	OpReplace  Op = 2
	OpDrop     Op = 3
)

func (o Op) String() string {
	switch o {
	case OpRegister:
		return "register"
	case OpReplace:
		return "replace"
	case OpDrop:
		return "drop"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Record is one logged catalog mutation. Version is the catalog
// version after applying the record; replay verifies the sequence is
// dense, so a missing or reordered record is detected as corruption.
type Record struct {
	Op      Op
	Version uint64
	Name    string
	Rows    []table.Row // nil for OpDrop
}

// Typed recovery errors. A *TailError wraps one of these (or
// crypto.ErrAuth) and adds the file position, so callers can both
// branch on the class (errors.Is) and report exactly where the damage
// sits.
var (
	// ErrTruncated: the file ends mid-record — the torn-tail signature
	// of a crash during the final, unacknowledged append.
	ErrTruncated = errors.New("wal: truncated record")
	// ErrChecksum: a record's CRC32 does not match its body.
	ErrChecksum = errors.New("wal: record checksum mismatch")
	// ErrFormat: structurally invalid bytes — bad magic, impossible
	// lengths, or a version sequence break.
	ErrFormat = errors.New("wal: malformed record")
)

// TailError reports damage found while reading a WAL or snapshot file:
// which file, at what byte offset, at which record index, and the
// damage class (ErrTruncated, ErrChecksum, ErrFormat, or an
// authentication failure wrapping crypto.ErrAuth).
type TailError struct {
	Path   string
	Offset int64 // byte offset of the damaged frame
	Index  int   // 0-based record index of the damaged frame
	Cause  error
}

func (e *TailError) Error() string {
	return fmt.Sprintf("wal: %s: record %d at offset %d: %v", e.Path, e.Index, e.Offset, e.Cause)
}

func (e *TailError) Unwrap() error { return e.Cause }

// File layout. Every durable file opens with a 16-byte plaintext
// header — 8 bytes of magic and the u64 base catalog version — then
// zero or more frames:
//
//	u32 bodyLen | u32 crc32(body) | body
//	body = u32 sealedMetaLen | sealedMeta | sealedRows
//
// sealedMeta (one Seal blob) decrypts to
//
//	u8 op | u64 version | u32 rowCount | u16 nameLen | name
//
// and sealedRows is ceil(rowCount/16) SealRange blocks of 16 encoded
// rows each (zero-padded in the final block before sealing).
const (
	logMagic  = "OWALLOG1"
	snapMagic = "OWALSNP1"

	headerLen = 16
	frameHdr  = 8 // bodyLen + crc

	// blockRows matches the BlockEncrypted store unit: 16 entries per
	// ciphertext, so a durable table's sealed blocks equal the
	// engine's in-memory sealed blocks.
	blockRows = 16
	rowSize   = 8 + table.DataLen
	blockPt   = blockRows * rowSize

	// maxBody bounds a single frame (1 GiB) so a corrupt length prefix
	// cannot drive a giant allocation.
	maxBody = 1 << 30
)

func encodeRows(rows []table.Row) []byte {
	buf := make([]byte, len(rows)*rowSize)
	for i, r := range rows {
		o := i * rowSize
		binary.LittleEndian.PutUint64(buf[o:], r.J)
		copy(buf[o+8:o+rowSize], r.D[:])
	}
	return buf
}

func decodeRows(buf []byte, n int) []table.Row {
	rows := make([]table.Row, n)
	for i := range rows {
		o := i * rowSize
		rows[i].J = binary.LittleEndian.Uint64(buf[o:])
		copy(rows[i].D[:], buf[o+8:o+rowSize])
	}
	return rows
}

// sealedRowsLen is the on-disk size of a table of n rows.
func sealedRowsLen(n int) int {
	blocks := (n + blockRows - 1) / blockRows
	return blocks * crypto.SealedLen(blockPt)
}

// encodeFrame appends one framed record to buf and returns the
// extended slice.
func encodeFrame(buf []byte, cipher *crypto.Cipher, rec Record) ([]byte, error) {
	if rec.Op != OpRegister && rec.Op != OpReplace && rec.Op != OpDrop {
		return nil, fmt.Errorf("%w: unknown op %d", ErrFormat, rec.Op)
	}
	if len(rec.Name) > 1<<15 {
		return nil, fmt.Errorf("%w: table name too long", ErrFormat)
	}
	meta := make([]byte, 15+len(rec.Name))
	meta[0] = byte(rec.Op)
	binary.LittleEndian.PutUint64(meta[1:], rec.Version)
	binary.LittleEndian.PutUint32(meta[9:], uint32(len(rec.Rows)))
	binary.LittleEndian.PutUint16(meta[13:], uint16(len(rec.Name)))
	copy(meta[15:], rec.Name)
	sealedMeta := make([]byte, crypto.SealedLen(len(meta)))
	cipher.Seal(sealedMeta, meta)

	rowsLen := sealedRowsLen(len(rec.Rows))
	bodyLen := 4 + len(sealedMeta) + rowsLen
	start := len(buf)
	buf = append(buf, make([]byte, frameHdr+bodyLen)...)
	body := buf[start+frameHdr:]
	binary.LittleEndian.PutUint32(body, uint32(len(sealedMeta)))
	copy(body[4:], sealedMeta)
	if rowsLen > 0 {
		blocks := (len(rec.Rows) + blockRows - 1) / blockRows
		plain := make([]byte, blocks*blockPt)
		copy(plain, encodeRows(rec.Rows))
		cipher.SealRange(body[4+len(sealedMeta):], plain, blockPt)
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(bodyLen))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(body))
	return buf, nil
}

// decodeFrame parses one frame starting at data[off:]. It returns the
// record and the offset one past the frame. A nil error with ok=false
// means data ends exactly at off (clean EOF).
func decodeFrame(cipher *crypto.Cipher, data []byte, off int) (rec Record, next int, err error) {
	if len(data)-off < frameHdr {
		return Record{}, 0, ErrTruncated
	}
	bodyLen := int(binary.LittleEndian.Uint32(data[off:]))
	if bodyLen < 4 || bodyLen > maxBody {
		return Record{}, 0, fmt.Errorf("%w: frame length %d", ErrFormat, bodyLen)
	}
	wantCRC := binary.LittleEndian.Uint32(data[off+4:])
	if len(data)-off-frameHdr < bodyLen {
		return Record{}, 0, ErrTruncated
	}
	body := data[off+frameHdr : off+frameHdr+bodyLen]
	if crc32.ChecksumIEEE(body) != wantCRC {
		return Record{}, 0, ErrChecksum
	}
	sealedMetaLen := int(binary.LittleEndian.Uint32(body))
	if sealedMetaLen < crypto.SealedLen(15) || sealedMetaLen > bodyLen-4 {
		return Record{}, 0, fmt.Errorf("%w: meta length %d", ErrFormat, sealedMetaLen)
	}
	sealedMeta := body[4 : 4+sealedMetaLen]
	meta := make([]byte, sealedMetaLen-crypto.Overhead)
	if err := cipher.Open(meta, sealedMeta); err != nil {
		return Record{}, 0, fmt.Errorf("record metadata: %w", err)
	}
	op := Op(meta[0])
	version := binary.LittleEndian.Uint64(meta[1:])
	rowCount := int(binary.LittleEndian.Uint32(meta[9:]))
	nameLen := int(binary.LittleEndian.Uint16(meta[13:]))
	if len(meta) != 15+nameLen {
		return Record{}, 0, fmt.Errorf("%w: meta name length", ErrFormat)
	}
	name := string(meta[15:])
	sealedRows := body[4+sealedMetaLen:]
	if len(sealedRows) != sealedRowsLen(rowCount) {
		return Record{}, 0, fmt.Errorf("%w: row payload %d bytes, want %d for %d rows",
			ErrFormat, len(sealedRows), sealedRowsLen(rowCount), rowCount)
	}
	rec = Record{Op: op, Version: version, Name: name}
	if rowCount > 0 {
		blocks := len(sealedRows) / crypto.SealedLen(blockPt)
		plain := make([]byte, blocks*blockPt)
		if err := cipher.OpenRange(plain, sealedRows, blockPt); err != nil {
			return Record{}, 0, fmt.Errorf("record rows: %w", err)
		}
		rec.Rows = decodeRows(plain, rowCount)
	}
	return rec, off + frameHdr + bodyLen, nil
}

func writeHeader(f fault.File, magic string, base uint64) error {
	hdr := make([]byte, headerLen)
	copy(hdr, magic)
	binary.LittleEndian.PutUint64(hdr[8:], base)
	_, err := f.Write(hdr)
	return err
}

func parseHeader(path, magic string, data []byte) (uint64, error) {
	if len(data) < headerLen {
		return 0, &TailError{Path: path, Offset: 0, Index: 0, Cause: ErrTruncated}
	}
	if string(data[:8]) != magic {
		return 0, &TailError{Path: path, Offset: 0, Index: 0,
			Cause: fmt.Errorf("%w: bad magic %q", ErrFormat, data[:8])}
	}
	return binary.LittleEndian.Uint64(data[8:16]), nil
}

// Log is an append-only WAL file open for writing. Append buffers one
// frame and writes it in a single write syscall; Sync fsyncs — a
// commit is Append+Sync, and nothing is acknowledged before Sync
// returns.
type Log struct {
	path string
	fs   fault.FS
	f    fault.File
	base uint64
	n    int
	size int64
	buf  []byte
	ciph *crypto.Cipher
}

// Create creates (or truncates) a WAL at path with the given base
// version and fsyncs the header, so an empty log is itself durable.
func Create(path string, cipher *crypto.Cipher, base uint64) (*Log, error) {
	return CreateFS(nil, path, cipher, base)
}

// CreateFS is Create over an explicit filesystem seam (nil selects the
// real OS) — the fault-injection entry point.
func CreateFS(fsys fault.FS, path string, cipher *crypto.Cipher, base uint64) (*Log, error) {
	fsys = fault.Or(fsys)
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, err
	}
	if err := writeHeader(f, logMagic, base); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Log{path: path, fs: fsys, f: f, base: base, size: headerLen, ciph: cipher}, nil
}

// openAppend reopens an existing, already-validated WAL for appending.
// size must be the validated length (replay's goodSize) and n the
// number of valid records.
func openAppend(fsys fault.FS, path string, cipher *crypto.Cipher, base uint64, size int64, n int) (*Log, error) {
	fsys = fault.Or(fsys)
	f, err := fsys.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, err
	}
	return &Log{path: path, fs: fsys, f: f, base: base, size: size, n: n, buf: nil, ciph: cipher}, nil
}

// Append writes one framed record (unsynced; call Sync to commit).
func (l *Log) Append(rec Record) error {
	buf, err := encodeFrame(l.buf[:0], l.ciph, rec)
	if err != nil {
		return err
	}
	l.buf = buf[:0]
	if _, err := l.f.Write(buf); err != nil {
		return err
	}
	l.size += int64(len(buf))
	l.n++
	return nil
}

// Sync fsyncs all appended records to stable storage.
func (l *Log) Sync() error { return l.f.Sync() }

// RollbackTo rewinds the log to a prior (size, records) point captured
// before a failed commit: the file is truncated — discarding a partial
// frame from a short write, or a fully written but never fsynced
// record — so a retry never duplicates or corrupts records. The file
// stays open in append mode; subsequent writes continue at the
// truncated end.
func (l *Log) RollbackTo(size int64, n int) error {
	if err := l.fs.Truncate(l.path, size); err != nil {
		return err
	}
	l.size, l.n = size, n
	return nil
}

// Close closes the file (without a final Sync; callers sync first).
func (l *Log) Close() error { return l.f.Close() }

// Size returns the current file length in bytes.
func (l *Log) Size() int64 { return l.size }

// Records returns how many records the log holds.
func (l *Log) Records() int { return l.n }

// Base returns the catalog version the log applies over.
func (l *Log) Base() uint64 { return l.base }

// ReplayFile reads the WAL at path, invoking fn for each intact record
// in order. It returns the header's base version, the count of intact
// records, and goodSize — the byte offset one past the last intact
// record. tail is non-nil when the file ends in damage: its Cause is
// ErrTruncated for a torn tail (safe to truncate to goodSize and keep
// going) and ErrChecksum/ErrFormat/crypto.ErrAuth for damage to bytes
// that were once acknowledged. An error from fn aborts the replay.
func ReplayFile(path string, cipher *crypto.Cipher, fn func(Record) error) (base uint64, n int, goodSize int64, tail *TailError, err error) {
	return ReplayFileFS(nil, path, cipher, fn)
}

// ReplayFileFS is ReplayFile over an explicit filesystem seam (nil
// selects the real OS) — the recovery-read fault-injection entry
// point.
func ReplayFileFS(fsys fault.FS, path string, cipher *crypto.Cipher, fn func(Record) error) (base uint64, n int, goodSize int64, tail *TailError, err error) {
	data, err := fault.Or(fsys).ReadFile(path)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	base, herr := parseHeader(path, logMagic, data)
	if herr != nil {
		var te *TailError
		if errors.As(herr, &te) && errors.Is(te, ErrTruncated) {
			// Short or empty file: a crash between create and the
			// header sync. The whole file is a torn tail.
			return 0, 0, 0, te, nil
		}
		return 0, 0, 0, nil, herr
	}
	off := headerLen
	for off < len(data) {
		rec, next, derr := decodeFrame(cipher, data, off)
		if derr != nil {
			return base, n, int64(off), &TailError{Path: path, Offset: int64(off), Index: n, Cause: derr}, nil
		}
		if err := fn(rec); err != nil {
			return base, n, int64(off), nil, err
		}
		n++
		off = next
	}
	return base, n, int64(off), nil, nil
}
