package wal

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"oblivjoin/internal/catalog"
	"oblivjoin/internal/fault"
)

// fastOpts keeps the retry loop quick under test.
func fastOpts(in *fault.Injector) Options {
	return Options{FS: in, RetryBackoff: 50 * time.Microsecond}
}

// TestCommitRetriesTransientAppend: one injected EIO on the WAL append
// path is absorbed by the retry loop — the commit succeeds, the data
// is durable, and the health counters record the retry.
func TestCommitRetriesTransientAppend(t *testing.T) {
	in := fault.NewInjector(nil, 3)
	dir := t.TempDir()
	db, _, err := Open(dir, catalog.New(), fastOpts(in))
	if err != nil {
		t.Fatal(err)
	}
	in.Arm(fault.Rule{Op: fault.OpWrite, Path: "wal-", Count: 1, Err: fault.EIO})
	if err := db.Register("users", mkRows(t, 20, 'u')); err != nil {
		t.Fatalf("transient fault not retried: %v", err)
	}
	h := db.Health()
	if h.State != HealthOK || h.Retries == 0 {
		t.Fatalf("health = %+v, want ok with retries recorded", h)
	}
	want := snapshotOf(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The retried commit — not the rolled-back partial frame — is what
	// recovery replays.
	db2, info := openDB(t, dir, Options{})
	defer db2.Close()
	if !info.CleanShutdown {
		t.Fatalf("recovery info = %+v, want clean shutdown", info)
	}
	if got := snapshotOf(t, db2); !reflect.DeepEqual(got, want) {
		t.Fatal("recovered state differs from committed state")
	}
}

// TestPersistentWriteFailureTripsReadOnly: exhausting the retries trips
// the breaker — mutations fail typed, reads keep serving — and a
// successful Checkpoint after the fault clears restores write service.
func TestPersistentWriteFailureTripsReadOnly(t *testing.T) {
	in := fault.NewInjector(nil, 3)
	dir := t.TempDir()
	db, _, err := Open(dir, catalog.New(), fastOpts(in))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Register("users", mkRows(t, 20, 'u')); err != nil {
		t.Fatal(err)
	}
	in.Arm(fault.Rule{Op: fault.OpWrite, Path: "wal-", Err: fault.ENOSPC})
	err = db.Register("orders", mkRows(t, 10, 'o'))
	if !errors.Is(err, ErrReadOnly) || !errors.Is(err, fault.ENOSPC) {
		t.Fatalf("persistent fault = %v, want ErrReadOnly wrapping ENOSPC", err)
	}
	if h := db.Health(); h.State != HealthReadOnly || h.Cause == "" {
		t.Fatalf("health = %+v, want read-only with cause", h)
	}
	// The breaker fails fast without touching the disk again.
	before := in.Injected()
	if err := db.Replace("users", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("second mutation = %v, want ErrReadOnly", err)
	}
	if in.Injected() != before {
		t.Fatal("read-only mutation still reached the disk")
	}
	// Reads keep serving the pre-fault state.
	snap := snapshotOf(t, db)
	if len(snap["users"]) != 20 {
		t.Fatalf("read under read-only = %d rows, want 20", len(snap["users"]))
	}
	// A checkpoint attempted while the fault persists must fail and
	// leave the breaker tripped.
	if err := db.Checkpoint(); err == nil {
		t.Fatal("Checkpoint under persistent fault succeeded")
	}
	if h := db.Health(); h.State != HealthReadOnly {
		t.Fatalf("health after failed checkpoint = %+v", h)
	}
	// Fault clears; the checkpoint's snapshot + fresh WAL + dir fsync
	// succeeding is the proof the disk is healthy again.
	in.Disarm()
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after fault cleared: %v", err)
	}
	if h := db.Health(); h.State != HealthOK {
		t.Fatalf("health after recovery = %+v, want ok", h)
	}
	if err := db.Register("orders", mkRows(t, 10, 'o')); err != nil {
		t.Fatalf("write after recovery: %v", err)
	}
}

// TestSnapshotFailureDegrades: a failed automatic snapshot must not
// fail the commit it rode on — the mutation is already durable — but
// leaves the store degraded until a checkpoint succeeds.
func TestSnapshotFailureDegrades(t *testing.T) {
	in := fault.NewInjector(nil, 3)
	dir := t.TempDir()
	db, _, err := Open(dir, catalog.New(), Options{FS: in, SnapshotEvery: 1, RetryBackoff: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	in.Arm(fault.Rule{Op: fault.OpOpen, Path: "snap-", Err: fault.EIO})
	if err := db.Register("users", mkRows(t, 20, 'u')); err != nil {
		t.Fatalf("commit failed on snapshot fault: %v", err)
	}
	h := db.Health()
	if h.State != HealthDegraded || h.SnapshotFailures == 0 {
		t.Fatalf("health = %+v, want degraded with snapshot failures", h)
	}
	// Degraded is not read-only: commits still land (and re-attempt the
	// snapshot, which keeps failing).
	if err := db.Register("orders", mkRows(t, 5, 'o')); err != nil {
		t.Fatalf("commit while degraded: %v", err)
	}
	in.Disarm()
	if err := db.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint after fault cleared: %v", err)
	}
	if h := db.Health(); h.State != HealthOK {
		t.Fatalf("health after checkpoint = %+v, want ok", h)
	}
}

// TestCloseErrorDistinguishesSteps: a dirty shutdown names which step
// failed — a failed final snapshot is reported distinctly from a
// failed WAL sync.
func TestCloseErrorDistinguishesSteps(t *testing.T) {
	t.Run("snapshot", func(t *testing.T) {
		in := fault.NewInjector(nil, 3)
		db, _, err := Open(t.TempDir(), catalog.New(), fastOpts(in))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Register("users", mkRows(t, 8, 'u')); err != nil {
			t.Fatal(err)
		}
		in.Arm(fault.Rule{Op: fault.OpOpen, Path: "snap-", Err: fault.EIO})
		err = db.Close()
		var ce *CloseError
		if !errors.As(err, &ce) {
			t.Fatalf("Close = %v, want *CloseError", err)
		}
		if ce.SnapshotErr == nil || ce.SyncErr != nil || ce.CloseErr != nil {
			t.Fatalf("CloseError = %+v, want only SnapshotErr set", ce)
		}
		if !errors.Is(err, fault.EIO) {
			t.Fatalf("CloseError %v does not unwrap to EIO", err)
		}
	})
	t.Run("sync", func(t *testing.T) {
		in := fault.NewInjector(nil, 3)
		db, _, err := Open(t.TempDir(), catalog.New(), fastOpts(in))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Register("users", mkRows(t, 8, 'u')); err != nil {
			t.Fatal(err)
		}
		// Checkpoint first so Close's snapshot step is a no-op (nothing
		// committed since) and the failure is isolated to the WAL fsync.
		if err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		in.Arm(fault.Rule{Op: fault.OpSync, Path: "wal-", Err: fault.EIO})
		err = db.Close()
		var ce *CloseError
		if !errors.As(err, &ce) {
			t.Fatalf("Close = %v, want *CloseError", err)
		}
		if ce.SyncErr == nil || ce.SnapshotErr != nil {
			t.Fatalf("CloseError = %+v, want only SyncErr set", ce)
		}
	})
}

// TestRecoveryReadFaults: injected failures on the recovery read path
// (snapshot read, WAL replay) surface as opening errors, never panics.
func TestRecoveryReadFaults(t *testing.T) {
	dir := t.TempDir()
	db, _, err := Open(dir, catalog.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Register("users", mkRows(t, 8, 'u')); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	in := fault.NewInjector(nil, 3)
	in.Arm(fault.Rule{Op: fault.OpRead, Path: "snap-", Err: fault.EIO})
	if _, _, err := Open(dir, catalog.New(), Options{FS: in}); !errors.Is(err, fault.EIO) {
		t.Fatalf("recovery under EIO = %v, want EIO", err)
	}
	// With the fault cleared the directory opens fine.
	in.Disarm()
	db2, info, err := Open(dir, catalog.New(), Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if info.Tables != 1 {
		t.Fatalf("recovered %d tables, want 1", info.Tables)
	}
}
