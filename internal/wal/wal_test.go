package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"oblivjoin/internal/crypto"
	"oblivjoin/internal/table"
)

func testCipher(t *testing.T) *crypto.Cipher {
	t.Helper()
	c, _, err := crypto.NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mkRows(t *testing.T, n int, tag byte) []table.Row {
	t.Helper()
	rows := make([]table.Row, n)
	for i := range rows {
		d, err := table.MakeData(string([]byte{tag, byte('0' + i%10)}))
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = table.Row{J: uint64(i * 3), D: d}
	}
	return rows
}

// TestFrameRoundTrip: encode/decode across ops, row counts that do and
// do not fill the 16-row sealed block, and the rowless drop.
func TestFrameRoundTrip(t *testing.T) {
	ciph := testCipher(t)
	recs := []Record{
		{Op: OpRegister, Version: 1, Name: "users", Rows: mkRows(t, 16, 'a')},
		{Op: OpReplace, Version: 2, Name: "users", Rows: mkRows(t, 17, 'b')},
		{Op: OpRegister, Version: 3, Name: "empty", Rows: []table.Row{}},
		{Op: OpDrop, Version: 4, Name: "users"},
		{Op: OpReplace, Version: 5, Name: "x", Rows: mkRows(t, 1, 'c')},
	}
	var buf []byte
	var err error
	for _, rec := range recs {
		buf, err = encodeFrame(buf, ciph, rec)
		if err != nil {
			t.Fatalf("encode %v: %v", rec.Op, err)
		}
	}
	off := 0
	for i, want := range recs {
		got, next, err := decodeFrame(ciph, buf, off)
		if err != nil {
			t.Fatalf("decode record %d: %v", i, err)
		}
		if got.Op != want.Op || got.Version != want.Version || got.Name != want.Name {
			t.Fatalf("record %d = %+v, want %+v", i, got, want)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("record %d: %d rows, want %d", i, len(got.Rows), len(want.Rows))
		}
		for j := range want.Rows {
			if got.Rows[j] != want.Rows[j] {
				t.Fatalf("record %d row %d = %v, want %v", i, j, got.Rows[j], want.Rows[j])
			}
		}
		off = next
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

// TestFrameRejectsBadOp: encoding an unknown op is a format error, not
// bytes on disk.
func TestFrameRejectsBadOp(t *testing.T) {
	if _, err := encodeFrame(nil, testCipher(t), Record{Op: 9, Name: "t"}); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

// writeLog creates a WAL with the given records and returns its path.
func writeLog(t *testing.T, ciph *crypto.Cipher, base uint64, recs []Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal-test.log")
	l, err := Create(path, ciph, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func threeRecords(t *testing.T) []Record {
	return []Record{
		{Op: OpRegister, Version: 8, Name: "t1", Rows: mkRows(t, 20, 'a')},
		{Op: OpReplace, Version: 9, Name: "t1", Rows: mkRows(t, 4, 'b')},
		{Op: OpDrop, Version: 10, Name: "t1"},
	}
}

// TestReplayRoundTrip: a synced log replays every record in order with
// the header's base version and a goodSize equal to the file length.
func TestReplayRoundTrip(t *testing.T) {
	ciph := testCipher(t)
	recs := threeRecords(t)
	path := writeLog(t, ciph, 7, recs)

	var got []Record
	base, n, goodSize, tail, err := ReplayFile(path, ciph, func(r Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil || tail != nil {
		t.Fatalf("replay: err=%v tail=%v", err, tail)
	}
	if base != 7 || n != len(recs) {
		t.Fatalf("base=%d n=%d, want 7, %d", base, n, len(recs))
	}
	st, _ := os.Stat(path)
	if goodSize != st.Size() {
		t.Fatalf("goodSize = %d, file is %d", goodSize, st.Size())
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("replayed records differ:\n got %+v\nwant %+v", got, recs)
	}
}

// TestReplayTornTail: a file cut mid-record yields the intact prefix
// plus a tail whose cause is ErrTruncated — the crash-during-append
// signature — with goodSize pointing at the damage.
func TestReplayTornTail(t *testing.T) {
	ciph := testCipher(t)
	recs := threeRecords(t)
	path := writeLog(t, ciph, 7, recs)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut 5 bytes into the final record's frame.
	offs := frameOffsets(t, ciph, data)
	cut := offs[len(offs)-1] + 5
	if err := os.WriteFile(path, data[:cut], 0o600); err != nil {
		t.Fatal(err)
	}

	n := 0
	base, cnt, goodSize, tail, err := ReplayFile(path, ciph, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if base != 7 || cnt != 2 || n != 2 {
		t.Fatalf("base=%d cnt=%d n=%d, want 7,2,2", base, cnt, n)
	}
	if tail == nil || !errors.Is(tail, ErrTruncated) {
		t.Fatalf("tail = %v, want ErrTruncated", tail)
	}
	if goodSize != int64(offs[len(offs)-1]) {
		t.Fatalf("goodSize = %d, want %d", goodSize, offs[len(offs)-1])
	}
	if tail.Index != 2 || tail.Offset != goodSize {
		t.Fatalf("tail position = record %d offset %d, want 2, %d", tail.Index, tail.Offset, goodSize)
	}
}

// TestReplayShortHeader: 0 < len < headerLen is a torn tail (crash
// between create and header sync), not a fatal error.
func TestReplayShortHeader(t *testing.T) {
	ciph := testCipher(t)
	for _, n := range []int{0, 1, headerLen - 1} {
		path := filepath.Join(t.TempDir(), "short.log")
		if err := os.WriteFile(path, make([]byte, n), 0o600); err != nil {
			t.Fatal(err)
		}
		base, cnt, good, tail, err := ReplayFile(path, ciph, func(Record) error { return nil })
		if err != nil {
			t.Fatalf("len %d: err = %v", n, err)
		}
		if tail == nil || !errors.Is(tail, ErrTruncated) {
			t.Fatalf("len %d: tail = %v, want ErrTruncated", n, tail)
		}
		if base != 0 || cnt != 0 || good != 0 {
			t.Fatalf("len %d: base=%d cnt=%d good=%d", n, base, cnt, good)
		}
	}
}

// TestReplayBadMagic: a wrong magic is fatal corruption — recovery must
// not guess at a file that was never a WAL.
func TestReplayBadMagic(t *testing.T) {
	ciph := testCipher(t)
	path := filepath.Join(t.TempDir(), "bad.log")
	data := make([]byte, headerLen)
	copy(data, "NOTAWAL0")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	_, _, _, tail, err := ReplayFile(path, ciph, func(Record) error { return nil })
	if tail != nil {
		t.Fatalf("tail = %v, want nil (fatal, not discardable)", tail)
	}
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

// TestReplayBitFlip: a flipped body byte fails the CRC before any
// decryption is attempted.
func TestReplayBitFlip(t *testing.T) {
	ciph := testCipher(t)
	recs := threeRecords(t)
	path := writeLog(t, ciph, 7, recs)
	data, _ := os.ReadFile(path)
	offs := frameOffsets(t, ciph, data)
	// Flip one byte inside the second record's body.
	data[offs[1]+frameHdr+10] ^= 0x40
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}

	_, cnt, goodSize, tail, err := ReplayFile(path, ciph, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 1 {
		t.Fatalf("cnt = %d, want 1 (only the record before the damage)", cnt)
	}
	if tail == nil || !errors.Is(tail, ErrChecksum) {
		t.Fatalf("tail = %v, want ErrChecksum", tail)
	}
	if goodSize != int64(offs[1]) || tail.Index != 1 {
		t.Fatalf("damage at offset %d record %d, want %d record 1", goodSize, tail.Index, offs[1])
	}
}

// TestReplayAuthFailure: a flip with the CRC recomputed passes the
// integrity check but fails authenticated decryption — a tamper, not a
// disk error — surfacing crypto.ErrAuth.
func TestReplayAuthFailure(t *testing.T) {
	ciph := testCipher(t)
	recs := threeRecords(t)
	path := writeLog(t, ciph, 7, recs)
	data, _ := os.ReadFile(path)
	offs := frameOffsets(t, ciph, data)
	start := offs[1]
	bodyLen := int(binary.LittleEndian.Uint32(data[start:]))
	body := data[start+frameHdr : start+frameHdr+bodyLen]
	body[8] ^= 0x01 // inside sealedMeta
	binary.LittleEndian.PutUint32(data[start+4:], crc32.ChecksumIEEE(body))
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}

	_, cnt, _, tail, err := ReplayFile(path, ciph, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 1 || tail == nil || !errors.Is(tail, crypto.ErrAuth) {
		t.Fatalf("cnt=%d tail=%v, want 1 record and crypto.ErrAuth", cnt, tail)
	}
}

// TestReplayWrongKey: a log read with a different key fails
// authentication on the first record — sealed at rest means unreadable
// without the directory's master key.
func TestReplayWrongKey(t *testing.T) {
	path := writeLog(t, testCipher(t), 7, threeRecords(t))
	_, cnt, _, tail, err := ReplayFile(path, testCipher(t), func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 0 || tail == nil || !errors.Is(tail, crypto.ErrAuth) {
		t.Fatalf("cnt=%d tail=%v, want 0 records and crypto.ErrAuth", cnt, tail)
	}
}

// TestSnapshotRoundTrip: written tables come back exactly, keyed by
// the snapshot version.
func TestSnapshotRoundTrip(t *testing.T) {
	ciph := testCipher(t)
	path := filepath.Join(t.TempDir(), "snap-test.snap")
	tables := map[string][]table.Row{
		"a":     mkRows(t, 33, 'a'),
		"b":     mkRows(t, 1, 'b'),
		"empty": {},
	}
	if err := WriteSnapshot(path, ciph, 42, tables); err != nil {
		t.Fatal(err)
	}
	ver, got, err := ReadSnapshot(path, ciph)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 42 {
		t.Fatalf("version = %d, want 42", ver)
	}
	if !reflect.DeepEqual(got, tables) {
		t.Fatalf("tables differ:\n got %v\nwant %v", got, tables)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestSnapshotTruncationIsCorruption: snapshots are renamed into place
// whole, so a truncated one is a typed error — never silent partial
// data.
func TestSnapshotTruncationIsCorruption(t *testing.T) {
	ciph := testCipher(t)
	path := filepath.Join(t.TempDir(), "snap-test.snap")
	if err := WriteSnapshot(path, ciph, 3, map[string][]table.Row{"t": mkRows(t, 40, 'x')}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-7], 0o600); err != nil {
		t.Fatal(err)
	}
	_, _, err := ReadSnapshot(path, ciph)
	var te *TailError
	if !errors.As(err, &te) || !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v, want *TailError wrapping ErrTruncated", err)
	}
}

// frameOffsets returns the byte offset of every frame in data.
func frameOffsets(t *testing.T, ciph *crypto.Cipher, data []byte) []int {
	t.Helper()
	var offs []int
	off := headerLen
	for off < len(data) {
		offs = append(offs, off)
		_, next, err := decodeFrame(ciph, data, off)
		if err != nil {
			t.Fatalf("frameOffsets: %v", err)
		}
		off = next
	}
	return offs
}
