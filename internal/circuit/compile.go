package circuit

import (
	"fmt"
	"sort"

	"oblivjoin/internal/typesys"
)

// Compiled is a program lowered to a boolean circuit: the builder plus
// the layout of inputs and outputs.
type Compiled struct {
	B *Builder
	// Width is the word width in bits.
	Width int
	// InputOrder lists (array, index) cells in the order their bits
	// appear in the input vector.
	InputOrder []Cell
	// Outputs maps each array cell to the word holding its final value.
	Outputs map[Cell]Word
}

// Cell names one array slot.
type Cell struct {
	Array string
	Index int
}

// Compile lowers a straight-line typesys program (run Transform first
// if it has control flow) to a boolean circuit over words of the given
// width. Array sizes give the public lengths; every cell becomes Width
// input bits and Width output bits. Variables start at zero.
//
// The compiler recognizes the multiplexer pattern the §3.4
// transformation emits — t·c + f·(1−c) with c ∈ {0,1} — and lowers it
// to a proper w-bit mux (one AND and two XORs per bit) instead of two
// full multipliers, exactly as a production circuit compiler would.
func Compile(p *typesys.Program, arraySizes map[string]int, width int) (*Compiled, error) {
	if !typesys.IsStraightLine(p) {
		return nil, fmt.Errorf("circuit: program has control flow; apply typesys.Transform first")
	}
	if width <= 0 || width > 64 {
		return nil, fmt.Errorf("circuit: width %d out of range (1..64)", width)
	}
	c := &Compiled{
		B:       NewBuilder(),
		Width:   width,
		Outputs: map[Cell]Word{},
	}
	// Deterministic input layout: arrays sorted by name, cells in order.
	names := make([]string, 0, len(arraySizes))
	for n := range arraySizes {
		names = append(names, n)
	}
	sort.Strings(names)
	arrays := map[string][]Word{}
	for _, n := range names {
		size := arraySizes[n]
		cells := make([]Word, size)
		for i := range cells {
			cells[i] = c.B.InputWord(width)
			c.InputOrder = append(c.InputOrder, Cell{Array: n, Index: i})
		}
		arrays[n] = cells
	}
	vars := map[string]Word{}

	env := &compileEnv{b: c.B, width: width, vars: vars, arrays: arrays}
	for _, s := range p.Body {
		if err := env.stmt(s); err != nil {
			return nil, err
		}
	}
	for name, cells := range arrays {
		for i, w := range cells {
			c.Outputs[Cell{Array: name, Index: i}] = w
		}
	}
	return c, nil
}

type compileEnv struct {
	b      *Builder
	width  int
	vars   map[string]Word
	arrays map[string][]Word
}

func (e *compileEnv) varWord(name string) Word {
	if w, ok := e.vars[name]; ok {
		return w
	}
	w := e.b.ConstWord(0, e.width)
	e.vars[name] = w
	return w
}

func (e *compileEnv) stmt(s typesys.Stmt) error {
	switch v := s.(type) {
	case typesys.Assign:
		w, err := e.expr(v.E)
		if err != nil {
			return err
		}
		e.vars[v.X] = w
		return nil
	case typesys.Read:
		idx, ok := constIndex(v.Index)
		if !ok {
			return fmt.Errorf("circuit: read index %v not constant; transform first", v.Index)
		}
		cells, ok := e.arrays[v.Array]
		if !ok || idx >= len(cells) {
			return fmt.Errorf("circuit: read %s[%d] out of declared bounds", v.Array, idx)
		}
		e.vars[v.X] = cells[idx]
		return nil
	case typesys.Write:
		idx, ok := constIndex(v.Index)
		if !ok {
			return fmt.Errorf("circuit: write index %v not constant; transform first", v.Index)
		}
		cells, ok := e.arrays[v.Array]
		if !ok || idx >= len(cells) {
			return fmt.Errorf("circuit: write %s[%d] out of declared bounds", v.Array, idx)
		}
		w, err := e.expr(v.E)
		if err != nil {
			return err
		}
		cells[idx] = w
		return nil
	default:
		return fmt.Errorf("circuit: unsupported statement %T (not straight-line?)", s)
	}
}

func constIndex(e typesys.Expr) (int, bool) {
	c, ok := e.(typesys.Const)
	if !ok {
		return 0, false
	}
	return int(c.Value), true
}

// matchMux recognizes t*c + f*(1-c) (either operand order) and returns
// (c, t, f) expressions.
func matchMux(e typesys.Expr) (cond, t, f typesys.Expr, ok bool) {
	add, isAdd := e.(typesys.Op)
	if !isAdd || add.Kind != "+" {
		return nil, nil, nil, false
	}
	side := func(x typesys.Expr) (val, c typesys.Expr, neg bool, ok bool) {
		m, isMul := x.(typesys.Op)
		if !isMul || m.Kind != "*" {
			return nil, nil, false, false
		}
		// val * cond-ish: cond-ish is Var or (1 - Var).
		for _, ord := range [2][2]typesys.Expr{{m.A, m.B}, {m.B, m.A}} {
			v, candidate := ord[0], ord[1]
			if sub, isSub := candidate.(typesys.Op); isSub && sub.Kind == "-" {
				if one, isOne := sub.A.(typesys.Const); isOne && one.Value == 1 {
					return v, sub.B, true, true
				}
			}
			if _, isVar := candidate.(typesys.Var); isVar {
				return v, candidate, false, true
			}
		}
		return nil, nil, false, false
	}
	lv, lc, lneg, lok := side(add.A)
	rv, rc, rneg, rok := side(add.B)
	if !lok || !rok || lneg == rneg {
		return nil, nil, nil, false
	}
	if fmt.Sprint(lc) != fmt.Sprint(rc) {
		return nil, nil, nil, false
	}
	if lneg {
		return lc, rv, lv, true
	}
	return lc, lv, rv, true
}

func (e *compileEnv) expr(x typesys.Expr) (Word, error) {
	if c, t, f, ok := matchMux(x); ok {
		cw, err := e.expr(c)
		if err != nil {
			return nil, err
		}
		tw, err := e.expr(t)
		if err != nil {
			return nil, err
		}
		fw, err := e.expr(f)
		if err != nil {
			return nil, err
		}
		// The condition is a 0/1 word (comparison result): bit 0 is c.
		return e.b.MuxWord(cw[0], tw, fw), nil
	}
	switch v := x.(type) {
	case typesys.Var:
		return e.varWord(v.Name), nil
	case typesys.Const:
		return e.b.ConstWord(v.Value, e.width), nil
	case typesys.Op:
		a, err := e.expr(v.A)
		if err != nil {
			return nil, err
		}
		b2, err := e.expr(v.B)
		if err != nil {
			return nil, err
		}
		switch v.Kind {
		case "+":
			return e.b.Add(a, b2), nil
		case "-":
			d, _ := e.b.Sub(a, b2)
			return d, nil
		case "*":
			return e.b.Mul(a, b2), nil
		case "<":
			return e.b.BoolToWord(e.b.Lt(a, b2), e.width), nil
		case "==":
			return e.b.BoolToWord(e.b.Eq(a, b2), e.width), nil
		case "&":
			return e.b.AndWord(a, b2), nil
		case "|":
			return e.b.OrWord(a, b2), nil
		case "^":
			return e.b.XorWord(a, b2), nil
		default:
			return nil, fmt.Errorf("circuit: unsupported operator %q", v.Kind)
		}
	default:
		return nil, fmt.Errorf("circuit: unsupported expression %T", x)
	}
}

// Run evaluates the compiled circuit on concrete array contents and
// returns the final array states.
func (c *Compiled) Run(arrays map[string][]uint64) (map[string][]uint64, error) {
	var bits []bool
	for _, cell := range c.InputOrder {
		data, ok := arrays[cell.Array]
		if !ok || cell.Index >= len(data) {
			return nil, fmt.Errorf("circuit: missing input %s[%d]", cell.Array, cell.Index)
		}
		v := data[cell.Index]
		if c.Width < 64 && v>>uint(c.Width) != 0 {
			return nil, fmt.Errorf("circuit: input %s[%d]=%d exceeds %d-bit width",
				cell.Array, cell.Index, v, c.Width)
		}
		for i := 0; i < c.Width; i++ {
			bits = append(bits, (v>>i)&1 == 1)
		}
	}
	get := c.B.Eval(bits)
	out := map[string][]uint64{}
	for cell, w := range c.Outputs {
		arr := out[cell.Array]
		for len(arr) <= cell.Index {
			arr = append(arr, 0)
		}
		arr[cell.Index] = WordValue(get, w)
		out[cell.Array] = arr
	}
	return out, nil
}
