// Package circuit lowers straight-line programs of the Figure 6
// language (after the §3.4 transformation, see internal/typesys) to
// boolean circuits — the representation secure multiparty computation
// and FHE actually evaluate (§2 of the paper). Having a concrete gate
// count substantiates the paper's claim that the join has "very low
// circuit complexity": the algorithm is a fixed composition of
// comparators and multiplexers, with no ORAM machinery inflating it.
//
// The package provides a gate-level builder (AND/XOR/NOT over wires,
// with ripple-carry adders, subtractors, comparators, equality and
// word multiplexers), a compiler from straight-line typesys programs,
// an evaluator, and gate/depth statistics.
package circuit

import "fmt"

// GateKind enumerates the gate basis. XOR is free in many SMC
// protocols, so counts are reported per kind.
type GateKind uint8

const (
	// GateInput marks an input wire.
	GateInput GateKind = iota
	// GateConst is a constant 0 or 1 (B holds the bit).
	GateConst
	// GateAnd, GateXor and GateNot are the logic basis.
	GateAnd
	GateXor
	GateNot
)

// Wire identifies the output of a gate.
type Wire int32

// gate is one node: Kind plus input wires (B unused for NOT, holds the
// constant for CONST).
type gate struct {
	kind GateKind
	a, b Wire
}

// Builder constructs a circuit incrementally with structural hashing of
// repeated gates.
type Builder struct {
	gates  []gate
	nIn    int
	zero   Wire
	one    Wire
	inited bool
	cache  map[gate]Wire
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	b := &Builder{cache: map[gate]Wire{}}
	b.zero = b.emit(gate{kind: GateConst, b: 0})
	b.one = b.emit(gate{kind: GateConst, b: 1})
	b.inited = true
	return b
}

func (b *Builder) emit(g gate) Wire {
	if b.inited {
		if w, ok := b.cache[g]; ok && g.kind != GateInput {
			return w
		}
	}
	b.gates = append(b.gates, g)
	w := Wire(len(b.gates) - 1)
	if b.inited && g.kind != GateInput {
		b.cache[g] = w
	}
	return w
}

// Input adds a fresh input wire.
func (b *Builder) Input() Wire {
	b.nIn++
	return b.emit(gate{kind: GateInput})
}

// Const returns the constant wire for bit v.
func (b *Builder) Const(v uint64) Wire {
	if v&1 == 1 {
		return b.one
	}
	return b.zero
}

// And returns a ∧ b.
func (b *Builder) And(x, y Wire) Wire {
	if x == b.zero || y == b.zero {
		return b.zero
	}
	if x == b.one {
		return y
	}
	if y == b.one {
		return x
	}
	if x > y {
		x, y = y, x
	}
	return b.emit(gate{kind: GateAnd, a: x, b: y})
}

// Xor returns a ⊕ b.
func (b *Builder) Xor(x, y Wire) Wire {
	if x == b.zero {
		return y
	}
	if y == b.zero {
		return x
	}
	if x == y {
		return b.zero
	}
	if x > y {
		x, y = y, x
	}
	return b.emit(gate{kind: GateXor, a: x, b: y})
}

// Not returns ¬a.
func (b *Builder) Not(x Wire) Wire {
	if x == b.zero {
		return b.one
	}
	if x == b.one {
		return b.zero
	}
	return b.emit(gate{kind: GateNot, a: x})
}

// Or returns a ∨ b (derived: a⊕b⊕ab).
func (b *Builder) Or(x, y Wire) Wire {
	return b.Xor(b.Xor(x, y), b.And(x, y))
}

// MuxBit returns c ? t : f using the 1-AND construction
// f ⊕ c·(t⊕f).
func (b *Builder) MuxBit(c, t, f Wire) Wire {
	return b.Xor(f, b.And(c, b.Xor(t, f)))
}

// Word is a little-endian bundle of wires representing an unsigned
// integer modulo 2^len.
type Word []Wire

// InputWord adds w fresh input wires.
func (b *Builder) InputWord(w int) Word {
	out := make(Word, w)
	for i := range out {
		out[i] = b.Input()
	}
	return out
}

// ConstWord encodes v into w bits.
func (b *Builder) ConstWord(v uint64, w int) Word {
	out := make(Word, w)
	for i := range out {
		out[i] = b.Const(v >> i)
	}
	return out
}

func sameLen(x, y Word) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("circuit: word widths differ (%d vs %d)", len(x), len(y)))
	}
}

// Add returns x + y mod 2^w (ripple carry).
func (b *Builder) Add(x, y Word) Word {
	sameLen(x, y)
	out := make(Word, len(x))
	carry := b.zero
	for i := range x {
		s := b.Xor(x[i], y[i])
		out[i] = b.Xor(s, carry)
		carry = b.Or(b.And(x[i], y[i]), b.And(s, carry))
	}
	return out
}

// Sub returns x − y mod 2^w and the final borrow bit (1 when x < y).
func (b *Builder) Sub(x, y Word) (Word, Wire) {
	sameLen(x, y)
	out := make(Word, len(x))
	borrow := b.zero
	for i := range x {
		d := b.Xor(x[i], y[i])
		out[i] = b.Xor(d, borrow)
		// borrow' = (¬x ∧ y) ∨ (¬(x⊕y) ∧ borrow)
		borrow = b.Or(b.And(b.Not(x[i]), y[i]), b.And(b.Not(d), borrow))
	}
	return out, borrow
}

// Lt returns the bit x < y (unsigned).
func (b *Builder) Lt(x, y Word) Wire {
	_, borrow := b.Sub(x, y)
	return borrow
}

// Eq returns the bit x == y.
func (b *Builder) Eq(x, y Word) Wire {
	sameLen(x, y)
	acc := b.one
	for i := range x {
		acc = b.And(acc, b.Not(b.Xor(x[i], y[i])))
	}
	return acc
}

// Mul returns x·y mod 2^w (shift-and-add).
func (b *Builder) Mul(x, y Word) Word {
	sameLen(x, y)
	w := len(x)
	acc := b.ConstWord(0, w)
	for i := 0; i < w; i++ {
		// Partial product: (x << i) masked by y[i].
		part := make(Word, w)
		for j := 0; j < w; j++ {
			if j < i {
				part[j] = b.zero
			} else {
				part[j] = b.And(x[j-i], y[i])
			}
		}
		acc = b.Add(acc, part)
	}
	return acc
}

// MuxWord returns c ? t : f bitwise.
func (b *Builder) MuxWord(c Wire, t, f Word) Word {
	sameLen(t, f)
	out := make(Word, len(t))
	for i := range t {
		out[i] = b.MuxBit(c, t[i], f[i])
	}
	return out
}

// AndWord, OrWord and XorWord apply bitwise logic.
func (b *Builder) AndWord(x, y Word) Word {
	sameLen(x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.And(x[i], y[i])
	}
	return out
}

// OrWord is bitwise OR.
func (b *Builder) OrWord(x, y Word) Word {
	sameLen(x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Or(x[i], y[i])
	}
	return out
}

// XorWord is bitwise XOR.
func (b *Builder) XorWord(x, y Word) Word {
	sameLen(x, y)
	out := make(Word, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], y[i])
	}
	return out
}

// BoolToWord zero-extends a bit into a word.
func (b *Builder) BoolToWord(c Wire, w int) Word {
	out := b.ConstWord(0, w)
	out[0] = c
	return out
}

// Stats summarizes a built circuit.
type Stats struct {
	Inputs int
	Gates  int // total non-input, non-const gates
	And    int
	Xor    int
	Not    int
	Depth  int // longest input→output path over all gates
}

// Stats computes circuit statistics.
func (b *Builder) Stats() Stats {
	st := Stats{Inputs: b.nIn}
	depth := make([]int, len(b.gates))
	maxDepth := 0
	for i, g := range b.gates {
		switch g.kind {
		case GateAnd:
			st.And++
			st.Gates++
			depth[i] = 1 + max(depth[g.a], depth[g.b])
		case GateXor:
			st.Xor++
			st.Gates++
			depth[i] = 1 + max(depth[g.a], depth[g.b])
		case GateNot:
			st.Not++
			st.Gates++
			depth[i] = 1 + depth[g.a]
		}
		if depth[i] > maxDepth {
			maxDepth = depth[i]
		}
	}
	st.Depth = maxDepth
	return st
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Eval computes all wire values for the given input bits (in Input()
// order) and returns a lookup function.
func (b *Builder) Eval(inputs []bool) func(Wire) bool {
	if len(inputs) != b.nIn {
		panic(fmt.Sprintf("circuit: %d inputs provided, circuit has %d", len(inputs), b.nIn))
	}
	vals := make([]bool, len(b.gates))
	next := 0
	for i, g := range b.gates {
		switch g.kind {
		case GateInput:
			vals[i] = inputs[next]
			next++
		case GateConst:
			vals[i] = g.b == 1
		case GateAnd:
			vals[i] = vals[g.a] && vals[g.b]
		case GateXor:
			vals[i] = vals[g.a] != vals[g.b]
		case GateNot:
			vals[i] = !vals[g.a]
		}
	}
	return func(w Wire) bool { return vals[w] }
}

// WordValue decodes a word under an evaluation.
func WordValue(get func(Wire) bool, w Word) uint64 {
	var v uint64
	for i, wire := range w {
		if get(wire) {
			v |= 1 << i
		}
	}
	return v
}
