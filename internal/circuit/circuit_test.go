package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oblivjoin/internal/typesys"
)

const testWidth = 16

func evalWord2(t *testing.T, f func(b *Builder, x, y Word) Word, a, bVal uint64) uint64 {
	t.Helper()
	b := NewBuilder()
	x := b.InputWord(testWidth)
	y := b.InputWord(testWidth)
	out := f(b, x, y)
	var bits []bool
	for i := 0; i < testWidth; i++ {
		bits = append(bits, (a>>i)&1 == 1)
	}
	for i := 0; i < testWidth; i++ {
		bits = append(bits, (bVal>>i)&1 == 1)
	}
	get := b.Eval(bits)
	return WordValue(get, out)
}

func TestAdderSubtractorMultiplier(t *testing.T) {
	mask := uint64(1<<testWidth - 1)
	f := func(a, b uint16) bool {
		av, bv := uint64(a), uint64(b)
		sum := evalWord2(t, func(bb *Builder, x, y Word) Word { return bb.Add(x, y) }, av, bv)
		if sum != (av+bv)&mask {
			return false
		}
		diff := evalWord2(t, func(bb *Builder, x, y Word) Word {
			d, _ := bb.Sub(x, y)
			return d
		}, av, bv)
		if diff != (av-bv)&mask {
			return false
		}
		prod := evalWord2(t, func(bb *Builder, x, y Word) Word { return bb.Mul(x, y) }, av, bv)
		return prod == (av*bv)&mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestComparatorsAndEquality(t *testing.T) {
	f := func(a, b uint16) bool {
		av, bv := uint64(a), uint64(b)
		lt := evalWord2(t, func(bb *Builder, x, y Word) Word {
			return bb.BoolToWord(bb.Lt(x, y), testWidth)
		}, av, bv)
		eq := evalWord2(t, func(bb *Builder, x, y Word) Word {
			return bb.BoolToWord(bb.Eq(x, y), testWidth)
		}, av, bv)
		wantLt := uint64(0)
		if av < bv {
			wantLt = 1
		}
		wantEq := uint64(0)
		if av == bv {
			wantEq = 1
		}
		return lt == wantLt && eq == wantEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBitwiseOpsAndMux(t *testing.T) {
	f := func(a, b uint16, c bool) bool {
		av, bv := uint64(a), uint64(b)
		and := evalWord2(t, func(bb *Builder, x, y Word) Word { return bb.AndWord(x, y) }, av, bv)
		or := evalWord2(t, func(bb *Builder, x, y Word) Word { return bb.OrWord(x, y) }, av, bv)
		xor := evalWord2(t, func(bb *Builder, x, y Word) Word { return bb.XorWord(x, y) }, av, bv)
		if and != av&bv || or != av|bv || xor != av^bv {
			return false
		}
		cv := uint64(0)
		if c {
			cv = 1
		}
		mux := evalWord2(t, func(bb *Builder, x, y Word) Word {
			cw := bb.ConstWord(cv, testWidth)
			return bb.MuxWord(cw[0], x, y)
		}, av, bv)
		want := bv
		if c {
			want = av
		}
		return mux == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounts(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	y := b.Input()
	_ = b.And(x, y)
	_ = b.Xor(x, y)
	_ = b.Not(x)
	st := b.Stats()
	if st.Inputs != 2 || st.And != 1 || st.Xor != 1 || st.Not != 1 || st.Gates != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Depth != 1 {
		t.Fatalf("depth = %d", st.Depth)
	}
}

func TestStructuralHashingDeduplicates(t *testing.T) {
	b := NewBuilder()
	x := b.Input()
	y := b.Input()
	g1 := b.And(x, y)
	g2 := b.And(y, x) // commuted — must hit the cache
	if g1 != g2 {
		t.Fatal("structural hashing missed commuted AND")
	}
}

func TestCompileCompareExchange(t *testing.T) {
	p, err := typesys.Transform(typesys.CompareExchange(0, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(p, map[string]int{"a": 2}, testWidth)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][2]uint64{{3, 9}, {9, 3}, {5, 5}, {0, 1}, {1, 0}}
	for _, in := range cases {
		out, err := comp.Run(map[string][]uint64{"a": in[:]})
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := in[0], in[1]
		if lo > hi {
			lo, hi = hi, lo
		}
		if out["a"][0] != lo || out["a"][1] != hi {
			t.Fatalf("in %v: out %v", in, out["a"])
		}
	}
}

func TestCompileBitonicSortCircuit(t *testing.T) {
	const n = 6
	flat, err := typesys.Transform(typesys.BuildBitonicProgram(n), nil)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(flat, map[string]int{"a": n}, testWidth)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		in := make([]uint64, n)
		for i := range in {
			in[i] = uint64(rng.Intn(100))
		}
		out, err := comp.Run(map[string][]uint64{"a": in})
		if err != nil {
			t.Fatal(err)
		}
		got := out["a"]
		for i := 1; i < n; i++ {
			if got[i-1] > got[i] {
				t.Fatalf("circuit did not sort: %v → %v", in, got)
			}
		}
	}
	st := comp.B.Stats()
	if st.Gates == 0 || st.Depth == 0 {
		t.Fatalf("implausible stats %+v", st)
	}
	t.Logf("bitonic n=%d, %d-bit words: %d gates (%d AND), depth %d",
		n, testWidth, st.Gates, st.And, st.Depth)
}

func TestCompileAgreesWithInterpreter(t *testing.T) {
	// Random straight-line-able program: the linear scan, transformed.
	p := typesys.LinearScan()
	flat, err := typesys.Transform(p, map[string]uint64{"n": 5})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compile(flat, map[string]int{"a": 5}, testWidth)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		in := make([]uint64, 5)
		for i := range in {
			in[i] = uint64(rng.Intn(8))
		}
		got, err := comp.Run(map[string][]uint64{"a": in})
		if err != nil {
			t.Fatal(err)
		}
		interp := typesys.NewInterp(map[string][]uint64{"a": in}, nil)
		interp.Vars["n"] = 5
		if err := interp.Run(flat); err != nil {
			t.Fatal(err)
		}
		for i := range in {
			if got["a"][i] != interp.Arrays["a"][i] {
				t.Fatalf("cell %d: circuit %d, interpreter %d", i, got["a"][i], interp.Arrays["a"][i])
			}
		}
	}
}

func TestCompileRejects(t *testing.T) {
	if _, err := Compile(typesys.CompareExchange(0, 1), map[string]int{"a": 2}, testWidth); err == nil {
		t.Fatal("accepted program with control flow")
	}
	flat, _ := typesys.Transform(typesys.CompareExchange(0, 1), nil)
	if _, err := Compile(flat, map[string]int{"a": 2}, 0); err == nil {
		t.Fatal("accepted zero width")
	}
	if _, err := Compile(flat, map[string]int{"a": 1}, testWidth); err == nil {
		t.Fatal("accepted out-of-bounds array size")
	}
}

func TestRunRejectsOversizedInputs(t *testing.T) {
	flat, _ := typesys.Transform(typesys.CompareExchange(0, 1), nil)
	comp, err := Compile(flat, map[string]int{"a": 2}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comp.Run(map[string][]uint64{"a": {300, 1}}); err == nil {
		t.Fatal("accepted input exceeding word width")
	}
}

func TestMuxPatternLowering(t *testing.T) {
	// The §3.4 mux must not expand into multipliers: compare gate
	// counts of a compiled mux against a compiled multiplication.
	mkProg := func(e typesys.Expr) *typesys.Program {
		return &typesys.Program{
			Vars:   map[string]typesys.Label{"c": typesys.H, "x": typesys.H, "y": typesys.H, "z": typesys.H},
			Arrays: map[string]typesys.Label{"a": typesys.H},
			Body: []typesys.Stmt{
				typesys.Read{X: "x", Array: "a", Index: typesys.Const{Value: 0}},
				typesys.Read{X: "y", Array: "a", Index: typesys.Const{Value: 1}},
				typesys.Assign{X: "c", E: typesys.Op{Kind: "<", A: typesys.Var{Name: "x"}, B: typesys.Var{Name: "y"}}},
				typesys.Write{Array: "a", Index: typesys.Const{Value: 0}, E: e},
			},
		}
	}
	mux := typesys.Op{Kind: "+",
		A: typesys.Op{Kind: "*", A: typesys.Var{Name: "x"}, B: typesys.Var{Name: "c"}},
		B: typesys.Op{Kind: "*", A: typesys.Var{Name: "y"},
			B: typesys.Op{Kind: "-", A: typesys.Const{Value: 1}, B: typesys.Var{Name: "c"}}},
	}
	mul := typesys.Op{Kind: "*", A: typesys.Var{Name: "x"}, B: typesys.Var{Name: "y"}}

	cMux, err := Compile(mkProg(mux), map[string]int{"a": 2}, testWidth)
	if err != nil {
		t.Fatal(err)
	}
	cMul, err := Compile(mkProg(mul), map[string]int{"a": 2}, testWidth)
	if err != nil {
		t.Fatal(err)
	}
	if cMux.B.Stats().Gates*2 >= cMul.B.Stats().Gates {
		t.Fatalf("mux lowering not optimized: mux %d gates vs mul %d gates",
			cMux.B.Stats().Gates, cMul.B.Stats().Gates)
	}
	// And it must still compute a correct select.
	out, err := cMux.Run(map[string][]uint64{"a": {3, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if out["a"][0] != 3 { // x<y → keep x
		t.Fatalf("mux circuit wrong: %v", out["a"])
	}
	out, err = cMux.Run(map[string][]uint64{"a": {9, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if out["a"][0] != 3 { // x≥y → take y
		t.Fatalf("mux circuit wrong: %v", out["a"])
	}
}
