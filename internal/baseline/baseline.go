// Package baseline implements the comparison join algorithms of Table 1
// of the paper, so the repository's benchmarks can regenerate the
// comparison empirically:
//
//   - SortMergeJoin — the standard non-oblivious O(m′ log m′) sort-merge
//     join, the performance yardstick (Figure 8's bottom curve);
//   - NestedLoopJoin — the trivial oblivious join: materialize all n1·n2
//     candidate pairs, then obliviously filter, O(n1·n2 log²(n1·n2));
//   - OpaqueJoin — the oblivious sort-merge of Opaque/ObliDB, restricted
//     to primary–foreign-key joins, O(n log² n);
//   - ORAMJoin — the generic approach: the standard sort-merge join run
//     over Path ORAM-backed arrays.
//
// All variants allocate from a memory.Space so physical access counts
// and traces are comparable across algorithms.
package baseline

import (
	"errors"
	"sort"

	"oblivjoin/internal/bitonic"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/table"
)

// ErrNotPrimaryKey is returned by OpaqueJoin when the left table has
// duplicate join values and therefore is not a primary-key table.
var ErrNotPrimaryKey = errors.New("baseline: left table is not a primary-key table")

// SortMergeJoin is the standard insecure sort-merge join. Its control
// flow and memory accesses are input-dependent — it exists as the
// performance baseline, not as a secure algorithm.
func SortMergeJoin(sp *memory.Space, rows1, rows2 []table.Row) []table.Pair {
	a1 := loadRows(sp, rows1)
	a2 := loadRows(sp, rows2)
	sortRows(a1)
	sortRows(a2)
	return mergeScan(rowArray{a1}, rowArray{a2}, nil)
}

// loadRows copies rows into a traced array.
func loadRows(sp *memory.Space, rows []table.Row) *memory.Array[table.Row] {
	a := memory.Alloc[table.Row](sp, len(rows), 8+table.DataLen)
	for i, r := range rows {
		a.Set(i, r)
	}
	return a
}

// rowSorter adapts a traced array to sort.Interface so even the insecure
// baseline's comparisons and swaps are visible to the access counters.
type rowSorter struct{ a *memory.Array[table.Row] }

func (s rowSorter) Len() int { return s.a.Len() }
func (s rowSorter) Less(i, j int) bool {
	x, y := s.a.Get(i), s.a.Get(j)
	if x.J != y.J {
		return x.J < y.J
	}
	return string(x.D[:]) < string(y.D[:])
}
func (s rowSorter) Swap(i, j int) {
	x, y := s.a.Get(i), s.a.Get(j)
	s.a.Set(i, y)
	s.a.Set(j, x)
}

func sortRows(a *memory.Array[table.Row]) { sort.Sort(rowSorter{a}) }

// rowReader is the minimal random-access interface mergeScan needs, so
// the same scan drives both plain arrays and ORAM-backed tables.
type rowReader interface {
	Len() int
	At(i int) table.Row
}

type rowArray struct{ a *memory.Array[table.Row] }

func (r rowArray) Len() int           { return r.a.Len() }
func (r rowArray) At(i int) table.Row { return r.a.Get(i) }

// mergeScan runs the textbook duplicate-aware merge phase over two
// sorted tables. If emit is nil the pairs are collected and returned;
// otherwise emit receives each pair and the return value is nil.
func mergeScan(t1, t2 rowReader, emit func(table.Pair)) []table.Pair {
	var out []table.Pair
	if emit == nil {
		emit = func(p table.Pair) { out = append(out, p) }
	}
	n1, n2 := t1.Len(), t2.Len()
	i, j := 0, 0
	for i < n1 && j < n2 {
		r1, r2 := t1.At(i), t2.At(j)
		switch {
		case r1.J < r2.J:
			i++
		case r1.J > r2.J:
			j++
		default:
			jv := r1.J
			jStart := j
			for i < n1 {
				ri := t1.At(i)
				if ri.J != jv {
					break
				}
				for j = jStart; j < n2; j++ {
					rj := t2.At(j)
					if rj.J != jv {
						break
					}
					emit(table.Pair{D1: ri.D, D2: rj.D})
				}
				i++
			}
		}
	}
	return out
}

// pairEntry is a candidate output row used by the oblivious baselines:
// the pair plus a null flag, sortable by the bitonic network.
type pairEntry struct {
	P    table.Pair
	Null uint64
}

func lessPairNull(x, y pairEntry) uint64 { return obliv.Less(x.Null, y.Null) }

func condSwapPair(c uint64, x, y *pairEntry) {
	obliv.CondSwapBytes(c, x.P.D1[:], y.P.D1[:])
	obliv.CondSwapBytes(c, x.P.D2[:], y.P.D2[:])
	obliv.CondSwap(c, &x.Null, &y.Null)
}

// NestedLoopJoin is the trivial oblivious join: every candidate pair is
// materialized with a branch-free match flag, the n1·n2 candidates are
// obliviously sorted to move real pairs to the front, and the first m
// are returned. Quadratic work and quadratic memory — Table 1's
// Agrawal-et-al row, made secure the obvious way.
func NestedLoopJoin(sp *memory.Space, rows1, rows2 []table.Row) []table.Pair {
	n1, n2 := len(rows1), len(rows2)
	a1 := loadRows(sp, rows1)
	a2 := loadRows(sp, rows2)
	cand := memory.Alloc[pairEntry](sp, n1*n2, 2*table.DataLen+8)
	var m uint64
	for i := 0; i < n1; i++ {
		r1 := a1.Get(i)
		for j := 0; j < n2; j++ {
			r2 := a2.Get(j)
			match := obliv.Eq(r1.J, r2.J)
			m += match
			cand.Set(i*n2+j, pairEntry{
				P:    table.Pair{D1: r1.D, D2: r2.D},
				Null: obliv.Not(match),
			})
		}
	}
	bitonic.Sort[pairEntry](cand, lessPairNull, condSwapPair, nil)
	out := make([]table.Pair, m)
	for i := range out {
		out[i] = cand.Get(i).P
	}
	return out
}

// OpaqueJoin implements the oblivious sort-merge join of Opaque (Zheng
// et al., NSDI 2017) as adapted in ObliDB: both tables are concatenated
// and bitonically sorted by ⟨j, tid⟩ so each primary row immediately
// precedes its foreign rows; one branch-free scan joins every foreign
// row with the last-seen primary row; a final oblivious sort filters the
// primary rows and unmatched foreigners out. It requires rows1 to be a
// primary-key table (unique join values) and returns ErrNotPrimaryKey
// otherwise — the restriction Table 1 notes for this family of systems.
func OpaqueJoin(sp *memory.Space, rows1, rows2 []table.Row) ([]table.Pair, error) {
	n1, n2 := len(rows1), len(rows2)
	n := n1 + n2
	tc := memory.Alloc[table.Entry](sp, n, table.EncodedSize)
	for i, r := range rows1 {
		tc.Set(i, table.Entry{J: r.J, D: r.D, TID: 1})
	}
	for i, r := range rows2 {
		tc.Set(n1+i, table.Entry{J: r.J, D: r.D, TID: 2})
	}
	bitonic.Sort[table.Entry](tc, table.LessJTID, table.CondSwapEntry, nil)

	// Scan: remember the last primary row; every row emits a candidate
	// pair (null unless it is a foreign row matching that primary).
	// Duplicate primaries are detected branch-free in the same pass.
	cand := memory.Alloc[pairEntry](sp, n, 2*table.DataLen+8)
	var lastJ, havePrim, dupPrim, m uint64
	var lastD table.Data
	for i := 0; i < n; i++ {
		e := tc.Get(i)
		isPrim := obliv.Eq(e.TID, 1)
		sameJ := obliv.And(havePrim, obliv.Eq(e.J, lastJ))
		dupPrim = obliv.Or(dupPrim, obliv.And(isPrim, sameJ))

		matched := obliv.And(obliv.Not(isPrim), sameJ)
		m += matched
		var p pairEntry
		p.P.D2 = e.D
		obliv.CondCopyBytes(matched, p.P.D1[:], lastD[:])
		p.Null = obliv.Not(matched)
		cand.Set(i, p)

		// Update the remembered primary.
		take := isPrim
		lastJ = obliv.Select(take, e.J, lastJ)
		obliv.CondCopyBytes(take, lastD[:], e.D[:])
		havePrim = obliv.Or(havePrim, take)
	}
	if dupPrim == 1 {
		return nil, ErrNotPrimaryKey
	}
	bitonic.Sort[pairEntry](cand, lessPairNull, condSwapPair, nil)
	out := make([]table.Pair, m)
	for i := range out {
		out[i] = cand.Get(i).P
	}
	return out, nil
}
