package baseline

import (
	"oblivjoin/internal/bitonic"
	"oblivjoin/internal/memory"
	"oblivjoin/internal/obliv"
	"oblivjoin/internal/oram"
	"oblivjoin/internal/table"
)

// oramRows is a table of rows stored block-per-row in a Path ORAM.
type oramRows struct {
	o *oram.ORAM
	n int
}

const rowBlockSize = 8 + table.DataLen

func newORAMRows(sp *memory.Space, rows []table.Row, seed int64) *oramRows {
	n := len(rows)
	if n == 0 {
		n = 1 // ORAM needs at least one block; Len() still reports 0
	}
	r := &oramRows{o: oram.New(sp, n, rowBlockSize, seed), n: len(rows)}
	for i, row := range rows {
		r.set(i, row)
	}
	return r
}

func encodeRow(r table.Row) []byte {
	buf := make([]byte, rowBlockSize)
	for i := 0; i < 8; i++ {
		buf[i] = byte(r.J >> (8 * i))
	}
	copy(buf[8:], r.D[:])
	return buf
}

func decodeRow(b []byte) table.Row {
	var r table.Row
	for i := 0; i < 8; i++ {
		r.J |= uint64(b[i]) << (8 * i)
	}
	copy(r.D[:], b[8:])
	return r
}

func (r *oramRows) Len() int               { return r.n }
func (r *oramRows) At(i int) table.Row     { return decodeRow(r.o.Read(i)) }
func (r *oramRows) set(i int, v table.Row) { r.o.Write(i, encodeRow(v)) }

// Get/Set adapt oramRows to bitonic.Array[table.Row].
func (r *oramRows) Get(i int) table.Row    { return r.At(i) }
func (r *oramRows) Set(i int, v table.Row) { r.set(i, v) }

func lessRowJD(x, y table.Row) uint64 {
	ltJ := obliv.Less(x.J, y.J)
	eqJ := obliv.Eq(x.J, y.J)
	return obliv.Or(ltJ, obliv.And(eqJ, obliv.LessBytes(x.D[:], y.D[:])))
}

func condSwapRow(c uint64, x, y *table.Row) {
	obliv.CondSwap(c, &x.J, &y.J)
	obliv.CondSwapBytes(c, x.D[:], y.D[:])
}

// ORAMJoin runs the standard sort-merge join with every table access
// routed through Path ORAM: the generic way to make a non-oblivious
// algorithm oblivious (§3.3). The sort phase uses the bitonic network
// (so the comparison schedule is public) and the merge phase's
// data-dependent pointer movements are hidden by the ORAM — at an
// O(log n) physical-access blowup per logical access, with a large
// constant, which is exactly what Table 1 charges this approach.
func ORAMJoin(sp *memory.Space, rows1, rows2 []table.Row, seed int64) []table.Pair {
	t1 := newORAMRows(sp, rows1, seed)
	t2 := newORAMRows(sp, rows2, seed+1)
	bitonic.Sort[table.Row](t1, lessRowJD, condSwapRow, nil)
	bitonic.Sort[table.Row](t2, lessRowJD, condSwapRow, nil)
	return mergeScan(t1, t2, nil)
}
