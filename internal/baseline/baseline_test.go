package baseline

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"oblivjoin/internal/memory"
	"oblivjoin/internal/table"
	"oblivjoin/internal/trace"
)

func referenceJoin(rows1, rows2 []table.Row) []table.Pair {
	var out []table.Pair
	for _, r1 := range rows1 {
		for _, r2 := range rows2 {
			if r1.J == r2.J {
				out = append(out, table.Pair{D1: r1.D, D2: r2.D})
			}
		}
	}
	return out
}

func samePairs(a, b []table.Pair) bool {
	key := func(p table.Pair) string { return string(p.D1[:]) + "|" + string(p.D2[:]) }
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = key(a[i])
	}
	for i := range b {
		kb[i] = key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

func rows(pairs ...[2]uint64) []table.Row {
	out := make([]table.Row, len(pairs))
	for i, p := range pairs {
		out[i] = table.Row{J: p[0], D: table.MustData(fmt.Sprintf("r%d.%d", p[0], p[1]))}
	}
	return out
}

func randomRows(rng *rand.Rand, n, keySpace int, tag string) []table.Row {
	out := make([]table.Row, n)
	for i := range out {
		j := uint64(rng.Intn(keySpace))
		out[i] = table.Row{J: j, D: table.MustData(fmt.Sprintf("%s%d.%d", tag, j, i))}
	}
	return out
}

func TestSortMergeJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		t1 := randomRows(rng, rng.Intn(30), 8, "a")
		t2 := randomRows(rng, rng.Intn(30), 8, "b")
		sp := memory.NewSpace(nil, nil)
		got := SortMergeJoin(sp, t1, t2)
		if !samePairs(got, referenceJoin(t1, t2)) {
			t.Fatalf("trial %d mismatch (n1=%d n2=%d)", trial, len(t1), len(t2))
		}
	}
}

func TestSortMergeJoinDuplicateGroups(t *testing.T) {
	t1 := rows([2]uint64{1, 0}, [2]uint64{1, 1}, [2]uint64{2, 0})
	t2 := rows([2]uint64{1, 2}, [2]uint64{1, 3}, [2]uint64{1, 4}, [2]uint64{3, 0})
	sp := memory.NewSpace(nil, nil)
	got := SortMergeJoin(sp, t1, t2)
	if len(got) != 6 {
		t.Fatalf("m = %d, want 6", len(got))
	}
	if !samePairs(got, referenceJoin(t1, t2)) {
		t.Fatal("pairs wrong")
	}
}

func TestSortMergeJoinEmpty(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	if got := SortMergeJoin(sp, nil, nil); len(got) != 0 {
		t.Fatalf("empty join returned %d pairs", len(got))
	}
}

func TestNestedLoopJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		t1 := randomRows(rng, 1+rng.Intn(12), 5, "a")
		t2 := randomRows(rng, 1+rng.Intn(12), 5, "b")
		sp := memory.NewSpace(nil, nil)
		got := NestedLoopJoin(sp, t1, t2)
		if !samePairs(got, referenceJoin(t1, t2)) {
			t.Fatalf("trial %d mismatch", trial)
		}
	}
}

func TestNestedLoopJoinOblivious(t *testing.T) {
	run := func(t1, t2 []table.Row) string {
		h := trace.NewHasher()
		sp := memory.NewSpace(h, nil)
		NestedLoopJoin(sp, t1, t2)
		return h.Hex()
	}
	// Same sizes, same m, different structure.
	a := run(rows([2]uint64{1, 0}, [2]uint64{2, 0}), rows([2]uint64{1, 1}, [2]uint64{2, 1}))
	b := run(rows([2]uint64{5, 0}, [2]uint64{5, 1}), rows([2]uint64{5, 2}, [2]uint64{9, 0}))
	if a != b {
		t.Fatal("nested-loop trace depends on data")
	}
}

func TestOpaqueJoinPKFK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		nPK := 1 + rng.Intn(10)
		var t1 []table.Row
		for j := 0; j < nPK; j++ {
			t1 = append(t1, table.Row{J: uint64(j), D: table.MustData(fmt.Sprintf("pk%d", j))})
		}
		t2 := randomRows(rng, rng.Intn(25), nPK+3, "fk") // some unmatched FKs
		sp := memory.NewSpace(nil, nil)
		got, err := OpaqueJoin(sp, t1, t2)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !samePairs(got, referenceJoin(t1, t2)) {
			t.Fatalf("trial %d mismatch", trial)
		}
	}
}

func TestOpaqueJoinRejectsDuplicatePrimary(t *testing.T) {
	t1 := rows([2]uint64{1, 0}, [2]uint64{1, 1})
	t2 := rows([2]uint64{1, 2})
	sp := memory.NewSpace(nil, nil)
	if _, err := OpaqueJoin(sp, t1, t2); err != ErrNotPrimaryKey {
		t.Fatalf("err = %v, want ErrNotPrimaryKey", err)
	}
}

func TestOpaqueJoinOblivious(t *testing.T) {
	run := func(t1, t2 []table.Row) string {
		h := trace.NewHasher()
		sp := memory.NewSpace(h, nil)
		if _, err := OpaqueJoin(sp, t1, t2); err != nil {
			t.Fatal(err)
		}
		return h.Hex()
	}
	// n1=2, n2=3, m=3 in both: different which-PK-matches structure.
	a := run(rows([2]uint64{1, 0}, [2]uint64{2, 0}),
		rows([2]uint64{1, 1}, [2]uint64{1, 2}, [2]uint64{2, 1}))
	b := run(rows([2]uint64{7, 0}, [2]uint64{8, 0}),
		rows([2]uint64{8, 1}, [2]uint64{8, 2}, [2]uint64{8, 3}))
	if a != b {
		t.Fatal("opaque join trace depends on data")
	}
}

func TestORAMJoinMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 6; trial++ {
		t1 := randomRows(rng, 1+rng.Intn(12), 6, "a")
		t2 := randomRows(rng, 1+rng.Intn(12), 6, "b")
		sp := memory.NewSpace(nil, nil)
		got := ORAMJoin(sp, t1, t2, int64(trial))
		if !samePairs(got, referenceJoin(t1, t2)) {
			t.Fatalf("trial %d mismatch", trial)
		}
	}
}

func TestORAMJoinEmptySides(t *testing.T) {
	sp := memory.NewSpace(nil, nil)
	if got := ORAMJoin(sp, nil, rows([2]uint64{1, 0}), 1); len(got) != 0 {
		t.Fatalf("got %d pairs", len(got))
	}
}

func TestORAMJoinCostlierThanPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	t1 := randomRows(rng, 32, 8, "a")
	t2 := randomRows(rng, 32, 8, "b")
	var plain, viaORAM trace.Counter
	SortMergeJoin(memory.NewSpace(&plain, nil), t1, t2)
	ORAMJoin(memory.NewSpace(&viaORAM, nil), t1, t2, 7)
	if viaORAM.Total() < plain.Total()*10 {
		t.Fatalf("ORAM join suspiciously cheap: %d vs %d physical accesses",
			viaORAM.Total(), plain.Total())
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	r := table.Row{J: 0xdeadbeefcafe, D: table.MustData("blob")}
	if got := decodeRow(encodeRow(r)); got != r {
		t.Fatalf("round trip: %+v", got)
	}
}
