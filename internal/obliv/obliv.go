// Package obliv provides constant-time, branch-free primitives on which the
// oblivious join algorithm is built.
//
// Every data-dependent decision made anywhere in this repository is funneled
// through this package so that the instruction trace of the algorithm is
// independent of the data operated on (level-III obliviousness in the
// terminology of Krastnikov et al., §3.2). None of the exported functions
// contain a branch on their secret arguments: selection is performed with
// arithmetic masks, exactly as a compiler targeting a circuit would emit.
//
// The functions take and return plain Go integers. Callers are responsible
// for ensuring that the "condition" arguments are already normalized to
// 0 or 1; the helpers in this package that produce conditions (Less, Eq,
// and friends) always return normalized values.
package obliv

// Bool converts a Go bool to a 0/1 word without branching on the result's
// use sites. The compiler emits a SETcc-style instruction for this
// conversion on all supported architectures; no conditional jump is
// involved.
func Bool(b bool) uint64 {
	// This compiles to a flag materialization, not a branch.
	var x uint64
	if b {
		x = 1
	}
	return x
}

// mask expands a 0/1 condition into a full-width mask: 0 → 0x0000…,
// 1 → 0xffff….
func mask(c uint64) uint64 {
	return -c
}

// Select returns a if c == 1 and b if c == 0, in constant time.
func Select(c, a, b uint64) uint64 {
	m := mask(c)
	return (a & m) | (b &^ m)
}

// SelectInt is Select for signed integers.
func SelectInt(c uint64, a, b int) int {
	return int(Select(c, uint64(a), uint64(b)))
}

// SelectInt64 is Select for int64 values.
func SelectInt64(c uint64, a, b int64) int64 {
	return int64(Select(c, uint64(a), uint64(b)))
}

// SelectUint32 is Select for uint32 values.
func SelectUint32(c uint64, a, b uint32) uint32 {
	return uint32(Select(c, uint64(a), uint64(b)))
}

// CondSwap swaps *a and *b when c == 1, in constant time. Both words are
// always read and written, so the memory trace is identical whether or not
// the swap takes place.
func CondSwap(c uint64, a, b *uint64) {
	m := mask(c)
	t := (*a ^ *b) & m
	*a ^= t
	*b ^= t
}

// CondSwapInt64 swaps two int64 values when c == 1.
func CondSwapInt64(c uint64, a, b *int64) {
	m := mask(c)
	t := (uint64(*a) ^ uint64(*b)) & m
	*a = int64(uint64(*a) ^ t)
	*b = int64(uint64(*b) ^ t)
}

// CondCopy copies src into dst when c == 1 and rewrites dst with its own
// value when c == 0. dst is always written.
func CondCopy(c uint64, dst *uint64, src uint64) {
	*dst = Select(c, src, *dst)
}

// CondCopyInt64 is CondCopy for int64 values.
func CondCopyInt64(c uint64, dst *int64, src int64) {
	*dst = SelectInt64(c, src, *dst)
}

// Eq returns 1 if a == b, else 0, without branching.
func Eq(a, b uint64) uint64 {
	x := a ^ b
	// x == 0 iff a == b. Fold x into its sign bit.
	return 1 &^ ((x | -x) >> 63)
}

// Neq returns 1 if a != b, else 0.
func Neq(a, b uint64) uint64 {
	return Eq(a, b) ^ 1
}

// Less returns 1 if a < b (unsigned), else 0, without branching.
func Less(a, b uint64) uint64 {
	// Standard borrow extraction: the borrow bit of a-b.
	return ((^a & b) | ((^(a ^ b)) & (a - b))) >> 63
}

// LessEq returns 1 if a <= b (unsigned).
func LessEq(a, b uint64) uint64 {
	return Less(b, a) ^ 1
}

// Greater returns 1 if a > b (unsigned).
func Greater(a, b uint64) uint64 {
	return Less(b, a)
}

// GreaterEq returns 1 if a >= b (unsigned).
func GreaterEq(a, b uint64) uint64 {
	return Less(a, b) ^ 1
}

// LessInt64 returns 1 if a < b for signed values, else 0.
func LessInt64(a, b int64) uint64 {
	// Shift both into unsigned order by flipping the sign bit.
	const top = uint64(1) << 63
	return Less(uint64(a)^top, uint64(b)^top)
}

// EqInt64 returns 1 if a == b for signed values.
func EqInt64(a, b int64) uint64 {
	return Eq(uint64(a), uint64(b))
}

// Min returns the smaller of a and b in constant time.
func Min(a, b uint64) uint64 {
	return Select(Less(a, b), a, b)
}

// Max returns the larger of a and b in constant time.
func Max(a, b uint64) uint64 {
	return Select(Less(a, b), b, a)
}

// And returns the logical AND of two 0/1 conditions.
func And(a, b uint64) uint64 { return a & b }

// Or returns the logical OR of two 0/1 conditions.
func Or(a, b uint64) uint64 { return a | b }

// Not returns the logical negation of a 0/1 condition.
func Not(a uint64) uint64 { return a ^ 1 }

// CmpBytes lexicographically compares two equal-length byte slices in
// constant time, returning -1, 0 or 1. It panics if the lengths differ,
// since the length is public (all entries in a table are fixed-width).
func CmpBytes(a, b []byte) int {
	if len(a) != len(b) {
		panic("obliv: CmpBytes on unequal lengths")
	}
	var lt, gt uint64 // sticky: first difference wins
	for i := 0; i < len(a); i++ {
		ai, bi := uint64(a[i]), uint64(b[i])
		undecided := Not(Or(lt, gt))
		lt = Or(lt, And(undecided, Less(ai, bi)))
		gt = Or(gt, And(undecided, Greater(ai, bi)))
	}
	return int(gt) - int(lt)
}

// LessBytes reports, in constant time, whether a orders lexicographically
// strictly before b (1) or not (0). Panics if lengths differ.
func LessBytes(a, b []byte) uint64 {
	if len(a) != len(b) {
		panic("obliv: LessBytes on unequal lengths")
	}
	var lt, gt uint64
	for i := 0; i < len(a); i++ {
		ai, bi := uint64(a[i]), uint64(b[i])
		undecided := Not(Or(lt, gt))
		lt = Or(lt, And(undecided, Less(ai, bi)))
		gt = Or(gt, And(undecided, Greater(ai, bi)))
	}
	return lt
}

// EqBytes reports, in constant time, whether two equal-length byte slices
// are identical (1) or not (0). Panics if lengths differ.
func EqBytes(a, b []byte) uint64 {
	if len(a) != len(b) {
		panic("obliv: EqBytes on unequal lengths")
	}
	var acc uint64
	for i := 0; i < len(a); i++ {
		acc |= uint64(a[i] ^ b[i])
	}
	return Eq(acc, 0)
}

// CondSwapBytes swaps the contents of two equal-length byte slices when
// c == 1. Every byte of both slices is read and written regardless of c.
func CondSwapBytes(c uint64, a, b []byte) {
	if len(a) != len(b) {
		panic("obliv: CondSwapBytes on unequal lengths")
	}
	m := byte(mask(c))
	for i := 0; i < len(a); i++ {
		t := (a[i] ^ b[i]) & m
		a[i] ^= t
		b[i] ^= t
	}
}

// CondCopyBytes copies src into dst when c == 1; when c == 0 it rewrites
// dst with its existing contents. Both slices must have equal length.
func CondCopyBytes(c uint64, dst, src []byte) {
	if len(dst) != len(src) {
		panic("obliv: CondCopyBytes on unequal lengths")
	}
	m := byte(mask(c))
	for i := 0; i < len(dst); i++ {
		dst[i] = (src[i] & m) | (dst[i] &^ m)
	}
}
