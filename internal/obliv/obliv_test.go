package obliv

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestBool(t *testing.T) {
	if Bool(true) != 1 {
		t.Fatalf("Bool(true) = %d, want 1", Bool(true))
	}
	if Bool(false) != 0 {
		t.Fatalf("Bool(false) = %d, want 0", Bool(false))
	}
}

func TestSelect(t *testing.T) {
	tests := []struct {
		c, a, b, want uint64
	}{
		{1, 5, 9, 5},
		{0, 5, 9, 9},
		{1, 0, math.MaxUint64, 0},
		{0, 0, math.MaxUint64, math.MaxUint64},
		{1, math.MaxUint64, 0, math.MaxUint64},
	}
	for _, tt := range tests {
		if got := Select(tt.c, tt.a, tt.b); got != tt.want {
			t.Errorf("Select(%d, %d, %d) = %d, want %d", tt.c, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestSelectProperty(t *testing.T) {
	f := func(c bool, a, b uint64) bool {
		want := b
		if c {
			want = a
		}
		return Select(Bool(c), a, b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelectIntNegative(t *testing.T) {
	if got := SelectInt(1, -7, 3); got != -7 {
		t.Fatalf("SelectInt(1,-7,3) = %d, want -7", got)
	}
	if got := SelectInt(0, -7, -3); got != -3 {
		t.Fatalf("SelectInt(0,-7,-3) = %d, want -3", got)
	}
	if got := SelectInt64(1, math.MinInt64, 0); got != math.MinInt64 {
		t.Fatalf("SelectInt64 = %d, want MinInt64", got)
	}
}

func TestCondSwap(t *testing.T) {
	a, b := uint64(3), uint64(8)
	CondSwap(0, &a, &b)
	if a != 3 || b != 8 {
		t.Fatalf("CondSwap(0): got (%d,%d), want (3,8)", a, b)
	}
	CondSwap(1, &a, &b)
	if a != 8 || b != 3 {
		t.Fatalf("CondSwap(1): got (%d,%d), want (8,3)", a, b)
	}
}

func TestCondSwapProperty(t *testing.T) {
	f := func(c bool, a, b uint64) bool {
		x, y := a, b
		CondSwap(Bool(c), &x, &y)
		if c {
			return x == b && y == a
		}
		return x == a && y == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCondSwapInt64(t *testing.T) {
	a, b := int64(-5), int64(12)
	CondSwapInt64(1, &a, &b)
	if a != 12 || b != -5 {
		t.Fatalf("CondSwapInt64(1): got (%d,%d)", a, b)
	}
	CondSwapInt64(0, &a, &b)
	if a != 12 || b != -5 {
		t.Fatalf("CondSwapInt64(0) must not swap: got (%d,%d)", a, b)
	}
}

func TestCondCopy(t *testing.T) {
	d := uint64(1)
	CondCopy(0, &d, 42)
	if d != 1 {
		t.Fatalf("CondCopy(0) overwrote: %d", d)
	}
	CondCopy(1, &d, 42)
	if d != 42 {
		t.Fatalf("CondCopy(1) did not copy: %d", d)
	}
}

func TestEqNeq(t *testing.T) {
	f := func(a, b uint64) bool {
		wantEq := Bool(a == b)
		return Eq(a, b) == wantEq && Neq(a, b) == 1-wantEq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if Eq(0, 0) != 1 || Eq(math.MaxUint64, math.MaxUint64) != 1 {
		t.Fatal("Eq on equal extremes failed")
	}
}

func TestComparisons(t *testing.T) {
	f := func(a, b uint64) bool {
		return Less(a, b) == Bool(a < b) &&
			LessEq(a, b) == Bool(a <= b) &&
			Greater(a, b) == Bool(a > b) &&
			GreaterEq(a, b) == Bool(a >= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Boundary cases that random testing rarely finds.
	cases := [][2]uint64{
		{0, 0},
		{0, math.MaxUint64},
		{math.MaxUint64, 0},
		{1 << 63, (1 << 63) - 1},
		{(1 << 63) - 1, 1 << 63},
	}
	for _, c := range cases {
		a, b := c[0], c[1]
		if Less(a, b) != Bool(a < b) {
			t.Errorf("Less(%d, %d) wrong", a, b)
		}
	}
}

func TestSignedComparisons(t *testing.T) {
	f := func(a, b int64) bool {
		return LessInt64(a, b) == Bool(a < b) && EqInt64(a, b) == Bool(a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	cases := [][2]int64{
		{math.MinInt64, math.MaxInt64},
		{math.MaxInt64, math.MinInt64},
		{-1, 0}, {0, -1}, {-1, 1}, {math.MinInt64, math.MinInt64},
	}
	for _, c := range cases {
		if LessInt64(c[0], c[1]) != Bool(c[0] < c[1]) {
			t.Errorf("LessInt64(%d, %d) wrong", c[0], c[1])
		}
	}
}

func TestMinMax(t *testing.T) {
	f := func(a, b uint64) bool {
		mn, mx := a, b
		if b < a {
			mn, mx = b, a
		}
		return Min(a, b) == mn && Max(a, b) == mx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogicOps(t *testing.T) {
	for _, a := range []uint64{0, 1} {
		for _, b := range []uint64{0, 1} {
			if And(a, b) != a&b || Or(a, b) != a|b {
				t.Fatalf("And/Or(%d,%d) wrong", a, b)
			}
		}
		if Not(a) != 1-a {
			t.Fatalf("Not(%d) wrong", a)
		}
	}
}

func TestCmpBytes(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"abc", "abc", 0},
		{"abc", "abd", -1},
		{"abd", "abc", 1},
		{"aaa", "zzz", -1},
		{"\x00\x00", "\x00\x01", -1},
		{"\xff\x00", "\x00\xff", 1},
	}
	for _, tt := range tests {
		if got := CmpBytes([]byte(tt.a), []byte(tt.b)); got != tt.want {
			t.Errorf("CmpBytes(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCmpBytesProperty(t *testing.T) {
	f := func(a, b [8]byte) bool {
		want := bytes.Compare(a[:], b[:])
		return CmpBytes(a[:], b[:]) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCmpBytesPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CmpBytes([]byte("a"), []byte("ab"))
}

func TestEqBytes(t *testing.T) {
	f := func(a, b [16]byte) bool {
		return EqBytes(a[:], b[:]) == Bool(bytes.Equal(a[:], b[:]))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	a := []byte{1, 2, 3}
	if EqBytes(a, a) != 1 {
		t.Fatal("EqBytes(a, a) != 1")
	}
}

func TestCondSwapBytes(t *testing.T) {
	a := []byte("hello")
	b := []byte("world")
	CondSwapBytes(0, a, b)
	if string(a) != "hello" || string(b) != "world" {
		t.Fatalf("CondSwapBytes(0) mutated: %q %q", a, b)
	}
	CondSwapBytes(1, a, b)
	if string(a) != "world" || string(b) != "hello" {
		t.Fatalf("CondSwapBytes(1) wrong: %q %q", a, b)
	}
}

func TestCondCopyBytes(t *testing.T) {
	dst := []byte{1, 2, 3, 4}
	src := []byte{9, 8, 7, 6}
	CondCopyBytes(0, dst, src)
	if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
		t.Fatalf("CondCopyBytes(0) mutated dst: %v", dst)
	}
	CondCopyBytes(1, dst, src)
	if !bytes.Equal(dst, src) {
		t.Fatalf("CondCopyBytes(1) did not copy: %v", dst)
	}
}

func TestCondSwapBytesProperty(t *testing.T) {
	f := func(c bool, a, b [12]byte) bool {
		x, y := a, b
		CondSwapBytes(Bool(c), x[:], y[:])
		if c {
			return x == b && y == a
		}
		return x == a && y == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelect(b *testing.B) {
	var s uint64
	for i := 0; i < b.N; i++ {
		s += Select(uint64(i&1), uint64(i), s)
	}
	_ = s
}

func BenchmarkCondSwapBytes64(b *testing.B) {
	x := make([]byte, 64)
	y := make([]byte, 64)
	b.SetBytes(128)
	for i := 0; i < b.N; i++ {
		CondSwapBytes(uint64(i&1), x, y)
	}
}
