// Package benchdiff compares fresh BENCH_*.json perf records against a
// committed baseline and reports wall-time regressions — the CI gate
// that turns the benchmark artifacts into a trajectory instead of a
// pile of files.
//
// Records match on their key — the input size n plus, for SQL records,
// the query text — and regress when a wall-time metric exceeds the
// baseline by more than the threshold ratio. Benchmarks present in the
// baseline but missing from the fresh run also fail the gate: a
// benchmark silently dropped is a regression in coverage.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// Record is the common shape of one benchmark row; it parses both the
// join records (BENCH_join.json) and the SQL records (BENCH_sql.json),
// whose extra fields are ignored.
type Record struct {
	N            int    `json:"n"`
	Query        string `json:"query,omitempty"`
	Workers      int    `json:"workers,omitempty"`
	SequentialNS int64  `json:"sequential_ns"`
	ParallelNS   int64  `json:"parallel_ns"`
}

// Key identifies the record for baseline matching: input size and
// worker count, plus the query text for SQL records. Workers is part
// of the key so a fresh run at a different parallelism config fails
// loudly as a missing benchmark instead of silently comparing
// mismatched configurations.
func (r Record) Key() string {
	if r.Query != "" {
		return fmt.Sprintf("n=%d workers=%d query=%s", r.N, r.Workers, r.Query)
	}
	return fmt.Sprintf("n=%d workers=%d", r.N, r.Workers)
}

// Load reads a benchmark record file.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read parses benchmark records from r.
func Read(r io.Reader) ([]Record, error) {
	var recs []Record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	return recs, nil
}

// Regression is one wall-time metric that exceeded the threshold.
type Regression struct {
	Key        string
	Metric     string // "sequential" or "parallel"
	BaselineNS int64
	FreshNS    int64
	Ratio      float64 // FreshNS / BaselineNS
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.2fx baseline (%.3fms -> %.3fms)",
		r.Key, r.Metric, r.Ratio, float64(r.BaselineNS)/1e6, float64(r.FreshNS)/1e6)
}

// Report is the outcome of one baseline comparison.
type Report struct {
	// Compared counts the (key, metric) pairs checked.
	Compared int
	// Regressions lists metrics that exceeded the threshold.
	Regressions []Regression
	// MissingInFresh lists baseline keys absent from the fresh run —
	// dropped benchmarks, which fail the gate.
	MissingInFresh []string
	// MissingInBaseline lists fresh keys with no baseline — new
	// benchmarks, reported but not failing.
	MissingInBaseline []string
}

// Failed reports whether the gate should fail CI.
func (rep Report) Failed() bool {
	return len(rep.Regressions) > 0 || len(rep.MissingInFresh) > 0
}

// Compare matches fresh records against baseline by key and flags every
// wall-time metric whose fresh value exceeds baseline*threshold.
// threshold is a ratio: 1.25 allows up to +25%.
func Compare(baseline, fresh []Record, threshold float64) Report {
	var rep Report
	fm := make(map[string]Record, len(fresh))
	for _, r := range fresh {
		fm[r.Key()] = r
	}
	bm := make(map[string]Record, len(baseline))
	for _, b := range baseline {
		bm[b.Key()] = b
	}
	for _, b := range baseline {
		f, ok := fm[b.Key()]
		if !ok {
			rep.MissingInFresh = append(rep.MissingInFresh, b.Key())
			continue
		}
		check := func(metric string, baseNS, freshNS int64) {
			if baseNS <= 0 {
				return
			}
			rep.Compared++
			// A fresh value of zero means the metric vanished (renamed
			// field, dropped instrumentation) — that silently disables
			// the gate, so it fails like a dropped benchmark.
			if freshNS <= 0 {
				rep.Regressions = append(rep.Regressions, Regression{
					Key: b.Key(), Metric: metric + " (missing)",
					BaselineNS: baseNS, FreshNS: freshNS, Ratio: 0,
				})
				return
			}
			ratio := float64(freshNS) / float64(baseNS)
			if ratio > threshold {
				rep.Regressions = append(rep.Regressions, Regression{
					Key: b.Key(), Metric: metric,
					BaselineNS: baseNS, FreshNS: freshNS, Ratio: ratio,
				})
			}
		}
		check("sequential", b.SequentialNS, f.SequentialNS)
		check("parallel", b.ParallelNS, f.ParallelNS)
	}
	for _, f := range fresh {
		if _, ok := bm[f.Key()]; !ok {
			rep.MissingInBaseline = append(rep.MissingInBaseline, f.Key())
		}
	}
	sort.Strings(rep.MissingInFresh)
	sort.Strings(rep.MissingInBaseline)
	return rep
}
