// Package benchdiff compares fresh BENCH_*.json perf records against a
// committed baseline and reports wall-time regressions — the CI gate
// that turns the benchmark artifacts into a trajectory instead of a
// pile of files.
//
// Records match on their key — the input size n, the worker count and
// the sealed-block granularity, plus the query text for SQL records —
// and regress when a gated metric exceeds the baseline by more than
// the threshold ratio. Every JSON field ending in "_ns" (wall times,
// latency percentiles), "_bytes" (the deterministic peak/total
// allocation gauges) or "_comparators" (exact oblivious comparator
// counts, the data-independent cost the paper optimises) is a gated
// metric, so new benchmark families
// (BENCH_sealed.json's plain/sealed/block columns, BENCH_stream.json's
// peak-memory columns, say) are covered without touching the gate.
// Benchmarks present in the baseline but missing from the fresh run
// also fail: a benchmark silently dropped is a regression in coverage,
// and so is a metric that vanished from a record.
package benchdiff

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Record is the common shape of one benchmark row: the identifying key
// fields plus every wall-time metric the row carries. It parses the
// join records (BENCH_join.json), the SQL records (BENCH_sql.json),
// the sealed-storage records (BENCH_sealed.json) and the service load
// records (BENCH_service.json, whose latency percentiles are keyed on
// scenario, clients and workers); non-metric extra fields are ignored.
type Record struct {
	N        int
	Query    string
	Workers  int
	Block    int
	Scenario string
	Clients  int
	Shards   int
	// Metrics holds every gated field of the record: "*_ns" metrics
	// keyed by the metric name with the suffix stripped
	// ("sequential_ns" → "sequential"), and "*_bytes" / "*_comparators"
	// metrics keyed by their full name ("peak_bytes",
	// "written_comparators") so reports stay unit-aware.
	Metrics map[string]int64
}

// UnmarshalJSON collects the key fields and every *_ns, *_bytes and
// *_comparators metric.
func (r *Record) UnmarshalJSON(data []byte) error {
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	get := func(key string, dst any) error {
		v, ok := raw[key]
		if !ok {
			return nil
		}
		return json.Unmarshal(v, dst)
	}
	if err := get("n", &r.N); err != nil {
		return err
	}
	if err := get("query", &r.Query); err != nil {
		return err
	}
	if err := get("workers", &r.Workers); err != nil {
		return err
	}
	if err := get("block", &r.Block); err != nil {
		return err
	}
	if err := get("scenario", &r.Scenario); err != nil {
		return err
	}
	if err := get("clients", &r.Clients); err != nil {
		return err
	}
	if err := get("shards", &r.Shards); err != nil {
		return err
	}
	r.Metrics = map[string]int64{}
	for k, v := range raw {
		name := ""
		switch {
		case strings.HasSuffix(k, "_ns"):
			name = strings.TrimSuffix(k, "_ns")
		case strings.HasSuffix(k, "_bytes"), strings.HasSuffix(k, "_comparators"):
			name = k
		default:
			continue
		}
		var m int64
		if err := json.Unmarshal(v, &m); err != nil {
			return fmt.Errorf("benchdiff: metric %s: %w", k, err)
		}
		r.Metrics[name] = m
	}
	return nil
}

// Key identifies the record for baseline matching: input size, worker
// count and block granularity, plus the query text for SQL records and
// the (scenario, clients) pair for service load records — latency
// percentiles only compare within the same workload at the same
// closed-loop concurrency. Workers is part of the key so a fresh run
// at a different parallelism config fails loudly as a missing
// benchmark instead of silently comparing mismatched configurations.
func (r Record) Key() string {
	k := fmt.Sprintf("n=%d workers=%d", r.N, r.Workers)
	if r.Block != 0 {
		k += fmt.Sprintf(" block=%d", r.Block)
	}
	if r.Shards != 0 {
		k += fmt.Sprintf(" shards=%d", r.Shards)
	}
	if r.Scenario != "" {
		k += fmt.Sprintf(" scenario=%s clients=%d", r.Scenario, r.Clients)
	}
	if r.Query != "" {
		k += " query=" + r.Query
	}
	return k
}

// Load reads a benchmark record file.
func Load(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Read parses benchmark records from r.
func Read(r io.Reader) ([]Record, error) {
	var recs []Record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("benchdiff: %w", err)
	}
	return recs, nil
}

// Regression is one gated metric that exceeded the threshold.
type Regression struct {
	Key    string
	Metric string // metric name, e.g. "sequential" or "peak_bytes"
	// BaselineNS and FreshNS hold the metric values in its native unit:
	// nanoseconds for "*_ns" metrics, bytes for "*_bytes" metrics.
	BaselineNS int64
	FreshNS    int64
	Ratio      float64 // FreshNS / BaselineNS
}

func (r Regression) String() string {
	name := strings.TrimSuffix(r.Metric, " (missing)")
	if strings.HasSuffix(name, "_bytes") {
		return fmt.Sprintf("%s %s: %.2fx baseline (%d B -> %d B)",
			r.Key, r.Metric, r.Ratio, r.BaselineNS, r.FreshNS)
	}
	if strings.HasSuffix(name, "_comparators") {
		return fmt.Sprintf("%s %s: %.2fx baseline (%d -> %d comparators)",
			r.Key, r.Metric, r.Ratio, r.BaselineNS, r.FreshNS)
	}
	return fmt.Sprintf("%s %s: %.2fx baseline (%.3fms -> %.3fms)",
		r.Key, r.Metric, r.Ratio, float64(r.BaselineNS)/1e6, float64(r.FreshNS)/1e6)
}

// Report is the outcome of one baseline comparison.
type Report struct {
	// Compared counts the (key, metric) pairs checked.
	Compared int
	// Regressions lists metrics that exceeded the threshold.
	Regressions []Regression
	// MissingInFresh lists baseline keys absent from the fresh run —
	// dropped benchmarks, which fail the gate.
	MissingInFresh []string
	// MissingInBaseline lists fresh keys with no baseline — new
	// benchmarks, reported but not failing.
	MissingInBaseline []string
}

// Failed reports whether the gate should fail CI.
func (rep Report) Failed() bool {
	return len(rep.Regressions) > 0 || len(rep.MissingInFresh) > 0
}

// Compare matches fresh records against baseline by key and flags every
// wall-time metric whose fresh value exceeds baseline*threshold.
// threshold is a ratio: 1.25 allows up to +25%.
func Compare(baseline, fresh []Record, threshold float64) Report {
	var rep Report
	fm := make(map[string]Record, len(fresh))
	for _, r := range fresh {
		fm[r.Key()] = r
	}
	bm := make(map[string]Record, len(baseline))
	for _, b := range baseline {
		bm[b.Key()] = b
	}
	for _, b := range baseline {
		f, ok := fm[b.Key()]
		if !ok {
			rep.MissingInFresh = append(rep.MissingInFresh, b.Key())
			continue
		}
		// Check the baseline's metrics in a stable order so reports
		// are deterministic.
		names := make([]string, 0, len(b.Metrics))
		for name := range b.Metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			baseNS := b.Metrics[name]
			if baseNS <= 0 {
				continue
			}
			rep.Compared++
			freshNS := f.Metrics[name]
			// A fresh value of zero means the metric vanished (renamed
			// field, dropped instrumentation) — that silently disables
			// the gate, so it fails like a dropped benchmark.
			if freshNS <= 0 {
				rep.Regressions = append(rep.Regressions, Regression{
					Key: b.Key(), Metric: name + " (missing)",
					BaselineNS: baseNS, FreshNS: freshNS, Ratio: 0,
				})
				continue
			}
			ratio := float64(freshNS) / float64(baseNS)
			if ratio > threshold {
				rep.Regressions = append(rep.Regressions, Regression{
					Key: b.Key(), Metric: name,
					BaselineNS: baseNS, FreshNS: freshNS, Ratio: ratio,
				})
			}
		}
	}
	for _, f := range fresh {
		if _, ok := bm[f.Key()]; !ok {
			rep.MissingInBaseline = append(rep.MissingInBaseline, f.Key())
		}
	}
	sort.Strings(rep.MissingInFresh)
	sort.Strings(rep.MissingInBaseline)
	return rep
}
