package benchdiff

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(n int, query string, seq, par int64) Record {
	return Record{N: n, Query: query, Metrics: map[string]int64{"sequential": seq, "parallel": par}}
}

// TestRegressionGate is the CI acceptance criterion: a benchmark
// record regressing >25% against the committed baseline fails the
// comparison; anything at or below the threshold passes.
func TestRegressionGate(t *testing.T) {
	baseline := []Record{
		rec(16384, "", 1_000_000_000, 400_000_000),
		rec(65536, "", 5_000_000_000, 2_000_000_000),
	}

	// +30% sequential wall time at n=16384: gate fails.
	fresh := []Record{
		rec(16384, "", 1_300_000_000, 400_000_000),
		rec(65536, "", 5_000_000_000, 2_000_000_000),
	}
	rep := Compare(baseline, fresh, 1.25)
	if !rep.Failed() || len(rep.Regressions) != 1 {
		t.Fatalf("30%% regression not flagged: %+v", rep)
	}
	r := rep.Regressions[0]
	if r.Key != "n=16384 workers=0" || r.Metric != "sequential" || r.Ratio < 1.29 || r.Ratio > 1.31 {
		t.Fatalf("regression = %+v", r)
	}
	if rep.Compared != 4 {
		t.Fatalf("Compared = %d, want 4", rep.Compared)
	}

	// Exactly +25%: within threshold, gate passes.
	fresh[0].Metrics["sequential"] = 1_250_000_000
	if rep := Compare(baseline, fresh, 1.25); rep.Failed() {
		t.Fatalf("25%% flagged as regression: %+v", rep)
	}

	// Faster than baseline: passes.
	fresh[0].Metrics["sequential"] = 700_000_000
	if rep := Compare(baseline, fresh, 1.25); rep.Failed() {
		t.Fatalf("improvement flagged as regression: %+v", rep)
	}
}

// TestVanishedMetricFails: a fresh record whose wall-time field
// decodes to zero (renamed JSON key, dropped instrumentation) must
// fail rather than sail under the threshold with ratio 0.
func TestVanishedMetricFails(t *testing.T) {
	baseline := []Record{rec(1024, "", 100, 100)}
	fresh := []Record{rec(1024, "", 0, 100)}
	rep := Compare(baseline, fresh, 1.25)
	if !rep.Failed() || len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "sequential (missing)" {
		t.Fatalf("vanished metric not flagged: %+v", rep)
	}
}

func TestParallelMetricGates(t *testing.T) {
	baseline := []Record{rec(1024, "", 100, 100)}
	fresh := []Record{rec(1024, "", 100, 200)}
	rep := Compare(baseline, fresh, 1.25)
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "parallel" {
		t.Fatalf("parallel regression not flagged: %+v", rep)
	}
}

func TestSQLRecordsMatchOnQuery(t *testing.T) {
	const q1 = "SELECT key FROM t1 JOIN t2 USING (key)"
	const q2 = "SELECT key, COUNT(*) FROM t1 JOIN t2 USING (key) GROUP BY key"
	baseline := []Record{rec(2048, q1, 100, 100), rec(2048, q2, 100, 100)}
	// Same n, different query: must not cross-match.
	fresh := []Record{rec(2048, q1, 100, 100), rec(2048, q2, 500, 100)}
	rep := Compare(baseline, fresh, 1.25)
	if len(rep.Regressions) != 1 || !strings.Contains(rep.Regressions[0].Key, "GROUP BY") {
		t.Fatalf("SQL keying wrong: %+v", rep)
	}
}

func TestMissingBenchmarks(t *testing.T) {
	baseline := []Record{rec(1024, "", 100, 100), rec(2048, "", 100, 100)}
	fresh := []Record{rec(2048, "", 100, 100), rec(4096, "", 100, 100)}
	rep := Compare(baseline, fresh, 1.25)
	// A dropped benchmark fails the gate; a new one is only noted.
	if !rep.Failed() {
		t.Fatal("dropped benchmark did not fail the gate")
	}
	if len(rep.MissingInFresh) != 1 || rep.MissingInFresh[0] != "n=1024 workers=0" {
		t.Fatalf("MissingInFresh = %v", rep.MissingInFresh)
	}
	if len(rep.MissingInBaseline) != 1 || rep.MissingInBaseline[0] != "n=4096 workers=0" {
		t.Fatalf("MissingInBaseline = %v", rep.MissingInBaseline)
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_join.json")
	body := `[
  {"n": 16384, "m": 16384, "workers": 8, "sequential_ns": 123456789,
   "parallel_ns": 45678901, "speedup": 2.7, "trace_events": 100,
   "trace_event_counts_equal": true, "gomaxprocs": 8}
]`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].N != 16384 || recs[0].Metrics["sequential"] != 123456789 {
		t.Fatalf("Load = %+v", recs)
	}
	if recs[0].Key() != "n=16384 workers=8" {
		t.Fatalf("Key = %q", recs[0].Key())
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("Load of missing file succeeded")
	}
}

// TestSealedMetricsGate: every *_ns field of a record is a gated
// metric, so the sealed-storage records (plain/sealed/block columns)
// are covered by the same comparison, keyed on (n, workers, block).
func TestSealedMetricsGate(t *testing.T) {
	body := `[
  {"n": 4096, "workers": 4, "block": 16,
   "plain_join_ns": 100, "sealed_join_ns": 1000, "block_join_ns": 400,
   "plain_sort_ns": 50, "sealed_sort_ns": 500, "block_sort_ns": 200}
]`
	baseline, err := Read(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := baseline[0].Key(); got != "n=4096 workers=4 block=16" {
		t.Fatalf("Key = %q", got)
	}
	fresh, _ := Read(strings.NewReader(body))
	if rep := Compare(baseline, fresh, 1.25); rep.Failed() || rep.Compared != 6 {
		t.Fatalf("self-compare: %+v", rep)
	}
	fresh[0].Metrics["block_join"] = 600 // +50%
	rep := Compare(baseline, fresh, 1.25)
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "block_join" {
		t.Fatalf("sealed metric regression not flagged: %+v", rep)
	}
	delete(fresh[0].Metrics, "sealed_sort") // vanished metric
	rep = Compare(baseline, fresh, 1.25)
	found := false
	for _, r := range rep.Regressions {
		if r.Metric == "sealed_sort (missing)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("vanished sealed metric not flagged: %+v", rep)
	}
}

// TestBytesMetricsGate: *_bytes fields are gated alongside the wall
// times — a memory regression past the threshold fails, and the
// regression renders in bytes, not milliseconds.
func TestBytesMetricsGate(t *testing.T) {
	body := `[
  {"n": 16384, "workers": 4, "block": 16,
   "materialized_ns": 1000000, "streamed_ns": 900000,
   "materialized_peak_bytes": 8000000, "streamed_peak_bytes": 4500000}
]`
	baseline, err := Read(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(baseline[0].Metrics); got != 4 {
		t.Fatalf("decoded %d metrics, want 4: %+v", got, baseline[0].Metrics)
	}
	fresh, _ := Read(strings.NewReader(body))
	if rep := Compare(baseline, fresh, 1.25); rep.Failed() || rep.Compared != 4 {
		t.Fatalf("self-compare: %+v", rep)
	}
	fresh[0].Metrics["streamed_peak_bytes"] = 6_750_000 // +50%
	rep := Compare(baseline, fresh, 1.25)
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "streamed_peak_bytes" {
		t.Fatalf("bytes regression not flagged: %+v", rep)
	}
	if s := rep.Regressions[0].String(); !strings.Contains(s, "B)") || strings.Contains(s, "ms)") {
		t.Fatalf("bytes regression rendered in the wrong unit: %q", s)
	}
	delete(fresh[0].Metrics, "materialized_peak_bytes") // vanished metric
	rep = Compare(baseline, fresh, 1.25)
	found := false
	for _, r := range rep.Regressions {
		if r.Metric == "materialized_peak_bytes (missing)" {
			found = true
			if s := r.String(); !strings.Contains(s, "B)") {
				t.Fatalf("missing bytes metric rendered in the wrong unit: %q", s)
			}
		}
	}
	if !found {
		t.Fatalf("vanished bytes metric not flagged: %+v", rep)
	}
}

// TestComparatorMetricsGate: planner records carry exact comparator
// counts under "*_comparators" fields; they gate like any wall-time
// metric and render as plain counts, not milliseconds.
func TestComparatorMetricsGate(t *testing.T) {
	body := `[
  {"n": 4096, "query": "4-way fan-out chain",
   "written_comparators": 2000000, "greedy_comparators": 1200000,
   "written_ns": 900000, "greedy_ns": 700000}
]`
	baseline, err := Read(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(baseline[0].Metrics); got != 4 {
		t.Fatalf("decoded %d metrics, want 4: %+v", got, baseline[0].Metrics)
	}
	fresh, _ := Read(strings.NewReader(body))
	if rep := Compare(baseline, fresh, 1.25); rep.Failed() || rep.Compared != 4 {
		t.Fatalf("self-compare: %+v", rep)
	}
	fresh[0].Metrics["greedy_comparators"] = 1_800_000 // +50%
	rep := Compare(baseline, fresh, 1.25)
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "greedy_comparators" {
		t.Fatalf("comparator regression not flagged: %+v", rep)
	}
	if s := rep.Regressions[0].String(); !strings.Contains(s, "comparators)") || strings.Contains(s, "ms)") {
		t.Fatalf("comparator regression rendered in the wrong unit: %q", s)
	}
}

// TestServiceRecordsKeyOnScenario: the load records' latency
// percentiles gate keyed on (scenario, clients, workers) — the same
// scenario at a different concurrency is a different benchmark, and a
// p95 regression beyond the threshold fails.
func TestServiceRecordsKeyOnScenario(t *testing.T) {
	body := `[
  {"scenario": "uniform", "n": 2048, "clients": 8, "workers": 2,
   "wall_ns": 4000000000, "p50_ns": 200000000, "p95_ns": 800000000, "p99_ns": 900000000,
   "throughput_qps": 16.0, "rejection_rate": 0.0, "goroutine_hwm": 40}
]`
	baseline, err := Read(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := baseline[0].Key(); got != "n=2048 workers=2 scenario=uniform clients=8" {
		t.Fatalf("Key = %q", got)
	}
	fresh, _ := Read(strings.NewReader(body))
	if rep := Compare(baseline, fresh, 1.25); rep.Failed() || rep.Compared != 4 {
		t.Fatalf("self-compare: %+v", rep)
	}
	fresh[0].Metrics["p95"] = 1100000000 // +37.5%
	rep := Compare(baseline, fresh, 1.25)
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "p95" {
		t.Fatalf("p95 regression not flagged: %+v", rep)
	}

	// Same scenario at different concurrency must not compare: it
	// surfaces as a missing benchmark instead.
	moved, _ := Read(strings.NewReader(body))
	moved[0].Clients = 16
	rep = Compare(baseline, moved, 1.25)
	if len(rep.MissingInFresh) != 1 || len(rep.Regressions) != 0 {
		t.Fatalf("cross-concurrency compare: %+v", rep)
	}
}

// TestShardRecordsKeyOnShards: the shard benchmark's rows gate keyed
// on (n, workers, shards) — the S=1 baseline row and each sharded row
// are distinct benchmarks, a wall or bytes regression at one shard
// count fails alone, and a record that moved to a different shard
// count surfaces as a missing benchmark, never a cross-compare.
func TestShardRecordsKeyOnShards(t *testing.T) {
	body := `[
  {"n": 8192, "m": 8192, "workers": 4, "shards": 1,
   "wall_ns": 400000000, "peak_bytes": 2400000, "total_alloc_bytes": 9000000,
   "comparators": 3300000, "speedup_vs_s1": 1.0, "results_equal_s1": true, "gomaxprocs": 1},
  {"n": 8192, "m": 8192, "workers": 4, "shards": 4,
   "wall_ns": 560000000, "peak_bytes": 3200000, "total_alloc_bytes": 12000000,
   "comparators": 4300000, "speedup_vs_s1": 0.7, "results_equal_s1": true, "gomaxprocs": 1}
]`
	baseline, err := Read(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := baseline[0].Key(); got != "n=8192 workers=4 shards=1" {
		t.Fatalf("Key = %q", got)
	}
	if got := baseline[1].Key(); got != "n=8192 workers=4 shards=4" {
		t.Fatalf("Key = %q", got)
	}
	fresh, _ := Read(strings.NewReader(body))
	if rep := Compare(baseline, fresh, 1.25); rep.Failed() || rep.Compared != 6 {
		t.Fatalf("self-compare: %+v", rep)
	}
	fresh[1].Metrics["wall"] = 840_000_000 // +50% at S=4 only
	rep := Compare(baseline, fresh, 1.25)
	if len(rep.Regressions) != 1 || rep.Regressions[0].Metric != "wall" ||
		!strings.Contains(rep.Regressions[0].Key, "shards=4") {
		t.Fatalf("shard wall regression not flagged: %+v", rep)
	}
	fresh[1].Metrics["peak_bytes"] = 4_800_000 // +50% memory too
	rep = Compare(baseline, fresh, 1.25)
	if len(rep.Regressions) != 2 {
		t.Fatalf("shard bytes regression not flagged: %+v", rep)
	}

	// Same record at a different shard count must not compare.
	moved, _ := Read(strings.NewReader(body))
	moved[1].Shards = 2
	rep = Compare(baseline, moved, 1.25)
	if len(rep.MissingInFresh) != 1 || len(rep.Regressions) != 0 ||
		!strings.Contains(rep.MissingInFresh[0], "shards=4") {
		t.Fatalf("cross-shard-count compare: %+v", rep)
	}
}

// TestAgainstCommittedBaseline sanity-checks the committed baseline
// files: they must parse and self-compare cleanly, so the CI gate can
// never fail on baseline shape alone.
func TestAgainstCommittedBaseline(t *testing.T) {
	for _, tc := range []struct {
		name    string
		metrics []int // allowed gated-metric counts per record — a file
		// may mix families (BENCH_sql.json: sql rows carry 4, planner
		// comparator rows carry 5)
	}{
		{"BENCH_join.json", []int{2}},
		{"BENCH_sql.json", []int{4, 5}},
		{"BENCH_sealed.json", []int{6}},
		{"BENCH_service.json", []int{4}},
		{"BENCH_stream.json", []int{8}},
		{"BENCH_shard.json", []int{3}},
		{"BENCH_wal.json", []int{2}},
		{"BENCH_fault.json", []int{2}},
	} {
		path := filepath.Join("..", "..", "BENCH_baseline", tc.name)
		recs, err := Load(path)
		if err != nil {
			t.Fatalf("committed baseline %s: %v", tc.name, err)
		}
		if len(recs) == 0 {
			t.Fatalf("committed baseline %s is empty", tc.name)
		}
		total := 0
		for _, r := range recs {
			for name, ns := range r.Metrics {
				if ns <= 0 {
					t.Fatalf("committed baseline %s has empty wall time %s: %+v", tc.name, name, r)
				}
			}
			total += len(r.Metrics)
			ok := false
			for _, want := range tc.metrics {
				ok = ok || len(r.Metrics) == want
			}
			if !ok {
				t.Fatalf("committed baseline %s carries %d metrics, want one of %v: %+v", tc.name, len(r.Metrics), tc.metrics, r)
			}
		}
		if rep := Compare(recs, recs, 1.25); rep.Failed() || rep.Compared != total {
			t.Fatalf("baseline self-compare: %+v", rep)
		}
	}
}
