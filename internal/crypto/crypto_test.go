package crypto

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func newTestCipher(t *testing.T) *Cipher {
	t.Helper()
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 7)
	}
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadKeyLength(t *testing.T) {
	if _, err := New(make([]byte, 16)); err == nil {
		t.Fatal("expected error for 16-byte master key")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	c := newTestCipher(t)
	f := func(pt []byte) bool {
		sealed := make([]byte, SealedLen(len(pt)))
		c.Seal(sealed, pt)
		out := make([]byte, len(pt))
		if err := c.Open(out, sealed); err != nil {
			return false
		}
		return bytes.Equal(out, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSealIsProbabilistic(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("the same plaintext")
	a := make([]byte, SealedLen(len(pt)))
	b := make([]byte, SealedLen(len(pt)))
	c.Seal(a, pt)
	c.Seal(b, pt)
	if bytes.Equal(a, b) {
		t.Fatal("two seals of equal plaintext produced equal ciphertexts")
	}
}

func TestOpenDetectsTampering(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("secret entry")
	sealed := make([]byte, SealedLen(len(pt)))
	c.Seal(sealed, pt)
	out := make([]byte, len(pt))
	for _, pos := range []int{0, 16, len(sealed) - 1} {
		mut := append([]byte(nil), sealed...)
		mut[pos] ^= 0x01
		if err := c.Open(out, mut); err != ErrAuth {
			t.Fatalf("tamper at %d: err = %v, want ErrAuth", pos, err)
		}
	}
}

func TestOpenTooShort(t *testing.T) {
	c := newTestCipher(t)
	if err := c.Open(nil, make([]byte, Overhead-1)); err == nil {
		t.Fatal("expected error for truncated ciphertext")
	}
}

func TestResealChangesBytesPreservesPlaintext(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("row: (x, a1, 2, 3)")
	sealed := make([]byte, SealedLen(len(pt)))
	c.Seal(sealed, pt)
	resealed := make([]byte, len(sealed))
	if err := c.Reseal(resealed, sealed); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(resealed, sealed) {
		t.Fatal("Reseal produced identical ciphertext (not probabilistic)")
	}
	out := make([]byte, len(pt))
	if err := c.Open(out, resealed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, pt) {
		t.Fatal("Reseal changed plaintext")
	}
}

func TestResealInPlace(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("in-place")
	sealed := make([]byte, SealedLen(len(pt)))
	c.Seal(sealed, pt)
	if err := c.Reseal(sealed, sealed); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(pt))
	if err := c.Open(out, sealed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, pt) {
		t.Fatal("in-place Reseal corrupted entry")
	}
}

func TestResealRejectsTampered(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("x")
	sealed := make([]byte, SealedLen(len(pt)))
	c.Seal(sealed, pt)
	sealed[3] ^= 0xff
	if err := c.Reseal(sealed, sealed); err != ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestNewRandomDistinctKeys(t *testing.T) {
	_, k1, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("NewRandom returned identical keys")
	}
	if len(k1) != 32 {
		t.Fatalf("key length = %d, want 32", len(k1))
	}
}

func TestCiphersWithDifferentKeysIncompatible(t *testing.T) {
	c1 := newTestCipher(t)
	c2, _, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("cross-key")
	sealed := make([]byte, SealedLen(len(pt)))
	c1.Seal(sealed, pt)
	out := make([]byte, len(pt))
	if err := c2.Open(out, sealed); err != ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestSealedLen(t *testing.T) {
	if SealedLen(0) != Overhead {
		t.Fatalf("SealedLen(0) = %d, want %d", SealedLen(0), Overhead)
	}
	if SealedLen(40) != 40+Overhead {
		t.Fatalf("SealedLen(40) = %d", SealedLen(40))
	}
}

// refOpen is a reference Open built directly on the standard library's
// cipher.NewCTR and crypto/hmac, re-deriving the keys the way New does.
// It pins Seal's wire format: the hand-rolled CTR and HMAC inside the
// package must be bit-compatible with the canonical constructions.
func refOpen(t *testing.T, master, sealed []byte) ([]byte, error) {
	t.Helper()
	block, err := aes.NewCipher(master[:16])
	if err != nil {
		t.Fatal(err)
	}
	macKey := sha256.Sum256(master[16:])
	n := len(sealed) - Overhead
	mac := hmac.New(sha256.New, macKey[:])
	mac.Write(sealed[:aes.BlockSize+n])
	if !hmac.Equal(mac.Sum(nil), sealed[aes.BlockSize+n:]) {
		return nil, ErrAuth
	}
	out := make([]byte, n)
	cipher.NewCTR(block, sealed[:aes.BlockSize]).XORKeyStream(out, sealed[aes.BlockSize:aes.BlockSize+n])
	return out, nil
}

func TestSealMatchesReferenceConstruction(t *testing.T) {
	master := make([]byte, 32)
	for i := range master {
		master[i] = byte(i*13 + 5)
	}
	c, err := New(master)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 15, 16, 17, 64, 72, 100, 1152} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i)
		}
		sealed := make([]byte, SealedLen(n))
		c.Seal(sealed, pt)
		out, err := refOpen(t, master, sealed)
		if err != nil {
			t.Fatalf("n=%d: reference open rejected Seal output: %v", n, err)
		}
		if !bytes.Equal(out, pt) {
			t.Fatalf("n=%d: reference open decrypted wrong plaintext", n)
		}
	}
}

func TestSealRangeOpenRangeRoundTrip(t *testing.T) {
	c := newTestCipher(t)
	for _, tc := range []struct{ k, ptLen int }{
		{0, 8}, {1, 72}, {3, 1}, {5, 72}, {16, 72}, {7, 1152}, {4, 16}, {2, 15},
	} {
		plain := make([]byte, tc.k*tc.ptLen)
		for i := range plain {
			plain[i] = byte(i * 31)
		}
		sealed := make([]byte, tc.k*SealedLen(tc.ptLen))
		c.SealRange(sealed, plain, tc.ptLen)
		out := make([]byte, len(plain))
		if err := c.OpenRange(out, sealed, tc.ptLen); err != nil {
			t.Fatalf("k=%d ptLen=%d: %v", tc.k, tc.ptLen, err)
		}
		if !bytes.Equal(out, plain) {
			t.Fatalf("k=%d ptLen=%d: round trip corrupted plaintext", tc.k, tc.ptLen)
		}
	}
}

func TestSealRangeRecordsOpenIndividually(t *testing.T) {
	c := newTestCipher(t)
	const k, ptLen = 6, 40
	plain := make([]byte, k*ptLen)
	for i := range plain {
		plain[i] = byte(i)
	}
	sealed := make([]byte, k*SealedLen(ptLen))
	c.SealRange(sealed, plain, ptLen)
	recLen := SealedLen(ptLen)
	for r := 0; r < k; r++ {
		out := make([]byte, ptLen)
		if err := c.Open(out, sealed[r*recLen:(r+1)*recLen]); err != nil {
			t.Fatalf("record %d: %v", r, err)
		}
		if !bytes.Equal(out, plain[r*ptLen:(r+1)*ptLen]) {
			t.Fatalf("record %d decrypted wrong", r)
		}
	}
}

func TestOpenRangeDetectsTamperedRecord(t *testing.T) {
	c := newTestCipher(t)
	const k, ptLen = 4, 72
	plain := make([]byte, k*ptLen)
	sealed := make([]byte, k*SealedLen(ptLen))
	c.SealRange(sealed, plain, ptLen)
	sealed[2*SealedLen(ptLen)+20] ^= 0x80 // inside record 2's body
	err := c.OpenRange(make([]byte, len(plain)), sealed, ptLen)
	if !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v, want wrapped ErrAuth", err)
	}
	if want := "record 2 of 4"; err == nil || !strings.Contains(err.Error(), want) {
		t.Fatalf("err %q does not name the record (%q)", err, want)
	}
}

// TestNonceUniqueAcrossConcurrentSealRange hammers one Cipher from many
// goroutines and asserts that every sealed record carries a distinct
// nonce and a distinct keystream-block reservation — the property CTR
// security rests on. Run under -race it also exercises the atomic
// reservation path for data races.
func TestNonceUniqueAcrossConcurrentSealRange(t *testing.T) {
	c := newTestCipher(t)
	const (
		goroutines = 8
		ranges     = 50
		k          = 16
		ptLen      = 72
	)
	out := make([][]byte, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			plain := make([]byte, k*ptLen)
			buf := make([]byte, 0, ranges*k*SealedLen(ptLen))
			for r := 0; r < ranges; r++ {
				sealed := make([]byte, k*SealedLen(ptLen))
				c.SealRange(sealed, plain, ptLen)
				buf = append(buf, sealed...)
			}
			out[g] = buf
		}(g)
	}
	wg.Wait()
	recLen := SealedLen(ptLen)
	bpr := (ptLen + aes.BlockSize - 1) / aes.BlockSize
	seen := make(map[[aes.BlockSize]byte]bool)
	starts := make(map[uint64]bool)
	for _, buf := range out {
		for off := 0; off+recLen <= len(buf); off += recLen {
			var nonce [aes.BlockSize]byte
			copy(nonce[:], buf[off:off+aes.BlockSize])
			if seen[nonce] {
				t.Fatal("duplicate nonce across concurrent SealRange calls")
			}
			seen[nonce] = true
			start := binary.BigEndian.Uint64(nonce[8:])
			for b := uint64(0); b < uint64(bpr); b++ {
				if starts[start+b] {
					t.Fatal("overlapping keystream-block reservation")
				}
				starts[start+b] = true
			}
		}
	}
	if len(seen) != goroutines*ranges*k {
		t.Fatalf("collected %d nonces, want %d", len(seen), goroutines*ranges*k)
	}
}

// The acceptance bar of the zero-allocation rework: the hot sealing
// operations must not allocate in steady state.
func TestSealedPathAllocFree(t *testing.T) {
	c := newTestCipher(t)
	const k, ptLen = 64, 72
	plain := make([]byte, k*ptLen)
	sealed := make([]byte, k*SealedLen(ptLen))
	one := make([]byte, SealedLen(ptLen))
	out := make([]byte, ptLen)
	// Warm the scratch pool (and Reseal's staging buffer) first.
	c.SealRange(sealed, plain, ptLen)
	c.Seal(one, plain[:ptLen])
	if err := c.Reseal(one, one); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name string
		fn   func()
	}{
		{"Seal", func() { c.Seal(one, plain[:ptLen]) }},
		{"Open", func() {
			if err := c.Open(out, one); err != nil {
				t.Fatal(err)
			}
		}},
		{"Reseal", func() {
			if err := c.Reseal(one, one); err != nil {
				t.Fatal(err)
			}
		}},
		{"SealRange", func() { c.SealRange(sealed, plain, ptLen) }},
		{"OpenRange", func() {
			if err := c.OpenRange(plain, sealed, ptLen); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range checks {
		if avg := testing.AllocsPerRun(50, tc.fn); avg != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", tc.name, avg)
		}
	}
}

func BenchmarkSeal64(b *testing.B) {
	key := make([]byte, 32)
	c, _ := New(key)
	pt := make([]byte, 64)
	sealed := make([]byte, SealedLen(64))
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		c.Seal(sealed, pt)
	}
}

func BenchmarkReseal64(b *testing.B) {
	key := make([]byte, 32)
	c, _ := New(key)
	pt := make([]byte, 64)
	sealed := make([]byte, SealedLen(64))
	c.Seal(sealed, pt)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		if err := c.Reseal(sealed, sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// The range benchmarks use 72-byte records (the width of one encoded
// table entry) in runs of 64, the shape of one sorting-round chunk.
const benchRangeRecords = 64

func BenchmarkSealRange(b *testing.B) {
	key := make([]byte, 32)
	c, _ := New(key)
	const ptLen = 72
	plain := make([]byte, benchRangeRecords*ptLen)
	sealed := make([]byte, benchRangeRecords*SealedLen(ptLen))
	b.SetBytes(int64(len(plain)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SealRange(sealed, plain, ptLen)
	}
}

func BenchmarkOpenRange(b *testing.B) {
	key := make([]byte, 32)
	c, _ := New(key)
	const ptLen = 72
	plain := make([]byte, benchRangeRecords*ptLen)
	sealed := make([]byte, benchRangeRecords*SealedLen(ptLen))
	c.SealRange(sealed, plain, ptLen)
	b.SetBytes(int64(len(plain)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.OpenRange(plain, sealed, ptLen); err != nil {
			b.Fatal(err)
		}
	}
}
