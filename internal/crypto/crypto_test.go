package crypto

import (
	"bytes"
	"testing"
	"testing/quick"
)

func newTestCipher(t *testing.T) *Cipher {
	t.Helper()
	key := make([]byte, 32)
	for i := range key {
		key[i] = byte(i * 7)
	}
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadKeyLength(t *testing.T) {
	if _, err := New(make([]byte, 16)); err == nil {
		t.Fatal("expected error for 16-byte master key")
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	c := newTestCipher(t)
	f := func(pt []byte) bool {
		sealed := make([]byte, SealedLen(len(pt)))
		c.Seal(sealed, pt)
		out := make([]byte, len(pt))
		if err := c.Open(out, sealed); err != nil {
			return false
		}
		return bytes.Equal(out, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSealIsProbabilistic(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("the same plaintext")
	a := make([]byte, SealedLen(len(pt)))
	b := make([]byte, SealedLen(len(pt)))
	c.Seal(a, pt)
	c.Seal(b, pt)
	if bytes.Equal(a, b) {
		t.Fatal("two seals of equal plaintext produced equal ciphertexts")
	}
}

func TestOpenDetectsTampering(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("secret entry")
	sealed := make([]byte, SealedLen(len(pt)))
	c.Seal(sealed, pt)
	out := make([]byte, len(pt))
	for _, pos := range []int{0, 16, len(sealed) - 1} {
		mut := append([]byte(nil), sealed...)
		mut[pos] ^= 0x01
		if err := c.Open(out, mut); err != ErrAuth {
			t.Fatalf("tamper at %d: err = %v, want ErrAuth", pos, err)
		}
	}
}

func TestOpenTooShort(t *testing.T) {
	c := newTestCipher(t)
	if err := c.Open(nil, make([]byte, Overhead-1)); err == nil {
		t.Fatal("expected error for truncated ciphertext")
	}
}

func TestResealChangesBytesPreservesPlaintext(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("row: (x, a1, 2, 3)")
	sealed := make([]byte, SealedLen(len(pt)))
	c.Seal(sealed, pt)
	resealed := make([]byte, len(sealed))
	if err := c.Reseal(resealed, sealed); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(resealed, sealed) {
		t.Fatal("Reseal produced identical ciphertext (not probabilistic)")
	}
	out := make([]byte, len(pt))
	if err := c.Open(out, resealed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, pt) {
		t.Fatal("Reseal changed plaintext")
	}
}

func TestResealInPlace(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("in-place")
	sealed := make([]byte, SealedLen(len(pt)))
	c.Seal(sealed, pt)
	if err := c.Reseal(sealed, sealed); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(pt))
	if err := c.Open(out, sealed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, pt) {
		t.Fatal("in-place Reseal corrupted entry")
	}
}

func TestResealRejectsTampered(t *testing.T) {
	c := newTestCipher(t)
	pt := []byte("x")
	sealed := make([]byte, SealedLen(len(pt)))
	c.Seal(sealed, pt)
	sealed[3] ^= 0xff
	if err := c.Reseal(sealed, sealed); err != ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestNewRandomDistinctKeys(t *testing.T) {
	_, k1, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	_, k2, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("NewRandom returned identical keys")
	}
	if len(k1) != 32 {
		t.Fatalf("key length = %d, want 32", len(k1))
	}
}

func TestCiphersWithDifferentKeysIncompatible(t *testing.T) {
	c1 := newTestCipher(t)
	c2, _, err := NewRandom()
	if err != nil {
		t.Fatal(err)
	}
	pt := []byte("cross-key")
	sealed := make([]byte, SealedLen(len(pt)))
	c1.Seal(sealed, pt)
	out := make([]byte, len(pt))
	if err := c2.Open(out, sealed); err != ErrAuth {
		t.Fatalf("err = %v, want ErrAuth", err)
	}
}

func TestSealedLen(t *testing.T) {
	if SealedLen(0) != Overhead {
		t.Fatalf("SealedLen(0) = %d, want %d", SealedLen(0), Overhead)
	}
	if SealedLen(40) != 40+Overhead {
		t.Fatalf("SealedLen(40) = %d", SealedLen(40))
	}
}

func BenchmarkSeal64(b *testing.B) {
	key := make([]byte, 32)
	c, _ := New(key)
	pt := make([]byte, 64)
	sealed := make([]byte, SealedLen(64))
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		c.Seal(sealed, pt)
	}
}

func BenchmarkReseal64(b *testing.B) {
	key := make([]byte, 32)
	c, _ := New(key)
	pt := make([]byte, 64)
	sealed := make([]byte, SealedLen(64))
	c.Seal(sealed, pt)
	b.SetBytes(64)
	for i := 0; i < b.N; i++ {
		if err := c.Reseal(sealed, sealed); err != nil {
			b.Fatal(err)
		}
	}
}
